file(REMOVE_RECURSE
  "CMakeFiles/xml_school.dir/xml_school.cpp.o"
  "CMakeFiles/xml_school.dir/xml_school.cpp.o.d"
  "xml_school"
  "xml_school.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_school.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
