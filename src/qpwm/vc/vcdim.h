// Vapnik-Chervonenkis dimension of query-defined set systems (Section 1 and
// Theorem 2). C(psi, G) = { W_a : a in U^r } is a family of subsets of the
// active elements W; VC(psi, G) is the size of the largest subset of W
// shattered by the family. Exact computation is exponential in the answer —
// fine at the scales where the impossibility experiments live.
#ifndef QPWM_VC_VCDIM_H_
#define QPWM_VC_VCDIM_H_

#include <cstdint>
#include <vector>

#include "qpwm/core/answers.h"

namespace qpwm {

/// A set system over a ground set {0..n-1}: each set is a sorted vector.
struct SetSystem {
  size_t ground_size = 0;
  std::vector<std::vector<uint32_t>> sets;
};

/// The set system C(psi, G) over the active elements of a query index.
SetSystem SetSystemFromQuery(const QueryIndex& index);

/// True iff `candidate` (sorted subset of the ground set) is shattered.
bool IsShattered(const SetSystem& system, const std::vector<uint32_t>& candidate);

/// Exact VC dimension by layered search: tries subsets of size k+1 extending
/// shattered subsets of size k (every subset of a shattered set is
/// shattered, so the search is monotone). `max_dim` caps the work; returns
/// min(VC, max_dim).
uint32_t VcDimension(const SetSystem& system, uint32_t max_dim = 24);

/// Greedy lower bound: grows one shattered set element by element. Fast on
/// large systems; at most the true VC.
uint32_t VcLowerBound(const SetSystem& system);

}  // namespace qpwm

#endif  // QPWM_VC_VCDIM_H_
