#include "qpwm/stream/faults.h"

#include "qpwm/util/random.h"

namespace qpwm {

FaultPlan MakeFaultPlan(uint64_t seed, uint64_t attempt_index,
                        const FaultOptions& options) {
  // Decorrelate attempts with a SplitMix64 step over the attempt index so
  // neighboring attempts don't share fault prefixes.
  uint64_t mix = seed + 0x632BE59BD9B4E019ULL * (attempt_index + 1);
  Rng rng(SplitMix64(mix));
  FaultPlan plan;
  plan.lose_epoch = rng.Bernoulli(options.epoch_loss_prob);
  plan.fail_batch = rng.Bernoulli(options.failed_batch_prob);
  if (rng.Bernoulli(options.slow_batch_prob)) {
    plan.slow_penalty_ticks = static_cast<uint64_t>(
        rng.Uniform(static_cast<int64_t>(options.slow_penalty_min),
                    static_cast<int64_t>(options.slow_penalty_max)));
  }
  return plan;
}

bool FaultyAnswerServer::BeginRoundTrip() const {
  ++round_trips_;
  if (round_trips_ == 1) ticks_ += plan_.slow_penalty_ticks;
  if (plan_.lose_epoch) {
    epoch_lost_ = true;
    return false;
  }
  if (plan_.fail_batch && round_trips_ == 1) {
    batch_failed_ = true;
    return false;
  }
  return true;
}

AnswerSet FaultyAnswerServer::Answer(const Tuple& params) const {
  ticks_ += 1;
  if (!BeginRoundTrip()) return {};
  AnswerSet rows = base_->Answer(params);
  ticks_ += rows.size();
  return rows;
}

std::vector<AnswerSet> FaultyAnswerServer::AnswerBatch(
    const std::vector<Tuple>& params) const {
  ticks_ += params.size();
  if (!BeginRoundTrip()) {
    return std::vector<AnswerSet>(params.size());
  }
  std::vector<AnswerSet> out = AnswerAll(*base_, params);
  for (const AnswerSet& rows : out) ticks_ += rows.size();
  return out;
}

}  // namespace qpwm
