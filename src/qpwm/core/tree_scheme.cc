#include "qpwm/core/tree_scheme.h"

#include <algorithm>
#include <unordered_map>

#include "qpwm/tree/query.h"
#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"

namespace qpwm {

AnswerSet HonestTreeServer::Answer(const Tuple& params) const {
  QPWM_CHECK_EQ(params.size(), param_arity_);
  NodeId a = param_arity_ == 1 ? params[0] : 0;
  AnswerSet out;
  for (NodeId b : EvaluateWa(*t_, *labels_, base_count_, *dta_, param_arity_, a)) {
    out.push_back({Tuple{b}, weights_.GetElem(b)});
  }
  return out;
}

Result<TreeScheme> TreeScheme::Plan(const BinaryTree& t,
                                    const std::vector<uint32_t>& labels,
                                    uint32_t base_count, const Dta& dta,
                                    uint32_t param_arity,
                                    const TreeSchemeOptions& options) {
  if (param_arity > 1) {
    return Status::InvalidArgument("tree scheme supports parameter arity 0 or 1");
  }
  const uint32_t expected_tracks = param_arity + 1;
  if (dta.alphabet_size() != base_count << expected_tracks) {
    return Status::InvalidArgument(
        "automaton alphabet does not match base alphabet x pebble tracks");
  }

  TreeScheme scheme;
  scheme.t_ = &t;
  scheme.labels_ = &labels;
  scheme.base_count_ = base_count;
  scheme.dta_ = &dta;
  scheme.param_arity_ = param_arity;
  scheme.options_ = options;

  // Active weighted elements: W = union over a of W_a. Pair candidates are
  // restricted to W so every hidden bit stays readable through answers.
  std::vector<bool> active(t.size(), false);
  {
    Dta exists_a = param_arity == 1 ? ProjectParamTrack(dta, base_count) : dta;
    for (NodeId b : EvaluateWa(t, labels, base_count, exists_a, 0, 0)) {
      active[b] = true;
    }
  }

  DecompositionOptions dopts;
  dopts.shuffle_seed = options.key.Derive(0xDEC0).k0;
  dopts.min_region_size = options.min_region_size;
  dopts.max_region_size = options.max_region_size;
  scheme.regions_ = FindMarkRegions(t, labels, base_count, dta, param_arity, dopts,
                                    &scheme.stats_, &active);

  // Witness discovery. Fast path: precompute the answer bitmaps of a small
  // shared pool of candidate parameters (root + keyed-random picks); most
  // pairs find a witness there in O(1). Stragglers fall back to the exact
  // reverse run (track-swapped automaton: every parameter containing b_plus).
  // By neutrality, a witness for b_plus outside the region covers b_minus.
  std::vector<NodeId> region_of(t.size(), kNoNode);
  for (size_t i = 0; i < scheme.regions_.size(); ++i) {
    for (NodeId w : scheme.regions_[i].nodes) region_of[w] = static_cast<NodeId>(i);
  }

  std::vector<std::pair<NodeId, std::vector<bool>>> witness_pool;
  if (param_arity == 1) {
    Rng witness_rng(options.key.Derive(0x317).k0);
    std::vector<NodeId> candidates{t.root()};
    for (size_t i = 0; i + 1 < options.witness_attempts; ++i) {
      candidates.push_back(static_cast<NodeId>(witness_rng.Below(t.size())));
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    // One full context-DP automaton run per candidate parameter — the
    // dominant planning cost — computed in parallel; the pool keeps the
    // candidates' sorted order, so witness probing below is deterministic.
    std::vector<std::vector<bool>> memberships =
        ParallelMap<std::vector<bool>>(candidates.size(), [&](size_t i) {
          std::vector<bool> member(t.size(), false);
          for (NodeId b : EvaluateWa(t, labels, base_count, dta, 1, candidates[i])) {
            member[b] = true;
          }
          return member;
        });
    witness_pool.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      witness_pool.emplace_back(candidates[i], std::move(memberships[i]));
    }
  }

  Dta swapped = param_arity == 1 ? SwapPebbleTracks(dta, base_count)
                                 : Dta(0, base_count * 2);
  for (size_t region_idx = 0; region_idx < scheme.regions_.size(); ++region_idx) {
    const MarkRegion& region = scheme.regions_[region_idx];
    if (!region.paired()) continue;

    if (param_arity == 0) {
      // Single (empty) parameter; the active filter already guarantees
      // membership, but verify defensively.
      if (MemberWa(t, labels, base_count, dta, 0, 0, region.b_plus)) {
        scheme.pairs_.push_back({region.b_plus, region.b_minus, Tuple{}});
      }
      continue;
    }

    bool found = false;
    for (const auto& [a, member] : witness_pool) {
      if (region_of[a] == static_cast<NodeId>(region_idx)) continue;
      if (member[region.b_plus]) {
        scheme.pairs_.push_back({region.b_plus, region.b_minus, Tuple{a}});
        found = true;
        break;
      }
    }
    if (found) continue;

    for (NodeId a : EvaluateWa(t, labels, base_count, swapped, 1, region.b_plus)) {
      if (region_of[a] == static_cast<NodeId>(region_idx)) continue;
      QPWM_CHECK(MemberWa(t, labels, base_count, dta, 1, a, region.b_minus));
      scheme.pairs_.push_back({region.b_plus, region.b_minus, Tuple{a}});
      break;
    }
  }
  scheme.BuildWitnessPlan();
  return scheme;
}

void TreeScheme::BuildWitnessPlan() {
  // Group the 2 * |pairs| node reads by their witness parameter, in
  // first-use order — hoisted to plan time (the grouping depends only on
  // the pairs, never on the suspect).
  witness_plan_ = WitnessPlan();
  std::unordered_map<Tuple, uint32_t, TupleHash> slot_of_witness;
  std::vector<std::vector<std::pair<uint32_t, NodeId>>> reads;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const DetectablePair& pair = pairs_[i];
    auto [it, inserted] = slot_of_witness.emplace(
        pair.witness, static_cast<uint32_t>(witness_plan_.params.size()));
    if (inserted) {
      witness_plan_.params.push_back(pair.witness);
      reads.emplace_back();
    }
    reads[it->second].push_back({static_cast<uint32_t>(2 * i), pair.b_plus});
    reads[it->second].push_back({static_cast<uint32_t>(2 * i + 1), pair.b_minus});
  }
  witness_plan_.read_offsets.reserve(reads.size() + 1);
  witness_plan_.read_offsets.push_back(0);
  for (const auto& slot_reads : reads) {
    witness_plan_.reads.insert(witness_plan_.reads.end(), slot_reads.begin(),
                               slot_reads.end());
    witness_plan_.read_offsets.push_back(
        static_cast<uint32_t>(witness_plan_.reads.size()));
  }
}

WeightMap TreeScheme::Embed(const WeightMap& original, const BitVec& mark) const {
  WeightMap out = original;
  ApplyMark(mark, out, options_.encoding);
  return out;
}

void TreeScheme::ApplyMark(const BitVec& mark, WeightMap& weights,
                           PairEncoding encoding) const {
  QPWM_CHECK_EQ(mark.size(), pairs_.size());
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (mark.Get(i)) {
      weights.AddElem(pairs_[i].b_plus, +1);
      weights.AddElem(pairs_[i].b_minus, -1);
    } else if (encoding == PairEncoding::kAntipodal) {
      weights.AddElem(pairs_[i].b_plus, -1);
      weights.AddElem(pairs_[i].b_minus, +1);
    }
  }
}

TreeScheme::DetectContext TreeScheme::MakeDetectContext(
    const WeightMap& original, const DetectOptions& options) const {
  DetectContext ctx;
  ctx.original = &original;
  ctx.options = options;
  return ctx;
}

const std::vector<PairObservation>& TreeScheme::ObservePairsInto(
    const DetectContext& ctx, const AnswerServer& suspect,
    DetectScratch& sc) const {
  const WeightMap& original = *ctx.original;
  sc.observations.clear();
  sc.observations.reserve(pairs_.size());

  if (!ctx.options.batch_answers) {
    // Unbatched path: one Answer() round trip per pair, linear row scan.
    // The scan overwrites on every match, so the *last* row per node wins.
    for (const DetectablePair& pair : pairs_) {
      Weight w_plus = 0, w_minus = 0;
      bool saw_plus = false, saw_minus = false;
      AnswerSet answers = suspect.Answer(pair.witness);
      for (const AnswerRow& row : answers) {
        if (row.element.size() == 1 && row.element[0] == pair.b_plus) {
          w_plus = row.weight;
          saw_plus = true;
        }
        if (row.element.size() == 1 && row.element[0] == pair.b_minus) {
          w_minus = row.weight;
          saw_minus = true;
        }
      }
      PairObservation obs;
      if (!saw_plus || !saw_minus) {
        obs.erased = true;
      } else {
        Weight d_plus = w_plus - original.GetElem(pair.b_plus);
        Weight d_minus = w_minus - original.GetElem(pair.b_minus);
        obs.delta = d_plus - d_minus;
      }
      sc.observations.push_back(obs);
    }
    return sc.observations;
  }

  // Batched path: answer each distinct witness of the precomputed plan once
  // (pairs frequently share witnesses — the root answers for every region it
  // covers, one columnar AnswerAllFlat round trip in all) and resolve the
  // unary rows through an epoch-stamped flat table keyed by node id — no
  // per-row allocation. Plain assignment keeps the *last* row per node,
  // matching the unbatched scan above.
  const size_t num_pairs = pairs_.size();
  sc.read_weight.assign(2 * num_pairs, 0);
  sc.read_found.assign(2 * num_pairs, 0);
  AnswerAllFlat(suspect, witness_plan_.params, sc.answers);

  if (sc.stamp.size() != t_->size()) {
    sc.stamp.assign(t_->size(), 0);
    sc.row_weight.assign(t_->size(), 0);
  }
  for (size_t s = 0; s < witness_plan_.params.size(); ++s) {
    const uint64_t epoch = ++sc.epoch;
    for (uint32_t r = sc.answers.param_offsets[s];
         r < sc.answers.param_offsets[s + 1]; ++r) {
      // Rows beyond the tree (inserted fresh nodes) can never match a pair
      // node.
      const uint32_t eb = sc.answers.elem_offsets[r];
      if (sc.answers.elem_offsets[r + 1] - eb != 1) continue;
      const ElemId node = sc.answers.elems[eb];
      if (node >= t_->size()) continue;
      sc.row_weight[node] = sc.answers.weights[r];
      sc.stamp[node] = epoch;
    }
    for (uint32_t i = witness_plan_.read_offsets[s];
         i < witness_plan_.read_offsets[s + 1]; ++i) {
      const auto& [slot, node] = witness_plan_.reads[i];
      if (sc.stamp[node] == epoch) {
        sc.read_weight[slot] = sc.row_weight[node];
        sc.read_found[slot] = 1;
      }
    }
  }

  for (size_t i = 0; i < num_pairs; ++i) {
    const DetectablePair& pair = pairs_[i];
    PairObservation obs;
    if (!sc.read_found[2 * i] || !sc.read_found[2 * i + 1]) {
      obs.erased = true;
    } else {
      Weight d_plus = sc.read_weight[2 * i] - original.GetElem(pair.b_plus);
      Weight d_minus = sc.read_weight[2 * i + 1] - original.GetElem(pair.b_minus);
      obs.delta = d_plus - d_minus;
    }
    sc.observations.push_back(obs);
  }
  return sc.observations;
}

std::vector<PairObservation> TreeScheme::ObservePairs(
    const WeightMap& original, const AnswerServer& suspect,
    const DetectOptions& options) const {
  const DetectContext ctx = MakeDetectContext(original, options);
  DetectScratch scratch;
  return ObservePairsInto(ctx, suspect, scratch);
}

Result<std::vector<Weight>> TreeScheme::PairDeltas(const WeightMap& original,
                                                   const AnswerServer& suspect) const {
  std::vector<PairObservation> observations = ObservePairs(original, suspect);
  std::vector<Weight> deltas;
  deltas.reserve(observations.size());
  for (const PairObservation& obs : observations) {
    if (obs.erased) {
      return Status::DetectionFailed(
          "witness answer is missing a pair node (structure tampered)");
    }
    deltas.push_back(obs.delta);
  }
  return deltas;
}

Result<BitVec> TreeScheme::Detect(const WeightMap& original,
                                  const AnswerServer& suspect) const {
  auto deltas = PairDeltas(original, suspect);
  if (!deltas.ok()) return deltas.status();
  BitVec mark(pairs_.size());
  const Weight threshold = options_.encoding == PairEncoding::kOnOff ? 1 : 0;
  for (size_t i = 0; i < deltas.value().size(); ++i) {
    mark.Set(i, deltas.value()[i] >= threshold);
  }
  return mark;
}

}  // namespace qpwm
