#include "qpwm/tree/mso.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>

#include "qpwm/util/check.h"
#include "qpwm/util/str.h"

namespace qpwm {
namespace {

constexpr int kReject = -1;

// Child-state domain marker for the atom builder.
constexpr int kAbsentState = -2;

// Builds a small total-on-purpose automaton by enumerating every
// (left, right, symbol, bits) combination and asking `step` for the target
// (kReject = implicit sink).
Dta BuildAtom(uint32_t base_count, uint32_t num_tracks, uint32_t num_states,
              const std::vector<State>& accepting,
              const std::function<int(int, int, uint32_t, uint32_t)>& step) {
  const uint32_t alphabet = base_count << num_tracks;
  Dta out(num_states, alphabet);
  std::vector<int> child_domain{kAbsentState};
  for (uint32_t q = 0; q < num_states; ++q) child_domain.push_back(static_cast<int>(q));

  for (int l : child_domain) {
    for (int r : child_domain) {
      for (uint32_t sym = 0; sym < base_count; ++sym) {
        for (uint32_t bits = 0; bits < (1u << num_tracks); ++bits) {
          int to = step(l, r, sym, bits);
          if (to == kReject) continue;
          State ls = l == kAbsentState ? kAbsentChild : static_cast<State>(l);
          State rs = r == kAbsentState ? kAbsentChild : static_cast<State>(r);
          out.AddTransition(ls, rs, sym + base_count * bits, static_cast<State>(to));
        }
      }
    }
  }
  for (State q : accepting) out.SetAccepting(q, true);
  return out;
}

int StateOr0(int child) { return child == kAbsentState ? 0 : child; }
bool IsNoneOrAbsent(int child) { return child == kAbsentState || child == 0; }

// --- Atom automata. All are exact on well-sorted inputs (one pebble per
// first-order track); on malformed inputs they may answer arbitrarily, which
// the singleton conjunction at quantifier boundaries makes unobservable.

Dta SingletonAtom(uint32_t base_count) {
  return BuildAtom(base_count, 1, 2, {1}, [](int l, int r, uint32_t, uint32_t bits) {
    int count = StateOr0(l) + StateOr0(r) + static_cast<int>(bits & 1);
    return count <= 1 ? count : kReject;
  });
}

Dta MemberAtom(uint32_t base_count, int x_bit, int set_bit) {
  return BuildAtom(base_count, 2, 2, {1},
                   [x_bit, set_bit](int l, int r, uint32_t, uint32_t bits) {
                     bool bx = (bits >> x_bit) & 1;
                     bool bX = (bits >> set_bit) & 1;
                     bool done = l == 1 || r == 1;
                     if (bx && !bX) return kReject;
                     return (done || bx) ? 1 : 0;
                   });
}

Dta EqAtom(uint32_t base_count, int x_bit, int y_bit) {
  return BuildAtom(base_count, 2, 2, {1},
                   [x_bit, y_bit](int l, int r, uint32_t, uint32_t bits) {
                     bool bx = (bits >> x_bit) & 1;
                     bool by = (bits >> y_bit) & 1;
                     bool done = l == 1 || r == 1;
                     if (bx != by) return kReject;
                     if (bx) return done ? kReject : 1;
                     return done ? 1 : 0;
                   });
}

// y is the left (side == 0) or right (side == 1) child of x.
Dta ChildAtom(uint32_t base_count, int x_bit, int y_bit, int side) {
  return BuildAtom(
      base_count, 2, 3, {2},
      [x_bit, y_bit, side](int l, int r, uint32_t, uint32_t bits) {
        bool bx = (bits >> x_bit) & 1;
        bool by = (bits >> y_bit) & 1;
        if (bx && by) return kReject;  // a node is never its own child
        if (by) {
          return (IsNoneOrAbsent(l) && IsNoneOrAbsent(r)) ? 1 : kReject;
        }
        if (bx) {
          int child = side == 0 ? l : r;
          int other = side == 0 ? r : l;
          return (child == 1 && IsNoneOrAbsent(other)) ? 2 : kReject;
        }
        if (l == 1 || r == 1) return kReject;  // y's parent was not x
        int twos = (l == 2 ? 1 : 0) + (r == 2 ? 1 : 0);
        if (twos == 0) return 0;
        if (twos == 1) return 2;
        return kReject;
      });
}

// x <= y in tree order (x is an ancestor of y, or x == y).
Dta LeqAtom(uint32_t base_count, int x_bit, int y_bit) {
  return BuildAtom(
      base_count, 2, 3, {2},
      [x_bit, y_bit](int l, int r, uint32_t, uint32_t bits) {
        bool bx = (bits >> x_bit) & 1;
        bool by = (bits >> y_bit) & 1;
        bool l_clear = IsNoneOrAbsent(l);
        bool r_clear = IsNoneOrAbsent(r);
        if (bx && by) return (l_clear && r_clear) ? 2 : kReject;
        if (by) return (l_clear && r_clear) ? 1 : kReject;
        if (bx) {
          // y must sit strictly below, in exactly one child.
          if (l == 1 && r_clear) return 2;
          if (r == 1 && l_clear) return 2;
          return kReject;
        }
        int lm = StateOr0(l);
        int rm = StateOr0(r);
        if (lm == 0 && rm == 0) return 0;
        if (lm != 0 && rm != 0) return kReject;  // marks in both subtrees
        return lm + rm;  // propagate the single mark (1 or 2)
      });
}

Dta LabelAtom(uint32_t base_count, uint32_t label, int x_bit) {
  return BuildAtom(base_count, 1, 2, {1},
                   [label, x_bit](int l, int r, uint32_t sym, uint32_t bits) {
                     bool bx = (bits >> x_bit) & 1;
                     bool done = l == 1 || r == 1;
                     if (bx) return sym == label ? 1 : kReject;
                     return done ? 1 : 0;
                   });
}

// CHILD(x, y): y is an *unranked* child of x under the first-child /
// next-sibling encoding, i.e. y lies on the S2-spine of x's left child.
// Equivalent to the MSO closure formula (exists z (S1(x,z) & S2*-chain)) but
// compiled directly: 3 states, no set quantifier, no determinization cost.
// States: 0 = nothing relevant below; 1 = y is on the right spine starting
// at this node; 2 = done (x seen with its left child in state 1).
Dta ChildUnrankedAtom(uint32_t base_count, int x_bit, int y_bit) {
  return BuildAtom(
      base_count, 2, 3, {2},
      [x_bit, y_bit](int l, int r, uint32_t, uint32_t bits) {
        bool bx = (bits >> x_bit) & 1;
        bool by = (bits >> y_bit) & 1;
        int ml = StateOr0(l);
        int mr = StateOr0(r);
        if (bx && by) return kReject;  // a node is never its own child
        if (by) return (ml == 0 && mr == 0) ? 1 : kReject;
        if (bx) return (ml == 1 && mr == 0) ? 2 : kReject;
        if (ml == 0 && mr == 0) return 0;
        if (ml == 0 && mr == 1) return 1;  // spine continues upward
        if (ml == 1) return kReject;       // y's parent is not x
        if ((ml == 2 && mr == 0) || (ml == 0 && mr == 2)) return 2;
        return kReject;
      });
}

Dta RootAtom(uint32_t base_count, int x_bit) {
  return BuildAtom(base_count, 1, 3, {1},
                   [x_bit](int l, int r, uint32_t, uint32_t bits) {
                     bool bx = (bits >> x_bit) & 1;
                     if (bx) {
                       return (IsNoneOrAbsent(l) && IsNoneOrAbsent(r)) ? 1 : kReject;
                     }
                     return (StateOr0(l) > 0 || StateOr0(r) > 0) ? 2 : 0;
                   });
}

Dta LeafAtom(uint32_t base_count, int x_bit) {
  return BuildAtom(base_count, 1, 2, {1},
                   [x_bit](int l, int r, uint32_t, uint32_t bits) {
                     bool bx = (bits >> x_bit) & 1;
                     if (bx) {
                       return (l == kAbsentState && r == kAbsentState) ? 1 : kReject;
                     }
                     return (l == 1 || r == 1) ? 1 : 0;
                   });
}

// --- Track plumbing.

// Bit index of `var` in a sorted track list.
int TrackBit(const std::vector<std::string>& tracks, const std::string& var) {
  auto it = std::find(tracks.begin(), tracks.end(), var);
  QPWM_CHECK(it != tracks.end());
  return static_cast<int>(it - tracks.begin());
}

// Extends `a` to the (sorted) superset `target` of its tracks by
// cylindrification: each old symbol maps to every bit extension.
TrackedDta Align(const TrackedDta& a, const std::vector<std::string>& target,
                 uint32_t base_count) {
  if (a.tracks == target) return a;
  const uint32_t k_old = static_cast<uint32_t>(a.tracks.size());
  const uint32_t k_new = static_cast<uint32_t>(target.size());
  QPWM_CHECK_LE(base_count << k_new, (1u << 21));

  // old track bit -> new track bit.
  std::vector<int> pos(k_old);
  for (uint32_t i = 0; i < k_old; ++i) pos[i] = TrackBit(target, a.tracks[i]);
  std::vector<bool> is_old(k_new, false);
  for (int p : pos) is_old[p] = true;

  std::vector<std::vector<uint32_t>> mapping(base_count << k_old);
  for (uint32_t sym = 0; sym < mapping.size(); ++sym) {
    uint32_t base = sym % base_count;
    uint32_t bits = sym / base_count;
    uint32_t fixed = 0;
    for (uint32_t i = 0; i < k_old; ++i) {
      if ((bits >> i) & 1) fixed |= 1u << pos[i];
    }
    // Enumerate assignments of the new tracks not present in `a`.
    std::vector<int> free_bits;
    for (uint32_t j = 0; j < k_new; ++j) {
      if (!is_old[j]) free_bits.push_back(static_cast<int>(j));
    }
    for (uint32_t mask = 0; mask < (1u << free_bits.size()); ++mask) {
      uint32_t ext = fixed;
      for (size_t j = 0; j < free_bits.size(); ++j) {
        if ((mask >> j) & 1) ext |= 1u << free_bits[j];
      }
      mapping[sym].push_back(base + base_count * ext);
    }
  }
  return {a.dta.RemapSymbols(base_count << k_new, mapping), target};
}

std::vector<std::string> UnionTracks(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

// Removes `var`'s track by projection (exists semantics) + determinization.
TrackedDta Project(const TrackedDta& a, const std::string& var, uint32_t base_count) {
  const uint32_t k = static_cast<uint32_t>(a.tracks.size());
  const int bit = TrackBit(a.tracks, var);

  std::vector<std::vector<uint32_t>> mapping(base_count << k);
  for (uint32_t sym = 0; sym < mapping.size(); ++sym) {
    uint32_t base = sym % base_count;
    uint32_t bits = sym / base_count;
    uint32_t low = bits & ((1u << bit) - 1);
    uint32_t high = (bits >> (bit + 1)) << bit;
    mapping[sym].push_back(base + base_count * (low | high));
  }

  std::vector<std::string> tracks = a.tracks;
  tracks.erase(tracks.begin() + bit);
  Nta projected = a.dta.ToNta().RemapSymbols(base_count << (k - 1), mapping);
  return {projected.Determinize().Minimize(), std::move(tracks)};
}

// Fresh-names every bound variable so shadowing cannot conflate tracks.
FormulaPtr AlphaRename(const Formula& f, std::map<std::string, std::string>& scope,
                       int& counter) {
  auto out = f.Clone();
  switch (out->kind) {
    case FormulaKind::kAtom:
    case FormulaKind::kEq:
      for (auto& v : out->vars) {
        auto it = scope.find(v);
        if (it != scope.end()) v = it->second;
      }
      break;
    case FormulaKind::kSetMember: {
      auto it = scope.find(out->vars[0]);
      if (it != scope.end()) out->vars[0] = it->second;
      it = scope.find(out->set_var);
      if (it != scope.end()) out->set_var = it->second;
      break;
    }
    case FormulaKind::kNot:
      out->left = AlphaRename(*f.left, scope, counter);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      out->left = AlphaRename(*f.left, scope, counter);
      out->right = AlphaRename(*f.right, scope, counter);
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::string fresh = StrCat(out->quantified_var, "@", counter++);
      auto saved = scope.find(out->quantified_var);
      std::string old = saved != scope.end() ? saved->second : "";
      bool had = saved != scope.end();
      scope[out->quantified_var] = fresh;
      auto renamed_body = AlphaRename(*f.left, scope, counter);
      if (had) {
        scope[out->quantified_var] = old;
      } else {
        scope.erase(out->quantified_var);
      }
      out->quantified_var = fresh;
      out->left = std::move(renamed_body);
      break;
    }
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet: {
      std::string fresh = StrCat(out->set_var, "@", counter++);
      auto saved = scope.find(out->set_var);
      std::string old = saved != scope.end() ? saved->second : "";
      bool had = saved != scope.end();
      scope[out->set_var] = fresh;
      auto renamed_body = AlphaRename(*f.left, scope, counter);
      if (had) {
        scope[out->set_var] = old;
      } else {
        scope.erase(out->set_var);
      }
      out->set_var = fresh;
      out->left = std::move(renamed_body);
      break;
    }
  }
  return out;
}

bool MsoTraceEnabled() {
  static const bool enabled = std::getenv("QPWM_MSO_TRACE") != nullptr;
  return enabled;
}

void Trace(const char* op, const Formula& f, const TrackedDta& out) {
  if (!MsoTraceEnabled()) return;
  std::fprintf(stderr, "[mso] %-8s states=%-6u alphabet=%-6u transitions=%-8zu %s\n",
               op, out.dta.num_states(), out.dta.alphabet_size(),
               out.dta.num_transitions(), f.ToString().substr(0, 90).c_str());
}

class Compiler {
 public:
  explicit Compiler(const Alphabet& sigma)
      : sigma_(sigma), base_(static_cast<uint32_t>(sigma.size())) {}

  Result<TrackedDta> Compile(const Formula& f) {
    auto out = CompileInner(f);
    if (out.ok()) Trace("node", f, out.value());
    return out;
  }

  Result<TrackedDta> CompileInner(const Formula& f) {
    switch (f.kind) {
      case FormulaKind::kAtom:
        return CompileAtom(f);
      case FormulaKind::kEq: {
        if (f.vars[0] == f.vars[1]) return TrueAutomaton({f.vars[0]});
        std::vector<std::string> tracks{f.vars[0], f.vars[1]};
        std::sort(tracks.begin(), tracks.end());
        return TrackedDta{EqAtom(base_, TrackBit(tracks, f.vars[0]),
                                 TrackBit(tracks, f.vars[1])),
                          tracks};
      }
      case FormulaKind::kSetMember: {
        if (f.vars[0] == f.set_var) {
          return Status::InvalidArgument(
              "variable '" + f.vars[0] + "' used as both element and set");
        }
        std::vector<std::string> tracks{f.vars[0], f.set_var};
        std::sort(tracks.begin(), tracks.end());
        return TrackedDta{MemberAtom(base_, TrackBit(tracks, f.vars[0]),
                                     TrackBit(tracks, f.set_var)),
                          tracks};
      }
      case FormulaKind::kNot: {
        auto inner = Compile(*f.left);
        if (!inner.ok()) return inner;
        return TrackedDta{inner.value().dta.Complement().Minimize(),
                          inner.value().tracks};
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        auto a = Compile(*f.left);
        if (!a.ok()) return a;
        auto b = Compile(*f.right);
        if (!b.ok()) return b;
        auto tracks = UnionTracks(a.value().tracks, b.value().tracks);
        TrackedDta lhs = Align(a.value(), tracks, base_);
        TrackedDta rhs = Align(b.value(), tracks, base_);
        Dta product =
            Dta::Product(lhs.dta, rhs.dta, f.kind == FormulaKind::kAnd).Minimize();
        return TrackedDta{std::move(product), tracks};
      }
      case FormulaKind::kExists:
        return CompileExists(f, /*first_order=*/true);
      case FormulaKind::kForall: {
        auto negated = MakeNot(MakeExists(f.quantified_var, MakeNot(f.left->Clone())));
        return Compile(*negated);
      }
      case FormulaKind::kExistsSet:
        return CompileExists(f, /*first_order=*/false);
      case FormulaKind::kForallSet: {
        auto negated = MakeNot(MakeExistsSet(f.set_var, MakeNot(f.left->Clone())));
        return Compile(*negated);
      }
    }
    return Status::Internal("unreachable formula kind");
  }

 private:
  // Automaton accepting every tree, over the given tracks.
  TrackedDta TrueAutomaton(std::vector<std::string> tracks) {
    std::sort(tracks.begin(), tracks.end());
    const uint32_t k = static_cast<uint32_t>(tracks.size());
    Dta t(1, base_ << k);
    for (uint32_t sym = 0; sym < (base_ << k); ++sym) {
      t.AddTransition(kAbsentChild, kAbsentChild, sym, 0);
      t.AddTransition(0, kAbsentChild, sym, 0);
      t.AddTransition(kAbsentChild, 0, sym, 0);
      t.AddTransition(0, 0, sym, 0);
    }
    t.SetAccepting(0, true);
    return {std::move(t), std::move(tracks)};
  }

  Result<TrackedDta> CompileAtom(const Formula& f) {
    const std::string& rel = f.relation;
    if (rel == "S1" || rel == "S2" || rel == "LEQ" || rel == "CHILD") {
      if (f.vars.size() != 2) {
        return Status::InvalidArgument(rel + " expects 2 arguments");
      }
      if (f.vars[0] == f.vars[1]) {
        if (rel == "LEQ") return TrueAutomaton({f.vars[0]});  // x <= x
        // x is never its own child: empty language over this track.
        TrackedDta t = TrueAutomaton({f.vars[0]});
        return TrackedDta{t.dta.Complement(), t.tracks};
      }
      std::vector<std::string> tracks{f.vars[0], f.vars[1]};
      std::sort(tracks.begin(), tracks.end());
      int x = TrackBit(tracks, f.vars[0]);
      int y = TrackBit(tracks, f.vars[1]);
      if (rel == "S1") return TrackedDta{ChildAtom(base_, x, y, 0), tracks};
      if (rel == "S2") return TrackedDta{ChildAtom(base_, x, y, 1), tracks};
      if (rel == "CHILD") return TrackedDta{ChildUnrankedAtom(base_, x, y), tracks};
      return TrackedDta{LeqAtom(base_, x, y), tracks};
    }
    if (rel == "ROOT" || rel == "LEAF") {
      if (f.vars.size() != 1) {
        return Status::InvalidArgument(rel + " expects 1 argument");
      }
      std::vector<std::string> tracks{f.vars[0]};
      Dta a = rel == "ROOT" ? RootAtom(base_, 0) : LeafAtom(base_, 0);
      return TrackedDta{std::move(a), std::move(tracks)};
    }
    if (StartsWith(rel, "P_")) {
      if (f.vars.size() != 1) {
        return Status::InvalidArgument("label atom " + rel + " expects 1 argument");
      }
      auto label = sigma_.Find(rel.substr(2));
      if (!label.ok()) return label.status();
      std::vector<std::string> tracks{f.vars[0]};
      return TrackedDta{LabelAtom(base_, label.value(), 0), std::move(tracks)};
    }
    return Status::InvalidArgument("unknown tree relation '" + rel + "'");
  }

  Result<TrackedDta> CompileExists(const Formula& f, bool first_order) {
    const std::string& var = first_order ? f.quantified_var : f.set_var;
    auto body = Compile(*f.left);
    if (!body.ok()) return body;
    TrackedDta inner = std::move(body).value();

    auto has_track = std::find(inner.tracks.begin(), inner.tracks.end(), var) !=
                     inner.tracks.end();
    if (!has_track) return inner;  // vacuous quantifier (trees are nonempty)

    if (first_order) {
      TrackedDta sing{SingletonAtom(base_), {var}};
      TrackedDta aligned_sing = Align(sing, inner.tracks, base_);
      inner.dta = Dta::Product(inner.dta, aligned_sing.dta, true).Minimize();
    }
    return Project(inner, var, base_);
  }

  const Alphabet& sigma_;
  uint32_t base_;
};

}  // namespace

Result<TrackedDta> CompileMso(const Formula& f, const Alphabet& sigma,
                              const std::vector<std::string>& var_order) {
  if (sigma.size() == 0) return Status::InvalidArgument("empty alphabet");

  std::map<std::string, std::string> scope;
  int counter = 0;
  FormulaPtr renamed = AlphaRename(f, scope, counter);

  Compiler compiler(sigma);
  auto compiled = compiler.Compile(*renamed);
  if (!compiled.ok()) return compiled;
  TrackedDta result = std::move(compiled).value();

  // All remaining tracks must be requested.
  for (const auto& t : result.tracks) {
    if (std::find(var_order.begin(), var_order.end(), t) == var_order.end()) {
      return Status::InvalidArgument("free variable '" + t +
                                     "' missing from var_order");
    }
  }

  // Cylindrify up to the full requested set (sorted), then permute bits into
  // var_order positions.
  std::vector<std::string> sorted = var_order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument("duplicate variable in var_order");
    }
  }
  const uint32_t base = static_cast<uint32_t>(sigma.size());
  result = Align(result, sorted, base);

  const uint32_t k = static_cast<uint32_t>(var_order.size());
  std::vector<int> to_pos(k);  // sorted bit i -> var_order bit
  for (uint32_t i = 0; i < k; ++i) {
    to_pos[i] = static_cast<int>(
        std::find(var_order.begin(), var_order.end(), sorted[i]) - var_order.begin());
  }
  std::vector<std::vector<uint32_t>> mapping(base << k);
  for (uint32_t sym = 0; sym < mapping.size(); ++sym) {
    uint32_t b = sym % base;
    uint32_t bits = sym / base;
    uint32_t permuted = 0;
    for (uint32_t i = 0; i < k; ++i) {
      if ((bits >> i) & 1) permuted |= 1u << to_pos[i];
    }
    mapping[sym].push_back(b + base * permuted);
  }
  return TrackedDta{result.dta.RemapSymbols(base << k, mapping), var_order};
}

std::vector<uint32_t> PebbledSymbols(const std::vector<uint32_t>& base_labels,
                                     uint32_t base_count,
                                     const std::vector<NodeId>& pebbles) {
  std::vector<uint32_t> out(base_labels.size());
  for (size_t v = 0; v < base_labels.size(); ++v) out[v] = base_labels[v];
  for (size_t i = 0; i < pebbles.size(); ++i) {
    QPWM_CHECK_LT(pebbles[i], base_labels.size());
    out[pebbles[i]] += base_count << i;
  }
  return out;
}

std::vector<uint32_t> SetSymbols(const std::vector<uint32_t>& base_labels,
                                 uint32_t base_count,
                                 const std::vector<std::vector<bool>>& track_sets) {
  std::vector<uint32_t> out(base_labels.size());
  for (size_t v = 0; v < base_labels.size(); ++v) {
    uint32_t bits = 0;
    for (size_t i = 0; i < track_sets.size(); ++i) {
      QPWM_CHECK_EQ(track_sets[i].size(), base_labels.size());
      if (track_sets[i][v]) bits |= 1u << i;
    }
    out[v] = base_labels[v] + base_count * bits;
  }
  return out;
}

Structure TreeToStructure(const BinaryTree& t, const Alphabet& sigma) {
  Signature sig;
  size_t s1 = sig.AddRelation("S1", 2);
  size_t s2 = sig.AddRelation("S2", 2);
  size_t leq = sig.AddRelation("LEQ", 2);
  size_t child = sig.AddRelation("CHILD", 2);
  size_t root = sig.AddRelation("ROOT", 1);
  size_t leaf = sig.AddRelation("LEAF", 1);
  std::vector<size_t> label_rel(sigma.size());
  for (size_t c = 0; c < sigma.size(); ++c) {
    label_rel[c] = sig.AddRelation("P_" + sigma.Name(static_cast<uint32_t>(c)), 1);
  }

  Structure g(sig, t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.left(v) != kNoNode) g.AddTuple(s1, Tuple{v, t.left(v)});
    if (t.right(v) != kNoNode) g.AddTuple(s2, Tuple{v, t.right(v)});
    // Unranked children: the S2-spine of the left child.
    for (NodeId c = t.left(v); c != kNoNode; c = t.right(c)) {
      g.AddTuple(child, Tuple{v, c});
    }
    for (NodeId w = 0; w < t.size(); ++w) {
      if (t.IsAncestorOrSelf(v, w)) g.AddTuple(leq, Tuple{v, w});
    }
    if (v == t.root()) g.AddTuple(root, Tuple{v});
    if (t.IsLeaf(v)) g.AddTuple(leaf, Tuple{v});
    g.AddTuple(label_rel[t.label(v)], Tuple{v});
  }
  g.Seal();
  return g;
}

}  // namespace qpwm
