// Relational signatures (database schemas): named relation symbols with
// fixed arities, plus the weight arity `s` (weights attach to s-tuples of the
// universe; s = 1 — weights on elements — is the common case in the paper).
#ifndef QPWM_STRUCTURE_SIGNATURE_H_
#define QPWM_STRUCTURE_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qpwm/util/status.h"

namespace qpwm {

/// One relation symbol.
struct RelationSymbol {
  std::string name;
  uint32_t arity = 0;
};

/// A finite set of relation symbols; the tau of STRUCT[tau].
class Signature {
 public:
  Signature() = default;
  explicit Signature(std::vector<RelationSymbol> symbols)
      : symbols_(std::move(symbols)) {}

  /// Appends a relation symbol; returns its index.
  size_t AddRelation(std::string name, uint32_t arity) {
    symbols_.push_back({std::move(name), arity});
    return symbols_.size() - 1;
  }

  size_t size() const { return symbols_.size(); }
  const RelationSymbol& symbol(size_t i) const { return symbols_[i]; }
  const std::vector<RelationSymbol>& symbols() const { return symbols_; }

  /// Index of the relation named `name`, or an error.
  [[nodiscard]] Result<size_t> Find(const std::string& name) const {
    for (size_t i = 0; i < symbols_.size(); ++i) {
      if (symbols_[i].name == name) return i;
    }
    return Status::NotFound("no relation named '" + name + "'");
  }

  bool operator==(const Signature& other) const {
    if (symbols_.size() != other.symbols_.size()) return false;
    for (size_t i = 0; i < symbols_.size(); ++i) {
      if (symbols_[i].name != other.symbols_[i].name ||
          symbols_[i].arity != other.symbols_[i].arity) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<RelationSymbol> symbols_;
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_SIGNATURE_H_
