# Empty dependencies file for qpwm_faultgen.
# This may be replaced when dependencies are built.
