// Deterministic, seedable pseudo-random generation.
//
// Watermarking correctness depends on the marker and the detector replaying
// the *same* random choices from the owner's secret key, so all randomness in
// the library flows through this explicitly seeded generator — never through
// global or hardware entropy.
#ifndef QPWM_UTIL_RANDOM_H_
#define QPWM_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "qpwm/util/check.h"

namespace qpwm {

/// SplitMix64 step; used for seeding and cheap stateless mixing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Deterministic given a seed; not cryptographic (the
/// keyed-PRF in hash.h covers the secrecy-sensitive selections).
class Rng {
 public:
  /// Seeds the full state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit output.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    QPWM_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    QPWM_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fair coin.
  bool Coin() { return (Next() & 1) != 0; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace qpwm

#endif  // QPWM_UTIL_RANDOM_H_
