// qpwm_faultgen — fault-injection campaign against the adversarial scheme.
//
// Two report families, both emitted into one JSON document (BENCH_robust.json
// in CI):
//
//   * Channel campaigns (deletion / insertion / mixed sweeps): the raw
//     majority-vote channel under structural attacks, as in PR 1.
//   * Codec grid: every message codec (identity = the uncoded baseline,
//     codec-level repetition, interleaved Hamming(7,4), interleaved
//     Reed-Muller RM(1,4), plus a non-interleaved Hamming ablation) against
//     a composed adversary (value noise + jitter + rounding + burst region
//     deletion + independent deletion + insertion) swept over severity
//     levels. Per level: payload survival, corrections, false-positive
//     bounds, plus honest-suspect trials (unmarked original and unrelated
//     weights) that must never produce a MATCH verdict.
//
// Every trial's attack seed is derived deterministically and recorded in the
// report, so any single trial replays from the report alone. The workload
// (graph, query index, planned scheme) is built once from the campaign seed
// and shared read-only by every trial. Trials within a level run in parallel
// on the shared thread pool; the report is byte-identical for any
// QPWM_THREADS.
//
// Flags (all optional):
//   --elements N     universe size of the random workload      (default 400)
//   --redundancy R   pairs per message bit                     (default 5)
//   --trials T       seeded trials per attack level            (default 20)
//   --seed S         campaign base seed                        (default 1)
//   --threads N      worker threads (0 = QPWM_THREADS/hardware) (default 0)
//   --codec C        restrict the codec grid to one codec spec  (default all)
//   --out F          JSON report path                          (default stdout)
//
// Exit codes follow the CLI contract: 0 = campaign ran clean, 1 = at least
// one trial's detection returned an internal error (the trial is recorded as
// an internal_error in its level, never silently dropped), 2 = usage/I/O
// error.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "qpwm/coding/coded_watermark.h"
#include "qpwm/coding/codec.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"

using namespace qpwm;

namespace {

struct Options {
  size_t elements = 400;
  size_t redundancy = 5;
  size_t trials = 20;
  uint64_t seed = 1;
  size_t threads = 0;   // 0 = env/hardware default
  size_t collusion = 0; // max coalition size for the collusion sweep; <2 = off
  std::string codec;    // empty = the full grid
  std::string out;      // empty = stdout
};

// Per-trial attack seeds are seed + tag * kSeedStride + trial; the formula is
// recorded in the report next to the explicit seed lists.
constexpr uint64_t kSeedStride = 1000003;

uint64_t TrialSeed(const Options& opt, uint64_t level_tag, size_t trial) {
  return opt.seed + level_tag * kSeedStride + trial;
}

// The planned scheme every trial detects against. Built once per campaign;
// all members are immutable after Build and safe to share across trials.
struct Workload {
  Structure g;
  std::unique_ptr<ParametricQuery> query;
  std::optional<QueryIndex> index;
  std::optional<WeightMap> weights;
  std::optional<LocalScheme> scheme;
  std::optional<AdversarialScheme> adv;

  static std::unique_ptr<Workload> Build(const Options& opt) {
    auto wl = std::make_unique<Workload>();
    Rng rng(opt.seed);
    wl->g = RandomBoundedDegreeGraph(opt.elements, 3, 3 * opt.elements, false, rng);
    wl->query = AtomQuery::Adjacency("E");
    wl->index.emplace(wl->g, *wl->query, AllParams(wl->g, 1));
    wl->weights.emplace(RandomWeights(wl->g, 1000, 9999, rng));

    LocalSchemeOptions scheme_opts;
    scheme_opts.epsilon = 0.25;
    scheme_opts.key = {opt.seed, opt.seed + 1};
    scheme_opts.encoding = PairEncoding::kAntipodal;
    auto scheme = LocalScheme::Plan(*wl->index, scheme_opts);
    QPWM_CHECK(scheme.ok());
    wl->scheme.emplace(std::move(scheme).value());
    wl->adv.emplace(*wl->scheme, opt.redundancy);
    return wl;
  }
};

// --- Channel campaigns (raw majority channel, as in PR 1) -------------------

struct TrialOutcome {
  bool full_mark = false;           // complete() and mark == message
  bool recovered_correct = false;   // every non-erased bit matches
  bool internal_error = false;      // detection returned a non-OK Status
  size_t bits_erased = 0;
  size_t pairs_erased = 0;
  double min_margin = 0;
};

struct LevelSummary {
  double deletion_frac = 0;
  double insertion_frac = 0;
  size_t trials = 0;
  uint64_t level_tag = 0;
  size_t full_mark = 0;
  size_t recovered_correct = 0;
  size_t internal_errors = 0;
  double mean_bits_erased = 0;
  double mean_pairs_erased = 0;
  double mean_min_margin = 0;
};

// One seeded trial against the shared workload: random message, structural
// attack through a TamperedAnswerServer, erasure-aware detection.
TrialOutcome RunTrial(const Workload& wl, double deletion_frac,
                      double insertion_frac, uint64_t seed) {
  Rng rng(seed);
  const AdversarialScheme& adv = *wl.adv;
  if (adv.CapacityBits() == 0) return {};

  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(*wl.weights, msg);

  HonestServer base(*wl.index, std::move(marked));
  TamperedAnswerServer server(base);
  for (const Tuple& t : SubsetDeletionAttack(*wl.index, deletion_frac, rng)) {
    server.Erase(t);
  }
  const size_t insertions = static_cast<size_t>(
      insertion_frac * static_cast<double>(wl.index->num_active()));
  TupleInsertionAttack(server, *wl.index, base.weights(), insertions, rng);

  TrialOutcome out;
  auto detection = adv.Detect(*wl.weights, server);
  if (!detection.ok()) {
    // The channel is specified to degrade into partial results, never
    // errors; a non-OK Status here is a detector bug. Record it instead of
    // aborting so the rest of the campaign still reports.
    out.internal_error = true;
    return out;
  }
  const AdversarialDetection& d = detection.value();

  out.bits_erased = d.bits_erased;
  out.pairs_erased = d.pairs_erased;
  out.min_margin = d.min_margin;
  out.recovered_correct = true;
  for (size_t i = 0; i < d.mark.size(); ++i) {
    if (!d.bit_erased[i] && d.mark.Get(i) != msg.Get(i)) {
      out.recovered_correct = false;
    }
  }
  out.full_mark = d.complete() && d.mark == msg;
  return out;
}

LevelSummary RunLevel(const Options& opt, const Workload& wl,
                      double deletion_frac, double insertion_frac,
                      uint64_t level_tag) {
  LevelSummary s;
  s.deletion_frac = deletion_frac;
  s.insertion_frac = insertion_frac;
  s.trials = opt.trials;
  s.level_tag = level_tag;
  // Trials are independent given their seeds; ParallelMap stores outcomes by
  // trial index and the reduction below runs serially in that order, so the
  // summary is bit-identical for any thread count.
  std::vector<TrialOutcome> outcomes =
      ParallelMap<TrialOutcome>(opt.trials, [&](size_t t) {
        return RunTrial(wl, deletion_frac, insertion_frac,
                        TrialSeed(opt, level_tag, t));
      });
  for (const TrialOutcome& o : outcomes) {
    s.full_mark += o.full_mark;
    s.recovered_correct += o.recovered_correct;
    s.internal_errors += o.internal_error;
    s.mean_bits_erased += static_cast<double>(o.bits_erased);
    s.mean_pairs_erased += static_cast<double>(o.pairs_erased);
    s.mean_min_margin += o.min_margin;
  }
  const double n = static_cast<double>(opt.trials);
  s.mean_bits_erased /= n;
  s.mean_pairs_erased /= n;
  s.mean_min_margin /= n;
  return s;
}

void AppendTrialSeeds(std::ostringstream& json, const Options& opt,
                      uint64_t level_tag) {
  json << "\"trial_seeds\": [";
  for (size_t t = 0; t < opt.trials; ++t) {
    json << (t ? ", " : "") << TrialSeed(opt, level_tag, t);
  }
  json << "]";
}

void AppendLevelJson(std::ostringstream& json, const Options& opt,
                     const LevelSummary& s, bool last) {
  const double n = static_cast<double>(s.trials);
  json << "    {\"deletion_frac\": " << s.deletion_frac
       << ", \"insertion_frac\": " << s.insertion_frac
       << ", \"trials\": " << s.trials
       << ", \"full_mark_rate\": " << static_cast<double>(s.full_mark) / n
       << ", \"recovered_correct_rate\": "
       << static_cast<double>(s.recovered_correct) / n
       << ", \"internal_errors\": " << s.internal_errors
       << ", \"mean_bits_erased\": " << s.mean_bits_erased
       << ", \"mean_pairs_erased\": " << s.mean_pairs_erased
       << ", \"mean_min_margin\": " << s.mean_min_margin << ", ";
  AppendTrialSeeds(json, opt, s.level_tag);
  json << "}" << (last ? "\n" : ",\n");
}

// --- Collusion sweep (channel-level washout under coalition forgeries) ------
//
// Each trial embeds `coalition` copies carrying independent random marks,
// forges a hybrid through one CollusionAttack, and detects against the
// original. The reported metrics are channel-level washout diagnostics (how
// much of the mark a coalition of a given size erases or flips), the raw
// counterpart to the codeword-level tracing campaign in bench_trace:
//
//   * unanimous_recovery_rate — bits where every coalition copy agrees must
//     survive any feasible (marking-assumption) attack; this is the Boneh-Shaw
//     floor the Tardos accusation leans on.
//   * member0_agreement — how close the recovered mark is to one member's,
//     over non-erased bits (0.5 = fully washed, 1.0 = that copy leaked intact).

struct CollusionOutcome {
  bool internal_error = false;  // forge or detection returned a non-OK Status
  size_t bits_erased = 0;
  double min_margin = 0;
  size_t unanimous_bits = 0;
  size_t unanimous_recovered = 0;
  size_t compared_bits = 0;  // non-erased bits
  size_t member0_agree = 0;  // non-erased bits matching member 0's mark
};

CollusionOutcome RunCollusionTrial(const Workload& wl,
                                   const CollusionAttack& attack,
                                   size_t coalition, uint64_t seed) {
  Rng rng(seed);
  CollusionOutcome out;
  const AdversarialScheme& adv = *wl.adv;
  if (adv.CapacityBits() == 0) return out;

  std::vector<BitVec> msgs;
  std::vector<WeightMap> copies;
  for (size_t j = 0; j < coalition; ++j) {
    BitVec m(adv.CapacityBits());
    for (size_t i = 0; i < m.size(); ++i) m.Set(i, rng.Coin());
    copies.push_back(adv.Embed(*wl.weights, m));
    msgs.push_back(std::move(m));
  }
  std::vector<const WeightMap*> ptrs;
  for (const WeightMap& c : copies) ptrs.push_back(&c);

  auto forged = attack.Forge(ptrs, rng);
  if (!forged.ok()) {
    out.internal_error = true;
    return out;
  }
  HonestServer server(*wl.index, std::move(forged).value());
  auto detection = adv.Detect(*wl.weights, server);
  if (!detection.ok()) {
    out.internal_error = true;
    return out;
  }
  const AdversarialDetection& d = detection.value();

  out.bits_erased = d.bits_erased;
  out.min_margin = d.min_margin;
  for (size_t i = 0; i < d.mark.size(); ++i) {
    bool unanimous = true;
    for (size_t j = 1; j < coalition; ++j) {
      unanimous &= msgs[j].Get(i) == msgs[0].Get(i);
    }
    if (unanimous) {
      ++out.unanimous_bits;
      out.unanimous_recovered +=
          !d.bit_erased[i] && d.mark.Get(i) == msgs[0].Get(i);
    }
    if (!d.bit_erased[i]) {
      ++out.compared_bits;
      out.member0_agree += d.mark.Get(i) == msgs[0].Get(i);
    }
  }
  return out;
}

// Emits the collusion sweep section (coalition size 2..opt.collusion x every
// registered attack). Returns the number of internal errors.
size_t RunCollusionSweep(const Options& opt, const Workload& wl,
                         std::ostringstream& json) {
  size_t internal_errors = 0;
  const std::vector<std::string>& specs = KnownCollusionSpecs();
  json << "  \"collusion_sweep\": [\n";
  bool first = true;
  for (size_t k = 2; k <= opt.collusion; ++k) {
    std::cerr << " c=" << k << std::flush;
    for (size_t ai = 0; ai < specs.size(); ++ai) {
      auto attack = MakeCollusionAttack(specs[ai]);
      QPWM_CHECK(attack.ok());
      // Level tags continue well past the codec grid's range so the seed
      // schedule never collides with existing campaigns.
      const uint64_t level_tag = 10000 + k * 10 + ai;
      std::vector<CollusionOutcome> outcomes =
          ParallelMap<CollusionOutcome>(opt.trials, [&](size_t t) {
            return RunCollusionTrial(wl, *attack.value(), k,
                                     TrialSeed(opt, level_tag, t));
          });
      size_t errors = 0;
      double erased = 0, margin = 0;
      double unanimous = 0, unanimous_rec = 0, compared = 0, agree = 0;
      for (const CollusionOutcome& o : outcomes) {
        errors += o.internal_error;
        erased += static_cast<double>(o.bits_erased);
        margin += o.min_margin;
        unanimous += static_cast<double>(o.unanimous_bits);
        unanimous_rec += static_cast<double>(o.unanimous_recovered);
        compared += static_cast<double>(o.compared_bits);
        agree += static_cast<double>(o.member0_agree);
      }
      internal_errors += errors;
      const double n = static_cast<double>(opt.trials);
      json << (first ? "" : ",\n") << "    {\"coalition\": " << k
           << ", \"attack\": \"" << attack.value()->Name() << "\""
           << ", \"trials\": " << opt.trials
           << ", \"mean_bits_erased\": " << erased / n
           << ", \"mean_min_margin\": " << margin / n
           << ", \"unanimous_recovery_rate\": "
           << (unanimous > 0 ? unanimous_rec / unanimous : 0.0)
           << ", \"member0_agreement\": "
           << (compared > 0 ? agree / compared : 0.0)
           << ", \"internal_errors\": " << errors << ", ";
      AppendTrialSeeds(json, opt, level_tag);
      json << "}";
      first = false;
    }
  }
  json << "\n  ],\n";
  return internal_errors;
}

// --- Codec grid (coded channel vs composed adversaries) ---------------------

struct GridCodec {
  std::string label;  // as reported
  std::string spec;   // MakeCodec spec
  bool interleave;
};

// The grid: the uncoded baseline, the codec-level repetition baseline, the
// two ECC codecs (interleaved), and a non-interleaved Hamming ablation that
// shows why the interleaver is load-bearing under burst deletion.
const GridCodec kGridCodecs[] = {
    {"identity", "identity", true},
    {"repetition:3", "repetition:3", true},
    {"hamming", "hamming", true},
    {"hamming:flat", "hamming", false},
    {"rm:4", "rm:4", true},
};

// Severity s scales every stage of the composed adversary. The burst region
// is the headline knob (it is what interleaving defends); the value-tier
// stages switch on at higher severities.
ComposedAttackSpec SpecForSeverity(double s, uint64_t seed) {
  ComposedAttackSpec spec;
  spec.region_frac = s;
  spec.deletion_frac = 0.2 * s;
  spec.insertion_frac = 0.5 * s;
  spec.noise = s >= 0.3 ? 1 : 0;
  spec.jitter_prob = 0.2 * s;
  spec.rounding = s >= 0.45 ? 2 : 0;
  spec.seed = seed;
  return spec;
}

const double kSeverities[] = {0.0, 0.15, 0.3, 0.45, 0.6};

struct CodedTrialOutcome {
  bool payload_full = false;     // complete and equal to the embedded payload
  bool payload_correct = false;  // every recovered payload bit matches
  bool verdict_match = false;    // MATCH verdict and equal payload
  bool internal_error = false;   // detection returned a non-OK Status
  size_t payload_erased = 0;
  size_t channel_erased = 0;
  size_t corrected = 0;
  size_t filled = 0;
  double log10_fp = 0;
};

CodedTrialOutcome RunCodedTrial(const Workload& wl, const CodedWatermark& wm,
                                double severity, uint64_t seed) {
  Rng rng(seed);
  CodedTrialOutcome out;
  if (wm.PayloadBits() == 0) return out;

  BitVec payload(wm.PayloadBits());
  for (size_t i = 0; i < payload.size(); ++i) payload.Set(i, rng.Coin());
  WeightMap marked = wm.Embed(*wl.weights, payload);

  ComposedSuspect suspect =
      ApplyComposedAttack(*wl.index, wl.scheme->marking().pairs(),
                          wl.adv->Redundancy(), marked,
                          SpecForSeverity(severity, seed));
  auto detection = wm.Detect(*wl.weights, *suspect.server);
  if (!detection.ok()) {
    out.internal_error = true;
    return out;
  }
  const CodedDetection& d = detection.value();

  out.payload_erased = d.message.bits_erased;
  out.channel_erased = d.channel.bits_erased;
  out.corrected = d.message.corrected;
  out.filled = d.message.filled;
  out.log10_fp = d.verdict.log10_fp_bound;
  out.payload_correct = true;
  for (size_t i = 0; i < d.message.payload.size(); ++i) {
    if (!d.message.bit_erased[i] &&
        d.message.payload.Get(i) != payload.Get(i)) {
      out.payload_correct = false;
    }
  }
  out.payload_full = d.message.complete() && d.message.payload == payload;
  out.verdict_match = d.verdict.kind == VerdictKind::kMatch &&
                      d.message.payload == payload;
  return out;
}

// Honest-suspect trial: the suspect either serves the unmarked original
// weights (even trials) or unrelated random weights (odd trials). Either
// way a MATCH verdict is a false positive.
struct HonestOutcome {
  bool false_positive = false;
  bool internal_error = false;  // detection returned a non-OK Status
  double log10_fp = 0;
};

HonestOutcome RunHonestTrial(const Workload& wl, const CodedWatermark& wm,
                             size_t trial, uint64_t seed) {
  HonestOutcome out;
  if (wm.PayloadBits() == 0) return out;
  Rng rng(seed);
  WeightMap weights =
      (trial % 2 == 0) ? *wl.weights : RandomWeights(wl.g, 1000, 9999, rng);
  HonestServer server(*wl.index, std::move(weights));
  auto detection = wm.Detect(*wl.weights, server);
  if (!detection.ok()) {
    out.internal_error = true;
    return out;
  }
  out.false_positive = detection.value().verdict.kind == VerdictKind::kMatch;
  out.log10_fp = detection.value().verdict.log10_fp_bound;
  return out;
}

// Returns the number of trials that hit an internal detection error.
size_t RunCodecGrid(const Options& opt, const Workload& wl,
                    std::ostringstream& json) {
  size_t internal_errors = 0;
  bool first_codec = true;
  json << "  \"codec_grid\": [\n";
  uint64_t tag = 300;  // level tags continue after the channel campaigns
  for (const GridCodec& entry : kGridCodecs) {
    const uint64_t codec_tag_base = tag;
    tag += 100;
    if (!opt.codec.empty() && opt.codec != entry.label &&
        opt.codec != entry.spec) {
      continue;
    }
    auto codec = MakeCodec(entry.spec);
    QPWM_CHECK(codec.ok());
    CodedOptions coded_opts;
    coded_opts.interleave = entry.interleave;
    CodedWatermark wm(*wl.adv, *codec.value(), coded_opts);
    std::cerr << "codec " << entry.label;

    if (!first_codec) json << ",\n";
    first_codec = false;
    json << "    {\"codec\": \"" << entry.label << "\", \"spec\": \""
         << entry.spec << "\", \"interleave\": "
         << (entry.interleave ? "true" : "false")
         << ", \"payload_bits\": " << wm.PayloadBits()
         << ", \"used_channel_bits\": " << wm.UsedChannelBits()
         << ", \"min_distance\": " << codec.value()->MinDistance()
         << ",\n     \"levels\": [\n";

    for (size_t li = 0; li < std::size(kSeverities); ++li) {
      const double severity = kSeverities[li];
      const uint64_t level_tag = codec_tag_base + li;
      std::cerr << " " << severity << std::flush;
      std::vector<CodedTrialOutcome> outcomes =
          ParallelMap<CodedTrialOutcome>(opt.trials, [&](size_t t) {
            return RunCodedTrial(wl, wm, severity, TrialSeed(opt, level_tag, t));
          });
      size_t full = 0, correct = 0, match = 0, errors = 0;
      double erased = 0, ch_erased = 0, corrected = 0, filled = 0;
      double mean_fp = 0, max_fp = -1e300;
      for (const CodedTrialOutcome& o : outcomes) {
        full += o.payload_full;
        correct += o.payload_correct;
        match += o.verdict_match;
        errors += o.internal_error;
        erased += static_cast<double>(o.payload_erased);
        ch_erased += static_cast<double>(o.channel_erased);
        corrected += static_cast<double>(o.corrected);
        filled += static_cast<double>(o.filled);
        mean_fp += o.log10_fp;
        max_fp = std::max(max_fp, o.log10_fp);
      }
      const double n = static_cast<double>(opt.trials);
      const ComposedAttackSpec spec = SpecForSeverity(severity, 0);
      json << "       {\"severity\": " << severity
           << ", \"attack\": {\"noise\": " << spec.noise
           << ", \"jitter_prob\": " << spec.jitter_prob
           << ", \"rounding\": " << spec.rounding
           << ", \"deletion_frac\": " << spec.deletion_frac
           << ", \"region_frac\": " << spec.region_frac
           << ", \"insertion_frac\": " << spec.insertion_frac << "}"
           << ", \"trials\": " << opt.trials
           << ", \"payload_full_rate\": " << static_cast<double>(full) / n
           << ", \"payload_correct_rate\": " << static_cast<double>(correct) / n
           << ", \"verdict_match_rate\": " << static_cast<double>(match) / n
           << ", \"mean_payload_bits_erased\": " << erased / n
           << ", \"mean_channel_bits_erased\": " << ch_erased / n
           << ", \"mean_corrected\": " << corrected / n
           << ", \"mean_filled\": " << filled / n
           << ", \"mean_log10_fp_bound\": " << mean_fp / n
           << ", \"max_log10_fp_bound\": " << max_fp
           << ", \"internal_errors\": " << errors << ", ";
      internal_errors += errors;
      AppendTrialSeeds(json, opt, level_tag);
      json << "}" << (li + 1 < std::size(kSeverities) ? ",\n" : "\n");
    }
    json << "     ],\n";

    // Honest suspects: unmarked original and unrelated random weights.
    const uint64_t honest_tag = codec_tag_base + 99;
    std::cerr << " honest" << std::flush;
    std::vector<HonestOutcome> honest =
        ParallelMap<HonestOutcome>(opt.trials, [&](size_t t) {
          return RunHonestTrial(wl, wm, t, TrialSeed(opt, honest_tag, t));
        });
    size_t fps = 0, honest_errors = 0;
    double worst_fp = 0;  // log10: closest an honest suspect came to a match
    for (const HonestOutcome& h : honest) {
      fps += h.false_positive;
      honest_errors += h.internal_error;
      worst_fp = std::min(worst_fp, h.log10_fp);
    }
    internal_errors += honest_errors;
    json << "     \"honest\": {\"trials\": " << opt.trials
         << ", \"false_positives\": " << fps
         << ", \"internal_errors\": " << honest_errors
         << ", \"min_log10_fp_bound\": " << worst_fp << ", ";
    AppendTrialSeeds(json, opt, honest_tag);
    json << "}}";
    std::cerr << "\n";
  }
  json << "\n  ]\n";
  return internal_errors;
}

int Run(const Options& opt) {
  std::cerr << "planning workload (" << opt.elements << " elements, "
            << ParallelThreads() << " threads)\n";
  std::unique_ptr<Workload> wl = Workload::Build(opt);

  std::ostringstream json;
  json << "{\n";
  json << "  \"workload\": {\"elements\": " << opt.elements
       << ", \"redundancy\": " << opt.redundancy
       << ", \"trials\": " << opt.trials << ", \"seed\": " << opt.seed
       << ", \"capacity_bits\": " << wl->adv->CapacityBits() << "},\n";
  // Reproducibility contract: every level records its explicit trial seeds,
  // derived as below; an attack replays from (spec, seed) alone.
  json << "  \"seed_schedule\": {\"base_seed\": " << opt.seed
       << ", \"stride\": " << kSeedStride
       << ", \"formula\": \"base_seed + level_tag * stride + trial\"},\n";

  size_t internal_errors = 0;

  // Campaign 1: deletion sweep 0..90%.
  std::cerr << "deletion sweep";
  json << "  \"deletion_sweep\": [\n";
  for (int i = 0; i <= 9; ++i) {
    std::cerr << " " << i * 10 << "%" << std::flush;
    LevelSummary s = RunLevel(opt, *wl, i * 0.1, 0.0, static_cast<uint64_t>(i));
    internal_errors += s.internal_errors;
    AppendLevelJson(json, opt, s, i == 9);
  }
  json << "  ],\n";
  std::cerr << "\n";

  // Campaign 2: insertion sweep (spurious rows relative to the active set).
  std::cerr << "insertion sweep";
  json << "  \"insertion_sweep\": [\n";
  for (int i = 0; i <= 4; ++i) {
    std::cerr << " " << i * 25 << "%" << std::flush;
    LevelSummary s =
        RunLevel(opt, *wl, 0.0, i * 0.25, 100 + static_cast<uint64_t>(i));
    internal_errors += s.internal_errors;
    AppendLevelJson(json, opt, s, i == 4);
  }
  json << "  ],\n";
  std::cerr << "\n";

  // Campaign 3: combined deletion + insertion mixes.
  std::cerr << "mixed sweep";
  json << "  \"mixed_sweep\": [\n";
  const double mixes[][2] = {{0.1, 0.1}, {0.3, 0.25}, {0.5, 0.5}, {0.7, 0.5}};
  for (size_t i = 0; i < 4; ++i) {
    std::cerr << " " << mixes[i][0] << "/" << mixes[i][1] << std::flush;
    LevelSummary s = RunLevel(opt, *wl, mixes[i][0], mixes[i][1],
                              200 + static_cast<uint64_t>(i));
    internal_errors += s.internal_errors;
    AppendLevelJson(json, opt, s, i == 3);
  }
  json << "  ],\n";
  std::cerr << "\n";

  // Optional campaign: collusion washout sweep (only with --collusion >= 2,
  // so default reports stay byte-identical to earlier versions).
  if (opt.collusion >= 2) {
    std::cerr << "collusion sweep";
    internal_errors += RunCollusionSweep(opt, *wl, json);
    std::cerr << "\n";
  }

  // Campaign 4: codec x composed-adversary severity grid.
  internal_errors += RunCodecGrid(opt, *wl, json);
  json << ",\n  \"internal_errors\": " << internal_errors << "\n}\n";

  if (!opt.out.empty()) {
    std::ofstream f(opt.out, std::ios::binary);
    if (!f) {
      std::cerr << "cannot write " << opt.out << "\n";
      return 2;
    }
    f << json.str();
    std::cerr << "wrote " << opt.out << "\n";
  } else {
    std::cout << json.str();
  }
  if (internal_errors > 0) {
    std::cerr << "FAIL: " << internal_errors
              << " trial(s) hit an internal detection error\n";
    return 1;
  }
  return 0;
}

int Usage(int code) {
  std::cerr << "usage: qpwm_faultgen [--elements N] [--redundancy R]\n"
               "       [--trials T] [--seed S] [--threads N] [--codec C]\n"
               "       [--collusion C] [--out report.json]\n"
               "codecs: "
            << KnownCodecSpecs()
            << "; --codec restricts the codec grid,\n"
               "grid labels also accept hamming:flat (no interleaving).\n"
               "--collusion C adds a coalition sweep (sizes 2..C, every\n"
               "registered collusion attack) to the report.\n";
  return code;
}

// Strict unsigned parse: the whole value must be a decimal number.
bool ParseU64(const std::string& value, uint64_t& out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(value.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0' && value[0] != '-';
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  // Flags come in "--name value" pairs; a flag without a value, an unknown
  // flag, or a non-numeric value is a usage error (exit 2), never UB.
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return Usage(0);
    if (i + 1 >= argc) {
      std::cerr << flag << " requires a value\n";
      return Usage(2);
    }
    const std::string value = argv[i + 1];
    uint64_t parsed = 0;
    if (flag == "--out") {
      opt.out = value;
      continue;
    }
    if (flag == "--codec") {
      bool known = value == "hamming:flat";
      for (const GridCodec& entry : kGridCodecs) {
        known |= value == entry.label || value == entry.spec;
      }
      if (!known) {
        std::cerr << "unknown codec '" << value << "'\n";
        return Usage(2);
      }
      opt.codec = value;
      continue;
    }
    if (!ParseU64(value, parsed)) {
      std::cerr << flag << " needs an unsigned integer, got '" << value << "'\n";
      return Usage(2);
    }
    if (flag == "--elements") {
      opt.elements = parsed;
    } else if (flag == "--redundancy") {
      opt.redundancy = parsed;
    } else if (flag == "--trials") {
      opt.trials = parsed;
    } else if (flag == "--seed") {
      opt.seed = parsed;
    } else if (flag == "--threads") {
      opt.threads = parsed;
    } else if (flag == "--collusion") {
      opt.collusion = parsed;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return Usage(2);
    }
  }
  if (opt.elements == 0 || opt.redundancy == 0 || opt.trials == 0) {
    std::cerr << "--elements, --redundancy and --trials must be positive\n";
    return 2;
  }
  SetParallelThreads(opt.threads);
  return Run(opt);
}
