#include "qpwm/structure/structure.h"

#include <algorithm>
#include <atomic>

namespace qpwm {

uint64_t GenerationStamp::Next() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void Relation::Seal() { std::sort(tuples_.begin(), tuples_.end()); }

void Relation::SetTuplesUnchecked(std::vector<Tuple> tuples) {
  tuples_ = std::move(tuples);
  set_.clear();
}

void Relation::RebuildSet() const {
  set_.reserve(tuples_.size());
  for (const Tuple& t : tuples_) set_.insert(t);
}

Structure::Structure(Signature sig, size_t universe_size)
    : sig_(std::move(sig)), n_(universe_size) {
  relations_.reserve(sig_.size());
  for (const auto& sym : sig_.symbols()) {
    relations_.emplace_back(sym.name, sym.arity);
  }
}

const Relation& Structure::relation(const std::string& name) const {
  auto idx = sig_.Find(name);
  QPWM_CHECK(idx.ok());
  return relations_[idx.value()];
}

void Structure::AddTuple(size_t rel, Tuple t) {
  QPWM_CHECK_LT(rel, relations_.size());
  for (ElemId e : t) QPWM_CHECK_LT(e, n_);
  gen_.Bump();
  relations_[rel].Add(std::move(t));
}

void Structure::AddTuple(const std::string& rel, Tuple t) {
  auto idx = sig_.Find(rel);
  QPWM_CHECK(idx.ok());
  AddTuple(idx.value(), std::move(t));
}

void Structure::Seal() {
  gen_.Bump();  // sorting reorders tuple indices cached per structure
  for (auto& r : relations_) r.Seal();
}

void Structure::SetElementName(ElemId e, std::string name) {
  QPWM_CHECK_LT(e, n_);
  if (element_names_.empty()) element_names_.resize(n_);
  name_index_[name] = e;
  element_names_[e] = std::move(name);
}

const std::string& Structure::ElementName(ElemId e) const {
  static const std::string kEmpty;
  if (element_names_.empty() || e >= element_names_.size()) return kEmpty;
  return element_names_[e];
}

Result<ElemId> Structure::FindElement(const std::string& name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) return Status::NotFound("no element named '" + name + "'");
  return it->second;
}

size_t Structure::TotalTuples() const {
  size_t total = 0;
  for (const auto& r : relations_) total += r.size();
  return total;
}

IncidenceIndex::IncidenceIndex(const Structure& s) : incident_(s.universe_size()) {
  for (size_t r = 0; r < s.num_relations(); ++r) {
    const auto& tuples = s.relation(r).tuples();
    for (size_t t = 0; t < tuples.size(); ++t) {
      // Register each element once per tuple even if it repeats in the tuple.
      ElemId last_seen = static_cast<ElemId>(-1);
      Tuple sorted = tuples[t];
      std::sort(sorted.begin(), sorted.end());
      for (ElemId e : sorted) {
        if (e == last_seen) continue;
        last_seen = e;
        incident_[e].push_back({static_cast<uint32_t>(r), static_cast<uint32_t>(t)});
      }
    }
  }
}

}  // namespace qpwm
