#include "qpwm/tree/automaton.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <tuple>

#include "qpwm/util/hash.h"

namespace qpwm {
namespace {

constexpr uint32_t kMaxStates = (1u << 21) - 3;
// Partner slot in minimization signatures for an absent child.
constexpr uint32_t kAbsentClass = UINT32_MAX;

}  // namespace

// ---------------------------------------------------------------------------
// Dta
// ---------------------------------------------------------------------------

Dta::Dta(uint32_t num_states, uint32_t alphabet_size)
    : num_states_(num_states),
      alphabet_size_(alphabet_size),
      accepting_(num_states + 1, false) {
  QPWM_CHECK_LE(num_states, kMaxStates);
  QPWM_CHECK_LE(alphabet_size, kMaxStates);
}

uint64_t Dta::PackKey(State l, State r, uint32_t sym) {
  uint64_t lv = (l == kAbsentChild) ? 0 : static_cast<uint64_t>(l) + 1;
  uint64_t rv = (r == kAbsentChild) ? 0 : static_cast<uint64_t>(r) + 1;
  return (lv << 42) | (rv << 21) | sym;
}

std::tuple<State, State, uint32_t> Dta::UnpackKey(uint64_t key) {
  uint64_t lv = key >> 42;
  uint64_t rv = (key >> 21) & ((1u << 21) - 1);
  uint32_t sym = static_cast<uint32_t>(key & ((1u << 21) - 1));
  State l = lv == 0 ? kAbsentChild : static_cast<State>(lv - 1);
  State r = rv == 0 ? kAbsentChild : static_cast<State>(rv - 1);
  return {l, r, sym};
}

void Dta::AddTransition(State left, State right, uint32_t sym, State to) {
  QPWM_CHECK(left == kAbsentChild || left <= num_states_);
  QPWM_CHECK(right == kAbsentChild || right <= num_states_);
  QPWM_CHECK_LT(sym, alphabet_size_);
  QPWM_CHECK_LE(to, num_states_);
  auto [it, inserted] = delta_.emplace(PackKey(left, right, sym), to);
  QPWM_CHECK(inserted ? true : it->second == to);
}

State Dta::Step(State left, State right, uint32_t sym) const {
  if (left == sink() || right == sink()) return sink();
  auto it = delta_.find(PackKey(left, right, sym));
  return it == delta_.end() ? sink() : it->second;
}

std::vector<State> Dta::Run(const BinaryTree& t,
                            const std::vector<uint32_t>& symbols) const {
  QPWM_CHECK_EQ(symbols.size(), t.size());
  std::vector<State> state(t.size(), sink());
  for (NodeId v : t.Postorder()) {
    State l = t.left(v) == kNoNode ? kAbsentChild : state[t.left(v)];
    State r = t.right(v) == kNoNode ? kAbsentChild : state[t.right(v)];
    state[v] = Step(l, r, symbols[v]);
  }
  return state;
}

State Dta::RunRoot(const BinaryTree& t, const std::vector<uint32_t>& symbols) const {
  return Run(t, symbols)[t.root()];
}

Dta Dta::Complement() const {
  Dta out = *this;
  for (size_t q = 0; q <= num_states_; ++q) out.accepting_[q] = !out.accepting_[q];
  return out;
}

Dta Dta::Product(const Dta& a, const Dta& b, bool conjunction) {
  QPWM_CHECK_EQ(a.alphabet_size_, b.alphabet_size_);
  const uint32_t alphabet = a.alphabet_size_;

  // Reachable pairs, interned. The pair (sink_a, sink_b) is the result's
  // implicit sink and is never interned.
  std::unordered_map<uint64_t, State> intern;
  std::vector<std::pair<State, State>> pairs;
  std::deque<State> worklist;

  auto pack = [](State qa, State qb) {
    return (static_cast<uint64_t>(qa) << 32) | qb;
  };
  auto intern_pair = [&](State qa, State qb) -> State {
    auto [it, inserted] = intern.emplace(pack(qa, qb), static_cast<State>(pairs.size()));
    if (inserted) {
      pairs.emplace_back(qa, qb);
      worklist.push_back(it->second);
    }
    return it->second;
  };

  struct Pending {
    State l, r;
    uint32_t sym;
    State to;
  };
  std::vector<Pending> transitions;

  auto step_pair = [&](State la, State lb, State ra, State rb, uint32_t sym,
                       State lhs_id, State rhs_id) {
    State ta = a.Step(la, ra, sym);
    State tb = b.Step(lb, rb, sym);
    if (ta == a.sink() && tb == b.sink()) return;  // implicit result sink
    State to = intern_pair(ta, tb);
    transitions.push_back({lhs_id, rhs_id, sym, to});
  };

  // Leaf seeds.
  for (uint32_t sym = 0; sym < alphabet; ++sym) {
    step_pair(kAbsentChild, kAbsentChild, kAbsentChild, kAbsentChild, sym,
              kAbsentChild, kAbsentChild);
  }

  // Expansion: combine each newly discovered pair with everything known.
  size_t processed = 0;
  while (processed < pairs.size()) {
    State p = static_cast<State>(processed++);
    auto [pa, pb] = pairs[p];
    for (uint32_t sym = 0; sym < alphabet; ++sym) {
      step_pair(pa, pb, kAbsentChild, kAbsentChild, sym, p, kAbsentChild);
      step_pair(kAbsentChild, kAbsentChild, pa, pb, sym, kAbsentChild, p);
      // Note: pairs.size() grows during iteration; q < pairs.size() reads the
      // live size so every (p, q) combo is eventually covered by the outer
      // loop reaching q and re-combining with all earlier pairs, p included.
      for (State q = 0; q <= p; ++q) {
        auto [qa, qb] = pairs[q];
        step_pair(pa, pb, qa, qb, sym, p, q);
        if (q != p) step_pair(qa, qb, pa, pb, sym, q, p);
      }
    }
  }

  Dta out(static_cast<uint32_t>(pairs.size()), alphabet);
  for (const Pending& tr : transitions) out.AddTransition(tr.l, tr.r, tr.sym, tr.to);
  for (State q = 0; q < pairs.size(); ++q) {
    bool acc_a = a.IsAccepting(pairs[q].first);
    bool acc_b = b.IsAccepting(pairs[q].second);
    out.SetAccepting(q, conjunction ? (acc_a && acc_b) : (acc_a || acc_b));
  }
  bool sink_acc_a = a.IsAccepting(a.sink());
  bool sink_acc_b = b.IsAccepting(b.sink());
  out.SetAccepting(out.sink(),
                   conjunction ? (sink_acc_a && sink_acc_b) : (sink_acc_a || sink_acc_b));
  return out;
}

bool Dta::IsEmpty() const {
  // Forward closure from leaf transitions; the sink is reachable on every
  // nonempty alphabet (a one-node tree whose leaf key is missing — or, if
  // all leaf keys exist, it may still be unreachable, so seed only real
  // reachability plus the sink when some leaf key is absent).
  std::vector<bool> reachable(num_states_ + 1, false);
  size_t leaf_keys = 0;
  ForEachTransition([&](State l, State r, uint32_t, State to) {
    if (l == kAbsentChild && r == kAbsentChild) {
      reachable[to] = true;
      ++leaf_keys;
    }
  });
  if (leaf_keys < alphabet_size_) reachable[sink()] = true;

  bool changed = true;
  while (changed) {
    changed = false;
    ForEachTransition([&](State l, State r, uint32_t, State to) {
      bool l_ok = l == kAbsentChild || reachable[l];
      bool r_ok = r == kAbsentChild || reachable[r];
      if (l_ok && r_ok && !reachable[to]) {
        reachable[to] = true;
        changed = true;
      }
    });
    // Sink-involving parents: any reachable state can pair with the sink
    // (or have a missing key) and fall into the sink.
    if (!reachable[sink()]) {
      // The sink becomes reachable as soon as some (l, r, sym) combination
      // of reachable states has no stored transition. Checking that exactly
      // is as costly as completing the table; over-approximating the other
      // way (never via missing keys) would be unsound for emptiness when the
      // sink accepts. We instead check exhaustively but lazily:
      std::vector<State> live;
      for (State q = 0; q < num_states_; ++q) {
        if (reachable[q]) live.push_back(q);
      }
      std::vector<State> children = live;
      children.push_back(kAbsentChild);
      bool sink_hit = false;
      for (State l : children) {
        for (State r : children) {
          if (l == kAbsentChild && r == kAbsentChild) continue;
          for (uint32_t sym = 0; sym < alphabet_size_ && !sink_hit; ++sym) {
            if (delta_.find(PackKey(l, r, sym)) == delta_.end()) sink_hit = true;
          }
          if (sink_hit) break;
        }
        if (sink_hit) break;
      }
      if (sink_hit) {
        reachable[sink()] = true;
        changed = true;
      }
    }
  }
  for (State q = 0; q <= num_states_; ++q) {
    if (reachable[q] && accepting_[q]) return false;
  }
  return true;
}

bool Dta::Equivalent(const Dta& a, const Dta& b) {
  QPWM_CHECK_EQ(a.alphabet_size(), b.alphabet_size());
  // symmetric difference empty: (a & !b) | (!a & b)
  Dta left = Product(a, b.Complement(), true);
  Dta right = Product(a.Complement(), b, true);
  return Product(left, right, false).IsEmpty();
}

Nta Dta::ToNta() const {
  Nta out(num_states_, alphabet_size_);
  ForEachTransition([&](State l, State r, uint32_t sym, State to) {
    out.AddTransition(l, r, sym, to);
  });
  for (State q = 0; q <= num_states_; ++q) out.SetAccepting(q, accepting_[q]);
  return out;
}

Dta Dta::RemapSymbols(uint32_t new_alphabet_size,
                      const std::vector<std::vector<uint32_t>>& new_syms) const {
  QPWM_CHECK_EQ(new_syms.size(), alphabet_size_);
  Dta out(num_states_, new_alphabet_size);
  ForEachTransition([&](State l, State r, uint32_t sym, State to) {
    for (uint32_t ns : new_syms[sym]) out.AddTransition(l, r, ns, to);
  });
  out.accepting_ = accepting_;
  return out;
}

namespace {

// Minimization signature entry: (side, sym, partner class, target class).
using SigEntry = std::tuple<uint8_t, uint32_t, uint32_t, uint32_t>;

}  // namespace

Dta Dta::Minimize() const {
  const uint32_t n = num_states_ + 1;  // including sink (last id)

  // --- Reachability (forward, from leaf transitions). Sink always reachable.
  std::vector<bool> reachable(n, false);
  reachable[sink()] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    ForEachTransition([&](State l, State r, uint32_t sym, State to) {
      (void)sym;
      bool l_ok = l == kAbsentChild || reachable[l];
      bool r_ok = r == kAbsentChild || reachable[r];
      if (l_ok && r_ok && !reachable[to]) {
        reachable[to] = true;
        changed = true;
      }
    });
  }

  // --- Partition refinement. Unreachable states are parked in a throwaway
  // class that never constrains anything (their transitions are ignored).
  std::vector<uint32_t> cls(n);
  for (State q = 0; q < n; ++q) {
    cls[q] = !reachable[q] ? 2u : (accepting_[q] ? 1u : 0u);
  }
  size_t num_classes = 3;

  for (;;) {
    // Build signatures from stored transitions (skipping sink-class targets:
    // those are indistinguishable from missing transitions).
    const uint32_t sink_cls = cls[sink()];
    std::vector<std::vector<SigEntry>> sig(n);
    ForEachTransition([&](State l, State r, uint32_t sym, State to) {
      bool l_ok = l == kAbsentChild || reachable[l];
      bool r_ok = r == kAbsentChild || reachable[r];
      if (!l_ok || !r_ok) return;
      if (cls[to] == sink_cls) return;
      uint32_t lc = l == kAbsentChild ? kAbsentClass : cls[l];
      uint32_t rc = r == kAbsentChild ? kAbsentClass : cls[r];
      if (l != kAbsentChild) sig[l].emplace_back(0, sym, rc, cls[to]);
      if (r != kAbsentChild) sig[r].emplace_back(1, sym, lc, cls[to]);
    });

    std::map<std::pair<uint32_t, std::vector<SigEntry>>, uint32_t> next_ids;
    std::vector<uint32_t> next(n);
    for (State q = 0; q < n; ++q) {
      if (!reachable[q]) {
        next[q] = UINT32_MAX;  // placeholder, remapped below
        continue;
      }
      auto& s = sig[q];
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      auto key = std::make_pair(cls[q], std::move(s));
      auto [it, inserted] =
          next_ids.emplace(std::move(key), static_cast<uint32_t>(next_ids.size()));
      (void)inserted;
      next[q] = it->second;
    }
    uint32_t junk = static_cast<uint32_t>(next_ids.size());
    for (State q = 0; q < n; ++q) {
      if (!reachable[q]) next[q] = junk;
    }
    size_t new_count = next_ids.size() + 1;
    bool stable = new_count == num_classes;
    cls = std::move(next);
    num_classes = new_count;
    if (stable) break;
  }

  // --- Rebuild: sink's class becomes the new sink. Classes renumbered so the
  // sink class lands last; the junk class collapses into the sink as well
  // (unreachable states have no observable behavior).
  const uint32_t sink_cls = cls[sink()];
  uint32_t junk_cls = UINT32_MAX;  // class of unreachable states, if any
  for (State q = 0; q < n; ++q) {
    if (!reachable[q]) {
      junk_cls = cls[q];
      break;
    }
  }

  std::vector<uint32_t> renum(num_classes + 1, UINT32_MAX);
  uint32_t next_id = 0;
  for (State q = 0; q < n; ++q) {
    uint32_t c = cls[q];
    if (c == sink_cls || c == junk_cls) continue;
    if (renum[c] == UINT32_MAX) renum[c] = next_id++;
  }
  const uint32_t new_real = next_id;  // new sink id == new_real
  auto map_cls = [&](uint32_t c) {
    return (c == sink_cls || c == junk_cls) ? new_real : renum[c];
  };

  Dta out(new_real, alphabet_size_);
  std::unordered_map<uint64_t, State> dedup;
  ForEachTransition([&](State l, State r, uint32_t sym, State to) {
    bool l_ok = l == kAbsentChild || reachable[l];
    bool r_ok = r == kAbsentChild || reachable[r];
    if (!l_ok || !r_ok) return;
    if (map_cls(cls[to]) == new_real) return;  // to-sink: leave implicit
    State nl = l == kAbsentChild ? kAbsentChild : map_cls(cls[l]);
    State nr = r == kAbsentChild ? kAbsentChild : map_cls(cls[r]);
    if (nl == new_real || nr == new_real) return;  // from-sink: absorbed
    out.AddTransition(nl, nr, sym, map_cls(cls[to]));
  });
  for (State q = 0; q < n; ++q) {
    if (!reachable[q]) continue;
    out.SetAccepting(map_cls(cls[q]), accepting_[q]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Nta
// ---------------------------------------------------------------------------

Nta::Nta(uint32_t num_states, uint32_t alphabet_size)
    : num_states_(num_states),
      alphabet_size_(alphabet_size),
      accepting_(num_states + 1, false),
      variants_(alphabet_size, 1) {
  QPWM_CHECK_LE(num_states, kMaxStates);
  QPWM_CHECK_LE(alphabet_size, kMaxStates);
}

void Nta::AddTransition(State left, State right, uint32_t sym, State to) {
  QPWM_CHECK(left == kAbsentChild || left <= num_states_);
  QPWM_CHECK(right == kAbsentChild || right <= num_states_);
  QPWM_CHECK_LT(sym, alphabet_size_);
  QPWM_CHECK_LE(to, num_states_);
  delta_[Dta::PackKey(left, right, sym)].push_back(to);
}

std::vector<State> Nta::Targets(State left, State right, uint32_t sym) const {
  if (left == sink() || right == sink()) return {sink()};
  std::vector<State> out;
  auto it = delta_.find(Dta::PackKey(left, right, sym));
  if (it != delta_.end()) out = it->second;
  // A branch that stored no target died in the sink; the sink joins the set
  // exactly when some of the symbol's branches are missing.
  if (out.size() < variants_[sym]) out.push_back(sink());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Nta Nta::RemapSymbols(uint32_t new_alphabet_size,
                      const std::vector<std::vector<uint32_t>>& new_syms) const {
  QPWM_CHECK_EQ(new_syms.size(), alphabet_size_);
  Nta out(num_states_, new_alphabet_size);
  // Every consumer sorts target sets before use, so fill order is free.
  // qpwm-lint: allow(unordered-iter) -- targets sorted by all consumers
  for (const auto& [key, targets] : delta_) {
    auto [l, r, sym] = Dta::UnpackKey(key);
    for (uint32_t ns : new_syms[sym]) {
      for (State t : targets) out.AddTransition(l, r, ns, t);
    }
  }
  out.accepting_ = accepting_;
  // Each new symbol accumulates the branch counts of its preimages.
  std::vector<uint32_t> counts(new_alphabet_size, 0);
  for (uint32_t sym = 0; sym < alphabet_size_; ++sym) {
    for (uint32_t ns : new_syms[sym]) counts[ns] += variants_[sym];
  }
  for (uint32_t ns = 0; ns < new_alphabet_size; ++ns) {
    if (counts[ns] > 0) out.variants_[ns] = counts[ns];
  }
  return out;
}

Dta Nta::Determinize() const {
  // --- Symbol-class compression. Symbols with identical transition rows
  // (and branch counts) are language-interchangeable; subset construction
  // runs over one representative per class and the result is expanded back
  // afterwards. This is what keeps the D^2 x |Sigma| table affordable: the
  // pebble-track alphabets here are large but highly redundant.
  {
    // Exact per-symbol row: (branch count, sorted list of (child key, sorted
    // targets)). Exactness matters — a hash collision here would silently
    // merge languages.
    using Row = std::pair<uint32_t, std::vector<std::pair<uint64_t, std::vector<State>>>>;
    std::vector<Row> row(alphabet_size_);
    for (uint32_t sym = 0; sym < alphabet_size_; ++sym) row[sym].first = variants_[sym];
    // qpwm-lint: allow(unordered-iter) -- rows are sorted before hashing
    for (const auto& [key, targets] : delta_) {
      auto [l, r, sym] = Dta::UnpackKey(key);
      std::vector<State> sorted = targets;
      std::sort(sorted.begin(), sorted.end());
      row[sym].second.emplace_back(Dta::PackKey(l, r, 0), std::move(sorted));
    }
    std::map<Row, uint32_t> class_of_row;
    std::vector<std::vector<uint32_t>> members;
    std::vector<uint32_t> class_of_sym(alphabet_size_);
    for (uint32_t sym = 0; sym < alphabet_size_; ++sym) {
      std::sort(row[sym].second.begin(), row[sym].second.end());
      auto [it, inserted] =
          class_of_row.emplace(std::move(row[sym]), static_cast<uint32_t>(members.size()));
      if (inserted) members.emplace_back();
      class_of_sym[sym] = it->second;
      members[it->second].push_back(sym);
    }
    if (members.size() < alphabet_size_) {
      // Build the compressed NTA over class representatives, determinize it
      // (recursively — the compressed alphabet has all-distinct classes so
      // this recursion happens exactly once), then expand.
      Nta compressed(num_states_, static_cast<uint32_t>(members.size()));
      // One source entry per compressed key (reps only): order cannot vary.
      // qpwm-lint: allow(unordered-iter) -- single entry per compressed key
      for (const auto& [key, targets] : delta_) {
        auto [l, r, sym] = Dta::UnpackKey(key);
        if (members[class_of_sym[sym]][0] != sym) continue;  // reps only
        for (State t : targets) compressed.AddTransition(l, r, class_of_sym[sym], t);
      }
      for (uint32_t c = 0; c < members.size(); ++c) {
        compressed.SetVariants(c, variants_[members[c][0]]);
      }
      compressed.accepting_ = accepting_;
      Dta small = compressed.Determinize().Minimize();
      return small.RemapSymbols(alphabet_size_, members);
    }
  }

  std::map<std::vector<State>, State> intern;
  std::vector<std::vector<State>> subsets;

  // When the sink is non-accepting, the {sink} subset is pure garbage: it
  // absorbs (Targets(sink, *, s) = {sink}) and never accepts, so it can be
  // the *result's* implicit sink — its transitions are neither stored nor
  // expanded. This is what keeps subset construction tractable on sparse
  // automata.
  const bool garbage_sink = !accepting_[sink()];
  const std::vector<State> sink_subset{sink()};
  constexpr State kToSink = UINT32_MAX - 7;

  auto intern_subset = [&](std::vector<State> s) -> State {
    if (garbage_sink && s == sink_subset) return kToSink;
    auto [it, inserted] = intern.emplace(std::move(s), static_cast<State>(subsets.size()));
    if (inserted) subsets.push_back(it->first);
    return it->second;
  };

  // Allocation-free inner loop: `seen` is a membership bitmap reused across
  // calls, `out` collects the union of Targets without intermediate vectors.
  std::vector<uint8_t> seen(num_states_ + 2, 0);
  auto combine = [&](const std::vector<State>* sl, const std::vector<State>* sr,
                     uint32_t sym) -> std::vector<State> {
    std::vector<State> out;
    auto add_all = [&](State ql, State qr) {
      if (ql == sink() || qr == sink()) {
        if (!seen[sink()]) {
          seen[sink()] = 1;
          out.push_back(sink());
        }
        return;
      }
      auto it = delta_.find(Dta::PackKey(ql, qr, sym));
      size_t stored = 0;
      if (it != delta_.end()) {
        stored = it->second.size();
        for (State t : it->second) {
          if (!seen[t]) {
            seen[t] = 1;
            out.push_back(t);
          }
        }
      }
      if (stored < variants_[sym] && !seen[sink()]) {
        seen[sink()] = 1;
        out.push_back(sink());
      }
    };
    if (sl == nullptr && sr == nullptr) {
      add_all(kAbsentChild, kAbsentChild);
    } else if (sr == nullptr) {
      for (State ql : *sl) add_all(ql, kAbsentChild);
    } else if (sl == nullptr) {
      for (State qr : *sr) add_all(kAbsentChild, qr);
    } else {
      for (State ql : *sl) {
        for (State qr : *sr) add_all(ql, qr);
      }
    }
    for (State t : out) seen[t] = 0;
    std::sort(out.begin(), out.end());
    return out;
  };

  struct Pending {
    State l, r;
    uint32_t sym;
    State to;
  };
  std::vector<Pending> transitions;

  auto record = [&](State l, State r, uint32_t sym, State to) {
    if (to == kToSink) return;  // implicit in the result
    transitions.push_back({l, r, sym, to});
  };

  // Leaf seeds.
  for (uint32_t sym = 0; sym < alphabet_size_; ++sym) {
    record(kAbsentChild, kAbsentChild, sym, intern_subset(combine(nullptr, nullptr, sym)));
  }

  const bool trace = std::getenv("QPWM_MSO_TRACE") != nullptr;
  size_t processed = 0;
  while (processed < subsets.size()) {
    State p = static_cast<State>(processed++);
    if (trace && processed % 64 == 0) {
      std::fprintf(stderr, "[determinize] processed=%zu discovered=%zu transitions=%zu\n",
                   processed, subsets.size(), transitions.size());
    }
    std::vector<State> sp = subsets[p];  // copy: subsets may reallocate
    for (uint32_t sym = 0; sym < alphabet_size_; ++sym) {
      record(p, kAbsentChild, sym, intern_subset(combine(&sp, nullptr, sym)));
      record(kAbsentChild, p, sym, intern_subset(combine(nullptr, &sp, sym)));
      for (State q = 0; q <= p; ++q) {
        std::vector<State> sq = subsets[q];
        record(p, q, sym, intern_subset(combine(&sp, &sq, sym)));
        if (q != p) {
          record(q, p, sym, intern_subset(combine(&sq, &sp, sym)));
        }
      }
    }
  }

  Dta out(static_cast<uint32_t>(subsets.size()), alphabet_size_);
  for (const Pending& tr : transitions) out.AddTransition(tr.l, tr.r, tr.sym, tr.to);
  for (State s = 0; s < subsets.size(); ++s) {
    bool acc = false;
    for (State q : subsets[s]) acc = acc || accepting_[q];
    out.SetAccepting(s, acc);
  }
  return out;
}

}  // namespace qpwm
