// Fixture: view-escape (c) — a returned lambda capturing locals by
// reference; the captures dangle at every call site. Never compiled.
#include <functional>

std::function<int()> MakeCounter() {
  int count = 0;
  return [&count] { return ++count; };
}
