#include "qpwm/logic/formula.h"

#include <algorithm>

#include "qpwm/util/check.h"
#include "qpwm/util/str.h"

namespace qpwm {

FormulaPtr Formula::Clone() const {
  auto out = std::make_unique<Formula>();
  out->kind = kind;
  out->relation = relation;
  out->vars = vars;
  out->set_var = set_var;
  out->quantified_var = quantified_var;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  return out;
}

std::string Formula::ToString() const {
  switch (kind) {
    case FormulaKind::kAtom: {
      std::vector<std::string> args = vars;
      return StrCat(relation, "(", Join(args, ", "), ")");
    }
    case FormulaKind::kEq:
      return StrCat(vars[0], " = ", vars[1]);
    case FormulaKind::kSetMember:
      return StrCat(vars[0], " in ", set_var);
    case FormulaKind::kNot:
      return StrCat("~(", left->ToString(), ")");
    case FormulaKind::kAnd:
      return StrCat("(", left->ToString(), " & ", right->ToString(), ")");
    case FormulaKind::kOr:
      return StrCat("(", left->ToString(), " | ", right->ToString(), ")");
    case FormulaKind::kExists:
      return StrCat("exists ", quantified_var, " (", left->ToString(), ")");
    case FormulaKind::kForall:
      return StrCat("forall ", quantified_var, " (", left->ToString(), ")");
    case FormulaKind::kExistsSet:
      return StrCat("existsset ", set_var, " (", left->ToString(), ")");
    case FormulaKind::kForallSet:
      return StrCat("forallset ", set_var, " (", left->ToString(), ")");
  }
  return "?";
}

namespace {

void CollectFree(const Formula& f, std::set<std::string>& bound_fo,
                 std::set<std::string>& bound_so, std::set<std::string>& free_fo,
                 std::set<std::string>& free_so) {
  switch (f.kind) {
    case FormulaKind::kAtom:
    case FormulaKind::kEq:
      for (const auto& v : f.vars) {
        if (!bound_fo.count(v)) free_fo.insert(v);
      }
      break;
    case FormulaKind::kSetMember:
      if (!bound_fo.count(f.vars[0])) free_fo.insert(f.vars[0]);
      if (!bound_so.count(f.set_var)) free_so.insert(f.set_var);
      break;
    case FormulaKind::kNot:
      CollectFree(*f.left, bound_fo, bound_so, free_fo, free_so);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      CollectFree(*f.left, bound_fo, bound_so, free_fo, free_so);
      CollectFree(*f.right, bound_fo, bound_so, free_fo, free_so);
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      bool inserted = bound_fo.insert(f.quantified_var).second;
      CollectFree(*f.left, bound_fo, bound_so, free_fo, free_so);
      if (inserted) bound_fo.erase(f.quantified_var);
      break;
    }
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet: {
      bool inserted = bound_so.insert(f.set_var).second;
      CollectFree(*f.left, bound_fo, bound_so, free_fo, free_so);
      if (inserted) bound_so.erase(f.set_var);
      break;
    }
  }
}

}  // namespace

std::set<std::string> Formula::FreeVars() const {
  std::set<std::string> bound_fo, bound_so, free_fo, free_so;
  CollectFree(*this, bound_fo, bound_so, free_fo, free_so);
  return free_fo;
}

std::set<std::string> Formula::FreeSetVars() const {
  std::set<std::string> bound_fo, bound_so, free_fo, free_so;
  CollectFree(*this, bound_fo, bound_so, free_fo, free_so);
  return free_so;
}

uint32_t Formula::QuantifierRank() const {
  uint32_t l = left ? left->QuantifierRank() : 0;
  uint32_t r = right ? right->QuantifierRank() : 0;
  uint32_t sub = std::max(l, r);
  switch (kind) {
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet:
      return sub + 1;
    default:
      return sub;
  }
}

FormulaPtr MakeAtom(std::string relation, std::vector<std::string> vars) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kAtom;
  f->relation = std::move(relation);
  f->vars = std::move(vars);
  return f;
}

FormulaPtr MakeEq(std::string x, std::string y) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kEq;
  f->vars = {std::move(x), std::move(y)};
  return f;
}

FormulaPtr MakeSetMember(std::string x, std::string set_var) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kSetMember;
  f->vars = {std::move(x)};
  f->set_var = std::move(set_var);
  return f;
}

FormulaPtr MakeNot(FormulaPtr inner) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kNot;
  f->left = std::move(inner);
  return f;
}

FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kAnd;
  f->left = std::move(a);
  f->right = std::move(b);
  return f;
}

FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kOr;
  f->left = std::move(a);
  f->right = std::move(b);
  return f;
}

FormulaPtr MakeExists(std::string var, FormulaPtr body) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kExists;
  f->quantified_var = std::move(var);
  f->left = std::move(body);
  return f;
}

FormulaPtr MakeForall(std::string var, FormulaPtr body) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kForall;
  f->quantified_var = std::move(var);
  f->left = std::move(body);
  return f;
}

FormulaPtr MakeExistsSet(std::string set_var, FormulaPtr body) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kExistsSet;
  f->set_var = std::move(set_var);
  f->left = std::move(body);
  return f;
}

FormulaPtr MakeForallSet(std::string set_var, FormulaPtr body) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kForallSet;
  f->set_var = std::move(set_var);
  f->left = std::move(body);
  return f;
}

bool IsFirstOrder(const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kSetMember:
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet:
      return false;
    default:
      break;
  }
  if (f.left && !IsFirstOrder(*f.left)) return false;
  if (f.right && !IsFirstOrder(*f.right)) return false;
  return true;
}

}  // namespace qpwm
