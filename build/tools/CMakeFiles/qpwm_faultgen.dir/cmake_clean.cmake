file(REMOVE_RECURSE
  "CMakeFiles/qpwm_faultgen.dir/qpwm_faultgen.cpp.o"
  "CMakeFiles/qpwm_faultgen.dir/qpwm_faultgen.cpp.o.d"
  "qpwm_faultgen"
  "qpwm_faultgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_faultgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
