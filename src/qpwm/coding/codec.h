// Error-correcting message codecs layered over the raw watermark channel.
//
// The adversarial wrapper (Khanna-Zane majority groups) yields one *channel
// bit* per pair group, together with soft information: how decisively the
// group voted (the margin) and whether it survived at all (erasure). Naive
// repetition spends the whole redundancy budget on a single failure mode —
// a structural attack that wipes a group still kills its bit. A codec turns
// the l channel bits into k < l payload bits with cross-bit redundancy, so
// wiped or flipped channel bits are *corrected* from the surviving ones.
//
// All decoders here are soft-decision: they consume per-bit signed
// confidences (scaled vote differences) plus erasure flags, never just hard
// bits. Erased positions contribute zero correlation — exactly the "abstain,
// don't fabricate" semantics of the channel layer, lifted to the code.
//
// Codecs are block codes described by (BlockLength, PayloadPerBlock); the
// channel is split into floor(l / BlockLength) blocks and trailing channel
// bits stay unused (they carry fixed zeros). The identity codec makes the
// coded path collapse to the raw channel bit-for-bit.
#ifndef QPWM_CODING_CODEC_H_
#define QPWM_CODING_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qpwm/util/bitvec.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Soft channel symbol for one codeword bit. `value` is a signed confidence
/// in [-1, 1]: the sign is the hard decision (positive = bit 1), the
/// magnitude is the scaled vote difference of the group that carried the
/// bit. An erased symbol carries no information (its value is ignored).
struct SoftBit {
  double value = 0;
  bool erased = false;
};

/// Decoder output: the payload plus per-bit soft accounting.
struct DecodedMessage {
  BitVec payload;
  /// Per payload bit, in [0, 1]: normalized score gap between the chosen
  /// value and the best codeword deciding the bit the other way. 0 = tie
  /// (untrusted), matching the channel layer's margin-0 semantics.
  std::vector<double> confidences;
  /// Per payload bit: true iff its whole block was erased — the bit is
  /// reported as 0 but carries no information.
  std::vector<bool> bit_erased;
  /// Surviving channel bits whose hard decision the decoder overrode.
  size_t corrected = 0;
  /// Erased channel bits the decoder filled in from code redundancy.
  size_t filled = 0;
  /// Payload bits with/without information.
  size_t bits_recovered = 0;
  size_t bits_erased = 0;

  bool complete() const { return bits_erased == 0; }
};

/// A block code over the watermark channel. Implementations must be
/// deterministic and stateless after construction (decoding runs inside the
/// multi-suspect parallel fan-out).
class MessageCodec {
 public:
  virtual ~MessageCodec() = default;

  /// Stable name, echoed into campaign reports ("identity", "hamming", ...).
  virtual std::string Name() const = 0;
  /// Channel bits per block (n of the block code).
  virtual size_t BlockLength() const = 0;
  /// Payload bits per block (k of the block code).
  virtual size_t PayloadPerBlock() const = 0;
  /// Minimum Hamming distance of the block code (1 for identity); the
  /// decoder corrects floor((d-1)/2) errors or d-1 erasures per block.
  virtual size_t MinDistance() const = 0;

  /// Encodes payload bits [k0, k0 + PayloadPerBlock()) of `payload` into
  /// code bits [n0, n0 + BlockLength()) of `code`.
  virtual void EncodeBlock(const BitVec& payload, size_t k0, BitVec& code,
                           size_t n0) const = 0;

  /// Decodes one block from `code` (BlockLength() soft symbols), writing
  /// payload bits [k0, k0 + PayloadPerBlock()) and their soft accounting
  /// into `out`.
  virtual void DecodeBlock(const SoftBit* code, size_t k0,
                           DecodedMessage& out) const = 0;

  // --- Derived whole-message helpers (non-virtual) --------------------------

  /// Blocks that fit a channel of `channel_bits` raw bits.
  size_t NumBlocks(size_t channel_bits) const {
    return channel_bits / BlockLength();
  }
  /// Payload capacity over `channel_bits` raw bits.
  size_t PayloadBits(size_t channel_bits) const {
    return NumBlocks(channel_bits) * PayloadPerBlock();
  }
  /// Channel bits actually carrying code symbols (<= channel_bits).
  size_t UsedBits(size_t channel_bits) const {
    return NumBlocks(channel_bits) * BlockLength();
  }

  /// Encodes a whole payload (size a multiple of PayloadPerBlock()) into a
  /// codeword of payload.size() / k * n bits, block by block.
  BitVec Encode(const BitVec& payload) const;

  /// Decodes a whole codeword (code.size() a multiple of BlockLength()).
  DecodedMessage Decode(const std::vector<SoftBit>& code) const;
};

/// Uncoded pass-through: one channel bit per payload bit. The coded path
/// with this codec is bit-identical to the raw channel.
class IdentityCodec : public MessageCodec {
 public:
  std::string Name() const override { return "identity"; }
  size_t BlockLength() const override { return 1; }
  size_t PayloadPerBlock() const override { return 1; }
  size_t MinDistance() const override { return 1; }
  void EncodeBlock(const BitVec& payload, size_t k0, BitVec& code,
                   size_t n0) const override;
  void DecodeBlock(const SoftBit* code, size_t k0,
                   DecodedMessage& out) const override;
};

/// Repetition at the codec level: r channel bits per payload bit, decoded by
/// a confidence-weighted (not merely counted) majority. The baseline the ECC
/// codecs are measured against.
class RepetitionCodec : public MessageCodec {
 public:
  explicit RepetitionCodec(size_t r);
  std::string Name() const override;
  size_t BlockLength() const override { return r_; }
  size_t PayloadPerBlock() const override { return 1; }
  size_t MinDistance() const override { return r_; }
  void EncodeBlock(const BitVec& payload, size_t k0, BitVec& code,
                   size_t n0) const override;
  void DecodeBlock(const SoftBit* code, size_t k0,
                   DecodedMessage& out) const override;

 private:
  size_t r_;
};

/// Soft-decision maximum-correlation decoder over an explicit codebook —
/// the shared engine behind the small algebraic codes. Exhaustive over 2^k
/// codewords, exact for any erasure/noise pattern.
class CodebookCodec : public MessageCodec {
 public:
  size_t BlockLength() const override { return n_; }
  size_t PayloadPerBlock() const override { return k_; }
  size_t MinDistance() const override { return min_distance_; }
  void EncodeBlock(const BitVec& payload, size_t k0, BitVec& code,
                   size_t n0) const override;
  void DecodeBlock(const SoftBit* code, size_t k0,
                   DecodedMessage& out) const override;

 protected:
  /// `codewords[m]` = codeword for payload value m (bit i of m = payload bit
  /// i of the block), as an n-bit mask (bit j = code position j).
  CodebookCodec(size_t n, size_t k, std::vector<uint32_t> codewords);

 private:
  size_t n_;
  size_t k_;
  size_t min_distance_;
  std::vector<uint32_t> codewords_;
};

/// Systematic Hamming(7,4): distance 3, corrects 1 error or 2 erasures per
/// block at rate 4/7.
class HammingCodec : public CodebookCodec {
 public:
  HammingCodec();
  std::string Name() const override { return "hamming"; }
};

/// First-order Reed-Muller RM(1,m): length 2^m, m+1 payload bits, distance
/// 2^(m-1) — corrects 2^(m-2)-1 errors or 2^(m-1)-1 erasures per block.
/// Default m = 4: a (16, 5, 8) code that survives a 7-bit hole in a block.
class ReedMullerCodec : public CodebookCodec {
 public:
  explicit ReedMullerCodec(uint32_t m = 4);
  std::string Name() const override;

 private:
  uint32_t m_;
};

/// Parses a codec spec: "identity", "repetition[:R]" (default R = 3),
/// "hamming", "rm[:M]" (default M = 4, 2 <= M <= 5). Unknown names and bad
/// parameters are kInvalidArgument listing the known specs.
[[nodiscard]] Result<std::unique_ptr<MessageCodec>> MakeCodec(const std::string& spec);

/// The spec grammar, for usage/help text.
const char* KnownCodecSpecs();

}  // namespace qpwm

#endif  // QPWM_CODING_CODEC_H_
