// bench_detect — the detection-side perf baseline: batched answer serving,
// dense weight views, and the parallel multi-suspect fan-out.
//
// Detection is the serving hot path once a scheme is deployed: the detector
// replans once, then reads pair weights through query answers for every
// suspect copy (Remark 2's fingerprint tracing runs this against up to 2^l
// marked copies). The pre-optimization path paid one Answer() round trip per
// pair element — an AnswerSet allocation plus a linear scan — and a hash
// lookup per weight read. The optimized path answers each distinct witness
// parameter once per run (AnswerAll), indexes the rows, and snapshots both
// the owner's and the server's weights into DenseWeightViews.
//
// Instance: bounded-degree graph with a DistanceQuery ball (answer sets of
// a few dozen rows — the regime where re-answering per pair hurts most).
//
// Reported speedups are against the *pre-optimization detector* — serial,
// unbatched, sparse weight lookups. Detection output (marks, margins,
// erasure counts) is verified bit-identical across every ablation and
// thread count; the run fails if it is not.
//
// --json[=PATH] writes/merges the "detect_scale" section of
// BENCH_detect.json so future PRs have a trajectory to beat.
#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_json.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/answers.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

namespace {

double TimeMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool SameDetection(const AdversarialDetection& a, const AdversarialDetection& b) {
  if (a.mark.size() != b.mark.size() || a.margins != b.margins ||
      a.min_margin != b.min_margin || a.group_sizes != b.group_sizes ||
      a.bit_erased != b.bit_erased || a.pairs_erased != b.pairs_erased ||
      a.bits_recovered != b.bits_recovered || a.bits_erased != b.bits_erased) {
    return false;
  }
  for (size_t i = 0; i < a.mark.size(); ++i) {
    if (a.mark.Get(i) != b.mark.Get(i)) return false;
  }
  return true;
}

struct AblationResult {
  bool dense = false;
  bool batch = false;
  double ms = 0;
  bool identical = true;
};

struct FanoutResult {
  size_t threads = 0;
  double ms = 0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  // Defaults picked for a serving-heavy regime: distance-4 balls on a
  // degree-4 graph give large answer sets with ~7x witness sharing, the
  // regime batching exists for (big answers re-served per pair element).
  size_t n = 2000;
  size_t k = 4;
  uint32_t qrho = 4;
  size_t num_suspects = 32;
  size_t redundancy = 5;
  int reps = 3;
  double epsilon = 0.02;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_detect.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::stoul(argv[++i]);
    } else if (arg == "--k" && i + 1 < argc) {
      k = std::stoul(argv[++i]);
    } else if (arg == "--qrho" && i + 1 < argc) {
      qrho = static_cast<uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--suspects" && i + 1 < argc) {
      num_suspects = std::stoul(argv[++i]);
    } else if (arg == "--redundancy" && i + 1 < argc) {
      redundancy = std::stoul(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--epsilon" && i + 1 < argc) {
      epsilon = std::stod(argv[++i]);
    } else {
      std::cerr << "usage: bench_detect [--json[=PATH]] [--n N] [--k K] "
                   "[--qrho R] [--suspects S] [--redundancy R] [--reps R] "
                   "[--epsilon E]\n";
      return 2;
    }
  }

  std::cout << "=== bench_detect: batched, dense, parallel detection (n=" << n
            << ", k=" << k << ", query=dist<=" << qrho
            << ", suspects=" << num_suspects << ") ===\n";

  // One planned scheme; the detection workload reads through it.
  Rng rng(42);
  Structure g = RandomBoundedDegreeGraph(n, k, 3 * n, false, rng);
  DistanceQuery query(qrho);
  SetParallelThreads(1);
  QueryIndex index(g, query, AllParams(g, 1));
  WeightMap weights = RandomWeights(g, 1000, 9999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = epsilon;
  opts.key = {42, 99};
  opts.encoding = PairEncoding::kAntipodal;
  LocalScheme scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  AdversarialScheme adv(scheme, redundancy);
  if (adv.CapacityBits() == 0) {
    std::cerr << "FAIL: planned scheme has zero capacity\n";
    return 1;
  }

  // Witness sharing decides the batching win: every detection run performs
  // 2 * pairs element reads, each through the first parameter containing the
  // element, and the batched path answers each distinct witness once.
  size_t witness_reads = 0;
  std::unordered_set<uint32_t> distinct_witnesses;
  for (const WeightPair& p : scheme.marking().pairs()) {
    for (uint32_t w : {p.plus, p.minus}) {
      const auto& witnesses = index.ParamsContaining(w);
      if (witnesses.empty()) continue;
      ++witness_reads;
      distinct_witnesses.insert(witnesses[0]);
    }
  }
  const double sharing =
      distinct_witnesses.empty()
          ? 0.0
          : static_cast<double>(witness_reads) /
                static_cast<double>(distinct_witnesses.size());
  std::cout << "planned " << scheme.CapacityBits() << " pairs ("
            << adv.CapacityBits() << " message bits): " << witness_reads
            << " element reads via " << distinct_witnesses.size()
            << " distinct witness params (sharing " << FmtDouble(sharing, 1)
            << "x)\n";

  // One marked copy per suspect, each carrying a distinct message — the
  // fingerprinting scenario. Two servers per copy: the pre-optimization
  // sparse one and the dense-view one.
  std::vector<BitVec> messages;
  std::vector<std::unique_ptr<HonestServer>> sparse_servers;
  std::vector<std::unique_ptr<HonestServer>> dense_servers;
  for (size_t s = 0; s < num_suspects; ++s) {
    BitVec msg(adv.CapacityBits());
    Rng msg_rng(1000 + s);
    for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, msg_rng.Coin());
    WeightMap marked = adv.Embed(weights, msg);
    sparse_servers.push_back(
        std::make_unique<HonestServer>(index, marked, /*use_dense_view=*/false));
    dense_servers.push_back(
        std::make_unique<HonestServer>(index, std::move(marked)));
    messages.push_back(std::move(msg));
  }

  const DetectOptions kBaselineOpts{/*batch_answers=*/false, /*dense_views=*/false};

  // --- Single-suspect ablations (1 thread) ---------------------------------
  const AdversarialDetection reference =
      adv.Detect(weights, *sparse_servers[0], kBaselineOpts).ValueOrDie();
  for (size_t i = 0; i < reference.mark.size(); ++i) {
    if (reference.mark.Get(i) != messages[0].Get(i)) {
      std::cerr << "FAIL: clean detection recovered a wrong bit\n";
      return 1;
    }
  }

  std::vector<AblationResult> ablations;
  for (const auto& [dense, batch] :
       std::vector<std::pair<bool, bool>>{{false, false}, {true, false},
                                          {false, true}, {true, true}}) {
    DetectOptions d;
    d.batch_answers = batch;
    d.dense_views = dense;
    const AnswerServer& server =
        dense ? *dense_servers[0] : *sparse_servers[0];
    AblationResult r;
    r.dense = dense;
    r.batch = batch;
    std::optional<AdversarialDetection> out;
    for (int rep = 0; rep < reps; ++rep) {
      const double ms =
          TimeMs([&] { out = adv.Detect(weights, server, d).ValueOrDie(); });
      r.ms = rep == 0 ? ms : std::min(r.ms, ms);
    }
    r.identical = SameDetection(reference, *out);
    ablations.push_back(r);
  }
  const double single_baseline_ms = ablations.front().ms;
  const double dense_batch_speedup = single_baseline_ms / ablations.back().ms;

  TextTable single(StrCat("Single-suspect detection, ", scheme.CapacityBits(),
                          " pairs -> ", adv.CapacityBits(),
                          " bits (baseline: unbatched sparse ",
                          FmtDouble(single_baseline_ms, 2), " ms)"));
  single.SetHeader({"dense", "batch", "ms", "speedup", "identical"});
  for (const AblationResult& r : ablations) {
    single.AddRow({r.dense ? "on" : "off", r.batch ? "on" : "off",
                   FmtDouble(r.ms, 2), FmtDouble(single_baseline_ms / r.ms, 2),
                   r.identical ? "yes" : "NO"});
  }
  single.Print(std::cout);

  // --- Multi-suspect fan-out ------------------------------------------------
  // Baseline: the pre-optimization pipeline — a serial loop of unbatched,
  // sparse detections, exactly what tracing a leak against `num_suspects`
  // copies cost before this layer existed.
  std::vector<const AnswerServer*> sparse_ptrs, dense_ptrs;
  for (size_t s = 0; s < num_suspects; ++s) {
    sparse_ptrs.push_back(sparse_servers[s].get());
    dense_ptrs.push_back(dense_servers[s].get());
  }
  std::vector<AdversarialDetection> multi_reference;
  double multi_baseline_ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const double ms = TimeMs([&] {
      multi_reference.clear();
      for (const AnswerServer* s : sparse_ptrs) {
        multi_reference.push_back(
            adv.Detect(weights, *s, kBaselineOpts).ValueOrDie());
      }
    });
    multi_baseline_ms = rep == 0 ? ms : std::min(multi_baseline_ms, ms);
  }

  std::vector<FanoutResult> fanout;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    FanoutResult r;
    r.threads = threads;
    std::vector<AdversarialDetection> out;
    for (int rep = 0; rep < reps; ++rep) {
      const double ms = TimeMs([&] { out = adv.DetectMany(weights, dense_ptrs); });
      r.ms = rep == 0 ? ms : std::min(r.ms, ms);
    }
    r.identical = out.size() == multi_reference.size();
    for (size_t s = 0; r.identical && s < out.size(); ++s) {
      r.identical = SameDetection(multi_reference[s], out[s]);
    }
    fanout.push_back(r);
  }
  SetParallelThreads(0);  // restore the env/hardware default

  TextTable multi(StrCat("Multi-suspect tracing, ", num_suspects,
                         " marked copies (baseline: serial unbatched sparse ",
                         FmtDouble(multi_baseline_ms, 2), " ms)"));
  multi.SetHeader({"threads", "ms", "speedup", "suspects/s", "identical"});
  for (const FanoutResult& r : fanout) {
    multi.AddRow({StrCat(r.threads), FmtDouble(r.ms, 2),
                  FmtDouble(multi_baseline_ms / r.ms, 2),
                  FmtDouble(1000.0 * static_cast<double>(num_suspects) / r.ms, 1),
                  r.identical ? "yes" : "NO"});
  }
  multi.Print(std::cout);
  std::cout << "hardware threads visible: " << std::thread::hardware_concurrency()
            << "; speedups are vs the pre-optimization serial detector "
               "(unbatched answers, sparse weight lookups).\n";

  bool all_identical = true;
  for (const AblationResult& r : ablations) all_identical &= r.identical;
  for (const FanoutResult& r : fanout) all_identical &= r.identical;
  if (!all_identical) {
    std::cerr << "FAIL: detection output differs across ablations/threads\n";
    return 1;
  }

  if (json_path) {
    JsonWriter w;
    w.BeginObject();
    w.Key("instance").BeginObject();
    w.Key("n").UInt(n);
    w.Key("k").UInt(k);
    w.Key("query_rho").UInt(qrho);
    w.Key("num_params").UInt(index.num_params());
    w.Key("num_active").UInt(index.num_active());
    w.Key("pairs").UInt(scheme.CapacityBits());
    w.Key("capacity_bits").UInt(adv.CapacityBits());
    w.Key("redundancy").UInt(redundancy);
    w.Key("suspects").UInt(num_suspects);
    w.EndObject();
    w.Key("hardware_threads").UInt(std::thread::hardware_concurrency());
    w.Key("reps").Int(reps);
    w.Key("single_suspect").BeginObject();
    w.Key("baseline_description")
        .String("serial detection, unbatched answers, sparse weight lookups");
    w.Key("baseline_ms").Double(single_baseline_ms);
    w.Key("ablations").BeginArray();
    for (const AblationResult& r : ablations) {
      w.BeginObject();
      w.Key("dense_views").Bool(r.dense);
      w.Key("batch_answers").Bool(r.batch);
      w.Key("ms").Double(r.ms);
      w.Key("speedup").Double(single_baseline_ms / r.ms);
      w.Key("identical_to_baseline").Bool(r.identical);
      w.EndObject();
    }
    w.EndArray();
    w.Key("dense_batch_speedup").Double(dense_batch_speedup);
    w.EndObject();
    w.Key("multi_suspect").BeginObject();
    w.Key("baseline_description")
        .String("serial loop of pre-optimization detections over all suspects");
    w.Key("baseline_ms").Double(multi_baseline_ms);
    w.Key("runs").BeginArray();
    for (const FanoutResult& r : fanout) {
      w.BeginObject();
      w.Key("threads").UInt(r.threads);
      w.Key("ms").Double(r.ms);
      w.Key("speedup").Double(multi_baseline_ms / r.ms);
      w.Key("suspects_per_sec")
          .Double(1000.0 * static_cast<double>(num_suspects) / r.ms);
      w.Key("identical_to_baseline").Bool(r.identical);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.EndObject();
    if (!UpdateBenchJsonSection(*json_path, "detect_scale", w.str())) {
      std::cerr << "FAIL: cannot write " << *json_path << "\n";
      return 1;
    }
    std::cout << "wrote section \"detect_scale\" to " << *json_path << "\n";
  }
  return 0;
}
