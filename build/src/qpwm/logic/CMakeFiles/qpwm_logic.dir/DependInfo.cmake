
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qpwm/logic/conjunctive.cc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/conjunctive.cc.o" "gcc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/conjunctive.cc.o.d"
  "/root/repo/src/qpwm/logic/evaluator.cc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/evaluator.cc.o" "gcc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/evaluator.cc.o.d"
  "/root/repo/src/qpwm/logic/formula.cc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/formula.cc.o" "gcc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/formula.cc.o.d"
  "/root/repo/src/qpwm/logic/locality.cc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/locality.cc.o" "gcc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/locality.cc.o.d"
  "/root/repo/src/qpwm/logic/multiquery.cc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/multiquery.cc.o" "gcc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/multiquery.cc.o.d"
  "/root/repo/src/qpwm/logic/parser.cc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/parser.cc.o" "gcc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/parser.cc.o.d"
  "/root/repo/src/qpwm/logic/query.cc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/query.cc.o" "gcc" "src/qpwm/logic/CMakeFiles/qpwm_logic.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qpwm/structure/CMakeFiles/qpwm_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/util/CMakeFiles/qpwm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
