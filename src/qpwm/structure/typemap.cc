#include "qpwm/structure/typemap.h"

#include <memory>
#include <utility>

#include "qpwm/structure/isomorphism.h"
#include "qpwm/util/parallel.h"

namespace qpwm {
namespace {

/// Per-worker scratch for the cached TypeAll path: one neighborhood arena and
/// one fingerprint buffer set, pooled so blocks reuse warm instances.
struct TypeAllScratch {
  NeighborhoodScratch nb;
  CanonKeyScratch key;
};

}  // namespace

NeighborhoodTyper::NeighborhoodTyper(const Structure& g, uint32_t rho,
                                     CanonCache* cache)
    : g_(g), rho_(rho), gaifman_(g), incidence_(g), cache_(cache) {}

std::string NeighborhoodTyper::Canon(const Tuple& c) const {
  Neighborhood nb = ExtractNeighborhood(g_, gaifman_, incidence_, c, rho_);
  return CanonicalForm(nb.local, nb.distinguished);
}

uint32_t NeighborhoodTyper::Intern(std::string canon, const Tuple& c) {
  auto [it, inserted] =
      canon_to_type_.emplace(std::move(canon), static_cast<uint32_t>(representatives_.size()));
  if (inserted) representatives_.push_back(c);
  return it->second;
}

uint32_t NeighborhoodTyper::InternCacheId(uint32_t cache_id, const Tuple& c) {
  auto it = cache_id_to_type_.find(cache_id);
  if (it != cache_id_to_type_.end()) return it->second;
  const uint32_t type = Intern(cache_->CanonicalOfId(cache_id), c);
  cache_id_to_type_.emplace(cache_id, type);
  return type;
}

uint32_t NeighborhoodTyper::TypeOf(const Tuple& c) {
  if (cache_ == nullptr) return Intern(Canon(c), c);
  Neighborhood& nb =
      ExtractNeighborhoodInto(g_, gaifman_, incidence_, c, rho_, nb_scratch_);
  return InternCacheId(cache_->CanonicalId(nb.local, nb.distinguished, key_scratch_), c);
}

std::vector<uint32_t> NeighborhoodTyper::TypeAll(const std::vector<Tuple>& tuples) {
  if (cache_ == nullptr) {
    std::vector<std::string> canons = ParallelMap<std::string>(
        tuples.size(), [&](size_t i) { return Canon(tuples[i]); });
    std::vector<uint32_t> types(tuples.size());
    for (size_t i = 0; i < tuples.size(); ++i) {
      types[i] = Intern(std::move(canons[i]), tuples[i]);
    }
    return types;
  }
  // Cached path: workers produce interned cache ids with pooled scratch —
  // zero steady-state allocation per tuple — and the serial re-intern below
  // maps the (discovery-ordered, nondeterministic) cache ids to dense type
  // ids in input order, so the output matches the serial TypeOf sequence
  // bit-for-bit at any thread count.
  ScratchPool<TypeAllScratch> pool;
  std::vector<uint32_t> cache_ids(tuples.size());
  ParallelBlocks<int>(tuples.size(), [&](size_t begin, size_t end) {
    std::unique_ptr<TypeAllScratch> scratch = pool.Acquire();
    for (size_t i = begin; i < end; ++i) {
      Neighborhood& nb = ExtractNeighborhoodInto(g_, gaifman_, incidence_,
                                                 tuples[i], rho_, scratch->nb);
      cache_ids[i] = cache_->CanonicalId(nb.local, nb.distinguished, scratch->key);
    }
    pool.Release(std::move(scratch));
    return 0;
  });
  std::vector<uint32_t> types(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    types[i] = InternCacheId(cache_ids[i], tuples[i]);
  }
  return types;
}

}  // namespace qpwm
