// Structure generators for tests, examples and the benchmark workloads:
// bounded-degree random graphs (the STRUCT_k[tau] classes of Theorem 3),
// paths/cycles/grids, the paper's Figure 1 instance, and the shattering
// families used by the impossibility results (Theorem 2, Remark 1).
#ifndef QPWM_STRUCTURE_GENERATORS_H_
#define QPWM_STRUCTURE_GENERATORS_H_

#include <cstdint>

#include "qpwm/structure/structure.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/random.h"

namespace qpwm {

/// Signature with a single binary relation "E".
Signature GraphSignature();

/// Random graph on n vertices whose Gaifman graph has max degree <= k.
/// Attempts `edge_attempts` uniformly random edges, rejecting those that
/// would exceed the degree bound. If `symmetric`, both orientations are
/// inserted (each undirected edge costs 1 degree at both ends either way).
Structure RandomBoundedDegreeGraph(size_t n, size_t k, size_t edge_attempts,
                                   bool symmetric, Rng& rng);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0 (plus reversals if symmetric).
Structure CycleGraph(size_t n, bool symmetric);

/// Directed path 0 -> 1 -> ... -> n-1 (plus reversals if symmetric).
Structure PathGraph(size_t n, bool symmetric);

/// w x h grid with horizontal relation "H" and vertical relation "V";
/// element (x, y) has id y * w + x. Unbounded tree-width as w, h grow.
Structure GridGraph(size_t w, size_t h);

/// The 6-element instance of the paper's Figure 1 discussion (elements named
/// a..f, one binary relation "R"): N1(a) ~ N1(b), N1(d) ~ N1(e),
/// N1(c) ~ N1(f); for psi(u,v) = R(u,v), W_a = W_b = {d, e}, W_c = {d},
/// W_f = {e}, W_d = {a}, W_e = {b}; the (d: +1, e: -1) marking has zero
/// distortion on a and b but leaks +1 / -1 on c / f, exactly as Figure 3.
Structure Figure1Instance();

/// Theorem 2's shattering family: universe of 2^n "parameter" vertices plus
/// n "weight" vertices; E(i, w_j) iff bit j of i is set. For
/// psi(u,v) = E(u,v) the n active weights are fully shattered:
/// VC(psi, G_n) = |W| = n.
Structure ShatterInstance(uint32_t n);

/// Remark 1's family: 2^(n/2) parameter vertices shatter the first n/2
/// weight vertices; one extra vertex `a` is linked to all n weight vertices.
/// VC = |W|/2 yet balanced (+1,-1) pairs on the last n/2 weights hide n/4
/// bits with zero distortion. `n` must be even.
Structure HalfShatterInstance(uint32_t n);

/// Uniform random weights in [lo, hi] on every element (weight arity 1).
WeightMap RandomWeights(const Structure& s, Weight lo, Weight hi, Rng& rng);

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_GENERATORS_H_
