// qpwm_faultgen — fault-injection campaign against the adversarial scheme.
//
// Sweeps structural attacks (pair-element deletion at 0..90%, spurious tuple
// insertion, and combined mixes) over seeded trials on a synthetic workload,
// and emits a JSON survival-curve report: per attack level, the fraction of
// trials where the full mark was recovered, where every recovered bit was
// correct, and the mean erasure / margin statistics.
//
// The workload (graph, query index, planned scheme) is built once from the
// campaign seed and shared read-only by every trial — planning is the
// expensive part and is identical across trials anyway. Trials within an
// attack level run in parallel on the shared thread pool with deterministic
// per-trial seeds, so the report is bit-identical for any QPWM_THREADS.
//
// Flags (all optional):
//   --elements N     universe size of the random workload      (default 400)
//   --redundancy R   pairs per message bit                     (default 5)
//   --trials T       seeded trials per attack level            (default 20)
//   --seed S         campaign base seed                        (default 1)
//   --threads N      worker threads (0 = QPWM_THREADS/hardware) (default 0)
//   --out F          JSON report path                          (default stdout)
//
// Exit codes follow the CLI contract: 0 = campaign ran, 2 = usage/I/O error.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"

using namespace qpwm;

namespace {

struct Options {
  size_t elements = 400;
  size_t redundancy = 5;
  size_t trials = 20;
  uint64_t seed = 1;
  size_t threads = 0;  // 0 = env/hardware default
  std::string out;     // empty = stdout
};

// The planned scheme every trial detects against. Built once per campaign;
// all members are immutable after Build and safe to share across trials.
struct Workload {
  Structure g;
  std::unique_ptr<ParametricQuery> query;
  std::optional<QueryIndex> index;
  std::optional<WeightMap> weights;
  std::optional<LocalScheme> scheme;
  std::optional<AdversarialScheme> adv;

  static std::unique_ptr<Workload> Build(const Options& opt) {
    auto wl = std::make_unique<Workload>();
    Rng rng(opt.seed);
    wl->g = RandomBoundedDegreeGraph(opt.elements, 3, 3 * opt.elements, false, rng);
    wl->query = AtomQuery::Adjacency("E");
    wl->index.emplace(wl->g, *wl->query, AllParams(wl->g, 1));
    wl->weights.emplace(RandomWeights(wl->g, 1000, 9999, rng));

    LocalSchemeOptions scheme_opts;
    scheme_opts.epsilon = 0.25;
    scheme_opts.key = {opt.seed, opt.seed + 1};
    scheme_opts.encoding = PairEncoding::kAntipodal;
    auto scheme = LocalScheme::Plan(*wl->index, scheme_opts);
    QPWM_CHECK(scheme.ok());
    wl->scheme.emplace(std::move(scheme).value());
    wl->adv.emplace(*wl->scheme, opt.redundancy);
    return wl;
  }
};

struct TrialOutcome {
  bool full_mark = false;           // complete() and mark == message
  bool recovered_correct = false;   // every non-erased bit matches
  size_t bits_erased = 0;
  size_t pairs_erased = 0;
  double min_margin = 0;
};

struct LevelSummary {
  double deletion_frac = 0;
  double insertion_frac = 0;
  size_t trials = 0;
  size_t full_mark = 0;
  size_t recovered_correct = 0;
  double mean_bits_erased = 0;
  double mean_pairs_erased = 0;
  double mean_min_margin = 0;
};

// One seeded trial against the shared workload: random message, structural
// attack through a TamperedAnswerServer, erasure-aware detection.
TrialOutcome RunTrial(const Workload& wl, double deletion_frac,
                      double insertion_frac, uint64_t seed) {
  Rng rng(seed);
  const AdversarialScheme& adv = *wl.adv;
  if (adv.CapacityBits() == 0) return {};

  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(*wl.weights, msg);

  HonestServer base(*wl.index, std::move(marked));
  TamperedAnswerServer server(base);
  for (const Tuple& t : SubsetDeletionAttack(*wl.index, deletion_frac, rng)) {
    server.Erase(t);
  }
  const size_t insertions = static_cast<size_t>(
      insertion_frac * static_cast<double>(wl.index->num_active()));
  TupleInsertionAttack(server, *wl.index, base.weights(), insertions, rng);

  auto detection = adv.Detect(*wl.weights, server);
  QPWM_CHECK(detection.ok());  // never fails: partial results, not errors
  const AdversarialDetection& d = detection.value();

  TrialOutcome out;
  out.bits_erased = d.bits_erased;
  out.pairs_erased = d.pairs_erased;
  out.min_margin = d.min_margin;
  out.recovered_correct = true;
  for (size_t i = 0; i < d.mark.size(); ++i) {
    if (!d.bit_erased[i] && d.mark.Get(i) != msg.Get(i)) {
      out.recovered_correct = false;
    }
  }
  out.full_mark = d.complete() && d.mark == msg;
  return out;
}

LevelSummary RunLevel(const Options& opt, const Workload& wl,
                      double deletion_frac, double insertion_frac,
                      uint64_t level_tag) {
  LevelSummary s;
  s.deletion_frac = deletion_frac;
  s.insertion_frac = insertion_frac;
  s.trials = opt.trials;
  // Trials are independent given their seeds; ParallelMap stores outcomes by
  // trial index and the reduction below runs serially in that order, so the
  // summary is bit-identical for any thread count.
  std::vector<TrialOutcome> outcomes =
      ParallelMap<TrialOutcome>(opt.trials, [&](size_t t) {
        return RunTrial(wl, deletion_frac, insertion_frac,
                        opt.seed + level_tag * 1000003 + t);
      });
  for (const TrialOutcome& o : outcomes) {
    s.full_mark += o.full_mark;
    s.recovered_correct += o.recovered_correct;
    s.mean_bits_erased += static_cast<double>(o.bits_erased);
    s.mean_pairs_erased += static_cast<double>(o.pairs_erased);
    s.mean_min_margin += o.min_margin;
  }
  const double n = static_cast<double>(opt.trials);
  s.mean_bits_erased /= n;
  s.mean_pairs_erased /= n;
  s.mean_min_margin /= n;
  return s;
}

void AppendLevelJson(std::ostringstream& json, const LevelSummary& s,
                     bool last) {
  const double n = static_cast<double>(s.trials);
  json << "    {\"deletion_frac\": " << s.deletion_frac
       << ", \"insertion_frac\": " << s.insertion_frac
       << ", \"trials\": " << s.trials
       << ", \"full_mark_rate\": " << static_cast<double>(s.full_mark) / n
       << ", \"recovered_correct_rate\": "
       << static_cast<double>(s.recovered_correct) / n
       << ", \"mean_bits_erased\": " << s.mean_bits_erased
       << ", \"mean_pairs_erased\": " << s.mean_pairs_erased
       << ", \"mean_min_margin\": " << s.mean_min_margin << "}"
       << (last ? "\n" : ",\n");
}

int Run(const Options& opt) {
  std::cerr << "planning workload (" << opt.elements << " elements, "
            << ParallelThreads() << " threads)\n";
  std::unique_ptr<Workload> wl = Workload::Build(opt);

  std::ostringstream json;
  json << "{\n";
  json << "  \"workload\": {\"elements\": " << opt.elements
       << ", \"redundancy\": " << opt.redundancy
       << ", \"trials\": " << opt.trials << ", \"seed\": " << opt.seed
       << ", \"capacity_bits\": " << wl->adv->CapacityBits() << "},\n";

  // Campaign 1: deletion sweep 0..90%.
  std::cerr << "deletion sweep";
  json << "  \"deletion_sweep\": [\n";
  for (int i = 0; i <= 9; ++i) {
    std::cerr << " " << i * 10 << "%" << std::flush;
    AppendLevelJson(json,
                    RunLevel(opt, *wl, i * 0.1, 0.0, static_cast<uint64_t>(i)),
                    i == 9);
  }
  json << "  ],\n";
  std::cerr << "\n";

  // Campaign 2: insertion sweep (spurious rows relative to the active set).
  std::cerr << "insertion sweep";
  json << "  \"insertion_sweep\": [\n";
  for (int i = 0; i <= 4; ++i) {
    std::cerr << " " << i * 25 << "%" << std::flush;
    AppendLevelJson(
        json, RunLevel(opt, *wl, 0.0, i * 0.25, 100 + static_cast<uint64_t>(i)),
        i == 4);
  }
  json << "  ],\n";
  std::cerr << "\n";

  // Campaign 3: combined deletion + insertion mixes.
  std::cerr << "mixed sweep";
  json << "  \"mixed_sweep\": [\n";
  const double mixes[][2] = {{0.1, 0.1}, {0.3, 0.25}, {0.5, 0.5}, {0.7, 0.5}};
  for (size_t i = 0; i < 4; ++i) {
    std::cerr << " " << mixes[i][0] << "/" << mixes[i][1] << std::flush;
    AppendLevelJson(json,
                    RunLevel(opt, *wl, mixes[i][0], mixes[i][1],
                             200 + static_cast<uint64_t>(i)),
                    i == 3);
  }
  json << "  ]\n}\n";
  std::cerr << "\n";

  if (opt.out.empty()) {
    std::cout << json.str();
    return 0;
  }
  std::ofstream f(opt.out, std::ios::binary);
  if (!f) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 2;
  }
  f << json.str();
  std::cerr << "wrote " << opt.out << "\n";
  return 0;
}

int Usage(int code) {
  std::cerr << "usage: qpwm_faultgen [--elements N] [--redundancy R]\n"
               "       [--trials T] [--seed S] [--threads N] [--out report.json]\n";
  return code;
}

// Strict unsigned parse: the whole value must be a decimal number.
bool ParseU64(const std::string& value, uint64_t& out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(value.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0' && value[0] != '-';
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  // Flags come in "--name value" pairs; a flag without a value, an unknown
  // flag, or a non-numeric value is a usage error (exit 2), never UB.
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return Usage(0);
    if (i + 1 >= argc) {
      std::cerr << flag << " requires a value\n";
      return Usage(2);
    }
    const std::string value = argv[i + 1];
    uint64_t parsed = 0;
    if (flag == "--out") {
      opt.out = value;
      continue;
    }
    if (!ParseU64(value, parsed)) {
      std::cerr << flag << " needs an unsigned integer, got '" << value << "'\n";
      return Usage(2);
    }
    if (flag == "--elements") {
      opt.elements = parsed;
    } else if (flag == "--redundancy") {
      opt.redundancy = parsed;
    } else if (flag == "--trials") {
      opt.trials = parsed;
    } else if (flag == "--seed") {
      opt.seed = parsed;
    } else if (flag == "--threads") {
      opt.threads = parsed;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return Usage(2);
    }
  }
  if (opt.elements == 0 || opt.redundancy == 0 || opt.trials == 0) {
    std::cerr << "--elements, --redundancy and --trials must be positive\n";
    return 2;
  }
  SetParallelThreads(opt.threads);
  return Run(opt);
}
