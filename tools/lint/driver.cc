// File discovery and the two-pass run for qpwm_lint.
//
// The file set is the union of the TUs named in compile_commands.json (when
// given) and a walk of src/tools/tests/bench/examples under --root picking up
// headers and sources. Explicit paths bypass the walk (and its fixture
// exclusion), which is how the self-tests lint known-bad snippets.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.h"

namespace qpwm::lint {
namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool IsExcluded(const std::string& path) {
  // Known-bad lint fixtures and build trees are never part of a tree walk.
  return path.find("lint_fixtures") != std::string::npos ||
         path.find("/build") != std::string::npos ||
         path.find("build/") == 0;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

void WalkDir(const fs::path& dir, bool skip_excluded,
             std::vector<std::string>& out) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || !IsSourceFile(it->path())) continue;
    std::string p = it->path().generic_string();
    if (skip_excluded && IsExcluded(p)) continue;
    out.push_back(std::move(p));
  }
}

// Pulls every "file" value out of compile_commands.json with a minimal
// string scanner (the format is machine-written; full JSON is not needed).
bool FilesFromCompileCommands(const std::string& path,
                              std::vector<std::string>& out) {
  std::string text;
  if (!ReadFile(path, text)) return false;
  size_t i = 0;
  while ((i = text.find("\"file\"", i)) != std::string::npos) {
    i += 6;
    while (i < text.size() && (text[i] == ' ' || text[i] == ':')) ++i;
    if (i >= text.size() || text[i] != '"') continue;
    ++i;
    std::string value;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      value += text[i++];
    }
    if (IsSourceFile(fs::path(value)) && !IsExcluded(value)) {
      out.push_back(std::move(value));
    }
  }
  return true;
}

}  // namespace

bool RunLint(const DriverOptions& opt, DriverResult& result) {
  std::vector<std::string> files;
  if (!opt.paths.empty()) {
    for (const std::string& p : opt.paths) {
      std::error_code ec;
      if (fs::is_directory(p, ec)) {
        WalkDir(p, /*skip_excluded=*/true, files);
      } else if (fs::is_regular_file(p, ec)) {
        files.push_back(p);  // explicit files are always linted
      } else {
        return false;
      }
    }
  } else {
    if (!opt.compile_commands.empty() &&
        !FilesFromCompileCommands(opt.compile_commands, files)) {
      return false;
    }
    for (const char* sub : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path dir = fs::path(opt.root) / sub;
      std::error_code ec;
      if (fs::is_directory(dir, ec)) WalkDir(dir, /*skip_excluded=*/true, files);
    }
  }
  // Dedup by canonical path so compile_commands + walk overlap lints once.
  std::vector<std::pair<std::string, std::string>> canon;  // (canonical, as-given)
  for (std::string& f : files) {
    std::error_code ec;
    fs::path c = fs::weakly_canonical(f, ec);
    canon.emplace_back(ec ? f : c.generic_string(), std::move(f));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              canon.end());

  std::vector<FileScan> scans;
  scans.reserve(canon.size());
  LintContext ctx;
  for (const auto& [canonical, given] : canon) {
    std::string text;
    if (!ReadFile(given, text)) continue;  // e.g. generated TU since removed
    scans.push_back(ScanSource(given, text));
    CollectContext(scans.back(), ctx);
  }
  result.files_scanned = scans.size();

  std::vector<Finding> findings;
  for (const FileScan& scan : scans) AnalyzeFile(scan, ctx, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (Finding& f : findings) {
    (IsAdvisoryRule(f.rule) ? result.warnings : result.errors)
        .push_back(std::move(f));
  }
  return true;
}

bool WriteReport(const std::string& path, const DriverResult& result) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  auto escape = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      if (c == '"' || c == '\\') e += '\\';
      e += c;
    }
    return e;
  };
  auto emit = [&](const std::vector<Finding>& fs, const char* key,
                  bool trailing_comma) {
    out << "  \"" << key << "\": [\n";
    for (size_t i = 0; i < fs.size(); ++i) {
      out << "    {\"file\": \"" << escape(fs[i].file)
          << "\", \"line\": " << fs[i].line << ", \"rule\": \"" << fs[i].rule
          << "\", \"message\": \"" << escape(fs[i].message) << "\"}"
          << (i + 1 < fs.size() ? "," : "") << "\n";
    }
    out << "  ]" << (trailing_comma ? "," : "") << "\n";
  };
  out << "{\n  \"files_scanned\": " << result.files_scanned << ",\n";
  emit(result.errors, "errors", true);
  emit(result.warnings, "warnings", false);
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace qpwm::lint
