// Plain-text table rendering for the benchmark harness: every experiment
// prints paper-shaped rows through this one formatter so outputs are uniform.
#ifndef QPWM_UTIL_TABLE_H_
#define QPWM_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace qpwm {

/// Column-aligned text table with a title and a header row.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row (also fixes the column count).
  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends a data row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders with box-drawing-free ASCII (stable under redirection).
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (bench output helper).
std::string FmtDouble(double v, int precision = 3);

}  // namespace qpwm

#endif  // QPWM_UTIL_TABLE_H_
