# Empty dependencies file for qpwm_core.
# This may be replaced when dependencies are built.
