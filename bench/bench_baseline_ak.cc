// E12 — the introduction's comparison against Agrawal-Kiernan [1]: AK
// preserves aggregate statistics (mean/variance) but gives no guarantee on
// parametric query results; the query-preserving scheme bounds max |df| by
// construction. Both run on the same synthetic travel database with the
// registered query psi(u, v) = Route(u, v).
#include <cmath>
#include <iostream>

#include "qpwm/baseline/agrawal_kiernan.h"
#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/relational/table.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

namespace {

struct Stats {
  double mean_drift;
  double stddev_drift;
  Weight max_query_drift;
};

Stats Compare(const QueryIndex& index, const WeightMap& original,
              const WeightMap& marked) {
  double sum0 = 0, sum1 = 0, sq0 = 0, sq1 = 0;
  size_t n = 0;
  original.ForEach([&](const Tuple& t, Weight w0) {
    double w1 = static_cast<double>(marked.Get(t));
    sum0 += static_cast<double>(w0);
    sum1 += w1;
    sq0 += static_cast<double>(w0) * static_cast<double>(w0);
    sq1 += w1 * w1;
    ++n;
  });
  double mean0 = sum0 / n, mean1 = sum1 / n;
  double var0 = sq0 / n - mean0 * mean0;
  double var1 = sq1 / n - mean1 * mean1;
  return {std::abs(mean1 - mean0),
          std::abs(std::sqrt(std::max(var1, 0.0)) - std::sqrt(std::max(var0, 0.0))),
          GlobalDistortion(index, original, marked)};
}

}  // namespace

int main() {
  std::cout << "=== bench_baseline_ak: query preservation vs Agrawal-Kiernan ===\n";

  Rng rng(101);
  Database db = RandomTravelDatabase(400, 600, 5, rng);
  RelationalInstance instance = ToWeightedStructure(db).ValueOrDie();
  AtomQuery query("Route", {{true, 0}, {false, 0}}, 1, 1);
  QueryIndex index(instance.structure, query, AllParams(instance.structure, 1));
  std::cout << "instance: " << instance.structure.universe_size()
            << " elements, |W| = " << index.num_active() << "\n";

  TextTable table("Mean/variance preservation vs per-query guarantee");
  table.SetHeader({"scheme", "bits", "|mean drift|", "|stddev drift|",
                   "max |df| over queries", "guaranteed bound"});

  // Agrawal-Kiernan on the Timetable table.
  {
    const Table* timetable = db.Find("Timetable").ValueOrDie();
    AkOptions ak;
    ak.key = {55, 66};
    ak.gamma = 4;
    ak.num_lsb = 3;
    AkEmbedStats stats;
    Table marked_table = AkEmbed(*timetable, ak, &stats).ValueOrDie();

    Database marked_db = db;
    *marked_db.FindMutable("Timetable").ValueOrDie() = marked_table;
    auto marked_instance = ToWeightedStructure(marked_db).ValueOrDie();
    Stats s = Compare(index, instance.weights, marked_instance.weights);
    // AK capacity: it embeds one detectable bit pattern (presence), marked
    // cells carry the evidence.
    table.AddRow({"Agrawal-Kiernan (gamma=4, 3 LSBs)", StrCat(stats.marked_cells),
                  FmtDouble(s.mean_drift, 3), FmtDouble(s.stddev_drift, 3),
                  StrCat(s.max_query_drift), "none"});
  }

  // Query-preserving local scheme at two budgets.
  for (double inv_eps : {2.0, 8.0}) {
    LocalSchemeOptions opts;
    opts.epsilon = 1.0 / inv_eps;
    opts.key = {77, 88};
    auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
    BitVec mark(scheme.CapacityBits());
    for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
    WeightMap marked = scheme.Embed(instance.weights, mark);
    Stats s = Compare(index, instance.weights, marked);
    table.AddRow({StrCat("query-preserving (1/eps=", inv_eps, ")"),
                  StrCat(scheme.CapacityBits()), FmtDouble(s.mean_drift, 3),
                  FmtDouble(s.stddev_drift, 3), StrCat(s.max_query_drift),
                  StrCat("<= ", scheme.Budget())});
  }
  table.Print(std::cout);
  std::cout << "AK keeps aggregates tight but its per-query drift is unbounded "
               "in principle (it can hit any single f(travel) hard); the "
               "query-preserving scheme certifies max |df| a priori — the "
               "paper's motivating contrast.\n";

  // Detection side-by-side.
  {
    TextTable det("Detection comparison");
    det.SetHeader({"scheme", "clean detect", "after 30% LSB-reset attack"});

    const Table* timetable = db.Find("Timetable").ValueOrDie();
    AkOptions ak;
    ak.key = {55, 66};
    Table marked_table = AkEmbed(*timetable, ak, nullptr).ValueOrDie();
    AkDetection clean = AkDetect(marked_table, ak).ValueOrDie();
    Table attacked = marked_table;
    for (size_t r = 0; r < attacked.num_rows(); ++r) {
      for (size_t c : attacked.WeightColumns()) {
        if (rng.Bernoulli(0.3)) {
          Weight w = attacked.WeightAt(r, c);
          attacked.SetWeightAt(r, c, (w & ~Weight{1}) | (rng.Coin() ? 1 : 0));
        }
      }
    }
    AkDetection after = AkDetect(attacked, ak).ValueOrDie();
    det.AddRow({"Agrawal-Kiernan", clean.detected ? "yes" : "no",
                after.detected ? "yes" : "no"});

    LocalSchemeOptions opts;
    opts.epsilon = 0.25;
    opts.key = {77, 88};
    opts.encoding = PairEncoding::kAntipodal;
    auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
    BitVec mark(scheme.CapacityBits());
    for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
    WeightMap marked = scheme.Embed(instance.weights, mark);
    HonestServer clean_server(index, marked);
    bool qp_clean = scheme.Detect(instance.weights, clean_server).ValueOrDie() == mark;
    WeightMap jittered = marked;
    instance.weights.ForEach([&](const Tuple& t, Weight) {
      if (rng.Bernoulli(0.3)) jittered.Set(t, (marked.Get(t) & ~Weight{1}) |
                                                  (rng.Coin() ? 1 : 0));
    });
    HonestServer attacked_server(index, jittered);
    auto qp_after = scheme.Detect(instance.weights, attacked_server);
    size_t bit_errors =
        qp_after.ok() ? qp_after.value().HammingDistance(mark) : mark.size();
    det.AddRow({"query-preserving (per-bit)", qp_clean ? "yes" : "no",
                StrCat(mark.size() - bit_errors, "/", mark.size(), " bits")});
    det.Print(std::cout);
    std::cout << "(the adversarial wrapper of bench_adversarial restores "
               "full-message robustness via redundancy.)\n";
  }
  return 0;
}
