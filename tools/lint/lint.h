// qpwm_lint — project-invariant static analysis for the qpwm tree.
//
// The scheme's guarantees only hold if every fallible step is checked and
// every report is reproducible. This tool machine-enforces the invariant
// families that the compiler alone cannot (or that we want diagnosed before
// codegen):
//
//   error-discipline
//     discarded-status   a statement that calls a Status/Result-returning
//                        function and drops the value (incl. `(void)` casts)
//     xtu-discarded-status
//                        a Status/Result-returning call whose value is
//                        parked in a local (or auto alias) that is never
//                        inspected afterwards — the interprocedural
//                        complement to discarded-status (callee names come
//                        from the whole-project symbol index)
//     nodiscard-status   a header declaration returning Status/Result<T>
//                        without [[nodiscard]]
//     raw-status         Status(StatusCode..., ...) constructed outside the
//                        factories in util/status.h
//     bare-abort         abort/terminate/quick_exit/_Exit outside
//                        util/check.h / util/status.cc
//     bare-throw         `throw` anywhere (recoverable errors are Status;
//                        programmer errors are QPWM_CHECK)
//
//   determinism
//     nondeterministic-random
//                        rand/srand/std::random_device/time()/mt19937/
//                        default_random_engine outside util/random — all
//                        randomness flows through the seeded Rng
//     unordered-iter     range-for over an unordered_{map,set} — hash-order
//                        iteration feeding JSON reports, hashes or canonical
//                        forms breaks byte-identical output
//
//   parallel hygiene
//     parallel-mutation  a ParallelFor/ParallelMap/ParallelBlocks body that
//                        mutates state declared outside the lambda without
//                        the per-index slot pattern (`out[i] = ...`)
//     lock-discipline    a data member annotated QPWM_GUARDED_BY(mu) touched
//                        by a member function that neither locks `mu` nor is
//                        annotated QPWM_REQUIRES(mu); also (advisory shape)
//                        a class that owns a mutex yet annotates none of its
//                        members — the discipline that keeps the 1-vs-N
//                        thread byte-identity contract honest (the PR-6
//                        missing-mutex class)
//
//   lifetime
//     view-escape        a view-typed value (TupleRef/TupleList/span/
//                        string_view/DenseWeightView/WitnessPlan or any
//                        QPWM_VIEW_TYPE class) stored in a member without a
//                        QPWM_VIEW_OF(owner) annotation, returned rooted at
//                        a function-local owner, or captured by reference in
//                        a returned lambda — the PR-3 dangling-view class
//     stamp-audit        a method of a GenerationStamp-carrying class that
//                        mutates object state without bumping the stamp or
//                        calling (transitively) a method that does — the
//                        PR-6 stale pointer-keyed cache class
//
//   flat storage
//     legacy-tuple-vector
//                        a by-value std::vector<Tuple> declaration in library
//                        code (src/qpwm/) outside structure/ — tuples live in
//                        the relations' flat CSR store (advisory: cold paths
//                        allowlist with a reason)
//
// Findings on a line can be waived with a trailing (or immediately
// preceding) comment:  // qpwm-lint: allow(rule-id[,rule-id...]) — reason
//
// Architecture: a TWO-PASS, cross-translation-unit analysis. Pass 1
// tokenizes every file and builds a project symbol index (Status APIs,
// unordered-container names, classes with their members/annotations, a
// coarse call graph, view-like types). Pass 2 re-walks each file's tokens
// and runs the rule families against the merged index, so a rule firing in
// one TU can depend on declarations made in another (a guarded member
// declared in a header is enforced in the .cc that touches it). The index
// is cached between runs keyed by file mtime+content hash; unchanged files
// contribute their cached symbols and findings without being re-read.
//
// The analysis is a tokenizer plus pattern rules, not a full parser: it is
// deliberately conservative, and the allowlist is the escape hatch for the
// few sites where hash-order, shared state or a stored view is provably
// benign.
#ifndef QPWM_TOOLS_LINT_LINT_H_
#define QPWM_TOOLS_LINT_LINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace qpwm::lint {

// --- Rule ids ---------------------------------------------------------------

inline constexpr char kDiscardedStatus[] = "discarded-status";
inline constexpr char kXtuDiscardedStatus[] = "xtu-discarded-status";
inline constexpr char kNodiscardStatus[] = "nodiscard-status";
inline constexpr char kRawStatus[] = "raw-status";
inline constexpr char kBareAbort[] = "bare-abort";
inline constexpr char kBareThrow[] = "bare-throw";
inline constexpr char kNondeterministicRandom[] = "nondeterministic-random";
inline constexpr char kUnorderedIter[] = "unordered-iter";
inline constexpr char kParallelMutation[] = "parallel-mutation";
inline constexpr char kLegacyTupleVector[] = "legacy-tuple-vector";
inline constexpr char kViewEscape[] = "view-escape";
inline constexpr char kLockDiscipline[] = "lock-discipline";
inline constexpr char kStampAudit[] = "stamp-audit";

/// All rule ids, for --help and allow() validation.
const std::vector<std::string>& AllRules();

/// True for the advisory rules that only fail the run under --strict.
bool IsAdvisoryRule(std::string_view rule);

// --- Lexer ------------------------------------------------------------------

struct Token {
  enum class Kind {
    kIdent,   // identifiers and keywords
    kNumber,  // numeric literals
    kPunct,   // punctuation; `::` is a single token
    kAttr,    // a whole [[...]] attribute, text = inner content
  };
  Kind kind;
  std::string text;
  int line;
};

/// One tokenized source file. String/char literals and preprocessor
/// directives produce no tokens; comments contribute only allow() pragmas,
/// and #include "..." directives are recorded for cross-file name scoping.
struct FileScan {
  std::string path;
  std::vector<Token> tokens;
  // Pragma on line L waives the listed rules on lines L and L+1.
  std::map<int, std::set<std::string>> allows;
  // Quoted-include paths, as written (e.g. "qpwm/util/status.h").
  std::vector<std::string> includes;
};

/// Tokenizes `src`; never fails (unterminated constructs end the scan).
FileScan ScanSource(std::string path, std::string_view src);

// --- Pass 1: the project symbol index ---------------------------------------

inline constexpr size_t kNoBody = static_cast<size_t>(-1);

/// One data member of an indexed class, with its lint annotations.
struct MemberSym {
  std::string name;
  std::string type;  // leading type tokens joined by ' ' (diagnostic)
  int line = 0;
  bool is_mutable = false;
  bool is_static = false;
  bool is_mutex = false;   // type mentions Mutex / mutex
  bool is_atomic = false;  // type mentions atomic
  bool is_stamp = false;   // type mentions GenerationStamp
  bool has_view_of = false;       // QPWM_VIEW_OF(...) present
  std::string guarded_by;         // mutex name from QPWM_GUARDED_BY, or ""
};

/// One function/method, with the per-body facts the cross-TU rules need.
/// Declarations and definitions of the same method merge in the index.
struct FunctionSym {
  std::string class_name;  // "" for free functions; "Outer::Nested" possible
  std::string name;
  int line = 0;
  bool is_definition = false;
  bool is_ctor_or_dtor = false;
  /// Body contains `<ident>.Bump(` — targets of generation-stamp bumps.
  std::set<std::string> bump_targets;
  /// Coarse callees: identifiers directly followed by `(` in the body.
  std::set<std::string> calls;
  /// Mutex names from QPWM_REQUIRES(...) on the declaration or definition.
  std::set<std::string> requires_mutexes;
  /// Token span of the body in the declaring file's scan (same-run only;
  /// kNoBody when declaration-only or when restored from the index cache).
  size_t body_begin = kNoBody;
  size_t body_end = kNoBody;
  /// Token span of the parameter list `( ... )`, same-run only.
  size_t params_begin = kNoBody;
  size_t params_end = kNoBody;
  /// Leading return-type tokens (empty for ctors/dtors/operators).
  std::vector<std::string> return_tokens;
};

/// One class/struct with a body, possibly nested ("Outer::Nested").
struct ClassSym {
  std::string name;
  int line = 0;
  bool is_view_type = false;  // QPWM_VIEW_TYPE marker present
  std::vector<MemberSym> members;
};

/// Everything pass 1 extracts from one file. Pure function of the token
/// stream, which is what makes per-file caching sound.
struct FileSymbols {
  std::string path;
  std::set<std::string> status_apis;
  std::set<std::string> unordered_names;
  std::vector<ClassSym> classes;
  std::vector<FunctionSym> functions;
};

/// Structural scan of one file: classes (with members and annotations) and
/// functions (with spans and body facts). Exposed for the index self-tests.
FileSymbols CollectFileSymbols(const FileScan& scan);

/// The merged cross-file context both passes share.
struct LintContext {
  // Function names declared (anywhere in the set) to return Status or
  // Result<...>; calls to these may not discard the value. Project-wide, so
  // function names must be collision-free across the tree (rename rather
  // than allowlist when two unrelated APIs share a name).
  std::set<std::string> status_apis;
  // Variable/member names declared with an unordered_{map,set} type, keyed
  // by the normalized path of the declaring file. A file sees its own names
  // plus those of headers it #includes.
  std::map<std::string, std::set<std::string>> unordered_by_file;
  // Classes merged by (possibly nested) name across every TU.
  std::map<std::string, ClassSym> classes;
  // Method facts merged by "Class::name" (or bare name for free functions):
  // a declaration in a header and a definition in a .cc contribute to one
  // entry, so QPWM_REQUIRES on the declaration is honored at the definition.
  std::map<std::string, FunctionSym> functions;
  // Coarse call graph over the same keys; values are bare callee names.
  std::map<std::string, std::set<std::string>> call_graph;
  // View-like type names: the builtin set plus every QPWM_VIEW_TYPE class.
  // Unqualified (last component) names.
  std::set<std::string> view_types;
  bool finalized = false;
};

/// Merges one file's symbols into the context.
void MergeSymbols(const FileSymbols& syms, LintContext& ctx);

/// Pass 1 over one file: CollectFileSymbols + MergeSymbols.
void CollectContext(const FileScan& scan, LintContext& ctx);

/// Closes the index after every file merged: seeds the builtin view types,
/// adds QPWM_VIEW_TYPE classes, resolves transitive stamp-bump reachability.
/// Must run before AnalyzeFile.
void FinalizeContext(LintContext& ctx);

/// Order-independent digest of the merged context. Cached per-file findings
/// are only reused when the digest they were computed under still matches.
uint64_t ContextDigest(const LintContext& ctx);

// --- Pass 2: analysis --------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Per-rule wall time accumulated across files, in milliseconds.
using RuleTimings = std::map<std::string, double>;

/// Pass 2: runs every rule over `scan` against the finalized context,
/// appending findings (already filtered through the file's allow() pragmas).
/// When `timings` is given, each rule family's wall time is accumulated.
void AnalyzeFile(const FileScan& scan, const LintContext& ctx,
                 std::vector<Finding>& out, RuleTimings* timings = nullptr);

// --- Incremental index cache -------------------------------------------------

/// One cached file: identity (mtime+hash), its pass-1 symbols, and the
/// findings computed under `ctx_digest`. Symbols are reusable whenever the
/// identity matches; findings additionally require the context digest to
/// match (a change anywhere in the tree can invalidate cross-TU findings
/// everywhere).
struct CachedFile {
  int64_t mtime = 0;
  uint64_t hash = 0;
  uint64_t ctx_digest = 0;
  FileSymbols symbols;
  std::vector<Finding> findings;
};

using IndexCache = std::map<std::string, CachedFile>;  // by normalized path

/// Loads/saves the cache file (a versioned line format; a version mismatch
/// or parse error yields an empty cache, never an error).
IndexCache LoadIndexCache(const std::string& path);
bool SaveIndexCache(const std::string& path, const IndexCache& cache);

/// FNV-1a 64 over `text` — the content hash the cache keys on.
uint64_t HashContent(std::string_view text);

// --- Driver -----------------------------------------------------------------

struct DriverOptions {
  bool strict = false;
  std::string root = ".";               // tree to walk when no paths given
  std::string compile_commands;         // optional compile_commands.json
  std::string report;                   // optional JSON report path
  std::string index_cache;              // optional incremental cache path
  std::vector<std::string> paths;       // explicit files/dirs to lint
};

struct DriverResult {
  std::vector<Finding> errors;    // fail the run
  std::vector<Finding> warnings;  // advisory (errors under --strict)
  size_t files_scanned = 0;
  size_t files_from_cache = 0;    // pass-1 symbols reused
  size_t findings_from_cache = 0; // pass-2 findings reused
  RuleTimings rule_ms;
  double index_ms = 0.0;  // pass 1 (scan + merge + finalize)
  double total_ms = 0.0;
};

/// Collects the file set (explicit paths, else compile_commands + a walk of
/// src/tools/tests/bench/examples under root), runs both passes, and splits
/// findings by severity. Returns false on I/O errors (unreadable
/// compile_commands or an explicit path that does not exist).
bool RunLint(const DriverOptions& opt, DriverResult& result);

/// JSON report schema version; bump on any shape change and document in
/// docs/static-analysis.md.
inline constexpr int kReportSchemaVersion = 2;

/// Serializes findings as a JSON report. Returns false if unwritable.
bool WriteReport(const std::string& path, const DriverResult& result);

}  // namespace qpwm::lint

#endif  // QPWM_TOOLS_LINT_LINT_H_
