file(REMOVE_RECURSE
  "libqpwm_baseline.a"
)
