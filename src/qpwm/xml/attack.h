// Structural attacks on XML documents (DOM level): dropping subtrees and
// inserting cloned elements. These model the survey literature's standard
// robustness attacks — an attacker who ships a pruned or padded copy of a
// marked document. The owner-side response is erasure-aware detection: see
// AlignSuspectWeights (encode.h) and PairObservation (core/pairs.h).
#ifndef QPWM_XML_ATTACK_H_
#define QPWM_XML_ATTACK_H_

#include "qpwm/util/random.h"
#include "qpwm/xml/dom.h"

namespace qpwm {

/// Deletes each non-root element subtree independently with probability
/// `drop_frac` (deleting an ancestor subsumes its descendants). Text children
/// follow their element. The root always survives, so the result is a valid
/// document.
XmlDocument SubtreeDeletionAttack(const XmlDocument& doc, double drop_frac,
                                  Rng& rng);

/// Inserts roughly `insert_frac * element_count` cloned records: each clone
/// deep-copies a random non-root element subtree, jitters every integer text
/// value by +-1..3 (plausible fresh data), and appends the clone as an extra
/// child of the original's parent.
XmlDocument ElementInsertionAttack(const XmlDocument& doc, double insert_frac,
                                   Rng& rng);

}  // namespace qpwm

#endif  // QPWM_XML_ATTACK_H_
