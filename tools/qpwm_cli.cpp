// qpwm — command-line watermarking of CSV tables and XML documents.
//
// Subcommands:
//   mark-csv    --in data.csv --schema col:key,col2:weight:col --query CQ
//               --param-column col --key K0:K1 --eps E --mark BITS --out out.csv
//   detect-csv  --original data.csv --suspect sus.csv (same flags as mark-csv)
//   mark-xml    --in doc.xml --weight-tags tag[,tag] --xpath XPATH
//               --key K0:K1 --mark BITS --out out.xml
//   detect-xml  --original doc.xml --suspect sus.xml (same flags as mark-xml)
//
// The secret key is two 64-bit hex words. --mark is a 0/1 string; it is
// padded with zeros to the scheme's capacity (truncated marks are rejected).
// --redundancy R spreads each mark bit over R pairs (majority vote on
// detection); --min-margin M sets the confidence threshold. --codec C layers
// an error-correcting message codec over the pair channel (soft-decision
// decoding, interleaved blocks, verdict with a false-positive bound);
// omitting it — or passing identity — keeps the raw channel path.
//
// Detection is erasure-aware: suspects with deleted rows / dropped subtrees
// are aligned back onto the original by key, missing pair elements abstain,
// and a partial report (bits recovered / erased, per-bit margins) is printed.
//
// Exit codes: 0 = ok (mark found / full match), 1 = no mark found (recovered
// bits contradict --mark), 2 = I/O, parse or usage error, 3 = partial
// detection below threshold (erasures present or margin < --min-margin).
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "qpwm/coding/coded_watermark.h"
#include "qpwm/coding/codec.h"
#include "qpwm/coding/fingerprint.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/conjunctive.h"
#include "qpwm/relational/csv.h"
#include "qpwm/relational/table.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"
#include "qpwm/xml/encode.h"
#include "qpwm/xml/parser.h"
#include "qpwm/xml/xpath.h"

using namespace qpwm;

namespace {

// Exit codes (documented in Usage): keep distinct so scripts can tell "the
// mark is not there" from "the invocation is broken" from "inconclusive".
constexpr int kExitOk = 0;
constexpr int kExitNoMark = 1;
constexpr int kExitError = 2;
constexpr int kExitPartial = 3;

struct Args {
  std::unordered_map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.count(name) > 0; }
  Result<std::string> Get(const std::string& name) const {
    auto it = flags.find(name);
    if (it == flags.end()) return Status::InvalidArgument("missing --" + name);
    return it->second;
  }
  std::string GetOr(const std::string& name, std::string fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

// Every flag any subcommand understands. Parsing is strict: an unknown flag,
// a flag without a value, or a non-numeric value where a number is expected
// is a usage error (exit 2), never a silent ignore or an uncaught throw.
const char* const kKnownFlags[] = {
    "in",    "out",          "original",   "suspect",    "schema",
    "table", "query",        "param-column", "key",      "eps",
    "mark",  "redundancy",   "min-margin", "weight-tags", "xpath",
    "codec", "fingerprint",  "recipient",  "fp-seed",    "design-c",
};

bool IsKnownFlag(const std::string& name) {
  for (const char* known : kKnownFlags) {
    if (name == known) return true;
  }
  return false;
}

// Strict double parse: the whole value must be a decimal number.
Result<double> ParseDouble(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("--" + flag + " needs a number, got '" +
                                   text + "'");
  }
  return value;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << content;
  return Status::OK();
}

Result<PrfKey> ParseKey(const std::string& text) {
  auto parts = Split(text, ':');
  if (parts.size() != 2) {
    return Status::InvalidArgument("--key must be two hex words, K0:K1");
  }
  PrfKey key;
  try {
    key.k0 = std::stoull(parts[0], nullptr, 16);
    key.k1 = std::stoull(parts[1], nullptr, 16);
  } catch (...) {
    return Status::InvalidArgument("--key words must be hex integers");
  }
  return key;
}

// schema: "order:key,region:key,revenue:weight:order"
Result<std::vector<ColumnSpec>> ParseSchema(const std::string& text) {
  std::vector<ColumnSpec> out;
  for (const std::string& part : Split(text, ',')) {
    auto fields = Split(part, ':');
    if (fields.size() == 2 && fields[1] == "key") {
      out.push_back({fields[0], ColumnRole::kKey, ""});
    } else if (fields.size() == 3 && fields[1] == "weight") {
      out.push_back({fields[0], ColumnRole::kWeight, fields[2]});
    } else {
      return Status::InvalidArgument("bad schema entry '" + part +
                                     "' (want name:key or name:weight:of)");
    }
  }
  if (out.empty()) return Status::InvalidArgument("empty --schema");
  return out;
}

Result<BitVec> ParseMark(const std::string& bits, size_t capacity) {
  for (char c : bits) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("--mark must be a 0/1 string");
    }
  }
  if (bits.size() > capacity) {
    return Status::CapacityExhausted(StrCat("mark has ", bits.size(),
                                            " bits but capacity is ", capacity));
  }
  BitVec mark(capacity);
  for (size_t i = 0; i < bits.size(); ++i) mark.Set(i, bits[i] == '1');
  return mark;
}

// The codec the invocation asked for, or null for the raw-channel path.
// `--codec identity` is defined to be the uncoded pass-through, so it keeps
// the pre-coding report format and exit-code logic bit for bit.
Result<std::unique_ptr<MessageCodec>> CodecFromArgs(const Args& args) {
  if (!args.Has("codec")) return std::unique_ptr<MessageCodec>();
  auto codec = MakeCodec(args.Get("codec").ValueOrDie());
  if (!codec.ok()) return codec.status();
  if (codec.value()->Name() == "identity") return std::unique_ptr<MessageCodec>();
  return codec;
}

Result<size_t> ParseRedundancy(const Args& args) {
  const std::string text = args.GetOr("redundancy", "1");
  char* end = nullptr;
  long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 1) {
    return Status::InvalidArgument("--redundancy must be a positive integer");
  }
  return static_cast<size_t>(value);
}

// --- Fingerprint mode (--fingerprint N) -------------------------------------
//
// Marking embeds the --recipient's Tardos codeword (instead of an explicit
// --mark); detection traces the suspect against all N candidate codewords and
// exits 0 (traced), 1 (no mark) or 3 (untraceable) — never accusing anyone
// whose score clears less than the pool-wide false-positive budget.

// Strict unsigned parse for an optional flag; `min_value` guards nonsense
// like a zero-sized candidate pool.
Result<uint64_t> ParseU64Flag(const Args& args, const std::string& flag,
                              uint64_t fallback, uint64_t min_value) {
  if (!args.Has(flag)) return fallback;
  const std::string text = args.GetOr(flag, "");
  char* end = nullptr;
  errno = 0;
  const uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text[0] == '-' || value < min_value) {
    return Status::InvalidArgument(StrCat("--", flag,
                                          " needs an unsigned integer >= ",
                                          min_value, ", got '", text, "'"));
  }
  return value;
}

Result<TardosOptions> TardosFromArgs(const Args& args) {
  TardosOptions opts;
  auto design = ParseU64Flag(args, "design-c", opts.design_c, 1);
  if (!design.ok()) return design.status();
  opts.design_c = static_cast<size_t>(design.value());
  auto seed = ParseU64Flag(args, "fp-seed", opts.seed, 0);
  if (!seed.ok()) return seed.status();
  opts.seed = seed.value();
  return opts;
}

// mark-* with --fingerprint: embeds the recipient's codeword.
Result<WeightMap> FingerprintMark(const Args& args,
                                  const AdversarialScheme& adv,
                                  const WeightMap& weights) {
  if (args.Has("mark")) {
    return Status::InvalidArgument(
        "--mark and --fingerprint are mutually exclusive");
  }
  auto pool = ParseU64Flag(args, "fingerprint", 0, 1);
  if (!pool.ok()) return pool.status();
  if (!args.Has("recipient")) {
    return Status::InvalidArgument("--fingerprint marking needs --recipient");
  }
  auto recipient = ParseU64Flag(args, "recipient", 0, 0);
  if (!recipient.ok()) return recipient.status();
  if (recipient.value() >= pool.value()) {
    return Status::InvalidArgument(
        "--recipient must be below the --fingerprint pool size");
  }
  auto codec = MakeCodec(args.GetOr("codec", "identity"));
  if (!codec.ok()) return codec.status();
  auto topts = TardosFromArgs(args);
  if (!topts.ok()) return topts.status();
  CodedWatermark wm(adv, *codec.value());
  if (wm.PayloadBits() == 0) {
    return Status::CapacityExhausted("no payload capacity for fingerprinting");
  }
  FingerprintedWatermark fp(wm, topts.value());
  std::cout << "fingerprint: recipient " << recipient.value() << " of "
            << pool.value() << " candidate(s), codeword " << fp.code().length()
            << " bit(s) (codec " << codec.value()->Name() << ", design c="
            << topts.value().design_c << ", seed " << topts.value().seed
            << ")\n";
  return fp.EmbedFor(weights, recipient.value());
}

// detect-* with --fingerprint: one channel observation, then the scan over
// the full candidate pool. Returns the process exit code.
Result<int> FingerprintTrace(const Args& args, const AdversarialScheme& adv,
                             const WeightMap& original,
                             BatchAnswerServer& server) {
  if (args.Has("mark")) {
    return Status::InvalidArgument(
        "--mark and --fingerprint are mutually exclusive");
  }
  auto pool = ParseU64Flag(args, "fingerprint", 0, 1);
  if (!pool.ok()) return pool.status();
  auto codec = MakeCodec(args.GetOr("codec", "identity"));
  if (!codec.ok()) return codec.status();
  auto topts = TardosFromArgs(args);
  if (!topts.ok()) return topts.status();
  CodedWatermark wm(adv, *codec.value());
  if (wm.PayloadBits() == 0) {
    return Status::CapacityExhausted("no payload capacity for fingerprinting");
  }
  FingerprintedWatermark fp(wm, topts.value());
  auto obs = fp.Observe(original, server);
  if (!obs.ok()) return obs.status();
  const AdversarialDetection& ch = obs.value().channel.channel;
  std::cout << "channel: " << ch.bits_recovered << " bit(s) recovered, "
            << ch.bits_erased << " erased; pairs erased: " << ch.pairs_erased
            << "\n";
  TraceResult traced = fp.TraceMany(obs.value(), pool.value());
  std::cout << "trace: " << traced.candidates << " candidate(s), "
            << obs.value().positions_scored << " scored position(s), threshold "
            << FmtDouble(traced.threshold, 1) << ", pruned " << traced.pruned
            << "\n";
  for (const Accusation& a : traced.accused) {
    std::cout << "ACCUSED recipient " << a.recipient << ": score "
              << FmtDouble(a.score, 1) << ", log10(fp) <= "
              << FmtDouble(a.log10_fp, 1) << "\n";
  }
  std::cout << "verdict: " << TraceVerdictKindName(traced.kind) << "\n";
  return traced.ExitCode();
}

// Prints the partial-detection report and maps it to an exit code. Erased
// bits are shown as '?'; the match against --mark (if given) only judges
// recovered bits.
int ReportDetection(const Args& args, const AdversarialDetection& d) {
  std::string bits;
  for (size_t i = 0; i < d.mark.size(); ++i) {
    bits += d.bit_erased[i] ? '?' : (d.mark.Get(i) ? '1' : '0');
  }
  std::cout << "detected: " << bits << " (? = erased)\n";
  std::cout << "bits: " << d.bits_recovered << " recovered, " << d.bits_erased
            << " erased; pairs erased: " << d.pairs_erased << "\n";
  std::cout << "per-bit margins:";
  for (size_t i = 0; i < d.margins.size(); ++i) {
    std::cout << ' ' << FmtDouble(d.margins[i], 2);
  }
  std::cout << "\nmin margin over recovered bits: " << FmtDouble(d.min_margin, 2)
            << "\n";

  auto threshold = ParseDouble("min-margin", args.GetOr("min-margin", "0"));
  if (!threshold.ok()) {
    std::cerr << threshold.status() << "\n";
    return kExitError;
  }
  bool below_threshold =
      d.bits_recovered == 0 || d.min_margin < threshold.value();

  if (args.Has("mark")) {
    auto expected = ParseMark(args.GetOr("mark", ""), d.mark.size());
    if (!expected.ok()) {
      std::cerr << expected.status() << "\n";
      return kExitError;
    }
    size_t mismatched = 0;
    for (size_t i = 0; i < d.mark.size(); ++i) {
      if (!d.bit_erased[i] && d.mark.Get(i) != expected.value().Get(i)) {
        ++mismatched;
      }
    }
    if (mismatched > 0) {
      std::cout << "NO MATCH (" << mismatched << " recovered bit(s) differ)\n";
      return kExitNoMark;
    }
    if (d.bits_erased > 0 || below_threshold) {
      std::cout << "PARTIAL MATCH (recovered bits agree, but "
                << d.bits_erased << " bit(s) erased, min margin "
                << FmtDouble(d.min_margin, 2) << ")\n";
      return kExitPartial;
    }
    std::cout << "MATCH\n";
    return kExitOk;
  }
  if (d.bits_erased > 0 || below_threshold) return kExitPartial;
  return kExitOk;
}

// Prints the coded-detection report: channel accounting, decoded payload
// with correction counts, and the verdict with its false-positive bound.
// The exit code is the verdict's, except that a --mark contradicted by
// recovered payload bits forces NO MATCH.
int ReportCodedDetection(const Args& args, const CodedWatermark& wm,
                         const CodedDetection& d) {
  const AdversarialDetection& ch = d.channel;
  std::cout << "channel: " << ch.bits_recovered << " bit(s) recovered, "
            << ch.bits_erased << " erased; pairs erased: " << ch.pairs_erased
            << "\n";
  std::string bits;
  for (size_t i = 0; i < d.message.payload.size(); ++i) {
    bits += d.message.bit_erased[i] ? '?' : (d.message.payload.Get(i) ? '1' : '0');
  }
  std::cout << "codec " << wm.codec().Name() << ": decoded " << bits
            << " (? = erased), corrected " << d.message.corrected
            << " channel bit(s), filled " << d.message.filled << " erasure(s)\n";
  std::cout << "verdict: " << VerdictToString(d.verdict) << "\n";

  if (args.Has("mark")) {
    auto expected = ParseMark(args.GetOr("mark", ""), d.message.payload.size());
    if (!expected.ok()) {
      std::cerr << expected.status() << "\n";
      return kExitError;
    }
    size_t mismatched = 0;
    for (size_t i = 0; i < d.message.payload.size(); ++i) {
      if (!d.message.bit_erased[i] &&
          d.message.payload.Get(i) != expected.value().Get(i)) {
        ++mismatched;
      }
    }
    if (mismatched > 0) {
      std::cout << "NO MATCH (" << mismatched << " recovered bit(s) differ)\n";
      return kExitNoMark;
    }
  }
  return d.verdict.ExitCode();
}

// --- CSV workflow -----------------------------------------------------------

struct CsvSetup {
  Database db;
  // Heap-allocated: the QueryIndex (and through it the scheme) holds a
  // pointer to instance->structure, which must survive the move of this
  // struct out of SetupCsv.
  std::unique_ptr<RelationalInstance> instance;
  std::unique_ptr<ConjunctiveQuery> query;
  std::unique_ptr<QueryIndex> index;
  std::unique_ptr<LocalScheme> scheme;
  std::vector<ColumnSpec> schema;
  std::string table_name;
};

Result<CsvSetup> SetupCsv(const Args& args, const std::string& csv_path) {
  CsvSetup setup;
  auto csv = ReadFile(csv_path);
  if (!csv.ok()) return csv.status();
  auto schema_text = args.Get("schema");
  if (!schema_text.ok()) return schema_text.status();
  auto schema = ParseSchema(schema_text.value());
  if (!schema.ok()) return schema.status();
  setup.schema = schema.value();
  setup.table_name = args.GetOr("table", "T");

  auto table = TableFromCsv(setup.table_name, setup.schema, csv.value());
  if (!table.ok()) return table.status();
  setup.db.AddTable(std::move(table).value());
  auto instance = ToWeightedStructure(setup.db);
  if (!instance.ok()) return instance.status();
  setup.instance =
      std::make_unique<RelationalInstance>(std::move(instance).value());

  auto query_text = args.Get("query");
  if (!query_text.ok()) return query_text.status();
  auto query = ConjunctiveQuery::Parse(query_text.value());
  if (!query.ok()) return query.status();
  setup.query = std::make_unique<ConjunctiveQuery>(std::move(query).value());

  // Parameter domain: all values of --param-column, or the full universe.
  std::vector<Tuple> domain;
  if (args.Has("param-column")) {
    if (setup.query->ParamArity() != 1) {
      return Status::InvalidArgument("--param-column needs a 1-parameter query");
    }
    const Table* t = setup.db.Find(setup.table_name).ValueOrDie();
    auto col = t->ColumnIndex(args.Get("param-column").ValueOrDie());
    if (!col.ok()) return col.status();
    std::set<std::string> seen;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      const std::string& value = t->KeyAt(r, col.value());
      if (!seen.insert(value).second) continue;
      domain.push_back(Tuple{setup.instance->structure.FindElement(value).ValueOrDie()});
    }
  } else {
    domain = AllParams(setup.instance->structure, setup.query->ParamArity());
  }
  setup.index = std::make_unique<QueryIndex>(setup.instance->structure, *setup.query,
                                             std::move(domain));

  LocalSchemeOptions opts;
  auto key = ParseKey(args.GetOr("key", "c0ffee:7ea"));
  if (!key.ok()) return key.status();
  opts.key = key.value();
  auto eps = ParseDouble("eps", args.GetOr("eps", "0.5"));
  if (!eps.ok()) return eps.status();
  opts.epsilon = eps.value();
  auto scheme = LocalScheme::Plan(*setup.index, opts);
  if (!scheme.ok()) return scheme.status();
  setup.scheme = std::make_unique<LocalScheme>(std::move(scheme).value());
  return setup;
}

int MarkCsv(const Args& args) {
  auto in = args.Get("in");
  if (!in.ok()) {
    std::cerr << in.status() << "\n";
    return kExitError;
  }
  auto setup = SetupCsv(args, in.value());
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return kExitError;
  }
  CsvSetup& s = setup.value();
  auto redundancy = ParseRedundancy(args);
  if (!redundancy.ok()) {
    std::cerr << redundancy.status() << "\n";
    return kExitError;
  }
  AdversarialScheme adv(*s.scheme, redundancy.value());
  std::cout << "capacity: " << adv.CapacityBits() << " bits at redundancy "
            << adv.Redundancy() << " (" << s.scheme->CapacityBits()
            << " pairs), bound <= " << s.scheme->Budget() << " per query\n";

  if (args.Has("fingerprint")) {
    auto marked = FingerprintMark(args, adv, s.instance->weights);
    if (!marked.ok()) {
      std::cerr << marked.status() << "\n";
      return kExitError;
    }
    auto marked_db = ApplyWeightsToDatabase(s.db, *s.instance, marked.value());
    if (!marked_db.ok()) {
      std::cerr << marked_db.status() << "\n";
      return kExitError;
    }
    Status written = WriteFile(
        args.GetOr("out", in.value() + ".marked"),
        TableToCsv(*marked_db.value().Find(s.table_name).ValueOrDie()));
    if (!written.ok()) {
      std::cerr << written << "\n";
      return kExitError;
    }
    return kExitOk;
  }

  auto codec = CodecFromArgs(args);
  if (!codec.ok()) {
    std::cerr << codec.status() << "\n";
    return kExitError;
  }
  std::optional<CodedWatermark> wm;
  if (codec.value()) {
    wm.emplace(adv, *codec.value());
    std::cout << "codec " << codec.value()->Name() << ": payload "
              << wm->PayloadBits() << " bit(s) over " << wm->UsedChannelBits()
              << " channel bit(s)\n";
  }
  auto mark = ParseMark(args.GetOr("mark", "1"),
                        wm ? wm->PayloadBits() : adv.CapacityBits());
  if (!mark.ok()) {
    std::cerr << mark.status() << "\n";
    return kExitError;
  }
  WeightMap marked = wm ? wm->Embed(s.instance->weights, mark.value())
                        : adv.Embed(s.instance->weights, mark.value());
  auto marked_db = ApplyWeightsToDatabase(s.db, *s.instance, marked);
  if (!marked_db.ok()) {
    std::cerr << marked_db.status() << "\n";
    return kExitError;
  }
  std::string out_csv =
      TableToCsv(*marked_db.value().Find(s.table_name).ValueOrDie());
  Status written = WriteFile(args.GetOr("out", in.value() + ".marked"), out_csv);
  if (!written.ok()) {
    std::cerr << written << "\n";
    return kExitError;
  }
  std::cout << "embedded " << mark.value().ToString() << "\n";
  return kExitOk;
}

int DetectCsv(const Args& args) {
  auto original = args.Get("original");
  if (!original.ok()) {
    std::cerr << original.status() << "\n";
    return kExitError;
  }
  auto setup = SetupCsv(args, original.value());
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return kExitError;
  }
  CsvSetup& s = setup.value();

  auto suspect_path = args.Get("suspect");
  if (!suspect_path.ok()) {
    std::cerr << suspect_path.status() << "\n";
    return kExitError;
  }
  auto suspect_csv = ReadFile(suspect_path.value());
  if (!suspect_csv.ok()) {
    std::cerr << suspect_csv.status() << "\n";
    return kExitError;
  }
  auto suspect_table = TableFromCsv(s.table_name, s.schema, suspect_csv.value());
  if (!suspect_table.ok()) {
    std::cerr << suspect_table.status() << "\n";
    return kExitError;
  }
  Database suspect_db;
  suspect_db.AddTable(std::move(suspect_table).value());
  auto suspect_instance = ToWeightedStructure(suspect_db);
  if (!suspect_instance.ok()) {
    std::cerr << suspect_instance.status() << "\n";
    return kExitError;
  }
  auto redundancy = ParseRedundancy(args);
  if (!redundancy.ok()) {
    std::cerr << redundancy.status() << "\n";
    return kExitError;
  }

  // Align the suspect's elements back onto the original universe by key;
  // rows the attacker deleted become erasures, not failures.
  AlignedSuspect aligned =
      AlignSuspectInstance(*s.instance, suspect_instance.value());
  std::cout << "alignment: " << aligned.matched << " matched, "
            << aligned.missing << " deleted, " << aligned.extra
            << " inserted element(s)\n";
  HonestServer base(*s.index, aligned.weights);
  TamperedAnswerServer server(base);
  for (ElemId e = 0; e < aligned.present.size(); ++e) {
    if (!aligned.present[e]) server.Erase(Tuple{e});
  }

  AdversarialScheme adv(*s.scheme, redundancy.value());
  if (args.Has("fingerprint")) {
    auto code = FingerprintTrace(args, adv, s.instance->weights, server);
    if (!code.ok()) {
      std::cerr << code.status() << "\n";
      return kExitError;
    }
    return code.value();
  }
  auto codec = CodecFromArgs(args);
  if (!codec.ok()) {
    std::cerr << codec.status() << "\n";
    return kExitError;
  }
  if (codec.value()) {
    CodedWatermark wm(adv, *codec.value());
    auto detection = wm.Detect(s.instance->weights, server);
    if (!detection.ok()) {
      std::cerr << detection.status() << "\n";
      return kExitError;
    }
    return ReportCodedDetection(args, wm, detection.value());
  }
  auto detection = adv.Detect(s.instance->weights, server);
  if (!detection.ok()) {
    std::cerr << detection.status() << "\n";
    return kExitError;
  }
  return ReportDetection(args, detection.value());
}

// --- XML workflow -------------------------------------------------------------

struct XmlSetup {
  XmlDocument doc;
  // Heap-allocated: the planned TreeScheme holds pointers to encoded->tree
  // and its label vector, which must survive the move of this struct out of
  // SetupXml.
  std::unique_ptr<EncodedXml> encoded;
  std::unique_ptr<XPathQuery> query;
  std::unique_ptr<TrackedDta> automaton;
  std::unique_ptr<TreeScheme> scheme;
};

Result<XmlSetup> SetupXml(const Args& args, const std::string& xml_path) {
  XmlSetup setup;
  auto xml = ReadFile(xml_path);
  if (!xml.ok()) return xml.status();
  auto doc = ParseXml(xml.value());
  if (!doc.ok()) return doc.status();
  setup.doc = std::move(doc).value();

  auto tags_text = args.Get("weight-tags");
  if (!tags_text.ok()) return tags_text.status();
  std::set<std::string> tags;
  for (const std::string& tag : Split(tags_text.value(), ',')) tags.insert(tag);
  auto encoded = EncodeXml(setup.doc, tags);
  if (!encoded.ok()) return encoded.status();
  setup.encoded = std::make_unique<EncodedXml>(std::move(encoded).value());

  auto xpath_text = args.Get("xpath");
  if (!xpath_text.ok()) return xpath_text.status();
  auto query = XPathQuery::Parse(xpath_text.value());
  if (!query.ok()) return query.status();
  setup.query = std::make_unique<XPathQuery>(std::move(query).value());
  auto automaton = setup.query->Compile(*setup.encoded);
  if (!automaton.ok()) return automaton.status();
  setup.automaton = std::make_unique<TrackedDta>(std::move(automaton).value());

  TreeSchemeOptions opts;
  auto key = ParseKey(args.GetOr("key", "c0ffee:7ea"));
  if (!key.ok()) return key.status();
  opts.key = key.value();
  auto scheme = TreeScheme::Plan(setup.encoded->tree, setup.encoded->tree.labels(),
                                 static_cast<uint32_t>(setup.encoded->sigma.size()),
                                 setup.automaton->dta,
                                 setup.query->has_param() ? 1 : 0, opts);
  if (!scheme.ok()) return scheme.status();
  setup.scheme = std::make_unique<TreeScheme>(std::move(scheme).value());
  return setup;
}

int MarkXml(const Args& args) {
  auto in = args.Get("in");
  if (!in.ok()) {
    std::cerr << in.status() << "\n";
    return kExitError;
  }
  auto setup = SetupXml(args, in.value());
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return kExitError;
  }
  XmlSetup& s = setup.value();
  auto redundancy = ParseRedundancy(args);
  if (!redundancy.ok()) {
    std::cerr << redundancy.status() << "\n";
    return kExitError;
  }
  AdversarialScheme adv(*s.scheme, redundancy.value());
  std::cout << "capacity: " << adv.CapacityBits() << " bits at redundancy "
            << adv.Redundancy() << " (" << s.scheme->CapacityBits()
            << " pairs), per-query distortion <= " << s.scheme->DistortionBound()
            << "\n";
  if (args.Has("fingerprint")) {
    auto marked = FingerprintMark(args, adv, s.encoded->weights);
    if (!marked.ok()) {
      std::cerr << marked.status() << "\n";
      return kExitError;
    }
    XmlDocument out_doc = ApplyWeights(s.doc, *s.encoded, marked.value());
    Status written = WriteFile(args.GetOr("out", in.value() + ".marked"),
                               SerializeXml(out_doc));
    if (!written.ok()) {
      std::cerr << written << "\n";
      return kExitError;
    }
    return kExitOk;
  }
  auto codec = CodecFromArgs(args);
  if (!codec.ok()) {
    std::cerr << codec.status() << "\n";
    return kExitError;
  }
  std::optional<CodedWatermark> wm;
  if (codec.value()) {
    wm.emplace(adv, *codec.value());
    std::cout << "codec " << codec.value()->Name() << ": payload "
              << wm->PayloadBits() << " bit(s) over " << wm->UsedChannelBits()
              << " channel bit(s)\n";
  }
  auto mark = ParseMark(args.GetOr("mark", "1"),
                        wm ? wm->PayloadBits() : adv.CapacityBits());
  if (!mark.ok()) {
    std::cerr << mark.status() << "\n";
    return kExitError;
  }
  WeightMap marked = wm ? wm->Embed(s.encoded->weights, mark.value())
                        : adv.Embed(s.encoded->weights, mark.value());
  XmlDocument out_doc = ApplyWeights(s.doc, *s.encoded, marked);
  Status written =
      WriteFile(args.GetOr("out", in.value() + ".marked"), SerializeXml(out_doc));
  if (!written.ok()) {
    std::cerr << written << "\n";
    return kExitError;
  }
  std::cout << "embedded " << mark.value().ToString() << "\n";
  return kExitOk;
}

int DetectXml(const Args& args) {
  auto original = args.Get("original");
  if (!original.ok()) {
    std::cerr << original.status() << "\n";
    return kExitError;
  }
  auto setup = SetupXml(args, original.value());
  if (!setup.ok()) {
    std::cerr << setup.status() << "\n";
    return kExitError;
  }
  XmlSetup& s = setup.value();

  auto suspect_path = args.Get("suspect");
  if (!suspect_path.ok()) {
    std::cerr << suspect_path.status() << "\n";
    return kExitError;
  }
  auto suspect_xml = ReadFile(suspect_path.value());
  if (!suspect_xml.ok()) {
    std::cerr << suspect_xml.status() << "\n";
    return kExitError;
  }
  auto suspect_doc = ParseXml(suspect_xml.value());
  if (!suspect_doc.ok()) {
    std::cerr << suspect_doc.status() << "\n";
    return kExitError;
  }
  auto redundancy = ParseRedundancy(args);
  if (!redundancy.ok()) {
    std::cerr << redundancy.status() << "\n";
    return kExitError;
  }
  std::set<std::string> tags;
  for (const std::string& tag : Split(args.Get("weight-tags").ValueOrDie(), ',')) {
    tags.insert(tag);
  }

  // Align the suspect's weight records back onto the original tree by record
  // signature; dropped subtrees become erasures, not failures.
  auto aligned = AlignSuspectWeights(s.doc, *s.encoded, suspect_doc.value(), tags);
  if (!aligned.ok()) {
    std::cerr << aligned.status() << "\n";
    return kExitError;
  }
  std::cout << "alignment: " << aligned.value().matched << " matched, "
            << aligned.value().missing << " deleted, " << aligned.value().extra
            << " inserted record(s)\n";
  HonestTreeServer base(s.encoded->tree, s.encoded->tree.labels(),
                        static_cast<uint32_t>(s.encoded->sigma.size()),
                        s.automaton->dta, s.query->has_param() ? 1 : 0,
                        aligned.value().weights);
  TamperedAnswerServer server(base);
  for (NodeId v = 0; v < aligned.value().present.size(); ++v) {
    if (!aligned.value().present[v]) server.Erase(Tuple{v});
  }

  AdversarialScheme adv(*s.scheme, redundancy.value());
  if (args.Has("fingerprint")) {
    auto code = FingerprintTrace(args, adv, s.encoded->weights, server);
    if (!code.ok()) {
      std::cerr << code.status() << "\n";
      return kExitError;
    }
    return code.value();
  }
  auto codec = CodecFromArgs(args);
  if (!codec.ok()) {
    std::cerr << codec.status() << "\n";
    return kExitError;
  }
  if (codec.value()) {
    CodedWatermark wm(adv, *codec.value());
    auto detection = wm.Detect(s.encoded->weights, server);
    if (!detection.ok()) {
      std::cerr << detection.status() << "\n";
      return kExitError;
    }
    return ReportCodedDetection(args, wm, detection.value());
  }
  auto detection = adv.Detect(s.encoded->weights, server);
  if (!detection.ok()) {
    std::cerr << detection.status() << "\n";
    return kExitError;
  }
  return ReportDetection(args, detection.value());
}

void Usage() {
  std::cerr <<
      "usage: qpwm <mark-csv|detect-csv|mark-xml|detect-xml> [--flag value]...\n"
      "  mark-csv   --in F --schema C --query Q [--param-column C] [--key K0:K1]\n"
      "             [--eps E] [--mark BITS] [--redundancy R] [--codec C] [--out F]\n"
      "  detect-csv --original F --suspect F [--min-margin M] (+ mark-csv flags)\n"
      "  mark-xml   --in F --weight-tags T[,T] --xpath X [--key K0:K1]\n"
      "             [--mark BITS] [--redundancy R] [--codec C] [--out F]\n"
      "  detect-xml --original F --suspect F [--min-margin M] (+ mark-xml flags)\n"
      "flags:\n"
      "  --redundancy R  spread each channel bit over R weight pairs; detection\n"
      "                  takes an erasure-aware majority vote per group (default 1)\n"
      "  --min-margin M  raw-channel confidence threshold: a detection whose\n"
      "                  minimum vote margin is below M reports PARTIAL (default 0)\n"
      "  --codec C       layer a message codec over the channel: " "\n"
      "                  " << KnownCodecSpecs() << ".\n"
      "                  Non-identity codecs interleave codewords across pair\n"
      "                  groups, decode with soft margins, and report a verdict\n"
      "                  with a false-positive bound; identity (or omitting the\n"
      "                  flag) keeps the raw channel path\n"
      "  --fingerprint N fingerprint mode over an N-candidate Tardos code.\n"
      "                  mark-*: embed --recipient R's codeword (R < N);\n"
      "                  detect-*: trace the suspect against all N codewords\n"
      "                  and print any accusations with their false-positive\n"
      "                  bounds. --fp-seed S (default 1) seeds the code,\n"
      "                  --design-c C (default 5) sets the design coalition\n"
      "                  size; both must match between mark and detect.\n"
      "                  Mutually exclusive with --mark\n"
      "exit codes: 0 ok / match / traced, 1 mark contradicted or no mark,\n"
      "            2 I/O or usage error, 3 partial detection (erasures, margin\n"
      "            below --min-margin, a false-positive bound above threshold,\n"
      "            or an untraceable fingerprint)\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    }
  }
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  Args args;
  // Flags come in "--name value" pairs and must be known; anything else is a
  // usage error, never silently ignored.
  for (int i = 2; i < argc; i += 2) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0 || !IsKnownFlag(flag.substr(2))) {
      std::cerr << "unknown flag '" << flag << "'\n";
      Usage();
      return 2;
    }
    if (i + 1 >= argc) {
      std::cerr << flag << " requires a value\n";
      Usage();
      return 2;
    }
    args.flags[flag.substr(2)] = argv[i + 1];
  }
  if (command == "mark-csv") return MarkCsv(args);
  if (command == "detect-csv") return DetectCsv(args);
  if (command == "mark-xml") return MarkXml(args);
  if (command == "detect-xml") return DetectXml(args);
  Usage();
  return 2;
}
