// Per-file pattern rules for qpwm_lint, plus the AnalyzeFile dispatcher that
// also runs the cross-TU families from xtu_rules.cc. Everything here works
// on the token stream from lexer.cc; see lint.h for the rule catalog. Pass-1
// symbol collection lives in index.cc.
#include <chrono>

#include "internal.h"
#include "lint.h"

namespace qpwm::lint {
namespace {

using namespace qpwm::lint::internal;

// Matches `Status Name(` / `Result<...> Name(` and returns the index of the
// function-name token, or kNpos. `i` is the index of the type token.
size_t MatchStatusApi(const std::vector<Token>& t, size_t i) {
  size_t j;
  if (t[i].text == "Status") {
    j = i + 1;
  } else if (t[i].text == "Result" && Is(t, i + 1, "<")) {
    j = SkipAngles(t, i + 1);
    if (j == kNpos) return kNpos;
  } else {
    return kNpos;
  }
  if (!IsIdent(t, j) || IsKeyword(t[j].text)) return kNpos;
  if (!Is(t, j + 1, "(")) return kNpos;
  return j;
}

bool IsUnorderedType(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

}  // namespace

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kAll = {
      kDiscardedStatus, kXtuDiscardedStatus, kNodiscardStatus,
      kRawStatus,       kBareAbort,          kBareThrow,
      kNondeterministicRandom, kUnorderedIter, kParallelMutation,
      kLegacyTupleVector, kViewEscape,       kLockDiscipline,
      kStampAudit};
  return kAll;
}

bool IsAdvisoryRule(std::string_view rule) {
  // view-escape and lock-discipline are heuristic lifetime/locking shapes:
  // advisory by default, gating under --strict like the other advisories.
  return rule == kUnorderedIter || rule == kParallelMutation ||
         rule == kLegacyTupleVector || rule == kViewEscape ||
         rule == kLockDiscipline;
}

// --- Pass 2: per-file rules --------------------------------------------------

namespace {

// error-discipline: header declarations returning Status/Result must carry
// [[nodiscard]] (the class-level attribute covers by-value returns at compile
// time; the lint keeps the declarations annotated so intent survives at every
// API and reference-returning overloads stay reviewable).
void CheckNodiscard(const FileScan& scan, std::vector<Finding>& out) {
  if (!IsHeader(scan.path)) return;
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i)) continue;
    if (t[i].text != "Status" && t[i].text != "Result") continue;
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->" ||
                  t[i - 1].text == "::")) {
      continue;  // qualified use (qpwm::Status handled at the `qpwm` token)
    }
    const size_t name = MatchStatusApi(t, i);
    if (name == kNpos) continue;
    // Walk back over specifiers; a declaration begins at a boundary token.
    size_t k = i;
    bool has_nodiscard = false;
    while (k > 0) {
      const Token& prev = t[k - 1];
      if (prev.kind == Token::Kind::kAttr) {
        if (prev.text.find("nodiscard") != std::string::npos) {
          has_nodiscard = true;
        }
        --k;
        continue;
      }
      if (IsDeclSpecifier(prev.text)) {
        --k;
        continue;
      }
      break;
    }
    const bool at_boundary =
        k == 0 || t[k - 1].text == ";" || t[k - 1].text == "{" ||
        t[k - 1].text == "}" || t[k - 1].text == ":" || t[k - 1].text == ">";
    if (!at_boundary) continue;  // not a declaration (cast, call, ...)
    if (!has_nodiscard) {
      Report(scan, t[i].line, kNodiscardStatus,
             "declaration of '" + t[name].text + "' returns " + t[i].text +
                 " without [[nodiscard]]",
             out);
    }
  }
}

// error-discipline: a whole statement that is just a call to a known
// Status/Result-returning function discards the outcome. `(void)` casts of
// such calls are the same bug wearing a suppression.
void CheckDiscardedStatus(const FileScan& scan, const LintContext& ctx,
                          std::vector<Finding>& out) {
  const std::vector<Token>& t = scan.tokens;
  size_t start = 0;  // index of the first token of the current statement
  for (size_t i = 0; i <= t.size(); ++i) {
    const bool boundary =
        i == t.size() || t[i].text == ";" || t[i].text == "{" || t[i].text == "}";
    if (!boundary) continue;
    const size_t begin = start;
    start = i + 1;
    if (i == t.size() || t[i].text != ";") continue;  // only `...;` statements
    size_t j = begin;
    bool voided = false;
    if (Is(t, j, "(") && Is(t, j + 1, "void") && Is(t, j + 2, ")")) {
      voided = true;
      j += 3;
    }
    // Postfix chain: ident (::ident)*, then any mix of . / -> member hops
    // and (...) calls — `obj.handle().Commit();` flags on `Commit`. Anything
    // else (declarations have a second identifier, assignments an operator)
    // bails out.
    if (!IsIdent(t, j) || IsKeyword(t[j].text)) continue;
    std::string callee = t[j].text;
    ++j;
    while (Is(t, j, "::") && IsIdent(t, j + 1)) {
      callee = t[j + 1].text;
      j += 2;
    }
    bool called = false;
    while (j < i) {
      if (Is(t, j, "(")) {
        const size_t after = SkipBalanced(t, j);
        if (after == kNpos) break;
        j = after;
        called = true;
        continue;
      }
      if ((Is(t, j, ".") || Is(t, j, "->")) && IsIdent(t, j + 1)) {
        callee = t[j + 1].text;
        called = false;
        j += 2;
        continue;
      }
      break;
    }
    if (j != i || !called) continue;  // trailing operators: not a bare call
    if (ctx.status_apis.count(callee) == 0) continue;
    Report(scan, t[begin].line, kDiscardedStatus,
           std::string(voided ? "(void)-suppressed" : "discarded") +
               " result of Status/Result-returning call '" + callee + "'",
           out);
  }
}

// error-discipline: Status built from a raw StatusCode outside the factories.
void CheckRawStatus(const FileScan& scan, std::vector<Finding>& out) {
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!Is(t, i, "Status")) continue;
    size_t j = i + 1;
    if (IsIdent(t, j) && !IsKeyword(t[j].text)) ++j;  // named variable form
    if (!Is(t, j, "(") && !Is(t, j, "{")) continue;
    size_t a = j + 1;
    if (Is(t, a, "qpwm") && Is(t, a + 1, "::")) a += 2;
    if (Is(t, a, "StatusCode")) {
      Report(scan, t[i].line, kRawStatus,
             "raw Status(StatusCode, ...) construction; use a factory "
             "(Status::InvalidArgument(...) etc.)",
             out);
    }
  }
}

// error-discipline: process-killing calls outside check.h / status.cc, and
// `throw` anywhere — recoverable errors are Status values, invariants are
// QPWM_CHECK.
void CheckAbortThrow(const FileScan& scan, std::vector<Finding>& out) {
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i)) continue;
    const std::string& x = t[i].text;
    if (x == "throw") {
      Report(scan, t[i].line, kBareThrow,
             "'throw' outside the Status/QPWM_CHECK error model", out);
      continue;
    }
    const bool killer =
        x == "abort" || x == "terminate" || x == "quick_exit" || x == "_Exit";
    if (killer && Is(t, i + 1, "(") &&
        (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->"))) {
      Report(scan, t[i].line, kBareAbort,
             "process-terminating call '" + x +
                 "' outside util/check.h (use QPWM_CHECK or return Status)",
             out);
    }
  }
}

// determinism: entropy sources other than the seeded Rng in util/random.
void CheckNondeterministicRandom(const FileScan& scan,
                                 std::vector<Finding>& out) {
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i)) continue;
    const std::string& x = t[i].text;
    const bool always_banned =
        x == "random_device" || x == "mt19937" || x == "mt19937_64" ||
        x == "default_random_engine" || x == "minstd_rand" ||
        x == "minstd_rand0" || x == "srand";
    // rand()/time() only as direct calls, so members like obj.rand() or
    // chrono clock types do not trip the rule.
    const bool call_banned =
        (x == "rand" || x == "time" || x == "clock") && Is(t, i + 1, "(") &&
        (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->"));
    if (always_banned || call_banned) {
      Report(scan, t[i].line, kNondeterministicRandom,
             "nondeterministic source '" + x +
                 "' outside util/random; derive randomness from a seeded "
                 "qpwm::Rng",
             out);
    }
  }
}

// The unordered-typed names a file can legitimately iterate: its own
// declarations plus those of headers it directly #includes. Matching is by
// path suffix ("src/qpwm/util/x.h" ends with the include "qpwm/util/x.h"),
// so names never leak between unrelated files that merely reuse an
// identifier.
std::set<std::string> EffectiveUnorderedNames(const FileScan& scan,
                                              const LintContext& ctx) {
  std::set<std::string> names;
  auto matches = [&](const std::string& key) {
    if (key == scan.path) return true;
    for (const std::string& inc : scan.includes) {
      if (key.size() >= inc.size() &&
          key.compare(key.size() - inc.size(), inc.size(), inc) == 0 &&
          (key.size() == inc.size() || key[key.size() - inc.size() - 1] == '/')) {
        return true;
      }
    }
    return false;
  };
  for (const auto& [key, declared] : ctx.unordered_by_file) {
    if (matches(key)) names.insert(declared.begin(), declared.end());
  }
  return names;
}

// determinism: range-for over an unordered container visits hash order.
void CheckUnorderedIter(const FileScan& scan,
                        const std::set<std::string>& unordered_names,
                        std::vector<Finding>& out) {
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!Is(t, i, "for") || !Is(t, i + 1, "(")) continue;
    const size_t end = SkipBalanced(t, i + 1);
    if (end == kNpos) continue;
    // Find the range-for `:` at paren depth 1 (skip nested parens/brackets
    // and `::`, which the lexer already fused).
    size_t colon = kNpos;
    int depth = 0;
    for (size_t j = i + 1; j < end - 1; ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") --depth;
      else if (x == ":" && depth == 1) {
        colon = j;
        break;
      }
      else if (x == ";" && depth == 1) break;  // classic for loop
    }
    if (colon == kNpos) continue;
    for (size_t j = colon + 1; j < end - 1; ++j) {
      if (!IsIdent(t, j)) continue;
      if (IsUnorderedType(t[j].text) || unordered_names.count(t[j].text)) {
        Report(scan, t[colon].line, kUnorderedIter,
               "range-for over unordered container '" + t[j].text +
                   "' visits hash order; sort first or allowlist with a "
                   "reason if order-independent",
               out);
        break;
      }
    }
  }
}

// parallel hygiene: a lambda handed to ParallelFor/Map/Blocks may only write
// through its own locals or per-index slots (`out[i] = ...`); container
// mutators or ++/+= on outer state race across workers.
void CheckParallelMutation(const FileScan& scan, std::vector<Finding>& out) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "emplace", "insert",  "erase", "clear",
      "resize",    "pop_back",     "assign",  "reserve", "merge"};
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i)) continue;
    const std::string& x = t[i].text;
    if (x != "ParallelFor" && x != "ParallelMap" && x != "ParallelBlocks") {
      continue;
    }
    size_t j = i + 1;
    if (Is(t, j, "<")) {
      j = SkipAngles(t, j);
      if (j == kNpos) continue;
    }
    if (!Is(t, j, "(")) continue;
    const size_t call_end = SkipBalanced(t, j);
    if (call_end == kNpos) continue;
    // Locate the lambda: capture list, parameter list, body.
    size_t lam = j + 1;
    while (lam < call_end && t[lam].text != "[") ++lam;
    if (lam >= call_end) continue;
    const size_t caps_end = SkipBalanced(t, lam);
    if (caps_end == kNpos || !Is(t, caps_end, "(")) continue;
    const size_t params_end = SkipBalanced(t, caps_end);
    if (params_end == kNpos) continue;
    std::set<std::string> locals;
    for (size_t p = caps_end + 1; p + 1 < params_end; ++p) {
      if (IsIdent(t, p) && !IsKeyword(t[p].text)) locals.insert(t[p].text);
    }
    size_t body = params_end;
    while (body < call_end && t[body].text != "{") ++body;
    if (body >= call_end) continue;
    const size_t body_end = SkipBalanced(t, body);
    if (body_end == kNpos) continue;

    for (size_t k = body + 1; k + 1 < body_end; ++k) {
      // Heuristic local declarations: `Type name ( | = | ; | {`, where Type's
      // last token is an identifier (incl. auto/const) or a closing `>`.
      // Statement-like keywords (`return x = ...` cannot occur, but `delete
      // p;` / `case x:` shapes can) never start a declaration.
      static const std::set<std::string> kNeverType = {
          "return", "new",       "delete",   "case",  "goto", "else",
          "do",     "co_return", "co_yield", "break", "continue"};
      const bool prev_typelike =
          k > body + 1 &&
          ((IsIdent(t, k - 1) && kNeverType.count(t[k - 1].text) == 0) ||
           t[k - 1].text == ">" || t[k - 1].text == ">>" ||
           t[k - 1].text == "&" || t[k - 1].text == "*");
      if (IsIdent(t, k) && !IsKeyword(t[k].text) && prev_typelike &&
          (Is(t, k + 1, "=") || Is(t, k + 1, ";") || Is(t, k + 1, "(") ||
           Is(t, k + 1, "{"))) {
        // `ident ident (` is a declaration only if the previous token is not
        // `.`/`->`/`::` (member calls) — the chain check below needs those.
        if (t[k - 1].kind == Token::Kind::kIdent ||
            !(Is(t, k + 1, "("))) {
          locals.insert(t[k].text);
        }
      }
      // Comma-chained declarators: `size_t a = 0, b = 0;` declares b too.
      if (IsIdent(t, k) && !IsKeyword(t[k].text) && Is(t, k - 1, ",") &&
          (Is(t, k + 1, "=") || Is(t, k + 1, "{")) &&
          locals.count(t[k].text) == 0) {
        // Only inside a declaration statement: walk back to the statement
        // start and require it to begin with a type-like identifier sequence.
        size_t s = k - 1;
        int d = 0;
        while (s > body) {
          const std::string& x = t[s].text;
          if (x == ")" || x == "]") ++d;
          else if (x == "(" || x == "[") {
            if (d == 0) break;
            --d;
          } else if (d == 0 && (x == ";" || x == "{" || x == "}")) {
            break;
          }
          --s;
        }
        if (d == 0 && s + 2 < k && IsIdent(t, s + 1) &&
            kNeverType.count(t[s + 1].text) == 0 && IsIdent(t, s + 2)) {
          locals.insert(t[k].text);
        }
      }
      // Mutator member call on an outer identifier.
      if (IsIdent(t, k) && (Is(t, k + 1, ".") || Is(t, k + 1, "->")) &&
          k + 2 < body_end && kMutators.count(t[k + 2].text) &&
          Is(t, k + 3, "(") && !locals.count(t[k].text) &&
          (k == 0 || (t[k - 1].text != "." && t[k - 1].text != "->" &&
                      t[k - 1].text != "::"))) {
        Report(scan, t[k].line, kParallelMutation,
               "parallel body mutates '" + t[k].text + "." + t[k + 2].text +
                   "(...)' declared outside the lambda; use per-index slots "
                   "or the sharded patterns in util/parallel",
               out);
      }
      // ++/--/compound-assign on an outer identifier (indexed slots like
      // out[i] are the sanctioned pattern and do not match).
      const bool inc_before = (Is(t, k, "++") || Is(t, k, "--")) &&
                              IsIdent(t, k + 1) && !Is(t, k + 2, "[");
      const bool inc_after = IsIdent(t, k) && !IsKeyword(t[k].text) &&
                             (Is(t, k + 1, "++") || Is(t, k + 1, "--") ||
                              Is(t, k + 1, "+=") || Is(t, k + 1, "-=") ||
                              Is(t, k + 1, "|=") || Is(t, k + 1, "&=") ||
                              Is(t, k + 1, "^="));
      const size_t target = inc_before ? k + 1 : k;
      if ((inc_before || inc_after) && !locals.count(t[target].text) &&
          (target == 0 ||
           (t[target - 1].text != "." && t[target - 1].text != "->" &&
            t[target - 1].text != "::" && t[target - 1].text != "]"))) {
        Report(scan, t[target].line, kParallelMutation,
               "parallel body writes outer variable '" + t[target].text +
                   "'; reduce per-block and merge on the caller instead",
               out);
      }
    }
    i = body_end;  // nested parallel calls inside the body were covered
  }
}

// flat storage: by-value std::vector<Tuple> in library code outside
// structure/ rebuilds row storage the flat CSR relations already hold.
// References/pointers (`const std::vector<Tuple>&` parameters) do not match —
// borrowing an existing materialization is fine, creating one is the smell.
// Function declarations (identifier followed by `(`) are exempt: query
// evaluation returns materialized answer sets by contract.
void CheckLegacyTupleVector(const FileScan& scan, std::vector<Finding>& out) {
  // Library code only — tests/bench/tools materialize rows freely. The
  // fixture directory opts in so the rule stays end-to-end testable.
  if (!PathHas(scan.path, "src/qpwm/") && !PathHas(scan.path, "lint_fixtures/")) {
    return;
  }
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (!Is(t, i, "vector") || !Is(t, i + 1, "<") || !Is(t, i + 2, "Tuple") ||
        !Is(t, i + 3, ">")) {
      continue;
    }
    // `>` followed by an identifier: a by-value variable/member/parameter
    // declaration. `&`, `*`, `>` (nested template argument) etc. bail out.
    const size_t j = i + 4;
    if (!IsIdent(t, j) || IsKeyword(t[j].text)) continue;
    // Identifier (possibly `::`-qualified) followed by `(` is a function
    // returning a materialized answer set — that is the query API's
    // contract, not stored state.
    size_t name_end = j;
    while (Is(t, name_end + 1, "::") && IsIdent(t, name_end + 2)) {
      name_end += 2;
    }
    if (Is(t, name_end + 1, "(")) continue;
    Report(scan, t[i].line, kLegacyTupleVector,
           "by-value std::vector<Tuple> '" + t[j].text +
               "' outside structure/; prefer TupleRef/TupleList views over "
               "the flat store, or allowlist a cold path with a reason",
           out);
  }
}

}  // namespace

void AnalyzeFile(const FileScan& scan_in, const LintContext& ctx,
                 std::vector<Finding>& out, RuleTimings* timings) {
  FileScan scan = scan_in;
  scan.path = NormalizePath(scan.path);
  const auto timed = [&](const char* rule, auto&& run) {
    if (timings == nullptr) {
      run();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    run();
    (*timings)[rule] +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  };
  // The cross-TU rules need this file's symbols with live token spans; the
  // merged context only keeps spanless facts. Accounted under its own key
  // in the report's rule_ms.
  FileSymbols syms;
  timed("symbol-scan", [&] { syms = CollectFileSymbols(scan); });
  timed(kNodiscardStatus, [&] { CheckNodiscard(scan, out); });
  timed(kDiscardedStatus, [&] { CheckDiscardedStatus(scan, ctx, out); });
  timed(kRawStatus, [&] { CheckRawStatus(scan, out); });
  timed(kBareAbort, [&] { CheckAbortThrow(scan, out); });
  timed(kNondeterministicRandom,
        [&] { CheckNondeterministicRandom(scan, out); });
  timed(kUnorderedIter, [&] {
    CheckUnorderedIter(scan, EffectiveUnorderedNames(scan, ctx), out);
  });
  timed(kParallelMutation, [&] { CheckParallelMutation(scan, out); });
  timed(kLegacyTupleVector, [&] { CheckLegacyTupleVector(scan, out); });
  timed(kViewEscape, [&] { CheckViewEscape(scan, syms, ctx, out); });
  timed(kLockDiscipline, [&] { CheckLockDiscipline(scan, syms, ctx, out); });
  timed(kStampAudit, [&] { CheckStampAudit(scan, syms, ctx, out); });
  timed(kXtuDiscardedStatus,
        [&] { CheckXtuDiscardedStatus(scan, syms, ctx, out); });
}

}  // namespace qpwm::lint
