#include <gtest/gtest.h>

#include "qpwm/core/distortion.h"
#include "qpwm/core/incremental.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/parser.h"
#include "qpwm/tree/mso.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

TEST(WeightsOnlyUpdateTest, MarkDeltasCarryOver) {
  WeightMap old_original(1, 4), old_marked(1, 4), new_original(1, 4);
  for (ElemId e = 0; e < 4; ++e) {
    old_original.SetElem(e, 100 + e);
    old_marked.SetElem(e, 100 + e);
    new_original.SetElem(e, 200 + 2 * e);
  }
  old_marked.AddElem(1, +1);
  old_marked.AddElem(2, -1);

  WeightMap new_marked =
      PropagateWeightsOnlyUpdate(old_original, old_marked, new_original);
  EXPECT_EQ(new_marked.GetElem(0), 200);
  EXPECT_EQ(new_marked.GetElem(1), 203);  // 202 + 1
  EXPECT_EQ(new_marked.GetElem(2), 203);  // 204 - 1
  EXPECT_EQ(new_marked.GetElem(3), 206);
}

TEST(WeightsOnlyUpdateTest, DetectorSurvivesUpdateStorm) {
  // Theorem 7 end to end: update weights repeatedly; propagate; detect.
  Rng rng(61);
  Structure g = RandomBoundedDegreeGraph(150, 3, 400, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap original = RandomWeights(g, 100, 999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = 0.5;
  opts.key = {61, 62};
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);
  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
  WeightMap marked = scheme.Embed(original, mark);

  for (int round = 0; round < 5; ++round) {
    WeightMap new_original = RandomWeights(g, 100, 999, rng);
    marked = PropagateWeightsOnlyUpdate(original, marked, new_original);
    original = new_original;
    // Same global distortion bound as at embed time (Theorem 7).
    EXPECT_LE(GlobalDistortion(index, original, marked),
              static_cast<Weight>(scheme.Budget()));
    HonestServer server(index, marked);
    EXPECT_EQ(scheme.Detect(original, server).ValueOrDie(), mark) << round;
  }
}

TEST(WeightsOnlyUpdateTest, TreeSchemeSurvivesGradeRefresh) {
  // Theorem 7 applies verbatim to the tree scheme: the school re-grades
  // every student, the owner propagates the mark deltas, detection holds.
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  Dta query = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma, {"u", "v"})
                  .ValueOrDie()
                  .dta;
  Rng rng(63);
  BinaryTree t = RandomBinaryTree(400, 3, rng);
  WeightMap original(1, t.size());
  for (NodeId v = 0; v < t.size(); ++v) original.SetElem(v, rng.Uniform(0, 20));

  TreeSchemeOptions opts;
  opts.key = {63, 64};
  auto scheme = TreeScheme::Plan(t, t.labels(), 3, query, 1, opts).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);
  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
  WeightMap marked = scheme.Embed(original, mark);

  for (int round = 0; round < 3; ++round) {
    WeightMap refreshed(1, t.size());
    for (NodeId v = 0; v < t.size(); ++v) refreshed.SetElem(v, rng.Uniform(0, 20));
    marked = PropagateWeightsOnlyUpdate(original, marked, refreshed);
    original = refreshed;
    HonestTreeServer server(t, t.labels(), 3, query, 1, marked);
    EXPECT_EQ(scheme.Detect(original, server).ValueOrDie(), mark) << round;
  }
}

TEST(TypePreservingTest, IdenticalStructurePreservesEverything) {
  Rng rng(62);
  Structure g = RandomBoundedDegreeGraph(100, 3, 250, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts;
  opts.key = {1, 2};
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();

  UpdateCheck check = CheckTypePreservingUpdate(scheme, index);
  EXPECT_TRUE(check.type_preserving);
  EXPECT_EQ(check.old_types, check.new_types);
  EXPECT_EQ(check.surviving_pairs, scheme.CapacityBits());
  EXPECT_LE(check.new_cost_bound, scheme.Budget());
}

TEST(TypePreservingTest, TypePreservingEdit) {
  // A long symmetric cycle: rebuilding it rotated keeps the single
  // radius-1 type; pairs survive as active elements.
  Structure g = CycleGraph(40, true);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts;
  opts.key = {3, 4};
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();

  Structure rotated(GraphSignature(), 40);
  for (ElemId i = 0; i < 40; ++i) {
    ElemId j = (i + 1) % 40;
    rotated.AddTuple(size_t{0}, Tuple{j, static_cast<ElemId>((j + 1) % 40)});
    rotated.AddTuple(size_t{0}, Tuple{static_cast<ElemId>((j + 1) % 40), j});
  }
  rotated.Seal();
  QueryIndex updated(rotated, *query, AllParams(rotated, 1));
  UpdateCheck check = CheckTypePreservingUpdate(scheme, updated);
  EXPECT_TRUE(check.type_preserving);
  EXPECT_EQ(check.surviving_pairs, scheme.CapacityBits());
}

TEST(TypePreservingTest, TypeCreatingEditDetected) {
  // Removing one edge from a cycle creates endpoint types.
  Structure g = CycleGraph(30, true);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts;
  opts.key = {5, 6};
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();

  Structure path = PathGraph(30, true);
  QueryIndex updated(path, *query, AllParams(path, 1));
  UpdateCheck check = CheckTypePreservingUpdate(scheme, updated);
  EXPECT_FALSE(check.type_preserving);
  EXPECT_LT(check.old_types, check.new_types);
}

TEST(StructuralUpdateTest, WellFormedRejectsBadShape) {
  Structure g = CycleGraph(10, true);

  StructuralUpdate bad_relation;
  bad_relation.relation = 7;  // graph signature has a single relation
  bad_relation.tuple = Tuple{0, 1};
  EXPECT_EQ(CheckUpdateWellFormed(g, bad_relation).code(),
            StatusCode::kInvalidArgument);

  StructuralUpdate bad_arity;
  bad_arity.relation = 0;
  bad_arity.tuple = Tuple{0, 1, 2};  // E is binary
  EXPECT_EQ(CheckUpdateWellFormed(g, bad_arity).code(),
            StatusCode::kInvalidArgument);

  // SPSW-style fake tuple: references an element outside the universe.
  StructuralUpdate fake;
  fake.relation = 0;
  fake.tuple = Tuple{0, 99};
  EXPECT_EQ(CheckUpdateWellFormed(g, fake).code(), StatusCode::kOutOfRange);

  StructuralUpdate ok;
  ok.relation = 0;
  ok.tuple = Tuple{0, 5};
  EXPECT_TRUE(CheckUpdateWellFormed(g, ok).ok());
}

TEST(StructuralUpdateTest, ApplyRejectsDuplicateInsertAndMissingDelete) {
  Structure g = CycleGraph(10, true);

  StructuralUpdate dup;
  dup.kind = StructuralUpdate::Kind::kInsertTuple;
  dup.relation = 0;
  dup.tuple = Tuple{0, 1};  // already an edge of the cycle
  EXPECT_EQ(ApplyStructuralUpdates(g, {dup}).status().code(),
            StatusCode::kFailedPrecondition);

  StructuralUpdate missing;
  missing.kind = StructuralUpdate::Kind::kDeleteTuple;
  missing.relation = 0;
  missing.tuple = Tuple{0, 5};  // not an edge
  EXPECT_EQ(ApplyStructuralUpdates(g, {missing}).status().code(),
            StatusCode::kFailedPrecondition);

  // A batch is all-or-nothing: one bad update rejects the whole batch.
  StructuralUpdate good_delete;
  good_delete.kind = StructuralUpdate::Kind::kDeleteTuple;
  good_delete.relation = 0;
  good_delete.tuple = Tuple{0, 1};
  EXPECT_EQ(ApplyStructuralUpdates(g, {good_delete, missing}).status().code(),
            StatusCode::kFailedPrecondition);
  auto applied = ApplyStructuralUpdates(g, {good_delete});
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value().relation(0).size(), g.relation(0).size() - 1);
}

TEST(StructuralUpdateTest, ValidateFlagsTypeChangingEdits) {
  Structure g = CycleGraph(30, true);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts;
  opts.key = {9, 10};
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();

  // Non-type-preserving insert: a chord gives two elements degree 3.
  StructuralUpdate chord_a{StructuralUpdate::Kind::kInsertTuple, 0, Tuple{0, 15}};
  StructuralUpdate chord_b{StructuralUpdate::Kind::kInsertTuple, 0, Tuple{15, 0}};
  auto chorded = ApplyStructuralUpdates(g, {chord_a, chord_b});
  ASSERT_TRUE(chorded.ok());
  QueryIndex chorded_index(chorded.value(), *query,
                           AllParams(chorded.value(), 1));
  EXPECT_EQ(ValidateTypePreserving(scheme, chorded_index).code(),
            StatusCode::kFailedPrecondition);

  // Type-removing delete: cutting one edge pair turns the cycle into a path
  // (endpoint types appear, the interior 2-regular type survives).
  StructuralUpdate cut_a{StructuralUpdate::Kind::kDeleteTuple, 0, Tuple{0, 1}};
  StructuralUpdate cut_b{StructuralUpdate::Kind::kDeleteTuple, 0, Tuple{1, 0}};
  auto cut = ApplyStructuralUpdates(g, {cut_a, cut_b});
  ASSERT_TRUE(cut.ok());
  QueryIndex cut_index(cut.value(), *query, AllParams(cut.value(), 1));
  EXPECT_EQ(ValidateTypePreserving(scheme, cut_index).code(),
            StatusCode::kFailedPrecondition);

  // Identity stays admissible.
  EXPECT_TRUE(ValidateTypePreserving(scheme, index).ok());
}

TEST(TypePreservingTest, SurvivingPairsReportedHonestly) {
  // Shrink the structure so some pair elements go inactive.
  Structure g = CycleGraph(20, true);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts;
  opts.key = {7, 8};
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);

  // New structure: same universe, but only a short path keeps tuples.
  Structure sparse(GraphSignature(), 20);
  sparse.AddTuple(size_t{0}, Tuple{0, 1});
  sparse.AddTuple(size_t{0}, Tuple{1, 0});
  sparse.Seal();
  QueryIndex updated(sparse, *query, AllParams(sparse, 1));
  UpdateCheck check = CheckTypePreservingUpdate(scheme, updated);
  EXPECT_FALSE(check.type_preserving);
  EXPECT_LT(check.surviving_pairs, scheme.CapacityBits());
}

}  // namespace
}  // namespace qpwm
