// E2 / E3 / E9 — the impossibility side.
//   Theorem 2: on the shattering family G_n, VC(psi, G) = |W| and *every*
//     marking that flips many weights with the same sign blows the global
//     distortion on some query — measured by exact capacity counting and by
//     driving the constructive scheme into the wall.
//   Remark 1: the half-shattered family still supports |W|/4 bits at zero
//     distortion — the balanced-pair trick.
//   Theorem 6 (grids): a shattering query on n x n grids (unbounded
//     tree-width); the active set is shattered, so capacity at distortion 0
//     is a single marking (the zero one) plus nothing useful.
#include <cmath>
#include <iostream>

#include "qpwm/capacity/capacity.h"
#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"
#include "qpwm/vc/vcdim.h"

using namespace qpwm;

namespace {

// The grid shattering query of Theorem 6 (after Grohe-Turan's Example 19):
// parameter u indexes a subset of the top row through the binary expansion
// of its id; v ranges over the first ceil(log2(n)) top-row cells. MSO can
// define such arithmetic on grids (unbounded tree-width is exactly what
// makes it possible); we realize the same set system procedurally.
std::unique_ptr<CallbackQuery> GridShatterQuery(size_t w) {
  uint32_t bits = 0;
  while ((size_t{1} << bits) < w) ++bits;
  return std::make_unique<CallbackQuery>(
      "grid-shatter", 1, 1,
      [bits](const Structure&, const Tuple& params) {
        std::vector<Tuple> out;
        for (uint32_t j = 0; j < bits; ++j) {
          if ((params[0] >> j) & 1) out.push_back(Tuple{j});
        }
        return out;
      });
}

}  // namespace

int main() {
  std::cout << "=== bench_impossibility: Theorems 2, 6 and Remark 1 ===\n";

  // Theorem 2: VC = |W| and capacity at distortion d stays ~ d log |W| bits.
  {
    TextTable table("Shatter family G_n: VC, exact capacity, scheme behavior");
    table.SetHeader({"n=|W|", "|U|", "VC", "log2 #Mark(<=1)",
                     "scheme bits @ d=1"});
    for (uint32_t n : {3, 4, 5, 6}) {
      Structure g = ShatterInstance(n);
      auto query = AtomQuery::Adjacency("E");
      QueryIndex index(g, *query, AllParams(g, 1));
      SetSystem system = SetSystemFromQuery(index);
      uint32_t vc = VcDimension(system);

      MarkCountProblem problem = ProblemFromQuery(index);
      uint64_t count = CountMarkingsAtMost(problem, 1);

      LocalSchemeOptions opts;
      opts.epsilon = 1.0;
      opts.key = {n, n};
      auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();

      table.AddRow({StrCat(n), StrCat(g.universe_size()), StrCat(vc),
                    FmtDouble(std::log2(static_cast<double>(count)), 1),
                    StrCat(scheme.CapacityBits())});
    }
    table.Print(std::cout);
    std::cout << "VC = |W| (fully shattered): capacity cannot scale like "
                 "|W|^(1-q eps) — the scheme finds only O(1) usable pairs and the "
                 "exact count confirms the ceiling (Theorem 2).\n";
  }

  // Remark 1: half-shattered, yet |W|/4 bits at distortion zero.
  {
    TextTable table("Half-shatter family: VC = |W|/2 but |W|/4 bits at d = 0");
    table.SetHeader({"|W|=n", "VC", "balanced pairs", "bits", "max distortion"});
    for (uint32_t n : {4, 6, 8, 10}) {
      Structure g = HalfShatterInstance(n);
      auto query = AtomQuery::Adjacency("E");
      QueryIndex index(g, *query, AllParams(g, 1));
      SetSystem system = SetSystemFromQuery(index);
      uint32_t vc = VcDimension(system);

      // Remark 1's explicit scheme: pair up the last n/2 weights (only
      // queried together by vertex a) with balanced (+1,-1) marks.
      std::vector<WeightPair> pairs;
      const ElemId weights_base = static_cast<ElemId>((1u << (n / 2)) + 1);
      for (uint32_t j = n / 2; j + 1 < n; j += 2) {
        auto p = index.FindActive(Tuple{weights_base + j}).ValueOrDie();
        auto q = index.FindActive(Tuple{weights_base + j + 1}).ValueOrDie();
        pairs.push_back({static_cast<uint32_t>(p), static_cast<uint32_t>(q)});
      }
      PairMarking marking(index, pairs);

      WeightMap w(1, g.universe_size());
      Weight worst = 0;
      for (uint64_t m = 0; m < (uint64_t{1} << pairs.size()); ++m) {
        WeightMap marked = w;
        marking.Apply(BitVec::FromUint64(m, pairs.size()), marked);
        worst = std::max(worst, GlobalDistortion(index, w, marked));
      }
      table.AddRow({StrCat(n), StrCat(vc), StrCat(pairs.size()),
                    StrCat(pairs.size()), StrCat(worst)});
    }
    table.Print(std::cout);
    std::cout << "unbounded VC alone is NOT sufficient for impossibility "
                 "(Remark 1): distortion stays 0.\n";
  }

  // The positive boundary (Grohe-Turan): on bounded-degree classes the VC
  // dimension of FO-defined set systems stays constant as instances grow —
  // exactly why Theorem 3's schemes exist there.
  {
    TextTable table("Grohe-Turan boundary: VC of E(u,v) on degree-3 graphs");
    table.SetHeader({"|U|", "|W|", "VC (exact)"});
    for (size_t n : {50, 200, 800}) {
      Rng rng(n);
      Structure g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
      auto query = AtomQuery::Adjacency("E");
      QueryIndex index(g, *query, AllParams(g, 1));
      SetSystem system = SetSystemFromQuery(index);
      table.AddRow({StrCat(n), StrCat(index.num_active()),
                    StrCat(VcDimension(system))});
    }
    table.Print(std::cout);
    std::cout << "VC stays constant while |W| grows 16x: bounded degree bounds "
                 "the VC dimension (Grohe-Turan), the precondition for "
                 "Theorem 3's watermarking schemes.\n";
  }

  // Theorem 6: grids.
  {
    TextTable table("Grids n x n with the shattering MSO query");
    table.SetHeader({"n", "|W|", "VC", "VC == |W|", "log2 #Mark(<=1)"});
    for (size_t n : {4, 8, 16}) {
      Structure g = GridGraph(n, n);
      auto query = GridShatterQuery(n);
      QueryIndex index(g, *query, AllParams(g, 1));
      SetSystem system = SetSystemFromQuery(index);
      uint32_t vc = VcDimension(system);
      MarkCountProblem problem = ProblemFromQuery(index);
      uint64_t count = CountMarkingsAtMost(problem, 1);
      table.AddRow({StrCat(n), StrCat(index.num_active()), StrCat(vc),
                    vc == index.num_active() ? "yes" : "no",
                    FmtDouble(std::log2(static_cast<double>(count)), 1)});
    }
    table.Print(std::cout);
    std::cout << "the active set is fully shattered on every grid (Theorem 6): "
                 "no watermarking scheme exists on this class.\n";
  }
  return 0;
}
