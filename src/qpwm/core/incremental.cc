#include "qpwm/core/incremental.h"

#include <set>
#include <string>

#include "qpwm/core/pairs.h"
#include "qpwm/structure/canon_cache.h"
#include "qpwm/structure/neighborhood.h"
#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"

namespace qpwm {
namespace {

std::set<std::string> TypeSet(const QueryIndex& index, uint32_t rho) {
  const Structure& g = index.structure();
  GaifmanGraph gaifman(g);
  IncidenceIndex incidence(g);
  std::vector<std::string> canons = ParallelMap<std::string>(
      index.num_params(), [&](size_t i) {
        Neighborhood nb =
            ExtractNeighborhood(g, gaifman, incidence, index.param(i), rho);
        return CanonCache::Global().Canonical(nb.local, nb.distinguished);
      });
  return std::set<std::string>(canons.begin(), canons.end());
}

}  // namespace

WeightMap PropagateWeightsOnlyUpdate(const WeightMap& old_original,
                                     const WeightMap& old_marked,
                                     const WeightMap& new_original) {
  WeightMap out = new_original;
  // Carry over M = old_marked - old_original per tuple.
  old_marked.ForEach([&](const Tuple& t, Weight marked) {
    Weight delta = marked - old_original.Get(t);
    if (delta != 0) out.Add(t, delta);
  });
  return out;
}

Status CheckUpdateWellFormed(const Structure& g, const StructuralUpdate& u) {
  if (u.relation >= g.num_relations()) {
    return Status::InvalidArgument("update names relation #" +
                                   std::to_string(u.relation) + " but structure has " +
                                   std::to_string(g.num_relations()));
  }
  const Relation& rel = g.relation(u.relation);
  if (u.tuple.size() != rel.arity()) {
    return Status::InvalidArgument(
        "arity mismatch for relation " + rel.name() + ": got " +
        std::to_string(u.tuple.size()) + ", want " + std::to_string(rel.arity()));
  }
  for (ElemId e : u.tuple) {
    if (e >= g.universe_size()) {
      return Status::OutOfRange("tuple element " + std::to_string(e) +
                                " outside universe of size " +
                                std::to_string(g.universe_size()));
    }
  }
  return Status::OK();
}

Result<Structure> ApplyStructuralUpdates(
    const Structure& base, const std::vector<StructuralUpdate>& updates) {
  Structure out = base;
  for (const StructuralUpdate& u : updates) {
    QPWM_RETURN_NOT_OK(CheckUpdateWellFormed(out, u));
    Relation& rel = out.mutable_relation(u.relation);
    if (u.kind == StructuralUpdate::Kind::kInsertTuple) {
      if (rel.Contains(u.tuple)) {
        return Status::FailedPrecondition("insert of tuple already present in " +
                                          rel.name());
      }
      rel.Add(u.tuple);
    } else {
      if (!rel.Contains(u.tuple)) {
        return Status::FailedPrecondition("delete of tuple absent from " +
                                          rel.name());
      }
      // qpwm-lint: allow(legacy-tuple-vector) — one-shot rebuild while applying a deletion update
      std::vector<Tuple> kept;
      kept.reserve(rel.size() - 1);
      for (TupleRef t : rel.tuples()) {
        if (t != u.tuple) kept.push_back(t.ToTuple());
      }
      rel.SetTuplesUnchecked(kept);
    }
  }
  out.Seal();
  return out;
}

Status ValidateTypePreserving(const LocalScheme& scheme,
                              const QueryIndex& updated_index) {
  const UpdateCheck check = CheckTypePreservingUpdate(scheme, updated_index);
  if (!check.type_preserving) {
    return Status::FailedPrecondition(
        "update is not type-preserving: " + std::to_string(check.old_types) +
        " neighborhood types before, " + std::to_string(check.new_types) +
        " after");
  }
  return Status::OK();
}

UpdateCheck CheckTypePreservingUpdate(const LocalScheme& scheme,
                                      const QueryIndex& updated_index) {
  UpdateCheck out;
  const QueryIndex& old_index = scheme.index();
  const uint32_t rho = scheme.rho();

  std::set<std::string> old_types = TypeSet(old_index, rho);
  std::set<std::string> new_types = TypeSet(updated_index, rho);
  out.old_types = old_types.size();
  out.new_types = new_types.size();
  out.type_preserving = old_types == new_types;

  // Which pairs survive: both elements must still be active (readable
  // through some query answer) on the updated instance.
  std::vector<WeightPair> surviving;
  for (const WeightPair& p : scheme.marking().pairs()) {
    auto plus = updated_index.FindActive(old_index.active_element(p.plus));
    auto minus = updated_index.FindActive(old_index.active_element(p.minus));
    if (plus.ok() && minus.ok()) {
      surviving.push_back({static_cast<uint32_t>(plus.value()),
                           static_cast<uint32_t>(minus.value())});
    }
  }
  out.surviving_pairs = surviving.size();
  if (!surviving.empty()) {
    out.new_cost_bound = PairMarking(updated_index, std::move(surviving)).MaxCost();
  }
  return out;
}

}  // namespace qpwm
