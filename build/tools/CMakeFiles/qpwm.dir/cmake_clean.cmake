file(REMOVE_RECURSE
  "CMakeFiles/qpwm.dir/qpwm_cli.cpp.o"
  "CMakeFiles/qpwm.dir/qpwm_cli.cpp.o.d"
  "qpwm"
  "qpwm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
