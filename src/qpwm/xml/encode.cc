#include "qpwm/xml/encode.h"

#include <charconv>

#include "qpwm/util/check.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/xml/parser.h"

namespace qpwm {
namespace {

Result<Weight> ParseWeight(const std::string& text) {
  Weight value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("weight element text '" + text + "' is not an integer");
  }
  return value;
}

// One entry of the effective child list of an XML element.
struct EffectiveChild {
  enum class Kind { kXml, kAttr } kind;
  XmlNodeId xml = kNoXmlNode;   // kXml
  std::string attr_label;       // kAttr: "@name"
  std::string attr_value;       // kAttr
};

class Encoder {
 public:
  Encoder(const XmlDocument& doc, const std::set<std::string>& weight_tags)
      : doc_(doc), weight_tags_(weight_tags) {}

  Result<EncodedXml> Run() {
    out_.xml_to_tree.assign(doc_.size(), kNoNode);
    auto root = EncodeNode(doc_.root());
    if (!root.ok()) return root.status();
    QPWM_RETURN_NOT_OK(out_.tree.Finalize());
    out_.weights = WeightMap(1, out_.tree.size());
    out_.is_weight_node.assign(out_.tree.size(), false);
    for (const auto& [node, w] : pending_weights_) {
      out_.weights.SetElem(node, w);
      out_.is_weight_node[node] = true;
    }
    return std::move(out_);
  }

 private:
  // Creates the tree node for one XML node and (recursively) its subtree in
  // first-child / next-sibling form. Returns the tree node id.
  Result<NodeId> EncodeNode(XmlNodeId xml_id) {
    const XmlNode& n = doc_.node(xml_id);

    if (n.kind == XmlNode::Kind::kText) {
      NodeId v = out_.tree.AddNode(out_.sigma.Intern(n.text));
      RecordMapping(v, xml_id);
      return v;
    }

    NodeId v = out_.tree.AddNode(out_.sigma.Intern(n.tag));
    RecordMapping(v, xml_id);

    const bool is_weight = weight_tags_.count(n.tag) > 0;
    if (is_weight) {
      std::string text = doc_.TextContent(xml_id);
      auto w = ParseWeight(text);
      if (!w.ok()) return w.status();
      pending_weights_.emplace_back(v, w.value());
      bool has_element_child = false;
      for (XmlNodeId c : n.children) {
        if (doc_.node(c).kind == XmlNode::Kind::kElement) has_element_child = true;
      }
      if (has_element_child) {
        return Status::InvalidArgument("weight element <" + n.tag +
                                       "> must contain only its numeric value");
      }
      return v;  // numeric text absorbed into the weight map
    }

    // Effective children: attributes first, then document children.
    std::vector<EffectiveChild> children;
    for (const XmlAttr& a : n.attrs) {
      children.push_back({EffectiveChild::Kind::kAttr, kNoXmlNode, "@" + a.name, a.value});
    }
    for (XmlNodeId c : n.children) {
      children.push_back({EffectiveChild::Kind::kXml, c, "", ""});
    }

    NodeId prev = kNoNode;
    for (size_t i = 0; i < children.size(); ++i) {
      NodeId child_node;
      if (children[i].kind == EffectiveChild::Kind::kAttr) {
        child_node = out_.tree.AddNode(out_.sigma.Intern(children[i].attr_label));
        RecordMapping(child_node, kNoXmlNode);
        NodeId value_node = out_.tree.AddNode(out_.sigma.Intern(children[i].attr_value));
        RecordMapping(value_node, kNoXmlNode);
        out_.tree.SetLeft(child_node, value_node);
      } else {
        auto encoded = EncodeNode(children[i].xml);
        if (!encoded.ok()) return encoded;
        child_node = encoded.value();
      }
      if (i == 0) {
        out_.tree.SetLeft(v, child_node);
      } else {
        out_.tree.SetRight(prev, child_node);
      }
      prev = child_node;
    }
    return v;
  }

  void RecordMapping(NodeId tree_node, XmlNodeId xml_id) {
    if (out_.tree_to_xml.size() <= tree_node) out_.tree_to_xml.resize(tree_node + 1);
    out_.tree_to_xml[tree_node] = xml_id;
    if (xml_id != kNoXmlNode) out_.xml_to_tree[xml_id] = tree_node;
  }

  const XmlDocument& doc_;
  const std::set<std::string>& weight_tags_;
  EncodedXml out_;
  std::vector<std::pair<NodeId, Weight>> pending_weights_;
};

}  // namespace

Result<EncodedXml> EncodeXml(const XmlDocument& doc,
                             const std::set<std::string>& weight_tags) {
  return Encoder(doc, weight_tags).Run();
}

XmlDocument ApplyWeights(const XmlDocument& doc, const EncodedXml& encoded,
                         const WeightMap& weights) {
  XmlDocument out = doc;
  for (NodeId v = 0; v < encoded.tree.size(); ++v) {
    if (!encoded.is_weight_node[v]) continue;
    XmlNodeId xml_id = encoded.tree_to_xml[v];
    QPWM_CHECK(xml_id != kNoXmlNode);
    const XmlNode& elem = out.node(xml_id);
    QPWM_CHECK(!elem.children.empty());
    for (XmlNodeId c : elem.children) {
      if (out.node(c).kind == XmlNode::Kind::kText) {
        out.mutable_node(c).text = StrCat(weights.GetElem(v));
        break;
      }
    }
  }
  return out;
}

XmlDocument SchoolExampleDocument() {
  static const char* kXml = R"(
<school>
  <student>
    <firstname>John</firstname>
    <lastname>Doe</lastname>
    <exam>11</exam>
  </student>
  <student>
    <firstname>Robert</firstname>
    <lastname>Durant</lastname>
    <exam>16</exam>
  </student>
  <student>
    <firstname>Robert</firstname>
    <lastname>Smith</lastname>
    <exam>12</exam>
  </student>
</school>
)";
  return MustParseXml(kXml);
}

XmlDocument RandomSchoolDocument(size_t students, Rng& rng, Weight grade_lo,
                                 Weight grade_hi, size_t name_pool) {
  static const char* kFirst[] = {"John", "Robert", "Alice",  "Maria",
                                 "Wei",  "Ahmed",  "Sofia",  "Ivan"};
  static const char* kLast[] = {"Doe", "Durant", "Smith", "Khan", "Garcia", "Li"};
  QPWM_CHECK_GE(name_pool, 1u);
  QPWM_CHECK_LE(name_pool, 8u);
  XmlDocument doc;
  XmlNodeId school = doc.AddElement("school");
  doc.SetRoot(school);
  for (size_t i = 0; i < students; ++i) {
    XmlNodeId student = doc.AddElement("student");
    doc.AppendChild(school, student);
    XmlNodeId firstname = doc.AddElement("firstname");
    doc.AppendChild(student, firstname);
    doc.AppendChild(firstname, doc.AddText(kFirst[rng.Below(name_pool)]));
    XmlNodeId lastname = doc.AddElement("lastname");
    doc.AppendChild(student, lastname);
    doc.AppendChild(lastname, doc.AddText(kLast[rng.Below(6)]));
    XmlNodeId exam = doc.AddElement("exam");
    doc.AppendChild(student, exam);
    doc.AppendChild(exam, doc.AddText(StrCat(rng.Uniform(grade_lo, grade_hi))));
  }
  return doc;
}

}  // namespace qpwm
