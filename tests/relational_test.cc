#include <gtest/gtest.h>

#include "qpwm/core/answers.h"
#include "qpwm/logic/query.h"
#include "qpwm/relational/table.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

TEST(TableTest, SchemaAndRows) {
  Table t("T", {{"k", ColumnRole::kKey, ""}, {"w", ColumnRole::kWeight, "k"}});
  EXPECT_TRUE(t.AddRow({std::string("a"), Weight{5}}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.KeyAt(0, 0), "a");
  EXPECT_EQ(t.WeightAt(0, 1), 5);
  t.SetWeightAt(0, 1, 6);
  EXPECT_EQ(t.WeightAt(0, 1), 6);
}

TEST(TableTest, RowValidation) {
  Table t("T", {{"k", ColumnRole::kKey, ""}, {"w", ColumnRole::kWeight, "k"}});
  EXPECT_FALSE(t.AddRow({std::string("a")}).ok());                       // width
  EXPECT_FALSE(t.AddRow({std::string("a"), std::string("b")}).ok());     // kind
  EXPECT_FALSE(t.AddRow({Weight{1}, Weight{2}}).ok());                   // kind
}

TEST(TableTest, ColumnIndex) {
  Table t("T", {{"k", ColumnRole::kKey, ""}, {"w", ColumnRole::kWeight, "k"}});
  EXPECT_EQ(t.ColumnIndex("w").ValueOrDie(), 1u);
  EXPECT_FALSE(t.ColumnIndex("zz").ok());
  EXPECT_EQ(t.WeightColumns(), (std::vector<size_t>{1}));
}

TEST(DatabaseTest, FindTables) {
  Database db = TravelAgencyDatabase();
  EXPECT_TRUE(db.Find("Route").ok());
  EXPECT_TRUE(db.Find("Timetable").ok());
  EXPECT_FALSE(db.Find("Nope").ok());
}

TEST(TravelTest, Example1Contents) {
  Database db = TravelAgencyDatabase();
  const Table* route = db.Find("Route").ValueOrDie();
  EXPECT_EQ(route->num_rows(), 7u);
  const Table* timetable = db.Find("Timetable").ValueOrDie();
  EXPECT_EQ(timetable->num_rows(), 6u);
}

TEST(TravelTest, ToWeightedStructure) {
  Database db = TravelAgencyDatabase();
  auto instance = ToWeightedStructure(db).ValueOrDie();
  // Route arity 2, Timetable arity 4 (duration is a weight column).
  EXPECT_EQ(instance.structure.relation("Route").arity(), 2u);
  EXPECT_EQ(instance.structure.relation("Timetable").arity(), 4u);
  // Weights attach to transports: W(F21) = 10:35 = 635 minutes.
  ElemId f21 = instance.structure.FindElement("F21").ValueOrDie();
  EXPECT_EQ(instance.weights.GetElem(f21), 635);
  ElemId g13 = instance.structure.FindElement("G13").ValueOrDie();
  EXPECT_EQ(instance.weights.GetElem(g13), 600);
}

TEST(TravelTest, Example2QueryWeights) {
  // f(India discovery) = 16:55, f(Nepal Trek) = 20:20, f(TourNepal) = 6:20.
  Database db = TravelAgencyDatabase();
  auto instance = ToWeightedStructure(db).ValueOrDie();
  AtomQuery query("Route", {{true, 0}, {false, 0}}, 1, 1);
  QueryIndex index(instance.structure, query, AllParams(instance.structure, 1));

  auto f = [&](const std::string& travel) {
    ElemId e = instance.structure.FindElement(travel).ValueOrDie();
    size_t param = index.FindParam(Tuple{e}).ValueOrDie();
    return index.SumWeights(param, instance.weights);
  };
  EXPECT_EQ(f("India discovery"), 16 * 60 + 55);
  EXPECT_EQ(f("Nepal Trek"), 20 * 60 + 20);
  EXPECT_EQ(f("TourNepal"), 6 * 60 + 20);
}

TEST(TravelTest, ActiveElementsMatchPaper) {
  // Active weighted elements are {F21, G12, R5, F2, T33}; G13 is inactive.
  Database db = TravelAgencyDatabase();
  auto instance = ToWeightedStructure(db).ValueOrDie();
  AtomQuery query("Route", {{true, 0}, {false, 0}}, 1, 1);
  QueryIndex index(instance.structure, query, AllParams(instance.structure, 1));
  EXPECT_EQ(index.num_active(), 5u);
  ElemId g13 = instance.structure.FindElement("G13").ValueOrDie();
  EXPECT_FALSE(index.FindActive(Tuple{g13}).ok());
  ElemId f21 = instance.structure.FindElement("F21").ValueOrDie();
  EXPECT_TRUE(index.FindActive(Tuple{f21}).ok());
}

TEST(TravelTest, ApplyWeightsRoundTrip) {
  Database db = TravelAgencyDatabase();
  auto instance = ToWeightedStructure(db).ValueOrDie();
  WeightMap modified = instance.weights;
  ElemId f21 = instance.structure.FindElement("F21").ValueOrDie();
  modified.AddElem(f21, 10);
  Database out = ApplyWeightsToDatabase(db, instance, modified).ValueOrDie();
  auto reparsed = ToWeightedStructure(out).ValueOrDie();
  ElemId f21b = reparsed.structure.FindElement("F21").ValueOrDie();
  EXPECT_EQ(reparsed.weights.GetElem(f21b), 645);
}

TEST(TravelTest, ConflictingWeightsRejected) {
  Database db;
  Table t("T", {{"k", ColumnRole::kKey, ""}, {"w", ColumnRole::kWeight, "k"}});
  ASSERT_TRUE(t.AddRow({std::string("a"), Weight{1}}).ok());
  ASSERT_TRUE(t.AddRow({std::string("a"), Weight{2}}).ok());
  db.AddTable(std::move(t));
  EXPECT_FALSE(ToWeightedStructure(db).ok());
}

TEST(TravelTest, RandomDatabaseConverts) {
  Rng rng(9);
  Database db = RandomTravelDatabase(50, 80, 4, rng);
  auto instance = ToWeightedStructure(db).ValueOrDie();
  EXPECT_GT(instance.structure.universe_size(), 100u);
  AtomQuery query("Route", {{true, 0}, {false, 0}}, 1, 1);
  QueryIndex index(instance.structure, query, AllParams(instance.structure, 1));
  EXPECT_GT(index.num_active(), 0u);
}

}  // namespace
}  // namespace qpwm
