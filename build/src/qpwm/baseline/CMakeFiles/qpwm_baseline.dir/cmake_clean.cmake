file(REMOVE_RECURSE
  "CMakeFiles/qpwm_baseline.dir/agrawal_kiernan.cc.o"
  "CMakeFiles/qpwm_baseline.dir/agrawal_kiernan.cc.o.d"
  "libqpwm_baseline.a"
  "libqpwm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
