// E7 — Theorem 5 / Lemma 3: the tree-automaton scheme. We sweep tree size
// and automaton state count m, reporting paired regions vs the |W|/4m
// analytical shape, detectable bits, realized distortion (must be <= 1), and
// detection accuracy; plus an automaton-size sweep showing the capacity's
// 1/m dependence and a shape sweep (random vs chain vs complete trees).
#include <chrono>
#include <iostream>

#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/parser.h"
#include "qpwm/tree/mso.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;
using Clock = std::chrono::steady_clock;

namespace {

struct Row {
  size_t n;
  size_t active;
  uint32_t m;
  size_t paired;
  size_t bits;
  Weight realized;
  bool detect_ok;
  double plan_ms;
};

Row RunInstance(const BinaryTree& t, const Dta& query, uint64_t seed,
                bool check_distortion, bool check_detection) {
  Rng rng(seed);
  WeightMap w(1, t.size());
  for (NodeId v = 0; v < t.size(); ++v) w.SetElem(v, rng.Uniform(100, 999));

  TreeSchemeOptions opts;
  opts.key = {seed, seed * 3 + 1};
  auto t0 = Clock::now();
  auto scheme = TreeScheme::Plan(t, t.labels(), 3, query, 1, opts).ValueOrDie();
  auto t1 = Clock::now();

  Row row{};
  row.n = t.size();
  row.m = query.num_states();
  row.paired = scheme.RegionsPaired();
  row.bits = scheme.CapacityBits();
  row.plan_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.detect_ok = true;

  // Active count (for the |W|/4m shape).
  Dta exists_a = ProjectParamTrack(query, 3);
  row.active = EvaluateWa(t, t.labels(), 3, exists_a, 0, 0).size();

  if (row.bits > 0) {
    BitVec mark(row.bits);
    for (size_t i = 0; i < row.bits; ++i) mark.Set(i, rng.Coin());
    WeightMap marked = scheme.Embed(w, mark);
    if (check_distortion) {
      Weight worst = 0;
      for (NodeId a = 0; a < t.size(); ++a) {
        Weight f0 = 0, f1 = 0;
        for (NodeId b : EvaluateWa(t, t.labels(), 3, query, 1, a)) {
          f0 += w.GetElem(b);
          f1 += marked.GetElem(b);
        }
        worst = std::max(worst, std::abs(f1 - f0));
      }
      row.realized = worst;
    }
    if (check_detection) {
      HonestTreeServer server(t, t.labels(), 3, query, 1, marked);
      auto detected = scheme.Detect(w, server);
      row.detect_ok = detected.ok() && detected.value() == mark;
    }
  }
  return row;
}

}  // namespace

int main() {
  std::cout << "=== bench_tree_scheme: Theorem 5 on Sigma-trees ===\n";

  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  Dta query = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma, {"u", "v"})
                  .ValueOrDie()
                  .dta;

  {
    TextTable table("Capacity vs tree size (query: b-labeled descendants of u)");
    table.SetHeader({"|T|", "|W|", "m", "paired", "bits l", "|W|/4m", "max |df|",
                     "detect", "plan ms"});
    Rng rng(5);
    for (size_t n : {300, 1000, 3000, 10000, 30000, 100000}) {
      BinaryTree t = RandomBinaryTree(n, 3, rng);
      bool small = n <= 3000;
      Row r = RunInstance(t, query, n, small, small);
      double shape = static_cast<double>(r.active) / (4.0 * (r.m + 1));
      table.AddRow({StrCat(r.n), StrCat(r.active), StrCat(r.m), StrCat(r.paired),
                    StrCat(r.bits), FmtDouble(shape, 1),
                    small ? StrCat(r.realized) : "(skipped)",
                    small ? (r.detect_ok ? "OK" : "FAIL") : "(skipped)",
                    FmtDouble(r.plan_ms, 1)});
    }
    table.Print(std::cout);
    std::cout << "bits track the |W|/4m shape linearly in |W|; realized "
                 "distortion never exceeds 1 (Theorem 5 with the structural "
                 "pairing guarantee).\n";
  }

  // Automaton-size sweep: richer queries -> larger m -> fewer bits.
  {
    TextTable table("Capacity vs automaton size m (|T| = 4000)");
    table.SetHeader({"query", "m", "paired", "bits l"});
    const char* queries[] = {
        "P_b(v)",
        "LEQ(u, v) & P_b(v)",
        "LEQ(u, v) & P_b(v) & exists w (CHILD(v, w) & P_a(w))",
        "LEQ(u, v) & P_b(v) & exists w (CHILD(v, w) & P_a(w) & ~LEAF(w))",
    };
    Rng rng(6);
    BinaryTree t = RandomBinaryTree(4000, 3, rng);
    for (const char* qtext : queries) {
      FormulaPtr f = MustParseFormula(qtext);
      auto compiled = CompileMso(*f, sigma, {"u", "v"}).ValueOrDie();
      Row r = RunInstance(t, compiled.dta, 99, false, false);
      table.AddRow({qtext, StrCat(r.m), StrCat(r.paired), StrCat(r.bits)});
    }
    table.Print(std::cout);
    std::cout << "the 1/m dependence of Theorem 5: richer automata need larger "
                 "regions per hidden bit.\n";
  }

  // Tree-shape sweep.
  {
    TextTable table("Capacity vs tree shape (|T| = 4000)");
    table.SetHeader({"shape", "paired", "bits l", "detect"});
    Rng rng(7);
    struct Shape {
      const char* name;
      BinaryTree tree;
    };
    std::vector<Shape> shapes;
    shapes.push_back({"random", RandomBinaryTree(4000, 3, rng)});
    shapes.push_back({"chain (depth 4000)", ChainTree(4000, 3)});
    shapes.push_back({"complete", CompleteTree(4000, 3)});
    for (auto& shape : shapes) {
      Row r = RunInstance(shape.tree, query, 11, false, true);
      table.AddRow({shape.name, StrCat(r.paired), StrCat(r.bits),
                    r.detect_ok ? "OK" : "FAIL"});
    }
    table.Print(std::cout);
  }
  return 0;
}
