// A bounded-degree road network (STRUCT_k intersections, roads with travel
// times as weights) watermarked while preserving the local query
// "roads reachable within 2 hops of intersection u" — with an adversarial
// data server that tampers with the published times (Khanna-Zane setting,
// Fact 1).
//
//   $ ./road_network
#include <iostream>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

int main() {
  using namespace qpwm;
  Rng rng(1234);

  // 1. A degree-<=4 road network; weights = segment travel times (seconds).
  const size_t kIntersections = 600;
  Structure roads = RandomBoundedDegreeGraph(kIntersections, 4, 1800, true, rng);
  WeightMap times = RandomWeights(roads, 30, 1800, rng);
  GaifmanGraph gaifman(roads);
  std::cout << "road network: " << kIntersections << " intersections, max degree "
            << gaifman.MaxDegree() << "\n";

  // 2. The navigation provider's registered query: everything within 2 hops.
  DistanceQuery query(2);
  QueryIndex index(roads, query, AllParams(roads, 1));
  std::cout << "active weighted elements |W| = " << index.num_active() << "\n";

  // 3. Plan with the adversarial wrapper: 2 bits of redundancy-coded id.
  LocalSchemeOptions options;
  options.key = {0xF00D, 0xFACE};
  options.epsilon = 0.2;  // <= 5 seconds drift on any neighborhood total
  options.rho = 2;
  options.encoding = PairEncoding::kAntipodal;
  LocalScheme base = LocalScheme::Plan(index, options).ValueOrDie();
  const size_t redundancy = 7;
  AdversarialScheme scheme(base, redundancy);
  std::cout << "base pairs " << base.CapacityBits() << " -> adversarial capacity "
            << scheme.CapacityBits() << " bits (redundancy " << redundancy
            << ")\n";
  if (scheme.CapacityBits() == 0) {
    std::cout << "instance too small for the adversarial demo\n";
    return 1;
  }

  // 4. Give server #2 its copy.
  BitVec server_id = BitVec::FromUint64(0b10, scheme.CapacityBits());
  WeightMap marked = scheme.Embed(times, server_id);
  std::cout << "global distortion of the marked copy: "
            << GlobalDistortion(index, times, marked) << " second(s)\n";

  // 5. The malicious server publishes tampered times (bounded distortion).
  TextTable results("Detection under attacks");
  results.SetHeader({"attack", "detected id", "min vote margin"});
  struct Attack {
    const char* name;
    WeightMap weights;
  };
  std::vector<Attack> attacks;
  attacks.push_back({"none", marked});
  attacks.push_back({"jitter 20%", JitterAttack(marked, 0.2, rng)});
  attacks.push_back({"uniform noise +-2", UniformNoiseAttack(marked, 2, rng)});
  attacks.push_back({"guess 30 pairs", GuessingPairAttack(marked, index, 30, rng)});

  for (auto& attack : attacks) {
    HonestServer suspect(index, attack.weights);
    auto detection = scheme.Detect(times, suspect).ValueOrDie();
    results.AddRow({attack.name, StrCat(detection.mark.ToUint64()),
                    FmtDouble(detection.min_margin, 2)});
  }
  results.Print(std::cout);

  // 6. False positive check: an honest competitor with its own data.
  WeightMap competitor = RandomWeights(roads, 30, 1800, rng);
  HonestServer honest(index, competitor);
  auto fp = scheme.Detect(times, honest).ValueOrDie();
  std::cout << "competitor scan: margin " << FmtDouble(fp.min_margin, 2)
            << " (near 0 = no watermark claimed)\n";
  return 0;
}
