// Fixture: nondeterministic-random — an entropy source other than the seeded
// qpwm::Rng, outside util/random. Never compiled, only linted.
unsigned Roll() {
  std::mt19937 gen(12345);
  return static_cast<unsigned>(gen());
}
