file(REMOVE_RECURSE
  "libqpwm_core.a"
)
