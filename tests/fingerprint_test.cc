// Accusation-soundness tests for the Tardos fingerprinting layer: code
// determinism, honest single-copy tracing against plain CodedWatermark
// detection, zero innocent accusations across a seed grid of honest and
// colluded runs, graceful degradation past the design coalition size, and
// thread-count invariance of TraceMany (wired into the TSan CI job).
#include <gtest/gtest.h>

#include <vector>

#include "qpwm/coding/coded_watermark.h"
#include "qpwm/coding/codec.h"
#include "qpwm/coding/fingerprint.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

struct Fixture {
  Structure g;
  std::unique_ptr<AtomQuery> query;
  std::unique_ptr<QueryIndex> index;
  WeightMap weights;
  std::unique_ptr<LocalScheme> scheme;

  explicit Fixture(size_t n, uint64_t seed) : weights(1, 0) {
    Rng rng(seed);
    g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
    query = AtomQuery::Adjacency("E");
    index = std::make_unique<QueryIndex>(g, *query, AllParams(g, 1));
    weights = RandomWeights(g, 1000, 9999, rng);
    LocalSchemeOptions opts;
    opts.epsilon = 0.25;
    opts.key = {seed, seed + 1};
    opts.encoding = PairEncoding::kAntipodal;
    scheme = std::make_unique<LocalScheme>(
        LocalScheme::Plan(*index, opts).ValueOrDie());
  }
};

bool AllFromCoalition(const std::vector<Accusation>& accused,
                      const std::vector<uint64_t>& coalition) {
  for (const Accusation& a : accused) {
    bool member = false;
    for (uint64_t m : coalition) member |= (m == a.recipient);
    if (!member) return false;
  }
  return true;
}

TEST(FingerprintTest, TardosCodeDeterministicFromSeed) {
  TardosOptions opts;
  opts.design_c = 3;
  opts.seed = 42;
  TardosCode code(500, opts);
  TardosCode again(500, opts);
  ASSERT_EQ(code.length(), 500u);
  EXPECT_GT(code.cutoff(), 0.0);
  EXPECT_LT(code.cutoff(), 0.5);
  for (size_t i = 0; i < code.length(); ++i) {
    EXPECT_GE(code.bias(i), code.cutoff()) << i;
    EXPECT_LE(code.bias(i), 1.0 - code.cutoff()) << i;
    EXPECT_EQ(code.bias(i), again.bias(i)) << i;
  }
  EXPECT_EQ(code.CodewordOf(7), again.CodewordOf(7));

  // The streaming generator and the materialized codeword agree bit for bit.
  TardosCode::Stream stream = code.StreamOf(7);
  BitVec word = code.CodewordOf(7);
  for (size_t i = 0; i < code.length(); ++i) {
    EXPECT_EQ(stream.NextBit(), word.Get(i)) << i;
  }

  // Distinct recipients and distinct seeds give distinct codewords.
  EXPECT_NE(code.CodewordOf(7), code.CodewordOf(8));
  TardosOptions reseeded = opts;
  reseeded.seed = 43;
  EXPECT_NE(TardosCode(500, reseeded).CodewordOf(7), code.CodewordOf(7));
}

TEST(FingerprintTest, HonestSingleCopyMatchesPlainDetect) {
  Fixture s(6000, 3);
  AdversarialScheme adv(*s.scheme, 3);
  IdentityCodec codec;
  CodedWatermark wm(adv, codec);
  ASSERT_GT(wm.PayloadBits(), 400u);

  TardosOptions topts;
  topts.design_c = 2;
  topts.seed = 31;
  FingerprintedWatermark fp(wm, topts);
  const uint64_t leaker = 37;
  const uint64_t candidates = 500;

  WeightMap marked = fp.EmbedFor(s.weights, leaker);
  HonestServer server(*s.index, marked);

  // The observation *is* one plain coded detection — same payload, same
  // verdict, nothing resampled.
  FingerprintObservation obs = fp.Observe(s.weights, server).ValueOrDie();
  CodedDetection plain = wm.Detect(s.weights, server).ValueOrDie();
  EXPECT_EQ(obs.channel.message.payload, plain.message.payload);
  EXPECT_EQ(obs.channel.verdict.kind, plain.verdict.kind);
  EXPECT_EQ(obs.channel.verdict.fp_bound, plain.verdict.fp_bound);
  EXPECT_EQ(obs.channel.message.payload, fp.CodewordOf(leaker));
  EXPECT_EQ(plain.verdict.kind, VerdictKind::kMatch);

  TraceResult traced = fp.TraceMany(obs, candidates);
  EXPECT_EQ(traced.kind, TraceVerdictKind::kTraced);
  EXPECT_EQ(traced.ExitCode(), 0);
  ASSERT_EQ(traced.accused.size(), 1u);
  EXPECT_EQ(traced.accused[0].recipient, leaker);
  EXPECT_LE(traced.accused[0].log10_fp, -6.0);
  EXPECT_EQ(traced.accused[0].score, fp.Score(obs, leaker));
  EXPECT_GE(traced.accused[0].score, traced.threshold);
  ASSERT_FALSE(traced.top.empty());
  EXPECT_EQ(traced.top[0].recipient, leaker);
}

TEST(FingerprintTest, SeedGridNeverAccusesInnocents) {
  Fixture s(12000, 5);
  AdversarialScheme adv(*s.scheme, 3);
  IdentityCodec codec;
  CodedWatermark wm(adv, codec);
  ASSERT_GT(wm.PayloadBits(), 1200u);

  WeightMap unrelated = s.weights;
  Rng wrng(99);
  unrelated.ForEach([&](const Tuple& t, Weight) {
    unrelated.Set(t, wrng.Uniform(1000, 9999));
  });

  const uint64_t candidates = 2000;
  const std::vector<uint64_t> coalition = {11, 1203};
  for (uint64_t code_seed : {51u, 52u, 53u}) {
    TardosOptions topts;
    topts.design_c = 2;
    topts.seed = code_seed;
    FingerprintedWatermark fp(wm, topts);

    // Honest runs: the untouched original and an unrelated database must
    // accuse nobody and report NO MARK.
    for (const WeightMap* honest : {&s.weights, &unrelated}) {
      HonestServer server(*s.index, *honest);
      FingerprintObservation obs = fp.Observe(s.weights, server).ValueOrDie();
      TraceResult traced = fp.TraceMany(obs, candidates);
      EXPECT_TRUE(traced.accused.empty()) << "seed " << code_seed;
      EXPECT_EQ(traced.kind, TraceVerdictKind::kNoMark) << "seed " << code_seed;
      EXPECT_EQ(traced.ExitCode(), 1) << "seed " << code_seed;
    }

    // Colluded runs: every attack, full design-size coalition. At least one
    // member must be traced and nobody outside the coalition ever is.
    WeightMap copy_a = fp.EmbedFor(s.weights, coalition[0]);
    WeightMap copy_b = fp.EmbedFor(s.weights, coalition[1]);
    const std::vector<const WeightMap*> copies = {&copy_a, &copy_b};
    for (const std::string& spec : KnownCollusionSpecs()) {
      auto attack = MakeCollusionAttack(spec).ValueOrDie();
      Rng arng(code_seed * 1000003 + 7);
      WeightMap forged = attack->Forge(copies, arng).ValueOrDie();
      HonestServer server(*s.index, forged);
      FingerprintObservation obs = fp.Observe(s.weights, server).ValueOrDie();
      TraceResult traced = fp.TraceMany(obs, candidates);
      EXPECT_TRUE(AllFromCoalition(traced.accused, coalition))
          << spec << " seed " << code_seed;
      EXPECT_EQ(traced.kind, TraceVerdictKind::kTraced)
          << spec << " seed " << code_seed;
      EXPECT_FALSE(traced.accused.empty()) << spec << " seed " << code_seed;
      for (const Accusation& a : traced.accused) {
        EXPECT_LE(a.log10_fp, -6.0) << spec << " seed " << code_seed;
      }
    }
  }
}

TEST(FingerprintTest, OverDesignCoalitionDegradesGracefully) {
  Fixture s(12000, 7);
  AdversarialScheme adv(*s.scheme, 3);
  IdentityCodec codec;
  CodedWatermark wm(adv, codec);

  TardosOptions topts;
  topts.design_c = 2;
  topts.seed = 71;
  FingerprintedWatermark fp(wm, topts);

  // A coalition far past design_c running the strongest wash-out. The only
  // acceptable outcomes are a correct accusation or abstention — never an
  // innocent.
  const std::vector<uint64_t> coalition = {3, 401, 807, 1204, 1603};
  std::vector<WeightMap> copies;
  std::vector<const WeightMap*> ptrs;
  for (uint64_t member : coalition) {
    copies.push_back(fp.EmbedFor(s.weights, member));
  }
  for (const WeightMap& c : copies) ptrs.push_back(&c);
  Rng arng(73);
  WeightMap forged = MedianCollusion().Forge(ptrs, arng).ValueOrDie();
  HonestServer server(*s.index, forged);
  FingerprintObservation obs = fp.Observe(s.weights, server).ValueOrDie();
  TraceResult traced = fp.TraceMany(obs, 2000);
  EXPECT_TRUE(AllFromCoalition(traced.accused, coalition));
  if (traced.accused.empty()) {
    EXPECT_EQ(traced.kind, TraceVerdictKind::kUntraceable);
    EXPECT_EQ(traced.ExitCode(), 3);
  } else {
    EXPECT_EQ(traced.kind, TraceVerdictKind::kTraced);
  }
}

TEST(FingerprintTest, TraceManyThreadIdentical) {
  Fixture s(6000, 11);
  AdversarialScheme adv(*s.scheme, 3);
  IdentityCodec codec;
  CodedWatermark wm(adv, codec);

  TardosOptions topts;
  topts.design_c = 2;
  topts.seed = 111;
  FingerprintedWatermark fp(wm, topts);

  WeightMap copy_a = fp.EmbedFor(s.weights, 5);
  WeightMap copy_b = fp.EmbedFor(s.weights, 900);
  Rng arng(113);
  WeightMap forged =
      InterleavingCollusion(32).Forge({&copy_a, &copy_b}, arng).ValueOrDie();
  HonestServer server(*s.index, forged);

  SetParallelThreads(1);
  FingerprintObservation base_obs = fp.Observe(s.weights, server).ValueOrDie();
  TraceResult base = fp.TraceMany(base_obs, 5000);
  for (size_t threads : {1u, 2u, 8u}) {
    SetParallelThreads(threads);
    FingerprintObservation obs = fp.Observe(s.weights, server).ValueOrDie();
    ASSERT_EQ(obs.score_if_one, base_obs.score_if_one) << threads;
    ASSERT_EQ(obs.score_if_zero, base_obs.score_if_zero) << threads;
    EXPECT_EQ(obs.null_variance, base_obs.null_variance) << threads;
    TraceResult traced = fp.TraceMany(obs, 5000);
    EXPECT_EQ(traced.kind, base.kind) << threads;
    EXPECT_EQ(traced.threshold, base.threshold) << threads;
    EXPECT_EQ(traced.pruned, base.pruned) << threads;
    ASSERT_EQ(traced.accused.size(), base.accused.size()) << threads;
    for (size_t i = 0; i < base.accused.size(); ++i) {
      EXPECT_EQ(traced.accused[i].recipient, base.accused[i].recipient);
      EXPECT_EQ(traced.accused[i].score, base.accused[i].score);
      EXPECT_EQ(traced.accused[i].log10_fp, base.accused[i].log10_fp);
    }
    ASSERT_EQ(traced.top.size(), base.top.size()) << threads;
    for (size_t i = 0; i < base.top.size(); ++i) {
      EXPECT_EQ(traced.top[i].recipient, base.top[i].recipient);
      EXPECT_EQ(traced.top[i].score, base.top[i].score);
    }
  }
  SetParallelThreads(0);
}

}  // namespace
}  // namespace qpwm
