#include "qpwm/core/pairs.h"

#include <algorithm>

#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"

namespace qpwm {
namespace {

// Below this many pairs the parallel dispatch costs more than it saves: the
// per-pair work is two sorted-list merges over bounded-degree incidence
// lists, so a dispatch (worker wakeup + join) only amortizes on large
// markings. Measured on bench_plan_scale's instance; the selection loop calls
// this once per subsample trial, so a low threshold multiplies the overhead.
constexpr size_t kParallelCostThreshold = 8192;

}  // namespace

PairMarking::PairMarking(const QueryIndex& index, std::vector<WeightPair> pairs)
    : index_(&index), pairs_(std::move(pairs)) {
  for (const WeightPair& p : pairs_) {
    QPWM_CHECK_LT(p.plus, index.num_active());
    QPWM_CHECK_LT(p.minus, index.num_active());
    QPWM_CHECK_NE(p.plus, p.minus);
  }
}

int PairMarking::Contribution(size_t pair_idx, size_t param_idx) const {
  const WeightPair& p = pairs_[pair_idx];
  int c = 0;
  if (index_->Contains(param_idx, p.plus)) c += 1;
  if (index_->Contains(param_idx, p.minus)) c -= 1;
  return c;
}

std::vector<uint32_t> PairMarking::CostPerParam() const {
  // Walk the inverse index instead of the (pair x param) product: each pair
  // only touches the parameters containing one of its two elements.
  auto accumulate = [this](size_t begin, size_t end, std::vector<uint32_t>& cost) {
    for (size_t pi = begin; pi < end; ++pi) {
      const WeightPair& p = pairs_[pi];
      const auto& in_plus = index_->ParamsContaining(p.plus);
      const auto& in_minus = index_->ParamsContaining(p.minus);
      // Symmetric difference of the two sorted parameter lists.
      size_t i = 0, j = 0;
      while (i < in_plus.size() || j < in_minus.size()) {
        if (j == in_minus.size() || (i < in_plus.size() && in_plus[i] < in_minus[j])) {
          ++cost[in_plus[i++]];
        } else if (i == in_plus.size() || in_minus[j] < in_plus[i]) {
          ++cost[in_minus[j++]];
        } else {  // Both contain this parameter: contributions cancel.
          ++i;
          ++j;
        }
      }
    }
  };

  const size_t num_params = index_->num_params();
  if (pairs_.size() < kParallelCostThreshold || ParallelThreads() == 1) {
    std::vector<uint32_t> cost(num_params, 0);
    accumulate(0, pairs_.size(), cost);
    return cost;
  }

  // Per-block partial counts, summed in block order. Integer addition is
  // associative and commutative, so the totals are identical to the serial
  // accumulation for any thread count or block layout.
  std::vector<std::vector<uint32_t>> partial =
      ParallelBlocks<std::vector<uint32_t>>(pairs_.size(), [&](size_t begin, size_t end) {
        std::vector<uint32_t> cost(num_params, 0);
        accumulate(begin, end, cost);
        return cost;
      });
  std::vector<uint32_t> cost(num_params, 0);
  for (const std::vector<uint32_t>& block : partial) {
    for (size_t a = 0; a < num_params; ++a) cost[a] += block[a];
  }
  return cost;
}

uint32_t PairMarking::MaxCost() const {
  uint32_t worst = 0;
  for (uint32_t c : CostPerParam()) worst = std::max(worst, c);
  return worst;
}

void PairMarking::Apply(const BitVec& mark, WeightMap& weights,
                        PairEncoding encoding) const {
  QPWM_CHECK_EQ(mark.size(), pairs_.size());
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const WeightPair& p = pairs_[i];
    if (mark.Get(i)) {
      weights.Add(index_->active_element(p.plus), +1);
      weights.Add(index_->active_element(p.minus), -1);
    } else if (encoding == PairEncoding::kAntipodal) {
      weights.Add(index_->active_element(p.plus), -1);
      weights.Add(index_->active_element(p.minus), +1);
    }
  }
}

PairMarking PairMarking::Subset(const std::vector<uint32_t>& selection) const {
  std::vector<WeightPair> subset;
  subset.reserve(selection.size());
  for (uint32_t i : selection) {
    QPWM_CHECK_LT(i, pairs_.size());
    subset.push_back(pairs_[i]);
  }
  return PairMarking(*index_, std::move(subset));
}

}  // namespace qpwm
