# CMake generated Testfile for 
# Source directory: /root/repo/src/qpwm/baseline
# Build directory: /root/repo/build/src/qpwm/baseline
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
