#include "qpwm/core/adversarial.h"

#include <algorithm>

#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"

namespace qpwm {
namespace {

class LocalCarrier : public PairCarrier {
 public:
  explicit LocalCarrier(const LocalScheme& base) : base_(&base) {}
  size_t NumPairs() const override { return base_->CapacityBits(); }
  void Apply(const BitVec& expanded_mark, WeightMap& weights,
             PairEncoding encoding) const override {
    base_->marking().Apply(expanded_mark, weights, encoding);
  }
  std::unique_ptr<DetectRunContext> MakeRunContext(
      const WeightMap& original, const DetectOptions& options) const override {
    auto ctx = std::make_unique<Ctx>();
    ctx->inner = base_->MakeDetectContext(original, options);
    return ctx;
  }
  const std::vector<PairObservation>& Observe(
      const DetectRunContext& ctx, const AnswerServer& suspect,
      DetectScratch& scratch) const override {
    return base_->ObservePairsInto(static_cast<const Ctx&>(ctx).inner, suspect,
                                   scratch);
  }

 private:
  struct Ctx : DetectRunContext {
    LocalScheme::DetectContext inner;
  };
  const LocalScheme* base_;
};

class TreeCarrier : public PairCarrier {
 public:
  explicit TreeCarrier(const TreeScheme& base) : base_(&base) {}
  size_t NumPairs() const override { return base_->CapacityBits(); }
  void Apply(const BitVec& expanded_mark, WeightMap& weights,
             PairEncoding encoding) const override {
    base_->ApplyMark(expanded_mark, weights, encoding);
  }
  std::unique_ptr<DetectRunContext> MakeRunContext(
      const WeightMap& original, const DetectOptions& options) const override {
    auto ctx = std::make_unique<Ctx>();
    ctx->inner = base_->MakeDetectContext(original, options);
    return ctx;
  }
  const std::vector<PairObservation>& Observe(
      const DetectRunContext& ctx, const AnswerServer& suspect,
      DetectScratch& scratch) const override {
    return base_->ObservePairsInto(static_cast<const Ctx&>(ctx).inner, suspect,
                                   scratch);
  }

 private:
  struct Ctx : DetectRunContext {
    TreeScheme::DetectContext inner;
  };
  const TreeScheme* base_;
};

}  // namespace

AdversarialScheme::AdversarialScheme(std::unique_ptr<PairCarrier> carrier,
                                     size_t redundancy)
    : carrier_(std::move(carrier)), redundancy_(redundancy) {
  QPWM_CHECK_GE(redundancy, 1u);
  capacity_ = carrier_->NumPairs() / redundancy_;
}

AdversarialScheme::AdversarialScheme(const LocalScheme& base, size_t redundancy)
    : AdversarialScheme(std::make_unique<LocalCarrier>(base), redundancy) {}

AdversarialScheme::AdversarialScheme(const TreeScheme& base, size_t redundancy)
    : AdversarialScheme(std::make_unique<TreeCarrier>(base), redundancy) {}

WeightMap AdversarialScheme::Embed(const WeightMap& original,
                                   const BitVec& message) const {
  QPWM_CHECK_EQ(message.size(), capacity_);
  // Expand the message over the pair groups; pairs beyond the last full
  // group carry a fixed 0 and are ignored by the detector.
  BitVec expanded(carrier_->NumPairs());
  for (size_t j = 0; j < capacity_; ++j) {
    for (size_t k = 0; k < redundancy_; ++k) {
      expanded.Set(j * redundancy_ + k, message.Get(j));
    }
  }
  WeightMap out = original;
  carrier_->Apply(expanded, out, PairEncoding::kAntipodal);
  return out;
}

Result<AdversarialDetection> AdversarialScheme::Detect(
    const WeightMap& original, const AnswerServer& suspect,
    const DetectOptions& options) const {
  const std::unique_ptr<DetectRunContext> ctx =
      carrier_->MakeRunContext(original, options);
  DetectScratch scratch;
  return DecodeVotes(carrier_->Observe(*ctx, suspect, scratch));
}

AdversarialDetection AdversarialScheme::DecodeVotes(
    const std::vector<PairObservation>& observations) const {
  AdversarialDetection out;
  out.mark = BitVec(capacity_);
  out.margins.resize(capacity_);
  out.vote_diffs.resize(capacity_);
  out.votes_cast.resize(capacity_);
  out.group_sizes.resize(capacity_);
  out.bit_erased.resize(capacity_);
  out.min_margin = capacity_ == 0 ? 0.0 : 1.0;
  for (size_t j = 0; j < capacity_; ++j) {
    int votes_one = 0;
    int votes_zero = 0;
    uint32_t surviving = 0;
    for (size_t k = 0; k < redundancy_; ++k) {
      const PairObservation& obs = observations[j * redundancy_ + k];
      if (obs.erased) {
        // The pair's elements are gone from the suspect (structural attack):
        // abstain and shrink the group — never fabricate a 0-delta vote.
        ++out.pairs_erased;
        continue;
      }
      ++surviving;
      if (obs.delta > 0) {
        ++votes_one;
      } else if (obs.delta < 0) {
        ++votes_zero;
      }
      // delta == 0: the attacker neutralized this pair; abstain (but the
      // pair is still present, so it stays in the margin denominator).
    }
    out.group_sizes[j] = surviving;
    out.vote_diffs[j] = votes_one - votes_zero;
    out.votes_cast[j] = static_cast<uint32_t>(votes_one + votes_zero);
    if (surviving == 0) {
      out.bit_erased[j] = true;
      ++out.bits_erased;
      out.mark.Set(j, false);
      out.margins[j] = 0.0;
      continue;
    }
    ++out.bits_recovered;
    out.mark.Set(j, votes_one >= votes_zero);
    out.margins[j] =
        static_cast<double>(std::abs(votes_one - votes_zero)) / surviving;
    out.min_margin = std::min(out.min_margin, out.margins[j]);
  }
  if (out.bits_recovered == 0) out.min_margin = 0.0;
  return out;
}

std::vector<AdversarialDetection> AdversarialScheme::DetectMany(
    const WeightMap& original, const std::vector<const AnswerServer*>& suspects,
    const DetectOptions& options) const {
  for (const AnswerServer* s : suspects) QPWM_CHECK(s != nullptr);
  // Each suspect's detection is independent; per-suspect results land in
  // per-index slots, so the fan-out is bit-identical to the serial loop for
  // any thread count. The run context (the original weights' dense view) is
  // built once and shared read-only; the per-suspect working memory — answer
  // batches, stamp tables, observation lists — comes from a scratch pool, so
  // blocks reuse warm buffers instead of reallocating per suspect (the
  // allocation churn that kept the old per-suspect fan-out from scaling).
  const std::unique_ptr<DetectRunContext> ctx =
      carrier_->MakeRunContext(original, options);
  ScratchPool<DetectScratch> pool;
  std::vector<AdversarialDetection> out(suspects.size());
  ParallelBlocks<int>(suspects.size(), [&](size_t begin, size_t end) {
    std::unique_ptr<DetectScratch> scratch = pool.Acquire();
    for (size_t i = begin; i < end; ++i) {
      out[i] = DecodeVotes(carrier_->Observe(*ctx, *suspects[i], *scratch));
    }
    pool.Release(std::move(scratch));
    return 0;
  });
  return out;
}

}  // namespace qpwm
