file(REMOVE_RECURSE
  "CMakeFiles/bench_local_scheme.dir/bench_local_scheme.cc.o"
  "CMakeFiles/bench_local_scheme.dir/bench_local_scheme.cc.o.d"
  "bench_local_scheme"
  "bench_local_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
