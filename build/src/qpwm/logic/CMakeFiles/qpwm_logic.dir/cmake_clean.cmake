file(REMOVE_RECURSE
  "CMakeFiles/qpwm_logic.dir/conjunctive.cc.o"
  "CMakeFiles/qpwm_logic.dir/conjunctive.cc.o.d"
  "CMakeFiles/qpwm_logic.dir/evaluator.cc.o"
  "CMakeFiles/qpwm_logic.dir/evaluator.cc.o.d"
  "CMakeFiles/qpwm_logic.dir/formula.cc.o"
  "CMakeFiles/qpwm_logic.dir/formula.cc.o.d"
  "CMakeFiles/qpwm_logic.dir/locality.cc.o"
  "CMakeFiles/qpwm_logic.dir/locality.cc.o.d"
  "CMakeFiles/qpwm_logic.dir/multiquery.cc.o"
  "CMakeFiles/qpwm_logic.dir/multiquery.cc.o.d"
  "CMakeFiles/qpwm_logic.dir/parser.cc.o"
  "CMakeFiles/qpwm_logic.dir/parser.cc.o.d"
  "CMakeFiles/qpwm_logic.dir/query.cc.o"
  "CMakeFiles/qpwm_logic.dir/query.cc.o.d"
  "libqpwm_logic.a"
  "libqpwm_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
