file(REMOVE_RECURSE
  "CMakeFiles/qpwm_capacity.dir/capacity.cc.o"
  "CMakeFiles/qpwm_capacity.dir/capacity.cc.o.d"
  "libqpwm_capacity.a"
  "libqpwm_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
