#include "qpwm/structure/neighborhood.h"

#include <algorithm>
#include <numeric>

namespace qpwm {
namespace {

// Local id of global element `x` in the sorted sphere, or the sphere size
// when x lies outside.
ElemId LocalId(const std::vector<ElemId>& sphere, ElemId x) {
  auto it = std::lower_bound(sphere.begin(), sphere.end(), x);
  if (it == sphere.end() || *it != x) return static_cast<ElemId>(sphere.size());
  return static_cast<ElemId>(it - sphere.begin());
}

}  // namespace

Neighborhood ExtractNeighborhood(const Structure& g, const GaifmanGraph& gg,
                                 const IncidenceIndex& idx, const Tuple& c,
                                 uint32_t rho) {
  NeighborhoodScratch scratch;
  ExtractNeighborhoodInto(g, gg, idx, c, rho, scratch);
  return std::move(scratch.nb);
}

Neighborhood& ExtractNeighborhoodInto(const Structure& g, const GaifmanGraph& gg,
                                      const IncidenceIndex& idx, const Tuple& c,
                                      uint32_t rho, NeighborhoodScratch& scratch) {
  std::vector<ElemId>& sphere = scratch.nb.global_ids;
  gg.SphereInto(c, rho, scratch.sphere, sphere);  // sorted ascending
  const ElemId outside = static_cast<ElemId>(sphere.size());

  if (scratch.bound != &g || scratch.bound_generation != g.generation()) {
    scratch.nb.local = Structure(g.signature(), 0);
    scratch.rel_flat.assign(g.num_relations(), {});
    scratch.bound = &g;
    scratch.bound_generation = g.generation();
  }
  Structure& local = scratch.nb.local;
  local.ResetUniverse(sphere.size());

  // Candidate tuples via the incidence lists of sphere members, deduplicated
  // by (relation, tuple index) with a sort instead of a hash set — incidence
  // lists over a bounded-degree sphere are tiny. Distinct indices mean
  // distinct tuples (relations are deduplicated), so the per-relation flat
  // records below can be installed without re-hashing every tuple.
  std::vector<uint64_t>& keys = scratch.keys;
  keys.clear();
  for (ElemId e : sphere) {
    for (const auto& entry : idx.Incident(e)) {
      keys.push_back((static_cast<uint64_t>(entry.relation) << 32) | entry.tuple_index);
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  for (auto& records : scratch.rel_flat) records.clear();
  for (uint64_t key : keys) {
    const auto rel = static_cast<uint32_t>(key >> 32);
    const TupleRef t = g.relation(rel).tuple(static_cast<uint32_t>(key));
    std::vector<ElemId>& records = scratch.rel_flat[rel];
    const size_t mark = records.size();
    bool inside = true;
    for (ElemId x : t) {
      const ElemId lx = LocalId(sphere, x);
      if (lx == outside) {
        inside = false;
        break;
      }
      records.push_back(lx);
    }
    if (!inside) records.resize(mark);
  }

  for (size_t r = 0; r < scratch.rel_flat.size(); ++r) {
    std::vector<ElemId>& records = scratch.rel_flat[r];
    const uint32_t a = g.relation(r).arity();
    if (a <= 1) {
      // Unary (or empty) records sort element-wise in place.
      std::sort(records.begin(), records.end());
      local.mutable_relation(r).SwapFlatUnchecked(records);
      continue;
    }
    // Finalize order: lexicographic record sort via a permutation gather.
    const size_t count = records.size() / a;
    std::vector<uint32_t>& order = scratch.rec_order;
    order.resize(count);
    std::iota(order.begin(), order.end(), 0u);
    const ElemId* base = records.data();
    std::sort(order.begin(), order.end(), [base, a](uint32_t x, uint32_t y) {
      return std::lexicographical_compare(base + x * a, base + (x + 1) * a,
                                          base + y * a, base + (y + 1) * a);
    });
    std::vector<ElemId>& sorted = scratch.rel_sorted;
    sorted.clear();
    sorted.reserve(records.size());
    for (uint32_t idx2 : order) {
      sorted.insert(sorted.end(), base + idx2 * a, base + (idx2 + 1) * a);
    }
    local.mutable_relation(r).SwapFlatUnchecked(sorted);
  }

  scratch.nb.distinguished.clear();
  scratch.nb.distinguished.reserve(c.size());
  for (ElemId x : c) scratch.nb.distinguished.push_back(LocalId(sphere, x));
  return scratch.nb;
}

}  // namespace qpwm
