# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/structure_test[1]_include.cmake")
include("/root/repo/build/tests/isomorphism_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/automaton_test[1]_include.cmake")
include("/root/repo/build/tests/mso_test[1]_include.cmake")
include("/root/repo/build/tests/tree_query_test[1]_include.cmake")
include("/root/repo/build/tests/decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
include("/root/repo/build/tests/vc_test[1]_include.cmake")
include("/root/repo/build/tests/capacity_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/local_scheme_test[1]_include.cmake")
include("/root/repo/build/tests/tree_scheme_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/structural_attack_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/multiquery_test[1]_include.cmake")
include("/root/repo/build/tests/conjunctive_test[1]_include.cmake")
include("/root/repo/build/tests/paths_test[1]_include.cmake")
include("/root/repo/build/tests/xml_fuzz_test[1]_include.cmake")
