// Collusion-resistant fingerprinting: Tardos codes over the coded channel.
//
// The coded channel (coded_watermark.h) identifies *one* embedded payload.
// Distribution at scale means handing every recipient a distinct marked copy
// and, when a leak surfaces, naming at least one leaker — even when a
// coalition of c recipients pools its copies and splices an untraceable-
// looking hybrid (averaging, median, min/max, segment interleaving; see
// CollusionAttack in core/attack.h). Probabilistic fingerprint codes are the
// standard answer: Tardos's construction draws a secret bias p_i per code
// position and gives recipient j the codeword X_j with X_{j,i} ~
// Bernoulli(p_i), all deterministically from one 64-bit seed.
//
// Accusation is soft-decision and one-pass: the suspect is observed *once*
// through the existing CodedWatermark path, and the decoded payload is
// flattened into per-position score arrays (the symmetric Tardos score of
// Škorić et al., weighted by the decoder's per-bit confidence; erased or
// abstained positions contribute nothing). Scoring a candidate is then a
// single O(L) scan over flat arrays — TraceMany over 10^5..10^6 candidate
// codewords is one channel observation plus an O(candidates x L) parallel
// scan with sound score pruning, not 10^5 detections.
//
// Robustness contract ("never a wrong accusation"): a candidate is accused
// only when its score clears a threshold derived from a Bernstein bound on
// the null model (an innocent codeword is independent of the observed
// payload, so its score is a zero-mean sum of bounded independent terms),
// Bonferroni-corrected over all candidates. The resulting false-accusation
// probability is reported as log10_fp, like DetectionVerdict. When erasures
// or an over-design-c coalition destroy the margin, the accused set comes
// back empty and the verdict degrades to UNTRACEABLE (or NO MARK when the
// channel itself shows no evidence) — the scheme abstains, it never guesses.
#ifndef QPWM_CODING_FINGERPRINT_H_
#define QPWM_CODING_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "qpwm/coding/coded_watermark.h"
#include "qpwm/util/bitvec.h"
#include "qpwm/util/hash.h"
#include "qpwm/util/random.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Parameters of a Tardos fingerprint code. Everything is deterministic in
/// `seed`; the seed is the owner's secret (codewords are derived through the
/// keyed PRF, so one leaked codeword reveals nothing about the others).
struct TardosOptions {
  /// Coalition size the accusation bound is provisioned against. Larger
  /// coalitions can still be traced when the evidence happens to suffice,
  /// but only design_c is guaranteed by the code-length calculus.
  size_t design_c = 5;
  /// Bias cutoff t: biases are drawn from the arcsine density restricted to
  /// [t, 1-t]. 0 selects 1 / (50 * design_c) — the soft-decision symmetric
  /// score tolerates a milder cutoff than Tardos's original 1/(300c), which
  /// shrinks the bounded-term constant in the Bernstein threshold.
  double bias_cutoff = 0;
  /// Secret seed the bias vector and every codeword derive from.
  uint64_t seed = 1;
  /// Total false-accusation budget of one trace: the probability that *any*
  /// innocent candidate is accused is bounded by this.
  double fp_threshold = 1e-6;
};

/// A seeded Tardos code of fixed length: the secret bias vector plus a
/// deterministic per-recipient codeword generator with O(1) state.
class TardosCode {
 public:
  TardosCode(size_t length, const TardosOptions& options);

  size_t length() const { return biases_.size(); }
  const TardosOptions& options() const { return opts_; }
  /// The resolved bias cutoff t (biases lie in [t, 1-t]).
  double cutoff() const { return cutoff_; }
  double bias(size_t i) const { return biases_[i]; }
  /// Symmetric-score generators for position i: g1 = sqrt((1-p)/p) is the
  /// magnitude credited when a candidate bit 1 meets an observed 1 (and
  /// debited when it meets a 0); g0 = sqrt(p/(1-p)) is the bit-0 twin.
  double g_one(size_t i) const { return g_one_[i]; }
  double g_zero(size_t i) const { return g_zero_[i]; }

  /// Sequential codeword bits of one recipient; draws exactly one PRNG step
  /// per position, so early-exiting scans stay aligned with CodewordOf.
  class Stream {
   public:
    bool NextBit() { return rng_.NextDouble() < code_->biases_[pos_++]; }

   private:
    friend class TardosCode;
    Stream(Rng rng, const TardosCode* code) : rng_(rng), code_(code) {}
    Rng rng_;
    const TardosCode* code_;
    size_t pos_ = 0;
  };

  Stream StreamOf(uint64_t recipient) const;
  /// The full codeword of `recipient` (bit i = position i).
  BitVec CodewordOf(uint64_t recipient) const;

 private:
  TardosOptions opts_;
  double cutoff_ = 0;
  PrfKey word_key_;
  std::vector<double> biases_;
  std::vector<double> g_one_;
  std::vector<double> g_zero_;
};

/// One channel observation of a suspect, pre-folded for candidate scans.
/// Built once per trace; every candidate score reads only the two flat
/// arrays, never the channel again.
struct FingerprintObservation {
  /// The full coded report of the single Detect run (channel votes, decoded
  /// payload, verdict) — nothing the observation is derived from is hidden.
  CodedDetection channel;
  /// Per code position: the score contribution of a candidate whose bit is
  /// 1 (resp. 0) at that position — the symmetric Tardos generator for the
  /// observed payload bit, weighted by the decoder's confidence. Erased and
  /// abstained (confidence-0) positions hold 0 in both arrays.
  std::vector<double> score_if_one;
  std::vector<double> score_if_zero;
  /// Null model of an innocent candidate's score: variance V = sum of
  /// squared position weights, and M = the largest single bounded term.
  double null_variance = 0;
  double max_term = 0;
  /// Positions that carry any scoring weight (non-erased, non-abstained).
  size_t positions_scored = 0;
};

/// Trace verdicts; values mirror the coded-channel CLI exit codes.
enum class TraceVerdictKind {
  kTraced = 0,       // at least one candidate accused under the fp bound
  kNoMark = 1,       // the channel itself shows no evidence of any mark
  kUntraceable = 3,  // marked or damaged, but no candidate clears the bound:
                     // erasures / over-design coalitions degrade here, never
                     // into a wrong accusation
};

const char* TraceVerdictKindName(TraceVerdictKind kind);

/// One accused (or top-scoring) candidate.
struct Accusation {
  uint64_t recipient = 0;
  double score = 0;
  /// log10 of the Bonferroni-corrected false-positive bound at this score
  /// (log10(candidates) + log10 of the Bernstein tail), capped at 0.
  double log10_fp = 0;
};

struct TraceOptions {
  /// Fully-scored candidates to report in TraceResult::top.
  size_t top_k = 8;
  /// Sound score pruning: a candidate whose running score plus the best
  /// possible remainder cannot reach prune_frac * threshold is abandoned
  /// mid-scan. Accusations are unaffected (the bound is conservative and
  /// prune_frac <= 1); `top` then only covers candidates that finished.
  bool prune = true;
  double prune_frac = 0.5;
};

/// Outcome of one TraceMany scan. Deterministic for a given observation and
/// candidate count: bit-identical for any thread count.
struct TraceResult {
  TraceVerdictKind kind = TraceVerdictKind::kUntraceable;
  /// Accusation score threshold Z (infinite when the observation carries no
  /// information) and the budget it was derived from.
  double threshold = 0;
  double fp_threshold = 0;
  /// Largest score any codeword could reach against this observation; when
  /// below `threshold` the scan is skipped outright (guaranteed
  /// untraceable).
  double max_achievable = 0;
  uint64_t candidates = 0;
  /// Candidates abandoned by score pruning (provably below
  /// prune_frac * threshold, hence never accusable).
  uint64_t pruned = 0;
  /// Accused candidates, score descending (ties: recipient ascending).
  /// Every entry clears `threshold`; innocents appear here with probability
  /// at most `fp_threshold` in total.
  std::vector<Accusation> accused;
  /// The top_k fully-scored candidates, same order — diagnostics only.
  std::vector<Accusation> top;
  /// Null-model parameters the threshold was computed from.
  double null_variance = 0;
  double max_term = 0;

  int ExitCode() const { return static_cast<int>(kind); }
};

/// Per-recipient fingerprinting layered over a CodedWatermark: the Tardos
/// codeword *is* the payload, so every codec/interleaver/soft-decoding
/// guarantee of the coded channel carries over per position. The wrapped
/// watermark must outlive this object.
class FingerprintedWatermark {
 public:
  FingerprintedWatermark(const CodedWatermark& watermark,
                         const TardosOptions& options = {});

  const TardosCode& code() const { return code_; }
  const CodedWatermark& watermark() const { return *wm_; }
  /// Code length L — one position per coded payload bit.
  size_t Positions() const { return code_.length(); }

  BitVec CodewordOf(uint64_t recipient) const {
    return code_.CodewordOf(recipient);
  }

  /// The marked copy handed to `recipient`.
  WeightMap EmbedFor(const WeightMap& original, uint64_t recipient) const;

  /// The one channel read of a trace: detect + decode through the coded
  /// path, then fold the soft payload into flat per-position score arrays.
  [[nodiscard]] Result<FingerprintObservation> Observe(
      const WeightMap& original, const AnswerServer& suspect,
      const DetectOptions& options = {}) const;

  /// Exact (unpruned) score of one candidate against an observation.
  double Score(const FingerprintObservation& obs, uint64_t recipient) const;

  /// The score a candidate must reach to be accused, given `candidates`
  /// many of them share the fp budget. +infinity when the observation
  /// carries no information.
  double AccusationThreshold(const FingerprintObservation& obs,
                             uint64_t candidates) const;

  /// Scores candidates 0..candidates-1 against one observation: a parallel
  /// flat-array scan over the pool (QPWM_THREADS), bit-identical to the
  /// serial scan for any thread count. Accuses every candidate whose score
  /// clears AccusationThreshold; an empty accused set degrades the verdict
  /// instead of lowering the bar.
  TraceResult TraceMany(const FingerprintObservation& obs, uint64_t candidates,
                        const TraceOptions& options = {}) const;

 private:
  const CodedWatermark* wm_;
  TardosCode code_;
};

}  // namespace qpwm

#endif  // QPWM_CODING_FINGERPRINT_H_
