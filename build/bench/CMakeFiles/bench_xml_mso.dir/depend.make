# Empty dependencies file for bench_xml_mso.
# This may be replaced when dependencies are built.
