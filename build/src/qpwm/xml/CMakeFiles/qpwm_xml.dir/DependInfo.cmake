
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qpwm/xml/attack.cc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/attack.cc.o" "gcc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/attack.cc.o.d"
  "/root/repo/src/qpwm/xml/dom.cc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/dom.cc.o" "gcc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/dom.cc.o.d"
  "/root/repo/src/qpwm/xml/encode.cc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/encode.cc.o" "gcc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/encode.cc.o.d"
  "/root/repo/src/qpwm/xml/parser.cc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/parser.cc.o" "gcc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/parser.cc.o.d"
  "/root/repo/src/qpwm/xml/xpath.cc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/xpath.cc.o" "gcc" "src/qpwm/xml/CMakeFiles/qpwm_xml.dir/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qpwm/tree/CMakeFiles/qpwm_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/logic/CMakeFiles/qpwm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/structure/CMakeFiles/qpwm_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/util/CMakeFiles/qpwm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
