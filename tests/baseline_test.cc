#include <gtest/gtest.h>

#include <cmath>

#include "qpwm/baseline/agrawal_kiernan.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"

namespace qpwm {
namespace {

Table SalesTable(size_t rows, Rng& rng) {
  Table t("Sales", {{"id", ColumnRole::kKey, ""},
                    {"amount", ColumnRole::kWeight, "id"},
                    {"units", ColumnRole::kWeight, "id"}});
  for (size_t i = 0; i < rows; ++i) {
    QPWM_CHECK(t.AddRow({StrCat("row", i), rng.Uniform(1000, 9999),
                         rng.Uniform(1, 500)}).ok());
  }
  return t;
}

AkOptions Options(uint64_t seed = 11) {
  AkOptions o;
  o.key = {seed, seed * 31};
  o.gamma = 4;
  o.num_lsb = 2;
  return o;
}

TEST(BinomialTest, TailValues) {
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 11), 0.0);
  EXPECT_NEAR(BinomialTailAtLeast(10, 5), 0.623046875, 1e-9);
  EXPECT_NEAR(BinomialTailAtLeast(10, 10), 1.0 / 1024, 1e-12);
  EXPECT_NEAR(BinomialTailAtLeast(1, 1), 0.5, 1e-12);
}

TEST(AkTest, EmbedMarksExpectedFraction) {
  Rng rng(1);
  Table t = SalesTable(2000, rng);
  AkEmbedStats stats;
  Table marked = AkEmbed(t, Options(), &stats).ValueOrDie();
  EXPECT_EQ(stats.rows, 2000u);
  // gamma = 4: about a quarter of the rows selected.
  EXPECT_NEAR(static_cast<double>(stats.marked_cells), 500.0, 80.0);
}

TEST(AkTest, EmbedIsSmallDistortion) {
  Rng rng(2);
  Table t = SalesTable(500, rng);
  Table marked = AkEmbed(t, Options(), nullptr).ValueOrDie();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c : t.WeightColumns()) {
      // num_lsb = 2: at most the two low bits change.
      EXPECT_LE(std::llabs(marked.WeightAt(r, c) - t.WeightAt(r, c)), 3);
    }
  }
}

TEST(AkTest, DetectsOwnMark) {
  Rng rng(3);
  Table t = SalesTable(1000, rng);
  Table marked = AkEmbed(t, Options(), nullptr).ValueOrDie();
  AkDetection d = AkDetect(marked, Options()).ValueOrDie();
  EXPECT_TRUE(d.detected);
  EXPECT_EQ(d.matches, d.total);
}

TEST(AkTest, WrongKeyDoesNotDetect) {
  Rng rng(4);
  Table t = SalesTable(1000, rng);
  Table marked = AkEmbed(t, Options(5), nullptr).ValueOrDie();
  AkDetection d = AkDetect(marked, Options(99)).ValueOrDie();
  EXPECT_FALSE(d.detected);
}

TEST(AkTest, UnmarkedTableNotDetected) {
  Rng rng(5);
  Table t = SalesTable(1000, rng);
  AkDetection d = AkDetect(t, Options()).ValueOrDie();
  EXPECT_FALSE(d.detected);
  // Matches should hover around half.
  EXPECT_NEAR(static_cast<double>(d.matches), d.total / 2.0,
              3 * std::sqrt(d.total / 4.0) + 1);
}

TEST(AkTest, MeanDriftIsTiny) {
  Rng rng(6);
  Table t = SalesTable(3000, rng);
  Table marked = AkEmbed(t, Options(), nullptr).ValueOrDie();
  size_t amount = t.ColumnIndex("amount").ValueOrDie();
  double mean0 = 0, mean1 = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    mean0 += static_cast<double>(t.WeightAt(r, amount));
    mean1 += static_cast<double>(marked.WeightAt(r, amount));
  }
  mean0 /= static_cast<double>(t.num_rows());
  mean1 /= static_cast<double>(t.num_rows());
  // The observation of [1]: aggregate statistics barely move.
  EXPECT_NEAR(mean0, mean1, 0.5);
}

TEST(AkTest, SurvivesPartialBitResetAttack) {
  Rng rng(7);
  Table t = SalesTable(4000, rng);
  Table marked = AkEmbed(t, Options(), nullptr).ValueOrDie();
  // Attacker randomizes the lowest bit of 30% of all weights.
  for (size_t r = 0; r < marked.num_rows(); ++r) {
    for (size_t c : marked.WeightColumns()) {
      if (rng.Bernoulli(0.3)) {
        Weight w = marked.WeightAt(r, c);
        marked.SetWeightAt(r, c, (w & ~Weight{1}) | (rng.Coin() ? 1 : 0));
      }
    }
  }
  AkDetection d = AkDetect(marked, Options()).ValueOrDie();
  EXPECT_TRUE(d.detected);
  EXPECT_LT(d.matches, d.total);  // but not unscathed
}

TEST(AkTest, RequiresKeyColumnPk) {
  Rng rng(8);
  Table t = SalesTable(10, rng);
  AkOptions bad = Options();
  bad.pk_column = 1;  // weight column
  EXPECT_FALSE(AkEmbed(t, bad, nullptr).ok());
  EXPECT_FALSE(AkDetect(t, bad).ok());
}

}  // namespace
}  // namespace qpwm
