#include <gtest/gtest.h>

#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/conjunctive.h"
#include "qpwm/logic/parser.h"
#include "qpwm/relational/table.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

TEST(CqParseTest, SingleAtom) {
  auto q = ConjunctiveQuery::Parse("E(u1, v1)").ValueOrDie();
  EXPECT_EQ(q.ParamArity(), 1u);
  EXPECT_EQ(q.ResultArity(), 1u);
  EXPECT_EQ(q.num_join_vars(), 0u);
  EXPECT_EQ(q.Name(), "E(u1, v1)");
}

TEST(CqParseTest, JoinQuery) {
  auto q = ConjunctiveQuery::Parse("E(u1, x1), E(x1, v1)").ValueOrDie();
  EXPECT_EQ(q.num_join_vars(), 1u);
  EXPECT_EQ(q.body().size(), 2u);
}

TEST(CqParseTest, Errors) {
  EXPECT_FALSE(ConjunctiveQuery::Parse("").ok());
  EXPECT_FALSE(ConjunctiveQuery::Parse("E(u1, v1").ok());       // unterminated
  EXPECT_FALSE(ConjunctiveQuery::Parse("E(u0, v1)").ok());      // 0-based index
  EXPECT_FALSE(ConjunctiveQuery::Parse("E(u1, w1)").ok());      // bad var kind
  EXPECT_FALSE(ConjunctiveQuery::Parse("E(u1, x1)").ok());      // no result var
  EXPECT_FALSE(ConjunctiveQuery::Parse("E(u1, v1) E(v1, v1)").ok());
}

TEST(CqEvalTest, MatchesFormulaQueryOnTwoHop) {
  Rng rng(11);
  Structure g = RandomBoundedDegreeGraph(40, 3, 100, false, rng);
  auto cq = ConjunctiveQuery::Parse("E(u1, x1), E(x1, v1)").ValueOrDie();
  FormulaQuery fo(MustParseFormula("exists w (E(u, w) & E(w, v))"), {"u"}, {"v"});
  for (ElemId a = 0; a < 40; ++a) {
    auto lhs = cq.Evaluate(g, Tuple{a});
    auto rhs = fo.Evaluate(g, Tuple{a});
    std::sort(rhs.begin(), rhs.end());
    EXPECT_EQ(lhs, rhs) << "a=" << a;
  }
}

TEST(CqEvalTest, TriangleClosure) {
  // v completes a triangle with u: E(u,x), E(x,v), E(v,u).
  Structure g(GraphSignature(), 4);
  g.AddTuple(size_t{0}, Tuple{0, 1});
  g.AddTuple(size_t{0}, Tuple{1, 2});
  g.AddTuple(size_t{0}, Tuple{2, 0});
  g.AddTuple(size_t{0}, Tuple{1, 3});
  g.Seal();
  auto cq = ConjunctiveQuery::Parse("E(u1, x1), E(x1, v1), E(v1, u1)").ValueOrDie();
  EXPECT_EQ(cq.Evaluate(g, Tuple{0}), (std::vector<Tuple>{{2}}));
  EXPECT_TRUE(cq.Evaluate(g, Tuple{3}).empty());
}

TEST(CqEvalTest, RepeatedVariableInAtom) {
  Structure g(GraphSignature(), 3);
  g.AddTuple(size_t{0}, Tuple{1, 1});  // self-loop
  g.AddTuple(size_t{0}, Tuple{0, 1});
  g.Seal();
  auto cq = ConjunctiveQuery::Parse("E(v1, v1)").ValueOrDie();
  EXPECT_EQ(cq.Evaluate(g, Tuple{}), (std::vector<Tuple>{{1}}));
}

TEST(CqEvalTest, BinaryResultTuples) {
  Structure g = PathGraph(4, false);
  auto cq = ConjunctiveQuery::Parse("E(v1, v2)").ValueOrDie();
  EXPECT_EQ(cq.ParamArity(), 0u);
  EXPECT_EQ(cq.ResultArity(), 2u);
  auto w = cq.Evaluate(g, Tuple{});
  EXPECT_EQ(w.size(), 3u);  // the three path edges
}

TEST(CqEvalTest, TravelDatabaseJoin) {
  // "transports of travel u that depart from city v" — a real SQL-ish join:
  // Route(u, x), Timetable(x, v, y, z) with the transport as join var? No:
  // we want the transport in the answer: Route(u, v1), Timetable(v1, x1, x2, x3)
  // restricted by nothing — answers transports with full timetable rows.
  Database db = TravelAgencyDatabase();
  auto instance = ToWeightedStructure(db).ValueOrDie();
  auto cq = ConjunctiveQuery::Parse(
                "Route(u1, v1), Timetable(v1, x1, x2, x3)")
                .ValueOrDie();
  ElemId nepal = instance.structure.FindElement("Nepal Trek").ValueOrDie();
  auto w = cq.Evaluate(instance.structure, Tuple{nepal});
  // Nepal Trek uses F21, R5, F2 — all present in Timetable.
  EXPECT_EQ(w.size(), 3u);
}

TEST(CqEvalTest, LocalityRankFromJoinVars) {
  auto q0 = ConjunctiveQuery::Parse("E(u1, v1)").ValueOrDie();
  EXPECT_EQ(q0.LocalityRank().value(), 1u);  // atoms have rank 1, not 0
  auto q2 = ConjunctiveQuery::Parse("E(u1, x1), E(x1, x2), E(x2, v1)").ValueOrDie();
  EXPECT_EQ(q2.LocalityRank().value(), 24u);  // Gaifman bound for rank 2
}

TEST(CqSchemeTest, WatermarkPreservesJoinQuery) {
  // End to end: plan the local scheme against a 2-hop join query.
  Rng rng(13);
  Structure g = RandomBoundedDegreeGraph(120, 3, 300, false, rng);
  auto cq = ConjunctiveQuery::Parse("E(u1, x1), E(x1, v1)").ValueOrDie();
  QueryIndex index(g, cq, AllParams(g, 1));
  WeightMap w = RandomWeights(g, 100, 999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = 0.5;
  opts.key = {21, 22};
  opts.rho = 2;  // the join's true locality radius, not the Gaifman bound
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  if (scheme.CapacityBits() == 0) GTEST_SKIP();

  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
  WeightMap marked = scheme.Embed(w, mark);
  EXPECT_LE(GlobalDistortion(index, w, marked),
            static_cast<Weight>(scheme.Budget()));
  HonestServer server(index, marked);
  EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
}

}  // namespace
}  // namespace qpwm
