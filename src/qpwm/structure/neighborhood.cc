#include "qpwm/structure/neighborhood.h"

#include <algorithm>

namespace qpwm {
namespace {

// Local id of global element `x` in the sorted sphere, or the sphere size
// when x lies outside.
ElemId LocalId(const std::vector<ElemId>& sphere, ElemId x) {
  auto it = std::lower_bound(sphere.begin(), sphere.end(), x);
  if (it == sphere.end() || *it != x) return static_cast<ElemId>(sphere.size());
  return static_cast<ElemId>(it - sphere.begin());
}

}  // namespace

Neighborhood ExtractNeighborhood(const Structure& g, const GaifmanGraph& gg,
                                 const IncidenceIndex& idx, const Tuple& c,
                                 uint32_t rho) {
  std::vector<ElemId> sphere = gg.Sphere(c, rho);  // sorted ascending
  const ElemId outside = static_cast<ElemId>(sphere.size());

  Neighborhood out{Structure(g.signature(), sphere.size()), {}, sphere};

  // Candidate tuples via the incidence lists of sphere members, deduplicated
  // by (relation, tuple index) with a sort instead of a hash set — incidence
  // lists over a bounded-degree sphere are tiny. Distinct indices mean
  // distinct tuples (relations are deduplicated), so the per-relation lists
  // below can be installed without re-hashing every tuple.
  std::vector<uint64_t> keys;
  for (ElemId e : sphere) {
    for (const auto& entry : idx.Incident(e)) {
      keys.push_back((static_cast<uint64_t>(entry.relation) << 32) | entry.tuple_index);
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<std::vector<Tuple>> per_rel(g.num_relations());
  for (uint64_t key : keys) {
    const auto rel = static_cast<uint32_t>(key >> 32);
    const Tuple& t = g.relation(rel).tuples()[static_cast<uint32_t>(key)];
    Tuple local_t;
    local_t.reserve(t.size());
    bool inside = true;
    for (ElemId x : t) {
      const ElemId lx = LocalId(sphere, x);
      if (lx == outside) {
        inside = false;
        break;
      }
      local_t.push_back(lx);
    }
    if (inside) per_rel[rel].push_back(std::move(local_t));
  }
  for (size_t r = 0; r < per_rel.size(); ++r) {
    std::sort(per_rel[r].begin(), per_rel[r].end());  // Finalize order
    out.local.mutable_relation(r).SetTuplesUnchecked(std::move(per_rel[r]));
  }

  out.distinguished.reserve(c.size());
  for (ElemId x : c) out.distinguished.push_back(LocalId(sphere, x));
  return out;
}

}  // namespace qpwm
