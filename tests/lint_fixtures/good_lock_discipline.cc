// Fixture: clean lock discipline — every guarded access either holds the
// mutex via RAII or runs in a QPWM_REQUIRES method. Must pass
// `qpwm_lint --strict`. Never compiled, only linted.
#include <mutex>

namespace fx {

class Counter {
 public:
  void Add(int d) {
    std::lock_guard<std::mutex> lock(mu_);
    AddLocked(d);
  }
  int total() {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  void AddLocked(int d) QPWM_REQUIRES(mu_) { total_ += d; }

  std::mutex mu_;
  int total_ QPWM_GUARDED_BY(mu_) = 0;
};

}  // namespace fx
