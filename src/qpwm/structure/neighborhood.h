// rho-neighborhoods N_rho(c): the substructure induced by the rho-sphere
// around a tuple, with the tuple's elements distinguished (as constants).
// Two tuples are rho-equivalent (a ~rho b) iff their neighborhoods are
// isomorphic as distinguished structures.
#ifndef QPWM_STRUCTURE_NEIGHBORHOOD_H_
#define QPWM_STRUCTURE_NEIGHBORHOOD_H_

#include <cstdint>
#include <vector>

#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/structure.h"

namespace qpwm {

/// An extracted neighborhood: a small local structure plus the positions of
/// the distinguished tuple and the local->global element mapping.
struct Neighborhood {
  Structure local;
  Tuple distinguished;              // local ids of c, in order
  std::vector<ElemId> global_ids;   // local id -> global id (ascending)
};

/// Per-worker arena for repeated neighborhood extraction. Holds the BFS
/// scratch, the per-relation staging buffers and a reusable Neighborhood
/// whose local structure is recycled (ResetUniverse + buffer swaps), so the
/// per-element hot loop of a typing pass does zero steady-state allocation.
/// A scratch binds to one source structure at a time (the local signature is
/// rebuilt when the source changes) and must not be shared across threads.
struct NeighborhoodScratch {
  SphereScratch sphere;
  std::vector<uint64_t> keys;                  // (relation, tuple index) dedup
  std::vector<std::vector<ElemId>> rel_flat;   // per relation: local records
  std::vector<uint32_t> rec_order;             // record sort permutation
  std::vector<ElemId> rel_sorted;              // gather target for the swap
  Neighborhood nb;
  const Structure* bound = nullptr;
  uint64_t bound_generation = 0;
};

/// Extracts N_rho(c) from `g`. `gg` and `idx` must be built over `g`.
Neighborhood ExtractNeighborhood(const Structure& g, const GaifmanGraph& gg,
                                 const IncidenceIndex& idx, const Tuple& c,
                                 uint32_t rho);

/// ExtractNeighborhood into `scratch.nb` — identical output, zero
/// steady-state allocation. The returned reference points into `scratch`
/// and is invalidated by the next call on the same scratch.
Neighborhood& ExtractNeighborhoodInto(const Structure& g, const GaifmanGraph& gg,
                                      const IncidenceIndex& idx, const Tuple& c,
                                      uint32_t rho, NeighborhoodScratch& scratch);

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_NEIGHBORHOOD_H_
