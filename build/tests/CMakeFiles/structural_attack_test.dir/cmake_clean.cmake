file(REMOVE_RECURSE
  "CMakeFiles/structural_attack_test.dir/structural_attack_test.cc.o"
  "CMakeFiles/structural_attack_test.dir/structural_attack_test.cc.o.d"
  "structural_attack_test"
  "structural_attack_test.pdb"
  "structural_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
