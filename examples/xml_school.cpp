// The paper's Example 4: watermarking an XML school document while
// preserving the parametric XPath query
//
//   school/student[firstname=$1]/exam
//
// End to end: parse XML -> first-child/next-sibling binary encoding ->
// XPath -> MSO -> tree automaton (Lemma 2) -> Lemma 3 regions -> marked XML.
//
//   $ ./xml_school
#include <iostream>

#include "qpwm/core/tree_scheme.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"
#include "qpwm/xml/parser.h"
#include "qpwm/xml/xpath.h"

int main() {
  using namespace qpwm;

  // 1. The owner's document (Example 4) and the registered query.
  XmlDocument doc = SchoolExampleDocument();
  EncodedXml encoded = EncodeXml(doc, {"exam"}).ValueOrDie();
  XPathQuery query =
      XPathQuery::Parse("school/student[firstname=$1]/exam").ValueOrDie();
  TrackedDta compiled = query.Compile(encoded).ValueOrDie();
  const auto base = static_cast<uint32_t>(encoded.sigma.size());
  std::cout << "document: " << encoded.tree.size() << " tree nodes, alphabet "
            << encoded.sigma.size() << "; query automaton "
            << compiled.dta.num_states() << " states\n";

  // 2. The paper's f(Robert) = 28 on the original document.
  TextTable before("f values on the original document");
  before.SetHeader({"firstname", "f = sum of exams"});
  for (NodeId p : query.ParamTreeNodes(encoded)) {
    Weight f = 0;
    for (NodeId b : EvaluateWa(encoded.tree, encoded.tree.labels(), base,
                               compiled.dta, 1, p)) {
      f += encoded.weights.GetElem(b);
    }
    before.AddRow({encoded.sigma.Name(encoded.tree.label(p)), StrCat(f)});
  }
  before.Print(std::cout);

  // 3. A larger school: embed a real mark.
  Rng rng(2026);
  XmlDocument big = RandomSchoolDocument(200, rng, 0, 20, 2);
  EncodedXml big_enc = EncodeXml(big, {"exam"}).ValueOrDie();
  TrackedDta big_query = query.Compile(big_enc).ValueOrDie();
  const auto big_base = static_cast<uint32_t>(big_enc.sigma.size());

  TreeSchemeOptions options;
  options.key = {0x5C400L, 0xE4A};
  TreeScheme scheme = TreeScheme::Plan(big_enc.tree, big_enc.tree.labels(),
                                       big_base, big_query.dta, 1, options)
                          .ValueOrDie();
  std::cout << "\n200-student school: " << scheme.RegionsPaired()
            << " mark regions, capacity " << scheme.CapacityBits()
            << " bits, guaranteed distortion <= " << scheme.DistortionBound()
            << " on every f(firstname)\n";

  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
  WeightMap marked = scheme.Embed(big_enc.weights, mark);

  // 4. Produce the watermarked XML the data server will publish.
  XmlDocument marked_doc = ApplyWeights(big, big_enc, marked);
  std::cout << "marked XML differs in "
            << [&] {
                 size_t diff = 0;
                 for (NodeId v = 0; v < big_enc.tree.size(); ++v) {
                   diff += big_enc.weights.GetElem(v) != marked.GetElem(v);
                 }
                 return diff;
               }()
            << " exam value(s), each by exactly 1 point\n";

  // 5. Detection through answers only.
  HonestTreeServer suspect(big_enc.tree, big_enc.tree.labels(), big_base,
                           big_query.dta, 1, marked);
  BitVec detected = scheme.Detect(big_enc.weights, suspect).ValueOrDie();
  std::cout << "detected " << (detected == mark ? "the embedded mark" : "NOTHING")
            << " (" << detected.ToString().substr(0, 32)
            << (detected.size() > 32 ? "..." : "") << ")\n";

  // 6. Show a watermarked snippet.
  std::cout << "\nFirst lines of the watermarked document:\n";
  std::string serialized = SerializeXml(marked_doc);
  std::cout << serialized.substr(0, 420) << "...\n";
  return detected == mark ? 0 : 1;
}
