#include "qpwm/util/random.h"

#include <numeric>

namespace qpwm {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  QPWM_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector: O(n) setup, O(k) draws.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Below(n - i));
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

}  // namespace qpwm
