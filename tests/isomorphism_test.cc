#include <gtest/gtest.h>

#include <numeric>

#include "qpwm/structure/generators.h"
#include "qpwm/structure/isomorphism.h"
#include "qpwm/structure/typemap.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// Relabels a structure's elements by a permutation.
Structure Permute(const Structure& s, const std::vector<ElemId>& perm) {
  Structure out(s.signature(), s.universe_size());
  for (size_t r = 0; r < s.num_relations(); ++r) {
    for (TupleRef t : s.relation(r).tuples()) {
      Tuple mapped;
      for (ElemId e : t) mapped.push_back(perm[e]);
      out.AddTuple(r, std::move(mapped));
    }
  }
  out.Seal();
  return out;
}

TEST(IsomorphismTest, IdenticalStructuresIsomorphic) {
  Structure s = CycleGraph(5, false);
  EXPECT_TRUE(AreIsomorphic(s, {}, s, {}));
}

TEST(IsomorphismTest, DifferentSizesNotIsomorphic) {
  EXPECT_FALSE(AreIsomorphic(CycleGraph(5, false), {}, CycleGraph(6, false), {}));
}

TEST(IsomorphismTest, CycleVsPathNotIsomorphic) {
  EXPECT_FALSE(AreIsomorphic(CycleGraph(5, false), {}, PathGraph(5, false), {}));
}

TEST(IsomorphismTest, PermutedCopiesIsomorphic) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    Structure s = RandomBoundedDegreeGraph(10, 3, 20, false, rng);
    std::vector<ElemId> perm(10);
    std::iota(perm.begin(), perm.end(), 0u);
    rng.Shuffle(perm);
    Structure p = Permute(s, perm);
    EXPECT_TRUE(AreIsomorphic(s, {}, p, {}));
  }
}

TEST(IsomorphismTest, DistinguishedElementsMatter) {
  // A path 0-1-2: endpoint vs midpoint are distinguished apart.
  Structure s = PathGraph(3, true);
  EXPECT_FALSE(AreIsomorphic(s, Tuple{0}, s, Tuple{1}));
  EXPECT_TRUE(AreIsomorphic(s, Tuple{0}, s, Tuple{2}));  // both endpoints
}

TEST(IsomorphismTest, DistinguishedOrderMatters) {
  Structure s = PathGraph(2, false);  // edge 0 -> 1
  EXPECT_FALSE(AreIsomorphic(s, Tuple{0, 1}, s, Tuple{1, 0}));
  EXPECT_TRUE(AreIsomorphic(s, Tuple{0, 1}, s, Tuple{0, 1}));
}

TEST(IsomorphismTest, PermutedCopiesWithDistinguished) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    Structure s = RandomBoundedDegreeGraph(9, 3, 16, false, rng);
    std::vector<ElemId> perm(9);
    std::iota(perm.begin(), perm.end(), 0u);
    rng.Shuffle(perm);
    Structure p = Permute(s, perm);
    ElemId c = static_cast<ElemId>(rng.Below(9));
    EXPECT_TRUE(AreIsomorphic(s, Tuple{c}, p, Tuple{perm[c]}));
  }
}

TEST(IsomorphismTest, StarWithManyTwins) {
  // Star with 12 leaves: interchangeable leaves exercise the twin pruning.
  auto star = [](ElemId center, size_t leaves) {
    Structure s(GraphSignature(), leaves + 1);
    for (ElemId i = 0; i < leaves; ++i) {
      ElemId leaf = i >= center ? i + 1 : i;
      s.AddTuple(size_t{0}, Tuple{center, leaf});
    }
    s.Seal();
    return s;
  };
  Structure a = star(0, 12);
  Structure b = star(6, 12);
  EXPECT_TRUE(AreIsomorphic(a, {}, b, {}));
  EXPECT_TRUE(AreIsomorphic(a, Tuple{0}, b, Tuple{6}));
  EXPECT_FALSE(AreIsomorphic(a, Tuple{0}, b, Tuple{0}));  // center vs leaf
}

TEST(IsomorphismTest, DirectedEdgeOrientation) {
  Structure fwd(GraphSignature(), 2), pair(GraphSignature(), 2);
  fwd.AddTuple(size_t{0}, Tuple{0, 1});
  fwd.Seal();
  pair.AddTuple(size_t{0}, Tuple{0, 1});
  pair.AddTuple(size_t{0}, Tuple{1, 0});
  pair.Seal();
  EXPECT_FALSE(AreIsomorphic(fwd, {}, pair, {}));
}

TEST(IsomorphismTest, TernaryRelation) {
  Signature sig;
  sig.AddRelation("T", 3);
  Structure a(sig, 3), b(sig, 3);
  a.AddTuple(size_t{0}, Tuple{0, 1, 2});
  a.Seal();
  b.AddTuple(size_t{0}, Tuple{2, 0, 1});
  b.Seal();
  EXPECT_TRUE(AreIsomorphic(a, {}, b, {}));
  // Positions within the tuple are not interchangeable:
  EXPECT_FALSE(AreIsomorphic(a, Tuple{0}, b, Tuple{0}));
  EXPECT_TRUE(AreIsomorphic(a, Tuple{0}, b, Tuple{2}));
}

TEST(IsomorphismTest, CanonicalFormIsInvariant) {
  Rng rng(31);
  Structure s = RandomBoundedDegreeGraph(8, 3, 14, true, rng);
  std::vector<ElemId> perm(8);
  std::iota(perm.begin(), perm.end(), 0u);
  rng.Shuffle(perm);
  Structure p = Permute(s, perm);
  EXPECT_EQ(CanonicalForm(s, {}), CanonicalForm(p, {}));
}

// --- NeighborhoodTyper ---------------------------------------------------

TEST(TyperTest, CycleHasOneType) {
  Structure s = CycleGraph(12, true);
  NeighborhoodTyper typer(s, 1);
  uint32_t t0 = typer.TypeOf(Tuple{0});
  for (ElemId e = 1; e < 12; ++e) EXPECT_EQ(typer.TypeOf(Tuple{e}), t0);
  EXPECT_EQ(typer.NumTypes(), 1u);
}

TEST(TyperTest, PathEndpointsDiffer) {
  Structure s = PathGraph(8, true);
  NeighborhoodTyper typer(s, 1);
  // endpoint, near-endpoint, interior = 3 types at radius 1.
  for (ElemId e = 0; e < 8; ++e) typer.TypeOf(Tuple{e});
  EXPECT_EQ(typer.NumTypes(), 2u);  // radius-1: endpoint vs interior
  EXPECT_EQ(typer.TypeOf(Tuple{0}), typer.TypeOf(Tuple{7}));
  EXPECT_EQ(typer.TypeOf(Tuple{3}), typer.TypeOf(Tuple{4}));
  EXPECT_NE(typer.TypeOf(Tuple{0}), typer.TypeOf(Tuple{3}));
}

TEST(TyperTest, Figure1TypesMatchPaper) {
  // The paper: type(a)=type(b), type(d)=type(e), type(c)=type(f), 3 types.
  Structure s = Figure1Instance();
  NeighborhoodTyper typer(s, 1);
  const ElemId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5;
  for (ElemId v = 0; v < 6; ++v) typer.TypeOf(Tuple{v});
  EXPECT_EQ(typer.NumTypes(), 3u);
  EXPECT_EQ(typer.TypeOf(Tuple{a}), typer.TypeOf(Tuple{b}));
  EXPECT_EQ(typer.TypeOf(Tuple{d}), typer.TypeOf(Tuple{e}));
  EXPECT_EQ(typer.TypeOf(Tuple{c}), typer.TypeOf(Tuple{f}));
  EXPECT_NE(typer.TypeOf(Tuple{a}), typer.TypeOf(Tuple{c}));
  EXPECT_NE(typer.TypeOf(Tuple{a}), typer.TypeOf(Tuple{d}));
}

TEST(TyperTest, RepresentativeIsFirstSeen) {
  Structure s = PathGraph(5, true);
  NeighborhoodTyper typer(s, 1);
  uint32_t t = typer.TypeOf(Tuple{0});
  EXPECT_EQ(typer.Representative(t), Tuple{0});
}

TEST(TyperTest, GridCornerEdgeInteriorTypes) {
  // A 5x5 grid at radius 1 has corner, edge and interior vertex classes —
  // with the H/V relations distinguishing orientation, expect the 9 distinct
  // (row-class x column-class) combinations.
  Structure g = GridGraph(5, 5);
  NeighborhoodTyper typer(g, 1);
  for (ElemId e = 0; e < 25; ++e) typer.TypeOf(Tuple{e});
  EXPECT_EQ(typer.NumTypes(), 9u);
  // Opposite corners match; corner != interior.
  EXPECT_EQ(typer.TypeOf(Tuple{0}), typer.TypeOf(Tuple{0}));
  EXPECT_NE(typer.TypeOf(Tuple{0}), typer.TypeOf(Tuple{12}));
  // All four interior-center vertices share a type.
  EXPECT_EQ(typer.TypeOf(Tuple{12}), typer.TypeOf(Tuple{12}));
  EXPECT_EQ(typer.TypeOf(Tuple{6}), typer.TypeOf(Tuple{6}));
}

TEST(TyperTest, PairTuplesTyped) {
  // Typing 2-tuples: (endpoint, neighbor) vs (interior, neighbor) differ.
  Structure s = PathGraph(8, true);
  NeighborhoodTyper typer(s, 1);
  uint32_t end_pair = typer.TypeOf(Tuple{0, 1});
  uint32_t mid_pair = typer.TypeOf(Tuple{3, 4});
  uint32_t far_pair = typer.TypeOf(Tuple{0, 5});
  EXPECT_NE(end_pair, mid_pair);
  EXPECT_NE(end_pair, far_pair);
  // Symmetric positions agree.
  EXPECT_EQ(typer.TypeOf(Tuple{7, 6}), end_pair);
}

TEST(TyperTest, RadiusZeroSeesOnlyLoops) {
  Structure s = PathGraph(5, true);
  NeighborhoodTyper typer(s, 0);
  for (ElemId e = 0; e < 5; ++e) typer.TypeOf(Tuple{e});
  EXPECT_EQ(typer.NumTypes(), 1u);
}

}  // namespace
}  // namespace qpwm
