#include "qpwm/logic/multiquery.h"

#include <algorithm>

#include "qpwm/util/check.h"
#include "qpwm/util/str.h"

namespace qpwm {

UnionQuery::UnionQuery(std::vector<const ParametricQuery*> queries)
    : queries_(std::move(queries)) {
  QPWM_CHECK(!queries_.empty());
  s_ = queries_[0]->ResultArity();
  for (const ParametricQuery* q : queries_) {
    QPWM_CHECK_EQ(q->ResultArity(), s_);
    max_r_ = std::max(max_r_, q->ParamArity());
  }
}

std::vector<Tuple> UnionQuery::Evaluate(const Structure& g, const Tuple& params) const {
  QPWM_CHECK_EQ(params.size(), ParamArity());
  const ElemId selector = params[0];
  if (selector >= queries_.size()) return {};  // out-of-range selector: empty
  const ParametricQuery& q = *queries_[selector];
  Tuple inner(params.begin() + 1, params.begin() + 1 + q.ParamArity());
  return q.Evaluate(g, inner);
}

std::optional<uint32_t> UnionQuery::LocalityRank() const {
  uint32_t worst = 0;
  for (const ParametricQuery* q : queries_) {
    auto rank = q->LocalityRank();
    if (!rank.has_value()) return std::nullopt;
    worst = std::max(worst, *rank);
  }
  return worst;
}

std::string UnionQuery::Name() const {
  std::vector<std::string> names;
  for (const ParametricQuery* q : queries_) names.push_back(q->Name());
  return "union{" + Join(names, "; ") + "}";
}

std::vector<Tuple> UnionQuery::Domain(
    const std::vector<std::vector<Tuple>>& domains) const {
  QPWM_CHECK_EQ(domains.size(), queries_.size());
  // qpwm-lint: allow(legacy-tuple-vector) — building the returned answer set (API contract)
  std::vector<Tuple> out;
  for (size_t i = 0; i < queries_.size(); ++i) {
    for (const Tuple& inner : domains[i]) {
      QPWM_CHECK_EQ(inner.size(), queries_[i]->ParamArity());
      Tuple padded;
      padded.reserve(1 + max_r_);
      padded.push_back(static_cast<ElemId>(i));
      padded.insert(padded.end(), inner.begin(), inner.end());
      padded.resize(1 + max_r_, 0);
      out.push_back(std::move(padded));
    }
  }
  return out;
}

std::vector<Tuple> UnionQuery::FullDomain(const Structure& g) const {
  std::vector<std::vector<Tuple>> domains;
  domains.reserve(queries_.size());
  for (const ParametricQuery* q : queries_) {
    domains.push_back(AllParams(g, q->ParamArity()));
  }
  return Domain(domains);
}

// qpwm-lint: allow(legacy-tuple-vector) — sink parameter; the query owns its group domain
GroupedQuery::GroupedQuery(const ParametricQuery& inner, std::vector<Tuple> domain,
                           GroupFn group_of)
    : inner_(&inner), domain_(std::move(domain)), group_of_(std::move(group_of)) {}

std::vector<Tuple> GroupedQuery::Evaluate(const Structure& g,
                                          const Tuple& params) const {
  const uint64_t group = group_of_(g, params);
  // qpwm-lint: allow(legacy-tuple-vector) — building the returned answer set (API contract)
  std::vector<Tuple> out;
  for (const Tuple& member : domain_) {
    if (group_of_(g, member) != group) continue;
    for (Tuple& t : inner_->Evaluate(g, member)) out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<uint32_t> GroupedQuery::LocalityRank() const {
  // Grouping by an arbitrary function is not local in general; callers that
  // group by a local property can override via CallbackQuery instead.
  return std::nullopt;
}

}  // namespace qpwm
