// Invariant-checking macros for programmer errors (not recoverable errors —
// those use Status/Result). Enabled in all build types: the algorithms here
// back correctness proofs, so silent invariant drift is worse than an abort.
#ifndef QPWM_UTIL_CHECK_H_
#define QPWM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace qpwm::internal {

[[noreturn]] inline void CheckFail(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "QPWM_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace qpwm::internal

/// Aborts with file/line context if `cond` is false.
#define QPWM_CHECK(cond)                                          \
  do {                                                            \
    if (!(cond)) ::qpwm::internal::CheckFail(__FILE__, __LINE__, #cond); \
  } while (false)

/// Convenience comparison checks.
#define QPWM_CHECK_EQ(a, b) QPWM_CHECK((a) == (b))
#define QPWM_CHECK_NE(a, b) QPWM_CHECK((a) != (b))
#define QPWM_CHECK_LT(a, b) QPWM_CHECK((a) < (b))
#define QPWM_CHECK_LE(a, b) QPWM_CHECK((a) <= (b))
#define QPWM_CHECK_GT(a, b) QPWM_CHECK((a) > (b))
#define QPWM_CHECK_GE(a, b) QPWM_CHECK((a) >= (b))

#endif  // QPWM_UTIL_CHECK_H_
