file(REMOVE_RECURSE
  "CMakeFiles/qpwm_tree.dir/automaton.cc.o"
  "CMakeFiles/qpwm_tree.dir/automaton.cc.o.d"
  "CMakeFiles/qpwm_tree.dir/bintree.cc.o"
  "CMakeFiles/qpwm_tree.dir/bintree.cc.o.d"
  "CMakeFiles/qpwm_tree.dir/decomposition.cc.o"
  "CMakeFiles/qpwm_tree.dir/decomposition.cc.o.d"
  "CMakeFiles/qpwm_tree.dir/mso.cc.o"
  "CMakeFiles/qpwm_tree.dir/mso.cc.o.d"
  "CMakeFiles/qpwm_tree.dir/query.cc.o"
  "CMakeFiles/qpwm_tree.dir/query.cc.o.d"
  "libqpwm_tree.a"
  "libqpwm_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
