# Empty compiler generated dependencies file for qpwm_util.
# This may be replaced when dependencies are built.
