# Empty compiler generated dependencies file for bench_baseline_ak.
# This may be replaced when dependencies are built.
