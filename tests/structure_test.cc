#include <gtest/gtest.h>

#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/generators.h"
#include "qpwm/structure/neighborhood.h"
#include "qpwm/structure/structure.h"
#include "qpwm/structure/weighted.h"

namespace qpwm {
namespace {

Structure TinyGraph() {
  Structure s(GraphSignature(), 4);
  s.AddTuple(size_t{0}, Tuple{0, 1});
  s.AddTuple(size_t{0}, Tuple{1, 2});
  s.Seal();
  return s;
}

// --- Signature / Structure ----------------------------------------------

TEST(SignatureTest, FindByName) {
  Signature sig;
  sig.AddRelation("R", 2);
  sig.AddRelation("S", 3);
  EXPECT_EQ(sig.Find("R").ValueOrDie(), 0u);
  EXPECT_EQ(sig.Find("S").ValueOrDie(), 1u);
  EXPECT_FALSE(sig.Find("T").ok());
}

TEST(SignatureTest, Equality) {
  Signature a, b;
  a.AddRelation("R", 2);
  b.AddRelation("R", 2);
  EXPECT_TRUE(a == b);
  b.AddRelation("S", 1);
  EXPECT_FALSE(a == b);
}

TEST(StructureTest, AddAndContains) {
  Structure s = TinyGraph();
  EXPECT_EQ(s.universe_size(), 4u);
  EXPECT_TRUE(s.relation("E").Contains(Tuple{0, 1}));
  EXPECT_FALSE(s.relation("E").Contains(Tuple{1, 0}));
  EXPECT_EQ(s.TotalTuples(), 2u);
}

TEST(StructureTest, DeduplicatesTuples) {
  Structure s(GraphSignature(), 3);
  s.AddTuple(size_t{0}, Tuple{0, 1});
  s.AddTuple(size_t{0}, Tuple{0, 1});
  EXPECT_EQ(s.relation(size_t{0}).size(), 1u);
}

TEST(StructureTest, ElementNames) {
  Structure s = TinyGraph();
  s.SetElementName(2, "charlie");
  EXPECT_EQ(s.ElementName(2), "charlie");
  EXPECT_EQ(s.FindElement("charlie").ValueOrDie(), 2u);
  EXPECT_FALSE(s.FindElement("nobody").ok());
}

// Regression (found by the stamp-audit lint rule): renaming an element is a
// mutation and must bump the generation, or pointer-keyed caches keyed on
// (pointer, generation) keep serving the pre-rename identity.
TEST(StructureTest, SetElementNameBumpsGeneration) {
  Structure s = TinyGraph();
  const uint64_t before = s.generation();
  s.SetElementName(1, "bob");
  EXPECT_GT(s.generation(), before);
}

TEST(IncidenceIndexTest, ListsTuplesPerElement) {
  Structure s = TinyGraph();
  IncidenceIndex idx(s);
  EXPECT_EQ(idx.Incident(0).size(), 1u);
  EXPECT_EQ(idx.Incident(1).size(), 2u);
  EXPECT_EQ(idx.Incident(3).size(), 0u);
}

TEST(IncidenceIndexTest, RepeatedElementRegisteredOnce) {
  Structure s(GraphSignature(), 2);
  s.AddTuple(size_t{0}, Tuple{1, 1});
  s.Seal();
  IncidenceIndex idx(s);
  EXPECT_EQ(idx.Incident(1).size(), 1u);
}

// --- WeightMap ---------------------------------------------------------------

TEST(WeightMapTest, DenseElementWeights) {
  WeightMap w(1, 5);
  w.SetElem(2, 10);
  w.AddElem(2, -3);
  EXPECT_EQ(w.GetElem(2), 7);
  EXPECT_EQ(w.Get(Tuple{2}), 7);
  EXPECT_EQ(w.GetElem(0), 0);
}

TEST(WeightMapTest, SparseTupleWeights) {
  WeightMap w(2, 5);
  w.Set(Tuple{1, 2}, 4);
  w.Add(Tuple{1, 2}, 1);
  EXPECT_EQ(w.Get(Tuple{1, 2}), 5);
  EXPECT_EQ(w.Get(Tuple{2, 1}), 0);
}

TEST(WeightMapTest, LocalDistortion) {
  WeightMap a(1, 4), b(1, 4);
  a.SetElem(0, 10);
  b.SetElem(0, 12);
  b.SetElem(3, -1);
  EXPECT_EQ(a.LocalDistortion(b), 2);
  EXPECT_EQ(b.LocalDistortion(a), 2);
  EXPECT_FALSE(a == b);
  b.SetElem(0, 10);
  b.SetElem(3, 0);
  EXPECT_TRUE(a == b);
}

TEST(WeightMapTest, ForEachVisitsAll) {
  WeightMap w(1, 3);
  w.SetElem(1, 5);
  Weight total = 0;
  size_t count = 0;
  w.ForEach([&](const Tuple&, Weight value) {
    total += value;
    ++count;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(total, 5);
}

// --- Gaifman -------------------------------------------------------------------

TEST(GaifmanTest, EdgesFromTuples) {
  Structure s = TinyGraph();
  GaifmanGraph g(s);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(GaifmanTest, HigherArityTuplesClique) {
  Signature sig;
  sig.AddRelation("T", 3);
  Structure s(sig, 4);
  s.AddTuple(size_t{0}, Tuple{0, 1, 2});
  s.Seal();
  GaifmanGraph g(s);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
}

TEST(GaifmanTest, Distances) {
  GaifmanGraph g(PathGraph(5, false));
  EXPECT_EQ(g.Distance(0, 0), 0u);
  EXPECT_EQ(g.Distance(0, 4), 4u);
  EXPECT_EQ(g.Distance(4, 0), 4u);  // Gaifman graph is undirected
}

TEST(GaifmanTest, DisconnectedDistanceIsInfinite) {
  Structure s = TinyGraph();  // element 3 isolated
  GaifmanGraph g(s);
  EXPECT_EQ(g.Distance(0, 3), UINT32_MAX);
}

TEST(GaifmanTest, SphereGrowsWithRadius) {
  GaifmanGraph g(PathGraph(9, false));
  EXPECT_EQ(g.Sphere(ElemId{4}, 0), (std::vector<ElemId>{4}));
  EXPECT_EQ(g.Sphere(ElemId{4}, 1), (std::vector<ElemId>{3, 4, 5}));
  EXPECT_EQ(g.Sphere(ElemId{4}, 2).size(), 5u);
}

TEST(GaifmanTest, TupleSphereIsUnion) {
  GaifmanGraph g(PathGraph(9, false));
  auto sphere = g.Sphere(Tuple{0, 8}, 1);
  EXPECT_EQ(sphere, (std::vector<ElemId>{0, 1, 7, 8}));
}

// --- Generators ------------------------------------------------------------------

TEST(GeneratorsTest, RandomBoundedDegreeRespectsBound) {
  Rng rng(42);
  for (size_t k : {2, 3, 5}) {
    Structure s = RandomBoundedDegreeGraph(200, k, 600, false, rng);
    GaifmanGraph g(s);
    EXPECT_LE(g.MaxDegree(), k);
  }
}

TEST(GeneratorsTest, CycleDegreeTwo) {
  GaifmanGraph g(CycleGraph(10, false));
  for (ElemId e = 0; e < 10; ++e) EXPECT_EQ(g.Degree(e), 2u);
}

TEST(GeneratorsTest, GridShape) {
  Structure s = GridGraph(4, 3);
  EXPECT_EQ(s.universe_size(), 12u);
  EXPECT_EQ(s.relation("H").size(), 9u);   // 3 per row x 3 rows
  EXPECT_EQ(s.relation("V").size(), 8u);   // 4 per column pair x 2
  GaifmanGraph g(s);
  EXPECT_EQ(g.MaxDegree(), 4u);
}

TEST(GeneratorsTest, ShatterInstanceShape) {
  Structure s = ShatterInstance(4);
  EXPECT_EQ(s.universe_size(), 16u + 4u);
  // Vertex i is linked to the bits of i: vertex 5 = 0b101 -> weights 0 and 2.
  EXPECT_TRUE(s.relation("E").Contains(Tuple{5, 16}));
  EXPECT_FALSE(s.relation("E").Contains(Tuple{5, 17}));
  EXPECT_TRUE(s.relation("E").Contains(Tuple{5, 18}));
}

TEST(GeneratorsTest, HalfShatterInstanceShape) {
  Structure s = HalfShatterInstance(6);
  // 2^3 params + vertex a + 6 weights.
  EXPECT_EQ(s.universe_size(), 8u + 1u + 6u);
  ElemId a = 8;
  for (ElemId j = 0; j < 6; ++j) {
    EXPECT_TRUE(s.relation("E").Contains(Tuple{a, static_cast<ElemId>(9 + j)}));
  }
}

TEST(GeneratorsTest, Figure1InstanceMatchesPaperFacts) {
  Structure s = Figure1Instance();
  ASSERT_EQ(s.universe_size(), 6u);
  const ElemId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5;
  const Relation& r = s.relation("R");
  // W_a = W_b = {d, e}; W_c = {d}; W_f = {e}; W_d = {a}; W_e = {b}.
  EXPECT_TRUE(r.Contains(Tuple{a, d}) && r.Contains(Tuple{a, e}));
  EXPECT_TRUE(r.Contains(Tuple{b, d}) && r.Contains(Tuple{b, e}));
  EXPECT_TRUE(r.Contains(Tuple{c, d}) && !r.Contains(Tuple{c, e}));
  EXPECT_TRUE(r.Contains(Tuple{f, e}) && !r.Contains(Tuple{f, d}));
  EXPECT_TRUE(r.Contains(Tuple{d, a}) && r.Contains(Tuple{e, b}));
}

TEST(GeneratorsTest, RandomWeightsInRange) {
  Rng rng(1);
  Structure s = CycleGraph(20, false);
  WeightMap w = RandomWeights(s, 100, 200, rng);
  for (ElemId e = 0; e < 20; ++e) {
    EXPECT_GE(w.GetElem(e), 100);
    EXPECT_LE(w.GetElem(e), 200);
  }
}

// --- Neighborhood ------------------------------------------------------------------

TEST(NeighborhoodTest, ExtractPathCenter) {
  Structure s = PathGraph(7, false);
  GaifmanGraph g(s);
  IncidenceIndex idx(s);
  Neighborhood nb = ExtractNeighborhood(s, g, idx, Tuple{3}, 1);
  EXPECT_EQ(nb.local.universe_size(), 3u);  // {2, 3, 4}
  EXPECT_EQ(nb.global_ids, (std::vector<ElemId>{2, 3, 4}));
  // Tuples fully inside: (2,3) and (3,4).
  EXPECT_EQ(nb.local.relation(size_t{0}).size(), 2u);
  ASSERT_EQ(nb.distinguished.size(), 1u);
  EXPECT_EQ(nb.global_ids[nb.distinguished[0]], 3u);
}

TEST(NeighborhoodTest, BoundaryTuplesExcluded) {
  Structure s = PathGraph(4, false);
  GaifmanGraph g(s);
  IncidenceIndex idx(s);
  Neighborhood nb = ExtractNeighborhood(s, g, idx, Tuple{0}, 1);
  // Sphere {0, 1}; only tuple (0,1) is inside — (1,2) crosses the boundary.
  EXPECT_EQ(nb.local.universe_size(), 2u);
  EXPECT_EQ(nb.local.relation(size_t{0}).size(), 1u);
}

}  // namespace
}  // namespace qpwm
