// Status / Result error model (Arrow / RocksDB idiom): recoverable errors are
// returned as values, never thrown. Programmer errors abort via QPWM_CHECK.
#ifndef QPWM_UTIL_STATUS_H_
#define QPWM_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace qpwm {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kCapacityExhausted,
  kParseError,
  kDetectionFailed,
  kInternal,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a context message.
///
/// Cheap to copy in the OK case (empty message). Use the factory functions
/// (`Status::OK()`, `Status::InvalidArgument(...)`) rather than the raw
/// constructor.
///
/// The class-level [[nodiscard]] makes the compiler reject any call that
/// drops a by-value Status; qpwm_lint additionally requires the attribute on
/// every declaration so the contract stays visible at each API.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status CapacityExhausted(std::string msg) {
    return Status(StatusCode::kCapacityExhausted, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status DetectionFailed(std::string msg) {
    return Status(StatusCode::kDetectionFailed, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status.
///
/// `ValueOrDie()` aborts on error with the status message; prefer checking
/// `ok()` first on paths where the error is expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}                // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}        // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value, aborting the process if this holds an error.
  T ValueOrDie() &&;
  const T& ValueOrDie() const&;

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

[[noreturn]] void DieOnBadResult(const Status& status);

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) DieOnBadResult(status_);
  return std::move(*value_);
}

template <typename T>
const T& Result<T>::ValueOrDie() const& {
  if (!ok()) DieOnBadResult(status_);
  return *value_;
}

/// Propagates a non-OK Status from an expression to the caller.
#define QPWM_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::qpwm::Status _qpwm_status = (expr);          \
    if (!_qpwm_status.ok()) return _qpwm_status;   \
  } while (false)

}  // namespace qpwm

#endif  // QPWM_UTIL_STATUS_H_
