// Pass 2, cross-TU rule families for qpwm_lint: view-escape, lock-discipline,
// stamp-audit and interprocedural discarded-Status. Each rule consumes the
// analyzed file's own symbols (with live token spans) plus the merged,
// finalized project context, so a guarded member declared in a header is
// enforced in every .cc that touches it and a stamp bump buried two calls
// deep still counts. See lint.h for the rule catalog and docs/
// static-analysis.md for the architecture.
#include <string>

#include "internal.h"
#include "lint.h"

namespace qpwm::lint::internal {
namespace {

// Owner types whose function-local instances die at end of scope; a view
// rooted at one must not leave the function (the PR-3 CLI bug shape).
bool IsOwnerType(const std::string& s) {
  return s == "Structure" || s == "Relation" || s == "WeightMap" ||
         s == "QueryIndex";
}

// Accessors known to hand back views into the receiver's storage.
bool IsViewAccessor(const std::string& s) {
  return s == "tuples" || s == "tuple";
}

bool MentionsViewType(const std::string& type_joined,
                      const std::set<std::string>& view_types) {
  size_t start = 0;
  while (start <= type_joined.size()) {
    size_t end = type_joined.find(' ', start);
    if (end == std::string::npos) end = type_joined.size();
    if (end > start && view_types.count(type_joined.substr(start, end - start))) {
      return true;
    }
    if (end == type_joined.size()) break;
    start = end + 1;
  }
  return false;
}

bool MentionsViewType(const std::vector<std::string>& tokens,
                      const std::set<std::string>& view_types) {
  for (const std::string& tok : tokens) {
    if (view_types.count(tok)) return true;
  }
  return false;
}

std::string LastNameComponent(const std::string& qualified) {
  const size_t sep = qualified.rfind("::");
  return sep == std::string::npos ? qualified : qualified.substr(sep + 2);
}

std::string FnKey(const FunctionSym& fn) {
  return fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
}

// Function-local owners: by-value owner-typed parameters and local
// declarations (`Structure g;` / `Structure g = ...;`). References and
// pointers do not own, so they never match.
std::set<std::string> OwnerLocals(const std::vector<Token>& t,
                                  const FunctionSym& fn) {
  std::set<std::string> locals;
  auto scan_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end && i < t.size(); ++i) {
      if (!IsIdent(t, i) || !IsOwnerType(t[i].text)) continue;
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->" ||
                    t[i - 1].text == "::" || t[i - 1].text == "<")) {
        continue;  // qualified use or template argument
      }
      size_t j = i + 1;
      if (j < end && (t[j].text == "&" || t[j].text == "*" ||
                      t[j].text == ">" || t[j].text == ">>")) {
        continue;  // reference/pointer/template-arg: not an owned local
      }
      if (IsIdent(t, j) && !IsKeyword(t[j].text)) locals.insert(t[j].text);
    }
  };
  if (fn.params_begin != kNoBody && fn.params_end != kNoBody) {
    scan_range(fn.params_begin + 1, fn.params_end);
  }
  if (fn.body_begin != kNoBody && fn.body_end != kNoBody) {
    scan_range(fn.body_begin + 1, fn.body_end);
  }
  return locals;
}

// Identifiers inside a lock constructor's argument list; `lock(shard.mu)`
// contributes both `shard` and `mu`, so guard names match by either handle.
void CollectLockArgs(const std::vector<Token>& t, size_t open, size_t close,
                     std::set<std::string>& held) {
  for (size_t j = open + 1; j + 1 < close; ++j) {
    if (IsIdent(t, j) && !IsKeyword(t[j].text)) held.insert(t[j].text);
  }
}

}  // namespace

// lifetime: (a) a view-typed data member without QPWM_VIEW_OF, (b) a view
// returned rooted at a function-local owner, (c) a returned lambda that
// captures by reference.
void CheckViewEscape(const FileScan& scan, const FileSymbols& syms,
                     const LintContext& ctx, std::vector<Finding>& out) {
  const std::vector<Token>& t = scan.tokens;

  for (const ClassSym& cls : syms.classes) {
    bool class_is_view = cls.is_view_type;
    const auto merged = ctx.classes.find(cls.name);
    if (merged != ctx.classes.end() && merged->second.is_view_type) {
      class_is_view = true;
    }
    if (class_is_view || ctx.view_types.count(LastNameComponent(cls.name))) {
      continue;  // a view of a view adds no lifetime edge
    }
    for (const MemberSym& m : cls.members) {
      if (m.is_static || m.has_view_of) continue;
      if (!MentionsViewType(m.type, ctx.view_types)) continue;
      Report(scan, m.line, kViewEscape,
             "member '" + m.name + "' of '" + cls.name + "' has view type (" +
                 m.type + ") but no QPWM_VIEW_OF(owner) naming what it " +
                 "points into; a stored view that outlives its owner " +
                 "dangles (PR-3 bug class)",
             out);
    }
  }

  for (const FunctionSym& fn : syms.functions) {
    if (fn.body_begin == kNoBody || fn.body_end == kNoBody) continue;
    const std::set<std::string> owners = OwnerLocals(t, fn);
    const bool returns_view = MentionsViewType(fn.return_tokens, ctx.view_types);
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (!Is(t, i, "return")) continue;
      if (Is(t, i + 1, "[")) {  // returned lambda: reference captures escape
        const size_t caps_end = SkipBalanced(t, i + 1);
        if (caps_end == kNpos) continue;
        for (size_t j = i + 2; j + 1 < caps_end; ++j) {
          if (t[j].text == "&") {
            Report(scan, t[i].line, kViewEscape,
                   "function '" + FnKey(fn) + "' returns a lambda capturing " +
                       "by reference; the captured state must outlive every " +
                       "call site (PR-3 bug class)",
                   out);
            break;
          }
        }
        continue;
      }
      if (owners.empty()) continue;
      if (!IsIdent(t, i + 1) || owners.count(t[i + 1].text) == 0) continue;
      // Walk the postfix chain to the last member call before `;`.
      std::string last_call;
      size_t j = i + 2;
      while (j < fn.body_end && !Is(t, j, ";")) {
        if ((Is(t, j, ".") || Is(t, j, "->")) && IsIdent(t, j + 1)) {
          if (Is(t, j + 2, "(")) last_call = t[j + 1].text;
          j += 2;
          continue;
        }
        if (Is(t, j, "(") || Is(t, j, "[")) {
          const size_t c = SkipBalanced(t, j);
          if (c == kNpos) break;
          j = c;
          continue;
        }
        break;
      }
      if (returns_view || IsViewAccessor(last_call)) {
        Report(scan, t[i].line, kViewEscape,
               "function '" + FnKey(fn) + "' returns a view rooted at " +
                   "function-local owner '" + t[i + 1].text +
                   "', which dies at end of scope (PR-3 bug class)",
               out);
      }
    }
  }
}

// parallel hygiene: guarded members must be touched under their mutex (or
// from a QPWM_REQUIRES method); mutex-owning classes should annotate.
void CheckLockDiscipline(const FileScan& scan, const FileSymbols& syms,
                         const LintContext& ctx, std::vector<Finding>& out) {
  const std::vector<Token>& t = scan.tokens;

  // (b) advisory shape: a mutex with nothing declared under it.
  for (const ClassSym& cls : syms.classes) {
    bool has_mutex = false, has_state = false, has_guard = false;
    for (const MemberSym& m : cls.members) {
      if (m.is_static) continue;
      if (m.is_mutex) has_mutex = true;
      else if (!m.is_atomic) has_state = true;
      if (!m.guarded_by.empty()) has_guard = true;
    }
    if (!has_guard) {  // QPWM_REQUIRES methods count as lock discipline too
      const std::string prefix = cls.name + "::";
      for (auto it = ctx.functions.lower_bound(prefix);
           it != ctx.functions.end() && it->first.compare(0, prefix.size(),
                                                          prefix) == 0;
           ++it) {
        if (!it->second.requires_mutexes.empty()) {
          has_guard = true;
          break;
        }
      }
    }
    if (has_mutex && has_state && !has_guard) {
      Report(scan, cls.line, kLockDiscipline,
             "class '" + cls.name + "' owns a mutex but annotates no member " +
                 "with QPWM_GUARDED_BY; declare what the mutex protects " +
                 "(or allowlist with the reason)",
             out);
    }
  }

  // (a) guarded member touched without its mutex.
  for (const FunctionSym& fn : syms.functions) {
    if (fn.body_begin == kNoBody || fn.body_end == kNoBody) continue;
    if (fn.class_name.empty() || fn.is_ctor_or_dtor) continue;

    std::map<std::string, std::string> own;     // bare member -> mutex
    std::map<std::string, std::string> nested;  // dotted member -> mutex
    const auto self = ctx.classes.find(fn.class_name);
    if (self != ctx.classes.end()) {
      for (const MemberSym& m : self->second.members) {
        if (!m.guarded_by.empty()) own[m.name] = m.guarded_by;
      }
    }
    const std::string prefix = fn.class_name + "::";
    for (auto it = ctx.classes.lower_bound(prefix);
         it != ctx.classes.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      for (const MemberSym& m : it->second.members) {
        if (!m.guarded_by.empty()) nested[m.name] = m.guarded_by;
      }
    }
    if (own.empty() && nested.empty()) continue;

    std::set<std::string> held;
    const auto merged = ctx.functions.find(FnKey(fn));
    if (merged != ctx.functions.end()) {
      held.insert(merged->second.requires_mutexes.begin(),
                  merged->second.requires_mutexes.end());
    }
    held.insert(fn.requires_mutexes.begin(), fn.requires_mutexes.end());
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (!IsIdent(t, i)) continue;
      const std::string& x = t[i].text;
      const bool raii = x == "lock_guard" || x == "unique_lock" ||
                        x == "scoped_lock" || x == "MutexLock";
      if (raii) {
        size_t j = i + 1;
        if (Is(t, j, "<")) {
          j = SkipAngles(t, j);
          if (j == kNpos) continue;
        }
        if (IsIdent(t, j)) ++j;  // the lock variable's name
        if (Is(t, j, "(")) {
          const size_t close = SkipBalanced(t, j);
          if (close != kNpos) CollectLockArgs(t, j, close, held);
        }
        continue;
      }
      if (Is(t, i + 1, ".") && Is(t, i + 2, "lock") && Is(t, i + 3, "(")) {
        held.insert(x);  // manual mu.lock()
      }
    }

    std::set<std::string> reported;
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (!IsIdent(t, i)) continue;
      const std::string& name = t[i].text;
      const std::string prev = i > 0 ? t[i - 1].text : "";
      std::string mutex;
      if (own.count(name) && prev != "." && prev != "->" && prev != "::") {
        mutex = own[name];
      } else if (nested.count(name) && (prev == "." || prev == "->")) {
        mutex = nested[name];
      } else {
        continue;
      }
      if (held.count(mutex) || reported.count(name)) continue;
      reported.insert(name);
      Report(scan, t[i].line, kLockDiscipline,
             "method '" + FnKey(fn) + "' touches '" + name +
                 "' (QPWM_GUARDED_BY(" + mutex + ")) without holding '" +
                 mutex + "'; lock it or annotate the method QPWM_REQUIRES(" +
                 mutex + ")",
             out);
    }
  }
}

// lifetime/identity: mutating methods of stamp-carrying classes must bump.
void CheckStampAudit(const FileScan& scan, const FileSymbols& syms,
                     const LintContext& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "emplace", "insert",  "erase",
      "clear",     "resize",       "pop_back", "assign", "reserve",
      "merge",     "swap",         "store",    "Add",    "Seal",
      "SetTuplesUnchecked", "SwapFlatUnchecked", "ClearKeepCapacity"};
  static const std::set<std::string> kAssignOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="};
  const std::vector<Token>& t = scan.tokens;

  for (const FunctionSym& fn : syms.functions) {
    if (fn.body_begin == kNoBody || fn.body_end == kNoBody) continue;
    if (fn.class_name.empty() || fn.is_ctor_or_dtor) continue;
    const auto cls = ctx.classes.find(fn.class_name);
    if (cls == ctx.classes.end()) continue;
    std::string stamp;
    std::set<std::string> state;
    for (const MemberSym& m : cls->second.members) {
      if (m.is_stamp) stamp = m.name;
      else if (!m.is_static && !m.is_mutable && !m.is_atomic) {
        state.insert(m.name);
      }
    }
    if (stamp.empty() || state.empty()) continue;

    bool bumps = fn.bump_targets.count(stamp) > 0;
    if (!bumps) {
      const auto merged = ctx.functions.find(FnKey(fn));
      // bump_targets carries the transitive closure after FinalizeContext.
      bumps = merged != ctx.functions.end() &&
              merged->second.bump_targets.count(stamp) > 0;
    }
    if (bumps) continue;

    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (!IsIdent(t, i) || state.count(t[i].text) == 0) continue;
      const std::string prev = i > 0 ? t[i - 1].text : "";
      if (prev == "." || prev == "->" || prev == "::") continue;
      size_t j = i + 1;
      if (Is(t, j, "[")) {
        j = SkipBalanced(t, j);
        if (j == kNpos) continue;
      }
      const bool assigned = j < t.size() && kAssignOps.count(t[j].text) > 0;
      const bool incremented = Is(t, j, "++") || Is(t, j, "--") ||
                               prev == "++" || prev == "--";
      const bool mutated_call = (Is(t, j, ".") || Is(t, j, "->")) &&
                                IsIdent(t, j + 1) &&
                                kMutators.count(t[j + 1].text) > 0 &&
                                Is(t, j + 2, "(");
      if (!assigned && !incremented && !mutated_call) continue;
      Report(scan, t[i].line, kStampAudit,
             "method '" + FnKey(fn) + "' mutates '" + t[i].text +
                 "' without bumping GenerationStamp '" + stamp +
                 "' (directly or via a bumping callee); pointer-keyed " +
                 "caches would serve stale answers (PR-6 bug class)",
             out);
      break;  // one finding per method is enough
    }
  }
}

// error-discipline: a Status/Result parked in a local (or auto alias of a
// known Status API call) that is never inspected — or only (void)-dropped.
void CheckXtuDiscardedStatus(const FileScan& scan, const FileSymbols& syms,
                             const LintContext& ctx,
                             std::vector<Finding>& out) {
  const std::vector<Token>& t = scan.tokens;

  for (const FunctionSym& fn : syms.functions) {
    if (fn.body_begin == kNoBody || fn.body_end == kNoBody) continue;
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (!IsIdent(t, i)) continue;
      const std::string prev = i > 0 ? t[i - 1].text : "";
      if (prev == "." || prev == "->") continue;
      size_t name_pos = kNpos;
      bool need_status_api = false;
      if (t[i].text == "Status" && prev != "::" && IsIdent(t, i + 1) &&
          !IsKeyword(t[i + 1].text) && Is(t, i + 2, "=")) {
        name_pos = i + 1;
      } else if (t[i].text == "Result" && Is(t, i + 1, "<")) {
        const size_t j = SkipAngles(t, i + 1);
        if (j != kNpos && IsIdent(t, j) && !IsKeyword(t[j].text) &&
            Is(t, j + 1, "=")) {
          name_pos = j;
        }
      } else if (t[i].text == "auto") {
        size_t j = i + 1;
        if (Is(t, j, "&&") || Is(t, j, "&") || Is(t, j, "const")) ++j;
        if (IsIdent(t, j) && !IsKeyword(t[j].text) && Is(t, j + 1, "=")) {
          name_pos = j;
          need_status_api = true;  // only flag aliases of known Status APIs
        }
      }
      if (name_pos == kNpos) continue;

      // The initializer: last identifier called before the statement ends.
      std::string callee;
      size_t stmt_end = name_pos + 1;
      while (stmt_end < fn.body_end && !Is(t, stmt_end, ";")) {
        if (IsIdent(t, stmt_end) && Is(t, stmt_end + 1, "(") &&
            !IsKeyword(t[stmt_end].text)) {
          callee = t[stmt_end].text;
          const size_t c = SkipBalanced(t, stmt_end + 1);
          if (c == kNpos) break;
          stmt_end = c;
          continue;
        }
        ++stmt_end;
      }
      if (callee.empty()) continue;  // plain copy/aggregate: out of scope
      if (need_status_api && ctx.status_apis.count(callee) == 0) continue;

      const std::string& name = t[name_pos].text;
      size_t uses = 0, voided = 0;
      for (size_t j = stmt_end + 1; j < fn.body_end; ++j) {
        if (!IsIdent(t, j) || t[j].text != name) continue;
        const std::string& p = t[j - 1].text;
        if (p == "." || p == "->" || p == "::") continue;  // other object
        ++uses;
        if (j >= 3 && p == ")" && t[j - 2].text == "void" &&
            t[j - 3].text == "(" && Is(t, j + 1, ";")) {
          ++voided;
        }
      }
      if (uses > 0 && uses != voided) continue;
      Report(scan, t[name_pos].line, kXtuDiscardedStatus,
             "Status/Result of '" + callee + "' parked in '" + name +
                 "' is " +
                 (uses == 0 ? "never inspected afterwards"
                            : "only ever (void)-discarded") +
                 "; check it or propagate it",
             out);
    }
  }
}

}  // namespace qpwm::lint::internal
