# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("qpwm/util")
subdirs("qpwm/structure")
subdirs("qpwm/logic")
subdirs("qpwm/relational")
subdirs("qpwm/tree")
subdirs("qpwm/xml")
subdirs("qpwm/vc")
subdirs("qpwm/capacity")
subdirs("qpwm/core")
subdirs("qpwm/baseline")
