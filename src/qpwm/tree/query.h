// Automaton-defined parametric queries on weighted trees (Section 4):
// W_a = B(a, T) = { b : B accepts T_ab }.
//
// EvaluateWa computes one whole answer set in O(n * m) with a two-pass
// context DP (bottom-up states with the parameter pebble placed, then a
// top-down acceptance-context table), instead of the naive O(n^2) reruns.
// Pebble track convention: track 0 = parameter a (if any), track 1 (or 0
// when there is no parameter) = result b.
#ifndef QPWM_TREE_QUERY_H_
#define QPWM_TREE_QUERY_H_

#include <memory>
#include <vector>

#include "qpwm/logic/query.h"
#include "qpwm/structure/structure.h"
#include "qpwm/tree/automaton.h"
#include "qpwm/tree/bintree.h"

namespace qpwm {

/// Membership test b in W_a: one run over T_ab. `param_arity` is 0 or 1;
/// with 0, `a` is ignored and the automaton has a single (result) track.
bool MemberWa(const BinaryTree& t, const std::vector<uint32_t>& base_labels,
              uint32_t base_count, const Dta& dta, uint32_t param_arity, NodeId a,
              NodeId b);

/// Full answer set W_a (sorted node ids), via the context DP.
std::vector<NodeId> EvaluateWa(const BinaryTree& t,
                               const std::vector<uint32_t>& base_labels,
                               uint32_t base_count, const Dta& dta,
                               uint32_t param_arity, NodeId a);

/// Existentially projects the parameter track of a 2-track query automaton:
/// the result accepts T_b iff b is in W_a for *some* a — the active-element
/// test of Section 1, as a single 1-track automaton.
Dta ProjectParamTrack(const Dta& dta, uint32_t base_count);

/// Swaps the parameter and result pebble tracks: running the result with
/// the roles reversed enumerates, for a fixed b, every parameter a whose
/// answer set contains b (exact witness discovery for the detector).
Dta SwapPebbleTracks(const Dta& dta, uint32_t base_count);

/// A bare {S1, S2} structure with the tree's nodes as universe, so the
/// generic core machinery (QueryIndex, PairMarking, distortion checks,
/// attacks) runs unchanged on trees. LEQ is intentionally omitted (it is
/// quadratic; the automaton does not need it).
Structure TreeSkeletonStructure(const BinaryTree& t);

/// Wraps an automaton query as a ParametricQuery over the skeleton
/// structure. The returned query captures `t`, `base_labels` and `dta` by
/// reference — keep them alive.
std::unique_ptr<ParametricQuery> MakeTreeQuery(const BinaryTree& t,
                                               const std::vector<uint32_t>& base_labels,
                                               uint32_t base_count, const Dta& dta,
                                               uint32_t param_arity);

}  // namespace qpwm

#endif  // QPWM_TREE_QUERY_H_
