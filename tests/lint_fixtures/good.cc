// Fixture: a clean file — handled Status, pragma-waived hash iteration, and
// per-index parallel writes. qpwm_lint --strict must exit 0 on it.
#include <unordered_map>
#include <vector>

Status EmbedWatermark(int key);

Status Caller() {
  Status s = EmbedWatermark(42);
  return s;
}

int CountKeys(const std::unordered_map<int, int>& counts) {
  int n = 0;
  // qpwm-lint: allow(unordered-iter) -- count reduction, order-independent
  for (const auto& [key, value] : counts) n += 1;
  return n;
}

void Doubled(const std::vector<int>& xs, std::vector<int>& out) {
  ParallelFor(xs.size(), [&](size_t i) {
    out[i] = 2 * xs[i];
  });
}
