file(REMOVE_RECURSE
  "CMakeFiles/csv_sales.dir/csv_sales.cpp.o"
  "CMakeFiles/csv_sales.dir/csv_sales.cpp.o.d"
  "csv_sales"
  "csv_sales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_sales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
