// Conjunctive queries (select-project-join — the paper's "mostly plain SQL"
// class, which is FO and therefore local by Gaifman's theorem):
//
//   psi(u_bar, v_bar) :- R1(t_11, ...), R2(t_21, ...), ...
//
// where every argument is a parameter variable, a result variable, or an
// existential join variable. Evaluation is a backtracking join driven by
// per-relation hash indexes on the bound positions — polynomial on the
// bounded-degree instances the schemes target, and exact.
#ifndef QPWM_LOGIC_CONJUNCTIVE_H_
#define QPWM_LOGIC_CONJUNCTIVE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/logic/query.h"
#include "qpwm/util/status.h"
#include "qpwm/util/thread_annotations.h"

namespace qpwm {

/// One atom argument of a conjunctive query body.
struct CqTerm {
  enum class Kind { kParam, kResult, kJoin };
  Kind kind = Kind::kJoin;
  uint32_t index = 0;  // parameter / result position, or join-variable id
};

/// One body atom: a relation applied to terms.
struct CqAtom {
  std::string relation;
  std::vector<CqTerm> terms;
};

/// A conjunctive parametric query. Build programmatically or with Parse:
///
///   "Route(u1, v1), Timetable(v1, x1, x2, x3)"
///
/// where u<N> are parameters, v<N> result variables, x<N> join variables
/// (1-based in the text, 0-based internally).
class ConjunctiveQuery : public ParametricQuery {
 public:
  ConjunctiveQuery(std::vector<CqAtom> body, uint32_t r, uint32_t s);
  ~ConjunctiveQuery() override;  // out of line: Index is incomplete here
  ConjunctiveQuery(ConjunctiveQuery&&) noexcept;
  ConjunctiveQuery& operator=(ConjunctiveQuery&&) noexcept;

  /// Parses the textual form. Arities are inferred from the variables used;
  /// every parameter/result index up to the maximum must appear.
  [[nodiscard]] static Result<ConjunctiveQuery> Parse(std::string_view text);

  uint32_t ParamArity() const override { return r_; }
  uint32_t ResultArity() const override { return s_; }
  std::vector<Tuple> Evaluate(const Structure& g, const Tuple& params) const override;

  /// Conjunctive queries are quantifier-rank <= #join variables; Gaifman's
  /// bound applies. In practice the join diameter is what matters; we report
  /// the syntactic bound.
  std::optional<uint32_t> LocalityRank() const override;

  std::string Name() const override;

  const std::vector<CqAtom>& body() const { return body_; }
  uint32_t num_join_vars() const { return num_join_; }

 private:
  struct Index;  // per-structure join indexes
  /// Generation-validated (see AtomQuery::CacheEntry): pointer keys alone
  /// cannot identify a structure state across address reuse or in-place
  /// mutation.
  struct CacheEntry {
    uint64_t generation = 0;
    std::unique_ptr<Index> index;
  };
  const Index& GetIndex(const Structure& g) const;

  std::vector<CqAtom> body_;
  uint32_t r_;
  uint32_t s_;
  uint32_t num_join_ = 0;
  // unique_ptr so the query stays movable (guards cache_, per the Evaluate
  // thread-safety contract in query.h).
  mutable std::unique_ptr<qpwm::Mutex> cache_mu_ = std::make_unique<qpwm::Mutex>();
  mutable std::unordered_map<const Structure*, CacheEntry> cache_
      QPWM_GUARDED_BY(cache_mu_);
};

}  // namespace qpwm

#endif  // QPWM_LOGIC_CONJUNCTIVE_H_
