# Empty compiler generated dependencies file for qpwm_logic.
# This may be replaced when dependencies are built.
