// Distortion assumptions (Section 1): the c-local assumption bounds each
// individual weight change, the d-global assumption bounds the drift of the
// per-parameter aggregate f(a). The paper uses f = sum and notes that mean,
// min and max work identically; all four are provided.
#ifndef QPWM_CORE_DISTORTION_H_
#define QPWM_CORE_DISTORTION_H_

#include <vector>

#include "qpwm/core/answers.h"
#include "qpwm/structure/weighted.h"

namespace qpwm {

/// Aggregate used for f(a) over a query result set.
enum class Aggregate { kSum, kMean, kMin, kMax };

/// f(a) for one parameter under the chosen aggregate (0 on empty results;
/// mean rounds toward zero).
Weight AggregateWeight(const QueryIndex& index, size_t param_idx,
                       const WeightMap& weights, Aggregate agg = Aggregate::kSum);

/// True iff |w1(t) - w0(t)| <= c for every weight tuple: the c-local
/// distortion assumption.
bool SatisfiesLocalDistortion(const WeightMap& w0, const WeightMap& w1, Weight c);

/// max_a |f_w1(a) - f_w0(a)| over the index's parameter domain.
Weight GlobalDistortion(const QueryIndex& index, const WeightMap& w0,
                        const WeightMap& w1, Aggregate agg = Aggregate::kSum);

/// |f_w1(a) - f_w0(a)| for every parameter, in domain order.
std::vector<Weight> PerParamDistortion(const QueryIndex& index, const WeightMap& w0,
                                       const WeightMap& w1,
                                       Aggregate agg = Aggregate::kSum);

}  // namespace qpwm

#endif  // QPWM_CORE_DISTORTION_H_
