// E8 — Theorem 4 on XML (Example 4 scaled): the XPath query
// school/student[firstname=$1]/exam compiled through MSO into a tree
// automaton, then watermarked with the tree scheme. Reports f(Robert)
// distortion (the paper's Example 4 shows distortion 1), capacity vs
// student count, and the automaton-size dependence on the value domain
// (name-pool size) — the inherent exponential of MSO compilation.
#include <chrono>
#include <iostream>

#include "qpwm/core/tree_scheme.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"
#include "qpwm/xml/parser.h"
#include "qpwm/xml/xpath.h"

using namespace qpwm;
using Clock = std::chrono::steady_clock;

int main() {
  std::cout << "=== bench_xml_mso: Theorem 4 on XML documents ===\n";

  XPathQuery query =
      XPathQuery::Parse("school/student[firstname=$1]/exam").ValueOrDie();

  // Example 4 verbatim.
  {
    XmlDocument doc = SchoolExampleDocument();
    EncodedXml enc = EncodeXml(doc, {"exam"}).ValueOrDie();
    auto compiled = query.Compile(enc).ValueOrDie();
    const auto base = static_cast<uint32_t>(enc.sigma.size());

    TextTable table("Example 4: f values and a 1-local distortion");
    table.SetHeader({"firstname", "f original", "f marked", "|df|"});

    TreeSchemeOptions opts;
    opts.key = {4, 4};
    auto scheme =
        TreeScheme::Plan(enc.tree, enc.tree.labels(), base, compiled.dta, 1, opts)
            .ValueOrDie();
    WeightMap marked = enc.weights;
    if (scheme.CapacityBits() > 0) {
      BitVec mark(scheme.CapacityBits(), true);
      marked = scheme.Embed(enc.weights, mark);
    }
    for (NodeId p : query.ParamTreeNodes(enc)) {
      Weight f0 = 0, f1 = 0;
      for (NodeId b :
           EvaluateWa(enc.tree, enc.tree.labels(), base, compiled.dta, 1, p)) {
        f0 += enc.weights.GetElem(b);
        f1 += marked.GetElem(b);
      }
      table.AddRow({enc.sigma.Name(enc.tree.label(p)), StrCat(f0), StrCat(f1),
                    StrCat(std::abs(f1 - f0))});
    }
    table.Print(std::cout);
    std::cout << "paper's Example 4: f(Robert) = 28 originally, distortion 1 "
                 "after marking.\n";
  }

  // Scaling with student count (fixed 2-name pool).
  {
    TextTable table("Capacity vs school size (2-name pool)");
    table.SetHeader({"students", "tree nodes", "m", "bits l", "max |df| over params",
                     "detect", "plan ms"});
    Rng rng(8);
    for (size_t students : {50, 200, 800, 3200}) {
      XmlDocument doc = RandomSchoolDocument(students, rng, 0, 20, 2);
      EncodedXml enc = EncodeXml(doc, {"exam"}).ValueOrDie();
      auto compiled = query.Compile(enc).ValueOrDie();
      const auto base = static_cast<uint32_t>(enc.sigma.size());

      TreeSchemeOptions opts;
      opts.key = {students, 1};
      auto t0 = Clock::now();
      auto scheme = TreeScheme::Plan(enc.tree, enc.tree.labels(), base,
                                     compiled.dta, 1, opts)
                        .ValueOrDie();
      auto t1 = Clock::now();

      BitVec mark(scheme.CapacityBits());
      for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
      WeightMap marked = scheme.Embed(enc.weights, mark);

      Weight worst = 0;
      bool detect_ok = true;
      if (students <= 800) {
        for (NodeId p : query.ParamTreeNodes(enc)) {
          Weight f0 = 0, f1 = 0;
          for (NodeId b :
               EvaluateWa(enc.tree, enc.tree.labels(), base, compiled.dta, 1, p)) {
            f0 += enc.weights.GetElem(b);
            f1 += marked.GetElem(b);
          }
          worst = std::max(worst, std::abs(f1 - f0));
        }
        HonestTreeServer server(enc.tree, enc.tree.labels(), base, compiled.dta, 1,
                                marked);
        auto detected = scheme.Detect(enc.weights, server);
        detect_ok = detected.ok() && detected.value() == mark;
      }
      table.AddRow({StrCat(students), StrCat(enc.tree.size()),
                    StrCat(compiled.dta.num_states()), StrCat(scheme.CapacityBits()),
                    students <= 800 ? StrCat(worst) : "(skipped)",
                    students <= 800 ? (detect_ok ? "OK" : "FAIL") : "(skipped)",
                    FmtDouble(std::chrono::duration<double, std::milli>(t1 - t0)
                                  .count(),
                              1)});
    }
    table.Print(std::cout);
  }

  // Automaton size vs value-domain size (the MSO compilation exponential).
  {
    TextTable table("Query automaton vs firstname pool size (100 students)");
    table.SetHeader({"name pool", "alphabet", "automaton states", "compile ms"});
    Rng rng(9);
    for (size_t pool : {1, 2, 3}) {
      XmlDocument doc = RandomSchoolDocument(100, rng, 0, 20, pool);
      EncodedXml enc = EncodeXml(doc, {"exam"}).ValueOrDie();
      auto t0 = Clock::now();
      auto compiled = query.Compile(enc).ValueOrDie();
      auto t1 = Clock::now();
      table.AddRow({StrCat(pool), StrCat(enc.sigma.size()),
                    StrCat(compiled.dta.num_states()),
                    FmtDouble(std::chrono::duration<double, std::milli>(t1 - t0)
                                  .count(),
                              1)});
    }
    table.Print(std::cout);
    std::cout << "the compiled automaton must distinguish parameter values, so "
                 "its size grows with the value domain — the non-elementary "
                 "cost Lemma 2 hides is real.\n";
  }
  return 0;
}
