file(REMOVE_RECURSE
  "CMakeFiles/qpwm_util.dir/bitvec.cc.o"
  "CMakeFiles/qpwm_util.dir/bitvec.cc.o.d"
  "CMakeFiles/qpwm_util.dir/hash.cc.o"
  "CMakeFiles/qpwm_util.dir/hash.cc.o.d"
  "CMakeFiles/qpwm_util.dir/random.cc.o"
  "CMakeFiles/qpwm_util.dir/random.cc.o.d"
  "CMakeFiles/qpwm_util.dir/status.cc.o"
  "CMakeFiles/qpwm_util.dir/status.cc.o.d"
  "CMakeFiles/qpwm_util.dir/str.cc.o"
  "CMakeFiles/qpwm_util.dir/str.cc.o.d"
  "CMakeFiles/qpwm_util.dir/table.cc.o"
  "CMakeFiles/qpwm_util.dir/table.cc.o.d"
  "libqpwm_util.a"
  "libqpwm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
