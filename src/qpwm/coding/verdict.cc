#include "qpwm/coding/verdict.h"

#include <cmath>

#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

namespace qpwm {

const char* VerdictKindName(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::kMatch:
      return "MATCH";
    case VerdictKind::kNoMark:
      return "NO MARK";
    case VerdictKind::kPartial:
      return "PARTIAL";
  }
  return "?";
}

DetectionVerdict JudgeDetection(int64_t vote_weight, uint64_t votes_cast,
                                size_t payload_bits, size_t payload_erased,
                                size_t channel_agreements,
                                size_t channel_disagreements,
                                size_t channel_erasures,
                                const VerdictOptions& options) {
  DetectionVerdict v;
  v.vote_weight = vote_weight;
  v.votes_cast = votes_cast;
  v.channel_agreements = channel_agreements;
  v.channel_disagreements = channel_disagreements;
  v.channel_erasures = channel_erasures;
  v.payload_bits = payload_bits;
  v.payload_erased = payload_erased;
  v.fp_threshold = options.fp_threshold;

  // log10 bound: k*log10(2) - u^2 / (2N ln 10). Negative vote weight is no
  // evidence at all (the data leans *against* the decoded payload).
  if (votes_cast == 0 || vote_weight <= 0) {
    v.log10_fp_bound = 0.0;
    v.fp_bound = 1.0;
  } else {
    const double u = static_cast<double>(vote_weight);
    const double n = static_cast<double>(votes_cast);
    v.log10_fp_bound = static_cast<double>(payload_bits) * std::log10(2.0) -
                       (u * u) / (2.0 * n) / std::log(10.0);
    if (v.log10_fp_bound > 0) v.log10_fp_bound = 0.0;
    v.fp_bound = std::pow(10.0, v.log10_fp_bound);  // may underflow; use log10
  }

  const bool confident = v.fp_bound <= options.fp_threshold;
  if (payload_erased == 0 && confident) {
    v.kind = VerdictKind::kMatch;
  } else if (payload_erased > 0 || channel_erasures > 0) {
    // Structural damage: the honest answer is "too damaged", whether or not
    // the surviving evidence happens to clear the threshold.
    v.kind = VerdictKind::kPartial;
  } else {
    v.kind = VerdictKind::kNoMark;
  }
  return v;
}

std::string VerdictToString(const DetectionVerdict& v) {
  return StrCat(VerdictKindName(v.kind), " (fp <= 1e", FmtDouble(v.log10_fp_bound, 1),
                ", vote weight ", v.vote_weight, "/", v.votes_cast,
                ", channel ", v.channel_agreements, " agree / ",
                v.channel_disagreements, " disagree / ", v.channel_erasures,
                " erased, payload ", v.payload_bits - v.payload_erased, "/",
                v.payload_bits, " recovered)");
}

}  // namespace qpwm
