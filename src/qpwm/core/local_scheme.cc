#include "qpwm/core/local_scheme.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>

#include "qpwm/logic/locality.h"
#include "qpwm/structure/typemap.h"
#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"

namespace qpwm {
namespace {

// Pairs consecutive members of each group; returns leftover singletons.
void PairWithinGroups(const std::map<std::vector<uint32_t>, std::vector<uint32_t>>& groups,
                      Rng& rng, std::vector<WeightPair>& pairs,
                      std::vector<uint32_t>& leftovers) {
  for (const auto& [cl, members_const] : groups) {
    (void)cl;
    std::vector<uint32_t> members = members_const;
    rng.Shuffle(members);
    size_t i = 0;
    for (; i + 1 < members.size(); i += 2) {
      pairs.push_back({members[i], members[i + 1]});
    }
    if (i < members.size()) leftovers.push_back(members[i]);
  }
}

// Greedy ablation: repeatedly drop the pair that contributes to the most
// overloaded parameter until every parameter is within budget.
std::vector<uint32_t> GreedySelect(const PairMarking& all, uint32_t budget) {
  const QueryIndex& index = all.index();
  std::vector<uint32_t> cost = all.CostPerParam();
  std::vector<bool> alive(all.size(), true);

  // contributions[i] = list of params pair i contributes to (non-zero).
  // Each entry is independent, so the whole table builds in parallel.
  std::vector<std::vector<uint32_t>> contributions =
      ParallelMap<std::vector<uint32_t>>(all.size(), [&](size_t i) {
        const WeightPair& p = all.pairs()[i];
        const auto& in_plus = index.ParamsContaining(p.plus);
        const auto& in_minus = index.ParamsContaining(p.minus);
        std::vector<uint32_t> out;
        size_t a = 0, b = 0;
        while (a < in_plus.size() || b < in_minus.size()) {
          if (b == in_minus.size() || (a < in_plus.size() && in_plus[a] < in_minus[b])) {
            out.push_back(in_plus[a++]);
          } else if (a == in_plus.size() || in_minus[b] < in_plus[a]) {
            out.push_back(in_minus[b++]);
          } else {
            ++a;
            ++b;
          }
        }
        return out;
      });

  for (;;) {
    // Worst parameter.
    uint32_t worst_param = 0;
    uint32_t worst_cost = 0;
    for (size_t a = 0; a < cost.size(); ++a) {
      if (cost[a] > worst_cost) {
        worst_cost = cost[a];
        worst_param = static_cast<uint32_t>(a);
      }
    }
    if (worst_cost <= budget) break;

    // Among live pairs hitting it, drop the one with the largest footprint.
    size_t victim = all.size();
    size_t victim_footprint = 0;
    for (size_t i = 0; i < all.size(); ++i) {
      if (!alive[i]) continue;
      if (!std::binary_search(contributions[i].begin(), contributions[i].end(),
                              worst_param)) {
        continue;
      }
      if (victim == all.size() || contributions[i].size() > victim_footprint) {
        victim = i;
        victim_footprint = contributions[i].size();
      }
    }
    QPWM_CHECK_LT(victim, all.size());
    alive[victim] = false;
    for (uint32_t a : contributions[victim]) --cost[a];
  }

  std::vector<uint32_t> selection;
  for (size_t i = 0; i < all.size(); ++i) {
    if (alive[i]) selection.push_back(static_cast<uint32_t>(i));
  }
  return selection;
}

}  // namespace

Result<LocalScheme> LocalScheme::Plan(const QueryIndex& index,
                                      const LocalSchemeOptions& options) {
  const Structure& g = index.structure();
  const ParametricQuery& query = index.query();

  uint32_t rho = options.rho.value_or(
      std::min<uint32_t>(query.LocalityRank().value_or(1), 2));

  if (options.epsilon <= 0.0 || options.epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  const auto budget = static_cast<uint32_t>(std::ceil(1.0 / options.epsilon));

  // 1-2. Type parameters; canonical representatives come out of the typer.
  // TypeAll extracts and canonicalizes neighborhoods in parallel through the
  // shared canonical-form cache; ids come back in first-seen order, exactly
  // as the old serial TypeOf loop produced them.
  NeighborhoodTyper typer(g, rho,
                          options.canon_cache ? &CanonCache::Global() : nullptr);
  std::vector<uint32_t> param_type = typer.TypeAll(index.domain());
  const size_t ntp = typer.NumTypes();

  // Representative parameter index per type (first of each type).
  std::vector<size_t> rep_param(ntp, index.num_params());
  for (size_t i = 0; i < index.num_params(); ++i) {
    if (rep_param[param_type[i]] == index.num_params()) rep_param[param_type[i]] = i;
  }

  // 3. Classes cl(w) and pairing.
  Rng pairing_rng(options.key.Derive(0x70A1).k0);
  std::vector<WeightPair> candidates;
  std::vector<uint32_t> leftovers;
  if (options.class_pairing) {
    // cl(w) by inversion: walk each canonical parameter's result set once and
    // append its type to the members' class vectors. Ascending t keeps every
    // cl(w) sorted, matching the membership-test formulation exactly, at
    // O(sum |W_rep|) instead of |W| * ntp membership tests.
    std::vector<std::vector<uint32_t>> classes(index.num_active());
    for (uint32_t t = 0; t < ntp; ++t) {
      for (uint32_t w : index.ResultFor(rep_param[t])) classes[w].push_back(t);
    }
    std::map<std::vector<uint32_t>, std::vector<uint32_t>> by_class;
    for (uint32_t w = 0; w < index.num_active(); ++w) {
      by_class[std::move(classes[w])].push_back(w);
    }
    PairWithinGroups(by_class, pairing_rng, candidates, leftovers);
  } else {
    leftovers.resize(index.num_active());
    std::iota(leftovers.begin(), leftovers.end(), 0u);
  }
  if (options.fallback_pairing) {
    pairing_rng.Shuffle(leftovers);
    for (size_t i = 0; i + 1 < leftovers.size(); i += 2) {
      candidates.push_back({leftovers[i], leftovers[i + 1]});
    }
  }

  PairMarking all(index, std::move(candidates));

  // 4. Epsilon-good selection.
  std::vector<uint32_t> selection;
  int tries_used = 0;
  if (all.MaxCost() <= budget) {
    selection.resize(all.size());
    std::iota(selection.begin(), selection.end(), 0u);
    tries_used = 1;
  } else if (options.selection == PairSelection::kGreedy) {
    selection = GreedySelect(all, budget);
    tries_used = 1;
  } else if (all.size() > 0) {
    // Proposition 2: p = 1 / (eta * (2N)^eps), retried. After a grace period
    // the probability adapts: halved when the sampled subset blew the budget,
    // doubled when it came out empty (tiny instances make the analytical p
    // vanish). If the randomized search never lands, fall back to the greedy
    // dropper, which always returns a within-budget (possibly smaller) set.
    const GaifmanGraph gaifman(g);
    const uint64_t eta = LocalityDivergenceBound(query.ParamArity(),
                                                 gaifman.MaxDegree(), rho);
    const double n_queries = 2.0 * static_cast<double>(index.num_params());
    double p = 1.0 / (static_cast<double>(eta) * std::pow(n_queries, options.epsilon));
    p = std::clamp(p, 2.0 / static_cast<double>(all.size()), 1.0);

    Rng select_rng(options.key.Derive(0x5E1E).k0);
    bool succeeded = false;
    for (int attempt = 0; attempt < options.max_tries; ++attempt) {
      if (!succeeded) ++tries_used;  // tries until the *first* success
      std::vector<uint32_t> trial;
      for (uint32_t i = 0; i < all.size(); ++i) {
        if (select_rng.Bernoulli(p)) trial.push_back(i);
      }
      if (!trial.empty() && all.Subset(trial).MaxCost() <= budget) {
        succeeded = true;
        if (trial.size() > selection.size()) selection = std::move(trial);
        p = std::min(1.0, p * 1.3);  // probe for a larger epsilon-good set
      } else if (succeeded || attempt >= options.max_tries / 2) {
        p = trial.empty() ? std::min(1.0, p * 2) : p * 0.7;
      }
    }
    if (selection.empty()) selection = GreedySelect(all, budget);
  }

  auto marking = std::make_unique<PairMarking>(all.Subset(selection));
  const uint32_t bound = marking->MaxCost();
  QPWM_CHECK_LE(bound, budget);

  LocalScheme scheme(std::move(marking), options);
  scheme.distortion_bound_ = bound;
  scheme.budget_ = budget;
  scheme.rho_ = rho;
  scheme.ntp_ = ntp;
  scheme.candidate_pairs_ = all.size();
  scheme.tries_used_ = tries_used;
  scheme.canonical_params_ = rep_param;
  return scheme;
}

WeightMap LocalScheme::Embed(const WeightMap& original, const BitVec& mark) const {
  QPWM_CHECK_EQ(mark.size(), CapacityBits());
  WeightMap out = original;
  marking_->Apply(mark, out, options_.encoding);
  return out;
}

LocalScheme::WitnessPlan LocalScheme::BuildWitnessPlan(const PairMarking& marking) {
  // Group the 2 * num_pairs element reads by their witness parameter, in
  // first-use order — exactly the grouping detection used to rebuild per
  // call, hoisted to plan time (it depends only on the pairs and the index).
  const QueryIndex& index = marking.index();
  WitnessPlan plan;
  std::unordered_map<uint32_t, uint32_t> slot_of_param;  // param idx -> slot
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> reads;
  for (size_t i = 0; i < marking.size(); ++i) {
    const WeightPair& p = marking.pairs()[i];
    const uint32_t elems[2] = {p.plus, p.minus};
    for (int side = 0; side < 2; ++side) {
      const auto& witnesses = index.ParamsContaining(elems[side]);
      if (witnesses.empty()) continue;  // stays unfound -> erased
      auto [it, inserted] = slot_of_param.emplace(
          witnesses[0], static_cast<uint32_t>(plan.params.size()));
      if (inserted) {
        plan.params.push_back(index.param(witnesses[0]));
        reads.emplace_back();
      }
      reads[it->second].push_back(
          {static_cast<uint32_t>(2 * i + side), elems[side]});
    }
  }
  plan.read_offsets.reserve(reads.size() + 1);
  plan.read_offsets.push_back(0);
  for (const auto& slot_reads : reads) {
    plan.reads.insert(plan.reads.end(), slot_reads.begin(), slot_reads.end());
    plan.read_offsets.push_back(static_cast<uint32_t>(plan.reads.size()));
  }
  return plan;
}

LocalScheme::DetectContext LocalScheme::MakeDetectContext(
    const WeightMap& original, const DetectOptions& options) const {
  DetectContext ctx;
  ctx.original = &original;
  if (options.dense_views) ctx.original_view.emplace(marking_->index(), original);
  ctx.options = options;
  return ctx;
}

const std::vector<PairObservation>& LocalScheme::ObservePairsInto(
    const DetectContext& ctx, const AnswerServer& suspect,
    DetectScratch& sc) const {
  const QueryIndex& index = marking_->index();
  const size_t num_pairs = marking_->size();
  sc.observations.clear();
  sc.observations.reserve(num_pairs);

  // Original weights of the pair elements: the run context's dense snapshot
  // (one O(1) read per element) or the per-tuple WeightMap path. Same values
  // either way.
  auto original_weight = [&](uint32_t w) -> Weight {
    return ctx.original_view ? ctx.original_view->at(w)
                             : ctx.original->Get(index.active_element(w));
  };

  if (!ctx.options.batch_answers) {
    // Pre-optimization serving path: one Answer() round trip per pair element
    // (an AnswerSet materialization plus a linear scan). Missing from the
    // witness answer (deleted tuple, shipped subset) or witness-less
    // (inactive — cannot happen for planned pairs, checked defensively)
    // reads as an erasure.
    auto read_weight = [&](uint32_t w) -> std::optional<Weight> {
      const auto& witnesses = index.ParamsContaining(w);
      if (witnesses.empty()) return std::nullopt;
      const Tuple& elem = index.active_element(w);
      const Tuple& param = index.param(witnesses[0]);
      for (const AnswerRow& row : suspect.Answer(param)) {
        if (row.element == elem) return row.weight;
      }
      return std::nullopt;
    };
    for (size_t i = 0; i < num_pairs; ++i) {
      const WeightPair& p = marking_->pairs()[i];
      std::optional<Weight> plus = read_weight(p.plus);
      std::optional<Weight> minus = read_weight(p.minus);
      PairObservation obs;
      if (!plus.has_value() || !minus.has_value()) {
        obs.erased = true;
      } else {
        const Weight d_plus = *plus - original_weight(p.plus);
        const Weight d_minus = *minus - original_weight(p.minus);
        obs.delta = d_plus - d_minus;
      }
      sc.observations.push_back(obs);
    }
    return sc.observations;
  }

  // Batched serving: answer each distinct witness of the precomputed plan
  // once (a single columnar AnswerAllFlat round trip — pairs cluster around
  // low-id witnesses, so distinct witnesses are far fewer than reads), then
  // resolve each witness's reads through an epoch-stamped flat table keyed
  // by active id. No per-row allocation and O(1) per read.
  sc.read_weight.assign(2 * num_pairs, 0);
  sc.read_found.assign(2 * num_pairs, 0);
  AnswerAllFlat(suspect, witness_plan_.params, sc.answers);

  if (sc.stamp.size() != index.num_active()) {
    sc.stamp.assign(index.num_active(), 0);
    sc.row_weight.assign(index.num_active(), 0);
  }
  const bool unary = index.has_unary_actives();
  for (size_t s = 0; s < witness_plan_.params.size(); ++s) {
    const uint64_t epoch = ++sc.epoch;
    for (uint32_t r = sc.answers.param_offsets[s];
         r < sc.answers.param_offsets[s + 1]; ++r) {
      // Rows outside the active set (inserted fresh tuples) can never match a
      // pair element; the first row per element wins, exactly like the
      // unbatched scan. Unary results resolve to active ids with one array
      // read; general arities pay the tuple hash.
      const uint32_t eb = sc.answers.elem_offsets[r];
      const uint32_t ee = sc.answers.elem_offsets[r + 1];
      int64_t w = -1;
      if (unary) {
        if (ee - eb == 1) w = index.ActiveIdOfElem(sc.answers.elems[eb]);
      } else {
        sc.row_tuple.assign(sc.answers.elems.begin() + eb,
                            sc.answers.elems.begin() + ee);
        auto found = index.FindActive(sc.row_tuple);
        if (found.ok()) w = static_cast<int64_t>(found.value());
      }
      if (w < 0 || sc.stamp[w] == epoch) continue;
      sc.stamp[w] = epoch;
      sc.row_weight[w] = sc.answers.weights[r];
    }
    for (uint32_t i = witness_plan_.read_offsets[s];
         i < witness_plan_.read_offsets[s + 1]; ++i) {
      const auto& [slot, w] = witness_plan_.reads[i];
      if (sc.stamp[w] == epoch) {
        sc.read_weight[slot] = sc.row_weight[w];
        sc.read_found[slot] = 1;
      }
    }
  }

  for (size_t i = 0; i < num_pairs; ++i) {
    const WeightPair& p = marking_->pairs()[i];
    PairObservation obs;
    if (!sc.read_found[2 * i] || !sc.read_found[2 * i + 1]) {
      obs.erased = true;
    } else {
      const Weight d_plus = sc.read_weight[2 * i] - original_weight(p.plus);
      const Weight d_minus = sc.read_weight[2 * i + 1] - original_weight(p.minus);
      obs.delta = d_plus - d_minus;
    }
    sc.observations.push_back(obs);
  }
  return sc.observations;
}

std::vector<PairObservation> LocalScheme::ObservePairs(
    const WeightMap& original, const AnswerServer& suspect,
    const DetectOptions& options) const {
  const DetectContext ctx = MakeDetectContext(original, options);
  DetectScratch scratch;
  return ObservePairsInto(ctx, suspect, scratch);
}

Result<std::vector<Weight>> LocalScheme::PairDeltas(const WeightMap& original,
                                                    const AnswerServer& suspect) const {
  std::vector<PairObservation> observations = ObservePairs(original, suspect);
  std::vector<Weight> deltas;
  deltas.reserve(observations.size());
  for (const PairObservation& obs : observations) {
    if (obs.erased) {
      return Status::DetectionFailed(
          "suspect answer is missing an expected element (structure tampered)");
    }
    deltas.push_back(obs.delta);
  }
  return deltas;
}

Result<BitVec> LocalScheme::Detect(const WeightMap& original,
                                   const AnswerServer& suspect) const {
  auto deltas = PairDeltas(original, suspect);
  if (!deltas.ok()) return deltas.status();
  BitVec mark(marking_->size());
  for (size_t i = 0; i < deltas.value().size(); ++i) {
    // Clean deltas: +2 for bit 1; 0 (kOnOff) or -2 (kAntipodal) for bit 0.
    const Weight threshold = options_.encoding == PairEncoding::kOnOff ? 1 : 0;
    mark.Set(i, deltas.value()[i] >= threshold);
  }
  return mark;
}

}  // namespace qpwm
