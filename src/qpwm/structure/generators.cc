#include "qpwm/structure/generators.h"

#include <string>
#include <vector>

namespace qpwm {

Signature GraphSignature() {
  Signature sig;
  sig.AddRelation("E", 2);
  return sig;
}

Structure RandomBoundedDegreeGraph(size_t n, size_t k, size_t edge_attempts,
                                   bool symmetric, Rng& rng) {
  QPWM_CHECK_GE(n, 2u);
  Structure s(GraphSignature(), n);
  std::vector<size_t> degree(n, 0);
  for (size_t attempt = 0; attempt < edge_attempts; ++attempt) {
    ElemId u = static_cast<ElemId>(rng.Below(n));
    ElemId v = static_cast<ElemId>(rng.Below(n));
    if (u == v) continue;
    if (degree[u] >= k || degree[v] >= k) continue;
    Tuple t{u, v};
    if (s.relation(size_t{0}).Contains(t)) continue;
    if (s.relation(size_t{0}).Contains(Tuple{v, u})) continue;
    s.AddTuple(size_t{0}, t);
    if (symmetric) s.AddTuple(size_t{0}, Tuple{v, u});
    ++degree[u];
    ++degree[v];
  }
  s.Seal();
  return s;
}

Structure CycleGraph(size_t n, bool symmetric) {
  Structure s(GraphSignature(), n);
  for (ElemId i = 0; i < n; ++i) {
    ElemId j = static_cast<ElemId>((i + 1) % n);
    s.AddTuple(size_t{0}, Tuple{i, j});
    if (symmetric) s.AddTuple(size_t{0}, Tuple{j, i});
  }
  s.Seal();
  return s;
}

Structure PathGraph(size_t n, bool symmetric) {
  Structure s(GraphSignature(), n);
  for (ElemId i = 0; i + 1 < n; ++i) {
    s.AddTuple(size_t{0}, Tuple{i, static_cast<ElemId>(i + 1)});
    if (symmetric) s.AddTuple(size_t{0}, Tuple{static_cast<ElemId>(i + 1), i});
  }
  s.Seal();
  return s;
}

Structure GridGraph(size_t w, size_t h) {
  Signature sig;
  sig.AddRelation("H", 2);
  sig.AddRelation("V", 2);
  Structure s(sig, w * h);
  auto id = [&](size_t x, size_t y) { return static_cast<ElemId>(y * w + x); };
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      if (x + 1 < w) s.AddTuple(size_t{0}, Tuple{id(x, y), id(x + 1, y)});
      if (y + 1 < h) s.AddTuple(size_t{1}, Tuple{id(x, y), id(x, y + 1)});
    }
  }
  s.Seal();
  return s;
}

Structure Figure1Instance() {
  Signature sig;
  sig.AddRelation("R", 2);
  Structure s(sig, 6);
  const char* names[] = {"a", "b", "c", "d", "e", "f"};
  for (ElemId i = 0; i < 6; ++i) s.SetElementName(i, names[i]);
  const ElemId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5;
  s.AddTuple(size_t{0}, Tuple{a, d});
  s.AddTuple(size_t{0}, Tuple{a, e});
  s.AddTuple(size_t{0}, Tuple{b, d});
  s.AddTuple(size_t{0}, Tuple{b, e});
  s.AddTuple(size_t{0}, Tuple{c, d});
  s.AddTuple(size_t{0}, Tuple{f, e});
  s.AddTuple(size_t{0}, Tuple{d, a});
  s.AddTuple(size_t{0}, Tuple{e, b});
  s.Seal();
  return s;
}

Structure ShatterInstance(uint32_t n) {
  QPWM_CHECK_LE(n, 20u);
  const size_t num_params = size_t{1} << n;
  Structure s(GraphSignature(), num_params + n);
  for (size_t i = 0; i < num_params; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if ((i >> j) & 1) {
        s.AddTuple(size_t{0},
                   Tuple{static_cast<ElemId>(i), static_cast<ElemId>(num_params + j)});
      }
    }
  }
  s.Seal();
  return s;
}

Structure HalfShatterInstance(uint32_t n) {
  QPWM_CHECK_EQ(n % 2, 0u);
  QPWM_CHECK_LE(n, 40u);
  const uint32_t half = n / 2;
  const size_t num_params = size_t{1} << half;
  // Layout: [0, 2^half) parameter vertices, then vertex `a`, then n weight
  // vertices (first `half` of them shattered, last `half` only touched by a).
  Structure s(GraphSignature(), num_params + 1 + n);
  const ElemId a = static_cast<ElemId>(num_params);
  const ElemId weights_base = static_cast<ElemId>(num_params + 1);
  for (size_t i = 0; i < num_params; ++i) {
    for (uint32_t j = 0; j < half; ++j) {
      if ((i >> j) & 1) {
        s.AddTuple(size_t{0}, Tuple{static_cast<ElemId>(i),
                                    static_cast<ElemId>(weights_base + j)});
      }
    }
  }
  for (uint32_t j = 0; j < n; ++j) {
    s.AddTuple(size_t{0}, Tuple{a, static_cast<ElemId>(weights_base + j)});
  }
  s.Seal();
  return s;
}

WeightMap RandomWeights(const Structure& s, Weight lo, Weight hi, Rng& rng) {
  WeightMap w(1, s.universe_size());
  for (ElemId e = 0; e < s.universe_size(); ++e) {
    w.SetElem(e, rng.Uniform(lo, hi));
  }
  return w;
}

}  // namespace qpwm
