// Fixture: view-escape (b) — a view returned rooted at a function-local
// owner, which dies at end of scope. Never compiled, only linted.
TupleList LeakTuples() {
  Relation r = MakeEdges();
  return r.tuples();
}
