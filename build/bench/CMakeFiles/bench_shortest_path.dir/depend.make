# Empty dependencies file for bench_shortest_path.
# This may be replaced when dependencies are built.
