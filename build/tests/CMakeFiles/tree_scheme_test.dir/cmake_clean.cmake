file(REMOVE_RECURSE
  "CMakeFiles/tree_scheme_test.dir/tree_scheme_test.cc.o"
  "CMakeFiles/tree_scheme_test.dir/tree_scheme_test.cc.o.d"
  "tree_scheme_test"
  "tree_scheme_test.pdb"
  "tree_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
