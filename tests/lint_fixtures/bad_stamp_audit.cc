// Fixture: stamp-audit — a mutating method of a GenerationStamp-carrying
// class that forgets to bump; pointer-keyed caches would serve stale
// answers. Never compiled, only linted.
#include <vector>

namespace fx {

class Ledger {
 public:
  void Append(int v) {
    entries_.push_back(v);  // mutates without gen_.Bump()
  }
  void Clear() {
    entries_.clear();
    gen_.Bump();
  }

 private:
  std::vector<int> entries_;
  GenerationStamp gen_;
};

}  // namespace fx
