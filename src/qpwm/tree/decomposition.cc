#include "qpwm/tree/decomposition.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "qpwm/util/check.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// Symbol with optional pebbles; mirrors query.cc's convention.
uint32_t SymbolAt(uint32_t base_label, uint32_t base_count, uint32_t param_arity,
                  bool a_here, bool b_here) {
  uint32_t bits;
  if (param_arity == 0) {
    bits = b_here ? 1 : 0;
  } else {
    bits = (a_here ? 1 : 0) | (b_here ? 2u : 0);
  }
  return base_label + base_count * bits;
}

}  // namespace

std::vector<MarkRegion> FindMarkRegions(const BinaryTree& t,
                                        const std::vector<uint32_t>& labels,
                                        uint32_t base_count, const Dta& dta,
                                        uint32_t param_arity,
                                        const DecompositionOptions& options,
                                        DecompositionStats* stats,
                                        const std::vector<bool>* candidate_filter) {
  QPWM_CHECK_LE(param_arity, 1u);
  const size_t n = t.size();
  const size_t m_plus = dta.num_states() + 1;
  const size_t min_size = options.min_region_size > 0
                              ? options.min_region_size
                              : std::min<size_t>(2 * m_plus, 8);
  const size_t max_size =
      options.max_region_size > 0 ? options.max_region_size : 64 * m_plus;
  Rng rng(options.shuffle_seed);

  // --- Global DP: s0 (no pebbles) and, with a parameter, ach(v) = states at
  // v achievable with the a pebble somewhere in subtree(v).
  std::vector<State> s0(n);
  std::vector<std::vector<State>> ach(param_arity == 1 ? n : 0);
  for (NodeId v : t.Postorder()) {
    State l = t.left(v) == kNoNode ? kAbsentChild : s0[t.left(v)];
    State r = t.right(v) == kNoNode ? kAbsentChild : s0[t.right(v)];
    uint32_t sym = SymbolAt(labels[v], base_count, param_arity, false, false);
    s0[v] = dta.Step(l, r, sym);
    if (param_arity == 1) {
      std::vector<State>& out = ach[v];
      // a at v itself:
      uint32_t sym_a = SymbolAt(labels[v], base_count, param_arity, true, false);
      out.push_back(dta.Step(l, r, sym_a));
      // a in the left subtree:
      if (t.left(v) != kNoNode) {
        for (State ql : ach[t.left(v)]) out.push_back(dta.Step(ql, r, sym));
      }
      // a in the right subtree:
      if (t.right(v) != kNoNode) {
        for (State qr : ach[t.right(v)]) out.push_back(dta.Step(l, qr, sym));
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    }
  }

  // --- Bottom-up sweep.
  std::vector<bool> assigned(n, false);      // node sits in a closed region
  std::vector<bool> region_root(n, false);   // node is a closed region's root
  std::vector<size_t> unassigned(n, 0);      // unassigned nodes in subtree
  std::vector<size_t> attempted(n, 0);       // size at last failed attempt

  // Postorder position, for ordering region nodes children-first.
  std::vector<uint32_t> post_pos(n);
  for (uint32_t i = 0; i < t.Postorder().size(); ++i) post_pos[t.Postorder()[i]] = i;

  std::vector<MarkRegion> regions;

  // Collects the unassigned nodes and holes of the candidate region at v.
  auto collect_region = [&](NodeId v, std::vector<NodeId>& nodes,
                            std::vector<NodeId>& holes) {
    std::vector<NodeId> stack{v};
    while (!stack.empty()) {
      NodeId w = stack.back();
      stack.pop_back();
      if (assigned[w]) {
        holes.push_back(w);
        QPWM_CHECK(region_root[w]);
        continue;
      }
      nodes.push_back(w);
      if (t.left(w) != kNoNode) stack.push_back(t.left(w));
      if (t.right(w) != kNoNode) stack.push_back(t.right(w));
    }
    std::sort(nodes.begin(), nodes.end(),
              [&](NodeId a, NodeId b) { return post_pos[a] < post_pos[b]; });
  };

  // Tries to find a neutral pair in the candidate region; returns true on
  // success and fills b_plus / b_minus.
  auto find_pair = [&](NodeId v, const std::vector<NodeId>& nodes,
                       const std::vector<NodeId>& holes, NodeId& b_plus,
                       NodeId& b_minus) {
    if (stats != nullptr) ++stats->attempts;

    // Reachable hole-state combinations: the all-quiet one, plus (when the
    // query has a parameter) each single hole carrying the pebble.
    // combos[c] maps hole index -> state.
    std::vector<std::vector<State>> combos;
    std::vector<State> quiet(holes.size());
    for (size_t h = 0; h < holes.size(); ++h) quiet[h] = s0[holes[h]];
    combos.push_back(quiet);
    if (param_arity == 1) {
      for (size_t h = 0; h < holes.size(); ++h) {
        for (State q : ach[holes[h]]) {
          if (q == s0[holes[h]]) continue;
          std::vector<State> combo = quiet;
          combo[h] = q;
          combos.push_back(std::move(combo));
        }
      }
    }

    std::unordered_map<NodeId, size_t> hole_index;
    for (size_t h = 0; h < holes.size(); ++h) hole_index.emplace(holes[h], h);
    std::unordered_map<NodeId, size_t> node_index;
    for (size_t i = 0; i < nodes.size(); ++i) node_index.emplace(nodes[i], i);

    // Candidate order is keyed: the attacker cannot predict which collision
    // pair carries the bit.
    std::vector<NodeId> candidates;
    for (NodeId w : nodes) {
      if (candidate_filter == nullptr || (*candidate_filter)[w]) candidates.push_back(w);
    }
    rng.Shuffle(candidates);

    std::map<std::vector<State>, NodeId> seen;
    std::vector<State> state(nodes.size());
    for (NodeId b : candidates) {
      std::vector<State> signature;
      signature.reserve(combos.size());
      for (const auto& combo : combos) {
        for (size_t i = 0; i < nodes.size(); ++i) {
          NodeId w = nodes[i];
          auto child_state = [&](NodeId c) -> State {
            if (c == kNoNode) return kAbsentChild;
            auto hit = hole_index.find(c);
            if (hit != hole_index.end()) return combo[hit->second];
            return state[node_index.at(c)];
          };
          uint32_t sym =
              SymbolAt(labels[w], base_count, param_arity, false, w == b);
          state[i] = dta.Step(child_state(t.left(w)), child_state(t.right(w)), sym);
        }
        signature.push_back(state[node_index.at(v)]);
      }
      auto [it, inserted] = seen.emplace(std::move(signature), b);
      if (!inserted) {
        b_plus = it->second;
        b_minus = b;
        return true;
      }
    }
    return false;
  };

  auto close_region = [&](NodeId v, std::vector<NodeId> nodes,
                          std::vector<NodeId> holes, NodeId b_plus, NodeId b_minus) {
    for (NodeId w : nodes) assigned[w] = true;
    region_root[v] = true;
    unassigned[v] = 0;
    attempted[v] = 0;
    if (stats != nullptr) {
      stats->covered_nodes += nodes.size();
      if (b_plus != kNoNode) {
        ++stats->paired;
      } else {
        ++stats->unpaired;
      }
    }
    MarkRegion region;
    region.root = v;
    region.holes = std::move(holes);
    region.nodes = std::move(nodes);
    region.b_plus = b_plus;
    region.b_minus = b_minus;
    regions.push_back(std::move(region));
  };

  for (NodeId v : t.Postorder()) {
    size_t count = 1;
    size_t last_attempt = 0;
    if (t.left(v) != kNoNode) {
      count += unassigned[t.left(v)];
      last_attempt = std::max(last_attempt, attempted[t.left(v)]);
    }
    if (t.right(v) != kNoNode) {
      count += unassigned[t.right(v)];
      last_attempt = std::max(last_attempt, attempted[t.right(v)]);
    }
    unassigned[v] = count;
    attempted[v] = last_attempt;

    if (count < min_size) continue;
    // Geometric retry: only search again once the region has doubled since
    // the last failure on this path (keeps total work near-linear).
    if (count < 2 * last_attempt && count <= max_size) continue;

    std::vector<NodeId> nodes, holes;
    collect_region(v, nodes, holes);
    QPWM_CHECK_EQ(nodes.size(), count);

    NodeId b_plus = kNoNode, b_minus = kNoNode;
    if (find_pair(v, nodes, holes, b_plus, b_minus)) {
      close_region(v, std::move(nodes), std::move(holes), b_plus, b_minus);
    } else if (count > max_size) {
      close_region(v, std::move(nodes), std::move(holes), kNoNode, kNoNode);
    } else {
      attempted[v] = count;
    }
  }

  return regions;
}

}  // namespace qpwm
