# Empty compiler generated dependencies file for qpwm_capacity.
# This may be replaced when dependencies are built.
