// bench_detect — the detection-side perf baseline: batched answer serving,
// dense weight views, and the parallel multi-suspect fan-out.
//
// Detection is the serving hot path once a scheme is deployed: the detector
// replans once, then reads pair weights through query answers for every
// suspect copy (Remark 2's fingerprint tracing runs this against up to 2^l
// marked copies). The pre-optimization path paid one Answer() round trip per
// pair element — an AnswerSet allocation plus a linear scan — and a hash
// lookup per weight read. The optimized path answers each distinct witness
// parameter once per run (AnswerAll), indexes the rows, and snapshots both
// the owner's and the server's weights into DenseWeightViews.
//
// Instance: bounded-degree graph with a DistanceQuery ball (answer sets of
// a few dozen rows — the regime where re-answering per pair hurts most).
//
// Reported speedups are against the *pre-optimization detector* — serial,
// unbatched, sparse weight lookups. Detection output (marks, margins,
// erasure counts) is verified bit-identical across every ablation and
// thread count; the run fails if it is not.
//
// --json[=PATH] writes/merges the "detect_scale" section of
// BENCH_detect.json so future PRs have a trajectory to beat.
//
// The fan-out is additionally held against the *serial optimized* detector
// (a plain loop of single-suspect detections with every fast path on): the
// honest bar for the thread pool, reported as parallel_faster_than_serial.
//
// --sweep[=N1,N2,...] scales the fan-out to 10^6-element instances (qrho=2,
// a few suspects) with flat-storage bytes per tuple and process peak RSS per
// point; sizes are visited ascending so each RSS sample is dominated by the
// current instance.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_json.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/answers.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

namespace {

double TimeMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool SameDetection(const AdversarialDetection& a, const AdversarialDetection& b) {
  if (a.mark.size() != b.mark.size() || a.margins != b.margins ||
      a.min_margin != b.min_margin || a.group_sizes != b.group_sizes ||
      a.bit_erased != b.bit_erased || a.pairs_erased != b.pairs_erased ||
      a.bits_recovered != b.bits_recovered || a.bits_erased != b.bits_erased) {
    return false;
  }
  for (size_t i = 0; i < a.mark.size(); ++i) {
    if (a.mark.Get(i) != b.mark.Get(i)) return false;
  }
  return true;
}

struct AblationResult {
  bool dense = false;
  bool batch = false;
  double ms = 0;
  bool identical = true;
};

struct FanoutResult {
  size_t threads = 0;
  double ms = 0;
  bool identical = true;
};

struct DetectSweepPoint {
  size_t n = 0;
  size_t tuples = 0;
  size_t pairs = 0;
  size_t suspects = 0;
  double serial_optimized_ms = 0;
  double fanout_1t_ms = 0;
  double fanout_8t_ms = 0;
  size_t structure_bytes = 0;
  uint64_t peak_rss_kb = 0;
  bool identical = true;
};

std::vector<size_t> ParseSizeList(const std::string& list) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    out.push_back(std::stoul(list.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults picked for a serving-heavy regime: distance-4 balls on a
  // degree-4 graph give large answer sets with ~7x witness sharing, the
  // regime batching exists for (big answers re-served per pair element).
  size_t n = 2000;
  size_t k = 4;
  uint32_t qrho = 4;
  size_t num_suspects = 32;
  size_t redundancy = 5;
  int reps = 3;
  double epsilon = 0.02;
  std::optional<std::string> json_path;
  std::vector<size_t> sweep_sizes;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_detect.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--sweep") {
      sweep_sizes = {50000, 200000, 1000000};
    } else if (arg.rfind("--sweep=", 0) == 0) {
      sweep_sizes = ParseSizeList(arg.substr(8));
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::stoul(argv[++i]);
    } else if (arg == "--k" && i + 1 < argc) {
      k = std::stoul(argv[++i]);
    } else if (arg == "--qrho" && i + 1 < argc) {
      qrho = static_cast<uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--suspects" && i + 1 < argc) {
      num_suspects = std::stoul(argv[++i]);
    } else if (arg == "--redundancy" && i + 1 < argc) {
      redundancy = std::stoul(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--epsilon" && i + 1 < argc) {
      epsilon = std::stod(argv[++i]);
    } else {
      std::cerr << "usage: bench_detect [--json[=PATH]] [--n N] [--k K] "
                   "[--qrho R] [--suspects S] [--redundancy R] [--reps R] "
                   "[--epsilon E] [--sweep[=N1,N2,...]]\n";
      return 2;
    }
  }

  std::cout << "=== bench_detect: batched, dense, parallel detection (n=" << n
            << ", k=" << k << ", query=dist<=" << qrho
            << ", suspects=" << num_suspects << ") ===\n";

  // One planned scheme; the detection workload reads through it.
  Rng rng(42);
  Structure g = RandomBoundedDegreeGraph(n, k, 3 * n, false, rng);
  DistanceQuery query(qrho);
  SetParallelThreads(1);
  QueryIndex index(g, query, AllParams(g, 1));
  WeightMap weights = RandomWeights(g, 1000, 9999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = epsilon;
  opts.key = {42, 99};
  opts.encoding = PairEncoding::kAntipodal;
  LocalScheme scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  AdversarialScheme adv(scheme, redundancy);
  if (adv.CapacityBits() == 0) {
    std::cerr << "FAIL: planned scheme has zero capacity\n";
    return 1;
  }

  // Witness sharing decides the batching win: every detection run performs
  // 2 * pairs element reads, each through the first parameter containing the
  // element, and the batched path answers each distinct witness once.
  size_t witness_reads = 0;
  std::unordered_set<uint32_t> distinct_witnesses;
  for (const WeightPair& p : scheme.marking().pairs()) {
    for (uint32_t w : {p.plus, p.minus}) {
      const auto& witnesses = index.ParamsContaining(w);
      if (witnesses.empty()) continue;
      ++witness_reads;
      distinct_witnesses.insert(witnesses[0]);
    }
  }
  const double sharing =
      distinct_witnesses.empty()
          ? 0.0
          : static_cast<double>(witness_reads) /
                static_cast<double>(distinct_witnesses.size());
  std::cout << "planned " << scheme.CapacityBits() << " pairs ("
            << adv.CapacityBits() << " message bits): " << witness_reads
            << " element reads via " << distinct_witnesses.size()
            << " distinct witness params (sharing " << FmtDouble(sharing, 1)
            << "x)\n";

  // One marked copy per suspect, each carrying a distinct message — the
  // fingerprinting scenario. Two servers per copy: the pre-optimization
  // sparse one and the dense-view one.
  std::vector<BitVec> messages;
  std::vector<std::unique_ptr<HonestServer>> sparse_servers;
  std::vector<std::unique_ptr<HonestServer>> dense_servers;
  for (size_t s = 0; s < num_suspects; ++s) {
    BitVec msg(adv.CapacityBits());
    Rng msg_rng(1000 + s);
    for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, msg_rng.Coin());
    WeightMap marked = adv.Embed(weights, msg);
    sparse_servers.push_back(
        std::make_unique<HonestServer>(index, marked, /*use_dense_view=*/false));
    dense_servers.push_back(
        std::make_unique<HonestServer>(index, std::move(marked)));
    messages.push_back(std::move(msg));
  }

  const DetectOptions kBaselineOpts{/*batch_answers=*/false, /*dense_views=*/false};

  // --- Single-suspect ablations (1 thread) ---------------------------------
  const AdversarialDetection reference =
      adv.Detect(weights, *sparse_servers[0], kBaselineOpts).ValueOrDie();
  for (size_t i = 0; i < reference.mark.size(); ++i) {
    if (reference.mark.Get(i) != messages[0].Get(i)) {
      std::cerr << "FAIL: clean detection recovered a wrong bit\n";
      return 1;
    }
  }

  std::vector<AblationResult> ablations;
  for (const auto& [dense, batch] :
       std::vector<std::pair<bool, bool>>{{false, false}, {true, false},
                                          {false, true}, {true, true}}) {
    DetectOptions d;
    d.batch_answers = batch;
    d.dense_views = dense;
    const AnswerServer& server =
        dense ? *dense_servers[0] : *sparse_servers[0];
    AblationResult r;
    r.dense = dense;
    r.batch = batch;
    std::optional<AdversarialDetection> out;
    for (int rep = 0; rep < reps; ++rep) {
      const double ms =
          TimeMs([&] { out = adv.Detect(weights, server, d).ValueOrDie(); });
      r.ms = rep == 0 ? ms : std::min(r.ms, ms);
    }
    r.identical = SameDetection(reference, *out);
    ablations.push_back(r);
  }
  const double single_baseline_ms = ablations.front().ms;
  const double dense_batch_speedup = single_baseline_ms / ablations.back().ms;

  TextTable single(StrCat("Single-suspect detection, ", scheme.CapacityBits(),
                          " pairs -> ", adv.CapacityBits(),
                          " bits (baseline: unbatched sparse ",
                          FmtDouble(single_baseline_ms, 2), " ms)"));
  single.SetHeader({"dense", "batch", "ms", "speedup", "identical"});
  for (const AblationResult& r : ablations) {
    single.AddRow({r.dense ? "on" : "off", r.batch ? "on" : "off",
                   FmtDouble(r.ms, 2), FmtDouble(single_baseline_ms / r.ms, 2),
                   r.identical ? "yes" : "NO"});
  }
  single.Print(std::cout);

  // --- Multi-suspect fan-out ------------------------------------------------
  // Baseline: the pre-optimization pipeline — a serial loop of unbatched,
  // sparse detections, exactly what tracing a leak against `num_suspects`
  // copies cost before this layer existed.
  std::vector<const AnswerServer*> sparse_ptrs, dense_ptrs;
  for (size_t s = 0; s < num_suspects; ++s) {
    sparse_ptrs.push_back(sparse_servers[s].get());
    dense_ptrs.push_back(dense_servers[s].get());
  }
  std::vector<AdversarialDetection> multi_reference;
  double multi_baseline_ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const double ms = TimeMs([&] {
      multi_reference.clear();
      for (const AnswerServer* s : sparse_ptrs) {
        multi_reference.push_back(
            adv.Detect(weights, *s, kBaselineOpts).ValueOrDie());
      }
    });
    multi_baseline_ms = rep == 0 ? ms : std::min(multi_baseline_ms, ms);
  }

  // The honest bar for the thread pool: a serial loop with every
  // single-suspect fast path already on (batched answers, dense views — the
  // default DetectOptions). DetectMany has to beat this, not just the
  // unbatched pre-optimization loop.
  std::vector<AdversarialDetection> serial_optimized;
  double serial_optimized_ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const double ms = TimeMs([&] {
      serial_optimized.clear();
      for (const AnswerServer* s : dense_ptrs) {
        serial_optimized.push_back(adv.Detect(weights, *s).ValueOrDie());
      }
    });
    serial_optimized_ms = rep == 0 ? ms : std::min(serial_optimized_ms, ms);
  }
  bool serial_optimized_identical = serial_optimized.size() == multi_reference.size();
  for (size_t s = 0; serial_optimized_identical && s < serial_optimized.size(); ++s) {
    serial_optimized_identical = SameDetection(multi_reference[s], serial_optimized[s]);
  }

  std::vector<FanoutResult> fanout;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    FanoutResult r;
    r.threads = threads;
    std::vector<AdversarialDetection> out;
    for (int rep = 0; rep < reps; ++rep) {
      const double ms = TimeMs([&] { out = adv.DetectMany(weights, dense_ptrs); });
      r.ms = rep == 0 ? ms : std::min(r.ms, ms);
    }
    r.identical = out.size() == multi_reference.size();
    for (size_t s = 0; r.identical && s < out.size(); ++s) {
      r.identical = SameDetection(multi_reference[s], out[s]);
    }
    fanout.push_back(r);
  }
  SetParallelThreads(0);  // restore the env/hardware default

  TextTable multi(StrCat("Multi-suspect tracing, ", num_suspects,
                         " marked copies (baseline: serial unbatched sparse ",
                         FmtDouble(multi_baseline_ms, 2), " ms)"));
  multi.SetHeader({"threads", "ms", "speedup", "suspects/s", "identical"});
  for (const FanoutResult& r : fanout) {
    multi.AddRow({StrCat(r.threads), FmtDouble(r.ms, 2),
                  FmtDouble(multi_baseline_ms / r.ms, 2),
                  FmtDouble(1000.0 * static_cast<double>(num_suspects) / r.ms, 1),
                  r.identical ? "yes" : "NO"});
  }
  multi.Print(std::cout);
  const double fanout_8t_ms = fanout.back().ms;
  const bool parallel_faster_than_serial = fanout_8t_ms < serial_optimized_ms;
  std::cout << "hardware threads visible: " << std::thread::hardware_concurrency()
            << "; speedups are vs the pre-optimization serial detector "
               "(unbatched answers, sparse weight lookups).\n";
  std::cout << "serial optimized loop (dense+batch, 1 thread): "
            << FmtDouble(serial_optimized_ms, 2) << " ms; DetectMany@8T "
            << FmtDouble(fanout_8t_ms, 2) << " ms -> parallel faster: "
            << (parallel_faster_than_serial ? "yes" : "no")
            << " (expect no on a single hardware thread; the perf CI job "
               "checks this multicore).\n";

  bool all_identical = serial_optimized_identical;
  for (const AblationResult& r : ablations) all_identical &= r.identical;
  for (const FanoutResult& r : fanout) all_identical &= r.identical;
  if (!all_identical) {
    std::cerr << "FAIL: detection output differs across ablations/threads\n";
    return 1;
  }

  // --- Scaling sweep ------------------------------------------------------
  // Fan-out tracing at large n. Distance-2 balls keep the answer index a
  // small constant per parameter so the instance — not the index — dominates
  // memory; at most 8 suspects keep the marked-copy weight maps bounded.
  // Each point runs once (no reps): plan, embed, then the serial optimized
  // loop vs DetectMany at 1 and 8 threads, outputs compared exactly.
  const uint32_t kSweepQrho = 2;
  std::vector<DetectSweepPoint> sweep;
  for (size_t sn : sweep_sizes) {
    DetectSweepPoint pt;
    pt.n = sn;
    pt.suspects = std::min<size_t>(num_suspects, 8);
    Rng srng(42);
    Structure sg = RandomBoundedDegreeGraph(sn, k, 3 * sn, false, srng);
    for (size_t r = 0; r < sg.num_relations(); ++r) pt.tuples += sg.relation(r).size();
    pt.structure_bytes = sg.BytesResident();
    DistanceQuery squery(kSweepQrho);
    SetParallelThreads(0);
    QueryIndex sindex(sg, squery, AllParams(sg, 1));
    Rng wrng(7);
    WeightMap sweights = RandomWeights(sg, 1000, 9999, wrng);
    LocalSchemeOptions sopts;
    sopts.epsilon = epsilon;
    sopts.key = {42, 99};
    sopts.encoding = PairEncoding::kAntipodal;
    LocalScheme sscheme = LocalScheme::Plan(sindex, sopts).ValueOrDie();
    AdversarialScheme sadv(sscheme, redundancy);
    pt.pairs = sscheme.CapacityBits();
    std::vector<std::unique_ptr<HonestServer>> servers;
    std::vector<const AnswerServer*> ptrs;
    for (size_t s = 0; s < pt.suspects; ++s) {
      BitVec msg(sadv.CapacityBits());
      Rng msg_rng(1000 + s);
      for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, msg_rng.Coin());
      servers.push_back(
          std::make_unique<HonestServer>(sindex, sadv.Embed(sweights, msg)));
      ptrs.push_back(servers.back().get());
    }
    std::vector<AdversarialDetection> ref;
    pt.serial_optimized_ms = TimeMs([&] {
      for (const AnswerServer* s : ptrs) {
        ref.push_back(sadv.Detect(sweights, *s).ValueOrDie());
      }
    });
    for (size_t threads : {size_t{1}, size_t{8}}) {
      SetParallelThreads(threads);
      std::vector<AdversarialDetection> out;
      const double ms = TimeMs([&] { out = sadv.DetectMany(sweights, ptrs); });
      (threads == 1 ? pt.fanout_1t_ms : pt.fanout_8t_ms) = ms;
      pt.identical &= out.size() == ref.size();
      for (size_t s = 0; pt.identical && s < out.size(); ++s) {
        pt.identical = SameDetection(ref[s], out[s]);
      }
    }
    SetParallelThreads(0);
    pt.peak_rss_kb = PeakRssKb();
    sweep.push_back(pt);
  }
  if (!sweep.empty()) {
    TextTable st(StrCat("DetectMany scaling sweep (qrho=", kSweepQrho,
                        "; serial bar = loop of optimized single-suspect "
                        "detections)"));
    st.SetHeader({"n", "tuples", "pairs", "suspects", "serial ms", "1T ms",
                  "8T ms", "8T vs serial", "B/tuple", "peak RSS MB", "identical"});
    for (const DetectSweepPoint& pt : sweep) {
      st.AddRow({StrCat(pt.n), StrCat(pt.tuples), StrCat(pt.pairs),
                 StrCat(pt.suspects), FmtDouble(pt.serial_optimized_ms, 1),
                 FmtDouble(pt.fanout_1t_ms, 1), FmtDouble(pt.fanout_8t_ms, 1),
                 FmtDouble(pt.serial_optimized_ms / pt.fanout_8t_ms, 2),
                 FmtDouble(static_cast<double>(pt.structure_bytes) /
                               static_cast<double>(pt.tuples), 1),
                 FmtDouble(static_cast<double>(pt.peak_rss_kb) / 1024.0, 1),
                 pt.identical ? "yes" : "NO"});
    }
    st.Print(std::cout);
    bool sweep_identical = true;
    for (const DetectSweepPoint& pt : sweep) sweep_identical &= pt.identical;
    if (!sweep_identical) {
      std::cerr << "FAIL: sweep detections differ across thread counts\n";
      return 1;
    }
  }

  if (json_path) {
    JsonWriter w;
    w.BeginObject();
    w.Key("instance").BeginObject();
    w.Key("n").UInt(n);
    w.Key("k").UInt(k);
    w.Key("query_rho").UInt(qrho);
    w.Key("num_params").UInt(index.num_params());
    w.Key("num_active").UInt(index.num_active());
    w.Key("pairs").UInt(scheme.CapacityBits());
    w.Key("capacity_bits").UInt(adv.CapacityBits());
    w.Key("redundancy").UInt(redundancy);
    w.Key("suspects").UInt(num_suspects);
    w.EndObject();
    w.Key("hardware_threads").UInt(std::thread::hardware_concurrency());
    w.Key("reps").Int(reps);
    w.Key("single_suspect").BeginObject();
    w.Key("baseline_description")
        .String("serial detection, unbatched answers, sparse weight lookups");
    w.Key("baseline_ms").Double(single_baseline_ms);
    w.Key("ablations").BeginArray();
    for (const AblationResult& r : ablations) {
      w.BeginObject();
      w.Key("dense_views").Bool(r.dense);
      w.Key("batch_answers").Bool(r.batch);
      w.Key("ms").Double(r.ms);
      w.Key("speedup").Double(single_baseline_ms / r.ms);
      w.Key("identical_to_baseline").Bool(r.identical);
      w.EndObject();
    }
    w.EndArray();
    w.Key("dense_batch_speedup").Double(dense_batch_speedup);
    w.EndObject();
    w.Key("multi_suspect").BeginObject();
    w.Key("baseline_description")
        .String("serial loop of pre-optimization detections over all suspects");
    w.Key("baseline_ms").Double(multi_baseline_ms);
    w.Key("serial_optimized_ms").Double(serial_optimized_ms);
    w.Key("parallel_faster_than_serial").Bool(parallel_faster_than_serial);
    w.Key("runs").BeginArray();
    for (const FanoutResult& r : fanout) {
      w.BeginObject();
      w.Key("threads").UInt(r.threads);
      w.Key("ms").Double(r.ms);
      w.Key("speedup").Double(multi_baseline_ms / r.ms);
      w.Key("suspects_per_sec")
          .Double(1000.0 * static_cast<double>(num_suspects) / r.ms);
      w.Key("identical_to_baseline").Bool(r.identical);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    if (!sweep.empty()) {
      w.Key("sweep").BeginArray();
      for (const DetectSweepPoint& pt : sweep) {
        w.BeginObject();
        w.Key("n").UInt(pt.n);
        w.Key("k").UInt(k);
        w.Key("query_rho").UInt(kSweepQrho);
        w.Key("tuples").UInt(pt.tuples);
        w.Key("pairs").UInt(pt.pairs);
        w.Key("suspects").UInt(pt.suspects);
        w.Key("serial_optimized_ms").Double(pt.serial_optimized_ms);
        w.Key("fanout_1t_ms").Double(pt.fanout_1t_ms);
        w.Key("fanout_8t_ms").Double(pt.fanout_8t_ms);
        w.Key("speedup_8t_vs_serial")
            .Double(pt.serial_optimized_ms / pt.fanout_8t_ms);
        w.Key("parallel_faster_than_serial")
            .Bool(pt.fanout_8t_ms < pt.serial_optimized_ms);
        w.Key("identical_across_threads").Bool(pt.identical);
        w.Key("structure_bytes").UInt(pt.structure_bytes);
        w.Key("bytes_per_tuple")
            .Double(pt.tuples == 0 ? 0.0
                                   : static_cast<double>(pt.structure_bytes) /
                                         static_cast<double>(pt.tuples));
        w.Key("peak_rss_kb").UInt(pt.peak_rss_kb);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
    if (!UpdateBenchJsonSection(*json_path, "detect_scale", w.str())) {
      std::cerr << "FAIL: cannot write " << *json_path << "\n";
      return 1;
    }
    std::cout << "wrote section \"detect_scale\" to " << *json_path << "\n";
  }
  return 0;
}
