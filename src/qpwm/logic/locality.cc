#include "qpwm/logic/locality.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "qpwm/structure/typemap.h"

namespace qpwm {

uint32_t GaifmanLocalityBound(uint32_t quantifier_rank) {
  uint64_t pow = 1;
  for (uint32_t i = 0; i < quantifier_rank; ++i) {
    pow *= 7;
    if (pow > (uint64_t{UINT32_MAX} * 2 + 1)) return UINT32_MAX;
  }
  uint64_t bound = (pow - 1) / 2;
  return bound > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(bound);
}

uint64_t LocalityDivergenceBound(uint32_t r, uint64_t degree_k, uint32_t rho) {
  if (degree_k <= 1) return 2ull * r * (2 * rho + 2);  // paths/matchings: sphere size.
  // Sphere of radius 2 rho + 1 in a degree-k graph has < k^(2 rho + 2)
  // elements; the paper's stated constant is 2 r k^(2 rho + 1).
  uint64_t pow = 1;
  for (uint32_t i = 0; i < 2 * rho + 1; ++i) {
    if (pow > UINT64_MAX / degree_k) return UINT64_MAX;
    pow *= degree_k;
  }
  if (pow > UINT64_MAX / (2ull * r)) return UINT64_MAX;
  return 2ull * r * pow;
}

uint64_t MaxSameTypeDivergence(const Structure& g, const ParametricQuery& query,
                               uint32_t rho, const std::vector<Tuple>& domain) {
  NeighborhoodTyper typer(g, rho);
  std::unordered_map<uint32_t, std::vector<const Tuple*>> by_type;
  for (const Tuple& a : domain) by_type[typer.TypeOf(a)].push_back(&a);

  uint64_t worst = 0;
  // qpwm-lint: allow(unordered-iter) -- max reduction, order-independent
  for (auto& [type, members] : by_type) {
    (void)type;
    std::vector<std::unordered_set<Tuple, TupleHash>> answers;
    answers.reserve(members.size());
    for (const Tuple* a : members) {
      auto w = query.Evaluate(g, *a);
      answers.emplace_back(w.begin(), w.end());
    }
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = 0; j < members.size(); ++j) {
        if (i == j) continue;
        uint64_t diff = 0;
        for (const Tuple& t : answers[i]) {
          if (!answers[j].count(t)) ++diff;
        }
        worst = std::max(worst, diff);
      }
    }
  }
  return worst;
}

}  // namespace qpwm
