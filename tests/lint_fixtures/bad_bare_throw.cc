// Fixture: bare-throw — `throw` outside the Status/QPWM_CHECK error model.
// Never compiled, only linted.
void Fail(bool bad) {
  if (bad) throw 42;
}
