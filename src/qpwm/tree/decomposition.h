// Lemma 3: carving a Sigma-tree into disjoint regions V_1..V_n, each
// yielding a *neutral pair* (b, b') of nodes such that for every parameter
// a outside V_i, b in W_a iff b' in W_a. Each region then carries one mark
// bit via the (+1, -1) trick with zero distortion outside its own region and
// at most 1 inside — the structural guarantee behind Theorem 5.
//
// Deviation from the paper (see DESIGN.md): the paper pigeonholes a pair per
// automaton hole-state; a fixed watermark needs one pair valid for *all*
// external parameters, so we pair nodes by equality of their full
// state-signature (reachable hole-state combination -> region-root state)
// and grow regions geometrically until a signature collision appears.
#ifndef QPWM_TREE_DECOMPOSITION_H_
#define QPWM_TREE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "qpwm/tree/automaton.h"
#include "qpwm/tree/bintree.h"

namespace qpwm {

/// One region of the decomposition.
struct MarkRegion {
  NodeId root = kNoNode;
  std::vector<NodeId> holes;  // roots of previously closed regions below
  std::vector<NodeId> nodes;  // V_i (excluding hole subtrees)
  NodeId b_plus = kNoNode;    // the neutral pair, if one was found
  NodeId b_minus = kNoNode;

  bool paired() const { return b_plus != kNoNode; }
};

struct DecompositionStats {
  size_t attempts = 0;        // signature searches performed
  size_t paired = 0;          // regions that yielded a pair
  size_t unpaired = 0;        // regions closed without a pair
  size_t covered_nodes = 0;   // nodes inside any region
};

struct DecompositionOptions {
  /// Keyed shuffle of pair candidates (the owner's secret drives this).
  uint64_t shuffle_seed = 0;
  /// Smallest region size at which a pair search is attempted.
  /// 0 = min(2 * (automaton states + 1), 8): Lemma 3's 2m threshold
  /// guarantees a pigeonhole pair, but the signature search verifies
  /// collisions directly, so trying small regions first only adds capacity
  /// (failed regions regrow geometrically).
  size_t min_region_size = 0;
  /// Regions larger than this close unpaired (bounds the search cost).
  /// 0 = 64 * (automaton states + 1).
  size_t max_region_size = 0;
};

/// Runs the decomposition. `dta` is the query automaton (track 0 = parameter
/// a when param_arity == 1, next track = result b). Regions are returned in
/// discovery (bottom-up) order. `candidate_filter`, when non-null, restricts
/// pair candidates to nodes with a true flag (e.g. the active weighted
/// elements, so every pair is readable through some answer set).
std::vector<MarkRegion> FindMarkRegions(const BinaryTree& t,
                                        const std::vector<uint32_t>& labels,
                                        uint32_t base_count, const Dta& dta,
                                        uint32_t param_arity,
                                        const DecompositionOptions& options,
                                        DecompositionStats* stats,
                                        const std::vector<bool>* candidate_filter =
                                            nullptr);

}  // namespace qpwm

#endif  // QPWM_TREE_DECOMPOSITION_H_
