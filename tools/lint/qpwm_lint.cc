// qpwm_lint CLI. See lint.h for the rule catalog.
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error. Advisory
// rules (unordered-iter, parallel-mutation) only affect the exit code under
// --strict; CI runs --strict so every finding gates.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int Usage(int code) {
  std::cerr
      << "usage: qpwm_lint [--strict] [--root DIR]\n"
         "       [--compile-commands build/compile_commands.json]\n"
         "       [--report lint_report.json] [--index-cache FILE] [paths...]\n"
         "\n"
         "Lints the qpwm tree (or the given files/dirs) for project\n"
         "invariants. Rules:\n";
  for (const std::string& rule : qpwm::lint::AllRules()) {
    std::cerr << "  " << rule
              << (qpwm::lint::IsAdvisoryRule(rule) ? "  (advisory)" : "")
              << "\n";
  }
  std::cerr << "Waive one line:  // qpwm-lint: allow(rule-id) -- reason\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  qpwm::lint::DriverOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(0);
    if (arg == "--strict") {
      opt.strict = true;
      continue;
    }
    auto value = [&](std::string& slot) -> bool {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires a value\n";
        return false;
      }
      slot = argv[++i];
      return true;
    };
    if (arg == "--root") {
      if (!value(opt.root)) return Usage(2);
    } else if (arg == "--compile-commands") {
      if (!value(opt.compile_commands)) return Usage(2);
    } else if (arg == "--report") {
      if (!value(opt.report)) return Usage(2);
    } else if (arg == "--index-cache") {
      if (!value(opt.index_cache)) return Usage(2);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage(2);
    } else {
      opt.paths.push_back(arg);
    }
  }

  qpwm::lint::DriverResult result;
  if (!qpwm::lint::RunLint(opt, result)) {
    std::cerr << "qpwm_lint: cannot read an input (path or compile_commands)\n";
    return 2;
  }
  for (const auto& f : result.errors) {
    std::cerr << f.file << ":" << f.line << ": error: [" << f.rule << "] "
              << f.message << "\n";
  }
  for (const auto& f : result.warnings) {
    std::cerr << f.file << ":" << f.line << ": "
              << (opt.strict ? "error" : "warning") << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!opt.report.empty() && !qpwm::lint::WriteReport(opt.report, result)) {
    std::cerr << "qpwm_lint: cannot write report " << opt.report << "\n";
    return 2;
  }
  const size_t gating =
      result.errors.size() + (opt.strict ? result.warnings.size() : 0);
  std::cerr << "qpwm_lint: " << result.files_scanned << " files ("
            << result.files_from_cache << " symbols + "
            << result.findings_from_cache << " findings from cache), "
            << result.errors.size() << " errors, " << result.warnings.size()
            << " warnings" << (opt.strict ? " (strict)" : "") << " in "
            << static_cast<long>(result.total_ms) << " ms\n";
  return gating == 0 ? 0 : 1;
}
