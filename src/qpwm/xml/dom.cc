#include "qpwm/xml/dom.h"

#include <sstream>

namespace qpwm {
namespace {

void EscapeInto(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '<': os << "&lt;"; break;
      case '>': os << "&gt;"; break;
      case '&': os << "&amp;"; break;
      case '"': os << "&quot;"; break;
      default: os << c;
    }
  }
}

void SerializeNode(const XmlDocument& doc, XmlNodeId id, int depth,
                   std::ostringstream& os) {
  const XmlNode& n = doc.node(id);
  std::string indent(2 * static_cast<size_t>(depth), ' ');
  if (n.kind == XmlNode::Kind::kText) {
    os << indent;
    EscapeInto(os, n.text);
    os << '\n';
    return;
  }
  os << indent << '<' << n.tag;
  for (const XmlAttr& a : n.attrs) {
    os << ' ' << a.name << "=\"";
    EscapeInto(os, a.value);
    os << '"';
  }
  if (n.children.empty()) {
    os << "/>\n";
    return;
  }
  os << ">\n";
  for (XmlNodeId c : n.children) SerializeNode(doc, c, depth + 1, os);
  os << indent << "</" << n.tag << ">\n";
}

}  // namespace

XmlNodeId XmlDocument::AddElement(std::string tag) {
  XmlNode n;
  n.kind = XmlNode::Kind::kElement;
  n.tag = std::move(tag);
  nodes_.push_back(std::move(n));
  return static_cast<XmlNodeId>(nodes_.size() - 1);
}

XmlNodeId XmlDocument::AddText(std::string text) {
  XmlNode n;
  n.kind = XmlNode::Kind::kText;
  n.text = std::move(text);
  nodes_.push_back(std::move(n));
  return static_cast<XmlNodeId>(nodes_.size() - 1);
}

void XmlDocument::AppendChild(XmlNodeId parent, XmlNodeId child) {
  QPWM_CHECK_LT(parent, nodes_.size());
  QPWM_CHECK_LT(child, nodes_.size());
  QPWM_CHECK_EQ(nodes_[child].parent, kNoXmlNode);
  nodes_[parent].children.push_back(child);
  nodes_[child].parent = parent;
}

void XmlDocument::AddAttribute(XmlNodeId element, std::string name, std::string value) {
  nodes_[element].attrs.push_back({std::move(name), std::move(value)});
}

void XmlDocument::SetRoot(XmlNodeId root) {
  QPWM_CHECK_LT(root, nodes_.size());
  root_ = root;
}

std::string XmlDocument::TextContent(XmlNodeId id) const {
  std::string out;
  for (XmlNodeId c : nodes_[id].children) {
    if (nodes_[c].kind == XmlNode::Kind::kText) out += nodes_[c].text;
  }
  return out;
}

Result<XmlNodeId> XmlDocument::ChildByTag(XmlNodeId id, const std::string& tag) const {
  for (XmlNodeId c : nodes_[id].children) {
    if (nodes_[c].kind == XmlNode::Kind::kElement && nodes_[c].tag == tag) return c;
  }
  return Status::NotFound("no child <" + tag + ">");
}

std::string SerializeXml(const XmlDocument& doc) {
  std::ostringstream os;
  QPWM_CHECK(doc.root() != kNoXmlNode);
  SerializeNode(doc, doc.root(), 0, os);
  return os.str();
}

}  // namespace qpwm
