#include <gtest/gtest.h>

#include "qpwm/core/answers.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/vc/vcdim.h"

namespace qpwm {
namespace {

SetSystem MakeSystem(size_t ground, std::vector<std::vector<uint32_t>> sets) {
  return SetSystem{ground, std::move(sets)};
}

TEST(ShatterTest, EmptySetShatteredByNonEmptyFamily) {
  SetSystem s = MakeSystem(3, {{0}});
  EXPECT_TRUE(IsShattered(s, {}));
}

TEST(ShatterTest, SingletonNeedsInAndOut) {
  SetSystem s = MakeSystem(3, {{0}});
  EXPECT_FALSE(IsShattered(s, {0}));  // no set avoiding 0... ({0} itself covers "in")
  SetSystem s2 = MakeSystem(3, {{0}, {}});
  EXPECT_TRUE(IsShattered(s2, {0}));
}

TEST(ShatterTest, PairNeedsFourPatterns) {
  SetSystem s = MakeSystem(4, {{}, {0}, {1}, {0, 1}});
  EXPECT_TRUE(IsShattered(s, {0, 1}));
  SetSystem missing = MakeSystem(4, {{}, {0}, {0, 1}});
  EXPECT_FALSE(IsShattered(missing, {0, 1}));
}

TEST(VcDimensionTest, PowerSetFamily) {
  // All subsets of {0,1,2}: VC = 3.
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t mask = 0; mask < 8; ++mask) {
    std::vector<uint32_t> set;
    for (uint32_t i = 0; i < 3; ++i) {
      if ((mask >> i) & 1) set.push_back(i);
    }
    sets.push_back(std::move(set));
  }
  SetSystem s = MakeSystem(3, std::move(sets));
  EXPECT_EQ(VcDimension(s), 3u);
  EXPECT_EQ(VcLowerBound(s), 3u);
}

TEST(VcDimensionTest, IntervalsHaveVcTwo) {
  // Intervals [i, j) over 6 points: VC dimension 2.
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t i = 0; i <= 6; ++i) {
    for (uint32_t j = i; j <= 6; ++j) {
      std::vector<uint32_t> set;
      for (uint32_t k = i; k < j; ++k) set.push_back(k);
      sets.push_back(std::move(set));
    }
  }
  SetSystem s = MakeSystem(6, std::move(sets));
  EXPECT_EQ(VcDimension(s), 2u);
}

TEST(VcDimensionTest, SingletonsHaveVcOne) {
  SetSystem s = MakeSystem(5, {{0}, {1}, {2}, {3}, {4}, {}});
  EXPECT_EQ(VcDimension(s), 1u);
}

TEST(VcDimensionTest, EmptyFamilyIsZero) {
  SetSystem s = MakeSystem(5, {});
  EXPECT_EQ(VcDimension(s), 0u);
}

TEST(VcDimensionTest, MaxDimCapRespected) {
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t mask = 0; mask < 32; ++mask) {
    std::vector<uint32_t> set;
    for (uint32_t i = 0; i < 5; ++i) {
      if ((mask >> i) & 1) set.push_back(i);
    }
    sets.push_back(std::move(set));
  }
  SetSystem s = MakeSystem(5, std::move(sets));
  EXPECT_EQ(VcDimension(s, 2), 2u);
}

TEST(VcLowerBoundTest, NeverExceedsExact) {
  SetSystem s = MakeSystem(6, {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {}, {1}});
  EXPECT_LE(VcLowerBound(s), VcDimension(s));
}

// --- Query-derived systems (Theorem 2 setting) ------------------------------

TEST(QuerySystemTest, ShatterInstanceIsFullyShattered) {
  // Theorem 2: on G_n, VC(psi, G) = |W| = n.
  for (uint32_t n : {2, 3, 4}) {
    Structure g = ShatterInstance(n);
    auto query = AtomQuery::Adjacency("E");
    QueryIndex index(g, *query, AllParams(g, 1));
    EXPECT_EQ(index.num_active(), n);
    SetSystem system = SetSystemFromQuery(index);
    EXPECT_EQ(VcDimension(system), n);
  }
}

TEST(QuerySystemTest, HalfShatterHasHalfDimension) {
  // Remark 1: VC = |W| / 2 while |W| = n.
  for (uint32_t n : {4, 6}) {
    Structure g = HalfShatterInstance(n);
    auto query = AtomQuery::Adjacency("E");
    QueryIndex index(g, *query, AllParams(g, 1));
    EXPECT_EQ(index.num_active(), n);
    SetSystem system = SetSystemFromQuery(index);
    EXPECT_EQ(VcDimension(system), n / 2);
  }
}

TEST(QuerySystemTest, BoundedDegreeAdjacencyHasSmallVc) {
  // Out-neighborhood sets in a degree-<=3 graph: VC bounded by a constant
  // (each set has <= 3 elements, so VC <= 3 trivially; typically less).
  Rng rng(5);
  Structure g = RandomBoundedDegreeGraph(40, 3, 100, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  SetSystem system = SetSystemFromQuery(index);
  EXPECT_LE(VcDimension(system), 3u);
}

TEST(QuerySystemTest, DeduplicatesSets) {
  Structure g = ShatterInstance(2);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  SetSystem system = SetSystemFromQuery(index);
  // 4 parameters with distinct sets ({}, {0}, {1}, {0,1}); weight vertices
  // have empty result sets (duplicate of {}).
  EXPECT_EQ(system.sets.size(), 4u);
}

}  // namespace
}  // namespace qpwm
