// Known-bad fixture: by-value std::vector<Tuple> storage in library-style
// code. Rows already live in the relations' flat CSR store; hot paths read
// them through TupleRef/TupleList views instead of rebuilding row vectors.
#include <vector>

namespace qpwm {

using Tuple = std::vector<unsigned>;

std::vector<Tuple> CopyAllRows() {  // return-by-value contract: not flagged
  std::vector<Tuple> rows;          // by-value local storage: flagged
  return rows;
}

struct RowCache {
  std::vector<Tuple> rows_;  // by-value member storage: flagged
};

void BorrowIsFine(const std::vector<Tuple>& rows) {  // reference: not flagged
  (void)rows;
}

}  // namespace qpwm
