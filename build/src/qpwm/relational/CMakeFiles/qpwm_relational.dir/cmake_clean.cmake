file(REMOVE_RECURSE
  "CMakeFiles/qpwm_relational.dir/csv.cc.o"
  "CMakeFiles/qpwm_relational.dir/csv.cc.o.d"
  "CMakeFiles/qpwm_relational.dir/table.cc.o"
  "CMakeFiles/qpwm_relational.dir/table.cc.o.d"
  "libqpwm_relational.a"
  "libqpwm_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
