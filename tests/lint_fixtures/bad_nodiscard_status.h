// Fixture: nodiscard-status — a header declaration returning Status without
// [[nodiscard]]. Never compiled, only linted.
#ifndef QPWM_TESTS_LINT_FIXTURES_BAD_NODISCARD_STATUS_H_
#define QPWM_TESTS_LINT_FIXTURES_BAD_NODISCARD_STATUS_H_

Status EmbedWatermark(int key);

#endif  // QPWM_TESTS_LINT_FIXTURES_BAD_NODISCARD_STATUS_H_
