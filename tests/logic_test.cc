#include <gtest/gtest.h>

#include "qpwm/logic/evaluator.h"
#include "qpwm/logic/locality.h"
#include "qpwm/logic/parser.h"
#include "qpwm/structure/generators.h"

namespace qpwm {
namespace {

// --- Parser ----------------------------------------------------------------

TEST(ParserTest, Atom) {
  auto f = MustParseFormula("E(x, y)");
  EXPECT_EQ(f->kind, FormulaKind::kAtom);
  EXPECT_EQ(f->relation, "E");
  EXPECT_EQ(f->vars, (std::vector<std::string>{"x", "y"}));
}

TEST(ParserTest, Equality) {
  auto f = MustParseFormula("x = y");
  EXPECT_EQ(f->kind, FormulaKind::kEq);
}

TEST(ParserTest, SetMembership) {
  auto f = MustParseFormula("x in X");
  EXPECT_EQ(f->kind, FormulaKind::kSetMember);
  EXPECT_EQ(f->set_var, "X");
}

TEST(ParserTest, PrecedenceAndOverOr) {
  auto f = MustParseFormula("E(x, y) | E(y, x) & x = y");
  ASSERT_EQ(f->kind, FormulaKind::kOr);
  EXPECT_EQ(f->right->kind, FormulaKind::kAnd);
}

TEST(ParserTest, ImplicationDesugars) {
  auto f = MustParseFormula("E(x, y) -> E(y, x)");
  ASSERT_EQ(f->kind, FormulaKind::kOr);
  EXPECT_EQ(f->left->kind, FormulaKind::kNot);
}

TEST(ParserTest, IffDesugars) {
  auto f = MustParseFormula("E(x, y) <-> E(y, x)");
  EXPECT_EQ(f->kind, FormulaKind::kAnd);
}

TEST(ParserTest, Quantifiers) {
  auto f = MustParseFormula("exists y forall z (E(y, z))");
  EXPECT_EQ(f->kind, FormulaKind::kExists);
  EXPECT_EQ(f->left->kind, FormulaKind::kForall);
  EXPECT_EQ(f->QuantifierRank(), 2u);
}

TEST(ParserTest, SetQuantifiers) {
  auto f = MustParseFormula("existsset X forallset Y (x in X & x in Y)");
  EXPECT_EQ(f->kind, FormulaKind::kExistsSet);
  EXPECT_EQ(f->left->kind, FormulaKind::kForallSet);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("E(x").ok());
  EXPECT_FALSE(ParseFormula("E(x,)").ok());
  EXPECT_FALSE(ParseFormula("x =").ok());
  EXPECT_FALSE(ParseFormula("exists (E(x, y))").ok());
  EXPECT_FALSE(ParseFormula("E(x, y) E(y, x)").ok());
  EXPECT_FALSE(ParseFormula("@").ok());
  EXPECT_FALSE(ParseFormula("x <").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* inputs[] = {
      "E(x, y)", "~(x = y)", "exists y (E(x, y) & ~(y = z))",
      "forallset X (x in X | ~(x in X))"};
  for (const char* in : inputs) {
    auto f1 = MustParseFormula(in);
    auto f2 = MustParseFormula(f1->ToString());
    EXPECT_EQ(f1->ToString(), f2->ToString()) << in;
  }
}

// --- Free variables -----------------------------------------------------------

TEST(FormulaTest, FreeVars) {
  auto f = MustParseFormula("exists y (E(x, y) & y = z)");
  auto free_vars = f->FreeVars();
  EXPECT_EQ(free_vars, (std::set<std::string>{"x", "z"}));
}

TEST(FormulaTest, FreeSetVars) {
  auto f = MustParseFormula("existsset X (x in X & y in Y)");
  EXPECT_EQ(f->FreeSetVars(), (std::set<std::string>{"Y"}));
  EXPECT_EQ(f->FreeVars(), (std::set<std::string>{"x", "y"}));
}

TEST(FormulaTest, ShadowingKeepsOuterFree) {
  auto f = MustParseFormula("E(y, y) & exists y E(y, y)");
  EXPECT_EQ(f->FreeVars(), (std::set<std::string>{"y"}));
}

TEST(FormulaTest, IsFirstOrder) {
  EXPECT_TRUE(IsFirstOrder(*MustParseFormula("exists y E(x, y)")));
  EXPECT_FALSE(IsFirstOrder(*MustParseFormula("existsset X (x in X)")));
  EXPECT_FALSE(IsFirstOrder(*MustParseFormula("x in X")));
}

TEST(FormulaTest, CloneIsDeep) {
  auto f = MustParseFormula("exists y (E(x, y))");
  auto c = f->Clone();
  c->quantified_var = "w";
  EXPECT_EQ(f->quantified_var, "y");
}

// --- Evaluator -------------------------------------------------------------------

TEST(EvaluatorTest, AtomOnCycle) {
  Structure s = CycleGraph(4, false);
  Evaluator ev(s);
  Environment env;
  env.elems["x"] = 0;
  env.elems["y"] = 1;
  EXPECT_TRUE(ev.MustEval(*MustParseFormula("E(x, y)"), env));
  env.elems["y"] = 2;
  EXPECT_FALSE(ev.MustEval(*MustParseFormula("E(x, y)"), env));
}

TEST(EvaluatorTest, ExistsAndForall) {
  Structure s = CycleGraph(4, false);
  Evaluator ev(s);
  Environment env;
  // Every vertex of a cycle has a successor.
  EXPECT_TRUE(ev.MustEval(*MustParseFormula("forall x exists y E(x, y)"), env));
  // No vertex is its own successor.
  EXPECT_FALSE(ev.MustEval(*MustParseFormula("exists x E(x, x)"), env));
}

TEST(EvaluatorTest, PathHasEndpoint) {
  Structure s = PathGraph(5, false);
  Evaluator ev(s);
  Environment env;
  EXPECT_TRUE(ev.MustEval(*MustParseFormula("exists x forall y ~E(x, y)"), env));
}

TEST(EvaluatorTest, QuantifierRestoresBinding) {
  Structure s = CycleGraph(3, false);
  Evaluator ev(s);
  Environment env;
  env.elems["x"] = 2;
  ev.MustEval(*MustParseFormula("exists x E(x, x)"), env);
  EXPECT_EQ(env.elems["x"], 2u);
}

TEST(EvaluatorTest, SetQuantifierSemantics) {
  // "There is a set containing x and closed under E that avoids y" is false
  // on a cycle (closure forces everything in).
  Structure s = CycleGraph(4, false);
  Evaluator ev(s);
  Environment env;
  env.elems["x"] = 0;
  env.elems["y"] = 2;
  auto f = MustParseFormula(
      "existsset X (x in X & ~(y in X) & forall u forall v ((u in X & E(u, v)) -> v "
      "in X))");
  EXPECT_FALSE(ev.MustEval(*f, env));
  // On a path the closure from a later vertex avoids earlier ones.
  Structure p = PathGraph(4, false);
  Evaluator ev2(p);
  env.elems["x"] = 2;
  env.elems["y"] = 0;
  EXPECT_TRUE(ev2.MustEval(*f, env));
}

TEST(EvaluatorTest, ErrorsOnUnknownRelation) {
  Structure s = CycleGraph(3, false);
  Evaluator ev(s);
  Environment env;
  env.elems["x"] = 0;
  auto r = ev.Eval(*MustParseFormula("Q(x, x)"), env);
  EXPECT_FALSE(r.ok());
}

TEST(EvaluatorTest, ErrorsOnUnboundVariable) {
  Structure s = CycleGraph(3, false);
  Evaluator ev(s);
  Environment env;
  auto r = ev.Eval(*MustParseFormula("E(x, y)"), env);
  EXPECT_FALSE(r.ok());
}

TEST(EvaluatorTest, SetQuantifierOverLargeUniverseIsRecoverable) {
  // Naive subset enumeration is capped at 2^24 environments; beyond that the
  // evaluator must return InvalidArgument, not abort the process.
  Structure s = CycleGraph(30, false);
  Evaluator ev(s);
  Environment env;
  env.elems["x"] = 0;
  auto r = ev.Eval(*MustParseFormula("existsset X (x in X)"), env);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- Locality -------------------------------------------------------------------

TEST(LocalityTest, GaifmanBoundGrowth) {
  EXPECT_EQ(GaifmanLocalityBound(0), 0u);
  EXPECT_EQ(GaifmanLocalityBound(1), 3u);
  EXPECT_EQ(GaifmanLocalityBound(2), 24u);
  EXPECT_EQ(GaifmanLocalityBound(3), 171u);
}

TEST(LocalityTest, DivergenceBound) {
  // eta = 2 r k^(2 rho + 1)
  EXPECT_EQ(LocalityDivergenceBound(1, 3, 1), 2u * 27u);
  EXPECT_EQ(LocalityDivergenceBound(2, 2, 2), 4u * 32u);
}

TEST(LocalityTest, AdjacencyQueryDivergenceWithinEta) {
  Rng rng(3);
  Structure s = RandomBoundedDegreeGraph(60, 3, 150, false, rng);
  auto query = AtomQuery::Adjacency("E");
  auto domain = AllParams(s, 1);
  uint64_t diverge = MaxSameTypeDivergence(s, *query, 1, domain);
  // Same radius-1 type => identical out-neighborhood counts; Lemma 1 bound.
  EXPECT_LE(diverge, LocalityDivergenceBound(1, 3, 1));
}

TEST(LocalityTest, ExactlyLocalOnCycle) {
  // On a vertex-transitive cycle every vertex has the same type and the same
  // out-degree; divergence is |W_a \ W_b| = 1 (different neighbor sets).
  Structure s = CycleGraph(8, true);
  auto query = AtomQuery::Adjacency("E");
  auto domain = AllParams(s, 1);
  uint64_t diverge = MaxSameTypeDivergence(s, *query, 1, domain);
  EXPECT_LE(diverge, 2u);
}

}  // namespace
}  // namespace qpwm
