// Finite relational structures (database instances): a universe {0..n-1} and
// one finite relation per signature symbol. Immutable after Build(); all the
// watermarking machinery treats the structure part as read-only (only weights
// are ever distorted — see weighted.h).
//
// Storage is flat (CSR): a relation keeps every tuple in one contiguous
// ElemId array strided by arity, and hands out lightweight TupleRef span
// views instead of per-tuple heap vectors. At 10^6 tuples the legacy
// vector-of-vector layout paid one allocation + pointer chase per tuple;
// the flat layout is one allocation per relation and scans linearly.
#ifndef QPWM_STRUCTURE_STRUCTURE_H_
#define QPWM_STRUCTURE_STRUCTURE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/structure/signature.h"
#include "qpwm/util/check.h"
#include "qpwm/util/hash.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Universe element id.
using ElemId = uint32_t;

/// An r-tuple of universe elements. Owning form — used at API boundaries and
/// for construction; bulk storage lives flat inside Relation and is read
/// through TupleRef.
using Tuple = std::vector<ElemId>;

/// Hash / equality functors so Tuple can key unordered containers.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0x12345;
    for (ElemId e : t) h = HashCombine(h, e);
    return static_cast<size_t>(h);
  }
};

/// Non-owning view of one tuple inside a Relation's flat storage. Cheap to
/// copy (pointer + length); valid until the relation's tuple set changes.
/// Compares lexicographically, including against owning Tuples, so call
/// sites migrate without behavior changes.
class TupleRef {
 public:
  TupleRef() = default;
  TupleRef(const ElemId* data, size_t size)
      : data_(data), size_(static_cast<uint32_t>(size)) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ElemId operator[](size_t i) const { return data_[i]; }
  const ElemId* data() const { return data_; }
  const ElemId* begin() const { return data_; }
  const ElemId* end() const { return data_ + size_; }

  /// Owning copy, for the rare call site that must outlive the relation.
  Tuple ToTuple() const { return Tuple(data_, data_ + size_); }

  friend bool operator==(TupleRef a, TupleRef b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(TupleRef a, TupleRef b) { return !(a == b); }
  friend bool operator<(TupleRef a, TupleRef b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(TupleRef a, const Tuple& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Tuple& a, TupleRef b) { return b == a; }
  friend bool operator!=(TupleRef a, const Tuple& b) { return !(a == b); }
  friend bool operator!=(const Tuple& a, TupleRef b) { return !(b == a); }

 private:
  const ElemId* data_ = nullptr;
  uint32_t size_ = 0;
};

/// Random-access range of TupleRef views over a relation's flat storage —
/// what Relation::tuples() returns. Indexing and iteration produce views,
/// never copies.
class TupleList {
 public:
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = TupleRef;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = TupleRef;

    iterator() = default;
    iterator(const ElemId* data, uint32_t arity, size_t index)
        : data_(data), arity_(arity), index_(index) {}

    TupleRef operator*() const { return {data_ + index_ * arity_, arity_}; }
    TupleRef operator[](difference_type k) const { return *(*this + k); }
    iterator& operator++() { ++index_; return *this; }
    iterator operator++(int) { iterator t = *this; ++index_; return t; }
    iterator& operator--() { --index_; return *this; }
    iterator& operator+=(difference_type k) { index_ += k; return *this; }
    friend iterator operator+(iterator it, difference_type k) { it.index_ += k; return it; }
    friend difference_type operator-(iterator a, iterator b) {
      return static_cast<difference_type>(a.index_) - static_cast<difference_type>(b.index_);
    }
    friend bool operator==(iterator a, iterator b) { return a.index_ == b.index_; }
    friend bool operator!=(iterator a, iterator b) { return a.index_ != b.index_; }
    friend bool operator<(iterator a, iterator b) { return a.index_ < b.index_; }

   private:
    const ElemId* data_ = nullptr;
    uint32_t arity_ = 0;
    size_t index_ = 0;
  };

  TupleList() = default;
  TupleList(const ElemId* data, uint32_t arity, size_t count)
      : data_(data), arity_(arity), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  TupleRef operator[](size_t i) const { return {data_ + i * arity_, arity_}; }
  TupleRef front() const { return (*this)[0]; }
  TupleRef back() const { return (*this)[count_ - 1]; }
  iterator begin() const { return {data_, arity_, 0}; }
  iterator end() const { return {data_, arity_, count_}; }

 private:
  const ElemId* data_ = nullptr;
  uint32_t arity_ = 0;
  size_t count_ = 0;
};

/// One interpreted relation: a deduplicated, sorted set of tuples with O(1)
/// membership tests. Tuples live in one flat ElemId vector strided by arity;
/// membership probes an open-addressing index of tuple positions, built
/// lazily on the first Contains/Add after a bulk load (bulk loads that never
/// test membership — neighborhood extraction — skip the hashing entirely).
/// The deferred build makes the first Contains call non-thread-safe on a
/// shared relation; qpwm only bulk-loads thread-private local structures.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, uint32_t arity) : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  uint32_t arity() const { return arity_; }
  TupleList tuples() const { return {flat_.data(), arity_, count_}; }
  TupleRef tuple(size_t i) const { return {flat_.data() + i * arity_, arity_}; }
  size_t size() const { return count_; }

  /// Inserts a tuple (deduplicated). Arity-checked.
  void Add(const Tuple& t) {
    QPWM_CHECK_EQ(t.size(), arity_);
    AddSpan(t.data());
  }
  void Add(TupleRef t) {
    QPWM_CHECK_EQ(t.size(), arity_);
    AddSpan(t.data());
  }

  /// Replaces the tuple list wholesale. Caller guarantees the tuples are
  /// distinct. Legacy (copying) form; prefer SwapFlatUnchecked on hot paths.
  void SetTuplesUnchecked(const std::vector<Tuple>& tuples);

  /// Replaces the tuple list with `flat` (concatenated records, size a
  /// multiple of arity; caller guarantees distinct records). The previous
  /// storage is swapped back into `flat`, so an arena caller alternating
  /// between two buffers reaches zero steady-state allocation.
  void SwapFlatUnchecked(std::vector<ElemId>& flat);

  bool Contains(const Tuple& t) const {
    return t.size() == arity_ && count_ > 0 && ContainsSpan(t.data());
  }
  bool Contains(TupleRef t) const {
    return t.size() == arity_ && count_ > 0 && ContainsSpan(t.data());
  }

  /// Sorts the tuple list for deterministic iteration order.
  void Seal();

  /// Drops every tuple but keeps the allocated capacity (arena reuse).
  void ClearKeepCapacity();

  /// Heap bytes held by tuple storage and the membership index.
  size_t BytesResident() const {
    return flat_.capacity() * sizeof(ElemId) + slots_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  uint64_t HashSpan(const ElemId* d) const {
    uint64_t h = 0x12345;
    for (uint32_t i = 0; i < arity_; ++i) h = HashCombine(h, d[i]);
    return h;
  }
  bool EqualSpan(size_t index, const ElemId* d) const {
    const ElemId* own = flat_.data() + index * arity_;
    for (uint32_t i = 0; i < arity_; ++i) {
      if (own[i] != d[i]) return false;
    }
    return true;
  }
  void AddSpan(const ElemId* d);
  bool ContainsSpan(const ElemId* d) const;
  void RebuildSlots(size_t capacity_for) const;
  void InsertSlot(size_t index) const;

  std::string name_;
  uint32_t arity_ = 0;
  size_t count_ = 0;
  std::vector<ElemId> flat_;  // count_ * arity_ ids, record-major
  // Open-addressing membership index over record positions; valid iff
  // indexed_count_ == count_ and non-empty. Lazily (re)built.
  mutable std::vector<uint32_t> slots_;
  mutable size_t indexed_count_ = 0;
};

/// Process-unique generation stamp, re-issued on copy/move and bumped on
/// mutation. Lazy per-structure caches (see logic/query.h) key on the
/// structure's address, which the allocator happily reuses after a structure
/// dies; a (pointer, generation) pair identifies one logical structure state,
/// so a stale entry for a dead structure that lived at the same address — or
/// for this structure before an in-place mutation — can never satisfy a
/// lookup. Values are equality-compared only and never serialized.
class GenerationStamp {
 public:
  GenerationStamp() : v_(Next()) {}
  GenerationStamp(const GenerationStamp&) : v_(Next()) {}
  GenerationStamp(GenerationStamp&&) noexcept : v_(Next()) {}
  GenerationStamp& operator=(const GenerationStamp&) {
    v_ = Next();
    return *this;
  }
  GenerationStamp& operator=(GenerationStamp&&) noexcept {
    v_ = Next();
    return *this;
  }

  uint64_t value() const { return v_; }
  void Bump() { v_ = Next(); }

 private:
  static uint64_t Next();
  uint64_t v_;
};

/// A finite tau-structure. Element names are optional and only used for
/// human-readable output (examples, figures).
class Structure {
 public:
  Structure() = default;
  Structure(Signature sig, size_t universe_size);

  const Signature& signature() const { return sig_; }
  size_t universe_size() const { return n_; }

  const Relation& relation(size_t i) const { return relations_[i]; }
  /// Non-const access assumes the caller mutates: the generation bumps so
  /// every cached per-structure artifact is invalidated.
  Relation& mutable_relation(size_t i) {
    gen_.Bump();
    return relations_[i];
  }
  size_t num_relations() const { return relations_.size(); }

  /// Stamp identifying this structure object's current state; see
  /// GenerationStamp. Fresh after copy/move, bumped by mutation.
  uint64_t generation() const { return gen_.value(); }

  /// Relation lookup by name (aborts if missing; use signature().Find for the
  /// fallible variant).
  const Relation& relation(const std::string& name) const;

  /// Adds a tuple to relation `rel`; all elements must be < universe_size().
  void AddTuple(size_t rel, const Tuple& t);
  void AddTuple(const std::string& rel, const Tuple& t);

  /// Sorts every relation; call once after loading.
  void Seal();

  /// Arena reuse: resizes the universe, drops every tuple and element name
  /// but keeps the signature and all allocated capacity. Bumps the
  /// generation. Neighborhood extraction recycles one local structure this
  /// way instead of constructing a fresh one per element.
  void ResetUniverse(size_t universe_size);

  /// Optional display names.
  void SetElementName(ElemId e, std::string name);
  const std::string& ElementName(ElemId e) const;
  /// Id of the element named `name`, if any.
  [[nodiscard]] Result<ElemId> FindElement(const std::string& name) const;

  /// Total number of tuples across relations.
  size_t TotalTuples() const;

  /// Heap bytes held by relation storage (flat tuples + membership indexes).
  size_t BytesResident() const;

 private:
  Signature sig_;
  size_t n_ = 0;
  std::vector<Relation> relations_;
  std::vector<std::string> element_names_;
  std::unordered_map<std::string, ElemId> name_index_;
  GenerationStamp gen_;
};

/// Per-element incidence index: for each element, the (relation, tuple index)
/// pairs whose tuple contains it, CSR-packed (one offsets array + one entries
/// array). Built once; makes neighborhood extraction O(local size) instead of
/// O(structure size).
class IncidenceIndex {
 public:
  struct Entry {
    uint32_t relation;
    uint32_t tuple_index;
  };

  explicit IncidenceIndex(const Structure& s);

  std::span<const Entry> Incident(ElemId e) const {
    return {entries_.data() + offsets_[e], offsets_[e + 1] - offsets_[e]};
  }

  size_t BytesResident() const {
    return offsets_.capacity() * sizeof(uint32_t) + entries_.capacity() * sizeof(Entry);
  }

 private:
  std::vector<uint32_t> offsets_;  // universe_size + 1
  std::vector<Entry> entries_;
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_STRUCTURE_H_
