file(REMOVE_RECURSE
  "CMakeFiles/qpwm_core.dir/adversarial.cc.o"
  "CMakeFiles/qpwm_core.dir/adversarial.cc.o.d"
  "CMakeFiles/qpwm_core.dir/answers.cc.o"
  "CMakeFiles/qpwm_core.dir/answers.cc.o.d"
  "CMakeFiles/qpwm_core.dir/attack.cc.o"
  "CMakeFiles/qpwm_core.dir/attack.cc.o.d"
  "CMakeFiles/qpwm_core.dir/distortion.cc.o"
  "CMakeFiles/qpwm_core.dir/distortion.cc.o.d"
  "CMakeFiles/qpwm_core.dir/incremental.cc.o"
  "CMakeFiles/qpwm_core.dir/incremental.cc.o.d"
  "CMakeFiles/qpwm_core.dir/local_scheme.cc.o"
  "CMakeFiles/qpwm_core.dir/local_scheme.cc.o.d"
  "CMakeFiles/qpwm_core.dir/pairs.cc.o"
  "CMakeFiles/qpwm_core.dir/pairs.cc.o.d"
  "CMakeFiles/qpwm_core.dir/tree_scheme.cc.o"
  "CMakeFiles/qpwm_core.dir/tree_scheme.cc.o.d"
  "libqpwm_core.a"
  "libqpwm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
