// Thread-safety and lifetime annotations, consumed twice:
//
//   1. By clang's -Wthread-safety capability analysis (Hutchins et al.,
//      "C/C++ Thread Safety Analysis"): under clang the QPWM_* macros expand
//      to the real __attribute__((guarded_by(...))) family, and qpwm::Mutex /
//      qpwm::MutexLock are annotated capability types the analysis can track.
//      Under gcc (or any non-clang compiler) every macro expands to nothing
//      and Mutex/MutexLock are plain std::mutex wrappers — zero overhead,
//      zero semantic change. CI compiles one annotated TU with
//      -Wthread-safety -Werror to keep the clang side honest.
//
//   2. By qpwm_lint's cross-TU lock-discipline and view-escape rules: the
//      lint tokenizer sees the macro *uses* (not their expansion), so
//      QPWM_GUARDED_BY(mu) on a member declaration tells the analyzer which
//      mutex protects the member, and the rule then requires every member
//      function touching it to hold that mutex (or carry QPWM_REQUIRES).
//      QPWM_VIEW_OF / QPWM_VIEW_TYPE are lint-only lifetime annotations with
//      no compiler counterpart at all.
//
// Which to apply where:
//   QPWM_GUARDED_BY(mu)   on a data member: reads and writes require `mu`.
//   QPWM_REQUIRES(mu)     on a member function: callers must hold `mu`; the
//                         body may then touch `mu`-guarded members lock-free.
//   QPWM_VIEW_OF(owner)   on a view-typed data member (TupleRef, spans,
//                         DenseWeightView, WitnessPlan, ...): names the
//                         owning object the view points into, asserting the
//                         owner outlives this member. Without it, a stored
//                         view is a view-escape finding (the PR-3 bug class).
//   QPWM_VIEW_TYPE        on a class: declares the class itself view-like
//                         (it holds non-owning pointers into some owner), so
//                         qpwm_lint tracks members of this type like spans.
#ifndef QPWM_UTIL_THREAD_ANNOTATIONS_H_
#define QPWM_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__)
#define QPWM_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define QPWM_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

#define QPWM_CAPABILITY(x) QPWM_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#define QPWM_SCOPED_CAPABILITY \
  QPWM_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
#define QPWM_GUARDED_BY(x) QPWM_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#define QPWM_PT_GUARDED_BY(x) \
  QPWM_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#define QPWM_REQUIRES(...) \
  QPWM_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define QPWM_ACQUIRE(...) \
  QPWM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define QPWM_RELEASE(...) \
  QPWM_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define QPWM_TRY_ACQUIRE(...) \
  QPWM_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define QPWM_EXCLUDES(...) \
  QPWM_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#define QPWM_NO_THREAD_SAFETY_ANALYSIS \
  QPWM_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

// Lint-only lifetime annotations (see header comment). Both expand to
// nothing under every compiler; qpwm_lint reads the macro uses.
#define QPWM_VIEW_OF(owner)
#define QPWM_VIEW_TYPE

namespace qpwm {

/// std::mutex wrapped in a clang capability so -Wthread-safety can track
/// acquisition. Drop-in for std::mutex wherever no condition_variable is
/// involved (condition variables need std::mutex; the thread-pool internals
/// in util/parallel.cc keep std::mutex for that reason).
class QPWM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QPWM_ACQUIRE() { mu_.lock(); }
  void unlock() QPWM_RELEASE() { mu_.unlock(); }
  bool try_lock() QPWM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over qpwm::Mutex, annotated so clang sees the acquire/release
/// pair (std::lock_guard is not annotated and would be invisible to the
/// analysis). qpwm_lint's lock-discipline rule recognizes MutexLock,
/// lock_guard, unique_lock and scoped_lock alike.
class QPWM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QPWM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() QPWM_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace qpwm

#endif  // QPWM_UTIL_THREAD_ANNOTATIONS_H_
