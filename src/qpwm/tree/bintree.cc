#include "qpwm/tree/bintree.h"

#include <vector>

#include "qpwm/util/random.h"
#include "qpwm/util/str.h"

namespace qpwm {

uint32_t Alphabet::Intern(const std::string& symbol) {
  auto it = index_.find(symbol);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(symbol);
  index_.emplace(symbol, id);
  return id;
}

Result<uint32_t> Alphabet::Find(const std::string& symbol) const {
  auto it = index_.find(symbol);
  if (it == index_.end()) return Status::NotFound("unknown symbol '" + symbol + "'");
  return it->second;
}

NodeId BinaryTree::AddNode(uint32_t label) {
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  left_.push_back(kNoNode);
  right_.push_back(kNoNode);
  parent_.push_back(kNoNode);
  return id;
}

void BinaryTree::SetLeft(NodeId parent, NodeId child) {
  QPWM_CHECK_EQ(left_[parent], kNoNode);
  QPWM_CHECK_EQ(parent_[child], kNoNode);
  left_[parent] = child;
  parent_[child] = parent;
}

void BinaryTree::SetRight(NodeId parent, NodeId child) {
  QPWM_CHECK_EQ(right_[parent], kNoNode);
  QPWM_CHECK_EQ(parent_[child], kNoNode);
  right_[parent] = child;
  parent_[child] = parent;
}

Status BinaryTree::Finalize() {
  const size_t n = labels_.size();
  if (n == 0) return Status::InvalidArgument("empty tree");

  root_ = kNoNode;
  for (NodeId v = 0; v < n; ++v) {
    if (parent_[v] == kNoNode) {
      if (root_ != kNoNode) return Status::InvalidArgument("multiple roots");
      root_ = v;
    }
  }
  if (root_ == kNoNode) return Status::InvalidArgument("no root (cycle)");

  postorder_.clear();
  postorder_.reserve(n);
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  subtree_size_.assign(n, 1);

  // Iterative DFS: (node, phase) with phase 0 = enter, 1 = exit.
  uint32_t clock = 0;
  std::vector<std::pair<NodeId, int>> stack{{root_, 0}};
  size_t visited = 0;
  while (!stack.empty()) {
    auto [v, phase] = stack.back();
    stack.pop_back();
    if (phase == 0) {
      ++visited;
      tin_[v] = clock++;
      stack.emplace_back(v, 1);
      if (right_[v] != kNoNode) stack.emplace_back(right_[v], 0);
      if (left_[v] != kNoNode) stack.emplace_back(left_[v], 0);
    } else {
      tout_[v] = clock++;
      postorder_.push_back(v);
      if (left_[v] != kNoNode) subtree_size_[v] += subtree_size_[left_[v]];
      if (right_[v] != kNoNode) subtree_size_[v] += subtree_size_[right_[v]];
    }
  }
  if (visited != n) {
    return Status::InvalidArgument(
        StrCat("tree has ", n - visited, " node(s) unreachable from the root"));
  }
  return Status::OK();
}

BinaryTree RandomBinaryTree(size_t n, uint32_t num_labels, Rng& rng) {
  QPWM_CHECK_GE(n, 1u);
  BinaryTree t;
  t.AddNode(static_cast<uint32_t>(rng.Below(num_labels)));
  // Free (parent, side) slots; side 0 = left, 1 = right.
  std::vector<std::pair<NodeId, int>> slots{{0, 0}, {0, 1}};
  for (size_t i = 1; i < n; ++i) {
    size_t pick = static_cast<size_t>(rng.Below(slots.size()));
    auto [parent, side] = slots[pick];
    slots[pick] = slots.back();
    slots.pop_back();
    NodeId v = t.AddNode(static_cast<uint32_t>(rng.Below(num_labels)));
    if (side == 0) {
      t.SetLeft(parent, v);
    } else {
      t.SetRight(parent, v);
    }
    slots.emplace_back(v, 0);
    slots.emplace_back(v, 1);
  }
  QPWM_CHECK(t.Finalize().ok());
  return t;
}

BinaryTree ChainTree(size_t n, uint32_t num_labels) {
  QPWM_CHECK_GE(n, 1u);
  BinaryTree t;
  NodeId prev = t.AddNode(0);
  for (size_t i = 1; i < n; ++i) {
    NodeId v = t.AddNode(static_cast<uint32_t>(i % num_labels));
    t.SetLeft(prev, v);
    prev = v;
  }
  QPWM_CHECK(t.Finalize().ok());
  return t;
}

BinaryTree CompleteTree(size_t n, uint32_t num_labels) {
  QPWM_CHECK_GE(n, 1u);
  BinaryTree t;
  for (size_t i = 0; i < n; ++i) t.AddNode(static_cast<uint32_t>(i % num_labels));
  for (size_t i = 0; i < n; ++i) {
    size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n) t.SetLeft(static_cast<NodeId>(i), static_cast<NodeId>(l));
    if (r < n) t.SetRight(static_cast<NodeId>(i), static_cast<NodeId>(r));
  }
  QPWM_CHECK(t.Finalize().ok());
  return t;
}

}  // namespace qpwm
