#include <gtest/gtest.h>

#include <algorithm>

#include "qpwm/tree/query.h"
#include "qpwm/util/random.h"
#include "qpwm/xml/parser.h"
#include "qpwm/xml/xpath.h"

namespace qpwm {
namespace {

TEST(XPathParseTest, PlainSteps) {
  auto q = XPathQuery::Parse("/school/student/exam").ValueOrDie();
  ASSERT_EQ(q.steps().size(), 3u);
  EXPECT_EQ(q.steps()[0].tag, "school");
  EXPECT_EQ(q.steps()[2].tag, "exam");
  EXPECT_FALSE(q.has_param());
}

TEST(XPathParseTest, ParamPredicate) {
  auto q = XPathQuery::Parse("school/student[firstname=$1]/exam").ValueOrDie();
  ASSERT_EQ(q.steps().size(), 3u);
  EXPECT_EQ(q.steps()[1].pred_tag.value(), "firstname");
  EXPECT_TRUE(q.steps()[1].pred_is_param);
  EXPECT_TRUE(q.has_param());
}

TEST(XPathParseTest, LiteralPredicate) {
  auto q = XPathQuery::Parse("school/student[firstname='John']/exam").ValueOrDie();
  EXPECT_EQ(q.steps()[1].pred_literal.value(), "John");
  EXPECT_FALSE(q.has_param());
}

TEST(XPathParseTest, BareLiteral) {
  auto q = XPathQuery::Parse("a/b[c=John]").ValueOrDie();
  EXPECT_EQ(q.steps()[1].pred_literal.value(), "John");
}

TEST(XPathParseTest, Errors) {
  EXPECT_FALSE(XPathQuery::Parse("").ok());
  EXPECT_FALSE(XPathQuery::Parse("a///b").ok());
  EXPECT_FALSE(XPathQuery::Parse("a/b/").ok());
  EXPECT_FALSE(XPathQuery::Parse("a/b[c]").ok());
  EXPECT_FALSE(XPathQuery::Parse("a/b[c=$1").ok());
  EXPECT_FALSE(XPathQuery::Parse("a[x=$1]/b[y=$1]").ok());  // two params
}

TEST(XPathParseTest, DescendantAxis) {
  auto q = XPathQuery::Parse("school//exam").ValueOrDie();
  ASSERT_EQ(q.steps().size(), 2u);
  EXPECT_FALSE(q.steps()[0].descendant_axis);
  EXPECT_TRUE(q.steps()[1].descendant_axis);

  auto anywhere = XPathQuery::Parse("//exam").ValueOrDie();
  ASSERT_EQ(anywhere.steps().size(), 1u);
  EXPECT_TRUE(anywhere.steps()[0].descendant_axis);
}

TEST(XPathDomTest, DescendantAxisSkipsLevels) {
  XmlDocument doc = MustParseXml(
      "<a><b><c>1</c></b><c>2</c><d><e><c>3</c></e></d></a>");
  auto q = XPathQuery::Parse("a//c").ValueOrDie();
  EXPECT_EQ(q.EvaluateOnDom(doc, "").size(), 3u);
  auto direct = XPathQuery::Parse("a/c").ValueOrDie();
  EXPECT_EQ(direct.EvaluateOnDom(doc, "").size(), 1u);
  auto anywhere = XPathQuery::Parse("//c").ValueOrDie();
  EXPECT_EQ(anywhere.EvaluateOnDom(doc, "").size(), 3u);
}

TEST(XPathDomTest, LeadingDescendantMatchesRootToo) {
  XmlDocument doc = MustParseXml("<c><c>1</c></c>");
  auto q = XPathQuery::Parse("//c").ValueOrDie();
  EXPECT_EQ(q.EvaluateOnDom(doc, "").size(), 2u);
}

TEST(XPathDomTest, SchoolExample) {
  XmlDocument doc = SchoolExampleDocument();
  auto q = XPathQuery::Parse("school/student[firstname=$1]/exam").ValueOrDie();
  auto roberts = q.EvaluateOnDom(doc, "Robert");
  ASSERT_EQ(roberts.size(), 2u);
  Weight f = 0;
  for (XmlNodeId id : roberts) f += std::stoll(doc.TextContent(id));
  EXPECT_EQ(f, 28);  // the paper's f(Robert) = 16 + 12
  EXPECT_EQ(q.EvaluateOnDom(doc, "John").size(), 1u);
  EXPECT_EQ(q.EvaluateOnDom(doc, "Nobody").size(), 0u);
}

TEST(XPathDomTest, LiteralPredicateFilters) {
  XmlDocument doc = SchoolExampleDocument();
  auto q = XPathQuery::Parse("school/student[lastname='Smith']/exam").ValueOrDie();
  auto hits = q.EvaluateOnDom(doc, "");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(doc.TextContent(hits[0]), "12");
}

TEST(XPathDomTest, RootTagMustMatch) {
  XmlDocument doc = SchoolExampleDocument();
  auto q = XPathQuery::Parse("university/student/exam").ValueOrDie();
  EXPECT_TRUE(q.EvaluateOnDom(doc, "").empty());
}

class XPathAutomatonTest : public ::testing::Test {
 protected:
  // Checks automaton evaluation against DOM semantics for every parameter
  // text node.
  void CrossValidate(const XmlDocument& doc, const std::string& xpath) {
    auto q = XPathQuery::Parse(xpath).ValueOrDie();
    auto enc = EncodeXml(doc, {"exam"}).ValueOrDie();
    auto compiled = q.Compile(enc);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    const Dta& dta = compiled.value().dta;
    const auto base = static_cast<uint32_t>(enc.sigma.size());

    if (!q.has_param()) {
      auto w = EvaluateWa(enc.tree, enc.tree.labels(), base, dta, 0, 0);
      auto dom = q.EvaluateOnDom(doc, "");
      ASSERT_EQ(w.size(), dom.size());
      for (NodeId b : w) {
        XmlNodeId xml = enc.tree_to_xml[b];
        EXPECT_TRUE(std::find(dom.begin(), dom.end(), xml) != dom.end());
      }
      return;
    }

    auto params = q.ParamTreeNodes(enc);
    ASSERT_FALSE(params.empty());
    for (NodeId p : params) {
      const std::string& value = enc.sigma.Name(enc.tree.label(p));
      auto w = EvaluateWa(enc.tree, enc.tree.labels(), base, dta, 1, p);
      auto dom = q.EvaluateOnDom(doc, value);
      ASSERT_EQ(w.size(), dom.size()) << "param " << value;
      for (NodeId b : w) {
        XmlNodeId xml = enc.tree_to_xml[b];
        EXPECT_TRUE(std::find(dom.begin(), dom.end(), xml) != dom.end());
      }
    }
  }
};

TEST_F(XPathAutomatonTest, SchoolParamQuery) {
  CrossValidate(SchoolExampleDocument(), "school/student[firstname=$1]/exam");
}

TEST_F(XPathAutomatonTest, SchoolLiteralQuery) {
  CrossValidate(SchoolExampleDocument(), "school/student[firstname='Robert']/exam");
}

TEST_F(XPathAutomatonTest, SchoolPlainQuery) {
  CrossValidate(SchoolExampleDocument(), "school/student/exam");
}

TEST_F(XPathAutomatonTest, AbsentLiteralMatchesNothing) {
  CrossValidate(SchoolExampleDocument(), "school/student[firstname='Zork']/exam");
}

TEST_F(XPathAutomatonTest, DescendantAxisQuery) {
  CrossValidate(SchoolExampleDocument(), "school//exam");
}

TEST_F(XPathAutomatonTest, AnywhereQuery) {
  CrossValidate(SchoolExampleDocument(), "//exam");
}

TEST_F(XPathAutomatonTest, DescendantWithParam) {
  CrossValidate(SchoolExampleDocument(), "school//student[firstname=$1]/exam");
}

TEST_F(XPathAutomatonTest, RandomDocs) {
  Rng rng(41);
  for (int trial = 0; trial < 3; ++trial) {
    XmlDocument doc = RandomSchoolDocument(8 + rng.Below(10), rng, 0, 20, 2);
    CrossValidate(doc, "school/student[firstname=$1]/exam");
  }
}

TEST(XPathParamNodesTest, FindsTextNodes) {
  XmlDocument doc = SchoolExampleDocument();
  auto q = XPathQuery::Parse("school/student[firstname=$1]/exam").ValueOrDie();
  auto enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  auto params = q.ParamTreeNodes(enc);
  EXPECT_EQ(params.size(), 3u);  // one firstname text node per student
  for (NodeId p : params) {
    const std::string& name = enc.sigma.Name(enc.tree.label(p));
    EXPECT_TRUE(name == "John" || name == "Robert");
  }
}

}  // namespace
}  // namespace qpwm
