// bench_stream — the update-stream soak driver: a long-running watermarked
// server ingesting a seeded honest + hostile mutation mix while epoch-
// snapshot detection runs concurrently against it.
//
// Per scheduling window, two lanes run in parallel: the write lane generates
// and submits `--window` updates to the StreamServer; the detect lane runs
// one EpochDetector tick against the snapshot published at the previous
// epoch seal (never the live state — the whole point of epoch snapshots).
// After both lanes join, the staged structural batch is admitted through the
// Theorem 8 type gate and the next epoch is published.
//
// Everything that reaches BENCH_stream.json is deterministic for a fixed
// seed at any --threads value: traffic and faults are seeded, latency is
// measured in virtual ticks (answer rows + penalties + backoff), and the two
// lanes share no mutable state. Wall-clock throughput is printed to stdout
// only. The run fails (exit 1) if the accounting invariant breaks, if any
// detect pass crashes out, or — unless --no-require-match — if the final
// fault-free audit is not a MATCH.
//
// --json[=PATH] writes/merges the "stream_soak" section of
// BENCH_stream.json.
#include <chrono>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "qpwm/coding/coded_watermark.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/stream/detect_loop.h"
#include "qpwm/stream/report.h"
#include "qpwm/stream/stream_server.h"
#include "qpwm/stream/update.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"

using namespace qpwm;

namespace {

std::string FmtFixed4(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

int Usage() {
  std::cerr << "usage: bench_stream [--json[=PATH]] [--updates N] [--window W]\n"
               "                    [--hostile F] [--seed S] [--threads T]\n"
               "                    [--n N] [--redundancy R] [--codec SPEC]\n"
               "                    [--epsilon E] [--no-require-match]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  size_t updates = 6000;
  size_t window = 300;
  double hostile = 0.15;
  uint64_t seed = 42;
  size_t threads = 0;  // 0 = leave the env/hardware default
  size_t n = 600;
  size_t redundancy = 5;
  std::string codec_spec = "hamming";
  double epsilon = 0.34;
  bool require_match = true;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_stream.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--updates" && i + 1 < argc) {
      updates = std::stoul(argv[++i]);
    } else if (arg == "--window" && i + 1 < argc) {
      window = std::stoul(argv[++i]);
    } else if (arg == "--hostile" && i + 1 < argc) {
      hostile = std::stod(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::stoul(argv[++i]);
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::stoul(argv[++i]);
    } else if (arg == "--redundancy" && i + 1 < argc) {
      redundancy = std::stoul(argv[++i]);
    } else if (arg == "--codec" && i + 1 < argc) {
      codec_spec = argv[++i];
    } else if (arg == "--epsilon" && i + 1 < argc) {
      epsilon = std::stod(argv[++i]);
    } else if (arg == "--no-require-match") {
      require_match = false;
    } else {
      return Usage();
    }
  }
  if (window == 0 || updates == 0 || n < 8) return Usage();
  if (threads > 0) SetParallelThreads(threads);

  std::cout << "=== bench_stream: detect-under-write soak (n=" << n
            << ", updates=" << updates << ", window=" << window
            << ", hostile=" << FmtFixed4(hostile) << ", seed=" << seed
            << ", threads=" << ParallelThreads() << ") ===\n";

  // Workload: a symmetric cycle — 2-regular, so honest double-edge swaps
  // are usually type-preserving (Theorem 8 admits them) while any hostile
  // degree-changing edit trips the gate.
  Rng rng(seed);
  Structure g = CycleGraph(n, /*symmetric=*/true);
  DistanceQuery query(1);
  QueryIndex index(g, query, AllParams(g, 1));
  WeightMap weights = RandomWeights(g, 1000, 9999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = epsilon;
  opts.key = {seed, 99};
  opts.encoding = PairEncoding::kAntipodal;
  Result<LocalScheme> planned = LocalScheme::Plan(index, opts);
  if (!planned.ok()) {
    std::cerr << "FAIL: planning: " << planned.status() << "\n";
    return 1;
  }
  const LocalScheme& scheme = planned.value();
  AdversarialScheme adv(scheme, redundancy);
  Result<std::unique_ptr<MessageCodec>> codec = MakeCodec(codec_spec);
  if (!codec.ok()) {
    std::cerr << "FAIL: " << codec.status() << "\n";
    return 2;
  }
  CodedWatermark coded(adv, *codec.value());
  if (coded.PayloadBits() == 0) {
    std::cerr << "FAIL: zero payload capacity (pairs=" << scheme.CapacityBits()
              << ", redundancy=" << redundancy << ")\n";
    return 1;
  }

  BitVec payload(coded.PayloadBits());
  Rng payload_rng(seed + 1);
  for (size_t i = 0; i < payload.size(); ++i) payload.Set(i, payload_rng.Coin());
  WeightMap marked = coded.Embed(weights, payload);
  std::cout << "planned " << scheme.CapacityBits() << " pairs -> "
            << adv.CapacityBits() << " channel bits -> " << coded.PayloadBits()
            << " payload bits (codec " << codec.value()->Name()
            << ", redundancy " << redundancy << ")\n";

  StreamServer server(scheme, weights, std::move(marked));
  UpdateMixOptions mix;
  mix.hostile_frac = hostile;
  // Honest structural churn (admitted 2-swaps) is what genuinely erodes
  // pair witnesses over time — hostile structural traffic is quarantined.
  // Real maintenance traffic is overwhelmingly weight updates, so keep the
  // admitted swap rate low enough that the mark survives the whole soak
  // while the per-epoch survival curve still shows pairs_erased climbing.
  mix.honest_structural_frac = 0.01;
  UpdateGenerator generator(seed + 2, mix);
  EpochDetector detector(coded, payload, seed + 3);

  const size_t windows = (updates + window - 1) / window;
  std::shared_ptr<const StreamSnapshot> snap = server.snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t w = 0; w < windows; ++w) {
    const size_t count = std::min(window, updates - w * window);
    // Two lanes, no shared mutable state: the write lane owns the server and
    // generator, the detect lane reads the previous epoch's frozen snapshot.
    // Serial execution (1 thread) runs lane 0 then lane 1 — identical
    // results by construction.
    ParallelMap<int>(2, [&](size_t lane) {
      if (lane == 0) {
        for (size_t j = 0; j < count; ++j) {
          server.Ingest(generator.Next(server.structure()));
        }
      } else {
        detector.Tick(*snap);
      }
      return 0;
    });
    snap = server.SealEpoch();
  }
  const auto t1 = std::chrono::steady_clock::now();
  server.Freeze();

  const DetectOutcome audit = detector.Audit(*snap);
  const StreamReport report =
      BuildStreamReport(generator, server, detector, audit);

  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const StreamCounters& c = report.counters;
  std::cout << "soak: " << report.generated << " updates ("
            << report.hostile_generated << " hostile) over "
            << c.epochs_sealed << " epochs; applied " << c.applied
            << ", quarantined " << c.rejected << " (fallback epochs "
            << c.fallback_epochs << ")\n";
  std::cout << "detection: " << report.passes_completed << " passes, retried "
            << report.retried << ", gave up " << report.gave_up
            << "; latency ticks p50/p90/p99 = " << report.latency.p50 << "/"
            << report.latency.p90 << "/" << report.latency.p99 << "\n";
  std::cout << "final audit @ epoch " << audit.epoch << ": "
            << VerdictKindName(audit.verdict)
            << " (payload_correct=" << (audit.payload_correct ? "yes" : "no")
            << ", log10_fp=" << FmtFixed4(audit.log10_fp_bound)
            << ", pairs_erased=" << audit.pairs_erased << ")\n";
  char wall[128];
  std::snprintf(wall, sizeof(wall), "%.1f ms, %.0f updates/s", secs * 1e3,
                static_cast<double>(report.generated) / secs);
  std::cout << "wall-clock (stdout only, excluded from JSON): " << wall
            << "\n";

  if (!report.Accounted()) {
    std::cerr << "FAIL: accounting invariant broken (generated="
              << report.generated << ", submitted=" << c.submitted
              << ", applied=" << c.applied << ", rejected=" << c.rejected
              << ")\n";
    return 1;
  }
  if (require_match && (audit.verdict != VerdictKind::kMatch ||
                        !audit.payload_correct)) {
    std::cerr << "FAIL: final audit is not a correct MATCH\n";
    return 1;
  }

  if (json_path) {
    std::ostringstream section;
    section << "{\"config\":{\"n\":" << n << ",\"updates\":" << updates
            << ",\"window\":" << window << ",\"hostile_frac\":"
            << FmtFixed4(hostile) << ",\"seed\":" << seed
            << ",\"redundancy\":" << redundancy << ",\"codec\":\""
            << codec.value()->Name() << "\",\"epsilon\":" << FmtFixed4(epsilon)
            << ",\"pairs\":" << scheme.CapacityBits()
            << ",\"channel_bits\":" << adv.CapacityBits()
            << ",\"payload_bits\":" << coded.PayloadBits()
            << "},\"report\":" << StreamReportToJson(report) << "}";
    if (!UpdateBenchJsonSection(*json_path, "stream_soak", section.str())) {
      std::cerr << "FAIL: cannot write " << *json_path << "\n";
      return 1;
    }
    std::cout << "wrote section \"stream_soak\" to " << *json_path << "\n";
  }
  return 0;
}
