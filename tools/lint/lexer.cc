// Tokenizer for qpwm_lint: a comment/string/preprocessor-stripping scanner
// that keeps just enough structure (identifiers, punctuation, [[attributes]],
// line numbers, allow() pragmas) for the pattern rules in rules.cc.
#include <cctype>

#include "lint.h"

namespace qpwm::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses "qpwm-lint: allow(a,b)" out of one comment's text and registers the
// rule ids for `line`.
void ParsePragma(std::string_view comment, int line, FileScan& scan) {
  const size_t tag = comment.find("qpwm-lint:");
  if (tag == std::string_view::npos) return;
  const size_t open = comment.find("allow(", tag);
  if (open == std::string_view::npos) return;
  const size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(open + 6, close - open - 6);
  std::string id;
  auto flush = [&] {
    if (!id.empty()) scan.allows[line].insert(id);
    id.clear();
  };
  for (char c : list) {
    if (c == ',') {
      flush();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      id += c;
    }
  }
  flush();
}

class Lexer {
 public:
  Lexer(std::string_view src, FileScan& scan) : src_(src), scan_(scan) {}

  void Run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        SkipPreprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        SkipLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        SkipBlockComment();
        continue;
      }
      if (c == '"') {
        // Raw strings arrive here only via the R-prefix path below; a bare
        // quote is an ordinary string literal.
        SkipString('"');
        continue;
      }
      if (c == '\'') {
        SkipString('\'');
        continue;
      }
      if (c == '[' && Peek(1) == '[') {
        LexAttribute();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentOrRawString();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
  }

 private:
  char Peek(size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void Emit(Token::Kind kind, std::string text, int line) {
    scan_.tokens.push_back(Token{kind, std::move(text), line});
  }

  // Skips a #directive including backslash-continued lines (so macro bodies
  // are invisible to the rules — macro-expanded code is linted where the
  // macro is defined only if that file spells the tokens out). Quoted
  // #include paths are recorded for cross-file name scoping.
  void SkipPreprocessor() {
    const size_t begin = i_;
    while (i_ < src_.size()) {
      if (src_[i_] == '\\' && Peek(1) == '\n') {
        i_ += 2;
        ++line_;
        continue;
      }
      if (src_[i_] == '\n') break;  // main loop counts the newline
      ++i_;
    }
    const std::string_view directive = src_.substr(begin, i_ - begin);
    const size_t inc = directive.find("include");
    if (inc != std::string_view::npos) {
      const size_t open = directive.find('"', inc);
      if (open != std::string_view::npos) {
        const size_t close = directive.find('"', open + 1);
        if (close != std::string_view::npos) {
          scan_.includes.emplace_back(
              directive.substr(open + 1, close - open - 1));
        }
      }
    }
    at_line_start_ = true;
  }

  void SkipLineComment() {
    const size_t begin = i_;
    const int line = line_;
    while (i_ < src_.size() && src_[i_] != '\n') ++i_;
    ParsePragma(src_.substr(begin, i_ - begin), line, scan_);
  }

  void SkipBlockComment() {
    const size_t begin = i_;
    const int line = line_;
    i_ += 2;
    while (i_ < src_.size() && !(src_[i_] == '*' && Peek(1) == '/')) {
      if (src_[i_] == '\n') ++line_;
      ++i_;
    }
    ParsePragma(src_.substr(begin, i_ - begin), line, scan_);
    if (i_ < src_.size()) i_ += 2;
  }

  void SkipString(char quote) {
    ++i_;
    while (i_ < src_.size()) {
      if (src_[i_] == '\\') {
        i_ += 2;
        continue;
      }
      if (src_[i_] == quote) {
        ++i_;
        return;
      }
      if (src_[i_] == '\n') ++line_;  // unterminated; keep line counts sane
      ++i_;
    }
  }

  void SkipRawString() {
    // At 'R', next is '"'. R"delim( ... )delim"
    i_ += 2;
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(') delim += src_[i_++];
    const std::string close = ")" + delim + "\"";
    const size_t end = src_.find(close, i_);
    const size_t stop = end == std::string_view::npos ? src_.size() : end + close.size();
    for (; i_ < stop; ++i_) {
      if (src_[i_] == '\n') ++line_;
    }
  }

  void LexAttribute() {
    const int line = line_;
    i_ += 2;
    const size_t begin = i_;
    while (i_ < src_.size() && !(src_[i_] == ']' && Peek(1) == ']')) {
      if (src_[i_] == '\n') ++line_;
      ++i_;
    }
    Emit(Token::Kind::kAttr, std::string(src_.substr(begin, i_ - begin)), line);
    if (i_ < src_.size()) i_ += 2;
  }

  void LexIdentOrRawString() {
    const size_t begin = i_;
    while (i_ < src_.size() && IsIdentChar(src_[i_])) ++i_;
    std::string text(src_.substr(begin, i_ - begin));
    // String-literal prefixes: R"...", u8"...", L"...", and combinations.
    if (i_ < src_.size() && (src_[i_] == '"' || src_[i_] == '\'')) {
      const bool raw = !text.empty() && text.back() == 'R';
      const bool prefix = text == "R" || text == "u8" || text == "u" ||
                          text == "U" || text == "L" || text == "u8R" ||
                          text == "uR" || text == "UR" || text == "LR";
      if (prefix) {
        if (raw) {
          i_ = begin + text.size() - 1;  // position on the 'R'
          SkipRawString();
        } else {
          SkipString(src_[i_]);
        }
        return;
      }
    }
    Emit(Token::Kind::kIdent, std::move(text), line_);
  }

  void LexNumber() {
    const size_t begin = i_;
    // Good enough for pattern rules: digits plus the characters that can
    // appear inside numeric literals (hex, exponents, separators, suffixes).
    while (i_ < src_.size() &&
           (IsIdentChar(src_[i_]) || src_[i_] == '\'' ||
            ((src_[i_] == '+' || src_[i_] == '-') && i_ > begin &&
             (src_[i_ - 1] == 'e' || src_[i_ - 1] == 'E' ||
              src_[i_ - 1] == 'p' || src_[i_ - 1] == 'P')))) {
      ++i_;
    }
    Emit(Token::Kind::kNumber, std::string(src_.substr(begin, i_ - begin)), line_);
  }

  void LexPunct() {
    if (src_[i_] == ':' && Peek(1) == ':') {
      Emit(Token::Kind::kPunct, "::", line_);
      i_ += 2;
      return;
    }
    if (src_[i_] == '-' && Peek(1) == '>') {
      Emit(Token::Kind::kPunct, "->", line_);
      i_ += 2;
      return;
    }
    // Compound assignment must not read as a bare `=`-less statement, and
    // increment/decrement are mutation operators the parallel rule matches.
    static constexpr const char* kTwoChar[] = {"+=", "-=", "*=", "/=", "%=",
                                               "&=", "|=", "^=", "++", "--",
                                               "<<", ">>", "==", "!=", "<=",
                                               ">=", "&&", "||"};
    for (const char* op : kTwoChar) {
      if (src_[i_] == op[0] && Peek(1) == op[1]) {
        Emit(Token::Kind::kPunct, op, line_);
        i_ += 2;
        return;
      }
    }
    Emit(Token::Kind::kPunct, std::string(1, src_[i_]), line_);
    ++i_;
  }

  // qpwm-lint: allow(view-escape) -- the tool cannot include qpwm headers for QPWM_VIEW_OF; src_ views the driver-owned file text for one ScanSource call
  std::string_view src_;
  FileScan& scan_;
  size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

FileScan ScanSource(std::string path, std::string_view src) {
  FileScan scan;
  scan.path = std::move(path);
  Lexer(src, scan).Run();
  return scan;
}

}  // namespace qpwm::lint
