// Detect-under-write: the epoch-snapshot detection loop.
//
// The driver calls Tick() once per scheduling window with the latest
// published StreamSnapshot. Each tick either starts/continues one detection
// pass (through a fault-injecting answer wrapper) or burns a backoff window.
// A pass that loses its epoch or hits a failed answer batch is discarded and
// retried against whatever snapshot the *next* tick brings — with bounded
// linear backoff — instead of surfacing an error; only after max_attempts
// does the pass give up, and even that is a counted outcome, not a failure
// of the loop. Completed passes record the coded-channel verdict, payload
// correctness, erasure counts, and the virtual-tick latency of the whole
// pass (all attempts + penalties + backoff), feeding the StreamReport's
// survival curve and latency percentiles.
#ifndef QPWM_STREAM_DETECT_LOOP_H_
#define QPWM_STREAM_DETECT_LOOP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "qpwm/coding/coded_watermark.h"
#include "qpwm/stream/faults.h"
#include "qpwm/stream/stream_server.h"
#include "qpwm/util/bitvec.h"

namespace qpwm {

/// Outcome of one detection pass (completed or given up).
struct DetectOutcome {
  uint64_t pass = 0;   // pass sequence number
  uint64_t epoch = 0;  // epoch of the snapshot that finished (or gave up)
  bool gave_up = false;
  uint32_t attempts = 1;  // attempts consumed (1 = clean first try)
  uint64_t ticks = 0;     // virtual latency across all attempts + backoff
  VerdictKind verdict = VerdictKind::kPartial;
  bool payload_correct = false;
  double log10_fp_bound = 0;
  size_t bits_erased = 0;
  size_t pairs_erased = 0;
  uint64_t votes_cast = 0;
};

struct DetectLoopOptions {
  FaultOptions faults;
  /// Attempts per pass before giving up.
  uint32_t max_attempts = 4;
  /// Tick cost charged per backoff window (waiting isn't free).
  uint64_t backoff_window_ticks = 50;
};

/// One detector tracing one payload through the stream's epochs.
class EpochDetector {
 public:
  /// `coded` (and everything it references) must outlive the detector;
  /// `payload` is the embedded message the survival curve is judged
  /// against; `seed` drives fault plans only.
  EpochDetector(const CodedWatermark& coded, BitVec payload, uint64_t seed,
                DetectLoopOptions options = {});

  /// One scheduling window against the currently published snapshot.
  /// Returns an outcome when a pass completed or gave up this window.
  std::optional<DetectOutcome> Tick(const StreamSnapshot& snap);

  /// Fault-free detection against `snap` — the final audit the soak's
  /// acceptance gate reads. Not recorded into outcomes().
  DetectOutcome Audit(const StreamSnapshot& snap) const;

  const std::vector<DetectOutcome>& outcomes() const { return outcomes_; }
  /// Faulted attempts that were rescheduled.
  uint64_t retried() const { return retried_; }
  /// Passes abandoned after max_attempts.
  uint64_t gave_up() const { return gave_up_; }

 private:
  DetectOutcome Judge(const CodedDetection& detection, uint64_t epoch,
                      uint32_t attempts, uint64_t ticks) const;

  const CodedWatermark* coded_;
  BitVec payload_;
  uint64_t seed_;
  DetectLoopOptions options_;
  std::vector<DetectOutcome> outcomes_;
  uint64_t attempt_counter_ = 0;
  uint64_t pass_counter_ = 0;
  uint64_t retried_ = 0;
  uint64_t gave_up_ = 0;
  // In-flight pass state.
  uint32_t attempts_in_pass_ = 0;
  uint64_t ticks_in_pass_ = 0;
  uint64_t backoff_windows_ = 0;
};

}  // namespace qpwm

#endif  // QPWM_STREAM_DETECT_LOOP_H_
