# Empty dependencies file for qpwm_relational.
# This may be replaced when dependencies are built.
