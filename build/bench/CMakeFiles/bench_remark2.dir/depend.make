# Empty dependencies file for bench_remark2.
# This may be replaced when dependencies are built.
