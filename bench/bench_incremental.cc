// E10 — Theorems 7 and 8: incremental watermarking.
//   Weights-only updates: propagate the mark through rounds of bulk weight
//     refreshes and verify the bound and detection survive every round.
//   Type-preserving structural updates: verify the check accepts
//     type-preserving edits and flags type-creating ones, and report the
//     survival of the embedded pairs.
//
// --json[=PATH] additionally writes/merges the "incremental" section of
// BENCH_incremental.json (same read-modify-write contract as the other
// bench JSON artifacts), so CI can baseline the Theorem 7/8 numbers.
#include <iostream>
#include <optional>
#include <string>

#include "bench_json.h"
#include "qpwm/core/distortion.h"
#include "qpwm/core/incremental.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

int main(int argc, char** argv) {
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_incremental.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::cerr << "usage: bench_incremental [--json[=PATH]]\n";
      return 2;
    }
  }

  std::cout << "=== bench_incremental: Theorems 7 and 8 ===\n";

  JsonWriter json;
  json.BeginObject();

  // Theorem 7: weights-only update storm.
  bool all_detected = true;
  {
    Rng rng(71);
    Structure g = RandomBoundedDegreeGraph(800, 3, 2400, false, rng);
    auto query = AtomQuery::Adjacency("E");
    QueryIndex index(g, *query, AllParams(g, 1));
    WeightMap original = RandomWeights(g, 100, 9999, rng);

    LocalSchemeOptions opts;
    opts.epsilon = 0.5;
    opts.key = {71, 72};
    auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
    BitVec mark(scheme.CapacityBits());
    for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
    WeightMap marked = scheme.Embed(original, mark);

    TextTable table("Weights-only updates: mark survival over rounds");
    table.SetHeader({"round", "weights changed", "global distortion", "detected"});
    json.Key("weights_only").BeginArray();
    for (int round = 1; round <= 8; ++round) {
      WeightMap new_original = original;
      size_t changed = 0;
      for (ElemId e = 0; e < g.universe_size(); ++e) {
        if (rng.Bernoulli(0.3)) {
          new_original.SetElem(e, rng.Uniform(100, 9999));
          ++changed;
        }
      }
      marked = PropagateWeightsOnlyUpdate(original, marked, new_original);
      original = new_original;

      HonestServer server(index, marked);
      auto detected = scheme.Detect(original, server);
      const bool ok = detected.ok() && detected.value() == mark;
      all_detected &= ok;
      const Weight distortion = GlobalDistortion(index, original, marked);
      table.AddRow({StrCat(round), StrCat(changed), StrCat(distortion),
                    ok ? "OK" : "FAIL"});
      json.BeginObject()
          .Key("round").Int(round)
          .Key("weights_changed").UInt(changed)
          .Key("global_distortion").Int(distortion)
          .Key("detected").Bool(ok)
          .EndObject();
    }
    json.EndArray();
    table.Print(std::cout);
    std::cout << "the detector is only sensitive to the mark delta M (Theorem 7): "
                 "arbitrary weight refreshes never break it.\n";
  }

  // Theorem 8: structural updates.
  {
    TextTable table("Structural updates: type preservation check");
    table.SetHeader({"update", "type preserving", "old/new types",
                     "surviving pairs", "new bound"});
    json.Key("structural").BeginArray();

    auto report = [&](const char* name, const LocalScheme& scheme,
                      const QueryIndex& updated) {
      UpdateCheck check = CheckTypePreservingUpdate(scheme, updated);
      table.AddRow({name, check.type_preserving ? "yes" : "NO",
                    StrCat(check.old_types, "/", check.new_types),
                    StrCat(check.surviving_pairs, "/", scheme.CapacityBits()),
                    StrCat(check.new_cost_bound)});
      json.BeginObject()
          .Key("update").String(name)
          .Key("type_preserving").Bool(check.type_preserving)
          .Key("old_types").UInt(check.old_types)
          .Key("new_types").UInt(check.new_types)
          .Key("surviving_pairs").UInt(check.surviving_pairs)
          .Key("planned_pairs").UInt(scheme.CapacityBits())
          .Key("new_cost_bound").UInt(check.new_cost_bound)
          .EndObject();
    };

    auto query = AtomQuery::Adjacency("E");
    LocalSchemeOptions opts;
    opts.key = {81, 82};

    // Base: a long symmetric cycle.
    Structure cycle = CycleGraph(60, true);
    QueryIndex cycle_index(cycle, *query, AllParams(cycle, 1));
    auto scheme = LocalScheme::Plan(cycle_index, opts).ValueOrDie();

    // (a) identical structure.
    report("none (identity)", scheme, cycle_index);

    // (b) type-preserving: relabeled cycle (same single type).
    Structure rotated(GraphSignature(), 60);
    for (ElemId i = 0; i < 60; ++i) {
      ElemId a = (i * 7 + 1) % 60;
      ElemId b = (a + 1) % 60;
      rotated.AddTuple(size_t{0}, Tuple{a, b});
      rotated.AddTuple(size_t{0}, Tuple{b, a});
    }
    rotated.Seal();
    QueryIndex rotated_index(rotated, *query, AllParams(rotated, 1));
    report("rewire into another 2-regular graph", scheme, rotated_index);

    // (c) type-creating: cut one edge (endpoints appear).
    Structure cut(GraphSignature(), 60);
    for (ElemId i = 0; i + 1 < 60; ++i) {
      cut.AddTuple(size_t{0}, Tuple{i, static_cast<ElemId>(i + 1)});
      cut.AddTuple(size_t{0}, Tuple{static_cast<ElemId>(i + 1), i});
    }
    cut.Seal();
    QueryIndex cut_index(cut, *query, AllParams(cut, 1));
    report("cut one edge (cycle -> path)", scheme, cut_index);

    json.EndArray();
    table.Print(std::cout);
    std::cout << "type-preserving updates keep the mark valid without "
                 "re-marking (Theorem 8); type-creating updates are flagged for "
                 "the brute-force re-mark path.\n";
  }

  json.Key("all_rounds_detected").Bool(all_detected);
  json.EndObject();

  if (json_path) {
    if (!UpdateBenchJsonSection(*json_path, "incremental", json.str())) {
      std::cerr << "FAIL: cannot write " << *json_path << "\n";
      return 1;
    }
    std::cout << "wrote section \"incremental\" to " << *json_path << "\n";
  }
  return all_detected ? 0 : 1;
}
