# Empty compiler generated dependencies file for qpwm.
# This may be replaced when dependencies are built.
