// Tests for the composed adversary: stacked value + structural attacks from
// one recorded seed, burst region deletion, and the collusion variants
// beyond averaging.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

struct Fixture {
  Structure g;
  std::unique_ptr<AtomQuery> query;
  std::unique_ptr<QueryIndex> index;
  WeightMap weights;
  std::unique_ptr<LocalScheme> scheme;

  explicit Fixture(size_t n, uint64_t seed) : weights(1, 0) {
    Rng rng(seed);
    g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
    query = AtomQuery::Adjacency("E");
    index = std::make_unique<QueryIndex>(g, *query, AllParams(g, 1));
    weights = RandomWeights(g, 1000, 9999, rng);
    LocalSchemeOptions opts;
    opts.epsilon = 0.25;
    opts.key = {seed, seed + 1};
    opts.encoding = PairEncoding::kAntipodal;
    scheme = std::make_unique<LocalScheme>(
        LocalScheme::Plan(*index, opts).ValueOrDie());
  }
};

TEST(ComposedAttackTest, SpecSeedDefaultsAndIsRecorded) {
  ComposedAttackSpec spec;
  EXPECT_EQ(spec.seed, kDefaultAttackSeed);

  Fixture s(200, 3);
  spec.noise = 2;
  spec.deletion_frac = 0.2;
  spec.seed = 12345;
  ComposedSuspect suspect =
      ApplyComposedAttack(*s.index, s.scheme->marking().pairs(), 5, s.weights,
                          spec);
  EXPECT_EQ(suspect.seed, 12345u);
}

TEST(ComposedAttackTest, EqualSpecsProduceByteIdenticalSuspects) {
  Fixture s(300, 5);
  ComposedAttackSpec spec;
  spec.noise = 3;
  spec.jitter_prob = 0.1;
  spec.rounding = 2;
  spec.deletion_frac = 0.15;
  spec.region_frac = 0.2;
  spec.insertion_frac = 0.25;
  spec.seed = 99;

  ComposedSuspect a = ApplyComposedAttack(*s.index, s.scheme->marking().pairs(),
                                          5, s.weights, spec);
  ComposedSuspect b = ApplyComposedAttack(*s.index, s.scheme->marking().pairs(),
                                          5, s.weights, spec);
  EXPECT_EQ(a.elements_erased, b.elements_erased);
  EXPECT_EQ(a.rows_inserted, b.rows_inserted);
  for (size_t p = 0; p < s.index->num_params(); ++p) {
    const AnswerSet ra = a.server->Answer(s.index->param(p));
    const AnswerSet rb = b.server->Answer(s.index->param(p));
    ASSERT_EQ(ra.size(), rb.size()) << "param " << p;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].element, rb[i].element);
      EXPECT_EQ(ra[i].weight, rb[i].weight);
    }
  }

  // A different seed is a different suspect (the stages really draw on it).
  spec.seed = 100;
  ComposedSuspect c = ApplyComposedAttack(*s.index, s.scheme->marking().pairs(),
                                          5, s.weights, spec);
  bool any_difference = c.elements_erased != a.elements_erased;
  for (size_t p = 0; !any_difference && p < s.index->num_params(); ++p) {
    const AnswerSet ra = a.server->Answer(s.index->param(p));
    const AnswerSet rc = c.server->Answer(s.index->param(p));
    if (ra.size() != rc.size()) {
      any_difference = true;
      break;
    }
    for (size_t i = 0; i < ra.size(); ++i) {
      any_difference |= ra[i].element != rc[i].element ||
                        ra[i].weight != rc[i].weight;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ComposedAttackTest, DisabledStagesLeaveTheDataAlone) {
  Fixture s(200, 7);
  ComposedAttackSpec spec;  // everything off
  ComposedSuspect suspect =
      ApplyComposedAttack(*s.index, {}, 5, s.weights, spec);
  EXPECT_EQ(suspect.elements_erased, 0u);
  EXPECT_EQ(suspect.rows_inserted, 0u);
  HonestServer honest(*s.index, s.weights);
  for (size_t p = 0; p < s.index->num_params(); ++p) {
    const AnswerSet a = suspect.server->Answer(s.index->param(p));
    const AnswerSet b = honest.Answer(s.index->param(p));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
  }
}

TEST(ComposedAttackTest, RegionDeletionIsAContiguousGroupBurst) {
  Fixture s(400, 9);
  const std::vector<WeightPair>& pairs = s.scheme->marking().pairs();
  const size_t redundancy = 5;
  const size_t groups = pairs.size() / redundancy;
  ASSERT_GT(groups, 4u);

  Rng rng(90);
  const double frac = 0.3;
  std::vector<Tuple> deleted =
      PairRegionDeletionAttack(*s.index, pairs, redundancy, frac, rng);
  ASSERT_FALSE(deleted.empty());
  std::set<Tuple> gone(deleted.begin(), deleted.end());

  // A group is wiped iff every element of every one of its pairs was
  // deleted; the wiped groups must form one contiguous run of the expected
  // length and no other group may lose any element.
  std::vector<bool> wiped(groups, false);
  for (size_t g = 0; g < groups; ++g) {
    size_t hit = 0, total = 0;
    for (size_t k = 0; k < redundancy; ++k) {
      const WeightPair& pair = pairs[g * redundancy + k];
      total += 2;
      hit += gone.count(s.index->active_element(pair.plus));
      hit += gone.count(s.index->active_element(pair.minus));
    }
    ASSERT_TRUE(hit == 0 || hit == total) << "group " << g << " partially hit";
    wiped[g] = hit == total;
  }
  const size_t expected =
      static_cast<size_t>(frac * static_cast<double>(groups) + 0.5);
  const size_t first =
      std::find(wiped.begin(), wiped.end(), true) - wiped.begin();
  for (size_t g = 0; g < groups; ++g) {
    EXPECT_EQ(wiped[g], g >= first && g < first + expected) << "group " << g;
  }
}

TEST(ComposedAttackTest, RegionDeletionOffOrEmptyPairsIsANoOp) {
  Fixture s(100, 11);
  Rng rng(110);
  EXPECT_TRUE(PairRegionDeletionAttack(*s.index, s.scheme->marking().pairs(), 5,
                                       0.0, rng)
                  .empty());
  EXPECT_TRUE(PairRegionDeletionAttack(*s.index, {}, 5, 0.5, rng).empty());
}

TEST(ComposedAttackTest, InsertionCountTracksActiveFraction) {
  Fixture s(300, 13);
  ComposedAttackSpec spec;
  spec.insertion_frac = 0.5;
  ComposedSuspect suspect =
      ApplyComposedAttack(*s.index, {}, 5, s.weights, spec);
  EXPECT_EQ(suspect.rows_inserted, s.index->num_active() / 2);
}

// --- Collusion variants -----------------------------------------------------

WeightMap SmallMap(std::initializer_list<Weight> values) {
  WeightMap m(1, values.size());
  ElemId e = 0;
  for (Weight w : values) m.SetElem(e++, w);
  return m;
}

TEST(ComposedAttackTest, MedianCollusionTakesLowerMedian) {
  WeightMap a = SmallMap({10, 5, 7});
  WeightMap b = SmallMap({12, 5, 1});
  WeightMap c = SmallMap({11, 9, 4});
  WeightMap median = MedianCollusionAttack({&a, &b, &c}).ValueOrDie();
  EXPECT_EQ(median.GetElem(0), 11);
  EXPECT_EQ(median.GetElem(1), 5);
  EXPECT_EQ(median.GetElem(2), 4);

  // Even count: the lower of the two middle values, deterministically.
  WeightMap even = MedianCollusionAttack({&a, &b}).ValueOrDie();
  EXPECT_EQ(even.GetElem(0), 10);
  EXPECT_EQ(even.GetElem(2), 1);
}

TEST(ComposedAttackTest, MedianKillsSingleCopyDeltas) {
  // A pair delta carried by only one of three copies vanishes — the wash-out
  // property that makes median collusion stronger than averaging.
  WeightMap clean = SmallMap({100, 200});
  WeightMap marked = SmallMap({101, 199});
  WeightMap median =
      MedianCollusionAttack({&marked, &clean, &clean}).ValueOrDie();
  EXPECT_EQ(median.GetElem(0), 100);
  EXPECT_EQ(median.GetElem(1), 200);
}

TEST(ComposedAttackTest, MinMaxCollusionPicksExtremes) {
  WeightMap a = SmallMap({1, 9, 5, 5});
  WeightMap b = SmallMap({3, 7, 2, 8});
  Rng rng(17);
  WeightMap picked = MinMaxCollusionAttack({&a, &b}, rng).ValueOrDie();
  EXPECT_TRUE(picked.GetElem(0) == 1 || picked.GetElem(0) == 3);
  EXPECT_TRUE(picked.GetElem(1) == 7 || picked.GetElem(1) == 9);
  EXPECT_TRUE(picked.GetElem(2) == 2 || picked.GetElem(2) == 5);
  EXPECT_TRUE(picked.GetElem(3) == 5 || picked.GetElem(3) == 8);
}

TEST(ComposedAttackTest, AllCollusionVariantsRejectBadCopySets) {
  WeightMap a = SmallMap({1, 2, 3});
  WeightMap other(1, 7);  // different domain
  Rng rng(19);

  auto check = [](const Status& status) {
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  };
  check(AveragingCollusionAttack({}).status());
  check(MedianCollusionAttack({}).status());
  check(MinMaxCollusionAttack({}, rng).status());
  check(AveragingCollusionAttack({&a, &other}).status());
  check(MedianCollusionAttack({&a, &other}).status());
  check(MinMaxCollusionAttack({&a, &other}, rng).status());
  // The mismatch is caught wherever it sits in the copy list.
  check(AveragingCollusionAttack({&a, &a, &other}).status());
  check(MedianCollusionAttack({&a, &a, &other}).status());
}

TEST(ComposedAttackTest, CollusionInterfaceMatchesFreeFunctions) {
  WeightMap a = SmallMap({10, 5, 7, 101});
  WeightMap b = SmallMap({12, 5, 1, 199});
  WeightMap c = SmallMap({11, 9, 4, 150});
  const std::vector<const WeightMap*> copies = {&a, &b, &c};

  Rng unused(1);
  EXPECT_EQ(AveragingCollusion().Forge(copies, unused).ValueOrDie(),
            AveragingCollusionAttack(copies).ValueOrDie());
  EXPECT_EQ(MedianCollusion().Forge(copies, unused).ValueOrDie(),
            MedianCollusionAttack(copies).ValueOrDie());
  Rng via_class(17);
  Rng via_free(17);
  EXPECT_EQ(MinMaxCollusion().Forge(copies, via_class).ValueOrDie(),
            MinMaxCollusionAttack(copies, via_free).ValueOrDie());
}

TEST(ComposedAttackTest, InterleavingCopiesSegmentsWholeFromOneMember) {
  // Three copies with pairwise distinct values everywhere, so every forged
  // weight identifies its source member unambiguously.
  const size_t n = 1000;
  WeightMap a(1, n), b(1, n), c(1, n);
  for (ElemId e = 0; e < n; ++e) {
    a.SetElem(e, 3 * static_cast<Weight>(e));
    b.SetElem(e, 3 * static_cast<Weight>(e) + 1);
    c.SetElem(e, 3 * static_cast<Weight>(e) + 2);
  }
  const std::vector<const WeightMap*> copies = {&a, &b, &c};
  InterleavingCollusion attack(64);
  EXPECT_EQ(attack.Name(), "interleave:64");
  Rng rng(23);
  WeightMap forged = attack.Forge(copies, rng).ValueOrDie();

  std::vector<size_t> member_hits(copies.size(), 0);
  for (ElemId e = 0; e < n; ++e) {
    const size_t owner = static_cast<size_t>(forged.GetElem(e) % 3);
    // Everything inside one 64-weight segment comes from the same member.
    if (e % 64 != 0) {
      EXPECT_EQ(owner, static_cast<size_t>(forged.GetElem(e - 1) % 3)) << e;
    }
    ++member_hits[owner];
  }
  for (size_t m = 0; m < copies.size(); ++m) {
    EXPECT_GT(member_hits[m], 0u) << "member " << m << " never sampled";
  }

  // Deterministic replay from the seed.
  Rng replay(23);
  EXPECT_EQ(attack.Forge(copies, replay).ValueOrDie(), forged);

  Rng other(24);
  WeightMap different = attack.Forge(copies, other).ValueOrDie();
  EXPECT_FALSE(different == forged);
}

TEST(ComposedAttackTest, InterleavingSharesTheDomainCheck) {
  WeightMap a = SmallMap({1, 2, 3});
  WeightMap other(1, 7);
  Rng rng(29);
  EXPECT_EQ(InterleavingCollusion().Forge({}, rng).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(InterleavingCollusion().Forge({&a, &other}, rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ComposedAttackTest, MakeCollusionAttackParsesSpecs) {
  for (const std::string& spec : KnownCollusionSpecs()) {
    auto attack = MakeCollusionAttack(spec);
    ASSERT_TRUE(attack.ok()) << spec;
  }
  EXPECT_EQ(MakeCollusionAttack("averaging").ValueOrDie()->Name(), "averaging");
  EXPECT_EQ(MakeCollusionAttack("interleave").ValueOrDie()->Name(),
            "interleave:64");
  EXPECT_EQ(MakeCollusionAttack("interleave:128").ValueOrDie()->Name(),
            "interleave:128");
  EXPECT_EQ(MakeCollusionAttack("bogus").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeCollusionAttack("interleave:0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeCollusionAttack("interleave:x").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qpwm
