// Quickstart: watermark the paper's travel-agency database (Example 1) while
// preserving the registered query psi(u, v) = Route(u, v), then recover the
// mark through query answers alone.
//
//   $ ./quickstart
#include <iostream>

#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/relational/table.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

int main() {
  using namespace qpwm;

  // 1. The owner's database: Route(travel, transport) and
  //    Timetable(transport, ..., duration). Durations are the weights.
  Database db = TravelAgencyDatabase();
  RelationalInstance instance = ToWeightedStructure(db).ValueOrDie();

  // 2. The query the data server registers: psi(u, v) = Route(u, v).
  //    A final user asks "which transports does travel u use (and how long
  //    do they take)?"
  AtomQuery query("Route", {{true, 0}, {false, 0}}, 1, 1);
  QueryIndex index(instance.structure, query,
                   AllParams(instance.structure, 1));
  std::cout << "active weighted elements |W| = " << index.num_active() << "\n";

  // 3. Plan the watermarking scheme (Theorem 3). The key is the owner's
  //    secret; epsilon bounds the distortion by ceil(1/epsilon).
  LocalSchemeOptions options;
  options.key = {0xC0FFEE, 0x7EA};
  options.epsilon = 1.0;  // at most 1 minute drift on any f(travel)
  LocalScheme scheme = LocalScheme::Plan(index, options).ValueOrDie();
  std::cout << "capacity: " << scheme.CapacityBits()
            << " bit(s), verified distortion bound " << scheme.DistortionBound()
            << " minute(s)\n";

  // 4. Embed a mark identifying data server #1.
  BitVec mark = BitVec::FromUint64(0b1, scheme.CapacityBits());
  WeightMap marked = scheme.Embed(instance.weights, mark);
  Database marked_db = ApplyWeightsToDatabase(db, instance, marked).ValueOrDie();
  std::cout << "embedded mark " << mark.ToString() << "; local distortion "
            << instance.weights.LocalDistortion(marked) << ", global distortion "
            << GlobalDistortion(index, instance.weights, marked) << "\n";

  // 5. Later: a suspect server answers queries. The owner detects the mark
  //    from answers only — no access to the suspect's tables.
  HonestServer suspect(index, marked);
  BitVec detected = scheme.Detect(instance.weights, suspect).ValueOrDie();
  std::cout << "detected mark " << detected.ToString() << " -> "
            << (detected == mark ? "server #1 leaked the data" : "no match")
            << "\n";
  return detected == mark ? 0 : 1;
}
