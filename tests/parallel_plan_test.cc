// Determinism contract of the parallel, memoized planning layer: plans are
// bit-identical regardless of the configured thread count and of whether the
// canonical-form cache is enabled. Also covers the ParallelFor/ParallelMap
// primitives and the CanonCache == CanonicalForm equivalence the cache's
// soundness rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>
#include <stdexcept>

#include "qpwm/core/local_scheme.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/parser.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/canon_cache.h"
#include "qpwm/structure/generators.h"
#include "qpwm/structure/isomorphism.h"
#include "qpwm/structure/neighborhood.h"
#include "qpwm/tree/mso.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// Restores the configured thread count even when a test fails mid-way.
class ThreadGuard {
 public:
  ThreadGuard() = default;
  ~ThreadGuard() { SetParallelThreads(0); }
};

struct PlanSnapshot {
  std::vector<WeightPair> pairs;
  uint32_t bound = 0;
  size_t ntp = 0;
  size_t bits = 0;
  std::vector<size_t> canonical_params;

  static PlanSnapshot Of(const LocalScheme& s) {
    PlanSnapshot out;
    out.pairs = s.marking().pairs();
    out.bound = s.DistortionBound();
    out.ntp = s.NumTypes();
    out.bits = s.CapacityBits();
    out.canonical_params = s.CanonicalParams();
    return out;
  }

  bool operator==(const PlanSnapshot& o) const {
    if (bound != o.bound || ntp != o.ntp || bits != o.bits ||
        canonical_params != o.canonical_params || pairs.size() != o.pairs.size()) {
      return false;
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (pairs[i].plus != o.pairs[i].plus || pairs[i].minus != o.pairs[i].minus) {
        return false;
      }
    }
    return true;
  }
};

TEST(ParallelPrimitives, ParallelForCoversEveryIndex) {
  ThreadGuard guard;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    std::vector<int> hits(10007, 0);
    ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelPrimitives, ParallelMapPreservesOrder) {
  ThreadGuard guard;
  SetParallelThreads(8);
  std::vector<uint64_t> out =
      ParallelMap<uint64_t>(5000, [](size_t i) { return i * i; });
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST(ParallelPrimitives, ParallelBlocksPartitionsExactly) {
  ThreadGuard guard;
  SetParallelThreads(8);
  std::vector<uint64_t> sums = ParallelBlocks<uint64_t>(12345, [](size_t begin, size_t end) {
    uint64_t s = 0;
    for (size_t i = begin; i < end; ++i) s += i;
    return s;
  });
  const uint64_t total = std::accumulate(sums.begin(), sums.end(), uint64_t{0});
  EXPECT_EQ(total, uint64_t{12345} * 12344 / 2);
}

TEST(ParallelPrimitives, ExceptionsPropagate) {
  ThreadGuard guard;
  SetParallelThreads(8);
  EXPECT_THROW(ParallelFor(1000,
                           [](size_t i) {
                             // qpwm-lint: allow(bare-throw) -- exception-propagation test
                             if (i == 637) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The pool survives a propagated exception.
  std::atomic<size_t> count{0};
  ParallelFor(100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ParallelPrimitives, NestedParallelismRunsInline) {
  ThreadGuard guard;
  SetParallelThreads(4);
  std::vector<uint64_t> out = ParallelMap<uint64_t>(64, [](size_t i) {
    std::vector<uint64_t> inner =
        ParallelMap<uint64_t>(32, [i](size_t j) { return i * 100 + j; });
    return std::accumulate(inner.begin(), inner.end(), uint64_t{0});
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * 100 * 32 + 31 * 32 / 2);
  }
}

TEST(CanonCacheTest, MatchesUncachedCanonicalForm) {
  Rng rng(77);
  Structure g = RandomBoundedDegreeGraph(400, 3, 1200, false, rng);
  GaifmanGraph gg(g);
  IncidenceIndex idx(g);
  CanonCache cache;
  for (uint32_t rho : {1u, 2u}) {
    for (ElemId e = 0; e < g.universe_size(); ++e) {
      Neighborhood nb = ExtractNeighborhood(g, gg, idx, Tuple{e}, rho);
      ASSERT_EQ(cache.Canonical(nb.local, nb.distinguished),
                CanonicalForm(nb.local, nb.distinguished))
          << "element " << e << " rho " << rho;
    }
  }
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().misses, 0u);
}

TEST(CanonCacheTest, KeyAgreesOnIsomorphicNeighborhoods) {
  // Equal canonical forms must imply equal cache keys would still be too
  // strong (the key is finer-grained than isomorphism is not allowed the
  // other way): equal keys imply isomorphism, so a key collision across
  // non-isomorphic neighborhoods would corrupt plans. Spot-check: every pair
  // of same-type neighborhoods in a small instance gets one cache entry.
  Rng rng(78);
  Structure g = RandomBoundedDegreeGraph(300, 3, 900, false, rng);
  GaifmanGraph gg(g);
  IncidenceIndex idx(g);
  std::map<std::string, std::string> canon_by_key;
  for (ElemId e = 0; e < g.universe_size(); ++e) {
    Neighborhood nb = ExtractNeighborhood(g, gg, idx, Tuple{e}, 2);
    std::string key = CanonCacheKey(nb.local, nb.distinguished);
    std::string canon = CanonicalForm(nb.local, nb.distinguished);
    auto [it, inserted] = canon_by_key.emplace(std::move(key), canon);
    if (!inserted) {
      ASSERT_EQ(it->second, canon) << "cache key collision across types";
    }
  }
}

TEST(ParallelPlanTest, LocalSchemeIdenticalAcrossThreadsAndCache) {
  ThreadGuard guard;
  Rng rng(42);
  Structure g = RandomBoundedDegreeGraph(1200, 3, 3600, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));

  LocalSchemeOptions opts;
  opts.rho = 2;
  opts.epsilon = 0.5;
  opts.key = {42, 99};

  SetParallelThreads(1);
  LocalSchemeOptions uncached = opts;
  uncached.canon_cache = false;
  const PlanSnapshot reference =
      PlanSnapshot::Of(LocalScheme::Plan(index, uncached).ValueOrDie());
  ASSERT_GT(reference.bits, 0u);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    CanonCache::Global().Clear();
    const PlanSnapshot cached =
        PlanSnapshot::Of(LocalScheme::Plan(index, opts).ValueOrDie());
    EXPECT_TRUE(reference == cached) << "cached plan differs at " << threads
                                     << " threads";
    const PlanSnapshot uncached_t =
        PlanSnapshot::Of(LocalScheme::Plan(index, uncached).ValueOrDie());
    EXPECT_TRUE(reference == uncached_t) << "uncached plan differs at " << threads
                                         << " threads";
  }
}

TEST(ParallelPlanTest, QueryIndexIdenticalAcrossThreads) {
  ThreadGuard guard;
  Rng rng(43);
  Structure g = RandomBoundedDegreeGraph(800, 3, 2400, false, rng);
  auto query = AtomQuery::Adjacency("E");

  SetParallelThreads(1);
  QueryIndex reference(g, *query, AllParams(g, 1));
  for (size_t threads : {size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    QueryIndex parallel_index(g, *query, AllParams(g, 1));
    ASSERT_EQ(parallel_index.num_active(), reference.num_active());
    for (size_t w = 0; w < reference.num_active(); ++w) {
      ASSERT_EQ(parallel_index.active_element(w), reference.active_element(w));
    }
    for (size_t a = 0; a < reference.num_params(); ++a) {
      ASSERT_EQ(parallel_index.ResultFor(a), reference.ResultFor(a));
    }
  }
}

TEST(ParallelPlanTest, PairCostIdenticalAcrossThreads) {
  ThreadGuard guard;
  Rng rng(44);
  // Big enough to clear the parallel dispatch threshold in CostPerParam.
  Structure g = RandomBoundedDegreeGraph(24000, 3, 72000, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  std::vector<WeightPair> pairs;
  for (uint32_t i = 0; i + 1 < index.num_active(); i += 2) pairs.push_back({i, i + 1});
  ASSERT_GE(pairs.size(), 8192u);
  PairMarking marking(index, pairs);

  SetParallelThreads(1);
  const std::vector<uint32_t> reference = marking.CostPerParam();
  for (size_t threads : {size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    EXPECT_EQ(marking.CostPerParam(), reference) << threads << " threads";
  }
}

TEST(ParallelPlanTest, TreeSchemeIdenticalAcrossThreads) {
  ThreadGuard guard;
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  Dta query = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma, {"u", "v"})
                  .ValueOrDie()
                  .dta;
  Rng rng(45);
  BinaryTree t = RandomBinaryTree(600, 3, rng);
  TreeSchemeOptions opts;
  opts.key = {0xAB, 0xCD};

  WeightMap w(1, t.size());
  for (NodeId v = 0; v < t.size(); ++v) w.SetElem(v, 100 + v % 800);

  SetParallelThreads(1);
  auto reference = TreeScheme::Plan(t, t.labels(), 3, query, 1, opts).ValueOrDie();
  ASSERT_GT(reference.CapacityBits(), 0u);
  BitVec mark(reference.CapacityBits());
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, i % 2 == 0);
  const WeightMap reference_marked = reference.Embed(w, mark);

  for (size_t threads : {size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    auto scheme = TreeScheme::Plan(t, t.labels(), 3, query, 1, opts).ValueOrDie();
    ASSERT_EQ(scheme.CapacityBits(), reference.CapacityBits()) << threads;
    EXPECT_EQ(scheme.RegionsPaired(), reference.RegionsPaired()) << threads;
    EXPECT_EQ(scheme.DistortionBound(), reference.DistortionBound()) << threads;
    // Pair lists are private; identical embeddings pin them down exactly.
    const WeightMap marked = scheme.Embed(w, mark);
    for (NodeId v = 0; v < t.size(); ++v) {
      ASSERT_EQ(marked.GetElem(v), reference_marked.GetElem(v))
          << "node " << v << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace qpwm
