// Reimplementation of the Agrawal-Kiernan watermarking scheme (VLDB 2002,
// the paper's reference [1]) as the baseline the introduction compares
// against. A keyed hash of each row's primary key decides (i) whether the
// row is marked (one in `gamma` rows), (ii) which weight column is used,
// (iii) which of the `num_lsb` low bits is set, and (iv) the bit value.
// Detection recomputes the selections and applies a binomial significance
// threshold — no access to the original table is needed.
//
// AK preserves aggregate statistics (mean/variance drift is tiny) but gives
// *no guarantee* on parametric query results — the property the
// query-preserving schemes of this library add. bench_baseline_ak measures
// exactly that contrast.
#ifndef QPWM_BASELINE_AGRAWAL_KIERNAN_H_
#define QPWM_BASELINE_AGRAWAL_KIERNAN_H_

#include <cstdint>

#include "qpwm/relational/table.h"
#include "qpwm/util/hash.h"
#include "qpwm/util/status.h"

namespace qpwm {

struct AkOptions {
  PrfKey key;
  /// One row in `gamma` is marked.
  uint32_t gamma = 4;
  /// Candidate low bits per weight value.
  uint32_t num_lsb = 2;
  /// Detection significance: declare a watermark when the match count is
  /// this unlikely (or less) under the null (coin-flip) hypothesis.
  double alpha = 0.01;
  /// Key column used as the primary key (index into the table's columns).
  size_t pk_column = 0;
};

struct AkEmbedStats {
  size_t rows = 0;
  size_t marked_cells = 0;
};

/// Embeds the watermark into a copy of `table` (its weight columns).
[[nodiscard]] Result<Table> AkEmbed(const Table& table, const AkOptions& options,
                      AkEmbedStats* stats = nullptr);

struct AkDetection {
  size_t total = 0;    // cells the key selects
  size_t matches = 0;  // cells whose selected bit has the expected value
  size_t threshold = 0;
  bool detected = false;
};

/// Runs detection against a (possibly attacked or unrelated) table.
[[nodiscard]] Result<AkDetection> AkDetect(const Table& suspect, const AkOptions& options);

/// P[Binomial(n, 1/2) >= k]: the detector's false-positive tail.
double BinomialTailAtLeast(size_t n, size_t k);

}  // namespace qpwm

#endif  // QPWM_BASELINE_AGRAWAL_KIERNAN_H_
