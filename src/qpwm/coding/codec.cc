#include "qpwm/coding/codec.h"

#include <algorithm>
#include <cmath>

#include "qpwm/util/check.h"
#include "qpwm/util/str.h"

namespace qpwm {

BitVec MessageCodec::Encode(const BitVec& payload) const {
  const size_t k = PayloadPerBlock();
  QPWM_CHECK_EQ(payload.size() % k, 0u);
  const size_t blocks = payload.size() / k;
  BitVec code(blocks * BlockLength());
  for (size_t b = 0; b < blocks; ++b) {
    EncodeBlock(payload, b * k, code, b * BlockLength());
  }
  return code;
}

DecodedMessage MessageCodec::Decode(const std::vector<SoftBit>& code) const {
  const size_t n = BlockLength();
  QPWM_CHECK_EQ(code.size() % n, 0u);
  const size_t blocks = code.size() / n;
  const size_t payload_bits = blocks * PayloadPerBlock();
  DecodedMessage out;
  out.payload = BitVec(payload_bits);
  out.confidences.resize(payload_bits, 0.0);
  out.bit_erased.resize(payload_bits, false);
  for (size_t b = 0; b < blocks; ++b) {
    DecodeBlock(code.data() + b * n, b * PayloadPerBlock(), out);
  }
  for (size_t j = 0; j < payload_bits; ++j) {
    if (out.bit_erased[j]) {
      ++out.bits_erased;
    } else {
      ++out.bits_recovered;
    }
  }
  return out;
}

// --- Identity ---------------------------------------------------------------

void IdentityCodec::EncodeBlock(const BitVec& payload, size_t k0, BitVec& code,
                                size_t n0) const {
  code.Set(n0, payload.Get(k0));
}

void IdentityCodec::DecodeBlock(const SoftBit* code, size_t k0,
                                DecodedMessage& out) const {
  if (code[0].erased) {
    out.bit_erased[k0] = true;
    out.payload.Set(k0, false);
    return;
  }
  // Hard decision matches the channel layer exactly: ties decode as 1
  // (votes_one >= votes_zero) with confidence 0.
  out.payload.Set(k0, code[0].value >= 0);
  out.confidences[k0] = std::abs(code[0].value);
}

// --- Repetition -------------------------------------------------------------

RepetitionCodec::RepetitionCodec(size_t r) : r_(r) { QPWM_CHECK_GE(r, 1u); }

std::string RepetitionCodec::Name() const { return StrCat("repetition:", r_); }

void RepetitionCodec::EncodeBlock(const BitVec& payload, size_t k0, BitVec& code,
                                  size_t n0) const {
  for (size_t j = 0; j < r_; ++j) code.Set(n0 + j, payload.Get(k0));
}

void RepetitionCodec::DecodeBlock(const SoftBit* code, size_t k0,
                                  DecodedMessage& out) const {
  double sum = 0;
  size_t surviving = 0;
  for (size_t j = 0; j < r_; ++j) {
    if (code[j].erased) continue;
    ++surviving;
    sum += code[j].value;
  }
  if (surviving == 0) {
    out.bit_erased[k0] = true;
    out.payload.Set(k0, false);
    return;
  }
  out.payload.Set(k0, sum >= 0);
  out.confidences[k0] = std::abs(sum) / static_cast<double>(surviving);
  // Surviving copies outvoted by the weighted sum were corrected.
  for (size_t j = 0; j < r_; ++j) {
    if (code[j].erased) {
      ++out.filled;
    } else if ((code[j].value >= 0) != (sum >= 0)) {
      ++out.corrected;
    }
  }
}

// --- Codebook (soft maximum-correlation) ------------------------------------

namespace {

size_t Popcount(uint32_t x) {
  size_t c = 0;
  for (; x; x &= x - 1) ++c;
  return c;
}

}  // namespace

CodebookCodec::CodebookCodec(size_t n, size_t k, std::vector<uint32_t> codewords)
    : n_(n), k_(k), codewords_(std::move(codewords)) {
  QPWM_CHECK_EQ(codewords_.size(), size_t{1} << k_);
  QPWM_CHECK(n_ <= 32);
  min_distance_ = n_;
  for (size_t a = 0; a < codewords_.size(); ++a) {
    for (size_t b = a + 1; b < codewords_.size(); ++b) {
      min_distance_ = std::min(min_distance_, Popcount(codewords_[a] ^ codewords_[b]));
    }
  }
}

void CodebookCodec::EncodeBlock(const BitVec& payload, size_t k0, BitVec& code,
                                size_t n0) const {
  uint32_t m = 0;
  for (size_t i = 0; i < k_; ++i) {
    if (payload.Get(k0 + i)) m |= uint32_t{1} << i;
  }
  const uint32_t cw = codewords_[m];
  for (size_t j = 0; j < n_; ++j) code.Set(n0 + j, (cw >> j) & 1);
}

void CodebookCodec::DecodeBlock(const SoftBit* code, size_t k0,
                                DecodedMessage& out) const {
  size_t surviving = 0;
  for (size_t j = 0; j < n_; ++j) surviving += !code[j].erased;
  if (surviving == 0) {
    for (size_t i = 0; i < k_; ++i) {
      out.bit_erased[k0 + i] = true;
      out.payload.Set(k0 + i, false);
    }
    out.filled += n_;
    return;
  }

  // Correlate every codeword against the soft symbols; erased positions
  // contribute nothing. Ties break toward the smaller payload value, which
  // is deterministic across platforms and thread counts.
  std::vector<double> scores(codewords_.size());
  double best = -1e300;
  uint32_t best_m = 0;
  for (uint32_t m = 0; m < codewords_.size(); ++m) {
    const uint32_t cw = codewords_[m];
    double s = 0;
    for (size_t j = 0; j < n_; ++j) {
      if (code[j].erased) continue;
      s += ((cw >> j) & 1) ? code[j].value : -code[j].value;
    }
    scores[m] = s;
    if (s > best) {
      best = s;
      best_m = m;
    }
  }

  const uint32_t chosen = codewords_[best_m];
  for (size_t i = 0; i < k_; ++i) {
    // Confidence of payload bit i: gap to the best codeword deciding it the
    // other way, normalized so a unanimous full block scores 1.
    double best_other = -1e300;
    for (uint32_t m = 0; m < codewords_.size(); ++m) {
      if (((m >> i) & 1) != ((best_m >> i) & 1)) {
        best_other = std::max(best_other, scores[m]);
      }
    }
    out.payload.Set(k0 + i, (best_m >> i) & 1);
    out.confidences[k0 + i] =
        std::max(0.0, (best - best_other) / (2.0 * static_cast<double>(n_)));
  }
  for (size_t j = 0; j < n_; ++j) {
    if (code[j].erased) {
      ++out.filled;
    } else if ((code[j].value >= 0) != (((chosen >> j) & 1) != 0)) {
      ++out.corrected;
    }
  }
}

// --- Hamming(7,4) -----------------------------------------------------------

namespace {

std::vector<uint32_t> HammingCodebook() {
  std::vector<uint32_t> cws(16);
  for (uint32_t m = 0; m < 16; ++m) {
    const uint32_t d0 = m & 1, d1 = (m >> 1) & 1, d2 = (m >> 2) & 1,
                   d3 = (m >> 3) & 1;
    // Systematic layout [d0 d1 d2 d3 p0 p1 p2].
    const uint32_t p0 = d0 ^ d1 ^ d3;
    const uint32_t p1 = d0 ^ d2 ^ d3;
    const uint32_t p2 = d1 ^ d2 ^ d3;
    cws[m] = d0 | (d1 << 1) | (d2 << 2) | (d3 << 3) | (p0 << 4) | (p1 << 5) |
             (p2 << 6);
  }
  return cws;
}

std::vector<uint32_t> ReedMullerCodebook(uint32_t m) {
  const size_t n = size_t{1} << m;
  std::vector<uint32_t> cws(size_t{2} << m);
  for (uint32_t msg = 0; msg < cws.size(); ++msg) {
    uint32_t cw = 0;
    for (size_t p = 0; p < n; ++p) {
      // Bit at position p: a0 xor <a, bits of p> (affine function).
      uint32_t bit = msg & 1;
      for (uint32_t i = 0; i < m; ++i) {
        bit ^= ((msg >> (i + 1)) & 1) & ((p >> i) & 1);
      }
      cw |= (bit & 1) << p;
    }
    cws[msg] = cw;
  }
  return cws;
}

}  // namespace

HammingCodec::HammingCodec() : CodebookCodec(7, 4, HammingCodebook()) {}

ReedMullerCodec::ReedMullerCodec(uint32_t m)
    : CodebookCodec(size_t{1} << m, m + 1, ReedMullerCodebook(m)), m_(m) {}

std::string ReedMullerCodec::Name() const { return StrCat("rm:", m_); }

// --- Factory ----------------------------------------------------------------

const char* KnownCodecSpecs() {
  return "identity, repetition[:R], hamming, rm[:M] (2 <= M <= 5)";
}

Result<std::unique_ptr<MessageCodec>> MakeCodec(const std::string& spec) {
  std::string name = spec;
  std::string param;
  const size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    name = spec.substr(0, colon);
    param = spec.substr(colon + 1);
  }
  auto parse_param = [&](uint64_t fallback) -> Result<uint64_t> {
    if (param.empty()) return fallback;
    uint64_t v = 0;
    for (char c : param) {
      if (c < '0' || c > '9' || v > 1000) {
        return Status::InvalidArgument("bad codec parameter '" + param + "'");
      }
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    return v;
  };
  if (name == "identity") {
    if (!param.empty()) {
      return Status::InvalidArgument("identity codec takes no parameter");
    }
    return std::unique_ptr<MessageCodec>(std::make_unique<IdentityCodec>());
  }
  if (name == "repetition") {
    auto r = parse_param(3);
    if (!r.ok()) return r.status();
    if (r.value() < 1 || r.value() > 64) {
      return Status::InvalidArgument("repetition factor must be in 1..64");
    }
    return std::unique_ptr<MessageCodec>(
        std::make_unique<RepetitionCodec>(r.value()));
  }
  if (name == "hamming") {
    if (!param.empty()) {
      return Status::InvalidArgument("hamming codec takes no parameter");
    }
    return std::unique_ptr<MessageCodec>(std::make_unique<HammingCodec>());
  }
  if (name == "rm") {
    auto m = parse_param(4);
    if (!m.ok()) return m.status();
    if (m.value() < 2 || m.value() > 5) {
      return Status::InvalidArgument("rm order must be in 2..5");
    }
    return std::unique_ptr<MessageCodec>(
        std::make_unique<ReedMullerCodec>(static_cast<uint32_t>(m.value())));
  }
  return Status::InvalidArgument("unknown codec '" + spec + "'; known: " +
                                 std::string(KnownCodecSpecs()));
}

}  // namespace qpwm
