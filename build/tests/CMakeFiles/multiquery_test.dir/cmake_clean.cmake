file(REMOVE_RECURSE
  "CMakeFiles/multiquery_test.dir/multiquery_test.cc.o"
  "CMakeFiles/multiquery_test.dir/multiquery_test.cc.o.d"
  "multiquery_test"
  "multiquery_test.pdb"
  "multiquery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiquery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
