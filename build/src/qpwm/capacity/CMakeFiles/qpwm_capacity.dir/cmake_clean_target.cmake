file(REMOVE_RECURSE
  "libqpwm_capacity.a"
)
