#include "qpwm/tree/query.h"

#include <algorithm>

#include "qpwm/util/check.h"

namespace qpwm {
namespace {

// Symbol of node v given which pebbles sit on it. With a parameter the
// automaton alphabet is Sigma x {0,1}^2 (track 0 = a, track 1 = b);
// without, Sigma x {0,1} (track 0 = b).
uint32_t SymbolAt(uint32_t base_label, uint32_t base_count, uint32_t param_arity,
                  bool a_here, bool b_here) {
  uint32_t bits;
  if (param_arity == 0) {
    bits = b_here ? 1 : 0;
  } else {
    bits = (a_here ? 1 : 0) | (b_here ? 2u : 0);
  }
  return base_label + base_count * bits;
}

}  // namespace

bool MemberWa(const BinaryTree& t, const std::vector<uint32_t>& base_labels,
              uint32_t base_count, const Dta& dta, uint32_t param_arity, NodeId a,
              NodeId b) {
  QPWM_CHECK_LE(param_arity, 1u);
  std::vector<State> state(t.size());
  for (NodeId v : t.Postorder()) {
    State l = t.left(v) == kNoNode ? kAbsentChild : state[t.left(v)];
    State r = t.right(v) == kNoNode ? kAbsentChild : state[t.right(v)];
    uint32_t sym = SymbolAt(base_labels[v], base_count, param_arity,
                            param_arity == 1 && v == a, v == b);
    state[v] = dta.Step(l, r, sym);
  }
  return dta.IsAccepting(state[t.root()]);
}

std::vector<NodeId> EvaluateWa(const BinaryTree& t,
                               const std::vector<uint32_t>& base_labels,
                               uint32_t base_count, const Dta& dta,
                               uint32_t param_arity, NodeId a) {
  QPWM_CHECK_LE(param_arity, 1u);
  const size_t n = t.size();
  const uint32_t m = dta.num_states() + 1;  // sink included

  // Pass 1: states with only the parameter pebble placed (no b).
  std::vector<State> sa(n);
  for (NodeId v : t.Postorder()) {
    State l = t.left(v) == kNoNode ? kAbsentChild : sa[t.left(v)];
    State r = t.right(v) == kNoNode ? kAbsentChild : sa[t.right(v)];
    uint32_t sym = SymbolAt(base_labels[v], base_count, param_arity,
                            param_arity == 1 && v == a, false);
    sa[v] = dta.Step(l, r, sym);
  }

  // Pass 2 (top-down): ctx[v][q] = would the root accept if the state at v
  // were forced to q (everything else as in pass 1)?
  std::vector<uint8_t> ctx(n * m);
  auto ctx_at = [&](NodeId v, State q) -> uint8_t& { return ctx[v * m + q]; };

  for (State q = 0; q < m; ++q) {
    ctx_at(t.root(), q) = dta.IsAccepting(q) ? 1 : 0;
  }
  // Parents before children: reverse postorder.
  const auto& post = t.Postorder();
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    NodeId v = *it;
    NodeId lc = t.left(v);
    NodeId rc = t.right(v);
    uint32_t sym = SymbolAt(base_labels[v], base_count, param_arity,
                            param_arity == 1 && v == a, false);
    if (lc != kNoNode) {
      State rs = rc == kNoNode ? kAbsentChild : sa[rc];
      for (State q = 0; q < m; ++q) {
        ctx_at(lc, q) = ctx_at(v, dta.Step(q, rs, sym));
      }
    }
    if (rc != kNoNode) {
      State ls = lc == kNoNode ? kAbsentChild : sa[lc];
      for (State q = 0; q < m; ++q) {
        ctx_at(rc, q) = ctx_at(v, dta.Step(ls, q, sym));
      }
    }
  }

  // b in W_a  iff  ctx[b][state of b recomputed with the b pebble set].
  std::vector<NodeId> out;
  for (NodeId b = 0; b < n; ++b) {
    State l = t.left(b) == kNoNode ? kAbsentChild : sa[t.left(b)];
    State r = t.right(b) == kNoNode ? kAbsentChild : sa[t.right(b)];
    uint32_t sym = SymbolAt(base_labels[b], base_count, param_arity,
                            param_arity == 1 && b == a, true);
    State with_pebble = dta.Step(l, r, sym);
    if (ctx_at(b, with_pebble)) out.push_back(b);
  }
  return out;
}

Dta ProjectParamTrack(const Dta& dta, uint32_t base_count) {
  QPWM_CHECK_EQ(dta.alphabet_size(), base_count * 4);
  std::vector<std::vector<uint32_t>> mapping(base_count * 4);
  for (uint32_t sym = 0; sym < mapping.size(); ++sym) {
    uint32_t base = sym % base_count;
    uint32_t bits = sym / base_count;     // bit 0 = a, bit 1 = b
    uint32_t b_bit = (bits >> 1) & 1;
    mapping[sym].push_back(base + base_count * b_bit);
  }
  return dta.ToNta().RemapSymbols(base_count * 2, mapping).Determinize().Minimize();
}

Dta SwapPebbleTracks(const Dta& dta, uint32_t base_count) {
  QPWM_CHECK_EQ(dta.alphabet_size(), base_count * 4);
  std::vector<std::vector<uint32_t>> mapping(base_count * 4);
  for (uint32_t sym = 0; sym < mapping.size(); ++sym) {
    uint32_t base = sym % base_count;
    uint32_t bits = sym / base_count;
    uint32_t swapped = ((bits & 1) << 1) | ((bits >> 1) & 1);
    mapping[sym].push_back(base + base_count * swapped);
  }
  return dta.RemapSymbols(base_count * 4, mapping);
}

Structure TreeSkeletonStructure(const BinaryTree& t) {
  Signature sig;
  size_t s1 = sig.AddRelation("S1", 2);
  size_t s2 = sig.AddRelation("S2", 2);
  Structure g(sig, t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.left(v) != kNoNode) g.AddTuple(s1, Tuple{v, t.left(v)});
    if (t.right(v) != kNoNode) g.AddTuple(s2, Tuple{v, t.right(v)});
  }
  g.Seal();
  return g;
}

std::unique_ptr<ParametricQuery> MakeTreeQuery(const BinaryTree& t,
                                               const std::vector<uint32_t>& base_labels,
                                               uint32_t base_count, const Dta& dta,
                                               uint32_t param_arity) {
  QPWM_CHECK_LE(param_arity, 1u);
  auto fn = [&t, &base_labels, base_count, &dta, param_arity](
                const Structure&, const Tuple& params) {
    NodeId a = param_arity == 1 ? params[0] : 0;
    // qpwm-lint: allow(legacy-tuple-vector) — building the returned answer set (API contract)
    std::vector<Tuple> out;
    for (NodeId b : EvaluateWa(t, base_labels, base_count, dta, param_arity, a)) {
      out.push_back(Tuple{b});
    }
    return out;
  };
  return std::make_unique<CallbackQuery>("tree-automaton", param_arity, 1,
                                         std::move(fn));
}

}  // namespace qpwm
