#include "qpwm/core/attack.h"

namespace qpwm {

WeightMap UniformNoiseAttack(const WeightMap& marked, Weight c, Rng& rng) {
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    out.Set(t, w + rng.Uniform(-c, c));
  });
  return out;
}

WeightMap JitterAttack(const WeightMap& marked, double flip_prob, Rng& rng) {
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    if (rng.Bernoulli(flip_prob)) out.Set(t, w + (rng.Coin() ? 1 : -1));
  });
  return out;
}

WeightMap RoundingAttack(const WeightMap& marked, Weight granularity) {
  QPWM_CHECK_GE(granularity, 1);
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    Weight down = (w >= 0 ? w : w - granularity + 1) / granularity * granularity;
    Weight up = down + granularity;
    out.Set(t, (w - down <= up - w) ? down : up);
  });
  return out;
}

WeightMap GuessingPairAttack(const WeightMap& marked, const QueryIndex& index,
                             size_t guesses, Rng& rng) {
  WeightMap out = marked;
  const size_t n = index.num_active();
  if (n < 2) return out;
  for (size_t i = 0; i < guesses; ++i) {
    size_t a = rng.Below(n);
    size_t b = rng.Below(n);
    if (a == b) continue;
    // Attacker's guess at undoing a (+1, -1) pair.
    out.Add(index.active_element(a), -1);
    out.Add(index.active_element(b), +1);
  }
  return out;
}

WeightMap AveragingCollusionAttack(const std::vector<const WeightMap*>& copies) {
  QPWM_CHECK(!copies.empty());
  WeightMap out = *copies[0];
  out.ForEach([&](const Tuple& t, Weight) {
    Weight sum = 0;
    for (const WeightMap* copy : copies) sum += copy->Get(t);
    const auto n = static_cast<Weight>(copies.size());
    // Round half toward the first copy's value.
    Weight rounded = sum >= 0 ? (2 * sum + n) / (2 * n) : -((-2 * sum + n) / (2 * n));
    out.Set(t, rounded);
  });
  return out;
}

}  // namespace qpwm
