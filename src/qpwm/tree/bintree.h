// Binary Sigma-trees (Section 4): ordered binary trees with one alphabet
// symbol per node. XML documents reach this form through the first-child /
// next-sibling encoding in qpwm/xml. The tree-order relation <= (ancestor)
// is answered from Euler-tour intervals.
#ifndef QPWM_TREE_BINTREE_H_
#define QPWM_TREE_BINTREE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/util/check.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Node id within a tree.
using NodeId = uint32_t;
constexpr NodeId kNoNode = UINT32_MAX;

/// Interned label alphabet Sigma.
class Alphabet {
 public:
  /// Returns the id of `symbol`, interning it if new.
  uint32_t Intern(const std::string& symbol);
  /// Id of an existing symbol.
  [[nodiscard]] Result<uint32_t> Find(const std::string& symbol) const;
  const std::string& Name(uint32_t id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// An ordered binary tree with uint32 labels. Build with AddNode / SetLeft /
/// SetRight, then Finalize() (which validates single-rootedness and
/// computes traversal orders).
class BinaryTree {
 public:
  /// Adds a detached node; returns its id.
  NodeId AddNode(uint32_t label);

  void SetLeft(NodeId parent, NodeId child);
  void SetRight(NodeId parent, NodeId child);
  void SetLabel(NodeId v, uint32_t label) { labels_[v] = label; }

  /// Validates the shape and computes root, postorder, Euler intervals.
  [[nodiscard]] Status Finalize();

  size_t size() const { return labels_.size(); }
  NodeId root() const { return root_; }
  uint32_t label(NodeId v) const { return labels_[v]; }
  NodeId left(NodeId v) const { return left_[v]; }
  NodeId right(NodeId v) const { return right_[v]; }
  NodeId parent(NodeId v) const { return parent_[v]; }
  bool IsLeaf(NodeId v) const { return left_[v] == kNoNode && right_[v] == kNoNode; }

  /// Nodes in bottom-up (children before parents) order.
  const std::vector<NodeId>& Postorder() const { return postorder_; }

  /// The tree-order relation a <= b: a is an ancestor of b or a == b.
  bool IsAncestorOrSelf(NodeId a, NodeId b) const {
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }

  /// Number of nodes in the subtree rooted at v.
  size_t SubtreeSize(NodeId v) const { return subtree_size_[v]; }

  /// All labels, indexable by node id.
  const std::vector<uint32_t>& labels() const { return labels_; }

 private:
  std::vector<uint32_t> labels_;
  std::vector<NodeId> left_, right_, parent_;
  NodeId root_ = kNoNode;
  std::vector<NodeId> postorder_;
  std::vector<uint32_t> tin_, tout_;
  std::vector<uint32_t> subtree_size_;
};

/// Random binary tree: nodes attached one by one to a uniformly random free
/// child slot; labels uniform over [0, num_labels).
class Rng;
BinaryTree RandomBinaryTree(size_t n, uint32_t num_labels, Rng& rng);

/// Left-leaning chain of n nodes (worst-case depth), labels cycling.
BinaryTree ChainTree(size_t n, uint32_t num_labels);

/// Complete binary tree with n nodes (heap shape), labels cycling.
BinaryTree CompleteTree(size_t n, uint32_t num_labels);

}  // namespace qpwm

#endif  // QPWM_TREE_BINTREE_H_
