#include <gtest/gtest.h>

#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/multiquery.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

TEST(UnionQueryTest, SelectsSubQuery) {
  Structure g = CycleGraph(6, false);
  auto fwd = AtomQuery::Adjacency("E");
  AtomQuery bwd("E", {{false, 0}, {true, 0}}, 1, 1);
  UnionQuery both({fwd.get(), &bwd});
  EXPECT_EQ(both.ParamArity(), 2u);
  // Selector 0 = successors; selector 1 = predecessors.
  EXPECT_EQ(both.Evaluate(g, Tuple{0, 2}), (std::vector<Tuple>{{3}}));
  EXPECT_EQ(both.Evaluate(g, Tuple{1, 2}), (std::vector<Tuple>{{1}}));
  // Out-of-range selector answers empty.
  EXPECT_TRUE(both.Evaluate(g, Tuple{5, 2}).empty());
}

TEST(UnionQueryTest, PadsShorterQueries) {
  Structure g = CycleGraph(6, false);
  auto adjacency = AtomQuery::Adjacency("E");
  DistanceQuery distance(1);
  CallbackQuery pairs("pairs", 2, 1,
                      [](const Structure&, const Tuple& p) {
                        return std::vector<Tuple>{{p[0]}, {p[1]}};
                      });
  UnionQuery all({adjacency.get(), &distance, &pairs});
  EXPECT_EQ(all.ParamArity(), 3u);  // 1 selector + max_r = 2
  // Selector 2 consumes both parameter slots.
  auto w = all.Evaluate(g, Tuple{2, 4, 5});
  EXPECT_EQ(w.size(), 2u);
  // Selector 0 ignores the padding slot.
  EXPECT_EQ(all.Evaluate(g, Tuple{0, 0, 5}), (std::vector<Tuple>{{1}}));
}

TEST(UnionQueryTest, DomainEnumeratesPerSelector) {
  Structure g = CycleGraph(4, false);
  auto adjacency = AtomQuery::Adjacency("E");
  DistanceQuery distance(1);
  UnionQuery both({adjacency.get(), &distance});
  auto domain = both.FullDomain(g);
  EXPECT_EQ(domain.size(), 8u);  // 4 + 4
  for (const Tuple& p : domain) EXPECT_EQ(p.size(), 2u);
}

TEST(UnionQueryTest, LocalityIsWorstMember) {
  auto adjacency = AtomQuery::Adjacency("E");
  DistanceQuery distance(3);
  UnionQuery both({adjacency.get(), &distance});
  EXPECT_EQ(both.LocalityRank().value(), 3u);

  CallbackQuery opaque("opaque", 1, 1,
                       [](const Structure&, const Tuple&) {
                         return std::vector<Tuple>{};
                       });
  UnionQuery with_opaque({adjacency.get(), &opaque});
  EXPECT_FALSE(with_opaque.LocalityRank().has_value());
}

TEST(UnionQueryTest, SchemePreservesAllQueriesAtOnce) {
  // The headline use: one plan bounds distortion for BOTH registered
  // queries, and detection reads through either.
  Rng rng(99);
  Structure g = RandomBoundedDegreeGraph(200, 3, 600, true, rng);
  auto adjacency = AtomQuery::Adjacency("E");
  DistanceQuery distance(2);
  UnionQuery both({adjacency.get(), &distance});
  QueryIndex index(g, both, both.FullDomain(g));
  WeightMap w = RandomWeights(g, 100, 999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = 0.5;
  opts.key = {9, 9};
  opts.rho = 2;
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);

  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
  WeightMap marked = scheme.Embed(w, mark);

  // Check both sub-queries' distortion separately.
  QueryIndex adj_index(g, *adjacency, AllParams(g, 1));
  QueryIndex dist_index(g, distance, AllParams(g, 1));
  EXPECT_LE(GlobalDistortion(adj_index, w, marked),
            static_cast<Weight>(scheme.Budget()));
  EXPECT_LE(GlobalDistortion(dist_index, w, marked),
            static_cast<Weight>(scheme.Budget()));

  HonestServer server(index, marked);
  EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
}

TEST(GroupedQueryTest, UnionsGroupMembers) {
  Structure g = PathGraph(6, false);
  auto adjacency = AtomQuery::Adjacency("E");
  // Group parameters by parity.
  GroupedQuery grouped(*adjacency, AllParams(g, 1),
                       [](const Structure&, const Tuple& p) {
                         return static_cast<uint64_t>(p[0] % 2);
                       });
  // Even group: successors of 0, 2, 4 -> {1, 3, 5}.
  auto w = grouped.Evaluate(g, Tuple{0});
  EXPECT_EQ(w, (std::vector<Tuple>{{1}, {3}, {5}}));
  // Same result for any even parameter.
  EXPECT_EQ(grouped.Evaluate(g, Tuple{4}), w);
}

TEST(GroupedQueryTest, AggregatePreservationFollowsFromUnderlying) {
  // If a marking bounds distortion of the grouped query, grouped SUM
  // aggregates are bounded too — the AGGR observation.
  Rng rng(55);
  Structure g = RandomBoundedDegreeGraph(100, 3, 250, false, rng);
  auto adjacency = AtomQuery::Adjacency("E");
  GroupedQuery grouped(*adjacency, AllParams(g, 1),
                       [](const Structure&, const Tuple& p) {
                         return static_cast<uint64_t>(p[0] % 5);
                       });
  QueryIndex index(g, grouped, AllParams(g, 1));
  WeightMap w = RandomWeights(g, 10, 99, rng);

  LocalSchemeOptions opts;
  opts.epsilon = 0.5;
  opts.key = {3, 4};
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  if (scheme.CapacityBits() == 0) GTEST_SKIP();
  BitVec mark(scheme.CapacityBits(), true);
  WeightMap marked = scheme.Embed(w, mark);
  EXPECT_LE(GlobalDistortion(index, w, marked),
            static_cast<Weight>(scheme.Budget()));
}

}  // namespace
}  // namespace qpwm
