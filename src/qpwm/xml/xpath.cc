#include "qpwm/xml/xpath.h"

#include <algorithm>
#include <set>

#include "qpwm/util/check.h"
#include "qpwm/util/str.h"

namespace qpwm {
namespace {

// "y is an (unranked) child of x" over the binary encoding. CHILD is the
// compiler's precompiled 3-state atom for
//   exists z (S1(x, z) & S2-chain(z, y));
// the set-quantifier spelling of that closure is MSO-equivalent (tests
// cross-validate the two) but needlessly expensive to determinize.
FormulaPtr ChildFormula(const std::string& x, const std::string& y, int& fresh) {
  (void)fresh;
  return MakeAtom("CHILD", {x, y});
}

// "y is a proper (unranked) descendant of x": in the first-child /
// next-sibling encoding the unranked descendants of x are exactly the
// binary subtree of x's left child, so exists z (S1(x, z) & LEQ(z, y)).
FormulaPtr DescendantFormula(const std::string& x, const std::string& y, int& fresh) {
  std::string z = StrCat("z", fresh++);
  return MakeExists(z, MakeAnd(MakeAtom("S1", {x, z}), MakeAtom("LEQ", {z, y})));
}

FormulaPtr LabelIs(const std::string& var, const std::string& label) {
  return MakeAtom("P_" + label, {var});
}

FormulaPtr False(const std::string& free_var) {
  return MakeAnd(MakeEq(free_var, free_var), MakeNot(MakeEq(free_var, free_var)));
}

}  // namespace

Result<XPathQuery> XPathQuery::Parse(std::string_view text) {
  std::string_view rest = StripWhitespace(text);
  if (!rest.empty() && rest[0] == '/') rest.remove_prefix(1);
  if (rest.empty()) return Status::ParseError("empty XPath");

  XPathQuery out;
  bool pending_descendant = false;
  for (const std::string& raw : Split(rest, '/')) {
    std::string_view step = StripWhitespace(raw);
    if (step.empty()) {
      // An empty segment encodes '//' (descendant axis for the next step).
      if (pending_descendant) return Status::ParseError("empty XPath step");
      pending_descendant = true;
      continue;
    }
    XPathStep s;
    s.descendant_axis = pending_descendant;
    pending_descendant = false;
    size_t bracket = step.find('[');
    if (bracket == std::string_view::npos) {
      s.tag = std::string(step);
    } else {
      if (step.back() != ']') return Status::ParseError("unterminated predicate");
      s.tag = std::string(StripWhitespace(step.substr(0, bracket)));
      std::string_view pred = step.substr(bracket + 1, step.size() - bracket - 2);
      size_t eq = pred.find('=');
      if (eq == std::string_view::npos) {
        return Status::ParseError("predicate must be tag = value");
      }
      s.pred_tag = std::string(StripWhitespace(pred.substr(0, eq)));
      std::string_view value = StripWhitespace(pred.substr(eq + 1));
      if (value.empty()) return Status::ParseError("empty predicate value");
      if (value[0] == '$') {
        s.pred_is_param = true;
      } else {
        if (value.size() >= 2 && (value.front() == '\'' || value.front() == '"') &&
            value.back() == value.front()) {
          value = value.substr(1, value.size() - 2);
        }
        s.pred_literal = std::string(value);
      }
    }
    if (s.tag.empty()) return Status::ParseError("step without tag");
    out.steps_.push_back(std::move(s));
  }
  if (pending_descendant) return Status::ParseError("trailing '/'");
  if (out.steps_.empty()) return Status::ParseError("empty XPath");
  int params = 0;
  for (const auto& s : out.steps_) params += s.pred_is_param ? 1 : 0;
  if (params > 1) {
    return Status::ParseError("at most one $1 parameter is supported");
  }
  return out;
}

bool XPathQuery::has_param() const {
  for (const auto& s : steps_) {
    if (s.pred_is_param) return true;
  }
  return false;
}

Result<FormulaPtr> XPathQuery::ToMso(const EncodedXml& encoded) const {
  QPWM_CHECK(!steps_.empty());
  int fresh = 0;

  // Step variables: x0 .. x_{k-2}, then "v" for the final step.
  std::vector<std::string> step_var(steps_.size());
  for (size_t i = 0; i + 1 < steps_.size(); ++i) step_var[i] = StrCat("x", i);
  step_var.back() = "v";

  // Constraints, conjoined innermost-out so each exists wraps tightly.
  FormulaPtr body = nullptr;
  auto conjoin = [&](FormulaPtr f) {
    body = body == nullptr ? std::move(f) : MakeAnd(std::move(body), std::move(f));
  };

  // A leading '//' matches the tag anywhere; otherwise step 0 is the root.
  if (!steps_[0].descendant_axis) conjoin(MakeAtom("ROOT", {step_var[0]}));
  for (size_t i = 0; i < steps_.size(); ++i) {
    const XPathStep& s = steps_[i];
    conjoin(LabelIs(step_var[i], s.tag));
    if (i > 0) {
      conjoin(s.descendant_axis
                  ? DescendantFormula(step_var[i - 1], step_var[i], fresh)
                  : ChildFormula(step_var[i - 1], step_var[i], fresh));
    }

    if (s.pred_tag.has_value()) {
      std::string f_var = StrCat("f", fresh++);
      // "f has a text child labeled `label`", with its own tightly scoped
      // exists — keeping each projection over a tiny automaton. (Hoisting
      // one exists over the whole label disjunction is equivalent but makes
      // the subset construction track label sets and blow up.)
      auto has_text_child = [&](const std::string& label) {
        std::string t_var = StrCat("t", fresh++);
        return MakeExists(t_var, MakeAnd(ChildFormula(f_var, t_var, fresh),
                                         LabelIs(t_var, label)));
      };
      FormulaPtr value_test;
      if (s.pred_is_param) {
        // Same label as the parameter's text node: disjunction over the
        // text values observed under <pred_tag> elements, with P_c(u)
        // hoisted out of the per-label exists.
        std::set<std::string> labels;
        for (NodeId node : ParamTreeNodes(encoded)) {
          labels.insert(encoded.sigma.Name(encoded.tree.label(node)));
        }
        for (const std::string& label : labels) {
          FormulaPtr term = MakeAnd(LabelIs("u", label), has_text_child(label));
          value_test = value_test == nullptr
                           ? std::move(term)
                           : MakeOr(std::move(value_test), std::move(term));
        }
        if (value_test == nullptr) value_test = False(f_var);
      } else {
        if (encoded.sigma.Find(*s.pred_literal).ok()) {
          value_test = has_text_child(*s.pred_literal);
        } else {
          value_test = False(f_var);  // literal absent: matches nothing
        }
      }
      FormulaPtr pred = MakeExists(
          f_var, MakeAnd(MakeAnd(ChildFormula(step_var[i], f_var, fresh),
                                 LabelIs(f_var, *s.pred_tag)),
                         std::move(value_test)));
      conjoin(std::move(pred));
    }
  }

  // Existentially close the intermediate step variables (not u, not v).
  for (size_t i = steps_.size() - 1; i-- > 0;) {
    body = MakeExists(step_var[i], std::move(body));
  }
  return body;
}

Result<TrackedDta> XPathQuery::Compile(const EncodedXml& encoded) const {
  auto formula = ToMso(encoded);
  if (!formula.ok()) return formula.status();
  std::vector<std::string> var_order =
      has_param() ? std::vector<std::string>{"u", "v"} : std::vector<std::string>{"v"};
  return CompileMso(*formula.value(), encoded.sigma, var_order);
}

std::vector<XmlNodeId> XPathQuery::EvaluateOnDom(const XmlDocument& doc,
                                                 const std::string& param_value) const {
  auto passes_pred = [&](XmlNodeId id, const XPathStep& s) {
    if (!s.pred_tag.has_value()) return true;
    for (XmlNodeId c : doc.node(id).children) {
      const XmlNode& child = doc.node(c);
      if (child.kind != XmlNode::Kind::kElement || child.tag != *s.pred_tag) continue;
      std::string text = doc.TextContent(c);
      if (s.pred_is_param ? (text == param_value) : (text == *s.pred_literal)) {
        return true;
      }
    }
    return false;
  };
  auto matches = [&](XmlNodeId id, const XPathStep& s) {
    const XmlNode& n = doc.node(id);
    return n.kind == XmlNode::Kind::kElement && n.tag == s.tag && passes_pred(id, s);
  };
  // Collects matching proper descendants of `id` into `out`.
  auto collect_descendants = [&](XmlNodeId id, const XPathStep& s,
                                 std::vector<XmlNodeId>& out) {
    std::vector<XmlNodeId> stack(doc.node(id).children.rbegin(),
                                 doc.node(id).children.rend());
    while (!stack.empty()) {
      XmlNodeId v = stack.back();
      stack.pop_back();
      if (matches(v, s)) out.push_back(v);
      const auto& children = doc.node(v).children;
      stack.insert(stack.end(), children.rbegin(), children.rend());
    }
  };
  auto dedupe = [](std::vector<XmlNodeId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };

  std::vector<XmlNodeId> frontier;
  if (steps_[0].descendant_axis) {
    if (matches(doc.root(), steps_[0])) frontier.push_back(doc.root());
    collect_descendants(doc.root(), steps_[0], frontier);
    dedupe(frontier);
  } else if (matches(doc.root(), steps_[0])) {
    frontier.push_back(doc.root());
  }

  for (size_t i = 1; i < steps_.size(); ++i) {
    std::vector<XmlNodeId> next;
    for (XmlNodeId id : frontier) {
      if (steps_[i].descendant_axis) {
        collect_descendants(id, steps_[i], next);
      } else {
        for (XmlNodeId c : doc.node(id).children) {
          if (matches(c, steps_[i])) next.push_back(c);
        }
      }
    }
    dedupe(next);
    frontier = std::move(next);
  }
  return frontier;
}

std::vector<NodeId> XPathQuery::ParamTreeNodes(const EncodedXml& encoded) const {
  const XPathStep* param_step = nullptr;
  for (const auto& s : steps_) {
    if (s.pred_is_param) param_step = &s;
  }
  std::vector<NodeId> out;
  if (param_step == nullptr) return out;
  auto pred_tag = encoded.sigma.Find(*param_step->pred_tag);
  if (!pred_tag.ok()) return out;

  // Text nodes are left children of their element in the encoding; scan for
  // nodes whose parent chain (first-child edge) starts at a pred-tag node.
  const BinaryTree& t = encoded.tree;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.label(v) != pred_tag.value()) continue;
    // Children of v in the unranked sense: left child then right chain.
    // Text nodes have no first child (they may have right siblings).
    for (NodeId c = t.left(v); c != kNoNode; c = t.right(c)) {
      if (t.left(c) == kNoNode) out.push_back(c);
    }
  }
  return out;
}

}  // namespace qpwm
