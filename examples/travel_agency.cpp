// Walkthrough of the paper's Examples 1-3 on the travel-agency database,
// then a fleet-scale scenario: the owner distributes distinctly watermarked
// copies to many data servers and traces a leak back to its source.
//
//   $ ./travel_agency
#include <iostream>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/relational/table.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

namespace {

std::string Hhmm(qpwm::Weight minutes) {
  return qpwm::StrCat(minutes / 60, ":", minutes % 60 < 10 ? "0" : "",
                      minutes % 60);
}

}  // namespace

int main() {
  using namespace qpwm;

  // --- Example 1: the instance and its f values (Example 2).
  Database db = TravelAgencyDatabase();
  RelationalInstance instance = ToWeightedStructure(db).ValueOrDie();
  AtomQuery query("Route", {{true, 0}, {false, 0}}, 1, 1);
  QueryIndex index(instance.structure, query, AllParams(instance.structure, 1));

  TextTable example2("Example 2: f(travel) = sum of durations");
  example2.SetHeader({"travel", "f (h:mm)"});
  for (const char* travel : {"India discovery", "Nepal Trek", "TourNepal"}) {
    ElemId e = instance.structure.FindElement(travel).ValueOrDie();
    size_t p = index.FindParam(Tuple{e}).ValueOrDie();
    example2.AddRow({travel, Hhmm(index.SumWeights(p, instance.weights))});
  }
  example2.Print(std::cout);

  // --- Example 3: a valid 0:10-local, 0:10-global distortion.
  LocalSchemeOptions options;
  options.key = {42, 4242};
  options.epsilon = 0.1;  // budget d = 10 minutes
  LocalScheme scheme = LocalScheme::Plan(index, options).ValueOrDie();
  std::cout << "\nScheme: " << scheme.CapacityBits() << " bit(s), "
            << scheme.NumTypes() << " neighborhood type(s), bound "
            << scheme.DistortionBound() << " min <= budget " << scheme.Budget()
            << " min\n";

  // --- Fleet scenario: 2^l servers get distinct copies.
  const size_t bits = scheme.CapacityBits();
  const uint64_t fleet = uint64_t{1} << bits;
  std::cout << "distributing " << fleet << " distinct watermarked copies\n";

  Rng rng(7);
  uint64_t leaker = rng.Below(fleet);
  WeightMap leaked = scheme.Embed(instance.weights, BitVec::FromUint64(leaker, bits));

  // The malicious server additionally jitters weights a little.
  WeightMap attacked = JitterAttack(leaked, 0.05, rng);
  HonestServer suspect(index, attacked);

  BitVec verdict = scheme.Detect(instance.weights, suspect).ValueOrDie();
  std::cout << "true leaker: server #" << leaker << ", detected: server #"
            << verdict.ToUint64() << "\n";

  // Also show the per-query distortion the fleet's users experienced.
  TextTable drift("Realized distortion of the leaked copy");
  drift.SetHeader({"travel", "f original", "f leaked", "|drift| (min)"});
  for (const char* travel : {"India discovery", "Nepal Trek", "TourNepal"}) {
    ElemId e = instance.structure.FindElement(travel).ValueOrDie();
    size_t p = index.FindParam(Tuple{e}).ValueOrDie();
    Weight f0 = index.SumWeights(p, instance.weights);
    Weight f1 = index.SumWeights(p, leaked);
    drift.AddRow({travel, Hhmm(f0), Hhmm(f1), StrCat(std::abs(f1 - f0))});
  }
  drift.Print(std::cout);
  return 0;
}
