// Robustness tests: the XML parser and XPath parser must never crash or
// hang on malformed input — every outcome is either a parsed document or a
// clean ParseError. Inputs are random mutations of valid documents plus
// random byte soup (deterministic seeds).
#include <gtest/gtest.h>

#include <string>

#include "qpwm/util/random.h"
#include "qpwm/xml/parser.h"
#include "qpwm/xml/xpath.h"

namespace qpwm {
namespace {

const char* kSeedDocs[] = {
    "<a><b>text</b><c x=\"1\"/></a>",
    "<school><student><firstname>John</firstname><exam>11</exam></student></school>",
    "<r>&lt;&amp;&gt;<n>42</n><!-- c --></r>",
};

std::string Mutate(const std::string& base, Rng& rng) {
  std::string out = base;
  size_t edits = 1 + rng.Below(4);
  for (size_t i = 0; i < edits && !out.empty(); ++i) {
    size_t pos = rng.Below(out.size());
    switch (rng.Below(3)) {
      case 0:  // flip a byte
        out[pos] = static_cast<char>(32 + rng.Below(95));
        break;
      case 1:  // delete a byte
        out.erase(pos, 1);
        break;
      case 2:  // duplicate a span
        out.insert(pos, out.substr(pos, 1 + rng.Below(5)));
        break;
    }
  }
  return out;
}

TEST(XmlFuzzTest, MutatedDocumentsNeverCrash) {
  Rng rng(2718);
  int parsed = 0, rejected = 0;
  for (const char* seed : kSeedDocs) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string doc = Mutate(seed, rng);
      auto result = ParseXml(doc);
      if (result.ok()) {
        ++parsed;
        // Whatever parsed must serialize and re-parse.
        std::string serialized = SerializeXml(result.value());
        EXPECT_TRUE(ParseXml(serialized).ok()) << doc;
      } else {
        ++rejected;
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
  // Both outcomes must occur — otherwise the harness tests nothing.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(XmlFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(314159);
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    size_t len = rng.Below(60);
    for (size_t i = 0; i < len; ++i) {
      soup += static_cast<char>(rng.Below(256));
    }
    // qpwm-lint: allow(discarded-status) -- fuzz target: must return, never crash
    (void)ParseXml(soup);
  }
}

TEST(XmlFuzzTest, DeeplyNestedDocumentParses) {
  std::string open, close;
  for (int i = 0; i < 2000; ++i) {
    open += "<a>";
    close += "</a>";
  }
  auto result = ParseXml(open + "x" + close);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2001u);
}

TEST(XmlFuzzTest, NestingDepthLimitReturnsParseError) {
  std::string open, close;
  for (int i = 0; i < 64; ++i) {
    open += "<a>";
    close += "</a>";
  }
  const std::string doc = open + "x" + close;

  XmlParseLimits limits;
  limits.max_depth = 32;
  auto rejected = ParseXml(doc, limits);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kParseError);

  // At or under the limit: parses.
  limits.max_depth = 64;
  EXPECT_TRUE(ParseXml(doc, limits).ok());

  // 0 disables the check entirely.
  limits.max_depth = 0;
  EXPECT_TRUE(ParseXml(doc, limits).ok());
}

TEST(XmlFuzzTest, DocumentSizeLimitReturnsParseError) {
  const std::string doc = "<a><b>hello</b></a>";

  XmlParseLimits limits;
  limits.max_bytes = 8;
  auto rejected = ParseXml(doc, limits);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kParseError);

  limits.max_bytes = doc.size();
  EXPECT_TRUE(ParseXml(doc, limits).ok());

  limits.max_bytes = 0;  // disabled
  EXPECT_TRUE(ParseXml(doc, limits).ok());
}

TEST(XmlFuzzTest, BombInputsRejectedNotCrashed) {
  // A pathological nesting bomb under tight limits must come back as a clean
  // ParseError long before the recursion can exhaust the stack.
  XmlParseLimits limits;
  limits.max_depth = 128;
  limits.max_bytes = 1u << 20;
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "<a>";
  auto result = ParseXml(bomb, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(XPathFuzzTest, MutatedQueriesNeverCrash) {
  Rng rng(1618);
  const std::string seed = "school/student[firstname=$1]/exam";
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 600; ++trial) {
    std::string text = Mutate(seed, rng);
    auto result = XPathQuery::Parse(text);
    (result.ok() ? parsed : rejected) += 1;
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(XmlFuzzTest, EncodeRejectsGracefully) {
  // Structured-but-wrong weight content must come back as Status, not abort.
  Rng rng(999);
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc = Mutate(kSeedDocs[1], rng);
    auto parsed = ParseXml(doc);
    if (!parsed.ok()) continue;
    (void)EncodeXml(parsed.value(), {"exam"});  // ok() or clean error
  }
}

}  // namespace
}  // namespace qpwm
