
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qpwm/structure/gaifman.cc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/gaifman.cc.o" "gcc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/gaifman.cc.o.d"
  "/root/repo/src/qpwm/structure/generators.cc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/generators.cc.o" "gcc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/generators.cc.o.d"
  "/root/repo/src/qpwm/structure/isomorphism.cc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/isomorphism.cc.o" "gcc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/isomorphism.cc.o.d"
  "/root/repo/src/qpwm/structure/neighborhood.cc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/neighborhood.cc.o" "gcc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/neighborhood.cc.o.d"
  "/root/repo/src/qpwm/structure/paths.cc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/paths.cc.o" "gcc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/paths.cc.o.d"
  "/root/repo/src/qpwm/structure/structure.cc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/structure.cc.o" "gcc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/structure.cc.o.d"
  "/root/repo/src/qpwm/structure/typemap.cc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/typemap.cc.o" "gcc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/typemap.cc.o.d"
  "/root/repo/src/qpwm/structure/weighted.cc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/weighted.cc.o" "gcc" "src/qpwm/structure/CMakeFiles/qpwm_structure.dir/weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qpwm/util/CMakeFiles/qpwm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
