# Empty compiler generated dependencies file for qpwm_baseline.
# This may be replaced when dependencies are built.
