// bench_plan_scale — the plan-time perf baseline for the parallel, memoized
// planning layer (thread pool + canonical-form cache).
//
// Instance: the E6-style bounded-degree graph (RandomBoundedDegreeGraph,
// degree k, adjacency query over all unary parameters) with rho = 2, the
// regime the paper's Theorem 3 targets: neighborhoods are tiny and highly
// repetitive (ntp << |domain|), so canonicalization memoizes extremely well.
//
// Reported speedups are against the *pre-optimization planner* — serial with
// the canonical-form cache disabled — which is what "1 thread" meant before
// this layer existed. `speedup_vs_cached_serial` additionally isolates the
// thread-pool contribution (≈1.0 on single-core CI; see docs/perf.md).
//
// --json[=PATH] writes/merges the "plan_scale" section of BENCH_plan.json so
// future PRs have a trajectory to beat.
//
// --sweep[=N1,N2,...] additionally scales the typing hot loop (TypeAll over
// the full unary domain — the dominant planning cost) to 10^6-element
// instances, reporting per-point thread scaling, flat-storage bytes per
// tuple, and the process peak RSS. Sizes are visited ascending so each RSS
// sample is dominated by the current instance.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/canon_cache.h"
#include "qpwm/structure/generators.h"
#include "qpwm/structure/typemap.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

namespace {

double TimeMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct RunResult {
  size_t threads = 0;
  double index_ms = 0;
  double plan_ms = 0;
  CanonCache::Stats cache;
  bool identical = true;
};

struct SweepRun {
  size_t threads = 0;
  double type_ms = 0;
};

struct SweepPoint {
  size_t n = 0;
  size_t tuples = 0;
  size_t ntp = 0;
  double setup_ms = 0;  // Gaifman + incidence CSR build (serial, 1T point)
  size_t structure_bytes = 0;
  size_t gaifman_bytes = 0;
  uint64_t peak_rss_kb = 0;
  CanonCache::Stats cache;  // after the 1-thread run
  std::vector<SweepRun> runs;
  bool identical = true;
};

std::vector<size_t> ParseSizeList(const std::string& list) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    out.push_back(std::stoul(list.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

bool SamePlan(const LocalScheme& a, const LocalScheme& b) {
  if (a.CapacityBits() != b.CapacityBits() || a.DistortionBound() != b.DistortionBound() ||
      a.NumTypes() != b.NumTypes() || a.CanonicalParams() != b.CanonicalParams()) {
    return false;
  }
  const auto& pa = a.marking().pairs();
  const auto& pb = b.marking().pairs();
  for (size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].plus != pb[i].plus || pa[i].minus != pb[i].minus) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 12000;
  size_t k = 3;
  uint32_t rho = 2;
  int reps = 3;
  std::optional<std::string> json_path;
  std::vector<size_t> sweep_sizes;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_plan.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--sweep") {
      sweep_sizes = {50000, 200000, 1000000};
    } else if (arg.rfind("--sweep=", 0) == 0) {
      sweep_sizes = ParseSizeList(arg.substr(8));
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::stoul(argv[++i]);
    } else if (arg == "--k" && i + 1 < argc) {
      k = std::stoul(argv[++i]);
    } else if (arg == "--rho" && i + 1 < argc) {
      rho = static_cast<uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: bench_plan_scale [--json[=PATH]] [--n N] [--k K] "
                   "[--rho R] [--reps R] [--sweep[=N1,N2,...]]\n";
      return 2;
    }
  }

  std::cout << "=== bench_plan_scale: parallel, memoized planning (n=" << n
            << ", k=" << k << ", rho=" << rho << ") ===\n";

  Rng rng(42);
  Structure g = RandomBoundedDegreeGraph(n, k, 3 * n, false, rng);
  auto query = AtomQuery::Adjacency("E");

  LocalSchemeOptions opts;
  opts.rho = rho;
  opts.epsilon = 0.5;
  opts.key = {42, 99};

  // Baseline: the pre-optimization planner — one thread, no canonical-form
  // cache. This is the "1 thread" number every speedup is measured against.
  SetParallelThreads(1);
  std::optional<QueryIndex> index;
  const double baseline_index_ms = TimeMs([&] { index.emplace(g, *query, AllParams(g, 1)); });
  LocalSchemeOptions uncached = opts;
  uncached.canon_cache = false;
  std::optional<LocalScheme> baseline_scheme;
  double baseline_ms = 0;
  for (int r = 0; r < reps; ++r) {
    const double ms = TimeMs([&] {
      baseline_scheme.emplace(LocalScheme::Plan(*index, uncached).ValueOrDie());
    });
    baseline_ms = r == 0 ? ms : std::min(baseline_ms, ms);
  }

  std::vector<RunResult> runs;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    RunResult run;
    run.threads = threads;
    std::optional<QueryIndex> t_index;
    run.index_ms = TimeMs([&] { t_index.emplace(g, *query, AllParams(g, 1)); });
    std::optional<LocalScheme> scheme;
    for (int r = 0; r < reps; ++r) {
      CanonCache::Global().Clear();  // cold cache: hits below are intra-plan
      const double ms = TimeMs(
          [&] { scheme.emplace(LocalScheme::Plan(*t_index, opts).ValueOrDie()); });
      run.plan_ms = r == 0 ? ms : std::min(run.plan_ms, ms);
    }
    run.cache = CanonCache::Global().stats();
    run.identical = SamePlan(*baseline_scheme, *scheme);
    runs.push_back(run);
  }
  SetParallelThreads(0);  // restore the env/hardware default

  TextTable table(StrCat("Plan time, bounded-degree instance (baseline: serial "
                         "uncached ", FmtDouble(baseline_ms, 2), " ms; |domain|=",
                         index->num_params(), ", |W|=", index->num_active(),
                         ", ntp=", baseline_scheme->NumTypes(), ")"));
  table.SetHeader({"threads", "index ms", "plan ms", "speedup", "vs 1T cached",
                   "hit rate", "identical"});
  const double cached_serial_ms = runs.front().plan_ms;
  for (const RunResult& run : runs) {
    table.AddRow({StrCat(run.threads), FmtDouble(run.index_ms, 2),
                  FmtDouble(run.plan_ms, 2), FmtDouble(baseline_ms / run.plan_ms, 2),
                  FmtDouble(cached_serial_ms / run.plan_ms, 2),
                  FmtDouble(run.cache.HitRate(), 3), run.identical ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "hardware threads visible: " << std::thread::hardware_concurrency()
            << "; speedup is vs the serial uncached planner, 'vs 1T cached' "
               "isolates the thread pool.\n";
  const CanonCache::Stats& cs = runs.front().cache;
  std::cout << "canon cache: " << cs.entries << " fingerprint entries over "
            << cs.distinct_forms << " distinct forms, "
            << FmtDouble(static_cast<double>(cs.bytes_resident) / 1024.0, 1)
            << " KiB resident; shard occupancy max " << cs.shard_max
            << " / mean " << FmtDouble(cs.shard_mean, 1) << "\n";

  bool all_identical = true;
  for (const RunResult& run : runs) all_identical &= run.identical;
  if (!all_identical) {
    std::cerr << "FAIL: plans differ across thread counts\n";
    return 1;
  }

  // Cache-alone section: serial typing on a high-repetition instance. Grid
  // interiors share one neighborhood type per boundary distance, so nearly
  // every tuple is a cache hit while rho = 4 neighborhoods (41 elements) make
  // each avoided canonicalization expensive — the regime the memoization
  // targets. Thread count is pinned to 1 so the entire win is the cache.
  SetParallelThreads(1);
  const size_t grid_w = 120, grid_h = 100;
  const uint32_t grid_rho = 4;
  Structure grid = GridGraph(grid_w, grid_h);
  std::vector<Tuple> grid_domain;
  grid_domain.reserve(grid.universe_size());
  for (ElemId e = 0; e < grid.universe_size(); ++e) grid_domain.push_back({e});
  double grid_uncached_ms = 0, grid_cached_ms = 0;
  size_t grid_ntp = 0;
  bool grid_identical = true;
  for (int r = 0; r < std::min(reps, 2); ++r) {
    std::vector<uint32_t> t_uncached, t_cached;
    const double u = TimeMs([&] {
      NeighborhoodTyper typer(grid, grid_rho, nullptr);
      t_uncached = typer.TypeAll(grid_domain);
      grid_ntp = typer.NumTypes();
    });
    CanonCache::Global().Clear();
    const double c = TimeMs([&] {
      NeighborhoodTyper typer(grid, grid_rho);
      t_cached = typer.TypeAll(grid_domain);
    });
    grid_uncached_ms = r == 0 ? u : std::min(grid_uncached_ms, u);
    grid_cached_ms = r == 0 ? c : std::min(grid_cached_ms, c);
    grid_identical &= t_uncached == t_cached;
  }
  const CanonCache::Stats grid_stats = CanonCache::Global().stats();
  SetParallelThreads(0);
  std::cout << "cache-alone (serial) typing, " << grid_w << "x" << grid_h
            << " grid, rho=" << grid_rho << ": uncached "
            << FmtDouble(grid_uncached_ms, 2) << " ms, cached "
            << FmtDouble(grid_cached_ms, 2) << " ms, speedup "
            << FmtDouble(grid_uncached_ms / grid_cached_ms, 2) << "x, hit rate "
            << FmtDouble(grid_stats.HitRate(), 4) << ", ntp " << grid_ntp
            << ", types " << (grid_identical ? "identical" : "DIFFER") << "\n";
  if (!grid_identical) {
    std::cerr << "FAIL: cached typing differs from uncached typing\n";
    return 1;
  }

  // --- Scaling sweep ------------------------------------------------------
  // The planning cost at large n is typing: TypeAll over the full unary
  // domain (neighborhood extraction + canonicalization, the loop the CSR
  // layout and scratch arenas exist for). Each point builds a fresh
  // bounded-degree instance, then types it at 1/2/8 threads with a cold
  // cache and a fresh typer per thread count; type vectors must match the
  // 1-thread run bit for bit. The timed region excludes the serial CSR
  // builds (reported once as setup_ms) so the thread column measures the
  // parallel section, and excludes instance generation.
  std::vector<SweepPoint> sweep;
  for (size_t sn : sweep_sizes) {
    SweepPoint pt;
    pt.n = sn;
    Rng srng(42);
    Structure sg = RandomBoundedDegreeGraph(sn, k, 3 * sn, false, srng);
    for (size_t r = 0; r < sg.num_relations(); ++r) pt.tuples += sg.relation(r).size();
    const std::vector<Tuple> domain = AllParams(sg, 1);
    std::vector<uint32_t> reference;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SetParallelThreads(threads);
      CanonCache::Global().Clear();
      std::optional<NeighborhoodTyper> typer;
      const double setup = TimeMs([&] { typer.emplace(sg, rho); });
      std::vector<uint32_t> types;
      const double ms = TimeMs([&] { types = typer->TypeAll(domain); });
      if (threads == 1) {
        reference = std::move(types);
        pt.ntp = typer->NumTypes();
        pt.setup_ms = setup;
        pt.structure_bytes = sg.BytesResident();
        pt.gaifman_bytes = typer->gaifman().BytesResident();
        pt.cache = CanonCache::Global().stats();
      } else {
        pt.identical &= types == reference;
      }
      pt.runs.push_back({threads, ms});
    }
    SetParallelThreads(0);
    pt.peak_rss_kb = PeakRssKb();
    sweep.push_back(std::move(pt));
  }
  if (!sweep.empty()) {
    TextTable st("TypeAll scaling sweep (cold cache per run; B/tuple is the "
                 "flat tuple+index storage of the instance itself)");
    st.SetHeader({"n", "tuples", "ntp", "setup ms", "1T ms", "2T ms", "8T ms",
                  "8T speedup", "B/tuple", "peak RSS MB", "identical"});
    for (const SweepPoint& pt : sweep) {
      const double one_t = pt.runs[0].type_ms;
      st.AddRow({StrCat(pt.n), StrCat(pt.tuples), StrCat(pt.ntp),
                 FmtDouble(pt.setup_ms, 1), FmtDouble(pt.runs[0].type_ms, 1),
                 FmtDouble(pt.runs[1].type_ms, 1), FmtDouble(pt.runs[2].type_ms, 1),
                 FmtDouble(one_t / pt.runs[2].type_ms, 2),
                 FmtDouble(static_cast<double>(pt.structure_bytes) /
                               static_cast<double>(pt.tuples), 1),
                 FmtDouble(static_cast<double>(pt.peak_rss_kb) / 1024.0, 1),
                 pt.identical ? "yes" : "NO"});
    }
    st.Print(std::cout);
    bool sweep_identical = true;
    for (const SweepPoint& pt : sweep) sweep_identical &= pt.identical;
    if (!sweep_identical) {
      std::cerr << "FAIL: sweep typing differs across thread counts\n";
      return 1;
    }
  }

  if (json_path) {
    JsonWriter w;
    w.BeginObject();
    w.Key("instance").BeginObject();
    w.Key("n").UInt(n);
    w.Key("k").UInt(k);
    w.Key("rho").UInt(rho);
    w.Key("num_params").UInt(index->num_params());
    w.Key("num_active").UInt(index->num_active());
    w.Key("ntp").UInt(baseline_scheme->NumTypes());
    w.Key("candidate_pairs").UInt(baseline_scheme->CandidatePairs());
    w.Key("bits").UInt(baseline_scheme->CapacityBits());
    w.Key("distortion_bound").UInt(baseline_scheme->DistortionBound());
    w.EndObject();
    w.Key("hardware_threads").UInt(std::thread::hardware_concurrency());
    w.Key("reps").Int(reps);
    w.Key("baseline").BeginObject();
    w.Key("description").String("serial, canonical-form cache disabled (pre-optimization planner)");
    w.Key("index_build_ms").Double(baseline_index_ms);
    w.Key("plan_ms").Double(baseline_ms);
    w.EndObject();
    w.Key("runs").BeginArray();
    for (const RunResult& run : runs) {
      w.BeginObject();
      w.Key("threads").UInt(run.threads);
      w.Key("index_build_ms").Double(run.index_ms);
      w.Key("plan_ms").Double(run.plan_ms);
      w.Key("speedup").Double(baseline_ms / run.plan_ms);
      w.Key("speedup_vs_cached_serial").Double(cached_serial_ms / run.plan_ms);
      w.Key("cache_hits").UInt(run.cache.hits);
      w.Key("cache_misses").UInt(run.cache.misses);
      w.Key("cache_hit_rate").Double(run.cache.HitRate());
      w.Key("cache_entries").UInt(run.cache.entries);
      w.Key("cache_distinct_forms").UInt(run.cache.distinct_forms);
      w.Key("cache_bytes_resident").UInt(run.cache.bytes_resident);
      w.Key("cache_shard_max").UInt(run.cache.shard_max);
      w.Key("cache_shard_mean").Double(run.cache.shard_mean);
      w.Key("identical_to_baseline").Bool(run.identical);
      w.EndObject();
    }
    w.EndArray();
    w.Key("cache_only_speedup").Double(baseline_ms / cached_serial_ms);
    w.Key("grid_typing").BeginObject();
    w.Key("description").String("serial TypeAll on a grid (high-repetition types): cache-alone speedup");
    w.Key("width").UInt(grid_w);
    w.Key("height").UInt(grid_h);
    w.Key("rho").UInt(grid_rho);
    w.Key("ntp").UInt(grid_ntp);
    w.Key("uncached_ms").Double(grid_uncached_ms);
    w.Key("cached_ms").Double(grid_cached_ms);
    w.Key("speedup").Double(grid_uncached_ms / grid_cached_ms);
    w.Key("cache_hit_rate").Double(grid_stats.HitRate());
    w.Key("cache_entries").UInt(grid_stats.entries);
    w.Key("cache_distinct_forms").UInt(grid_stats.distinct_forms);
    w.Key("cache_bytes_resident").UInt(grid_stats.bytes_resident);
    w.Key("cache_shard_max").UInt(grid_stats.shard_max);
    w.Key("cache_shard_mean").Double(grid_stats.shard_mean);
    w.EndObject();
    if (!sweep.empty()) {
      w.Key("sweep").BeginArray();
      for (const SweepPoint& pt : sweep) {
        w.BeginObject();
        w.Key("n").UInt(pt.n);
        w.Key("k").UInt(k);
        w.Key("rho").UInt(rho);
        w.Key("tuples").UInt(pt.tuples);
        w.Key("ntp").UInt(pt.ntp);
        w.Key("setup_ms").Double(pt.setup_ms);
        w.Key("runs").BeginArray();
        for (const SweepRun& run : pt.runs) {
          w.BeginObject();
          w.Key("threads").UInt(run.threads);
          w.Key("type_ms").Double(run.type_ms);
          w.Key("speedup_vs_1t").Double(pt.runs[0].type_ms / run.type_ms);
          w.EndObject();
        }
        w.EndArray();
        w.Key("identical_across_threads").Bool(pt.identical);
        w.Key("structure_bytes").UInt(pt.structure_bytes);
        w.Key("gaifman_bytes").UInt(pt.gaifman_bytes);
        w.Key("bytes_per_tuple")
            .Double(pt.tuples == 0 ? 0.0
                                   : static_cast<double>(pt.structure_bytes) /
                                         static_cast<double>(pt.tuples));
        w.Key("cache_entries").UInt(pt.cache.entries);
        w.Key("cache_bytes_resident").UInt(pt.cache.bytes_resident);
        w.Key("cache_hit_rate").Double(pt.cache.HitRate());
        w.Key("peak_rss_kb").UInt(pt.peak_rss_kb);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
    if (!UpdateBenchJsonSection(*json_path, "plan_scale", w.str())) {
      std::cerr << "FAIL: cannot write " << *json_path << "\n";
      return 1;
    }
    std::cout << "wrote section \"plan_scale\" to " << *json_path << "\n";
  }
  return 0;
}
