file(REMOVE_RECURSE
  "CMakeFiles/bench_structural_attacks.dir/bench_structural_attacks.cc.o"
  "CMakeFiles/bench_structural_attacks.dir/bench_structural_attacks.cc.o.d"
  "bench_structural_attacks"
  "bench_structural_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structural_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
