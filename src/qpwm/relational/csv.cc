#include "qpwm/relational/csv.h"

#include <charconv>

#include "qpwm/util/str.h"

namespace qpwm {
namespace {

// Splits one CSV record honoring quotes; advances `pos` past the record's
// trailing newline. Returns false at end of input.
bool NextRecord(std::string_view csv, size_t& pos, std::vector<std::string>& fields,
                Status& error) {
  fields.clear();
  if (pos >= csv.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool any = false;
  while (pos < csv.size()) {
    char c = csv[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < csv.size() && csv[pos + 1] == '"') {
          field += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      ++pos;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      any = true;
      ++pos;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      any = true;
      ++pos;
      continue;
    }
    if (c == '\n' || c == '\r') {
      while (pos < csv.size() && (csv[pos] == '\n' || csv[pos] == '\r')) ++pos;
      break;
    }
    field += c;
    any = true;
    ++pos;
  }
  if (in_quotes) {
    error = Status::ParseError("unterminated quoted field");
    return false;
  }
  if (!any && field.empty() && fields.empty()) return false;  // blank tail
  fields.push_back(std::move(field));
  return true;
}

std::string EscapeField(const std::string& s) {
  bool needs_quotes = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> TableFromCsv(std::string name, std::vector<ColumnSpec> columns,
                           std::string_view csv) {
  size_t pos = 0;
  std::vector<std::string> fields;
  Status error = Status::OK();

  if (!NextRecord(csv, pos, fields, error)) {
    return error.ok() ? Status::ParseError("empty CSV") : error;
  }
  if (fields.size() != columns.size()) {
    return Status::ParseError(StrCat("header has ", fields.size(),
                                     " column(s), schema expects ", columns.size()));
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    if (fields[c] != columns[c].name) {
      return Status::ParseError("header column '" + fields[c] +
                                "' does not match schema column '" +
                                columns[c].name + "'");
    }
  }

  Table table(std::move(name), std::move(columns));
  size_t line = 1;
  while (NextRecord(csv, pos, fields, error)) {
    ++line;
    if (fields.size() != table.columns().size()) {
      return Status::ParseError(StrCat("row ", line, " has ", fields.size(),
                                       " field(s)"));
    }
    std::vector<Cell> row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      if (table.columns()[c].role == ColumnRole::kWeight) {
        Weight value = 0;
        const std::string& f = fields[c];
        auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), value);
        if (ec != std::errc() || ptr != f.data() + f.size()) {
          return Status::ParseError(StrCat("row ", line, ": weight '", f,
                                           "' is not an integer"));
        }
        row.emplace_back(value);
      } else {
        row.emplace_back(fields[c]);
      }
    }
    QPWM_RETURN_NOT_OK(table.AddRow(std::move(row)));
  }
  if (!error.ok()) return error;
  return table;
}

std::string TableToCsv(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.columns().size(); ++c) {
    if (c > 0) out += ',';
    out += EscapeField(table.columns()[c].name);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.columns().size(); ++c) {
      if (c > 0) out += ',';
      if (table.columns()[c].role == ColumnRole::kWeight) {
        out += StrCat(table.WeightAt(r, c));
      } else {
        out += EscapeField(table.KeyAt(r, c));
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace qpwm
