#include "qpwm/baseline/agrawal_kiernan.h"

#include <cmath>
#include <vector>

#include "qpwm/util/check.h"

namespace qpwm {
namespace {

struct CellSelection {
  bool selected = false;
  size_t weight_col = 0;
  uint32_t bit = 0;
  bool bit_value = false;
};

// The keyed per-row selection shared by embedder and detector.
CellSelection SelectCell(const Table& table, size_t row, const AkOptions& options) {
  CellSelection out;
  std::vector<size_t> weight_cols = table.WeightColumns();
  if (weight_cols.empty()) return out;

  const std::string& pk = table.KeyAt(row, options.pk_column);
  uint64_t h = Prf(options.key, pk);
  if (h % options.gamma != 0) return out;

  out.selected = true;
  uint64_t h2 = Prf(options.key.Derive(1), pk);
  out.weight_col = weight_cols[h2 % weight_cols.size()];
  uint64_t h3 = Prf(options.key.Derive(2), pk);
  out.bit = static_cast<uint32_t>(h3 % options.num_lsb);
  uint64_t h4 = Prf(options.key.Derive(3), pk);
  out.bit_value = (h4 & 1) != 0;
  return out;
}

}  // namespace

Result<Table> AkEmbed(const Table& table, const AkOptions& options,
                      AkEmbedStats* stats) {
  if (options.pk_column >= table.columns().size() ||
      table.columns()[options.pk_column].role != ColumnRole::kKey) {
    return Status::InvalidArgument("pk_column must name a key column");
  }
  Table out = table;
  size_t marked = 0;
  for (size_t r = 0; r < out.num_rows(); ++r) {
    CellSelection sel = SelectCell(out, r, options);
    if (!sel.selected) continue;
    Weight w = out.WeightAt(r, sel.weight_col);
    Weight mask = Weight{1} << sel.bit;
    Weight updated = sel.bit_value ? (w | mask) : (w & ~mask);
    out.SetWeightAt(r, sel.weight_col, updated);
    ++marked;
  }
  if (stats != nullptr) {
    stats->rows = out.num_rows();
    stats->marked_cells = marked;
  }
  return out;
}

Result<AkDetection> AkDetect(const Table& suspect, const AkOptions& options) {
  if (options.pk_column >= suspect.columns().size() ||
      suspect.columns()[options.pk_column].role != ColumnRole::kKey) {
    return Status::InvalidArgument("pk_column must name a key column");
  }
  AkDetection out;
  for (size_t r = 0; r < suspect.num_rows(); ++r) {
    CellSelection sel = SelectCell(suspect, r, options);
    if (!sel.selected) continue;
    ++out.total;
    Weight w = suspect.WeightAt(r, sel.weight_col);
    bool actual = ((w >> sel.bit) & 1) != 0;
    if (actual == sel.bit_value) ++out.matches;
  }
  // Smallest k with P[Bin(total, 1/2) >= k] < alpha.
  size_t k = out.total + 1;
  while (k > 0 && BinomialTailAtLeast(out.total, k - 1) < options.alpha) --k;
  out.threshold = k;
  out.detected = out.total > 0 && out.matches >= out.threshold;
  return out;
}

double BinomialTailAtLeast(size_t n, size_t k) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // Sum C(n, i) / 2^n for i in [k, n], in log space for stability.
  double tail = 0.0;
  double log_c = 0.0;  // log C(n, k), built incrementally
  for (size_t i = 1; i <= k; ++i) {
    log_c += std::log(static_cast<double>(n - i + 1)) - std::log(static_cast<double>(i));
  }
  const double log_half_n = -static_cast<double>(n) * std::log(2.0);
  for (size_t i = k; i <= n; ++i) {
    tail += std::exp(log_c + log_half_n);
    if (i < n) {
      log_c += std::log(static_cast<double>(n - i)) -
               std::log(static_cast<double>(i + 1));
    }
  }
  return std::min(tail, 1.0);
}

}  // namespace qpwm
