#include "qpwm/core/incremental.h"

#include <set>
#include <string>

#include "qpwm/core/pairs.h"
#include "qpwm/structure/canon_cache.h"
#include "qpwm/structure/neighborhood.h"
#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"

namespace qpwm {
namespace {

std::set<std::string> TypeSet(const QueryIndex& index, uint32_t rho) {
  const Structure& g = index.structure();
  GaifmanGraph gaifman(g);
  IncidenceIndex incidence(g);
  std::vector<std::string> canons = ParallelMap<std::string>(
      index.num_params(), [&](size_t i) {
        Neighborhood nb =
            ExtractNeighborhood(g, gaifman, incidence, index.param(i), rho);
        return CanonCache::Global().Canonical(nb.local, nb.distinguished);
      });
  return std::set<std::string>(canons.begin(), canons.end());
}

}  // namespace

WeightMap PropagateWeightsOnlyUpdate(const WeightMap& old_original,
                                     const WeightMap& old_marked,
                                     const WeightMap& new_original) {
  WeightMap out = new_original;
  // Carry over M = old_marked - old_original per tuple.
  old_marked.ForEach([&](const Tuple& t, Weight marked) {
    Weight delta = marked - old_original.Get(t);
    if (delta != 0) out.Add(t, delta);
  });
  return out;
}

UpdateCheck CheckTypePreservingUpdate(const LocalScheme& scheme,
                                      const QueryIndex& updated_index) {
  UpdateCheck out;
  const QueryIndex& old_index = scheme.index();
  const uint32_t rho = scheme.rho();

  std::set<std::string> old_types = TypeSet(old_index, rho);
  std::set<std::string> new_types = TypeSet(updated_index, rho);
  out.old_types = old_types.size();
  out.new_types = new_types.size();
  out.type_preserving = old_types == new_types;

  // Which pairs survive: both elements must still be active (readable
  // through some query answer) on the updated instance.
  std::vector<WeightPair> surviving;
  for (const WeightPair& p : scheme.marking().pairs()) {
    auto plus = updated_index.FindActive(old_index.active_element(p.plus));
    auto minus = updated_index.FindActive(old_index.active_element(p.minus));
    if (plus.ok() && minus.ok()) {
      surviving.push_back({static_cast<uint32_t>(plus.value()),
                           static_cast<uint32_t>(minus.value())});
    }
  }
  out.surviving_pairs = surviving.size();
  if (!surviving.empty()) {
    out.new_cost_bound = PairMarking(updated_index, std::move(surviving)).MaxCost();
  }
  return out;
}

}  // namespace qpwm
