#include "qpwm/core/tree_scheme.h"

#include <algorithm>
#include <unordered_map>

#include "qpwm/tree/query.h"
#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"

namespace qpwm {

AnswerSet HonestTreeServer::Answer(const Tuple& params) const {
  QPWM_CHECK_EQ(params.size(), param_arity_);
  NodeId a = param_arity_ == 1 ? params[0] : 0;
  AnswerSet out;
  for (NodeId b : EvaluateWa(*t_, *labels_, base_count_, *dta_, param_arity_, a)) {
    out.push_back({Tuple{b}, weights_.GetElem(b)});
  }
  return out;
}

Result<TreeScheme> TreeScheme::Plan(const BinaryTree& t,
                                    const std::vector<uint32_t>& labels,
                                    uint32_t base_count, const Dta& dta,
                                    uint32_t param_arity,
                                    const TreeSchemeOptions& options) {
  if (param_arity > 1) {
    return Status::InvalidArgument("tree scheme supports parameter arity 0 or 1");
  }
  const uint32_t expected_tracks = param_arity + 1;
  if (dta.alphabet_size() != base_count << expected_tracks) {
    return Status::InvalidArgument(
        "automaton alphabet does not match base alphabet x pebble tracks");
  }

  TreeScheme scheme;
  scheme.t_ = &t;
  scheme.labels_ = &labels;
  scheme.base_count_ = base_count;
  scheme.dta_ = &dta;
  scheme.param_arity_ = param_arity;
  scheme.options_ = options;

  // Active weighted elements: W = union over a of W_a. Pair candidates are
  // restricted to W so every hidden bit stays readable through answers.
  std::vector<bool> active(t.size(), false);
  {
    Dta exists_a = param_arity == 1 ? ProjectParamTrack(dta, base_count) : dta;
    for (NodeId b : EvaluateWa(t, labels, base_count, exists_a, 0, 0)) {
      active[b] = true;
    }
  }

  DecompositionOptions dopts;
  dopts.shuffle_seed = options.key.Derive(0xDEC0).k0;
  dopts.min_region_size = options.min_region_size;
  dopts.max_region_size = options.max_region_size;
  scheme.regions_ = FindMarkRegions(t, labels, base_count, dta, param_arity, dopts,
                                    &scheme.stats_, &active);

  // Witness discovery. Fast path: precompute the answer bitmaps of a small
  // shared pool of candidate parameters (root + keyed-random picks); most
  // pairs find a witness there in O(1). Stragglers fall back to the exact
  // reverse run (track-swapped automaton: every parameter containing b_plus).
  // By neutrality, a witness for b_plus outside the region covers b_minus.
  std::vector<NodeId> region_of(t.size(), kNoNode);
  for (size_t i = 0; i < scheme.regions_.size(); ++i) {
    for (NodeId w : scheme.regions_[i].nodes) region_of[w] = static_cast<NodeId>(i);
  }

  std::vector<std::pair<NodeId, std::vector<bool>>> witness_pool;
  if (param_arity == 1) {
    Rng witness_rng(options.key.Derive(0x317).k0);
    std::vector<NodeId> candidates{t.root()};
    for (size_t i = 0; i + 1 < options.witness_attempts; ++i) {
      candidates.push_back(static_cast<NodeId>(witness_rng.Below(t.size())));
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    // One full context-DP automaton run per candidate parameter — the
    // dominant planning cost — computed in parallel; the pool keeps the
    // candidates' sorted order, so witness probing below is deterministic.
    std::vector<std::vector<bool>> memberships =
        ParallelMap<std::vector<bool>>(candidates.size(), [&](size_t i) {
          std::vector<bool> member(t.size(), false);
          for (NodeId b : EvaluateWa(t, labels, base_count, dta, 1, candidates[i])) {
            member[b] = true;
          }
          return member;
        });
    witness_pool.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      witness_pool.emplace_back(candidates[i], std::move(memberships[i]));
    }
  }

  Dta swapped = param_arity == 1 ? SwapPebbleTracks(dta, base_count)
                                 : Dta(0, base_count * 2);
  for (size_t region_idx = 0; region_idx < scheme.regions_.size(); ++region_idx) {
    const MarkRegion& region = scheme.regions_[region_idx];
    if (!region.paired()) continue;

    if (param_arity == 0) {
      // Single (empty) parameter; the active filter already guarantees
      // membership, but verify defensively.
      if (MemberWa(t, labels, base_count, dta, 0, 0, region.b_plus)) {
        scheme.pairs_.push_back({region.b_plus, region.b_minus, Tuple{}});
      }
      continue;
    }

    bool found = false;
    for (const auto& [a, member] : witness_pool) {
      if (region_of[a] == static_cast<NodeId>(region_idx)) continue;
      if (member[region.b_plus]) {
        scheme.pairs_.push_back({region.b_plus, region.b_minus, Tuple{a}});
        found = true;
        break;
      }
    }
    if (found) continue;

    for (NodeId a : EvaluateWa(t, labels, base_count, swapped, 1, region.b_plus)) {
      if (region_of[a] == static_cast<NodeId>(region_idx)) continue;
      QPWM_CHECK(MemberWa(t, labels, base_count, dta, 1, a, region.b_minus));
      scheme.pairs_.push_back({region.b_plus, region.b_minus, Tuple{a}});
      break;
    }
  }
  return scheme;
}

WeightMap TreeScheme::Embed(const WeightMap& original, const BitVec& mark) const {
  WeightMap out = original;
  ApplyMark(mark, out, options_.encoding);
  return out;
}

void TreeScheme::ApplyMark(const BitVec& mark, WeightMap& weights,
                           PairEncoding encoding) const {
  QPWM_CHECK_EQ(mark.size(), pairs_.size());
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (mark.Get(i)) {
      weights.AddElem(pairs_[i].b_plus, +1);
      weights.AddElem(pairs_[i].b_minus, -1);
    } else if (encoding == PairEncoding::kAntipodal) {
      weights.AddElem(pairs_[i].b_plus, -1);
      weights.AddElem(pairs_[i].b_minus, +1);
    }
  }
}

std::vector<PairObservation> TreeScheme::ObservePairs(
    const WeightMap& original, const AnswerServer& suspect,
    const DetectOptions& options) const {
  std::vector<PairObservation> observations;
  observations.reserve(pairs_.size());

  // Batched path: answer each distinct witness once (pairs frequently share
  // witnesses — the root answers for every region it covers) and resolve the
  // unary rows through an epoch-stamped flat table keyed by node id — no
  // per-row allocation. Plain assignment keeps the *last* row per node,
  // matching the unbatched scan below, which overwrites on every match.
  std::vector<AnswerSet> batched_answers;
  std::unordered_map<Tuple, uint32_t, TupleHash> batch_slot;
  std::vector<Weight> row_weight;
  std::vector<uint32_t> stamp;
  if (options.batch_answers) {
    std::vector<Tuple> witness_params;
    for (const DetectablePair& pair : pairs_) {
      auto [it, inserted] = batch_slot.emplace(
          pair.witness, static_cast<uint32_t>(witness_params.size()));
      if (inserted) witness_params.push_back(pair.witness);
    }
    batched_answers = AnswerAll(suspect, witness_params);
    row_weight.resize(t_->size(), 0);
    stamp.resize(t_->size(), 0);
  }
  uint32_t current_epoch = 0;  // witness slot whose rows are staged, + 1

  for (const DetectablePair& pair : pairs_) {
    Weight w_plus = 0, w_minus = 0;
    bool saw_plus = false, saw_minus = false;
    if (options.batch_answers) {
      const uint32_t slot = batch_slot.at(pair.witness);
      if (current_epoch != slot + 1) {
        current_epoch = slot + 1;
        for (const AnswerRow& row : batched_answers[slot]) {
          // Rows beyond the tree (inserted fresh nodes) can never match a
          // pair node.
          if (row.element.size() != 1 || row.element[0] >= t_->size()) continue;
          row_weight[row.element[0]] = row.weight;
          stamp[row.element[0]] = current_epoch;
        }
      }
      if (stamp[pair.b_plus] == current_epoch) {
        w_plus = row_weight[pair.b_plus];
        saw_plus = true;
      }
      if (stamp[pair.b_minus] == current_epoch) {
        w_minus = row_weight[pair.b_minus];
        saw_minus = true;
      }
    } else {
      AnswerSet answers = suspect.Answer(pair.witness);
      for (const AnswerRow& row : answers) {
        if (row.element.size() == 1 && row.element[0] == pair.b_plus) {
          w_plus = row.weight;
          saw_plus = true;
        }
        if (row.element.size() == 1 && row.element[0] == pair.b_minus) {
          w_minus = row.weight;
          saw_minus = true;
        }
      }
    }
    PairObservation obs;
    if (!saw_plus || !saw_minus) {
      obs.erased = true;
    } else {
      Weight d_plus = w_plus - original.GetElem(pair.b_plus);
      Weight d_minus = w_minus - original.GetElem(pair.b_minus);
      obs.delta = d_plus - d_minus;
    }
    observations.push_back(obs);
  }
  return observations;
}

Result<std::vector<Weight>> TreeScheme::PairDeltas(const WeightMap& original,
                                                   const AnswerServer& suspect) const {
  std::vector<PairObservation> observations = ObservePairs(original, suspect);
  std::vector<Weight> deltas;
  deltas.reserve(observations.size());
  for (const PairObservation& obs : observations) {
    if (obs.erased) {
      return Status::DetectionFailed(
          "witness answer is missing a pair node (structure tampered)");
    }
    deltas.push_back(obs.delta);
  }
  return deltas;
}

Result<BitVec> TreeScheme::Detect(const WeightMap& original,
                                  const AnswerServer& suspect) const {
  auto deltas = PairDeltas(original, suspect);
  if (!deltas.ok()) return deltas.status();
  BitVec mark(pairs_.size());
  const Weight threshold = options_.encoding == PairEncoding::kOnOff ? 1 : 0;
  for (size_t i = 0; i < deltas.value().size(); ++i) {
    mark.Set(i, deltas.value()[i] >= threshold);
  }
  return mark;
}

}  // namespace qpwm
