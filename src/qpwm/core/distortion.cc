#include "qpwm/core/distortion.h"

#include <algorithm>
#include <cstdlib>

namespace qpwm {

Weight AggregateWeight(const QueryIndex& index, size_t param_idx,
                       const WeightMap& weights, Aggregate agg) {
  const auto& row = index.ResultFor(param_idx);
  if (row.empty()) return 0;
  switch (agg) {
    case Aggregate::kSum:
      return index.SumWeights(param_idx, weights);
    case Aggregate::kMean:
      return index.SumWeights(param_idx, weights) / static_cast<Weight>(row.size());
    case Aggregate::kMin: {
      Weight best = weights.Get(index.active_element(row[0]));
      for (uint32_t w : row) best = std::min(best, weights.Get(index.active_element(w)));
      return best;
    }
    case Aggregate::kMax: {
      Weight best = weights.Get(index.active_element(row[0]));
      for (uint32_t w : row) best = std::max(best, weights.Get(index.active_element(w)));
      return best;
    }
  }
  return 0;
}

bool SatisfiesLocalDistortion(const WeightMap& w0, const WeightMap& w1, Weight c) {
  return w0.LocalDistortion(w1) <= c;
}

std::vector<Weight> PerParamDistortion(const QueryIndex& index, const WeightMap& w0,
                                       const WeightMap& w1, Aggregate agg) {
  std::vector<Weight> out(index.num_params());
  for (size_t i = 0; i < index.num_params(); ++i) {
    out[i] = std::llabs(AggregateWeight(index, i, w1, agg) -
                        AggregateWeight(index, i, w0, agg));
  }
  return out;
}

Weight GlobalDistortion(const QueryIndex& index, const WeightMap& w0,
                        const WeightMap& w1, Aggregate agg) {
  Weight worst = 0;
  for (size_t i = 0; i < index.num_params(); ++i) {
    Weight d = std::llabs(AggregateWeight(index, i, w1, agg) -
                          AggregateWeight(index, i, w0, agg));
    worst = std::max(worst, d);
  }
  return worst;
}

}  // namespace qpwm
