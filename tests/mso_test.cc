#include <gtest/gtest.h>

#include "qpwm/logic/evaluator.h"
#include "qpwm/logic/parser.h"
#include "qpwm/tree/mso.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

class MsoPipelineTest : public ::testing::Test {
 protected:
  MsoPipelineTest() {
    sigma_.Intern("a");
    sigma_.Intern("b");
    sigma_.Intern("c");
  }

  // Cross-validates automaton acceptance against the naive evaluator for
  // every (u, v) assignment over a handful of random trees.
  void CrossValidate(const std::string& formula_text,
                     const std::vector<std::string>& vars, int trials = 5,
                     size_t max_nodes = 8) {
    FormulaPtr f = MustParseFormula(formula_text);
    auto compiled = CompileMso(*f, sigma_, vars);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    const Dta& dta = compiled.value().dta;
    Rng rng(static_cast<uint64_t>(HashString(formula_text)));
    for (int trial = 0; trial < trials; ++trial) {
      BinaryTree t = RandomBinaryTree(1 + rng.Below(max_nodes), 3, rng);
      Structure g = TreeToStructure(t, sigma_);
      Evaluator ev(g);
      Environment env;
      std::vector<NodeId> pebbles(vars.size(), 0);
      // Enumerate all assignments of the pebble variables.
      size_t total = 1;
      for (size_t i = 0; i < vars.size(); ++i) total *= t.size();
      for (size_t code = 0; code < total; ++code) {
        size_t rest = code;
        for (size_t i = 0; i < vars.size(); ++i) {
          pebbles[i] = static_cast<NodeId>(rest % t.size());
          rest /= t.size();
          env.elems[vars[i]] = pebbles[i];
        }
        bool expect = ev.MustEval(*f, env);
        bool got = dta.Accepts(t, PebbledSymbols(t.labels(), 3, pebbles));
        ASSERT_EQ(expect, got)
            << formula_text << " tree size " << t.size() << " code " << code;
      }
    }
  }

  Alphabet sigma_;
};

TEST_F(MsoPipelineTest, Atoms) {
  CrossValidate("S1(u, v)", {"u", "v"});
  CrossValidate("S2(u, v)", {"u", "v"});
  CrossValidate("LEQ(u, v)", {"u", "v"});
  CrossValidate("CHILD(u, v)", {"u", "v"});
  CrossValidate("u = v", {"u", "v"});
  CrossValidate("P_b(u)", {"u"});
  CrossValidate("ROOT(u)", {"u"});
  CrossValidate("LEAF(u)", {"u"});
}

TEST_F(MsoPipelineTest, SelfApplications) {
  CrossValidate("LEQ(u, u)", {"u"});
  CrossValidate("S1(u, u)", {"u"});
  CrossValidate("CHILD(u, u)", {"u"});
}

TEST_F(MsoPipelineTest, BooleanConnectives) {
  CrossValidate("P_a(u) & P_b(v)", {"u", "v"});
  CrossValidate("P_a(u) | ~P_b(u)", {"u"});
  CrossValidate("~(LEQ(u, v) & ~(u = v))", {"u", "v"});
  CrossValidate("P_a(u) -> LEAF(u)", {"u"});
  CrossValidate("ROOT(u) <-> ~exists w (LEQ(w, u) & ~(w = u))", {"u"});
}

TEST_F(MsoPipelineTest, FirstOrderQuantifiers) {
  CrossValidate("exists w (S1(u, w) & S2(w, v))", {"u", "v"});
  CrossValidate("forall w (LEQ(u, w) -> (P_a(w) | ~LEAF(w)))", {"u"});
  CrossValidate("exists w exists w2 (S1(u, w) & S2(u, w2))", {"u"});
}

TEST_F(MsoPipelineTest, VacuousQuantifier) {
  CrossValidate("exists w P_a(u)", {"u"});
}

TEST_F(MsoPipelineTest, ShadowedVariable) {
  CrossValidate("exists w (S1(u, w) & exists w (S2(u, w) & P_a(w)))", {"u"});
}

TEST_F(MsoPipelineTest, SetQuantifiers) {
  // Connectivity-style: v is S1-reachable from u.
  CrossValidate(
      "forallset X ((u in X & forall w forall w2 ((w in X & S1(w, w2)) -> w2 in X)) "
      "-> v in X)",
      {"u", "v"}, 4, 6);
  CrossValidate("existsset X (u in X & ~(v in X))", {"u", "v"}, 4, 6);
}

TEST_F(MsoPipelineTest, ChildAtomMatchesClosureFormula) {
  // The hand-built CHILD atom against its set-quantifier definition.
  FormulaPtr closure = MustParseFormula(
      "exists z (S1(u, z) & forallset X ((z in X & forall w forall w2 ((w in X & "
      "S2(w, w2)) -> w2 in X)) -> v in X))");
  FormulaPtr atom = MustParseFormula("CHILD(u, v)");
  auto c1 = CompileMso(*closure, sigma_, {"u", "v"});
  auto c2 = CompileMso(*atom, sigma_, {"u", "v"});
  ASSERT_TRUE(c1.ok() && c2.ok());
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(10), 3, rng);
    for (NodeId u = 0; u < t.size(); ++u) {
      for (NodeId v = 0; v < t.size(); ++v) {
        auto symbols = PebbledSymbols(t.labels(), 3, {u, v});
        EXPECT_EQ(c1.value().dta.Accepts(t, symbols),
                  c2.value().dta.Accepts(t, symbols));
      }
    }
  }
}

TEST_F(MsoPipelineTest, TrackOrderRespected) {
  FormulaPtr f = MustParseFormula("S1(u, v)");
  auto uv = CompileMso(*f, sigma_, {"u", "v"}).ValueOrDie();
  auto vu = CompileMso(*f, sigma_, {"v", "u"}).ValueOrDie();
  Rng rng(12);
  BinaryTree t = RandomBinaryTree(8, 3, rng);
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      EXPECT_EQ(uv.dta.Accepts(t, PebbledSymbols(t.labels(), 3, {a, b})),
                vu.dta.Accepts(t, PebbledSymbols(t.labels(), 3, {b, a})));
    }
  }
}

TEST_F(MsoPipelineTest, ExtraFreeTrackIsIgnored) {
  FormulaPtr f = MustParseFormula("P_a(u)");
  auto wide = CompileMso(*f, sigma_, {"u", "v"}).ValueOrDie();
  Rng rng(13);
  BinaryTree t = RandomBinaryTree(7, 3, rng);
  for (NodeId u = 0; u < 7; ++u) {
    bool expect = t.label(u) == 0;
    for (NodeId v = 0; v < 7; ++v) {
      EXPECT_EQ(wide.dta.Accepts(t, PebbledSymbols(t.labels(), 3, {u, v})), expect);
    }
  }
}

TEST_F(MsoPipelineTest, ThreePebbleQuery) {
  // Three free first-order variables: w between u and v in tree order.
  CrossValidate("LEQ(u, w) & LEQ(w, v)", {"u", "w", "v"}, 4, 6);
}

TEST_F(MsoPipelineTest, ThreePebbleSiblingQuery) {
  CrossValidate("CHILD(u, w) & CHILD(u, v) & ~(w = v)", {"u", "w", "v"}, 4, 6);
}

TEST_F(MsoPipelineTest, NestedAlternation) {
  // forall-exists alternation through negation.
  CrossValidate("forall w (CHILD(u, w) -> exists w2 (LEQ(w, w2) & P_c(w2)))", {"u"},
                4, 7);
}

TEST_F(MsoPipelineTest, ErrorsOnUnknownRelation) {
  FormulaPtr f = MustParseFormula("Bogus(u, v)");
  EXPECT_FALSE(CompileMso(*f, sigma_, {"u", "v"}).ok());
}

TEST_F(MsoPipelineTest, ErrorsOnUnknownLabel) {
  FormulaPtr f = MustParseFormula("P_zzz(u)");
  EXPECT_FALSE(CompileMso(*f, sigma_, {"u"}).ok());
}

TEST_F(MsoPipelineTest, ErrorsOnMissingVarOrder) {
  FormulaPtr f = MustParseFormula("S1(u, v)");
  EXPECT_FALSE(CompileMso(*f, sigma_, {"u"}).ok());
}

TEST_F(MsoPipelineTest, SetSymbolsComposesTracks) {
  BinaryTree t = ChainTree(3, 3);
  std::vector<std::vector<bool>> sets{{true, false, true}};
  auto symbols = SetSymbols(t.labels(), 3, sets);
  EXPECT_EQ(symbols[0], t.label(0) + 3u);
  EXPECT_EQ(symbols[1], t.label(1));
  EXPECT_EQ(symbols[2], t.label(2) + 3u);
}

// Sentence-level (no free variables) checks via set semantics.
TEST_F(MsoPipelineTest, SentenceEveryNodeLabeled) {
  FormulaPtr f = MustParseFormula("forall w (P_a(w) | P_b(w) | P_c(w))");
  auto compiled = CompileMso(*f, sigma_, {}).ValueOrDie();
  Rng rng(14);
  BinaryTree t = RandomBinaryTree(9, 3, rng);
  EXPECT_TRUE(compiled.dta.Accepts(t, t.labels()));
}

TEST_F(MsoPipelineTest, SentenceExistsLabel) {
  FormulaPtr f = MustParseFormula("exists w P_c(w)");
  auto compiled = CompileMso(*f, sigma_, {}).ValueOrDie();
  BinaryTree no_c = ChainTree(5, 2);  // labels 0, 1 only
  EXPECT_FALSE(compiled.dta.Accepts(no_c, no_c.labels()));
  BinaryTree with_c = ChainTree(5, 3);  // labels cycle 0,1,2
  EXPECT_TRUE(compiled.dta.Accepts(with_c, with_c.labels()));
}

}  // namespace
}  // namespace qpwm
