// MSO on binary Sigma-trees, compiled to tree automata (Lemma 2, after
// Grohe-Turán / the classical Thatcher-Wright construction).
//
// Vocabulary tau(Sigma): S1 (left child), S2 (right child), LEQ (tree order,
// ancestor-or-self), P_<symbol> (label tests), plus the derived unary ROOT
// and LEAF. Each variable — first- or second-order — occupies one pebble
// track; a formula with track set T compiles to a Dta over the alphabet
// Sigma x {0,1}^|T|, symbol encoding sym = base + |Sigma| * bits (track i =
// bit i). Boolean connectives are automaton products, negation is
// complementation (automata are kept deterministic and sink-complete),
// quantifiers are track projections followed by subset construction;
// first-order quantifiers conjoin a singleton-track automaton first.
// Minimization runs after every step to keep the state count flat.
//
// Compiled automata are exact on well-sorted inputs (first-order tracks carry
// exactly one pebble) — the only inputs the query machinery produces.
#ifndef QPWM_TREE_MSO_H_
#define QPWM_TREE_MSO_H_

#include <string>
#include <vector>

#include "qpwm/logic/formula.h"
#include "qpwm/structure/structure.h"
#include "qpwm/tree/automaton.h"
#include "qpwm/tree/bintree.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// A Dta plus the variable names of its pebble tracks (track i = bit i).
struct TrackedDta {
  Dta dta;
  std::vector<std::string> tracks;
};

/// Compiles `f` into an automaton whose tracks are exactly `var_order`
/// (which must cover the free variables of `f`, first- and second-order).
/// The base alphabet provides the P_<symbol> label predicates.
[[nodiscard]] Result<TrackedDta> CompileMso(const Formula& f, const Alphabet& sigma,
                              const std::vector<std::string>& var_order);

/// Per-node symbols of T_{a_bar}: base labels with pebble bits, one
/// first-order pebble per track (pebbles[i] = node carrying track i).
std::vector<uint32_t> PebbledSymbols(const std::vector<uint32_t>& base_labels,
                                     uint32_t base_count,
                                     const std::vector<NodeId>& pebbles);

/// Per-node symbols with arbitrary (set-valued) track assignments — for
/// cross-validating second-order semantics.
std::vector<uint32_t> SetSymbols(const std::vector<uint32_t>& base_labels,
                                 uint32_t base_count,
                                 const std::vector<std::vector<bool>>& track_sets);

/// Encodes a tree as a relational structure over
/// {S1, S2, LEQ, ROOT, LEAF, P_<symbol>} so the naive logic::Evaluator can
/// serve as the semantic reference (quadratic LEQ — small trees only).
Structure TreeToStructure(const BinaryTree& t, const Alphabet& sigma);

}  // namespace qpwm

#endif  // QPWM_TREE_MSO_H_
