// Neighborhood isomorphism types of parameter tuples: the ~rho equivalence
// classes, their count ntp(rho, G), and one canonical representative per type
// (the paper's "canonical parameters" S).
#ifndef QPWM_STRUCTURE_TYPEMAP_H_
#define QPWM_STRUCTURE_TYPEMAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/structure.h"

namespace qpwm {

/// Assigns isomorphism-type ids to tuples by the canonical form of their
/// rho-neighborhood. Type ids are dense, in first-seen order; the first tuple
/// seen of each type is kept as its canonical representative.
class NeighborhoodTyper {
 public:
  NeighborhoodTyper(const Structure& g, uint32_t rho);

  /// Type id of tuple `c` (computes and memoizes the canonical form).
  uint32_t TypeOf(const Tuple& c);

  /// Number of distinct types seen so far — ntp(rho, G) once every tuple of
  /// the parameter domain has been typed.
  size_t NumTypes() const { return representatives_.size(); }

  /// Canonical representative tuple of a type.
  const Tuple& Representative(uint32_t type) const { return representatives_[type]; }

  uint32_t rho() const { return rho_; }
  const GaifmanGraph& gaifman() const { return gaifman_; }

 private:
  const Structure& g_;
  uint32_t rho_;
  GaifmanGraph gaifman_;
  IncidenceIndex incidence_;
  std::unordered_map<std::string, uint32_t> canon_to_type_;
  std::vector<Tuple> representatives_;
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_TYPEMAP_H_
