// Memoized canonical forms. Planning canonicalizes one rho-neighborhood per
// parameter tuple, and on bounded-degree structures those neighborhoods are
// tiny and highly repetitive (ntp distinct types over |domain| tuples, with
// ntp << |domain|), so almost every CanonicalForm call recomputes a result
// already seen. The cache keys canonicalization on a cheap *sound* cache key:
// the structure re-serialized under a color-refinement relabeling.
//
//   * Sound: the key is a complete serialization of the relabeled structure,
//     so equal keys imply isomorphic inputs and hence equal canonical forms —
//     a hit can never return a wrong answer.
//   * Effective: when refinement individualises every element (the common
//     case for small distinguished neighborhoods), the relabeling is
//     canonical, so isomorphic neighborhoods of *different* tuples collide on
//     the same key and share one canonicalization. When refinement stalls,
//     ties are broken by input labels; isomorphic inputs may then miss and
//     recompute — slower, never wrong.
//
// Buckets are sharded under striped mutexes so concurrent typing (see
// util/parallel.h) shares work; the expensive canonicalization itself runs
// outside any lock.
#ifndef QPWM_STRUCTURE_CANON_CACHE_H_
#define QPWM_STRUCTURE_CANON_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "qpwm/structure/structure.h"

namespace qpwm {

/// The sound, refinement-relabeled cache key described above. Exposed for
/// tests and micro-benchmarks (its cost is the per-hit overhead).
std::string CanonCacheKey(const Structure& s, const Tuple& distinguished);

/// 64-bit isomorphism-invariant-when-discrete fingerprint (hash of the cache
/// key); used for shard routing and as a quick diagnostic.
uint64_t NeighborhoodFingerprint(const Structure& s, const Tuple& distinguished);

class CanonCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Process-wide cache shared by all typers/planners.
  static CanonCache& Global();

  /// CanonicalForm(s, distinguished), memoized. Thread-safe.
  std::string Canonical(const Structure& s, const Tuple& distinguished);

  Stats stats() const;

  /// Drops every entry and resets the stats (benchmark hygiene).
  void Clear();

  size_t size() const;

 private:
  static constexpr size_t kShards = 64;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::string> map;
  };

  std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_CANON_CACHE_H_
