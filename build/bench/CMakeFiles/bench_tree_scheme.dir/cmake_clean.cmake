file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_scheme.dir/bench_tree_scheme.cc.o"
  "CMakeFiles/bench_tree_scheme.dir/bench_tree_scheme.cc.o.d"
  "bench_tree_scheme"
  "bench_tree_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
