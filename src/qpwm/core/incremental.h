// Incremental watermarking (Section 5).
//
// Theorem 7 (weights-only updates): when the owner updates weights but not
// the structure, re-applying the recorded per-tuple mark deltas to the new
// weights preserves both the global distortion and detectability — the
// detector only ever looks at differences against the owner's originals.
//
// Theorem 8 (type-preserving structural updates): if an update to the
// structure creates or removes no neighborhood isomorphism type, the
// existing pair marking remains valid as a (|W|, eta, 0, 0) procedure; we
// also re-verify the realized cost bound on the updated instance, which is
// cheap and strictly stronger.
#ifndef QPWM_CORE_INCREMENTAL_H_
#define QPWM_CORE_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "qpwm/core/local_scheme.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Theorem 7: propagates the mark from (old_original -> old_marked) onto
/// new_original. Every tuple keeps its distortion M = old_marked - old_original.
WeightMap PropagateWeightsOnlyUpdate(const WeightMap& old_original,
                                     const WeightMap& old_marked,
                                     const WeightMap& new_original);

/// Outcome of a type-preservation check after a structural update.
struct UpdateCheck {
  bool type_preserving = false;  // same set of neighborhood types?
  size_t old_types = 0;
  size_t new_types = 0;
  /// Pairs of the existing marking whose both elements are still active on
  /// the updated instance (detectable bits kept).
  size_t surviving_pairs = 0;
  /// Realized max cost of the surviving pairs on the updated instance.
  uint32_t new_cost_bound = 0;
};

/// Theorem 8: checks whether `updated_index` (same query, updated structure
/// or domain) preserves all neighborhood types of the planning radius and
/// whether the scheme's pairs survive. Does not modify the scheme.
UpdateCheck CheckTypePreservingUpdate(const LocalScheme& scheme,
                                      const QueryIndex& updated_index);

}  // namespace qpwm

#endif  // QPWM_CORE_INCREMENTAL_H_
