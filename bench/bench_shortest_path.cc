// E14 — the Khanna-Zane connection ([10], discussed in the paper's
// conclusion): shortest-path preservation is an optimization objective
// outside the query-answer model, but the conclusion observes that the
// VC-dimension of weighted graphs w.r.t. shortest paths is bounded. We
// measure what the query-preserving schemes *deliver* on that objective:
// embed with radius-query plans of decreasing epsilon and record the
// realized worst-case drift of every pairwise shortest-path length — and
// contrast with an unconstrained +-1 marking of the same payload size.
#include <iostream>

#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/structure/paths.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

int main() {
  std::cout << "=== bench_shortest_path: the Khanna-Zane objective ===\n";

  Rng rng(141);
  Structure g = RandomBoundedDegreeGraph(300, 3, 900, true, rng);
  GaifmanGraph gaifman(g);
  WeightMap w = RandomWeights(g, 50, 500, rng);

  DistanceQuery query(2);
  QueryIndex index(g, query, AllParams(g, 1));

  TextTable table("Shortest-path drift of query-preserving markings (n=300, k=3)");
  table.SetHeader({"marking", "bits", "query bound", "max path drift",
                   "drift / bits"});

  for (double inv_eps : {2.0, 4.0, 8.0}) {
    LocalSchemeOptions opts;
    opts.epsilon = 1.0 / inv_eps;
    opts.key = {141, 142};
    opts.rho = 2;
    auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
    BitVec mark(scheme.CapacityBits());
    for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
    WeightMap marked = scheme.Embed(w, mark);
    Weight drift = MaxShortestPathDrift(gaifman, w, marked);
    table.AddRow({StrCat("scheme 1/eps=", inv_eps), StrCat(scheme.CapacityBits()),
                  StrCat("<= ", scheme.Budget()), StrCat(drift),
                  FmtDouble(static_cast<double>(drift) /
                                std::max<double>(1.0, scheme.CapacityBits()),
                            3)});

    // Unconstrained control: the same number of +-1 perturbations placed
    // randomly (what a scheme ignorant of queries would do).
    WeightMap random_marked = w;
    auto victims = rng.SampleWithoutReplacement(g.universe_size(),
                                                std::min(g.universe_size(),
                                                         2 * scheme.CapacityBits()));
    for (size_t i = 0; i < victims.size(); ++i) {
      random_marked.AddElem(static_cast<ElemId>(victims[i]), i % 2 == 0 ? 1 : -1);
    }
    Weight random_drift = MaxShortestPathDrift(gaifman, w, random_marked);
    table.AddRow({StrCat("random +-1, same payload"), StrCat(scheme.CapacityBits()),
                  "none", StrCat(random_drift),
                  FmtDouble(static_cast<double>(random_drift) /
                                std::max<double>(1.0, scheme.CapacityBits()),
                            3)});
  }
  table.Print(std::cout);
  std::cout << "the paper's model does not *guarantee* shortest-path "
               "preservation (an optimization objective, cf. [10]); measured: "
               "radius-query-preserving markings keep path drift close to the "
               "query bound because local cancellation also caps any path's "
               "exposure, while unconstrained markings drift freely.\n";
  return 0;
}
