#include <gtest/gtest.h>

#include <cmath>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/relational/table.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/xml/attack.h"
#include "qpwm/xml/parser.h"
#include "qpwm/xml/xpath.h"

namespace qpwm {
namespace {

struct Fixture {
  Structure g;
  std::unique_ptr<AtomQuery> query;
  std::unique_ptr<QueryIndex> index;
  WeightMap weights;
  std::unique_ptr<LocalScheme> scheme;

  explicit Fixture(size_t n, uint64_t seed) : weights(1, 0) {
    Rng rng(seed);
    g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
    query = AtomQuery::Adjacency("E");
    index = std::make_unique<QueryIndex>(g, *query, AllParams(g, 1));
    weights = RandomWeights(g, 1000, 9999, rng);
    LocalSchemeOptions opts;
    opts.epsilon = 0.25;
    opts.key = {seed, seed + 1};
    opts.encoding = PairEncoding::kAntipodal;
    scheme = std::make_unique<LocalScheme>(
        LocalScheme::Plan(*index, opts).ValueOrDie());
  }
};

// Embeds a random message and returns (message, detection) after erasing the
// elements SubsetDeletionAttack selects at `drop_frac`.
std::pair<BitVec, AdversarialDetection> RunDeletion(Fixture& s,
                                                    const AdversarialScheme& adv,
                                                    double drop_frac,
                                                    uint64_t seed) {
  Rng rng(seed);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(s.weights, msg);
  HonestServer base(*s.index, marked);
  TamperedAnswerServer server(base);
  for (const Tuple& t : SubsetDeletionAttack(*s.index, drop_frac, rng)) {
    server.Erase(t);
  }
  return {msg, adv.Detect(s.weights, server).ValueOrDie()};
}

TEST(StructuralAttackTest, TamperedServerErasesAndInserts) {
  Fixture s(100, 1);
  HonestServer base(*s.index, s.weights);
  TamperedAnswerServer server(base);

  // Before tampering: identical answers.
  const Tuple& p = s.index->param(0);
  EXPECT_EQ(server.Answer(p).size(), base.Answer(p).size());

  // Erasing an element removes its rows everywhere.
  ASSERT_GT(s.index->num_active(), 0u);
  Tuple victim = s.index->active_element(0);
  server.Erase(victim);
  EXPECT_EQ(server.num_erased(), 1u);
  for (size_t a = 0; a < s.index->num_params(); ++a) {
    for (const AnswerRow& row : server.Answer(s.index->param(a))) {
      EXPECT_NE(row.element, victim);
    }
  }

  // Insertions append spurious rows at one parameter / everywhere.
  server.InsertAt(p, {Tuple{static_cast<ElemId>(10000)}, 42});
  EXPECT_GE(server.Answer(p).size(), 1u);
  server.InsertEverywhere({Tuple{static_cast<ElemId>(10001)}, 7});
  for (size_t a = 0; a < s.index->num_params(); ++a) {
    const AnswerSet rows = server.Answer(s.index->param(a));
    bool found = false;
    for (const AnswerRow& row : rows) {
      found |= row.element == Tuple{static_cast<ElemId>(10001)};
    }
    EXPECT_TRUE(found);
  }
}

TEST(StructuralAttackTest, FullMarkSurvivesThirtyPercentPairDeletion) {
  // The acceptance workload: redundancy 5, 30% of pairs deleted (element
  // rate 1 - sqrt(0.7)); each bit dies only with probability 0.3^5.
  Fixture s(600, 17);
  AdversarialScheme adv(*s.scheme, 5);
  ASSERT_GT(adv.CapacityBits(), 0u);
  auto [msg, d] = RunDeletion(s, adv, 1.0 - std::sqrt(0.7), 170);
  EXPECT_TRUE(d.complete());
  EXPECT_EQ(d.mark, msg);
  EXPECT_GT(d.pairs_erased, 0u);  // the attack really landed
  EXPECT_EQ(d.min_margin, 1.0);   // erasures abstain, survivors are unanimous
}

TEST(StructuralAttackTest, DeletionDegradesToErasuresNeverWrongBits) {
  // Up to the majority-breaking point and beyond: bits drop out as erasures,
  // recovered bits never contradict the embedded message.
  Fixture s(400, 23);
  AdversarialScheme adv(*s.scheme, 5);
  ASSERT_GT(adv.CapacityBits(), 0u);
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto [msg, d] = RunDeletion(s, adv, frac, 230 + static_cast<uint64_t>(frac * 10));
    EXPECT_EQ(d.bits_recovered + d.bits_erased, d.mark.size());
    for (size_t i = 0; i < d.mark.size(); ++i) {
      if (!d.bit_erased[i]) {
        EXPECT_EQ(d.mark.Get(i), msg.Get(i)) << "bit " << i;
      }
    }
  }
}

TEST(StructuralAttackTest, ErasureCountsGrowMonotonically) {
  // Confidence decays monotonically in the deletion rate: nested deletions
  // (same seed, growing fraction) only ever erase more pairs and more bits.
  Fixture s(400, 29);
  AdversarialScheme adv(*s.scheme, 5);
  ASSERT_GT(adv.CapacityBits(), 0u);
  size_t prev_pairs = 0;
  size_t prev_bits = 0;
  size_t prev_recovered = adv.CapacityBits();
  for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto [msg, d] = RunDeletion(s, adv, frac, 290);
    (void)msg;
    EXPECT_GE(d.pairs_erased, prev_pairs);
    EXPECT_GE(d.bits_erased, prev_bits);
    EXPECT_LE(d.bits_recovered, prev_recovered);
    prev_pairs = d.pairs_erased;
    prev_bits = d.bits_erased;
    prev_recovered = d.bits_recovered;
  }
  // Total deletion: everything is erased, nothing is fabricated.
  auto [msg, d] = RunDeletion(s, adv, 1.0, 290);
  (void)msg;
  EXPECT_EQ(d.bits_recovered, 0u);
  EXPECT_EQ(d.bits_erased, d.mark.size());
  EXPECT_EQ(d.min_margin, 0.0);
  for (size_t i = 0; i < d.mark.size(); ++i) {
    EXPECT_TRUE(d.bit_erased[i]);
    EXPECT_EQ(d.margins[i], 0.0);
  }
}

TEST(StructuralAttackTest, InsertionAloneIsHarmless) {
  // Spurious rows belong to no registered pair: every vote survives.
  Fixture s(300, 31);
  AdversarialScheme adv(*s.scheme, 3);
  ASSERT_GT(adv.CapacityBits(), 0u);
  Rng rng(31);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(s.weights, msg);
  HonestServer base(*s.index, marked);
  TamperedAnswerServer server(base);
  TupleInsertionAttack(server, *s.index, marked, 500, rng);
  AdversarialDetection d = adv.Detect(s.weights, server).ValueOrDie();
  EXPECT_TRUE(d.complete());
  EXPECT_EQ(d.mark, msg);
  EXPECT_EQ(d.pairs_erased, 0u);
  EXPECT_EQ(d.min_margin, 1.0);
}

TEST(StructuralAttackTest, StrictDetectionStillFailsOnErasure) {
  // The legacy all-or-nothing path keeps its contract: any structural
  // tampering is a detection failure, not a silent wrong answer.
  Fixture s(200, 37);
  Rng rng(37);
  BitVec msg(s.scheme->CapacityBits());
  WeightMap marked = s.scheme->Embed(s.weights, msg);
  HonestServer base(*s.index, marked);
  TamperedAnswerServer server(base);
  server.Erase(s.index->active_element(0));
  auto detected = s.scheme->Detect(s.weights, server);
  ASSERT_FALSE(detected.ok());
  EXPECT_EQ(detected.status().code(), StatusCode::kDetectionFailed);
}

TEST(StructuralAttackTest, CollusionDomainMismatchIsAnError) {
  Fixture s(100, 41);
  WeightMap other(1, s.g.universe_size() + 5);
  auto averaged = AveragingCollusionAttack({&s.weights, &other});
  ASSERT_FALSE(averaged.ok());
  EXPECT_EQ(averaged.status().code(), StatusCode::kInvalidArgument);
  auto empty = AveragingCollusionAttack({});
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  // The mismatch is rejected wherever it sits in the copy list, and a
  // single-copy "collusion" of the right domain still succeeds (it is the
  // identity average).
  auto late_mismatch =
      AveragingCollusionAttack({&s.weights, &s.weights, &other});
  ASSERT_FALSE(late_mismatch.ok());
  EXPECT_EQ(late_mismatch.status().code(), StatusCode::kInvalidArgument);
  auto single = AveragingCollusionAttack({&s.weights});
  ASSERT_TRUE(single.ok());
  bool same = true;
  s.weights.ForEach([&](const Tuple& t, Weight w) {
    same &= single.value().Get(t) == w;
  });
  EXPECT_TRUE(same);
}

TEST(StructuralAttackTest, SubsetDeletionSamplesRequestedFraction) {
  Fixture s(500, 43);
  Rng rng(43);
  EXPECT_TRUE(SubsetDeletionAttack(*s.index, 0.0, rng).empty());
  EXPECT_EQ(SubsetDeletionAttack(*s.index, 1.0, rng).size(),
            s.index->num_active());
  const size_t half = SubsetDeletionAttack(*s.index, 0.5, rng).size();
  EXPECT_GT(half, s.index->num_active() / 4);
  EXPECT_LT(half, s.index->num_active() * 3 / 4);
}

// --- Relational end to end ---------------------------------------------------

TEST(StructuralAttackTest, RelationalRowSubsetAlignsAndDetects) {
  Rng rng(47);
  Database db = RandomTravelDatabase(80, 100, 3, rng);
  RelationalInstance inst = ToWeightedStructure(db).ValueOrDie();
  AtomQuery route("Route", {{true, 0}, {false, 0}}, 1, 1);
  QueryIndex index(inst.structure, route, AllParams(inst.structure, 1));
  LocalSchemeOptions opts;
  opts.epsilon = 0.25;
  opts.key = {47, 48};
  opts.encoding = PairEncoding::kAntipodal;
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  AdversarialScheme adv(scheme, 3);
  ASSERT_GT(adv.CapacityBits(), 0u);

  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(inst.weights, msg);
  Database published = ApplyWeightsToDatabase(db, inst, marked).ValueOrDie();

  Database leaked;
  for (const Table& t : published.tables()) {
    leaked.AddTable(SubsetRowsAttack(t, 0.8, rng));
  }
  RelationalInstance suspect = ToWeightedStructure(leaked).ValueOrDie();
  AlignedSuspect aligned = AlignSuspectInstance(inst, suspect);
  EXPECT_GT(aligned.missing, 0u);
  EXPECT_GT(aligned.matched, 0u);

  HonestServer base(index, aligned.weights);
  TamperedAnswerServer server(base);
  for (ElemId e = 0; e < aligned.present.size(); ++e) {
    if (!aligned.present[e]) server.Erase(Tuple{e});
  }
  AdversarialDetection d = adv.Detect(inst.weights, server).ValueOrDie();
  for (size_t i = 0; i < d.mark.size(); ++i) {
    if (!d.bit_erased[i]) {
      EXPECT_EQ(d.mark.Get(i), msg.Get(i)) << "bit " << i;
    }
  }
}

TEST(StructuralAttackTest, AlignmentTreatsLostWeightRowAsErased) {
  // An element can survive in a key column while the row carrying its weight
  // is deleted: it must be served as erased, never as weight 0.
  Database db = TravelAgencyDatabase();
  RelationalInstance inst = ToWeightedStructure(db).ValueOrDie();

  Database leaked = db;
  Table* timetable = leaked.FindMutable("Timetable").ValueOrDie();
  // Rebuild the timetable without the F21 row; F21 stays in Route.
  Table trimmed(timetable->name(), timetable->columns());
  for (size_t r = 0; r < timetable->num_rows(); ++r) {
    if (timetable->KeyAt(r, 0) != "F21") {
      ASSERT_TRUE(trimmed.AddRow(timetable->row(r)).ok());
    }
  }
  *timetable = trimmed;

  RelationalInstance suspect = ToWeightedStructure(leaked).ValueOrDie();
  ElemId f21 = inst.structure.FindElement("F21").ValueOrDie();
  ASSERT_TRUE(suspect.structure.FindElement("F21").ok());  // still a key
  AlignedSuspect aligned = AlignSuspectInstance(inst, suspect);
  EXPECT_FALSE(aligned.present[f21]);
}

// --- XML end to end ----------------------------------------------------------

TEST(StructuralAttackTest, XmlSubtreeDeletionShrinksDocument) {
  Rng rng(53);
  XmlDocument doc = RandomSchoolDocument(50, rng, 0, 20, 3);
  XmlDocument attacked = SubtreeDeletionAttack(doc, 0.3, rng);
  EXPECT_LT(attacked.size(), doc.size());
  EXPECT_GT(attacked.size(), 0u);
  // Round-trips through the serializer (structurally valid).
  EXPECT_TRUE(ParseXml(SerializeXml(attacked)).ok());

  XmlDocument grown = ElementInsertionAttack(doc, 0.2, rng);
  EXPECT_GT(grown.size(), doc.size());
  EXPECT_TRUE(ParseXml(SerializeXml(grown)).ok());
}

TEST(StructuralAttackTest, XmlAlignmentRecoversAfterSubtreeDeletion) {
  Rng rng(59);
  XmlDocument doc = RandomSchoolDocument(60, rng, 0, 20, 2);
  EncodedXml enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  XPathQuery query =
      XPathQuery::Parse("school/student[firstname=$1]/exam").ValueOrDie();
  TrackedDta dta = query.Compile(enc).ValueOrDie();
  const auto sigma = static_cast<uint32_t>(enc.sigma.size());
  TreeSchemeOptions opts;
  opts.key = {59, 60};
  opts.encoding = PairEncoding::kAntipodal;
  TreeScheme scheme =
      TreeScheme::Plan(enc.tree, enc.tree.labels(), sigma, dta.dta, 1, opts)
          .ValueOrDie();
  AdversarialScheme adv(scheme, 3);
  ASSERT_GT(adv.CapacityBits(), 0u);

  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(enc.weights, msg);
  XmlDocument published = ApplyWeights(doc, enc, marked);

  // Clean suspect: alignment is exact, detection is full.
  {
    SuspectAlignment aligned =
        AlignSuspectWeights(doc, enc, published, {"exam"}).ValueOrDie();
    EXPECT_EQ(aligned.missing, 0u);
    EXPECT_EQ(aligned.extra, 0u);
    HonestTreeServer server(enc.tree, enc.tree.labels(), sigma, dta.dta, 1,
                            aligned.weights);
    AdversarialDetection d = adv.Detect(enc.weights, server).ValueOrDie();
    EXPECT_TRUE(d.complete());
    EXPECT_EQ(d.mark, msg);
  }

  // Tampered suspect: records vanish, recovered bits stay correct.
  {
    XmlDocument leaked = SubtreeDeletionAttack(published, 0.15, rng);
    SuspectAlignment aligned =
        AlignSuspectWeights(doc, enc, leaked, {"exam"}).ValueOrDie();
    EXPECT_GT(aligned.missing, 0u);
    HonestTreeServer server(enc.tree, enc.tree.labels(), sigma, dta.dta, 1,
                            aligned.weights);
    TamperedAnswerServer tampered(server);
    for (NodeId v = 0; v < aligned.present.size(); ++v) {
      if (!aligned.present[v]) tampered.Erase(Tuple{v});
    }
    AdversarialDetection d = adv.Detect(enc.weights, tampered).ValueOrDie();
    EXPECT_GT(d.pairs_erased, 0u);
    for (size_t i = 0; i < d.mark.size(); ++i) {
      if (!d.bit_erased[i]) {
        EXPECT_EQ(d.mark.Get(i), msg.Get(i)) << "bit " << i;
      }
    }
  }
}

TEST(StructuralAttackTest, XmlInsertionDegradesToExtrasAndErasures) {
  Rng rng(61);
  XmlDocument doc = RandomSchoolDocument(40, rng, 0, 20, 3);
  EncodedXml enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  XmlDocument grown = ElementInsertionAttack(doc, 0.3, rng);
  SuspectAlignment aligned =
      AlignSuspectWeights(doc, enc, grown, {"exam"}).ValueOrDie();
  // Cloned records show up as extras. Clones that duplicate a *key* field
  // change their record's signature, so such originals degrade to erasures —
  // never to a silently wrong match.
  EXPECT_GT(aligned.extra, 0u);
  EXPECT_GT(aligned.matched, aligned.missing);
  size_t weight_records = 0;
  for (size_t v = 0; v < enc.is_weight_node.size(); ++v) {
    weight_records += enc.is_weight_node[v];
  }
  EXPECT_EQ(aligned.matched + aligned.missing, weight_records);
}

}  // namespace
}  // namespace qpwm
