// Gaifman graph of a structure: elements are adjacent iff they co-occur in
// some relation tuple. Degree bounds, distances and rho-spheres — the
// combinatorics behind locality (Section 3 of the paper).
#ifndef QPWM_STRUCTURE_GAIFMAN_H_
#define QPWM_STRUCTURE_GAIFMAN_H_

#include <cstdint>
#include <vector>

#include "qpwm/structure/structure.h"

namespace qpwm {

/// Undirected adjacency view of a structure's Gaifman graph.
class GaifmanGraph {
 public:
  explicit GaifmanGraph(const Structure& s);

  size_t size() const { return adj_.size(); }
  const std::vector<ElemId>& Neighbors(ElemId e) const { return adj_[e]; }
  size_t Degree(ElemId e) const { return adj_[e].size(); }

  /// Maximum degree over all elements — the k of STRUCT_k[tau].
  size_t MaxDegree() const;

  /// Elements at distance <= rho from `a` (the rho-sphere S_rho(a)),
  /// sorted ascending.
  std::vector<ElemId> Sphere(ElemId a, uint32_t rho) const;

  /// S_rho(c) for a tuple: union of the element spheres, sorted ascending.
  std::vector<ElemId> Sphere(const Tuple& c, uint32_t rho) const;

  /// BFS distance between two elements, or UINT32_MAX if disconnected.
  uint32_t Distance(ElemId a, ElemId b) const;

 private:
  std::vector<std::vector<ElemId>> adj_;
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_GAIFMAN_H_
