#include "qpwm/core/answers.h"

#include <algorithm>

#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"

namespace qpwm {

QueryIndex::QueryIndex(const Structure& g, const ParametricQuery& query,
                       // qpwm-lint: allow(legacy-tuple-vector) — sink parameter; the index owns its query-parameter domain
                       std::vector<Tuple> domain)
    : g_(&g), query_(&query), domain_(std::move(domain)) {
  // Query evaluation — the dominant cost — runs over the whole domain in
  // parallel (Evaluate is const and thread-safe, see query.h). Interning
  // result tuples into dense active ids happens serially in domain order, so
  // the assigned ids, rows and inverse index are bit-identical to the serial
  // build for any thread count.
  std::vector<std::vector<Tuple>> raw = ParallelMap<std::vector<Tuple>>(
      domain_.size(), [&](size_t i) {
        QPWM_CHECK_EQ(domain_[i].size(), query.ParamArity());
        return query.Evaluate(g, domain_[i]);
      });

  results_.resize(domain_.size());
  for (size_t i = 0; i < domain_.size(); ++i) {
    param_index_.emplace(domain_[i], static_cast<uint32_t>(i));
    auto& row = results_[i];
    row.reserve(raw[i].size());
    for (Tuple& t : raw[i]) {
      QPWM_CHECK_EQ(t.size(), query.ResultArity());
      auto [it, inserted] =
          active_index_.emplace(t, static_cast<uint32_t>(active_.size()));
      if (inserted) active_.push_back(std::move(t));
      row.push_back(it->second);
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  containing_.resize(active_.size());
  for (size_t i = 0; i < results_.size(); ++i) {
    for (uint32_t w : results_[i]) {
      containing_[w].push_back(static_cast<uint32_t>(i));
    }
  }
  if (query.ResultArity() == 1) {
    active_of_elem_.assign(g.universe_size(), -1);
    for (size_t w = 0; w < active_.size(); ++w) {
      active_of_elem_[active_[w][0]] = static_cast<int32_t>(w);
    }
  }
}

Result<size_t> QueryIndex::FindParam(const Tuple& params) const {
  auto it = param_index_.find(params);
  if (it == param_index_.end()) return Status::NotFound("parameter outside domain");
  return static_cast<size_t>(it->second);
}

Result<size_t> QueryIndex::FindActive(const Tuple& t) const {
  auto it = active_index_.find(t);
  if (it == active_index_.end()) return Status::NotFound("tuple is not an active element");
  return static_cast<size_t>(it->second);
}

bool QueryIndex::Contains(size_t param_idx, size_t w) const {
  const auto& row = results_[param_idx];
  return std::binary_search(row.begin(), row.end(), static_cast<uint32_t>(w));
}

Weight QueryIndex::SumWeights(size_t param_idx, const WeightMap& weights) const {
  Weight sum = 0;
  for (uint32_t w : results_[param_idx]) sum += weights.Get(active_[w]);
  return sum;
}

AnswerSet QueryIndex::AnswersFor(size_t param_idx, const WeightMap& weights) const {
  AnswerSet out;
  out.reserve(results_[param_idx].size());
  for (uint32_t w : results_[param_idx]) {
    out.push_back({active_[w], weights.Get(active_[w])});
  }
  return out;
}

Weight QueryIndex::SumWeights(size_t param_idx, const DenseWeightView& view) const {
  Weight sum = 0;
  for (uint32_t w : results_[param_idx]) sum += view.at(w);
  return sum;
}

AnswerSet QueryIndex::AnswersFor(size_t param_idx, const DenseWeightView& view) const {
  AnswerSet out;
  out.reserve(results_[param_idx].size());
  for (uint32_t w : results_[param_idx]) {
    out.push_back({active_[w], view.at(w)});
  }
  return out;
}

void QueryIndex::AppendAnswersFlat(size_t param_idx, const WeightMap& weights,
                                   FlatAnswerBatch& out) const {
  for (uint32_t w : results_[param_idx]) {
    out.AppendRow(active_[w], weights.Get(active_[w]));
  }
}

void QueryIndex::AppendAnswersFlat(size_t param_idx, const DenseWeightView& view,
                                   FlatAnswerBatch& out) const {
  for (uint32_t w : results_[param_idx]) {
    out.AppendRow(active_[w], view.at(w));
  }
}

DenseWeightView::DenseWeightView(const QueryIndex& index, const WeightMap& weights) {
  dense_.reserve(index.num_active());
  for (size_t w = 0; w < index.num_active(); ++w) {
    dense_.push_back(weights.Get(index.active_element(w)));
  }
}

std::vector<AnswerSet> BatchAnswerServer::AnswerBatch(
    const std::vector<Tuple>& params) const {
  std::vector<AnswerSet> out;
  out.reserve(params.size());
  for (const Tuple& p : params) out.push_back(Answer(p));
  return out;
}

void BatchAnswerServer::AnswerAllFlat(const std::vector<Tuple>& params,
                                      FlatAnswerBatch& out) const {
  out.Clear();
  for (const AnswerSet& answers : AnswerBatch(params)) {
    for (const AnswerRow& row : answers) out.AppendRow(row.element, row.weight);
    out.FinishParam();
  }
}

std::vector<AnswerSet> AnswerAll(const AnswerServer& server,
                                 const std::vector<Tuple>& params) {
  if (const auto* batch = dynamic_cast<const BatchAnswerServer*>(&server)) {
    return batch->AnswerBatch(params);
  }
  std::vector<AnswerSet> out;
  out.reserve(params.size());
  for (const Tuple& p : params) out.push_back(server.Answer(p));
  return out;
}

void AnswerAllFlat(const AnswerServer& server, const std::vector<Tuple>& params,
                   FlatAnswerBatch& out) {
  if (const auto* batch = dynamic_cast<const BatchAnswerServer*>(&server)) {
    batch->AnswerAllFlat(params, out);
    return;
  }
  out.Clear();
  for (const Tuple& p : params) {
    for (const AnswerRow& row : server.Answer(p)) {
      out.AppendRow(row.element, row.weight);
    }
    out.FinishParam();
  }
}

AnswerSet ServingSnapshot::Answer(const Tuple& params) const {
  // Same serving contract as HonestServer, but against the frozen copy: the
  // dense view for in-domain parameters, direct evaluation for the rest.
  auto idx = index_->FindParam(params);
  if (idx.ok()) return index_->AnswersFor(idx.value(), view_);
  AnswerSet out;
  for (Tuple& t : index_->query().Evaluate(index_->structure(), params)) {
    Weight w = weights_.Get(t);
    out.push_back({std::move(t), w});
  }
  return out;
}

void ServingSnapshot::AnswerAllFlat(const std::vector<Tuple>& params,
                                    FlatAnswerBatch& out) const {
  out.Clear();
  for (const Tuple& p : params) {
    auto idx = index_->FindParam(p);
    if (idx.ok()) {
      index_->AppendAnswersFlat(idx.value(), view_, out);
    } else {
      for (const Tuple& t : index_->query().Evaluate(index_->structure(), p)) {
        out.AppendRow(t, weights_.Get(t));
      }
    }
    out.FinishParam();
  }
}

AnswerSet HonestServer::Answer(const Tuple& params) const {
  // A real server would evaluate the query; ours serves from the shared
  // index, which is observationally identical and keeps benches fast.
  auto idx = index_->FindParam(params);
  if (idx.ok()) {
    return view_.has_value() ? index_->AnswersFor(idx.value(), *view_)
                             : index_->AnswersFor(idx.value(), weights_);
  }
  // Parameter outside the registered domain: evaluate directly (the sparse
  // path — the dense view only covers the index's active elements).
  AnswerSet out;
  for (Tuple& t : index_->query().Evaluate(index_->structure(), params)) {
    Weight w = weights_.Get(t);
    out.push_back({std::move(t), w});
  }
  return out;
}

void HonestServer::AnswerAllFlat(const std::vector<Tuple>& params,
                                 FlatAnswerBatch& out) const {
  out.Clear();
  for (const Tuple& p : params) {
    auto idx = index_->FindParam(p);
    if (idx.ok()) {
      if (view_.has_value()) {
        index_->AppendAnswersFlat(idx.value(), *view_, out);
      } else {
        index_->AppendAnswersFlat(idx.value(), weights_, out);
      }
    } else {
      for (const Tuple& t : index_->query().Evaluate(index_->structure(), p)) {
        out.AppendRow(t, weights_.Get(t));
      }
    }
    out.FinishParam();
  }
}

}  // namespace qpwm
