file(REMOVE_RECURSE
  "libqpwm_tree.a"
)
