#include <gtest/gtest.h>

#include <string>

#include "qpwm/coding/coded_watermark.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/stream/detect_loop.h"
#include "qpwm/stream/report.h"
#include "qpwm/stream/stream_server.h"
#include "qpwm/stream/update.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// --- Generation-stamped query caches -----------------------------------------
//
// Regression coverage for the cache-identity bug the stream soak exposed:
// the lazy per-structure caches in DistanceQuery / AtomQuery key on the
// structure's address, which identifies nothing once the structure mutates
// in place (or a new structure reuses a dead one's address). The generation
// stamp must invalidate those hits.

TEST(GenerationStampTest, MutationAndCopySemantics) {
  Structure g = CycleGraph(8, true);
  const uint64_t g0 = g.generation();

  Structure copy = g;
  EXPECT_NE(copy.generation(), g0);  // a copy is a distinct logical state

  g.AddTuple(size_t{0}, Tuple{0, 4});
  const uint64_t g1 = g.generation();
  EXPECT_NE(g1, g0);

  g.Seal();  // sorting reorders tuple indices -> also a cache-visible change
  const uint64_t g2 = g.generation();
  EXPECT_NE(g2, g1);

  (void)g.mutable_relation(0);  // non-const access assumes mutation
  EXPECT_NE(g.generation(), g2);

  // Const reads never bump.
  const uint64_t g3 = g.generation();
  (void)g.relation(size_t{0}).size();
  EXPECT_EQ(g.generation(), g3);
}

TEST(GenerationStampTest, DistanceQuerySeesInPlaceMutation) {
  Structure g = CycleGraph(8, true);
  DistanceQuery query(1);
  EXPECT_EQ(query.Evaluate(g, Tuple{0}).size(), 3u);  // {7, 0, 1}

  // In-place mutation at the same address: add the chord 0-4.
  g.AddTuple(size_t{0}, Tuple{0, 4});
  g.AddTuple(size_t{0}, Tuple{4, 0});
  g.Seal();
  // A stale pointer-keyed Gaifman cache would still answer 3 here.
  EXPECT_EQ(query.Evaluate(g, Tuple{0}).size(), 4u);  // {7, 0, 1, 4}
}

TEST(GenerationStampTest, AtomQuerySeesInPlaceMutation) {
  Structure g = CycleGraph(8, true);
  auto query = AtomQuery::Adjacency("E");
  EXPECT_EQ(query->Evaluate(g, Tuple{0}).size(), 2u);

  g.AddTuple(size_t{0}, Tuple{0, 4});
  g.Seal();
  EXPECT_EQ(query->Evaluate(g, Tuple{0}).size(), 3u);
}

// --- Update generator --------------------------------------------------------

TEST(UpdateGeneratorTest, SameSeedReplaysTheSameStream) {
  Structure g = CycleGraph(40, true);
  UpdateGenerator a(7), b(7);
  for (int i = 0; i < 200; ++i) {
    const Update ua = a.Next(g);
    const Update ub = b.Next(g);
    EXPECT_EQ(ua.kind, ub.kind);
    EXPECT_EQ(ua.elem, ub.elem);
    EXPECT_EQ(ua.delta, ub.delta);
    ASSERT_EQ(ua.edits.size(), ub.edits.size());
    for (size_t j = 0; j < ua.edits.size(); ++j) {
      EXPECT_EQ(ua.edits[j].kind, ub.edits[j].kind);
      EXPECT_EQ(ua.edits[j].relation, ub.edits[j].relation);
      EXPECT_EQ(ua.edits[j].tuple, ub.edits[j].tuple);
    }
  }
  EXPECT_EQ(a.generated(), 200u);
  EXPECT_EQ(a.hostile_generated(), b.hostile_generated());
}

TEST(UpdateGeneratorTest, HostileFractionRoughlyHonored) {
  Structure g = CycleGraph(40, true);
  UpdateMixOptions mix;
  mix.hostile_frac = 0.25;
  UpdateGenerator gen(11, mix);
  for (int i = 0; i < 2000; ++i) (void)gen.Next(g);
  const double frac =
      static_cast<double>(gen.hostile_generated()) / static_cast<double>(gen.generated());
  EXPECT_NEAR(frac, 0.25, 0.05);
}

// --- Stream server admission -------------------------------------------------

struct StreamFixture {
  Structure g;
  std::unique_ptr<AtomQuery> query;
  std::optional<QueryIndex> index;
  std::optional<WeightMap> weights;
  std::optional<LocalScheme> scheme;

  explicit StreamFixture(size_t n = 24) {
    Rng rng(5);
    g = CycleGraph(n, true);
    query = AtomQuery::Adjacency("E");
    index.emplace(g, *query, AllParams(g, 1));
    weights.emplace(RandomWeights(g, 1000, 9999, rng));
    LocalSchemeOptions opts;
    opts.epsilon = 0.4;
    opts.key = {5, 6};
    scheme.emplace(LocalScheme::Plan(*index, opts).ValueOrDie());
  }

  StreamServer MakeServer() const {
    return StreamServer(*scheme, *weights, *weights);
  }
};

Update WeightRefreshUpdate(ElemId e, Weight delta) {
  Update u;
  u.kind = UpdateKind::kWeightRefresh;
  u.elem = e;
  u.delta = delta;
  return u;
}

Update StructuralUpdateOf(UpdateKind kind, std::vector<StructuralUpdate> edits) {
  Update u;
  u.kind = kind;
  u.edits = std::move(edits);
  return u;
}

TEST(StreamServerTest, SubmitStatusTaxonomy) {
  StreamFixture fx;
  StreamServer server = fx.MakeServer();

  // Weight refresh: applied immediately, moves original and served copy.
  const Weight before = server.original().GetElem(0);
  EXPECT_TRUE(server.Submit(WeightRefreshUpdate(0, +3)).ok());
  EXPECT_EQ(server.original().GetElem(0), before + 3);
  EXPECT_EQ(server.live().weights().GetElem(0), before + 3);

  // Malformed shape: wrong arity -> kInvalidArgument at submission.
  EXPECT_EQ(server
                .Submit(StructuralUpdateOf(
                    UpdateKind::kMalformed,
                    {{StructuralUpdate::Kind::kInsertTuple, 0, Tuple{0}}}))
                .code(),
            StatusCode::kInvalidArgument);

  // SPSW fake tuple referencing a non-existent row -> kOutOfRange.
  EXPECT_EQ(server
                .Submit(StructuralUpdateOf(
                    UpdateKind::kFakeTuple,
                    {{StructuralUpdate::Kind::kInsertTuple, 0, Tuple{0, 999}}}))
                .code(),
            StatusCode::kOutOfRange);

  // Shape-valid structural updates stage until the seal.
  EXPECT_TRUE(server
                  .Submit(StructuralUpdateOf(
                      UpdateKind::kFakeTuple,
                      {{StructuralUpdate::Kind::kInsertTuple, 0, Tuple{0, 5}}}))
                  .ok());
  EXPECT_EQ(server.staged(), 1u);

  // Frozen server: everything is rejected with kFailedPrecondition.
  server.Freeze();
  EXPECT_EQ(server.Submit(WeightRefreshUpdate(1, 1)).code(),
            StatusCode::kFailedPrecondition);

  const StreamCounters& c = server.counters();
  EXPECT_EQ(c.submitted, 5u);
  EXPECT_EQ(c.rejected_by_code[static_cast<size_t>(StatusCode::kInvalidArgument)], 1u);
  EXPECT_EQ(c.rejected_by_code[static_cast<size_t>(StatusCode::kOutOfRange)], 1u);
  EXPECT_EQ(c.rejected_by_code[static_cast<size_t>(StatusCode::kFailedPrecondition)], 1u);
}

TEST(StreamServerTest, SealQuarantinesTypeBreakingAndAdmitsTypePreserving) {
  StreamFixture fx;
  StreamServer server = fx.MakeServer();
  const size_t edges_before = server.structure().relation(size_t{0}).size();

  // A chord makes two elements degree 3: shape-valid, staged, but the
  // Theorem 8 gate must quarantine it at the seal.
  EXPECT_TRUE(server
                  .Submit(StructuralUpdateOf(
                      UpdateKind::kFakeTuple,
                      {{StructuralUpdate::Kind::kInsertTuple, 0, Tuple{0, 12}},
                       {StructuralUpdate::Kind::kInsertTuple, 0, Tuple{12, 0}}}))
                  .ok());
  // An edge 2-swap keeps every element 2-regular: admitted.
  EXPECT_TRUE(
      server
          .Submit(StructuralUpdateOf(
              UpdateKind::kEdgeSwap,
              {{StructuralUpdate::Kind::kDeleteTuple, 0, Tuple{0, 1}},
               {StructuralUpdate::Kind::kDeleteTuple, 0, Tuple{1, 0}},
               {StructuralUpdate::Kind::kDeleteTuple, 0, Tuple{4, 5}},
               {StructuralUpdate::Kind::kDeleteTuple, 0, Tuple{5, 4}},
               {StructuralUpdate::Kind::kInsertTuple, 0, Tuple{0, 4}},
               {StructuralUpdate::Kind::kInsertTuple, 0, Tuple{4, 0}},
               {StructuralUpdate::Kind::kInsertTuple, 0, Tuple{1, 5}},
               {StructuralUpdate::Kind::kInsertTuple, 0, Tuple{5, 1}}}))
          .ok());

  auto snap = server.SealEpoch();
  const StreamCounters& c = server.counters();
  EXPECT_EQ(c.applied_by_kind[static_cast<size_t>(UpdateKind::kEdgeSwap)], 1u);
  EXPECT_EQ(c.rejected_by_kind[static_cast<size_t>(UpdateKind::kFakeTuple)], 1u);
  EXPECT_EQ(c.rejected_by_code[static_cast<size_t>(StatusCode::kFailedPrecondition)], 1u);
  EXPECT_EQ(c.fallback_epochs, 1u);  // mixed batch forced per-update admission
  // The admitted swap kept the edge count; the chord never landed.
  EXPECT_EQ(snap->structure->relation(size_t{0}).size(), edges_before);
  EXPECT_TRUE(snap->structure->relation(size_t{0}).Contains(Tuple{0, 4}));
  EXPECT_FALSE(snap->structure->relation(size_t{0}).Contains(Tuple{0, 12}));
  EXPECT_EQ(c.submitted, c.applied + c.rejected);
}

TEST(StreamServerTest, SnapshotsAreEpochStampedAndRetired) {
  StreamFixture fx;
  StreamServer server = fx.MakeServer();

  auto snap0 = server.snapshot();
  EXPECT_EQ(snap0->epoch, 0u);
  EXPECT_FALSE(snap0->retired());

  EXPECT_TRUE(server.Submit(WeightRefreshUpdate(0, 1)).ok());
  auto snap1 = server.SealEpoch();
  EXPECT_EQ(snap1->epoch, 1u);
  EXPECT_TRUE(snap0->retired());   // superseded
  EXPECT_FALSE(snap1->retired());
  EXPECT_EQ(server.snapshot().get(), snap1.get());

  // A weight-only epoch shares the structure and index with its predecessor.
  EXPECT_EQ(snap0->structure.get(), snap1->structure.get());
  EXPECT_EQ(snap0->index.get(), snap1->index.get());
}

// --- Detect loop -------------------------------------------------------------

struct CodedFixture {
  StreamFixture fx;
  std::optional<AdversarialScheme> adv;
  std::unique_ptr<MessageCodec> codec;
  std::optional<CodedWatermark> coded;
  BitVec payload;

  // Large enough that a clean detection's vote mass pushes the Hoeffding
  // false-positive bound under the MATCH threshold (tiny instances top out
  // at NOMARK no matter how intact the mark is).
  CodedFixture() : fx(160) {
    adv.emplace(*fx.scheme, 3);
    codec = MakeCodec("hamming").ValueOrDie();
    coded.emplace(*adv, *codec);
    payload = BitVec(coded->PayloadBits());
    Rng rng(13);
    for (size_t i = 0; i < payload.size(); ++i) payload.Set(i, rng.Coin());
  }
};

TEST(DetectLoopTest, QuietStreamAuditsToMatch) {
  CodedFixture cf;
  ASSERT_GT(cf.coded->PayloadBits(), 0u);
  WeightMap marked = cf.coded->Embed(*cf.fx.weights, cf.payload);
  StreamServer server(*cf.fx.scheme, *cf.fx.weights, std::move(marked));
  EpochDetector detector(*cf.coded, cf.payload, /*seed=*/3);

  const DetectOutcome audit = detector.Audit(*server.snapshot());
  EXPECT_EQ(audit.verdict, VerdictKind::kMatch);
  EXPECT_TRUE(audit.payload_correct);
  EXPECT_EQ(audit.pairs_erased, 0u);
  EXPECT_GT(audit.ticks, 0u);
}

TEST(DetectLoopTest, TickRetriesFaultsAndEventuallyCompletes) {
  CodedFixture cf;
  WeightMap marked = cf.coded->Embed(*cf.fx.weights, cf.payload);
  StreamServer server(*cf.fx.scheme, *cf.fx.weights, std::move(marked));

  // Make faults frequent so the bounded-backoff retry path actually runs.
  DetectLoopOptions options;
  options.faults.epoch_loss_prob = 0.5;
  options.faults.failed_batch_prob = 0.2;
  EpochDetector detector(*cf.coded, cf.payload, /*seed=*/17, options);

  auto snap = server.snapshot();
  size_t completed = 0;
  for (int tick = 0; tick < 200 && completed < 3; ++tick) {
    if (auto outcome = detector.Tick(*snap)) {
      if (!outcome->gave_up) {
        ++completed;
        EXPECT_EQ(outcome->verdict, VerdictKind::kMatch);
        EXPECT_TRUE(outcome->payload_correct);
      }
    }
  }
  EXPECT_EQ(completed, 3u);
  EXPECT_GT(detector.retried(), 0u);  // the fault mix forced at least one retry
  EXPECT_EQ(detector.outcomes().size(),
            completed + detector.gave_up());
}

// --- Mini-soak: the full loop, byte-identical across thread counts -----------

std::string RunMiniSoak(size_t threads) {
  SetParallelThreads(threads);

  Rng rng(21);
  Structure g = CycleGraph(80, true);
  DistanceQuery query(1);
  QueryIndex index(g, query, AllParams(g, 1));
  WeightMap weights = RandomWeights(g, 1000, 9999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = 0.34;
  opts.key = {21, 99};
  opts.encoding = PairEncoding::kAntipodal;
  LocalScheme scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  AdversarialScheme adv(scheme, 3);
  std::unique_ptr<MessageCodec> codec = MakeCodec("hamming").ValueOrDie();
  CodedWatermark coded(adv, *codec);

  BitVec payload(coded.PayloadBits());
  Rng payload_rng(22);
  for (size_t i = 0; i < payload.size(); ++i) payload.Set(i, payload_rng.Coin());
  WeightMap marked = coded.Embed(weights, payload);

  StreamServer server(scheme, weights, std::move(marked));
  UpdateMixOptions mix;
  mix.hostile_frac = 0.2;
  UpdateGenerator generator(23, mix);
  EpochDetector detector(coded, payload, 24);

  const size_t kUpdates = 400, kWindow = 50;
  std::shared_ptr<const StreamSnapshot> snap = server.snapshot();
  for (size_t w = 0; w < kUpdates / kWindow; ++w) {
    ParallelMap<int>(2, [&](size_t lane) {
      if (lane == 0) {
        for (size_t j = 0; j < kWindow; ++j) {
          server.Ingest(generator.Next(server.structure()));
        }
      } else {
        detector.Tick(*snap);
      }
      return 0;
    });
    snap = server.SealEpoch();
  }
  server.Freeze();
  const DetectOutcome audit = detector.Audit(*snap);
  const StreamReport report = BuildStreamReport(generator, server, detector, audit);
  EXPECT_TRUE(report.Accounted());
  return StreamReportToJson(report);
}

TEST(StreamSoakTest, ReportByteIdenticalAcrossThreadCounts) {
  const std::string serial = RunMiniSoak(1);
  const std::string parallel = RunMiniSoak(4);
  EXPECT_EQ(serial, parallel);
  SetParallelThreads(0);  // restore the env/hardware default for later tests
}

}  // namespace
}  // namespace qpwm
