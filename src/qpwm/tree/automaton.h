// Bottom-up tree automata over binary Sigma-trees, with the closure algebra
// needed to compile MSO (Lemma 2 infrastructure): product, complement,
// symbol remapping (cylindrification / projection / permutation of pebble
// tracks), determinization and minimization.
//
// Representation notes:
//  * A Dta has `num_states()` real states plus an implicit *sink* with id
//    `sink()` == num_states(): every missing transition goes to the sink and
//    the sink absorbs. The sink has its own accepting flag so complementation
//    is a pure flag flip — no transition enumeration ever happens.
//  * Absent children (unary / leaf positions) are the distinguished value
//    kAbsentChild, matching the paper's '*' in delta.
#ifndef QPWM_TREE_AUTOMATON_H_
#define QPWM_TREE_AUTOMATON_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qpwm/tree/bintree.h"
#include "qpwm/util/check.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Automaton state id.
using State = uint32_t;
/// The '*' pseudo-state for a missing child.
constexpr State kAbsentChild = UINT32_MAX;

class Nta;

/// Deterministic bottom-up tree automaton (complete via the implicit sink).
class Dta {
 public:
  Dta(uint32_t num_states, uint32_t alphabet_size);

  uint32_t num_states() const { return num_states_; }
  uint32_t alphabet_size() const { return alphabet_size_; }
  /// Id of the implicit absorbing sink.
  State sink() const { return num_states_; }
  size_t num_transitions() const { return delta_.size(); }

  /// Adds delta(left, right, sym) = to. left/right: real state or
  /// kAbsentChild. Duplicate keys must agree.
  void AddTransition(State left, State right, uint32_t sym, State to);

  void SetAccepting(State q, bool accepting) {
    QPWM_CHECK_LE(q, num_states_);
    accepting_[q] = accepting;
  }
  bool IsAccepting(State q) const { return accepting_[q]; }

  /// delta with sink absorption and missing-key -> sink.
  State Step(State left, State right, uint32_t sym) const;

  /// Bottom-up run; `symbols[v]` is the (pebbled) label of node v. Returns
  /// the per-node states.
  std::vector<State> Run(const BinaryTree& t, const std::vector<uint32_t>& symbols) const;

  /// Root state only.
  State RunRoot(const BinaryTree& t, const std::vector<uint32_t>& symbols) const;

  bool Accepts(const BinaryTree& t, const std::vector<uint32_t>& symbols) const {
    return IsAccepting(RunRoot(t, symbols));
  }

  /// Language complement: flips every accepting flag (sink included).
  Dta Complement() const;

  /// Product automaton accepting the conjunction (or disjunction) of the two
  /// languages. Alphabets must match.
  static Dta Product(const Dta& a, const Dta& b, bool conjunction);

  /// View as a nondeterministic automaton (shares semantics exactly,
  /// including an accepting sink if this one has it).
  Nta ToNta() const;

  /// Language-preserving state minimization (partition refinement);
  /// also drops unreachable states.
  Dta Minimize() const;

  /// Re-keys the alphabet: old symbol s becomes every symbol in
  /// new_syms[s] (used for cylindrification / track permutation — the
  /// mapping must keep the automaton deterministic, which those do).
  Dta RemapSymbols(uint32_t new_alphabet_size,
                   const std::vector<std::vector<uint32_t>>& new_syms) const;

  /// True iff the automaton accepts no tree at all.
  bool IsEmpty() const;

  /// True iff it accepts every tree over its alphabet.
  bool IsUniversal() const { return Complement().IsEmpty(); }

  /// Language equivalence: L(a) == L(b) (alphabets must match).
  static bool Equivalent(const Dta& a, const Dta& b);

  /// Iterates stored transitions as fn(left, right, sym, to), in packed-key
  /// order — a deterministic order, so callers may hash or serialize what
  /// they see without re-sorting.
  template <typename Fn>
  void ForEachTransition(Fn&& fn) const {
    std::vector<std::pair<uint64_t, State>> entries;
    entries.reserve(delta_.size());
    // qpwm-lint: allow(unordered-iter) — collection pass; sorted below
    for (const auto& kv : delta_) entries.push_back(kv);
    std::sort(entries.begin(), entries.end());
    for (const auto& [key, to] : entries) {
      auto [l, r, sym] = UnpackKey(key);
      fn(l, r, sym, to);
    }
  }

 private:
  friend class Nta;

  static uint64_t PackKey(State l, State r, uint32_t sym);
  static std::tuple<State, State, uint32_t> UnpackKey(uint64_t key);

  uint32_t num_states_;
  uint32_t alphabet_size_;
  std::unordered_map<uint64_t, State> delta_;
  std::vector<bool> accepting_;  // size num_states_ + 1 (sink last)
};

/// Nondeterministic bottom-up tree automaton. Produced by projection; the
/// sink (id num_states()) behaves as in Dta: it is always a member of the
/// target set when a child is the sink or a key is missing, and may be
/// accepting.
class Nta {
 public:
  Nta(uint32_t num_states, uint32_t alphabet_size);

  uint32_t num_states() const { return num_states_; }
  uint32_t alphabet_size() const { return alphabet_size_; }
  State sink() const { return num_states_; }

  void AddTransition(State left, State right, uint32_t sym, State to);
  void SetAccepting(State q, bool accepting) {
    QPWM_CHECK_LE(q, num_states_);
    accepting_[q] = accepting;
  }
  bool IsAccepting(State q) const { return accepting_[q]; }

  /// Number of deterministic branches folded into each symbol (1 for a plain
  /// automaton; 2^k after projecting k tracks). When a key stores fewer
  /// targets than this, the missing branches died in the sink, so the sink
  /// joins the target set — this keeps projection exact even when the sink
  /// is accepting (complemented inputs).
  void SetVariants(uint32_t sym, uint32_t count) { variants_[sym] = count; }
  uint32_t Variants(uint32_t sym) const { return variants_[sym]; }

  /// Target states of delta(left, right, sym) for *real* child states or
  /// kAbsentChild, including the sink-absorption rule.
  std::vector<State> Targets(State left, State right, uint32_t sym) const;

  /// Re-keys the alphabet: old symbol s becomes every new symbol in
  /// new_syms[s]; merging (projection) is allowed.
  Nta RemapSymbols(uint32_t new_alphabet_size,
                   const std::vector<std::vector<uint32_t>>& new_syms) const;

  /// Subset construction. The result is complete over reachable subset
  /// combinations; its sink is unreachable (and non-accepting).
  Dta Determinize() const;

 private:
  uint32_t num_states_;
  uint32_t alphabet_size_;
  // Targets are stored with branch multiplicity (duplicates preserved).
  std::unordered_map<uint64_t, std::vector<State>> delta_;
  std::vector<bool> accepting_;
  std::vector<uint32_t> variants_;
};

}  // namespace qpwm

#endif  // QPWM_TREE_AUTOMATON_H_
