// Fixture: unordered-iter — range-for over an unordered container visits
// hash order. Never compiled, only linted.
#include <unordered_map>

int Sum(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) total += value;
  return total;
}
