#include <gtest/gtest.h>

#include "qpwm/tree/bintree.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

TEST(AlphabetTest, InternAndFind) {
  Alphabet sigma;
  EXPECT_EQ(sigma.Intern("a"), 0u);
  EXPECT_EQ(sigma.Intern("b"), 1u);
  EXPECT_EQ(sigma.Intern("a"), 0u);
  EXPECT_EQ(sigma.size(), 2u);
  EXPECT_EQ(sigma.Find("b").ValueOrDie(), 1u);
  EXPECT_FALSE(sigma.Find("c").ok());
  EXPECT_EQ(sigma.Name(0), "a");
}

TEST(BinaryTreeTest, BuildAndFinalize) {
  BinaryTree t;
  NodeId r = t.AddNode(0);
  NodeId l = t.AddNode(1);
  NodeId rr = t.AddNode(2);
  t.SetLeft(r, l);
  t.SetRight(r, rr);
  ASSERT_TRUE(t.Finalize().ok());
  EXPECT_EQ(t.root(), r);
  EXPECT_EQ(t.left(r), l);
  EXPECT_EQ(t.right(r), rr);
  EXPECT_EQ(t.parent(l), r);
  EXPECT_TRUE(t.IsLeaf(l));
  EXPECT_FALSE(t.IsLeaf(r));
  EXPECT_EQ(t.SubtreeSize(r), 3u);
}

TEST(BinaryTreeTest, PostorderChildrenFirst) {
  BinaryTree t = CompleteTree(7, 3);
  std::vector<bool> seen(7, false);
  for (NodeId v : t.Postorder()) {
    if (t.left(v) != kNoNode) {
      EXPECT_TRUE(seen[t.left(v)]);
    }
    if (t.right(v) != kNoNode) {
      EXPECT_TRUE(seen[t.right(v)]);
    }
    seen[v] = true;
  }
  EXPECT_EQ(t.Postorder().size(), 7u);
}

TEST(BinaryTreeTest, AncestorOrSelf) {
  BinaryTree t = CompleteTree(7, 2);
  EXPECT_TRUE(t.IsAncestorOrSelf(0, 0));
  EXPECT_TRUE(t.IsAncestorOrSelf(0, 6));
  EXPECT_TRUE(t.IsAncestorOrSelf(1, 4));
  EXPECT_FALSE(t.IsAncestorOrSelf(1, 5));
  EXPECT_FALSE(t.IsAncestorOrSelf(4, 1));
}

TEST(BinaryTreeTest, MultipleRootsRejected) {
  BinaryTree t;
  t.AddNode(0);
  t.AddNode(0);
  EXPECT_FALSE(t.Finalize().ok());
}

TEST(BinaryTreeTest, EmptyTreeRejected) {
  BinaryTree t;
  EXPECT_FALSE(t.Finalize().ok());
}

TEST(BinaryTreeTest, ChainShape) {
  BinaryTree t = ChainTree(5, 2);
  ASSERT_TRUE(t.root() == 0);
  EXPECT_EQ(t.SubtreeSize(0), 5u);
  NodeId v = 0;
  size_t depth = 0;
  while (t.left(v) != kNoNode) {
    v = t.left(v);
    ++depth;
  }
  EXPECT_EQ(depth, 4u);
}

TEST(BinaryTreeTest, RandomTreeIsValid) {
  Rng rng(2);
  for (size_t n : {1, 2, 17, 100}) {
    BinaryTree t = RandomBinaryTree(n, 4, rng);
    EXPECT_EQ(t.size(), n);
    EXPECT_EQ(t.Postorder().size(), n);
    EXPECT_EQ(t.SubtreeSize(t.root()), n);
    for (NodeId v = 0; v < n; ++v) EXPECT_LT(t.label(v), 4u);
  }
}

TEST(BinaryTreeTest, SubtreeSizesConsistent) {
  Rng rng(4);
  BinaryTree t = RandomBinaryTree(60, 2, rng);
  for (NodeId v = 0; v < t.size(); ++v) {
    size_t expected = 1;
    if (t.left(v) != kNoNode) expected += t.SubtreeSize(t.left(v));
    if (t.right(v) != kNoNode) expected += t.SubtreeSize(t.right(v));
    EXPECT_EQ(t.SubtreeSize(v), expected);
  }
}

}  // namespace
}  // namespace qpwm
