// Block interleaver between codeword order and channel (pair-group) order.
//
// Structural attacks are *bursty*: a dropped subtree, a shipped table slice,
// or a deleted page takes out a contiguous run of pair groups at once. If
// codewords occupied contiguous group ranges, one burst would concentrate
// all its erasures in a single codeword and exceed its correction radius.
// The interleaver stripes codewords across the channel — codeword c, symbol
// j lands in group j * depth + c — so a burst of length L costs every
// codeword at most ceil(L / depth) symbols, which is what the per-block
// correction radius is sized for.
//
// Depth 1 (or a single codeword) degenerates to the identity permutation,
// which keeps the uncoded path's channel layout untouched.
#ifndef QPWM_CODING_INTERLEAVER_H_
#define QPWM_CODING_INTERLEAVER_H_

#include <cstddef>

#include "qpwm/util/check.h"

namespace qpwm {

/// Bijection between codeword-order symbol indices and channel slots for
/// `depth` codewords of `block_len` symbols each.
class BlockInterleaver {
 public:
  BlockInterleaver(size_t depth, size_t block_len)
      : depth_(depth), block_len_(block_len) {
    QPWM_CHECK_GE(depth, 1u);
    QPWM_CHECK_GE(block_len, 1u);
  }

  size_t size() const { return depth_ * block_len_; }

  /// Channel slot of codeword-order index i (= codeword i / block_len,
  /// symbol i % block_len).
  size_t Spread(size_t i) const {
    QPWM_CHECK(i < size());
    const size_t codeword = i / block_len_;
    const size_t symbol = i % block_len_;
    return symbol * depth_ + codeword;
  }

  /// Codeword-order index served by channel slot s (inverse of Spread).
  size_t Gather(size_t slot) const {
    QPWM_CHECK(slot < size());
    const size_t symbol = slot / depth_;
    const size_t codeword = slot % depth_;
    return codeword * block_len_ + symbol;
  }

 private:
  size_t depth_;
  size_t block_len_;
};

}  // namespace qpwm

#endif  // QPWM_CODING_INTERLEAVER_H_
