// qpwm_lint — project-invariant static analysis for the qpwm tree.
//
// The scheme's guarantees only hold if every fallible step is checked and
// every report is reproducible. This tool machine-enforces three invariant
// families that the compiler alone cannot (or that we want diagnosed before
// codegen):
//
//   error-discipline
//     discarded-status   a statement that calls a Status/Result-returning
//                        function and drops the value (incl. `(void)` casts)
//     nodiscard-status   a header declaration returning Status/Result<T>
//                        without [[nodiscard]]
//     raw-status         Status(StatusCode..., ...) constructed outside the
//                        factories in util/status.h
//     bare-abort         abort/terminate/quick_exit/_Exit outside
//                        util/check.h / util/status.cc
//     bare-throw         `throw` anywhere (recoverable errors are Status;
//                        programmer errors are QPWM_CHECK)
//
//   determinism
//     nondeterministic-random
//                        rand/srand/std::random_device/time()/mt19937/
//                        default_random_engine outside util/random — all
//                        randomness flows through the seeded Rng
//     unordered-iter     range-for over an unordered_{map,set} — hash-order
//                        iteration feeding JSON reports, hashes or canonical
//                        forms breaks byte-identical output
//
//   parallel hygiene
//     parallel-mutation  a ParallelFor/ParallelMap/ParallelBlocks body that
//                        mutates state declared outside the lambda without
//                        the per-index slot pattern (`out[i] = ...`)
//
//   flat storage
//     legacy-tuple-vector
//                        a by-value std::vector<Tuple> declaration in library
//                        code (src/qpwm/) outside structure/ — tuples live in
//                        the relations' flat CSR store; hot paths should read
//                        them through TupleRef/TupleList views instead of
//                        materializing rows (advisory: cold paths allowlist
//                        with a reason)
//
// Findings on a line can be waived with a trailing (or immediately
// preceding) comment:  // qpwm-lint: allow(rule-id[,rule-id...]) — reason
//
// The analysis is a tokenizer plus pattern rules, not a full parser: it is
// deliberately conservative, and the allowlist is the escape hatch for the
// few sites where hash-order or shared state is provably benign.
#ifndef QPWM_TOOLS_LINT_LINT_H_
#define QPWM_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace qpwm::lint {

// --- Rule ids ---------------------------------------------------------------

inline constexpr char kDiscardedStatus[] = "discarded-status";
inline constexpr char kNodiscardStatus[] = "nodiscard-status";
inline constexpr char kRawStatus[] = "raw-status";
inline constexpr char kBareAbort[] = "bare-abort";
inline constexpr char kBareThrow[] = "bare-throw";
inline constexpr char kNondeterministicRandom[] = "nondeterministic-random";
inline constexpr char kUnorderedIter[] = "unordered-iter";
inline constexpr char kParallelMutation[] = "parallel-mutation";
inline constexpr char kLegacyTupleVector[] = "legacy-tuple-vector";

/// All rule ids, for --help and allow() validation.
const std::vector<std::string>& AllRules();

/// True for the advisory rules that only fail the run under --strict.
bool IsAdvisoryRule(std::string_view rule);

// --- Lexer ------------------------------------------------------------------

struct Token {
  enum class Kind {
    kIdent,   // identifiers and keywords
    kNumber,  // numeric literals
    kPunct,   // punctuation; `::` is a single token
    kAttr,    // a whole [[...]] attribute, text = inner content
  };
  Kind kind;
  std::string text;
  int line;
};

/// One tokenized source file. String/char literals and preprocessor
/// directives produce no tokens; comments contribute only allow() pragmas,
/// and #include "..." directives are recorded for cross-file name scoping.
struct FileScan {
  std::string path;
  std::vector<Token> tokens;
  // Pragma on line L waives the listed rules on lines L and L+1.
  std::map<int, std::set<std::string>> allows;
  // Quoted-include paths, as written (e.g. "qpwm/util/status.h").
  std::vector<std::string> includes;
};

/// Tokenizes `src`; never fails (unterminated constructs end the scan).
FileScan ScanSource(std::string path, std::string_view src);

// --- Analysis ---------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Cross-file context built in a first pass over every linted file.
struct LintContext {
  // Function names declared (anywhere in the set) to return Status or
  // Result<...>; calls to these may not discard the value. Project-wide, so
  // function names must be collision-free across the tree (rename rather
  // than allowlist when two unrelated APIs share a name).
  std::set<std::string> status_apis;
  // Variable/member names declared with an unordered_{map,set} type, keyed
  // by the normalized path of the declaring file. A file sees its own names
  // plus those of headers it #includes — hash-order iteration over a member
  // is caught in the .cc that iterates it without `map`-like names leaking
  // between unrelated files.
  std::map<std::string, std::set<std::string>> unordered_by_file;
};

/// Pass 1: records Status-returning function names and unordered-typed
/// variable names from `scan` into `ctx`.
void CollectContext(const FileScan& scan, LintContext& ctx);

/// Pass 2: runs every rule over `scan`, appending findings (already filtered
/// through the file's allow() pragmas).
void AnalyzeFile(const FileScan& scan, const LintContext& ctx,
                 std::vector<Finding>& out);

// --- Driver -----------------------------------------------------------------

struct DriverOptions {
  bool strict = false;
  std::string root = ".";               // tree to walk when no paths given
  std::string compile_commands;         // optional compile_commands.json
  std::string report;                   // optional JSON report path
  std::vector<std::string> paths;       // explicit files/dirs to lint
};

struct DriverResult {
  std::vector<Finding> errors;    // fail the run
  std::vector<Finding> warnings;  // advisory (errors under --strict)
  size_t files_scanned = 0;
};

/// Collects the file set (explicit paths, else compile_commands + a walk of
/// src/tools/tests/bench/examples under root), runs both passes, and splits
/// findings by severity. Returns false on I/O errors (unreadable
/// compile_commands or an explicit path that does not exist).
bool RunLint(const DriverOptions& opt, DriverResult& result);

/// Serializes findings as a JSON report. Returns false if unwritable.
bool WriteReport(const std::string& path, const DriverResult& result);

}  // namespace qpwm::lint

#endif  // QPWM_TOOLS_LINT_LINT_H_
