// Determinism contract of the detection serving layer: observations and
// detections are bit-identical whether answers are served batched or one call
// at a time, through dense weight views or sparse WeightMap lookups, and for
// any thread count of the multi-suspect fan-out. Also covers the dense-view
// staleness rules on HonestServer and the batched TamperedAnswerServer.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/answers.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/parser.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/tree/mso.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// Restores the configured thread count even when a test fails mid-way.
class ThreadGuard {
 public:
  ThreadGuard() = default;
  ~ThreadGuard() { SetParallelThreads(0); }
};

// A planned local-scheme workload shared by the detection tests.
struct LocalWorkload {
  Structure g;
  std::unique_ptr<ParametricQuery> query;
  std::optional<QueryIndex> index;
  std::optional<WeightMap> weights;
  std::optional<LocalScheme> scheme;

  static LocalWorkload Build(uint64_t seed, size_t n = 400) {
    LocalWorkload wl;
    Rng rng(seed);
    wl.g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
    wl.query = AtomQuery::Adjacency("E");
    wl.index.emplace(wl.g, *wl.query, AllParams(wl.g, 1));
    wl.weights.emplace(RandomWeights(wl.g, 1000, 9999, rng));
    LocalSchemeOptions opts;
    opts.epsilon = 0.25;
    opts.key = {seed, seed + 1};
    opts.encoding = PairEncoding::kAntipodal;
    wl.scheme.emplace(LocalScheme::Plan(*wl.index, opts).ValueOrDie());
    return wl;
  }
};

void ExpectSameAnswers(const AnswerSet& a, const AnswerSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].element, b[i].element) << "row " << i;
    EXPECT_EQ(a[i].weight, b[i].weight) << "row " << i;
  }
}

void ExpectSameObservations(const std::vector<PairObservation>& a,
                            const std::vector<PairObservation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].erased, b[i].erased) << "pair " << i;
    if (!a[i].erased && !b[i].erased) {
      EXPECT_EQ(a[i].delta, b[i].delta) << "pair " << i;
    }
  }
}

void ExpectSameDetections(const AdversarialDetection& a,
                          const AdversarialDetection& b) {
  ASSERT_EQ(a.mark.size(), b.mark.size());
  for (size_t i = 0; i < a.mark.size(); ++i) {
    EXPECT_EQ(a.mark.Get(i), b.mark.Get(i)) << "bit " << i;
  }
  EXPECT_EQ(a.margins, b.margins);
  EXPECT_EQ(a.min_margin, b.min_margin);
  EXPECT_EQ(a.group_sizes, b.group_sizes);
  EXPECT_EQ(a.bit_erased, b.bit_erased);
  EXPECT_EQ(a.pairs_erased, b.pairs_erased);
  EXPECT_EQ(a.bits_recovered, b.bits_recovered);
  EXPECT_EQ(a.bits_erased, b.bits_erased);
}

const std::vector<DetectOptions> kAllOptionCombos = {
    {/*batch_answers=*/false, /*dense_views=*/false},
    {/*batch_answers=*/false, /*dense_views=*/true},
    {/*batch_answers=*/true, /*dense_views=*/false},
    {/*batch_answers=*/true, /*dense_views=*/true},
};

// --- Dense weight views ----------------------------------------------------

TEST(DenseViewTest, MatchesSparseReads) {
  LocalWorkload wl = LocalWorkload::Build(11);
  const QueryIndex& index = *wl.index;
  const WeightMap& weights = *wl.weights;
  DenseWeightView view(index, weights);
  ASSERT_EQ(view.size(), index.num_active());
  for (size_t w = 0; w < index.num_active(); ++w) {
    ASSERT_EQ(view.at(w), weights.Get(index.active_element(w)));
  }
  for (size_t a = 0; a < index.num_params(); ++a) {
    ASSERT_EQ(index.SumWeights(a, view), index.SumWeights(a, weights));
    ExpectSameAnswers(index.AnswersFor(a, view), index.AnswersFor(a, weights));
  }
}

TEST(DenseViewTest, HonestServerDenseAgreesWithSparseIncludingOutOfDomain) {
  Rng rng(12);
  Structure g = RandomBoundedDegreeGraph(200, 3, 600, false, rng);
  auto query = AtomQuery::Adjacency("E");
  // Register only part of the domain so some parameters are served through
  // the direct-evaluation fallback rather than the index (and its view).
  std::vector<Tuple> domain = AllParams(g, 1);
  std::vector<Tuple> held_out(domain.end() - 20, domain.end());
  domain.resize(domain.size() - 20);
  QueryIndex index(g, *query, domain);
  WeightMap weights = RandomWeights(g, 1000, 9999, rng);

  HonestServer dense(index, weights, /*use_dense_view=*/true);
  HonestServer sparse(index, weights, /*use_dense_view=*/false);
  ASSERT_TRUE(dense.has_dense_view());
  ASSERT_FALSE(sparse.has_dense_view());
  for (const Tuple& p : domain) {
    ExpectSameAnswers(dense.Answer(p), sparse.Answer(p));
  }
  for (const Tuple& p : held_out) {
    ASSERT_FALSE(index.FindParam(p).ok());
    ExpectSameAnswers(dense.Answer(p), sparse.Answer(p));
  }
}

TEST(DenseViewTest, MutationInvalidatesViewAndRefreshRestoresIt) {
  LocalWorkload wl = LocalWorkload::Build(13, 100);
  const QueryIndex& index = *wl.index;
  HonestServer server(index, *wl.weights);
  ASSERT_TRUE(server.has_dense_view());
  ASSERT_GT(index.num_active(), 0u);

  // Mutate the weight of some active element: the snapshot must be dropped
  // (a stale view would serve the old weight).
  const Tuple target = index.active_element(0);
  const Weight bumped = wl.weights->Get(target) + 17;
  server.mutable_weights().Set(target, bumped);
  EXPECT_FALSE(server.has_dense_view());

  const Tuple witness = index.param(index.ParamsContaining(0)[0]);
  auto find_weight = [&](const AnswerSet& rows) -> std::optional<Weight> {
    for (const AnswerRow& row : rows) {
      if (row.element == target) return row.weight;
    }
    return std::nullopt;
  };
  ASSERT_EQ(find_weight(server.Answer(witness)), bumped);

  server.RefreshView();
  EXPECT_TRUE(server.has_dense_view());
  ASSERT_EQ(find_weight(server.Answer(witness)), bumped);
}

TEST(DenseViewTest, BatchedDetectionSeesMutationAfterRefresh) {
  // Full detection (not just answer reads) through the batched + dense fast
  // path after a server-side mutation and RefreshView: the refreshed view
  // must serve the mutated weights, bit-identically to a fresh server over
  // the same weights under every serving-option combination.
  LocalWorkload wl = LocalWorkload::Build(14, 300);
  const QueryIndex& index = *wl.index;
  AdversarialScheme adv(*wl.scheme, 3);
  ASSERT_GT(adv.CapacityBits(), 0u);
  Rng rng(140);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(*wl.weights, msg);

  HonestServer server(index, marked);
  ASSERT_TRUE(server.has_dense_view());
  const DetectOptions batched{/*batch_answers=*/true, /*dense_views=*/true};
  AdversarialDetection before =
      adv.Detect(*wl.weights, server, batched).ValueOrDie();
  EXPECT_EQ(before.mark, msg);

  // Mutate a mark-carrying weight in place; the stale view is dropped and a
  // refresh rebuilds it over the mutated map.
  const Tuple target =
      index.active_element(wl.scheme->marking().pairs()[0].plus);
  const Weight bumped = marked.Get(target) + 1000;
  server.mutable_weights().Set(target, bumped);
  EXPECT_FALSE(server.has_dense_view());
  server.RefreshView();
  EXPECT_TRUE(server.has_dense_view());
  AdversarialDetection after =
      adv.Detect(*wl.weights, server, batched).ValueOrDie();

  WeightMap mutated = marked;
  mutated.Set(target, bumped);
  for (const DetectOptions& opts : kAllOptionCombos) {
    HonestServer fresh(index, mutated);
    ExpectSameDetections(
        after, adv.Detect(*wl.weights, fresh, opts).ValueOrDie());
  }
}

// --- Batched answer serving ------------------------------------------------

TEST(BatchDetectTest, TamperedBatchMatchesPerCallAnswers) {
  LocalWorkload wl = LocalWorkload::Build(21, 200);
  const QueryIndex& index = *wl.index;
  HonestServer base(index, *wl.weights);
  TamperedAnswerServer server(base);
  Rng rng(210);
  for (const Tuple& t : SubsetDeletionAttack(index, 0.3, rng)) server.Erase(t);
  TupleInsertionAttack(server, index, base.weights(), index.num_active() / 4, rng);
  ASSERT_GT(server.num_erased(), 0u);

  const std::vector<Tuple>& params = index.domain();
  std::vector<AnswerSet> batch = server.AnswerBatch(params);
  ASSERT_EQ(batch.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    ExpectSameAnswers(batch[i], server.Answer(params[i]));
  }
}

TEST(BatchDetectTest, LocalObservationsIdenticalAcrossOptions) {
  LocalWorkload wl = LocalWorkload::Build(22);
  const LocalScheme& scheme = *wl.scheme;
  ASSERT_GT(scheme.CapacityBits(), 0u);

  BitVec mark(scheme.CapacityBits());
  Rng rng(220);
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
  WeightMap marked = scheme.Embed(*wl.weights, mark);

  HonestServer base(*wl.index, std::move(marked));
  TamperedAnswerServer server(base);
  for (const Tuple& t : SubsetDeletionAttack(*wl.index, 0.3, rng)) server.Erase(t);
  TupleInsertionAttack(server, *wl.index, base.weights(),
                       wl.index->num_active() / 4, rng);

  const std::vector<PairObservation> reference =
      scheme.ObservePairs(*wl.weights, server, kAllOptionCombos[0]);
  size_t erased = 0;
  for (const PairObservation& obs : reference) erased += obs.erased;
  ASSERT_GT(erased, 0u) << "attack too weak to exercise the erasure path";
  ASSERT_LT(erased, reference.size()) << "attack erased every pair";

  for (const DetectOptions& options : kAllOptionCombos) {
    ExpectSameObservations(reference,
                           scheme.ObservePairs(*wl.weights, server, options));
  }
}

TEST(BatchDetectTest, AdversarialDetectionIdenticalAcrossOptions) {
  LocalWorkload wl = LocalWorkload::Build(23);
  AdversarialScheme adv(*wl.scheme, 5);
  ASSERT_GT(adv.CapacityBits(), 0u);

  BitVec msg(adv.CapacityBits());
  Rng rng(230);
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(*wl.weights, msg);

  HonestServer base(*wl.index, std::move(marked));
  TamperedAnswerServer server(base);
  for (const Tuple& t : SubsetDeletionAttack(*wl.index, 0.3, rng)) server.Erase(t);

  const AdversarialDetection reference =
      adv.Detect(*wl.weights, server, kAllOptionCombos[0]).ValueOrDie();
  EXPECT_GT(reference.pairs_erased, 0u);
  for (const DetectOptions& options : kAllOptionCombos) {
    ExpectSameDetections(reference,
                         adv.Detect(*wl.weights, server, options).ValueOrDie());
  }
}

TEST(BatchDetectTest, TreeObservationsIdenticalAcrossOptions) {
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  Dta query = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma, {"u", "v"})
                  .ValueOrDie()
                  .dta;
  Rng rng(24);
  BinaryTree t = RandomBinaryTree(400, 3, rng);
  TreeSchemeOptions opts;
  opts.key = {0xAB, 0xCD};
  opts.encoding = PairEncoding::kAntipodal;
  TreeScheme scheme = TreeScheme::Plan(t, t.labels(), 3, query, 1, opts).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);

  WeightMap weights(1, t.size());
  for (NodeId v = 0; v < t.size(); ++v) weights.SetElem(v, 100 + v % 800);
  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
  HonestTreeServer server(t, t.labels(), 3, query, 1, scheme.Embed(weights, mark));

  const std::vector<PairObservation> reference =
      scheme.ObservePairs(weights, server, kAllOptionCombos[0]);
  for (const DetectOptions& options : kAllOptionCombos) {
    ExpectSameObservations(reference,
                           scheme.ObservePairs(weights, server, options));
  }
}

// --- Parallel multi-suspect fan-out ----------------------------------------

TEST(ParallelDetectTest, DetectManyIdenticalAcrossThreads) {
  ThreadGuard guard;
  LocalWorkload wl = LocalWorkload::Build(31);
  AdversarialScheme adv(*wl.scheme, 5);
  ASSERT_GT(adv.CapacityBits(), 0u);

  // A mixed lineup: distinct messages per suspect, half of them structurally
  // attacked, to make sure per-suspect state never bleeds across the pool.
  constexpr size_t kSuspects = 6;
  std::vector<std::unique_ptr<HonestServer>> bases;
  std::vector<std::unique_ptr<TamperedAnswerServer>> tampered;
  std::vector<const AnswerServer*> suspects;
  for (size_t s = 0; s < kSuspects; ++s) {
    Rng rng(310 + s);
    BitVec msg(adv.CapacityBits());
    for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
    bases.push_back(
        std::make_unique<HonestServer>(*wl.index, adv.Embed(*wl.weights, msg)));
    if (s % 2 == 0) {
      suspects.push_back(bases.back().get());
      continue;
    }
    tampered.push_back(std::make_unique<TamperedAnswerServer>(*bases.back()));
    for (const Tuple& t : SubsetDeletionAttack(*wl.index, 0.25, rng)) {
      tampered.back()->Erase(t);
    }
    suspects.push_back(tampered.back().get());
  }

  SetParallelThreads(1);
  std::vector<AdversarialDetection> reference;
  for (const AnswerServer* s : suspects) {
    reference.push_back(adv.Detect(*wl.weights, *s).ValueOrDie());
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    for (const DetectOptions& options : kAllOptionCombos) {
      std::vector<AdversarialDetection> out =
          adv.DetectMany(*wl.weights, suspects, options);
      ASSERT_EQ(out.size(), reference.size());
      for (size_t s = 0; s < out.size(); ++s) {
        ExpectSameDetections(reference[s], out[s]);
      }
    }
  }
}

}  // namespace
}  // namespace qpwm
