#include "qpwm/structure/structure.h"

#include <algorithm>
#include <atomic>
#include <numeric>

namespace qpwm {

uint64_t GenerationStamp::Next() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void Relation::RebuildSlots(size_t capacity_for) const {
  size_t want = 16;
  while (want < 2 * (capacity_for + 1)) want <<= 1;
  slots_.assign(want, kEmptySlot);
  indexed_count_ = 0;
  for (size_t i = 0; i < count_; ++i) InsertSlot(i);
  indexed_count_ = count_;
}

void Relation::InsertSlot(size_t index) const {
  const size_t mask = slots_.size() - 1;
  size_t pos = static_cast<size_t>(HashSpan(flat_.data() + index * arity_)) & mask;
  while (slots_[pos] != kEmptySlot) pos = (pos + 1) & mask;
  slots_[pos] = static_cast<uint32_t>(index);
}

bool Relation::ContainsSpan(const ElemId* d) const {
  if (indexed_count_ != count_ || slots_.empty()) RebuildSlots(count_);
  const size_t mask = slots_.size() - 1;
  size_t pos = static_cast<size_t>(HashSpan(d)) & mask;
  while (slots_[pos] != kEmptySlot) {
    if (EqualSpan(slots_[pos], d)) return true;
    pos = (pos + 1) & mask;
  }
  return false;
}

void Relation::AddSpan(const ElemId* d) {
  // Keep the probe table at most half full so lookups stay O(1).
  if (indexed_count_ != count_ || slots_.size() < 2 * (count_ + 1)) {
    RebuildSlots(count_ + 1);
  }
  const size_t mask = slots_.size() - 1;
  size_t pos = static_cast<size_t>(HashSpan(d)) & mask;
  while (slots_[pos] != kEmptySlot) {
    if (EqualSpan(slots_[pos], d)) return;  // deduplicated
    pos = (pos + 1) & mask;
  }
  slots_[pos] = static_cast<uint32_t>(count_);
  flat_.insert(flat_.end(), d, d + arity_);
  ++count_;
  ++indexed_count_;
}

void Relation::SetTuplesUnchecked(const std::vector<Tuple>& tuples) {
  flat_.clear();
  flat_.reserve(tuples.size() * arity_);
  for (const Tuple& t : tuples) {
    QPWM_CHECK_EQ(t.size(), arity_);
    flat_.insert(flat_.end(), t.begin(), t.end());
  }
  count_ = tuples.size();
  slots_.clear();
  indexed_count_ = 0;
}

void Relation::SwapFlatUnchecked(std::vector<ElemId>& flat) {
  QPWM_CHECK(arity_ > 0 || flat.empty());
  flat_.swap(flat);
  count_ = arity_ == 0 ? 0 : flat_.size() / arity_;
  QPWM_CHECK_EQ(count_ * arity_, flat_.size());
  slots_.clear();
  indexed_count_ = 0;
}

void Relation::Seal() {
  if (count_ > 1 && arity_ > 0) {
    if (arity_ == 1) {
      std::sort(flat_.begin(), flat_.end());
    } else {
      // Record sort via an index permutation, gathered into a fresh buffer
      // (records are small; a gather beats in-place cycle chasing).
      std::vector<uint32_t> order(count_);
      std::iota(order.begin(), order.end(), 0u);
      const ElemId* base = flat_.data();
      const uint32_t a = arity_;
      std::sort(order.begin(), order.end(), [base, a](uint32_t x, uint32_t y) {
        return std::lexicographical_compare(base + x * a, base + (x + 1) * a,
                                            base + y * a, base + (y + 1) * a);
      });
      std::vector<ElemId> sorted;
      sorted.reserve(flat_.size());
      for (uint32_t idx : order) {
        sorted.insert(sorted.end(), base + idx * a, base + (idx + 1) * a);
      }
      flat_ = std::move(sorted);
    }
    // Record positions changed; the membership index rebuilds on next use.
    slots_.clear();
    indexed_count_ = 0;
  }
}

void Relation::ClearKeepCapacity() {
  flat_.clear();
  count_ = 0;
  slots_.clear();
  indexed_count_ = 0;
}

Structure::Structure(Signature sig, size_t universe_size)
    : sig_(std::move(sig)), n_(universe_size) {
  relations_.reserve(sig_.size());
  for (const auto& sym : sig_.symbols()) {
    relations_.emplace_back(sym.name, sym.arity);
  }
}

const Relation& Structure::relation(const std::string& name) const {
  auto idx = sig_.Find(name);
  QPWM_CHECK(idx.ok());
  return relations_[idx.value()];
}

void Structure::AddTuple(size_t rel, const Tuple& t) {
  QPWM_CHECK_LT(rel, relations_.size());
  for (ElemId e : t) QPWM_CHECK_LT(e, n_);
  gen_.Bump();
  relations_[rel].Add(t);
}

void Structure::AddTuple(const std::string& rel, const Tuple& t) {
  auto idx = sig_.Find(rel);
  QPWM_CHECK(idx.ok());
  AddTuple(idx.value(), t);
}

void Structure::Seal() {
  gen_.Bump();  // sorting reorders tuple indices cached per structure
  for (auto& r : relations_) r.Seal();
}

void Structure::ResetUniverse(size_t universe_size) {
  n_ = universe_size;
  for (auto& r : relations_) r.ClearKeepCapacity();
  element_names_.clear();
  name_index_.clear();
  gen_.Bump();
}

void Structure::SetElementName(ElemId e, std::string name) {
  QPWM_CHECK_LT(e, n_);
  if (element_names_.empty()) element_names_.resize(n_);
  name_index_[name] = e;
  element_names_[e] = std::move(name);
  // Names feed serialized reports and suspect re-alignment; a rename is a
  // mutation like any other, or pointer-keyed caches keep serving the old
  // identity.
  gen_.Bump();
}

const std::string& Structure::ElementName(ElemId e) const {
  static const std::string kEmpty;
  if (element_names_.empty() || e >= element_names_.size()) return kEmpty;
  return element_names_[e];
}

Result<ElemId> Structure::FindElement(const std::string& name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) return Status::NotFound("no element named '" + name + "'");
  return it->second;
}

size_t Structure::TotalTuples() const {
  size_t total = 0;
  for (const auto& r : relations_) total += r.size();
  return total;
}

size_t Structure::BytesResident() const {
  size_t total = relations_.capacity() * sizeof(Relation);
  for (const auto& r : relations_) total += r.BytesResident();
  return total;
}

IncidenceIndex::IncidenceIndex(const Structure& s) {
  const size_t n = s.universe_size();
  // Two-pass CSR build: count each element's entries (each distinct element
  // once per tuple even if it repeats there — arities are tiny, so the
  // repeat check is a linear scan over earlier positions), prefix-sum into
  // offsets, then fill with a per-element cursor. The fill visits tuples in
  // (relation, tuple index) order, so each element's entry list comes out
  // sorted exactly like the legacy per-element push_back build.
  offsets_.assign(n + 1, 0);
  auto first_occurrence = [](TupleRef t, size_t pos) {
    for (size_t q = 0; q < pos; ++q) {
      if (t[q] == t[pos]) return false;
    }
    return true;
  };
  for (size_t r = 0; r < s.num_relations(); ++r) {
    const TupleList tuples = s.relation(r).tuples();
    for (size_t ti = 0; ti < tuples.size(); ++ti) {
      const TupleRef t = tuples[ti];
      for (size_t pos = 0; pos < t.size(); ++pos) {
        if (first_occurrence(t, pos)) ++offsets_[t[pos] + 1];
      }
    }
  }
  for (size_t e = 0; e < n; ++e) offsets_[e + 1] += offsets_[e];
  entries_.resize(offsets_[n]);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (size_t r = 0; r < s.num_relations(); ++r) {
    const TupleList tuples = s.relation(r).tuples();
    for (size_t ti = 0; ti < tuples.size(); ++ti) {
      const TupleRef t = tuples[ti];
      for (size_t pos = 0; pos < t.size(); ++pos) {
        if (first_occurrence(t, pos)) {
          entries_[cursor[t[pos]]++] = {static_cast<uint32_t>(r),
                                       static_cast<uint32_t>(ti)};
        }
      }
    }
  }
}

}  // namespace qpwm
