// Attacker models for the adversarial setting. Two tiers:
//
// Tier 1 (Fact 1's assumptions): bounded-distortion weight tampering by a
// malicious server that does not know the secret pair positions (limited
// knowledge). These attacks transform a weight map and leave the structure
// alone.
//
// Tier 2 (structural attacks, beyond Fact 1): the attacker deletes tuples,
// drops subtrees, ships a subset, or inserts fresh rows. These attacks
// transform the *served answers* — deleted elements vanish from every answer,
// inserted rows show up where the attacker planted them. Detection must treat
// missing pair elements as erasures (see PairObservation) and degrade
// gracefully instead of failing outright.
#ifndef QPWM_CORE_ATTACK_H_
#define QPWM_CORE_ATTACK_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qpwm/core/answers.h"
#include "qpwm/core/pairs.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/random.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Default RNG seed for attacks that are not given one explicitly. Attacks
/// must never draw from ambient entropy: a campaign report that records the
/// spec (including this seed) replays the identical attack.
inline constexpr uint64_t kDefaultAttackSeed = 1;

// --- Tier 1: weight tampering ----------------------------------------------

/// Adds an independent uniform integer in [-c, c] to every weight.
/// Realizes a c'-local distortion; the induced global distortion is measured
/// by the caller.
WeightMap UniformNoiseAttack(const WeightMap& marked, Weight c, Rng& rng);

/// Flips each weight by +-1 with probability `flip_prob` (random bit-jitter,
/// the closest analogue of LSB-resetting attacks on [1]).
WeightMap JitterAttack(const WeightMap& marked, double flip_prob, Rng& rng);

/// Rounds every weight to the nearest multiple of `granularity` (>= 1) —
/// a deterministic "cleaning" attack. Ties round down.
WeightMap RoundingAttack(const WeightMap& marked, Weight granularity);

/// Guessing attack: the attacker picks `guesses` random element pairs and
/// applies the inverse (+1, -1) trick hoping to hit the owner's pairs. With
/// limited knowledge the hit probability per guess is ~ 1 / |W|^2.
WeightMap GuessingPairAttack(const WeightMap& marked, const QueryIndex& index,
                             size_t guesses, Rng& rng);

// --- Collusion attacks -------------------------------------------------------
//
// Servers holding several differently-marked copies of the same data forge
// one hybrid — the auto-collusion risk Section 5 raises against naive
// re-marking after updates, and the threat model fingerprint tracing
// (coding/fingerprint.h) is provisioned against.

/// Shared precondition of every collusion attack: at least one copy, all over
/// the same weight domain (copies of different subsets must not be silently
/// merged into garbage). Violations are kInvalidArgument.
[[nodiscard]] Status CheckCollusionCopies(const std::vector<const WeightMap*>& copies);

/// One collusion strategy: a coalition pools its marked copies and forges a
/// hybrid weight map. The domain contract (CheckCollusionCopies) is enforced
/// in the base class, once, for every strategy.
class CollusionAttack {
 public:
  virtual ~CollusionAttack() = default;

  /// Stable name, echoed into campaign reports ("averaging", "interleave:64").
  virtual std::string Name() const = 0;

  /// Forges the hybrid. Deterministic given `rng`'s state; strategies that
  /// need no randomness leave `rng` untouched.
  [[nodiscard]] Result<WeightMap> Forge(const std::vector<const WeightMap*>& copies,
                                        Rng& rng) const;

 private:
  /// Strategy body; only ever sees coalitions that passed the domain check.
  virtual WeightMap ForgeValid(const std::vector<const WeightMap*>& copies,
                               Rng& rng) const = 0;
};

/// Per-weight average, rounding half toward the first copy's side. With
/// enough copies the pair deltas wash out.
class AveragingCollusion : public CollusionAttack {
 public:
  std::string Name() const override { return "averaging"; }

 private:
  WeightMap ForgeValid(const std::vector<const WeightMap*>& copies,
                       Rng& rng) const override;
};

/// Per-weight lower median: with three or more copies the median kills any
/// pair delta that only a minority of copies carries — a strictly stronger
/// wash-out than averaging for odd counts.
class MedianCollusion : public CollusionAttack {
 public:
  std::string Name() const override { return "median"; }

 private:
  WeightMap ForgeValid(const std::vector<const WeightMap*>& copies,
                       Rng& rng) const override;
};

/// Per-weight extremes: each weight becomes the minimum or maximum across
/// copies, chosen by a coin. Models colluders who prefer plausible-looking
/// outliers over smoothing; marked deltas survive with probability 1/2 per
/// pair side instead of being averaged away.
class MinMaxCollusion : public CollusionAttack {
 public:
  std::string Name() const override { return "minmax"; }

 private:
  WeightMap ForgeValid(const std::vector<const WeightMap*>& copies,
                       Rng& rng) const override;
};

/// Segment-interleaving copy-paste: the weight domain, in its deterministic
/// ForEach order, is cut into runs of `segment_len` consecutive weights and
/// each run is copied wholesale from one coalition member drawn from `rng`.
/// Models colluders splicing whole regions (pages, table slices, subtrees)
/// instead of merging per weight — every weight is an authentic marked value,
/// but no single codeword is present end to end.
class InterleavingCollusion : public CollusionAttack {
 public:
  explicit InterleavingCollusion(size_t segment_len = 64);
  std::string Name() const override;
  size_t segment_len() const { return segment_len_; }

 private:
  WeightMap ForgeValid(const std::vector<const WeightMap*>& copies,
                       Rng& rng) const override;

  size_t segment_len_;
};

/// Specs understood by MakeCollusionAttack, for campaign grids and usage text.
const std::vector<std::string>& KnownCollusionSpecs();

/// Builds a collusion attack from a spec string: "averaging", "median",
/// "minmax", or "interleave[:LEN]" (segment length, default 64). Unknown
/// specs are kInvalidArgument.
[[nodiscard]] Result<std::unique_ptr<CollusionAttack>> MakeCollusionAttack(
    const std::string& spec);

/// Free-function form of AveragingCollusion (rng-free strategy, fixed seed).
[[nodiscard]] Result<WeightMap> AveragingCollusionAttack(const std::vector<const WeightMap*>& copies);

/// Free-function form of MedianCollusion.
[[nodiscard]] Result<WeightMap> MedianCollusionAttack(const std::vector<const WeightMap*>& copies);

/// Free-function form of MinMaxCollusion.
[[nodiscard]] Result<WeightMap> MinMaxCollusionAttack(const std::vector<const WeightMap*>& copies,
                                        Rng& rng);

// --- Tier 2: structural attacks --------------------------------------------

/// A suspect server whose data was structurally tampered with: erased
/// elements vanish from every answer, inserted rows are appended to the
/// answers the attacker planted them in. The paper's indirect-access threat
/// model is preserved — detection still only sees answers. The base server
/// must outlive the wrapper. Batch requests are forwarded to the base as a
/// batch (AnswerAll) and tampered per answer, so a batching base keeps its
/// amortization under attack.
class TamperedAnswerServer : public BatchAnswerServer {
 public:
  explicit TamperedAnswerServer(const AnswerServer& base) : base_(&base) {}

  /// Removes `element` from every answer (tuple deletion / subset shipping).
  void Erase(const Tuple& element) { erased_.insert(element); }

  /// Appends `row` to the answer of parameter `param` only.
  void InsertAt(const Tuple& param, AnswerRow row) {
    inserted_at_[param].push_back(std::move(row));
  }

  /// Appends `row` to every answer (an inserted tuple matching all queries).
  void InsertEverywhere(AnswerRow row) {
    inserted_everywhere_.push_back(std::move(row));
  }

  size_t num_erased() const { return erased_.size(); }

  AnswerSet Answer(const Tuple& params) const override;
  std::vector<AnswerSet> AnswerBatch(const std::vector<Tuple>& params) const override;

 private:
  /// Applies erasures and insertions for `params` to base rows, in place.
  void Tamper(const Tuple& params, AnswerSet& rows) const;

  const AnswerServer* base_;
  std::unordered_set<Tuple, TupleHash> erased_;
  std::unordered_map<Tuple, AnswerSet, TupleHash> inserted_at_;
  AnswerSet inserted_everywhere_;
};

/// Picks each element independently with probability `frac` (the generic
/// sampling step behind the deletion attacks).
std::vector<Tuple> SampleSubset(const std::vector<Tuple>& elements, double frac,
                                Rng& rng);

/// Subset-deletion attack: each active weighted element of the index is
/// deleted independently with probability `drop_frac`. Returns the deleted
/// element tuples; feed them into TamperedAnswerServer::Erase.
std::vector<Tuple> SubsetDeletionAttack(const QueryIndex& index, double drop_frac,
                                        Rng& rng);

/// A fake row and the parameter whose answer it is planted in.
struct FakeTuplePlacement {
  size_t param_idx;
  AnswerRow row;
};

/// SPSW-style fake-tuple generator: `count` fresh rows with plausible
/// weights (uniform over the marked map's observed min..max range), fresh
/// element ids beyond the original universe (mimicking genuinely new keys),
/// each targeted at a random parameter's answer. Per row the weight is drawn
/// before the target parameter — the draw order TupleInsertionAttack has
/// always used, so existing seeds replay identically. The update-stream
/// hostile mix reuses the rows and ignores the placements.
std::vector<FakeTuplePlacement> MakeFakeTupleRows(const QueryIndex& index,
                                                  const WeightMap& marked,
                                                  size_t count, Rng& rng);

/// Tuple-insertion attack: plants `count` fresh rows from MakeFakeTupleRows
/// into the chosen parameters' answers.
void TupleInsertionAttack(TamperedAnswerServer& server, const QueryIndex& index,
                          const WeightMap& marked, size_t count, Rng& rng);

/// Burst deletion: wipes the elements carrying a contiguous run of pair
/// groups. Groups are `redundancy` consecutive pairs of `pairs` (the channel
/// layout of AdversarialScheme); the run covers `region_frac` of all groups
/// at a start position drawn from `rng`. Models correlated structural loss —
/// a dropped subtree, a shipped table slice, a lost page — which takes out
/// neighboring mark carriers together instead of sampling them
/// independently. This is the burst pattern codeword interleaving is sized
/// against. Returns the element tuples to feed into
/// TamperedAnswerServer::Erase.
std::vector<Tuple> PairRegionDeletionAttack(const QueryIndex& index,
                                            const std::vector<WeightPair>& pairs,
                                            size_t redundancy, double region_frac,
                                            Rng& rng);

// --- Composed adversaries ----------------------------------------------------

/// One stacked adversary: every tier-1 value attack and tier-2 structural
/// attack this header defines, applied in a fixed order from a single
/// recorded seed. A field left at its default disables that stage.
struct ComposedAttackSpec {
  /// UniformNoiseAttack range (+-noise per weight); 0 = off.
  Weight noise = 0;
  /// JitterAttack flip probability; 0 = off.
  double jitter_prob = 0;
  /// RoundingAttack granularity; 0 = off (1 is the identity rounding).
  Weight rounding = 0;
  /// Independent per-element deletion probability (SubsetDeletionAttack).
  double deletion_frac = 0;
  /// Contiguous pair-group burst deletion (PairRegionDeletionAttack).
  double region_frac = 0;
  /// Spurious insertions as a fraction of the active set (TupleInsertionAttack).
  double insertion_frac = 0;
  /// Explicit RNG seed; recorded in campaign reports so every trial replays
  /// from the report alone.
  uint64_t seed = kDefaultAttackSeed;
};

/// The serving stack a composed attack produces: an owned honest server over
/// the value-tampered weights, wrapped in the structural tamperer. `server`
/// is the suspect detection should read from.
struct ComposedSuspect {
  std::unique_ptr<HonestServer> base;
  std::unique_ptr<TamperedAnswerServer> server;
  /// Elements structurally erased (region + independent deletion, deduped).
  size_t elements_erased = 0;
  /// Spurious rows planted.
  size_t rows_inserted = 0;
  /// The seed the stack was driven by (== spec.seed; recorded for reports).
  uint64_t seed = kDefaultAttackSeed;
};

/// Applies the full stack to `marked`: noise, jitter, rounding (value tier,
/// in that order), then region deletion, independent deletion, insertion
/// (structural tier). All stages draw from one Rng seeded with `spec.seed`,
/// so equal specs produce byte-identical suspects. `pairs` is the channel
/// pair layout region deletion targets; pass an empty vector when
/// `spec.region_frac` is 0.
ComposedSuspect ApplyComposedAttack(const QueryIndex& index,
                                    const std::vector<WeightPair>& pairs,
                                    size_t redundancy, const WeightMap& marked,
                                    const ComposedAttackSpec& spec);

}  // namespace qpwm

#endif  // QPWM_CORE_ATTACK_H_
