// Neighborhood isomorphism types of parameter tuples: the ~rho equivalence
// classes, their count ntp(rho, G), and one canonical representative per type
// (the paper's "canonical parameters" S).
#ifndef QPWM_STRUCTURE_TYPEMAP_H_
#define QPWM_STRUCTURE_TYPEMAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/structure/canon_cache.h"
#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/structure.h"

namespace qpwm {

/// Assigns isomorphism-type ids to tuples by the canonical form of their
/// rho-neighborhood. Type ids are dense, in first-seen order; the first tuple
/// seen of each type is kept as its canonical representative.
class NeighborhoodTyper {
 public:
  /// Canonical forms are memoized through `cache` (nullptr = no caching,
  /// every call canonicalizes from scratch). The default shares the
  /// process-wide cache.
  NeighborhoodTyper(const Structure& g, uint32_t rho,
                    CanonCache* cache = &CanonCache::Global());

  /// Type id of tuple `c` (computes and memoizes the canonical form).
  uint32_t TypeOf(const Tuple& c);

  /// Types a whole batch. Neighborhood extraction and canonicalization run
  /// in parallel (see util/parallel.h); type ids are interned serially in
  /// input order, so the result — ids, NumTypes(), representatives — is
  /// bit-identical to calling TypeOf on each tuple in order.
  std::vector<uint32_t> TypeAll(const std::vector<Tuple>& tuples);

  /// Number of distinct types seen so far — ntp(rho, G) once every tuple of
  /// the parameter domain has been typed.
  size_t NumTypes() const { return representatives_.size(); }

  /// Canonical representative tuple of a type.
  const Tuple& Representative(uint32_t type) const { return representatives_[type]; }

  uint32_t rho() const { return rho_; }
  const GaifmanGraph& gaifman() const { return gaifman_; }

 private:
  /// Canonical form of the rho-neighborhood of `c`, through the cache.
  std::string Canon(const Tuple& c) const;
  /// Interns a canonical form, registering `c` as representative when new.
  uint32_t Intern(std::string canon, const Tuple& c);

  const Structure& g_;
  uint32_t rho_;
  GaifmanGraph gaifman_;
  IncidenceIndex incidence_;
  CanonCache* cache_;
  std::unordered_map<std::string, uint32_t> canon_to_type_;
  std::vector<Tuple> representatives_;
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_TYPEMAP_H_
