// Fixture: the PR-3 CLI bug, minimized. The original code built a Structure
// inside a helper and returned relation(...).tuples() — a TupleList viewing
// the flat store of an object that died at the closing brace; the caller
// then read freed memory. view-escape (b) must flag this shape.
TupleList FirstRelationTuples() {
  Structure g = LoadFromDisk();
  return g.relation(0).tuples();
}
