// Fixture: clean stamp discipline — every mutator bumps the
// GenerationStamp, directly or through a same-class callee (the transitive
// closure the index computes). Must pass `qpwm_lint --strict`.
#include <vector>

namespace fx {

class Ledger {
 public:
  void Append(int v) {
    entries_.push_back(v);
    Touch();  // bumps transitively
  }
  void Clear() {
    entries_.clear();
    gen_.Bump();
  }
  int size() const { return static_cast<int>(entries_.size()); }

 private:
  void Touch() { gen_.Bump(); }

  std::vector<int> entries_;
  GenerationStamp gen_;
};

}  // namespace fx
