// Neighborhood isomorphism types of parameter tuples: the ~rho equivalence
// classes, their count ntp(rho, G), and one canonical representative per type
// (the paper's "canonical parameters" S).
#ifndef QPWM_STRUCTURE_TYPEMAP_H_
#define QPWM_STRUCTURE_TYPEMAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/structure/canon_cache.h"
#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/neighborhood.h"
#include "qpwm/structure/structure.h"

namespace qpwm {

/// Assigns isomorphism-type ids to tuples by the canonical form of their
/// rho-neighborhood. Type ids are dense, in first-seen order; the first tuple
/// seen of each type is kept as its canonical representative.
class NeighborhoodTyper {
 public:
  /// Canonical forms are memoized through `cache` (nullptr = no caching,
  /// every call canonicalizes from scratch). The default shares the
  /// process-wide cache. The cache must not be Clear()'d while this typer is
  /// live (it memoizes the cache's interned ids).
  NeighborhoodTyper(const Structure& g, uint32_t rho,
                    CanonCache* cache = &CanonCache::Global());

  /// Type id of tuple `c` (computes and memoizes the canonical form).
  /// Allocation-free once the member scratch is warm on the cached path.
  uint32_t TypeOf(const Tuple& c);

  /// Types a whole batch. Neighborhood extraction and canonicalization run
  /// in parallel (see util/parallel.h) with pooled per-worker scratch; type
  /// ids are interned serially in input order, so the result — ids,
  /// NumTypes(), representatives — is bit-identical to calling TypeOf on
  /// each tuple in order, for any thread count.
  std::vector<uint32_t> TypeAll(const std::vector<Tuple>& tuples);

  /// Number of distinct types seen so far — ntp(rho, G) once every tuple of
  /// the parameter domain has been typed.
  size_t NumTypes() const { return representatives_.size(); }

  /// Canonical representative tuple of a type.
  const Tuple& Representative(uint32_t type) const { return representatives_[type]; }

  uint32_t rho() const { return rho_; }
  const GaifmanGraph& gaifman() const { return gaifman_; }

 private:
  /// Canonical form of the rho-neighborhood of `c`, uncached string path.
  std::string Canon(const Tuple& c) const;
  /// Interns a canonical form, registering `c` as representative when new.
  uint32_t Intern(std::string canon, const Tuple& c);
  /// Type id for an interned CanonCache id; fetches the canonical string only
  /// the first time a given cache id is seen. Serial-only (not locked).
  uint32_t InternCacheId(uint32_t cache_id, const Tuple& c);

  const Structure& g_;
  uint32_t rho_;
  GaifmanGraph gaifman_;
  IncidenceIndex incidence_;
  CanonCache* cache_;
  std::unordered_map<std::string, uint32_t> canon_to_type_;
  /// Memo from the shared cache's interned ids to this typer's dense type
  /// ids. Distinct cache ids always mean distinct canonical forms, so this
  /// never aliases two types.
  std::unordered_map<uint32_t, uint32_t> cache_id_to_type_;
  std::vector<Tuple> representatives_;
  /// Reusable buffers for the serial TypeOf path.
  NeighborhoodScratch nb_scratch_;
  CanonKeyScratch key_scratch_;
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_TYPEMAP_H_
