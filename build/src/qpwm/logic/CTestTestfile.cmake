# CMake generated Testfile for 
# Source directory: /root/repo/src/qpwm/logic
# Build directory: /root/repo/build/src/qpwm/logic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
