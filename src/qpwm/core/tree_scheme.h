// The watermarking scheme of Theorems 4/5: automaton-definable (hence
// MSO-definable, via CompileMso) queries on weighted trees.
//
// Planning finds Lemma 3 regions with neutral pairs (FindMarkRegions), then
// locates, for every pair, a *witness parameter* outside the region whose
// answer set contains the pair — the detector reads the pair's suspect
// weights through that witness query. Pairs without a witness are dropped
// (their bits would be invisible through answers). The realized global
// distortion of every mark is at most 1: pairs cancel exactly for parameters
// outside their region, and a parameter inside one region meets only that
// region's pair.
#ifndef QPWM_CORE_TREE_SCHEME_H_
#define QPWM_CORE_TREE_SCHEME_H_

#include <cstdint>
#include <vector>

#include "qpwm/core/answers.h"
#include "qpwm/core/pairs.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/tree/automaton.h"
#include "qpwm/tree/bintree.h"
#include "qpwm/tree/decomposition.h"
#include "qpwm/util/bitvec.h"
#include "qpwm/util/hash.h"
#include "qpwm/util/status.h"
#include "qpwm/util/thread_annotations.h"

namespace qpwm {

struct TreeSchemeOptions {
  /// Owner's secret key (candidate shuffles, witness probing order).
  PrfKey key;
  /// Forwarded to FindMarkRegions (0 = defaults).
  size_t min_region_size = 0;
  size_t max_region_size = 0;
  /// Random parameters probed (beyond the root and region neighbors) when
  /// searching a witness for a pair.
  size_t witness_attempts = 16;
  PairEncoding encoding = PairEncoding::kOnOff;
};

/// A server honestly answering the automaton query over a weighted tree.
class HonestTreeServer : public AnswerServer {
 public:
  HonestTreeServer(const BinaryTree& t, const std::vector<uint32_t>& labels,
                   uint32_t base_count, const Dta& dta, uint32_t param_arity,
                   WeightMap weights)
      : t_(&t),
        labels_(&labels),
        base_count_(base_count),
        dta_(&dta),
        param_arity_(param_arity),
        weights_(std::move(weights)) {}

  AnswerSet Answer(const Tuple& params) const override;

  WeightMap& mutable_weights() { return weights_; }

 private:
  const BinaryTree* t_;
  const std::vector<uint32_t>* labels_;
  uint32_t base_count_;
  const Dta* dta_;
  uint32_t param_arity_;
  WeightMap weights_;
};

/// Planned marker/detector for one (tree, automaton query) instance.
class TreeScheme {
 public:
  /// `dta` track convention: track 0 = parameter (if param_arity == 1), next
  /// track = result node. The tree, labels and automaton are captured by
  /// reference and must outlive the scheme.
  [[nodiscard]] static Result<TreeScheme> Plan(const BinaryTree& t,
                                 const std::vector<uint32_t>& labels,
                                 uint32_t base_count, const Dta& dta,
                                 uint32_t param_arity,
                                 const TreeSchemeOptions& options);

  /// Hidden bits: pairs with a detection witness.
  size_t CapacityBits() const { return pairs_.size(); }
  /// Structural bound on max_a |f(a) drift| for every mark.
  Weight DistortionBound() const { return pairs_.empty() ? 0 : 1; }

  size_t RegionsPaired() const { return stats_.paired; }
  size_t RegionsUnpaired() const { return stats_.unpaired; }
  const DecompositionStats& stats() const { return stats_; }
  const std::vector<MarkRegion>& regions() const { return regions_; }

  /// Marker: 1-local distortion embedding an l-bit mark.
  WeightMap Embed(const WeightMap& original, const BitVec& mark) const;

  /// Writes `mark` into `weights` in place with an explicit encoding — the
  /// hook the adversarial wrapper drives (one bit per pair).
  void ApplyMark(const BitVec& mark, WeightMap& weights, PairEncoding encoding) const;

  /// Detector (non-adversarial): recovers the mark from suspect answers.
  [[nodiscard]] Result<BitVec> Detect(const WeightMap& original, const AnswerServer& suspect) const;

  /// Per-pair deltas, strict: a pair node missing from its witness answer
  /// fails the whole read with kDetectionFailed.
  [[nodiscard]] Result<std::vector<Weight>> PairDeltas(const WeightMap& original,
                                         const AnswerServer& suspect) const;

  /// Erasure-aware per-pair reading: a pair node missing from its witness
  /// answer (dropped subtree, shipped fragment) is flagged `erased` instead
  /// of failing; the adversarial wrapper abstains on such votes.
  ///
  /// With `options.batch_answers` every distinct witness parameter is
  /// answered once (one AnswerAll round trip) and shared across the pairs
  /// that read through it; observations are bit-identical either way.
  /// (`options.dense_views` is a no-op here: tree weights are unary, already
  /// dense storage.)
  std::vector<PairObservation> ObservePairs(const WeightMap& original,
                                            const AnswerServer& suspect,
                                            const DetectOptions& options = {}) const;

  /// Per-run read state shared across every suspect of a detection run.
  /// (Tree weights are unary and already dense, so unlike the local scheme
  /// there is no view to hoist — the context just pins the inputs.)
  struct DetectContext {
    const WeightMap* original = nullptr;
    DetectOptions options;
  };
  DetectContext MakeDetectContext(const WeightMap& original,
                                  const DetectOptions& options) const;

  /// ObservePairs against reusable buffers: fills and returns
  /// scratch.observations (valid until the next call on that scratch).
  /// Allocation-free once the scratch is warm; observations are bit-identical
  /// to ObservePairs for every options combination.
  const std::vector<PairObservation>& ObservePairsInto(
      const DetectContext& ctx, const AnswerServer& suspect,
      DetectScratch& scratch) const;

 private:
  struct DetectablePair {
    NodeId b_plus;
    NodeId b_minus;
    Tuple witness;  // parameter whose answers contain both pair nodes
  };

  /// Witness reads grouped at plan time (see LocalScheme::WitnessPlan): the
  /// distinct witness parameters in first-use order and per witness the
  /// (read slot, node) resolutions, flattened CSR-style. Slot 2i reads pair
  /// i's b_plus, slot 2i+1 its b_minus.
  struct WitnessPlan {
    // qpwm-lint: allow(legacy-tuple-vector) — witness params interned once at Plan time
    std::vector<Tuple> params;
    std::vector<uint32_t> read_offsets;
    std::vector<std::pair<uint32_t, NodeId>> reads;
  };
  void BuildWitnessPlan();

  TreeScheme() = default;

  const BinaryTree* t_ = nullptr;
  const std::vector<uint32_t>* labels_ = nullptr;
  uint32_t base_count_ = 0;
  const Dta* dta_ = nullptr;
  uint32_t param_arity_ = 0;
  TreeSchemeOptions options_;
  std::vector<MarkRegion> regions_;
  DecompositionStats stats_;
  std::vector<DetectablePair> pairs_;
  // Read slots index into pairs_'s witness layout; valid only while pairs_
  // (declared above, same object) is alive and unmodified after Plan().
  WitnessPlan witness_plan_ QPWM_VIEW_OF(pairs_);
};

}  // namespace qpwm

#endif  // QPWM_CORE_TREE_SCHEME_H_
