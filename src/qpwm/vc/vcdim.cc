#include "qpwm/vc/vcdim.h"

#include <algorithm>
#include <unordered_set>

#include "qpwm/util/check.h"

namespace qpwm {

SetSystem SetSystemFromQuery(const QueryIndex& index) {
  SetSystem out;
  out.ground_size = index.num_active();
  out.sets.reserve(index.num_params());
  for (size_t i = 0; i < index.num_params(); ++i) {
    out.sets.push_back(index.ResultFor(i));  // already sorted
  }
  // Distinct sets only (duplicates cannot change shattering).
  std::sort(out.sets.begin(), out.sets.end());
  out.sets.erase(std::unique(out.sets.begin(), out.sets.end()), out.sets.end());
  return out;
}

bool IsShattered(const SetSystem& system, const std::vector<uint32_t>& candidate) {
  const size_t k = candidate.size();
  QPWM_CHECK_LE(k, 25u);
  if (k == 0) return !system.sets.empty();
  const uint32_t want = 1u << k;
  std::unordered_set<uint32_t> patterns;
  patterns.reserve(want);
  for (const auto& set : system.sets) {
    uint32_t pattern = 0;
    for (size_t i = 0; i < k; ++i) {
      if (std::binary_search(set.begin(), set.end(), candidate[i])) {
        pattern |= 1u << i;
      }
    }
    patterns.insert(pattern);
    if (patterns.size() == want) return true;
  }
  return false;
}

uint32_t VcDimension(const SetSystem& system, uint32_t max_dim) {
  if (system.sets.empty() || system.ground_size == 0) return 0;

  // Layered monotone search: shattered k-sets extend to candidate
  // (k+1)-sets by appending a larger element.
  std::vector<std::vector<uint32_t>> layer{{}};
  uint32_t dim = 0;
  while (dim < max_dim) {
    std::vector<std::vector<uint32_t>> next;
    for (const auto& base : layer) {
      uint32_t start = base.empty() ? 0 : base.back() + 1;
      for (uint32_t e = start; e < system.ground_size; ++e) {
        std::vector<uint32_t> candidate = base;
        candidate.push_back(e);
        if (IsShattered(system, candidate)) next.push_back(std::move(candidate));
      }
    }
    if (next.empty()) break;
    layer = std::move(next);
    ++dim;
  }
  return dim;
}

uint32_t VcLowerBound(const SetSystem& system) {
  if (system.sets.empty() || system.ground_size == 0) return 0;
  std::vector<uint32_t> shattered;
  bool grew = true;
  while (grew) {
    grew = false;
    for (uint32_t e = 0; e < system.ground_size; ++e) {
      if (std::binary_search(shattered.begin(), shattered.end(), e)) continue;
      std::vector<uint32_t> candidate = shattered;
      candidate.insert(std::upper_bound(candidate.begin(), candidate.end(), e), e);
      if (candidate.size() <= 25 && IsShattered(system, candidate)) {
        shattered = std::move(candidate);
        grew = true;
        break;
      }
    }
  }
  return static_cast<uint32_t>(shattered.size());
}

}  // namespace qpwm
