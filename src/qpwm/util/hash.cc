#include "qpwm/util/hash.h"

namespace qpwm {
namespace {

inline uint64_t Rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

inline void SipRound(uint64_t& v0, uint64_t& v1, uint64_t& v2, uint64_t& v3) {
  v0 += v1;
  v1 = Rotl(v1, 13);
  v1 ^= v0;
  v0 = Rotl(v0, 32);
  v2 += v3;
  v3 = Rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl(v1, 17);
  v1 ^= v2;
  v2 = Rotl(v2, 32);
}

inline uint64_t ReadLe64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // Little-endian hosts only (x86-64 / aarch64 targets).
}

}  // namespace

PrfKey PrfKey::Derive(uint64_t purpose) const {
  // Feed the purpose tag through the PRF itself to get an independent subkey.
  uint64_t a = SipHash24(*this, &purpose, sizeof(purpose));
  uint64_t b = purpose ^ 0xA5A5A5A5A5A5A5A5ULL;
  uint64_t c = SipHash24(*this, &b, sizeof(b));
  return PrfKey{a, c};
}

uint64_t SipHash24(const PrfKey& key, const void* data, size_t len) {
  const auto* in = static_cast<const unsigned char*>(data);
  uint64_t v0 = 0x736F6D6570736575ULL ^ key.k0;
  uint64_t v1 = 0x646F72616E646F6DULL ^ key.k1;
  uint64_t v2 = 0x6C7967656E657261ULL ^ key.k0;
  uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

  const size_t end = len - (len % 8);
  for (size_t i = 0; i < end; i += 8) {
    uint64_t m = ReadLe64(in + i);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  uint64_t b = static_cast<uint64_t>(len) << 56;
  for (size_t i = end; i < len; ++i) {
    b |= static_cast<uint64_t>(in[i]) << (8 * (i - end));
  }
  v3 ^= b;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xFF;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

uint64_t Prf(const PrfKey& key, const std::vector<uint64_t>& words) {
  return SipHash24(key, words.data(), words.size() * sizeof(uint64_t));
}

uint64_t Prf(const PrfKey& key, std::string_view s) {
  return SipHash24(key, s.data(), s.size());
}

}  // namespace qpwm
