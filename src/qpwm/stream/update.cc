#include "qpwm/stream/update.h"

#include <algorithm>

#include "qpwm/util/check.h"

namespace qpwm {
namespace {

/// True when the structure's first relation is a usable edge relation for
/// structural draws.
bool HasEdgeRelation(const Structure& g, size_t min_tuples) {
  return g.num_relations() > 0 && g.relation(0).arity() == 2 &&
         g.relation(0).size() >= min_tuples && g.universe_size() > 0;
}

StructuralUpdate Insert(size_t relation, Tuple t) {
  return {StructuralUpdate::Kind::kInsertTuple, relation, std::move(t)};
}

StructuralUpdate Delete(size_t relation, Tuple t) {
  return {StructuralUpdate::Kind::kDeleteTuple, relation, std::move(t)};
}

}  // namespace

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kWeightRefresh: return "weight_refresh";
    case UpdateKind::kEdgeSwap: return "edge_swap";
    case UpdateKind::kWeightWrite: return "weight_write";
    case UpdateKind::kFakeTuple: return "fake_tuple";
    case UpdateKind::kMalformed: return "malformed";
    case UpdateKind::kBurstDelete: return "burst_delete";
  }
  return "unknown";
}

bool IsHostileKind(UpdateKind kind) {
  return kind == UpdateKind::kWeightWrite || kind == UpdateKind::kFakeTuple ||
         kind == UpdateKind::kMalformed || kind == UpdateKind::kBurstDelete;
}

UpdateGenerator::UpdateGenerator(uint64_t seed, UpdateMixOptions options)
    : rng_(seed), options_(options) {}

Update UpdateGenerator::Next(const Structure& g) {
  Update u;
  if (rng_.Bernoulli(options_.hostile_frac)) {
    switch (rng_.Below(4)) {
      case 0: u = WeightWrite(g); break;
      case 1: u = FakeTuple(g); break;
      case 2: u = Malformed(g); break;
      default: u = BurstDelete(g); break;
    }
  } else if (rng_.Bernoulli(options_.honest_structural_frac)) {
    u = EdgeSwap(g);
  } else {
    u = WeightRefresh(g);
  }
  ++generated_;
  ++generated_by_kind_[static_cast<size_t>(u.kind)];
  if (IsHostileKind(u.kind)) ++hostile_generated_;
  return u;
}

Update UpdateGenerator::WeightRefresh(const Structure& g) {
  Update u;
  u.kind = UpdateKind::kWeightRefresh;
  u.elem = static_cast<ElemId>(rng_.Below(g.universe_size()));
  u.delta = rng_.Uniform(-options_.refresh_magnitude, options_.refresh_magnitude);
  return u;
}

Update UpdateGenerator::EdgeSwap(const Structure& g) {
  // Double-edge swap on a symmetric edge relation: replace undirected edges
  // {a,b}, {c,d} with {a,c}, {b,d}. On a regular graph every degree is
  // preserved, so the swap usually keeps all rho-neighborhood types — the
  // canonical Theorem 8 churn. Degenerate picks (shared endpoints, already
  // present replacement edges) are emitted anyway: the server's admission
  // gates reject them with a counted Status, which is part of the workload.
  if (!HasEdgeRelation(g, /*min_tuples=*/4)) return WeightRefresh(g);
  const TupleList tuples = g.relation(0).tuples();
  const TupleRef e1 = tuples[rng_.Below(tuples.size())];
  const TupleRef e2 = tuples[rng_.Below(tuples.size())];
  const ElemId a = e1[0], b = e1[1], c = e2[0], d = e2[1];
  Update u;
  u.kind = UpdateKind::kEdgeSwap;
  u.edits = {Delete(0, {a, b}), Delete(0, {b, a}),
             Delete(0, {c, d}), Delete(0, {d, c}),
             Insert(0, {a, c}), Insert(0, {c, a}),
             Insert(0, {b, d}), Insert(0, {d, b})};
  return u;
}

Update UpdateGenerator::WeightWrite(const Structure& g) {
  Update u;
  u.kind = UpdateKind::kWeightWrite;
  u.elem = static_cast<ElemId>(rng_.Below(g.universe_size()));
  const Weight m = options_.write_magnitude;
  QPWM_CHECK(m >= 1);
  // Uniform over [-m, m] \ {0}.
  const Weight raw = rng_.Uniform(1, 2 * m);
  u.delta = raw <= m ? -raw : raw - m;
  return u;
}

Update UpdateGenerator::FakeTuple(const Structure& g) {
  Update u;
  u.kind = UpdateKind::kFakeTuple;
  const ElemId n = static_cast<ElemId>(g.universe_size());
  if (rng_.Coin() || !HasEdgeRelation(g, /*min_tuples=*/1)) {
    // Out-of-universe fake: references a row that does not exist. Rejected
    // at submission with kOutOfRange.
    const ElemId ghost = n + static_cast<ElemId>(rng_.Below(1000));
    const ElemId anchor = n > 0 ? static_cast<ElemId>(rng_.Below(n)) : 0;
    u.edits = {Insert(0, {ghost, anchor})};
  } else {
    // In-universe fake edge: shape-valid, so it reaches the Theorem 8 gate —
    // on a regular instance it raises two degrees and breaks the type set,
    // so it is quarantined at epoch seal instead.
    const ElemId x = static_cast<ElemId>(rng_.Below(n));
    const ElemId y = static_cast<ElemId>(rng_.Below(n));
    u.edits = {Insert(0, {x, y})};
  }
  return u;
}

Update UpdateGenerator::Malformed(const Structure& g) {
  Update u;
  u.kind = UpdateKind::kMalformed;
  const ElemId n = static_cast<ElemId>(g.universe_size());
  const ElemId x = n > 0 ? static_cast<ElemId>(rng_.Below(n)) : 0;
  if (rng_.Coin()) {
    // Wrong arity for the edge relation.
    u.edits = {Insert(0, {x})};
  } else {
    // Unknown relation index.
    u.edits = {Insert(g.num_relations() + rng_.Below(3), {x, x})};
  }
  return u;
}

Update UpdateGenerator::BurstDelete(const Structure& g) {
  // Correlated loss: a contiguous run of the relation's tuple list (a
  // dropped page / shipped slice). On any bounded-degree instance this
  // removes neighborhood types, so the Theorem 8 gate quarantines the whole
  // burst as one unit.
  if (!HasEdgeRelation(g, /*min_tuples=*/1)) return WeightRefresh(g);
  const TupleList tuples = g.relation(0).tuples();
  const size_t len = std::min(options_.burst_len, tuples.size());
  const size_t start = rng_.Below(tuples.size());
  Update u;
  u.kind = UpdateKind::kBurstDelete;
  u.edits.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    u.edits.push_back(Delete(0, tuples[(start + i) % tuples.size()].ToTuple()));
  }
  return u;
}

}  // namespace qpwm
