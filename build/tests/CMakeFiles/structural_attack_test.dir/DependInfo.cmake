
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/structural_attack_test.cc" "tests/CMakeFiles/structural_attack_test.dir/structural_attack_test.cc.o" "gcc" "tests/CMakeFiles/structural_attack_test.dir/structural_attack_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qpwm/core/CMakeFiles/qpwm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/tree/CMakeFiles/qpwm_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/xml/CMakeFiles/qpwm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/vc/CMakeFiles/qpwm_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/capacity/CMakeFiles/qpwm_capacity.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/relational/CMakeFiles/qpwm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/baseline/CMakeFiles/qpwm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/logic/CMakeFiles/qpwm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/structure/CMakeFiles/qpwm_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/util/CMakeFiles/qpwm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
