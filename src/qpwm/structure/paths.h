// Weighted shortest paths on the Gaifman graph — the Khanna-Zane setting
// ([10]) the paper's conclusion relates to. The watermarking schemes here
// preserve *query answer sums*; shortest-path lengths are an optimization
// objective outside that model (as the paper notes), so the library offers
// measurement, not a guarantee: embed with a query-preserving scheme, then
// quantify the realized drift of every shortest-path length.
#ifndef QPWM_STRUCTURE_PATHS_H_
#define QPWM_STRUCTURE_PATHS_H_

#include <cstdint>
#include <vector>

#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/weighted.h"

namespace qpwm {

/// Edge weights for path computations: weight of traversing u -> v is the
/// element weight of v (weights-on-elements, the paper's s = 1 convention:
/// visiting an element costs its weight).
constexpr Weight kUnreachable = INT64_MAX;

/// Single-source shortest path lengths from `source` over the Gaifman graph,
/// with nonnegative element weights (Dijkstra). dist[v] = weight sum of the
/// elements on the cheapest path *excluding* the source, kUnreachable if
/// disconnected.
std::vector<Weight> ShortestPathLengths(const GaifmanGraph& g,
                                        const WeightMap& weights, ElemId source);

/// max over all (s, t) pairs of | d_w1(s, t) - d_w0(s, t) |, ignoring
/// unreachable pairs. O(n * Dijkstra); for bench-scale instances.
Weight MaxShortestPathDrift(const GaifmanGraph& g, const WeightMap& w0,
                            const WeightMap& w1);

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_PATHS_H_
