// The watermarking scheme of Theorem 3: local queries on bounded-degree
// structures.
//
// Planning pipeline (marker side, deterministic given the secret key):
//   1. type every parameter tuple by its rho-neighborhood isomorphism class
//      (rho = a locality rank of the query; ntp(rho, G) classes);
//   2. fix canonical parameters S = one representative per class;
//   3. classify active weighted elements by cl(w) = the set of classes whose
//      canonical result set contains w; pair elements within equal classes
//      (S-partition) — pairs then cancel exactly on canonical parameters
//      (Proposition 1); leftovers are paired across classes, the randomized
//      fallback the paper borrows from Khanna-Zane;
//   4. select an epsilon-good subset: the per-parameter cost
//      sum_i |contribution_i(a)| is checked against d = ceil(1/epsilon), so
//      *every* one of the 2^l marks satisfies the d-global assumption
//      (deterministic strengthening of Proposition 2); selection is the
//      paper's random p-subsample with retries, or a greedy ablation.
//
// The detector replans from the same inputs and key, then reads the suspect
// pair weights through query answers only (indirect access).
#ifndef QPWM_CORE_LOCAL_SCHEME_H_
#define QPWM_CORE_LOCAL_SCHEME_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "qpwm/core/answers.h"
#include "qpwm/core/pairs.h"
#include "qpwm/util/bitvec.h"
#include "qpwm/util/hash.h"
#include "qpwm/util/status.h"
#include "qpwm/util/thread_annotations.h"

namespace qpwm {

/// How the epsilon-good pair subset is chosen.
enum class PairSelection {
  kPaperRandom,  // Proposition 2: random subsample with probability p, retry
  kGreedy,       // drop pairs from overloaded parameters until within budget
};

struct LocalSchemeOptions {
  /// Neighborhood radius; defaults to min(locality rank of the query, 2).
  std::optional<uint32_t> rho;
  /// Distortion budget: d = ceil(1 / epsilon).
  double epsilon = 0.5;
  /// Owner's secret key; drives pairing order and subsampling.
  PrfKey key;
  /// Retry budget for the random selection.
  int max_tries = 64;
  PairSelection selection = PairSelection::kPaperRandom;
  /// Ablation: pair within cl(w) classes (true) or arbitrarily (false).
  bool class_pairing = true;
  /// Pair leftover elements across classes (the [10] Prop. 4.3 fallback).
  bool fallback_pairing = true;
  PairEncoding encoding = PairEncoding::kOnOff;
  /// Memoize neighborhood canonical forms through the process-wide
  /// CanonCache. Off = every tuple canonicalizes from scratch (the
  /// pre-optimization planner; kept as the perf-baseline ablation —
  /// results are identical either way).
  bool canon_cache = true;
};

/// Planned marker/detector pair for one (structure, query, domain) instance.
class LocalScheme {
 public:
  /// Runs the planning pipeline. The returned scheme may have capacity 0 if
  /// no non-empty epsilon-good subset was found within the retry budget.
  [[nodiscard]] static Result<LocalScheme> Plan(const QueryIndex& index,
                                  const LocalSchemeOptions& options);

  /// Number of hidden bits l (= number of selected pairs).
  size_t CapacityBits() const { return marking_->size(); }

  /// Verified bound on max_a |f(a) drift| for every possible mark.
  uint32_t DistortionBound() const { return distortion_bound_; }

  /// Budget d = ceil(1 / epsilon) the bound was checked against.
  uint32_t Budget() const { return budget_; }

  uint32_t rho() const { return rho_; }
  /// ntp(rho, G) over the parameter domain.
  size_t NumTypes() const { return ntp_; }
  /// The canonical parameters S: one domain index per neighborhood type.
  /// Proposition 1: class-paired markings distort f at these parameters by
  /// exactly zero.
  const std::vector<size_t>& CanonicalParams() const { return canonical_params_; }
  /// Pairs available before epsilon-good selection.
  size_t CandidatePairs() const { return candidate_pairs_; }
  /// Random-selection attempts consumed (1 = first try succeeded).
  int TriesUsed() const { return tries_used_; }

  const PairMarking& marking() const { return *marking_; }
  const QueryIndex& index() const { return marking_->index(); }

  /// Marker M: embeds an l-bit mark (l = CapacityBits()) as a 1-local
  /// distortion of `original`.
  WeightMap Embed(const WeightMap& original, const BitVec& mark) const;

  /// Detector D, non-adversarial: recovers the mark from suspect answers.
  /// Needs the original weights (the owner has them) and indirect access to
  /// the suspect server.
  [[nodiscard]] Result<BitVec> Detect(const WeightMap& original, const AnswerServer& suspect) const;

  /// Raw per-pair deltas ((w*+ - w+) - (w*- - w-)). Strict: a pair element
  /// missing from the suspect's answers fails the whole read with
  /// kDetectionFailed (the pre-structural-attack contract).
  [[nodiscard]] Result<std::vector<Weight>> PairDeltas(const WeightMap& original,
                                         const AnswerServer& suspect) const;

  /// Erasure-aware per-pair reading: a pair whose element is missing from the
  /// suspect's answers comes back flagged `erased` instead of failing the
  /// read. The adversarial wrapper feeds these into majority decoding so
  /// detection degrades gracefully under deletion/subset attacks.
  ///
  /// With `options.batch_answers` every distinct witness parameter is
  /// answered once (one AnswerAll round trip) and shared across all pairs
  /// that read through it; with `options.dense_views` the original weights
  /// are snapshot into a DenseWeightView. Observations are bit-identical for
  /// every setting.
  std::vector<PairObservation> ObservePairs(const WeightMap& original,
                                            const AnswerServer& suspect,
                                            const DetectOptions& options = {}) const;

  /// Per-run read state shared across every suspect of a detection run: the
  /// owner's weights (and their dense snapshot, hoisted so a multi-suspect
  /// fan-out builds it once instead of once per suspect).
  struct DetectContext {
    const WeightMap* original = nullptr;
    std::optional<DenseWeightView> original_view;
    DetectOptions options;
  };
  DetectContext MakeDetectContext(const WeightMap& original,
                                  const DetectOptions& options) const;

  /// ObservePairs against reusable buffers: fills and returns
  /// scratch.observations (valid until the next call on that scratch).
  /// Allocation-free once the scratch is warm; observations are bit-identical
  /// to ObservePairs for every options combination.
  const std::vector<PairObservation>& ObservePairsInto(
      const DetectContext& ctx, const AnswerServer& suspect,
      DetectScratch& scratch) const;

 private:
  /// Witness reads precomputed at plan time (they depend only on the pairs
  /// and the index, never on the suspect): the distinct witness parameters in
  /// first-use order, and per witness the (read slot, active id) resolutions,
  /// flattened CSR-style. Slot 2i reads pair i's plus element, 2i+1 its minus.
  struct WitnessPlan {
    // qpwm-lint: allow(legacy-tuple-vector) — witness params interned once at Plan time
    std::vector<Tuple> params;
    std::vector<uint32_t> read_offsets;  // per witness: begin index in reads
    std::vector<std::pair<uint32_t, uint32_t>> reads;  // (read slot, active id)
  };
  static WitnessPlan BuildWitnessPlan(const PairMarking& marking);

  LocalScheme(std::unique_ptr<PairMarking> marking, LocalSchemeOptions options)
      : marking_(std::move(marking)),
        witness_plan_(BuildWitnessPlan(*marking_)),
        options_(std::move(options)) {}

  std::unique_ptr<PairMarking> marking_;
  // Flattened from *marking_ at construction; slot ids index into the
  // marking's pair layout, so the plan is only meaningful while marking_
  // lives (it does: same object, declared just above).
  WitnessPlan witness_plan_ QPWM_VIEW_OF(marking_);
  LocalSchemeOptions options_;
  uint32_t distortion_bound_ = 0;
  uint32_t budget_ = 0;
  uint32_t rho_ = 0;
  size_t ntp_ = 0;
  size_t candidate_pairs_ = 0;
  int tries_used_ = 0;
  std::vector<size_t> canonical_params_;
};

}  // namespace qpwm

#endif  // QPWM_CORE_LOCAL_SCHEME_H_
