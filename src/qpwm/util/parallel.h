// Deterministic data-parallel helpers: a lazily-initialized thread pool and
// ParallelFor / ParallelMap / ParallelBlocks over index ranges.
//
// Determinism contract: every helper partitions [0, n) the same way for a
// given n and writes results into per-index (or per-block) slots, so the
// output is bit-identical regardless of the configured thread count or how
// the OS schedules workers. Bodies must only touch state owned by their own
// index/block; reductions happen on the caller's thread in index order.
//
// The thread count comes from SetParallelThreads(), else the QPWM_THREADS
// environment variable, else std::thread::hardware_concurrency(). A count of
// 1 bypasses the pool entirely and runs inline on the caller (the serial
// path planning used before this layer existed).
#ifndef QPWM_UTIL_PARALLEL_H_
#define QPWM_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "qpwm/util/thread_annotations.h"
#include <vector>

namespace qpwm {

/// Configured worker count (>= 1). Resolves QPWM_THREADS / hardware
/// concurrency on first use.
size_t ParallelThreads();

/// Overrides the thread count (n = 0 restores the env/hardware default).
/// Resizes the global pool; must not be called from inside a parallel body.
void SetParallelThreads(size_t n);

namespace internal {

/// Runs body(chunk) for chunk in [0, num_chunks) on the pool workers plus
/// the calling thread, claiming chunks from a shared counter. Rethrows the
/// first exception any chunk threw. Serial when the pool has one thread.
void RunChunked(size_t num_chunks, const std::function<void(size_t)>& body);

/// Deterministic block partition of [0, n): block i covers
/// [Bounds(i), Bounds(i+1)). Block count depends only on n and the
/// configured thread count.
struct BlockPartition {
  size_t n = 0;
  size_t blocks = 0;
  explicit BlockPartition(size_t n_items);
  size_t Bounds(size_t i) const { return n * i / blocks; }
};

}  // namespace internal

/// Runs body(i) for every i in [0, n), in parallel. `body` must be safe to
/// call concurrently for distinct i and must not touch shared mutable state.
template <typename Fn>
void ParallelFor(size_t n, Fn&& body) {
  if (n == 0) return;
  internal::BlockPartition part(n);
  if (part.blocks <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  internal::RunChunked(part.blocks, [&](size_t b) {
    const size_t end = part.Bounds(b + 1);
    for (size_t i = part.Bounds(b); i < end; ++i) body(i);
  });
}

/// Returns {fn(0), ..., fn(n-1)}, computed in parallel, stored by index —
/// the result is identical to the serial evaluation order.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

/// Mutex-guarded free list of per-worker scratch objects for ParallelBlocks
/// bodies: Acquire() pops a warm instance (or default-constructs the first
/// time) and Release() returns it, so at most `threads` instances are ever
/// live regardless of block count and later blocks reuse already-grown
/// buffers. Scratch never carries results, only buffers, so reuse across
/// blocks cannot affect output (the determinism contract above holds).
template <typename T>
class ScratchPool {
 public:
  std::unique_ptr<T> Acquire() {
    {
      qpwm::MutexLock lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<T> out = std::move(free_.back());
        free_.pop_back();
        return out;
      }
    }
    return std::make_unique<T>();
  }
  void Release(std::unique_ptr<T> scratch) {
    qpwm::MutexLock lock(mu_);
    free_.push_back(std::move(scratch));
  }

 private:
  qpwm::Mutex mu_;
  std::vector<std::unique_ptr<T>> free_ QPWM_GUARDED_BY(mu_);
};

/// Block-parallel reduction input: runs fn(begin, end) over a deterministic
/// partition of [0, n) and returns the per-block results in block order, so
/// the caller can merge them deterministically. The partition depends only
/// on n and the configured thread count; use only for merges that are
/// invariant to the block structure (e.g. integer sums).
template <typename T, typename Fn>
std::vector<T> ParallelBlocks(size_t n, Fn&& fn) {
  internal::BlockPartition part(n);
  if (part.blocks <= 1) {
    std::vector<T> out;
    if (n > 0) out.push_back(fn(size_t{0}, n));
    return out;
  }
  std::vector<T> out(part.blocks);
  internal::RunChunked(part.blocks, [&](size_t b) {
    out[b] = fn(part.Bounds(b), part.Bounds(b + 1));
  });
  return out;
}

}  // namespace qpwm

#endif  // QPWM_UTIL_PARALLEL_H_
