// Token helpers shared by the lint passes (lexer consumers): rules.cc,
// index.cc and xtu_rules.cc. Header-only; everything is tiny and inline.
#ifndef QPWM_TOOLS_LINT_INTERNAL_H_
#define QPWM_TOOLS_LINT_INTERNAL_H_

#include <algorithm>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace qpwm::lint::internal {

inline constexpr size_t kNpos = static_cast<size_t>(-1);

inline std::string NormalizePath(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

inline bool PathHas(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

inline bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

inline bool Is(const std::vector<Token>& t, size_t i, std::string_view text) {
  return i < t.size() && t[i].text == text;
}

inline bool IsIdent(const std::vector<Token>& t, size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

// i at `<`: returns the index just past the matching `>`, or kNpos if the
// angle run hits a statement boundary first (then it was a comparison).
inline size_t SkipAngles(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    const std::string& x = t[i].text;
    if (x == ";" || x == "{" || x == "}") return kNpos;
    if (x == "<") ++depth;
    else if (x == "<<") depth += 2;
    else if (x == ">") --depth;
    else if (x == ">>") depth -= 2;
    if (depth <= 0 && (x == ">" || x == ">>")) return i + 1;
  }
  return kNpos;
}

// i at `(` (or `[`, `{`): returns the index just past the matching closer.
inline size_t SkipBalanced(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    const std::string& x = t[i].text;
    if (x == "(" || x == "[" || x == "{") ++depth;
    else if (x == ")" || x == "]" || x == "}") {
      if (--depth == 0) return i + 1;
    }
  }
  return kNpos;
}

inline bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "else",    "for",      "while",   "do",        "switch",
      "case",     "default", "break",    "continue", "return",   "goto",
      "new",      "delete",  "using",    "namespace", "template", "typedef",
      "typename", "class",   "struct",   "enum",    "union",     "public",
      "private",  "protected", "static_assert", "sizeof", "alignof",
      "co_await", "co_return", "co_yield", "try",   "catch",     "operator",
      "const",    "constexpr", "static",  "inline", "virtual",   "explicit",
      "friend",   "extern",  "mutable",  "auto",    "void",      "this"};
  return kKeywords.count(s) > 0;
}

// Specifiers that may sit between a declaration boundary and the return type.
inline bool IsDeclSpecifier(const std::string& s) {
  return s == "static" || s == "virtual" || s == "inline" || s == "constexpr" ||
         s == "explicit" || s == "friend" || s == "extern";
}

// Thread-annotation macros that take a parenthesized argument list and may
// trail a member or function declarator.
inline bool IsAnnotationMacro(const std::string& s) {
  return s == "QPWM_GUARDED_BY" || s == "QPWM_PT_GUARDED_BY" ||
         s == "QPWM_VIEW_OF" || s == "QPWM_REQUIRES" || s == "QPWM_ACQUIRE" ||
         s == "QPWM_RELEASE" || s == "QPWM_TRY_ACQUIRE" ||
         s == "QPWM_EXCLUDES" || s == "QPWM_CAPABILITY";
}

// Files where a rule's banned construct is the sanctioned implementation.
inline bool RuleAllowsFile(std::string_view rule, const std::string& path) {
  if (rule == kRawStatus) return PathHas(path, "util/status.h");
  if (rule == kBareAbort) {
    return PathHas(path, "util/check.h") || PathHas(path, "util/status");
  }
  if (rule == kNondeterministicRandom) return PathHas(path, "util/random");
  if (rule == kParallelMutation) return PathHas(path, "util/parallel");
  if (rule == kLegacyTupleVector) return PathHas(path, "qpwm/structure/");
  return false;
}

inline void Report(const FileScan& scan, int line, const char* rule,
                   std::string message, std::vector<Finding>& out) {
  // allow() on the finding's line or the line just above waives it.
  for (int l : {line, line - 1}) {
    auto it = scan.allows.find(l);
    if (it != scan.allows.end() && it->second.count(rule)) return;
  }
  if (RuleAllowsFile(rule, scan.path)) return;
  out.push_back(Finding{scan.path, line, rule, std::move(message)});
}

// --- Cross-TU rule families (xtu_rules.cc) ----------------------------------
// All four consume the per-file symbols (fresh spans into `scan`) plus the
// finalized merged context.

void CheckViewEscape(const FileScan& scan, const FileSymbols& syms,
                     const LintContext& ctx, std::vector<Finding>& out);
void CheckLockDiscipline(const FileScan& scan, const FileSymbols& syms,
                         const LintContext& ctx, std::vector<Finding>& out);
void CheckStampAudit(const FileScan& scan, const FileSymbols& syms,
                     const LintContext& ctx, std::vector<Finding>& out);
void CheckXtuDiscardedStatus(const FileScan& scan, const FileSymbols& syms,
                             const LintContext& ctx,
                             std::vector<Finding>& out);

}  // namespace qpwm::lint::internal

#endif  // QPWM_TOOLS_LINT_INTERNAL_H_
