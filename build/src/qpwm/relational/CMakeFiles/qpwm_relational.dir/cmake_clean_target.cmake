file(REMOVE_RECURSE
  "libqpwm_relational.a"
)
