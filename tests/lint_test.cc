// Self-tests for the qpwm_lint library: tokenizer behavior, each rule's
// positive and negative cases, pragma waiving, and the cross-file scoping
// (status_apis is global, unordered names are include-scoped).
//
// The fixture files in tests/lint_fixtures/ are exercised end-to-end through
// the ctest entries in tests/CMakeLists.txt (each bad fixture must fail
// `qpwm_lint --strict`, the good one must pass); these tests pin the library
// semantics those gates rely on.
#include "lint.h"

#include <gtest/gtest.h>

namespace qpwm::lint {
namespace {

// Lints `src` as a standalone file: context built from this file only.
std::vector<Finding> Analyze(const std::string& path, std::string_view src) {
  FileScan scan = ScanSource(path, src);
  LintContext ctx;
  CollectContext(scan, ctx);
  FinalizeContext(ctx);
  std::vector<Finding> out;
  AnalyzeFile(scan, ctx, out);
  return out;
}

// Lints `src` with extra context files (path, source) collected first.
std::vector<Finding> AnalyzeWith(
    const std::vector<std::pair<std::string, std::string>>& context_files,
    const std::string& path, std::string_view src) {
  LintContext ctx;
  for (const auto& [p, s] : context_files) {
    FileScan scan = ScanSource(p, s);
    CollectContext(scan, ctx);
  }
  FileScan scan = ScanSource(path, src);
  CollectContext(scan, ctx);
  FinalizeContext(ctx);
  std::vector<Finding> out;
  AnalyzeFile(scan, ctx, out);
  return out;
}

bool HasRule(const std::vector<Finding>& fs, std::string_view rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return true;
  }
  return false;
}

// --- Tokenizer ---------------------------------------------------------------

TEST(LintLexer, StringsCommentsAndPreprocessorProduceNoTokens) {
  FileScan scan = ScanSource("a.cc",
                             "#include <x>\n"
                             "// abort();\n"
                             "/* throw; */\n"
                             "const char* s = \"abort(); throw\";\n"
                             "char c = '\\'';\n");
  for (const Token& t : scan.tokens) {
    EXPECT_NE(t.text, "abort") << "banned name leaked from line " << t.line;
    EXPECT_NE(t.text, "throw");
  }
}

TEST(LintLexer, RawStringsAreInvisible) {
  FileScan scan = ScanSource("a.cc", "auto s = R\"(rand() throw)\";\nint z;\n");
  for (const Token& t : scan.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "throw");
  }
  // Line counting survives the raw string.
  EXPECT_EQ(scan.tokens.back().line, 2);
}

TEST(LintLexer, AttributeIsASingleToken) {
  FileScan scan = ScanSource("a.h", "[[nodiscard]] Status F();\n");
  ASSERT_FALSE(scan.tokens.empty());
  EXPECT_EQ(scan.tokens[0].kind, Token::Kind::kAttr);
  EXPECT_EQ(scan.tokens[0].text, "nodiscard");
}

TEST(LintLexer, PragmaRegistersRulesForItsLine) {
  FileScan scan = ScanSource(
      "a.cc", "int x;\n// qpwm-lint: allow(bare-throw, unordered-iter) -- why\n");
  ASSERT_TRUE(scan.allows.count(2));
  EXPECT_TRUE(scan.allows[2].count("bare-throw"));
  EXPECT_TRUE(scan.allows[2].count("unordered-iter"));
}

TEST(LintLexer, QuotedIncludesAreRecorded) {
  FileScan scan = ScanSource("a.cc",
                             "#include \"qpwm/util/status.h\"\n"
                             "#include <vector>\n");
  ASSERT_EQ(scan.includes.size(), 1u);
  EXPECT_EQ(scan.includes[0], "qpwm/util/status.h");
}

// --- error-discipline --------------------------------------------------------

TEST(LintRules, DiscardedStatusCallFlagged) {
  auto fs = Analyze("a.cc",
                    "Status Do();\n"
                    "void F() { Do(); }\n");
  EXPECT_TRUE(HasRule(fs, kDiscardedStatus));
}

TEST(LintRules, VoidCastStillFlagged) {
  auto fs = Analyze("a.cc",
                    "Status Do();\n"
                    "void F() { (void)Do(); }\n");
  EXPECT_TRUE(HasRule(fs, kDiscardedStatus));
}

TEST(LintRules, HandledStatusNotFlagged) {
  auto fs = Analyze("a.cc",
                    "Status Do();\n"
                    "Status F() {\n"
                    "  Status s = Do();\n"
                    "  if (!s.ok()) return s;\n"
                    "  return Do();\n"
                    "}\n");
  EXPECT_FALSE(HasRule(fs, kDiscardedStatus));
}

TEST(LintRules, StatusApisAreGlobalAcrossFiles) {
  auto fs = AnalyzeWith({{"lib.h", "Result<int> Parse(int x);\n"}}, "use.cc",
                        "void F() { Parse(3); }\n");
  EXPECT_TRUE(HasRule(fs, kDiscardedStatus));
}

TEST(LintRules, MemberChainFinalCalleeDecides) {
  // The chain ends in a Status-returning member: flagged.
  auto fs = AnalyzeWith({{"lib.h", "Status Commit();\n"}}, "use.cc",
                        "void F(Txn& t) { t.handle().Commit(); }\n");
  EXPECT_TRUE(HasRule(fs, kDiscardedStatus));
  // Same chain but the final member is not fallible: clean.
  auto clean = AnalyzeWith({{"lib.h", "Status Commit();\n"}}, "use.cc",
                           "void F(Txn& t) { t.Commit().IgnoreError(); }\n");
  EXPECT_FALSE(HasRule(clean, kDiscardedStatus));
}

TEST(LintRules, NodiscardRequiredInHeadersOnly) {
  EXPECT_TRUE(HasRule(Analyze("a.h", "Status F();\n"), kNodiscardStatus));
  EXPECT_FALSE(
      HasRule(Analyze("a.h", "[[nodiscard]] Status F();\n"), kNodiscardStatus));
  EXPECT_FALSE(HasRule(Analyze("a.cc", "Status F() { return Status(); }\n"),
                       kNodiscardStatus));
}

TEST(LintRules, NodiscardSeesThroughSpecifiers) {
  EXPECT_TRUE(
      HasRule(Analyze("a.h", "static inline Status F();\n"), kNodiscardStatus));
  EXPECT_FALSE(
      HasRule(Analyze("a.h", "[[nodiscard]] static Result<int> F();\n"),
              kNodiscardStatus));
}

TEST(LintRules, RawStatusOutsideFactoriesFlagged) {
  EXPECT_TRUE(HasRule(
      Analyze("a.cc", "Status F() { return Status(StatusCode::kInternal, \"x\"); }\n"),
      kRawStatus));
  // The factory home is exempt.
  EXPECT_FALSE(HasRule(
      Analyze("src/qpwm/util/status.h",
              "Status F() { return Status(StatusCode::kInternal, \"x\"); }\n"),
      kRawStatus));
  // Factory calls are fine anywhere.
  EXPECT_FALSE(HasRule(
      Analyze("a.cc", "Status F() { return Status::Internal(\"x\"); }\n"),
      kRawStatus));
}

TEST(LintRules, AbortAndThrowFlagged) {
  EXPECT_TRUE(HasRule(Analyze("a.cc", "void F() { abort(); }\n"), kBareAbort));
  EXPECT_TRUE(HasRule(Analyze("a.cc", "void F() { throw 1; }\n"), kBareThrow));
  // check.h is the sanctioned abort site.
  EXPECT_FALSE(HasRule(
      Analyze("src/qpwm/util/check.h", "void F() { std::abort(); }\n"),
      kBareAbort));
}

// --- determinism -------------------------------------------------------------

TEST(LintRules, EntropySourcesFlaggedOutsideUtilRandom) {
  EXPECT_TRUE(HasRule(Analyze("a.cc", "std::mt19937 g(1);\n"),
                      kNondeterministicRandom));
  EXPECT_TRUE(HasRule(Analyze("a.cc", "int x = rand();\n"),
                      kNondeterministicRandom));
  EXPECT_FALSE(HasRule(Analyze("src/qpwm/util/random.h", "std::mt19937 g(1);\n"),
                       kNondeterministicRandom));
  // Member calls named rand() belong to the seeded Rng, not libc.
  EXPECT_FALSE(HasRule(Analyze("a.cc", "int x = rng.rand();\n"),
                       kNondeterministicRandom));
}

TEST(LintRules, UnorderedIterFlaggedForOwnAndIncludedNames) {
  const char* decl_and_loop =
      "std::unordered_map<int, int> m_;\n"
      "void F() { for (const auto& kv : m_) { (void)kv; } }\n";
  EXPECT_TRUE(HasRule(Analyze("a.cc", decl_and_loop), kUnorderedIter));

  // Declared in a header the .cc includes: still visible.
  auto fs = AnalyzeWith(
      {{"src/qpwm/foo/bar.h", "std::unordered_map<int, int> m_;\n"}},
      "src/qpwm/foo/bar.cc",
      "#include \"qpwm/foo/bar.h\"\n"
      "void F() { for (const auto& kv : m_) { (void)kv; } }\n");
  EXPECT_TRUE(HasRule(fs, kUnorderedIter));

  // Same variable name declared in an unrelated, un-included file: clean.
  auto clean = AnalyzeWith(
      {{"src/qpwm/foo/bar.h", "std::unordered_map<int, int> m_;\n"}},
      "src/qpwm/other/baz.cc",
      "std::vector<int> m_;\n"
      "void F() { for (const auto& kv : m_) { (void)kv; } }\n");
  EXPECT_FALSE(HasRule(clean, kUnorderedIter));
}

TEST(LintRules, NestedUnorderedInsideOrderedNotFlagged) {
  // The >> closes both templates; `groups` is a vector, iteration is fine.
  auto fs = Analyze("a.cc",
                    "std::vector<std::unordered_set<int>> groups;\n"
                    "void F() { for (const auto& g : groups) { (void)g; } }\n");
  EXPECT_FALSE(HasRule(fs, kUnorderedIter));
}

TEST(LintRules, AllowPragmaWaivesOnSameAndNextLine) {
  auto fs = Analyze("a.cc",
                    "std::unordered_map<int, int> m_;\n"
                    "void F() {\n"
                    "  // qpwm-lint: allow(unordered-iter) -- reduction\n"
                    "  for (const auto& kv : m_) { (void)kv; }\n"
                    "}\n");
  EXPECT_FALSE(HasRule(fs, kUnorderedIter));
}

// --- parallel hygiene --------------------------------------------------------

TEST(LintRules, ParallelBodyMutatingOuterStateFlagged) {
  auto fs = Analyze("a.cc",
                    "void F(std::vector<int>& xs) {\n"
                    "  int total = 0;\n"
                    "  ParallelFor(xs.size(), [&](size_t i) { total += xs[i]; });\n"
                    "}\n");
  EXPECT_TRUE(HasRule(fs, kParallelMutation));
}

TEST(LintRules, ParallelMutatorMemberCallFlagged) {
  auto fs = Analyze("a.cc",
                    "void F(size_t n, std::vector<int>& out) {\n"
                    "  ParallelFor(n, [&](size_t i) { out.push_back(int(i)); });\n"
                    "}\n");
  EXPECT_TRUE(HasRule(fs, kParallelMutation));
}

TEST(LintRules, PerIndexSlotWritesAreSanctioned) {
  auto fs = Analyze("a.cc",
                    "void F(size_t n, std::vector<int>& out) {\n"
                    "  ParallelFor(n, [&](size_t i) { out[i] = int(i); });\n"
                    "}\n");
  EXPECT_FALSE(HasRule(fs, kParallelMutation));
}

TEST(LintRules, LambdaLocalsIncludingCommaChainsAreFine) {
  auto fs = Analyze("a.cc",
                    "void F(size_t n) {\n"
                    "  ParallelFor(n, [&](size_t i) {\n"
                    "    size_t a = 0, b = 0;\n"
                    "    auto c = i;\n"
                    "    a += i; b++; ++c;\n"
                    "  });\n"
                    "}\n");
  EXPECT_FALSE(HasRule(fs, kParallelMutation));
}

TEST(LintRules, LegacyTupleVectorFlaggedInLibraryCode) {
  auto fs = Analyze("src/qpwm/core/foo.cc",
                    "void F() { std::vector<Tuple> rows; }\n");
  EXPECT_TRUE(HasRule(fs, kLegacyTupleVector));
  // Member storage materializes too.
  fs = Analyze("src/qpwm/core/foo.h",
               "struct C { std::vector<Tuple> rows_; };\n");
  EXPECT_TRUE(HasRule(fs, kLegacyTupleVector));
  // Returning a materialized answer set is the query API contract.
  fs = Analyze("src/qpwm/core/foo.h", "std::vector<Tuple> AllRows();\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
}

TEST(LintRules, LegacyTupleVectorScopeAndBorrows) {
  // structure/ is the sanctioned home; tests/bench are out of scope.
  auto fs = Analyze("src/qpwm/structure/structure.cc",
                    "void F() { std::vector<Tuple> rows; }\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
  fs = Analyze("tests/foo_test.cc", "void F() { std::vector<Tuple> rows; }\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
  // Borrowing by reference and nested template arguments do not match.
  fs = Analyze("src/qpwm/core/foo.cc",
               "void F(const std::vector<Tuple>& rows);\n"
               "std::map<int, std::vector<Tuple>>* g;\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
  // Pragma waives a deliberate cold-path materialization.
  fs = Analyze("src/qpwm/core/foo.cc",
               "// qpwm-lint: allow(legacy-tuple-vector) — cold path\n"
               "std::vector<Tuple> snapshot;\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
}

// --- the symbol index (pass 1) -----------------------------------------------

TEST(LintIndex, ClassMembersAndAnnotationsExtracted) {
  FileSymbols syms = CollectFileSymbols(ScanSource(
      "a.h",
      "class CanonCache {\n"
      " public:\n"
      "  int Get();\n"
      " private:\n"
      "  mutable std::mutex mu_;\n"
      "  std::map<int, int> by_id_ QPWM_GUARDED_BY(mu_);\n"
      "  GenerationStamp gen_;\n"
      "  std::atomic<bool> sealed_{false};\n"
      "};\n"));
  ASSERT_EQ(syms.classes.size(), 1u);
  const ClassSym& cls = syms.classes[0];
  EXPECT_EQ(cls.name, "CanonCache");
  ASSERT_EQ(cls.members.size(), 4u);
  EXPECT_TRUE(cls.members[0].is_mutex);
  EXPECT_TRUE(cls.members[0].is_mutable);
  EXPECT_EQ(cls.members[1].name, "by_id_");
  EXPECT_EQ(cls.members[1].guarded_by, "mu_");
  EXPECT_EQ(cls.members[2].name, "gen_");
  EXPECT_TRUE(cls.members[2].is_stamp);
  EXPECT_EQ(cls.members[3].name, "sealed_");
  EXPECT_TRUE(cls.members[3].is_atomic);
}

TEST(LintIndex, FunctionsResolveAcrossDeclAndDefinition) {
  // QPWM_REQUIRES on the header declaration is honored at the out-of-line
  // definition through the merged per-key function entry.
  LintContext ctx;
  CollectContext(ScanSource("c.h",
                            "class C {\n"
                            "  void Locked() QPWM_REQUIRES(mu_);\n"
                            "  std::mutex mu_;\n"
                            "  int n_ QPWM_GUARDED_BY(mu_);\n"
                            "};\n"),
                 ctx);
  FileScan def = ScanSource("c.cc", "void C::Locked() { n_ += 1; }\n");
  CollectContext(def, ctx);
  FinalizeContext(ctx);
  ASSERT_TRUE(ctx.functions.count("C::Locked"));
  EXPECT_TRUE(ctx.functions["C::Locked"].requires_mutexes.count("mu_"));
  std::vector<Finding> out;
  AnalyzeFile(def, ctx, out);
  EXPECT_FALSE(HasRule(out, kLockDiscipline));
}

TEST(LintIndex, CallGraphEdgesAndBumpClosure) {
  FileSymbols syms = CollectFileSymbols(ScanSource(
      "a.cc",
      "class L {\n"
      "  void Append() { Touch(); }\n"
      "  void Touch() { gen_.Bump(); }\n"
      "  GenerationStamp gen_;\n"
      "};\n"));
  ASSERT_EQ(syms.functions.size(), 2u);
  EXPECT_TRUE(syms.functions[0].calls.count("Touch"));
  EXPECT_TRUE(syms.functions[1].bump_targets.count("gen_"));

  LintContext ctx;
  MergeSymbols(syms, ctx);
  FinalizeContext(ctx);
  // After finalization the closure makes Append a (transitive) bumper.
  ASSERT_TRUE(ctx.functions.count("L::Append"));
  EXPECT_TRUE(ctx.functions["L::Append"].bump_targets.count("gen_"));
}

TEST(LintIndex, ViewTypesAreBuiltinsPlusMarkedClasses) {
  LintContext ctx;
  CollectContext(ScanSource("v.h", "class QPWM_VIEW_TYPE WeightPeek {};\n"),
                 ctx);
  FinalizeContext(ctx);
  EXPECT_TRUE(ctx.view_types.count("TupleRef"));
  EXPECT_TRUE(ctx.view_types.count("string_view"));
  EXPECT_TRUE(ctx.view_types.count("WeightPeek"));
  // A member of the marked type is view-like in any other class.
  auto fs = AnalyzeWith({{"v.h", "class QPWM_VIEW_TYPE WeightPeek {};\n"}},
                        "u.h", "class Holder { WeightPeek peek_; };\n");
  EXPECT_TRUE(HasRule(fs, kViewEscape));
}

TEST(LintIndex, ContextDigestIgnoresLineShiftsButSeesFacts) {
  auto digest_of = [](std::string_view src) {
    LintContext ctx;
    CollectContext(ScanSource("a.h", src), ctx);
    FinalizeContext(ctx);
    return ContextDigest(ctx);
  };
  const uint64_t base = digest_of("class C { int n_; };\n");
  // A pure line shift (leading blank lines) does not invalidate findings.
  EXPECT_EQ(base, digest_of("\n\n\nclass C { int n_; };\n"));
  // A new annotation is a semantic change and must alter the digest.
  EXPECT_NE(base, digest_of("class C { std::mutex m_;\n"
                            "          int n_ QPWM_GUARDED_BY(m_); };\n"));
}

// --- lifetime: view-escape ---------------------------------------------------

TEST(LintRules, ViewMemberWithoutAnnotationFlagged) {
  auto fs = Analyze("a.h", "class H { TupleList rows_; };\n");
  EXPECT_TRUE(HasRule(fs, kViewEscape));
  auto clean =
      Analyze("a.h", "class H { TupleList rows_ QPWM_VIEW_OF(store_);\n"
                     "          std::vector<int> store_; };\n");
  EXPECT_FALSE(HasRule(clean, kViewEscape));
}

TEST(LintRules, ViewTypeClassesAreExemptFromMemberRule) {
  // A view of a view adds no lifetime edge — TupleList itself holds a span.
  auto fs = Analyze("a.h",
                    "class QPWM_VIEW_TYPE Cursor { TupleRef row_; };\n");
  EXPECT_FALSE(HasRule(fs, kViewEscape));
}

TEST(LintRules, ReturnViewOfLocalOwnerFlagged) {
  // The minimized PR-3 shape: a view into a function-local Structure.
  auto fs = Analyze("a.cc",
                    "TupleList F() {\n"
                    "  Structure g = Load();\n"
                    "  return g.relation(0).tuples();\n"
                    "}\n");
  EXPECT_TRUE(HasRule(fs, kViewEscape));
  // Views rooted at a parameter the caller owns are fine.
  auto clean = Analyze("a.cc",
                       "TupleList F(const Structure& g) {\n"
                       "  return g.relation(0).tuples();\n"
                       "}\n");
  EXPECT_FALSE(HasRule(clean, kViewEscape));
}

TEST(LintRules, ReturnedLambdaRefCaptureFlagged) {
  auto fs = Analyze("a.cc",
                    "auto F() { int n = 0; return [&n] { return n; }; }\n");
  EXPECT_TRUE(HasRule(fs, kViewEscape));
  auto clean = Analyze("a.cc",
                       "auto F() { int n = 0; return [n] { return n; }; }\n");
  EXPECT_FALSE(HasRule(clean, kViewEscape));
}

// --- parallel hygiene: lock-discipline ---------------------------------------

TEST(LintRules, GuardedMemberTouchedWithoutLockFlagged) {
  const char* header =
      "class C {\n"
      "  void Inc();\n"
      "  std::mutex mu_;\n"
      "  int n_ QPWM_GUARDED_BY(mu_);\n"
      "};\n";
  auto fs = AnalyzeWith({{"c.h", header}}, "c.cc",
                        "void C::Inc() { n_ += 1; }\n");
  EXPECT_TRUE(HasRule(fs, kLockDiscipline));
  auto locked = AnalyzeWith(
      {{"c.h", header}}, "c.cc",
      "void C::Inc() { std::lock_guard<std::mutex> l(mu_); n_ += 1; }\n");
  EXPECT_FALSE(HasRule(locked, kLockDiscipline));
  auto raii = AnalyzeWith({{"c.h", header}}, "c.cc",
                          "void C::Inc() { MutexLock l(mu_); n_ += 1; }\n");
  EXPECT_FALSE(HasRule(raii, kLockDiscipline));
}

TEST(LintRules, MutexWithNoGuardedMembersAdvisoryShape) {
  auto fs = Analyze("a.h",
                    "class C { std::mutex mu_; int n_; };\n");
  EXPECT_TRUE(HasRule(fs, kLockDiscipline));
  auto clean = Analyze("a.h",
                       "class C { std::mutex mu_;\n"
                       "          int n_ QPWM_GUARDED_BY(mu_); };\n");
  EXPECT_FALSE(HasRule(clean, kLockDiscipline));
}

// --- lifetime/identity: stamp-audit ------------------------------------------

TEST(LintRules, MutationWithoutBumpFlagged) {
  auto fs = Analyze("a.h",
                    "class L {\n"
                    "  void Add(int v) { xs_.push_back(v); }\n"
                    "  std::vector<int> xs_;\n"
                    "  GenerationStamp gen_;\n"
                    "};\n");
  EXPECT_TRUE(HasRule(fs, kStampAudit));
}

TEST(LintRules, DirectAndTransitiveBumpsAreClean) {
  auto direct = Analyze("a.h",
                        "class L {\n"
                        "  void Add(int v) { xs_.push_back(v); gen_.Bump(); }\n"
                        "  std::vector<int> xs_;\n"
                        "  GenerationStamp gen_;\n"
                        "};\n");
  EXPECT_FALSE(HasRule(direct, kStampAudit));
  auto transitive = Analyze("a.h",
                            "class L {\n"
                            "  void Add(int v) { xs_.push_back(v); Touch(); }\n"
                            "  void Touch() { gen_.Bump(); }\n"
                            "  std::vector<int> xs_;\n"
                            "  GenerationStamp gen_;\n"
                            "};\n");
  EXPECT_FALSE(HasRule(transitive, kStampAudit));
}

TEST(LintRules, ConstReadsAndMutableMembersNotFlagged) {
  auto fs = Analyze("a.h",
                    "class L {\n"
                    "  int size() const { return n_; }\n"
                    "  void Note() const { hits_ += 1; }\n"
                    "  int n_ = 0;\n"
                    "  mutable int hits_ = 0;\n"
                    "  GenerationStamp gen_;\n"
                    "};\n");
  EXPECT_FALSE(HasRule(fs, kStampAudit));
}

// --- error-discipline: xtu-discarded-status ----------------------------------

TEST(LintRules, ParkedStatusNeverInspectedFlagged) {
  auto fs = Analyze("a.cc",
                    "Status Save(int);\n"
                    "void F() { Status s = Save(1); }\n");
  EXPECT_TRUE(HasRule(fs, kXtuDiscardedStatus));
  auto voided = Analyze("a.cc",
                        "Status Save(int);\n"
                        "void F() { Status s = Save(1); (void)s; }\n");
  EXPECT_TRUE(HasRule(voided, kXtuDiscardedStatus));
  auto checked = Analyze("a.cc",
                         "Status Save(int);\n"
                         "void F() { Status s = Save(1); if (!s.ok()) return; }\n");
  EXPECT_FALSE(HasRule(checked, kXtuDiscardedStatus));
}

TEST(LintRules, AutoAliasOnlyFlaggedForKnownStatusApis) {
  // The callee's Status return is declared in another file: the project
  // index makes the auto alias checkable.
  auto fs = AnalyzeWith({{"lib.h", "Status Flush();\n"}}, "use.cc",
                        "void F() { auto rc = Flush(); }\n");
  EXPECT_TRUE(HasRule(fs, kXtuDiscardedStatus));
  // Unknown callee: auto alias is out of scope.
  auto clean = Analyze("use.cc", "void F() { auto rc = Flush(); }\n");
  EXPECT_FALSE(HasRule(clean, kXtuDiscardedStatus));
}

// --- classification ----------------------------------------------------------

TEST(LintRules, AdvisorySplitMatchesRuleCatalog) {
  EXPECT_TRUE(IsAdvisoryRule(kUnorderedIter));
  EXPECT_TRUE(IsAdvisoryRule(kParallelMutation));
  EXPECT_TRUE(IsAdvisoryRule(kLegacyTupleVector));
  EXPECT_TRUE(IsAdvisoryRule(kViewEscape));
  EXPECT_TRUE(IsAdvisoryRule(kLockDiscipline));
  EXPECT_FALSE(IsAdvisoryRule(kDiscardedStatus));
  EXPECT_FALSE(IsAdvisoryRule(kBareThrow));
  EXPECT_FALSE(IsAdvisoryRule(kStampAudit));
  EXPECT_FALSE(IsAdvisoryRule(kXtuDiscardedStatus));
  EXPECT_EQ(AllRules().size(), 13u);
}

}  // namespace
}  // namespace qpwm::lint
