// Memoized canonical forms. Planning canonicalizes one rho-neighborhood per
// parameter tuple, and on bounded-degree structures those neighborhoods are
// tiny and highly repetitive (ntp distinct types over |domain| tuples, with
// ntp << |domain|), so almost every CanonicalForm call recomputes a result
// already seen.
//
// Fast path: probes key on a 128-bit fingerprint of the neighborhood under a
// cheap color-refinement relabeling — two independent 64-bit hash streams
// over the relabeled, order-insensitive relation contents. A hit returns an
// interned CanonicalId without materializing any string (the legacy path
// built the full serialized key on every probe). Equal fingerprints are
// *assumed* to mean isomorphic inputs; with 128 independent bits the
// collision odds over even 10^9 distinct neighborhoods are ~2^-68 —
// accepted, and documented here because it is the one place the cache trades
// certainty for speed. The string-keyed CanonCacheKey remains available (and
// exactly sound) for tests and diagnostics.
//
// Identity: ids come from an intern table keyed by the *true* canonical form
// computed on each miss, so two inputs whose refinement stalls into
// different fingerprints but equal canonical forms still unify to one id —
// fingerprint-distinct misses cost a recompute, never a wrong split.
//
// Buckets are sharded under striped mutexes so concurrent typing (see
// util/parallel.h) shares work; the expensive canonicalization itself runs
// outside any lock. CanonicalIds are assigned in discovery order and are NOT
// deterministic across runs or thread counts — consumers must re-intern them
// in their own deterministic order (NeighborhoodTyper does).
#ifndef QPWM_STRUCTURE_CANON_CACHE_H_
#define QPWM_STRUCTURE_CANON_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/structure/structure.h"
#include "qpwm/util/thread_annotations.h"

namespace qpwm {

/// The sound, refinement-relabeled cache key. Exposed for tests and
/// micro-benchmarks (its cost was the legacy per-hit overhead).
std::string CanonCacheKey(const Structure& s, const Tuple& distinguished);

/// 64-bit hash of the string cache key; diagnostic only.
uint64_t NeighborhoodFingerprint(const Structure& s, const Tuple& distinguished);

/// Reusable buffers for fingerprint computation (one per worker; see
/// util/parallel.h ScratchPool). Zero steady-state allocation.
struct CanonKeyScratch {
  std::vector<uint64_t> colors;
  std::vector<uint64_t> tmp;
  std::vector<ElemId> order;
  std::vector<uint32_t> rank;
};

/// 128-bit neighborhood fingerprint: two independent hash streams over the
/// color-refinement-relabeled structure, order-insensitive per relation.
struct CanonFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;
  friend bool operator==(const CanonFingerprint& a, const CanonFingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

struct CanonFingerprintHash {
  size_t operator()(const CanonFingerprint& f) const {
    return static_cast<size_t>(HashCombine(f.lo, f.hi));
  }
};

/// Fingerprint without any string materialization; allocation-free once
/// `scratch` is warm.
CanonFingerprint NeighborhoodFingerprint128(const Structure& s,
                                            const Tuple& distinguished,
                                            CanonKeyScratch& scratch);

class CanonCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Fingerprint entries across shards / distinct interned canonical forms.
    uint64_t entries = 0;
    uint64_t distinct_forms = 0;
    /// Approximate heap bytes held: shard tables + interned form strings.
    uint64_t bytes_resident = 0;
    /// Shard occupancy spread (entries in the fullest shard / mean entries
    /// per shard) — imbalance here means the fingerprint is routing badly.
    uint64_t shard_max = 0;
    double shard_mean = 0.0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Process-wide cache shared by all typers/planners.
  static CanonCache& Global();

  /// Interned id of CanonicalForm(s, distinguished). Thread-safe. Hits cost
  /// one fingerprint + one shard lookup; misses canonicalize outside any
  /// lock. Ids are stable until Clear() — callers must not hold ids across
  /// a Clear().
  uint32_t CanonicalId(const Structure& s, const Tuple& distinguished,
                       CanonKeyScratch& scratch);

  /// The canonical form interned under `id` (copy; the table may rehash).
  std::string CanonicalOfId(uint32_t id) const;

  /// CanonicalForm(s, distinguished), memoized. Thread-safe. Legacy
  /// string-returning entry point, now a wrapper over CanonicalId.
  std::string Canonical(const Structure& s, const Tuple& distinguished);

  Stats stats() const;

  /// Drops every entry and resets the stats (benchmark hygiene).
  void Clear();

  size_t size() const;

 private:
  static constexpr size_t kShards = 64;
  struct Shard {
    mutable qpwm::Mutex mu;
    std::unordered_map<CanonFingerprint, uint32_t, CanonFingerprintHash> map
        QPWM_GUARDED_BY(mu);
  };

  /// Id of `canon` in the intern table, inserting if new.
  uint32_t InternForm(std::string canon);

  std::array<Shard, kShards> shards_;
  mutable qpwm::Mutex intern_mu_;
  std::unordered_map<std::string, uint32_t> form_ids_ QPWM_GUARDED_BY(intern_mu_);
  // points at form_ids_ keys
  std::vector<const std::string*> form_by_id_ QPWM_GUARDED_BY(intern_mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_CANON_CACHE_H_
