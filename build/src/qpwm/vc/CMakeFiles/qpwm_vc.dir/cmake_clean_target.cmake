file(REMOVE_RECURSE
  "libqpwm_vc.a"
)
