// E1 — Theorem 1: computing #Mark(=d) is #P-complete. We demonstrate:
//   (a) the PERMANENT reduction: #Mark(=1) of the reduced instance equals
//       the number of perfect matchings (cross-checked against Ryser);
//   (b) exponential scaling of the exact counter with instance size;
//   (c) #Mark(<=d) growth with the distortion budget d on a fixed instance
//       (the capacity / distortion trade-off, counted exactly).
#include <chrono>
#include <cmath>
#include <iostream>

#include "qpwm/capacity/capacity.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;
using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main() {
  std::cout << "=== bench_capacity: Theorem 1 (#P-completeness of #Mark) ===\n";

  // (a) + (b): PERMANENT reduction and scaling.
  {
    TextTable table("#Mark(=1) on PERMANENT-reduced instances vs Ryser");
    table.SetHeader({"n", "edges", "#Mark(=1)", "permanent", "match", "count ms",
                     "ryser ms"});
    Rng rng(17);
    for (size_t n = 3; n <= 12; ++n) {
      std::vector<std::vector<uint8_t>> matrix(n, std::vector<uint8_t>(n, 0));
      size_t edges = 0;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
          matrix[i][j] = rng.Bernoulli(0.5) ? 1 : 0;
          edges += matrix[i][j];
        }
      }
      MarkCountProblem problem = PermanentReduction(matrix);
      auto t0 = Clock::now();
      uint64_t count = CountMarkingsExact(problem, 1);
      auto t1 = Clock::now();
      uint64_t perm = Permanent01(matrix);
      auto t2 = Clock::now();
      table.AddRow({StrCat(n), StrCat(edges), StrCat(count), StrCat(perm),
                    count == perm ? "OK" : "MISMATCH", FmtDouble(Ms(t0, t1), 2),
                    FmtDouble(Ms(t1, t2), 2)});
    }
    table.Print(std::cout);
    std::cout << "every row must match: counting markings at distortion exactly 1 "
                 "IS counting perfect matchings.\n";
  }

  // (c): capacity vs distortion budget on a bounded-degree instance.
  {
    TextTable table("#Mark(<=d) vs d on a degree-3 instance (n=14, query E(u,v))");
    table.SetHeader({"d", "#Mark(<=d)", "log2", "ms"});
    Rng rng(23);
    Structure g = RandomBoundedDegreeGraph(14, 3, 40, false, rng);
    auto query = AtomQuery::Adjacency("E");
    QueryIndex index(g, *query, AllParams(g, 1));
    MarkCountProblem problem = ProblemFromQuery(index);
    for (int64_t d = 0; d <= 4; ++d) {
      auto t0 = Clock::now();
      uint64_t count = CountMarkingsAtMost(problem, d);
      auto t1 = Clock::now();
      table.AddRow({StrCat(d), StrCat(count),
                    FmtDouble(count > 0 ? std::log2(static_cast<double>(count)) : 0, 1),
                    FmtDouble(Ms(t0, t1), 2)});
    }
    table.Print(std::cout);
    std::cout << "log2(#Mark) is the information-theoretic capacity ceiling at "
                 "each budget; it grows with d (the paper's trade-off).\n";
  }
  return 0;
}
