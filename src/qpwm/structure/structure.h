// Finite relational structures (database instances): a universe {0..n-1} and
// one finite relation per signature symbol. Immutable after Build(); all the
// watermarking machinery treats the structure part as read-only (only weights
// are ever distorted — see weighted.h).
#ifndef QPWM_STRUCTURE_STRUCTURE_H_
#define QPWM_STRUCTURE_STRUCTURE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qpwm/structure/signature.h"
#include "qpwm/util/check.h"
#include "qpwm/util/hash.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Universe element id.
using ElemId = uint32_t;

/// An r-tuple of universe elements.
using Tuple = std::vector<ElemId>;

/// Hash / equality functors so Tuple can key unordered containers.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0x12345;
    for (ElemId e : t) h = HashCombine(h, e);
    return static_cast<size_t>(h);
  }
};

/// One interpreted relation: a deduplicated, sorted set of tuples with O(1)
/// membership tests.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, uint32_t arity) : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  uint32_t arity() const { return arity_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  /// Inserts a tuple (deduplicated). Arity-checked.
  void Add(Tuple t) {
    QPWM_CHECK_EQ(t.size(), arity_);
    if (set_.insert(t).second) tuples_.push_back(std::move(t));
  }

  /// Replaces the tuple list wholesale. Caller guarantees the tuples are
  /// distinct; the membership set is only built if Contains is ever called,
  /// so bulk loads that never test membership (neighborhood extraction)
  /// skip the per-tuple hashing entirely. The deferred build makes the first
  /// Contains call non-thread-safe on a shared relation; qpwm only bulk-loads
  /// thread-private local structures.
  void SetTuplesUnchecked(std::vector<Tuple> tuples);

  bool Contains(const Tuple& t) const {
    if (set_.size() != tuples_.size()) RebuildSet();
    return set_.count(t) > 0;
  }

  /// Sorts the tuple list for deterministic iteration order.
  void Seal();

 private:
  void RebuildSet() const;

  std::string name_;
  uint32_t arity_ = 0;
  std::vector<Tuple> tuples_;
  mutable std::unordered_set<Tuple, TupleHash> set_;
};

/// Process-unique generation stamp, re-issued on copy/move and bumped on
/// mutation. Lazy per-structure caches (see logic/query.h) key on the
/// structure's address, which the allocator happily reuses after a structure
/// dies; a (pointer, generation) pair identifies one logical structure state,
/// so a stale entry for a dead structure that lived at the same address — or
/// for this structure before an in-place mutation — can never satisfy a
/// lookup. Values are equality-compared only and never serialized.
class GenerationStamp {
 public:
  GenerationStamp() : v_(Next()) {}
  GenerationStamp(const GenerationStamp&) : v_(Next()) {}
  GenerationStamp(GenerationStamp&&) noexcept : v_(Next()) {}
  GenerationStamp& operator=(const GenerationStamp&) {
    v_ = Next();
    return *this;
  }
  GenerationStamp& operator=(GenerationStamp&&) noexcept {
    v_ = Next();
    return *this;
  }

  uint64_t value() const { return v_; }
  void Bump() { v_ = Next(); }

 private:
  static uint64_t Next();
  uint64_t v_;
};

/// A finite tau-structure. Element names are optional and only used for
/// human-readable output (examples, figures).
class Structure {
 public:
  Structure() = default;
  Structure(Signature sig, size_t universe_size);

  const Signature& signature() const { return sig_; }
  size_t universe_size() const { return n_; }

  const Relation& relation(size_t i) const { return relations_[i]; }
  /// Non-const access assumes the caller mutates: the generation bumps so
  /// every cached per-structure artifact is invalidated.
  Relation& mutable_relation(size_t i) {
    gen_.Bump();
    return relations_[i];
  }
  size_t num_relations() const { return relations_.size(); }

  /// Stamp identifying this structure object's current state; see
  /// GenerationStamp. Fresh after copy/move, bumped by mutation.
  uint64_t generation() const { return gen_.value(); }

  /// Relation lookup by name (aborts if missing; use signature().Find for the
  /// fallible variant).
  const Relation& relation(const std::string& name) const;

  /// Adds a tuple to relation `rel`; all elements must be < universe_size().
  void AddTuple(size_t rel, Tuple t);
  void AddTuple(const std::string& rel, Tuple t);

  /// Sorts every relation; call once after loading.
  void Seal();

  /// Optional display names.
  void SetElementName(ElemId e, std::string name);
  const std::string& ElementName(ElemId e) const;
  /// Id of the element named `name`, if any.
  [[nodiscard]] Result<ElemId> FindElement(const std::string& name) const;

  /// Total number of tuples across relations.
  size_t TotalTuples() const;

 private:
  Signature sig_;
  size_t n_ = 0;
  std::vector<Relation> relations_;
  std::vector<std::string> element_names_;
  std::unordered_map<std::string, ElemId> name_index_;
  GenerationStamp gen_;
};

/// Per-element incidence index: for each element, the (relation, tuple index)
/// pairs whose tuple contains it. Built once; makes neighborhood extraction
/// O(local size) instead of O(structure size).
class IncidenceIndex {
 public:
  struct Entry {
    uint32_t relation;
    uint32_t tuple_index;
  };

  explicit IncidenceIndex(const Structure& s);

  const std::vector<Entry>& Incident(ElemId e) const { return incident_[e]; }

 private:
  std::vector<std::vector<Entry>> incident_;
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_STRUCTURE_H_
