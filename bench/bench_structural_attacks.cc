// E12 — structural attacks and graceful degradation. An attacker who ships
// a subset of the marked data (deleted tuples, dropped XML subtrees) erases
// pair elements from the answers; the erasure-aware detector abstains on the
// missing votes instead of failing or fabricating them. This bench sweeps
// deletion 0..90% and shows the survival curve: the full mark survives
// moderate deletion, the recovered bits stay correct all the way up, and
// detection never crashes.
//
// Acceptance demo: at redundancy 5 the full mark is recovered at 30% pair
// deletion on the seeded workload (a bit dies only when all 5 of its pairs
// are erased: 0.3^5 ~ 0.24% per bit); the sweep prints the observed curve
// and the redundancy table shows how the survival point scales.
#include <cmath>
#include <iostream>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/relational/table.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"
#include "qpwm/xml/attack.h"
#include "qpwm/xml/parser.h"
#include "qpwm/xml/xpath.h"

using namespace qpwm;

namespace {

std::string Pct(size_t num, size_t den) {
  return StrCat(num * 100 / (den == 0 ? 1 : den), "%");
}

}  // namespace

int main() {
  std::cout << "=== bench_structural_attacks: erasure-aware detection ===\n";

  Rng rng(17);
  Structure g = RandomBoundedDegreeGraph(600, 3, 1800, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap original = RandomWeights(g, 1000, 9999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = 0.25;
  opts.key = {17, 18};
  opts.encoding = PairEncoding::kAntipodal;
  auto base = LocalScheme::Plan(index, opts).ValueOrDie();

  const size_t kRedundancy = 5;
  AdversarialScheme adv(base, kRedundancy);
  std::cout << "workload: 600 elements, " << base.CapacityBits()
            << " pairs, redundancy " << kRedundancy << " -> "
            << adv.CapacityBits() << " message bits\n";

  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(original, msg);

  // 1. Survival curve: one seeded deletion per level, full partial report.
  // A pair is erased when *either* element is deleted, so the element
  // deletion rate p targeting a pair-deletion rate q is p = 1 - sqrt(1 - q).
  {
    TextTable table("Graceful degradation under pair deletion");
    table.SetHeader({"pairs deleted", "pairs erased", "bits recovered",
                     "bits erased", "min margin", "full mark",
                     "recovered bits correct"});
    bool acceptance_at_30 = false;
    for (int level = 0; level <= 9; ++level) {
      const double q = level * 0.1;
      const double frac = 1.0 - std::sqrt(1.0 - q);
      Rng attack_rng(1000 + level);
      HonestServer server(index, marked);
      TamperedAnswerServer tampered(server);
      for (const Tuple& t : SubsetDeletionAttack(index, frac, attack_rng)) {
        tampered.Erase(t);
      }
      AdversarialDetection d = adv.Detect(original, tampered).ValueOrDie();
      bool correct = true;
      for (size_t i = 0; i < d.mark.size(); ++i) {
        if (!d.bit_erased[i] && d.mark.Get(i) != msg.Get(i)) correct = false;
      }
      const bool full = d.complete() && d.mark == msg;
      if (level == 3) acceptance_at_30 = full;
      table.AddRow({StrCat(level * 10, "%"),
                    StrCat(d.pairs_erased), StrCat(d.bits_recovered),
                    StrCat(d.bits_erased), FmtDouble(d.min_margin, 2),
                    full ? "yes" : "no", correct ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::cout << "acceptance (redundancy 5, 30% deletion, full mark): "
              << (acceptance_at_30 ? "PASS" : "FAIL") << "\n";
    std::cout << "erased bits abstain -- the detector reports them instead of "
                 "guessing, so recovered bits stay correct at every level.\n";
  }

  // 2. Redundancy buys deletion tolerance: full-mark rate at 30% deletion.
  {
    TextTable table("Full-mark recovery rate at 30% pair deletion (20 trials)");
    table.SetHeader({"redundancy", "message bits", "full mark", "mean bits erased"});
    for (size_t redundancy : {1, 3, 5, 7, 9}) {
      AdversarialScheme scheme(base, redundancy);
      if (scheme.CapacityBits() == 0) continue;
      BitVec m(scheme.CapacityBits());
      for (size_t i = 0; i < m.size(); ++i) m.Set(i, rng.Coin());
      WeightMap w = scheme.Embed(original, m);
      size_t full = 0;
      double erased = 0;
      const int kTrials = 20;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng attack_rng(2000 + 31 * redundancy + static_cast<uint64_t>(trial));
        HonestServer server(index, w);
        TamperedAnswerServer tampered(server);
        const double frac = 1.0 - std::sqrt(0.7);  // 30% of pairs
        for (const Tuple& t : SubsetDeletionAttack(index, frac, attack_rng)) {
          tampered.Erase(t);
        }
        AdversarialDetection d = scheme.Detect(original, tampered).ValueOrDie();
        full += d.complete() && d.mark == m;
        erased += static_cast<double>(d.bits_erased);
      }
      table.AddRow({StrCat(redundancy), StrCat(scheme.CapacityBits()),
                    Pct(full, kTrials),
                    FmtDouble(erased / kTrials, 2)});
    }
    table.Print(std::cout);
  }

  // 3. Spurious insertions alone are harmless: inserted rows belong to no
  // registered pair, so every vote survives untouched.
  {
    HonestServer server(index, marked);
    TamperedAnswerServer tampered(server);
    Rng attack_rng(3000);
    TupleInsertionAttack(tampered, index, marked, index.num_active(), attack_rng);
    AdversarialDetection d = adv.Detect(original, tampered).ValueOrDie();
    std::cout << "\ninsertion-only attack (100% spurious rows): mark "
              << (d.complete() && d.mark == msg ? "intact" : "DAMAGED")
              << ", min margin " << FmtDouble(d.min_margin, 2) << "\n";
  }

  // 4. XML end to end: drop whole student subtrees from the marked document,
  // re-align by record signature, detect through answers.
  {
    Rng xml_rng(4000);
    XmlDocument doc = RandomSchoolDocument(150, xml_rng, 0, 20, 2);
    EncodedXml enc = EncodeXml(doc, {"exam"}).ValueOrDie();
    XPathQuery xq =
        XPathQuery::Parse("school/student[firstname=$1]/exam").ValueOrDie();
    TrackedDta dta = xq.Compile(enc).ValueOrDie();
    const auto sigma = static_cast<uint32_t>(enc.sigma.size());
    TreeSchemeOptions topts;
    topts.key = {40, 41};
    topts.encoding = PairEncoding::kAntipodal;
    TreeScheme tree_scheme =
        TreeScheme::Plan(enc.tree, enc.tree.labels(), sigma, dta.dta, 1, topts)
            .ValueOrDie();
    AdversarialScheme tree_adv(tree_scheme, 3);

    BitVec xmsg(tree_adv.CapacityBits());
    for (size_t i = 0; i < xmsg.size(); ++i) xmsg.Set(i, xml_rng.Coin());
    WeightMap xmarked = tree_adv.Embed(enc.weights, xmsg);
    XmlDocument published = ApplyWeights(doc, enc, xmarked);

    TextTable table("XML subtree deletion (150 students, redundancy 3)");
    table.SetHeader({"dropped", "records matched/deleted", "bits recovered",
                     "bits erased", "recovered bits correct"});
    for (double frac : {0.0, 0.1, 0.3, 0.6}) {
      Rng attack_rng(5000 + static_cast<uint64_t>(frac * 100));
      XmlDocument leaked = SubtreeDeletionAttack(published, frac, attack_rng);
      SuspectAlignment aligned =
          AlignSuspectWeights(doc, enc, leaked, {"exam"}).ValueOrDie();
      HonestTreeServer server(enc.tree, enc.tree.labels(), sigma, dta.dta, 1,
                              aligned.weights);
      TamperedAnswerServer tampered(server);
      for (NodeId v = 0; v < aligned.present.size(); ++v) {
        if (!aligned.present[v]) tampered.Erase(Tuple{v});
      }
      AdversarialDetection d = tree_adv.Detect(enc.weights, tampered).ValueOrDie();
      bool correct = true;
      for (size_t i = 0; i < d.mark.size(); ++i) {
        if (!d.bit_erased[i] && d.mark.Get(i) != xmsg.Get(i)) correct = false;
      }
      table.AddRow({StrCat(static_cast<int>(frac * 100), "%"),
                    StrCat(aligned.matched, "/", aligned.missing),
                    StrCat(d.bits_recovered), StrCat(d.bits_erased),
                    correct ? "yes" : "NO"});
    }
    table.Print(std::cout);
  }

  // 5. Relational end to end: ship a row subset of the marked travel table.
  {
    Rng rel_rng(6000);
    Database db = RandomTravelDatabase(120, 150, 3, rel_rng);
    RelationalInstance inst = ToWeightedStructure(db).ValueOrDie();
    AtomQuery route("Route", {{true, 0}, {false, 0}}, 1, 1);
    QueryIndex ridx(inst.structure, route, AllParams(inst.structure, 1));
    LocalSchemeOptions ropts;
    ropts.epsilon = 0.25;
    ropts.key = {60, 61};
    ropts.encoding = PairEncoding::kAntipodal;
    auto rbase = LocalScheme::Plan(ridx, ropts).ValueOrDie();
    AdversarialScheme radv(rbase, 3);
    BitVec rmsg(radv.CapacityBits());
    for (size_t i = 0; i < rmsg.size(); ++i) rmsg.Set(i, rel_rng.Coin());
    WeightMap rmarked = radv.Embed(inst.weights, rmsg);
    Database published = ApplyWeightsToDatabase(db, inst, rmarked).ValueOrDie();

    TextTable table("Relational row-subset attack (redundancy 3)");
    table.SetHeader({"rows kept", "elements matched/deleted", "bits recovered",
                     "bits erased", "recovered bits correct"});
    for (double keep : {1.0, 0.9, 0.7, 0.5}) {
      Rng attack_rng(7000 + static_cast<uint64_t>(keep * 100));
      Database leaked_db;
      for (const Table& t : published.tables()) {
        leaked_db.AddTable(SubsetRowsAttack(t, keep, attack_rng));
      }
      auto leaked = ToWeightedStructure(leaked_db);
      if (!leaked.ok()) continue;
      AlignedSuspect aligned = AlignSuspectInstance(inst, leaked.value());
      HonestServer server(ridx, aligned.weights);
      TamperedAnswerServer tampered(server);
      for (ElemId e = 0; e < aligned.present.size(); ++e) {
        if (!aligned.present[e]) tampered.Erase(Tuple{e});
      }
      AdversarialDetection d = radv.Detect(inst.weights, tampered).ValueOrDie();
      bool correct = true;
      for (size_t i = 0; i < d.mark.size(); ++i) {
        if (!d.bit_erased[i] && d.mark.Get(i) != rmsg.Get(i)) correct = false;
      }
      table.AddRow({StrCat(static_cast<int>(keep * 100), "%"),
                    StrCat(aligned.matched, "/", aligned.missing),
                    StrCat(d.bits_recovered), StrCat(d.bits_erased),
                    correct ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::cout << "structural attacks erase votes but never flip them: the "
                 "surviving majority stays clean (Fact 1 + erasure decoding).\n";
  }

  return 0;
}
