#include "qpwm/structure/typemap.h"

#include "qpwm/structure/isomorphism.h"
#include "qpwm/structure/neighborhood.h"

namespace qpwm {

NeighborhoodTyper::NeighborhoodTyper(const Structure& g, uint32_t rho)
    : g_(g), rho_(rho), gaifman_(g), incidence_(g) {}

uint32_t NeighborhoodTyper::TypeOf(const Tuple& c) {
  Neighborhood nb = ExtractNeighborhood(g_, gaifman_, incidence_, c, rho_);
  std::string canon = CanonicalForm(nb.local, nb.distinguished);
  auto [it, inserted] =
      canon_to_type_.emplace(std::move(canon), static_cast<uint32_t>(representatives_.size()));
  if (inserted) representatives_.push_back(c);
  return it->second;
}

}  // namespace qpwm
