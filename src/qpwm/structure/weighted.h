// Weight assignments W : U^s -> Z and weighted structures (G, W).
//
// Weights are the only part of an instance a watermark may touch: the paper's
// 1-local distortion assumption means every individual weight moves by at
// most +-1, and the d-global assumption bounds the induced drift of the
// aggregate f(a) = sum of weights over a query answer.
#ifndef QPWM_STRUCTURE_WEIGHTED_H_
#define QPWM_STRUCTURE_WEIGHTED_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qpwm/structure/structure.h"
#include "qpwm/util/check.h"

namespace qpwm {

/// Numerical weight. The paper uses naturals; we use int64 so that -1
/// distortions never underflow.
using Weight = int64_t;

/// W : U^s -> Weight. Dense storage for the common s = 1 case, hashed storage
/// for general s. Unassigned tuples weigh 0.
class WeightMap {
 public:
  /// `s` is the weight arity; `universe_size` enables dense s=1 storage.
  WeightMap(uint32_t s, size_t universe_size);

  uint32_t s() const { return s_; }

  Weight Get(const Tuple& t) const;
  void Set(const Tuple& t, Weight w);
  /// Adds `delta` to the weight of `t`.
  void Add(const Tuple& t, Weight delta);

  /// s = 1 fast paths.
  Weight GetElem(ElemId e) const {
    QPWM_CHECK_EQ(s_, 1u);
    return dense_[e];
  }
  void SetElem(ElemId e, Weight w) {
    QPWM_CHECK_EQ(s_, 1u);
    dense_[e] = w;
  }
  void AddElem(ElemId e, Weight delta) {
    QPWM_CHECK_EQ(s_, 1u);
    dense_[e] += delta;
  }

  /// Maximum |W(t) - other(t)| over all assigned tuples of either map: the
  /// paper's c in the c-local distortion assumption.
  Weight LocalDistortion(const WeightMap& other) const;

  /// True iff both maps assign weights to exactly the same tuple domain
  /// (same arity; same universe for s = 1, same key set otherwise).
  /// Cross-domain arithmetic (averaging, distortion) is undefined.
  bool SameDomain(const WeightMap& other) const;

  /// Visits every tuple with a (possibly zero) explicitly assigned weight, in
  /// a deterministic order (element id for s = 1, lexicographic tuple order
  /// otherwise) — callers serialize weights into reports and canonical forms,
  /// so hash order must never leak out.
  template <typename Fn>  // Fn(const Tuple&, Weight)
  void ForEach(Fn&& fn) const {
    if (s_ == 1) {
      Tuple t(1);
      for (ElemId e = 0; e < dense_.size(); ++e) {
        t[0] = e;
        fn(static_cast<const Tuple&>(t), dense_[e]);
      }
    } else {
      std::vector<const std::pair<const Tuple, Weight>*> entries;
      entries.reserve(sparse_.size());
      // qpwm-lint: allow(unordered-iter) — collection pass; sorted below
      for (const auto& kv : sparse_) entries.push_back(&kv);
      std::sort(entries.begin(), entries.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      for (const auto* kv : entries) fn(kv->first, kv->second);
    }
  }

  bool operator==(const WeightMap& other) const;

 private:
  uint32_t s_;
  std::vector<Weight> dense_;                          // s == 1
  std::unordered_map<Tuple, Weight, TupleHash> sparse_;  // s > 1
};

/// A weighted structure (G, W). The structure is shared by reference: markers
/// produce siblings that differ only in the weight map.
struct WeightedStructure {
  const Structure* structure = nullptr;
  WeightMap weights;

  WeightedStructure(const Structure& s, WeightMap w)
      : structure(&s), weights(std::move(w)) {}
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_WEIGHTED_H_
