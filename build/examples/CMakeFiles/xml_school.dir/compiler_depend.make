# Empty compiler generated dependencies file for xml_school.
# This may be replaced when dependencies are built.
