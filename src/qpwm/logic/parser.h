// Recursive-descent parser for the FO/MSO surface syntax.
//
// Grammar (precedence low to high: <-> , -> , | , & , ~ / quantifiers):
//   exists y (E(x, y) & ~(y = z))
//   forallset X (x in X -> exists y (E(x, y) & y in X))
// `->` and `<->` are desugared into the core connectives.
#ifndef QPWM_LOGIC_PARSER_H_
#define QPWM_LOGIC_PARSER_H_

#include <string_view>

#include "qpwm/logic/formula.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Parses a formula; returns ParseError with position context on failure.
[[nodiscard]] Result<FormulaPtr> ParseFormula(std::string_view text);

/// Parses, aborting on error — for formulas embedded in code.
FormulaPtr MustParseFormula(std::string_view text);

}  // namespace qpwm

#endif  // QPWM_LOGIC_PARSER_H_
