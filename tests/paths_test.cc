#include <gtest/gtest.h>

#include "qpwm/relational/csv.h"
#include "qpwm/structure/generators.h"
#include "qpwm/structure/paths.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// --- Shortest paths ---------------------------------------------------------

TEST(PathsTest, PathGraphDistances) {
  Structure s = PathGraph(5, true);
  GaifmanGraph g(s);
  WeightMap w(1, 5);
  for (ElemId e = 0; e < 5; ++e) w.SetElem(e, 10);
  auto dist = ShortestPathLengths(g, w, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 10);
  EXPECT_EQ(dist[4], 40);
}

TEST(PathsTest, PicksCheaperRoute) {
  // Square 0-1-2 and 0-3-2 where node 1 is expensive.
  Structure s(GraphSignature(), 4);
  for (auto [a, b] : {std::pair<ElemId, ElemId>{0, 1}, {1, 2}, {0, 3}, {3, 2}}) {
    s.AddTuple(size_t{0}, Tuple{a, b});
    s.AddTuple(size_t{0}, Tuple{b, a});
  }
  s.Seal();
  GaifmanGraph g(s);
  WeightMap w(1, 4);
  w.SetElem(1, 100);
  w.SetElem(3, 1);
  w.SetElem(2, 5);
  auto dist = ShortestPathLengths(g, w, 0);
  EXPECT_EQ(dist[2], 6);  // via 3
}

TEST(PathsTest, UnreachableMarked) {
  Structure s(GraphSignature(), 3);
  s.AddTuple(size_t{0}, Tuple{0, 1});
  s.Seal();
  GaifmanGraph g(s);
  WeightMap w(1, 3);
  auto dist = ShortestPathLengths(g, w, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(PathsTest, DriftBoundedByPerturbationTimesHops) {
  Rng rng(5);
  Structure s = RandomBoundedDegreeGraph(60, 3, 150, true, rng);
  GaifmanGraph g(s);
  WeightMap w = RandomWeights(s, 10, 50, rng);
  WeightMap w2 = w;
  // Perturb 5 elements by +-1.
  for (size_t i = 0; i < 5; ++i) {
    w2.AddElem(static_cast<ElemId>(rng.Below(60)), rng.Coin() ? 1 : -1);
  }
  Weight drift = MaxShortestPathDrift(g, w, w2);
  // A path visits each perturbed element at most once: drift <= 5.
  EXPECT_LE(drift, 5);
}

TEST(PathsTest, IdenticalWeightsZeroDrift) {
  Rng rng(6);
  Structure s = RandomBoundedDegreeGraph(40, 3, 100, true, rng);
  GaifmanGraph g(s);
  WeightMap w = RandomWeights(s, 1, 9, rng);
  EXPECT_EQ(MaxShortestPathDrift(g, w, w), 0);
}

// --- CSV ---------------------------------------------------------------------

std::vector<ColumnSpec> SalesColumns() {
  return {{"id", ColumnRole::kKey, ""}, {"amount", ColumnRole::kWeight, "id"}};
}

TEST(CsvTest, RoundTrip) {
  Table t("Sales", SalesColumns());
  ASSERT_TRUE(t.AddRow({std::string("a"), Weight{10}}).ok());
  ASSERT_TRUE(t.AddRow({std::string("b,c"), Weight{-3}}).ok());
  ASSERT_TRUE(t.AddRow({std::string("quo\"te"), Weight{7}}).ok());
  std::string csv = TableToCsv(t);
  Table back = TableFromCsv("Sales", SalesColumns(), csv).ValueOrDie();
  ASSERT_EQ(back.num_rows(), 3u);
  EXPECT_EQ(back.KeyAt(1, 0), "b,c");
  EXPECT_EQ(back.KeyAt(2, 0), "quo\"te");
  EXPECT_EQ(back.WeightAt(1, 1), -3);
  EXPECT_EQ(TableToCsv(back), csv);
}

TEST(CsvTest, ParsesQuotedNewlines) {
  auto t = TableFromCsv("T", SalesColumns(), "id,amount\n\"two\nlines\",5\n")
               .ValueOrDie();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.KeyAt(0, 0), "two\nlines");
}

TEST(CsvTest, HeaderValidation) {
  EXPECT_FALSE(TableFromCsv("T", SalesColumns(), "id\n").ok());
  EXPECT_FALSE(TableFromCsv("T", SalesColumns(), "id,price\na,1\n").ok());
  EXPECT_FALSE(TableFromCsv("T", SalesColumns(), "").ok());
}

TEST(CsvTest, RowValidation) {
  EXPECT_FALSE(TableFromCsv("T", SalesColumns(), "id,amount\na\n").ok());
  EXPECT_FALSE(TableFromCsv("T", SalesColumns(), "id,amount\na,xyz\n").ok());
  EXPECT_FALSE(TableFromCsv("T", SalesColumns(), "id,amount\n\"a,1\n").ok());
}

TEST(CsvTest, CrLfAccepted) {
  auto t = TableFromCsv("T", SalesColumns(), "id,amount\r\na,1\r\nb,2\r\n")
               .ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace qpwm
