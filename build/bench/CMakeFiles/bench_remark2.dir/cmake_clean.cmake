file(REMOVE_RECURSE
  "CMakeFiles/bench_remark2.dir/bench_remark2.cc.o"
  "CMakeFiles/bench_remark2.dir/bench_remark2.cc.o.d"
  "bench_remark2"
  "bench_remark2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remark2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
