# Empty dependencies file for qpwm_tree.
# This may be replaced when dependencies are built.
