#include "qpwm/structure/canon_cache.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "qpwm/structure/isomorphism.h"
#include "qpwm/util/hash.h"

namespace qpwm {
namespace {

constexpr int kRefineRounds = 2;

void Push32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

// Bounded (two-round) color refinement with commutative multiset hashing.
// Isomorphism-invariant per element; much cheaper than the stability-checked
// refinement inside CanonicalForm (no per-element sorts, no partition ranks,
// flat buffers only).
void RefineColors(const Structure& s, const Tuple& dist,
                  std::vector<uint64_t>& colors, std::vector<uint64_t>& scratch) {
  const size_t n = s.universe_size();
  colors.assign(n, 0x9E3779B97F4A7C15ULL);
  for (size_t i = 0; i < dist.size(); ++i) {
    colors[dist[i]] = HashCombine(colors[dist[i]], 0xD157 + i);
  }
  for (int round = 0; round < kRefineRounds; ++round) {
    scratch.assign(colors.begin(), colors.end());
    for (size_t r = 0; r < s.num_relations(); ++r) {
      for (const Tuple& t : s.relation(r).tuples()) {
        uint64_t h = HashCombine(0xABCD, r);
        for (ElemId e : t) h = HashCombine(h, colors[e]);
        for (size_t pos = 0; pos < t.size(); ++pos) {
          // Additive accumulation keeps the per-element contribution a
          // multiset invariant without sorting.
          scratch[t[pos]] += HashCombine(h, pos + 1);
        }
      }
    }
    colors.swap(scratch);
  }
}

}  // namespace

std::string CanonCacheKey(const Structure& s, const Tuple& distinguished) {
  const size_t n = s.universe_size();
  std::vector<uint64_t> colors, scratch;
  RefineColors(s, distinguished, colors, scratch);

  // Relabel by (refined color, input id). When the colors are all distinct
  // the input id never breaks a tie and the relabeling is canonical.
  std::vector<ElemId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](ElemId a, ElemId b) {
    return colors[a] != colors[b] ? colors[a] < colors[b] : a < b;
  });
  std::vector<uint32_t> rank(n);
  for (size_t i = 0; i < n; ++i) rank[order[i]] = static_cast<uint32_t>(i);

  size_t words = 2 + distinguished.size();
  for (size_t r = 0; r < s.num_relations(); ++r) {
    words += 2 + s.relation(r).size() * s.relation(r).arity();
  }
  std::string out;
  out.reserve(words * 4);
  Push32(out, static_cast<uint32_t>(n));
  Push32(out, static_cast<uint32_t>(distinguished.size()));
  for (ElemId e : distinguished) Push32(out, rank[e]);
  std::vector<Tuple> remapped;
  for (size_t r = 0; r < s.num_relations(); ++r) {
    const auto& tuples = s.relation(r).tuples();
    remapped.clear();
    remapped.reserve(tuples.size());
    for (const Tuple& t : tuples) {
      Tuple m;
      m.reserve(t.size());
      for (ElemId e : t) m.push_back(rank[e]);
      remapped.push_back(std::move(m));
    }
    std::sort(remapped.begin(), remapped.end());
    Push32(out, static_cast<uint32_t>(r));
    Push32(out, static_cast<uint32_t>(remapped.size()));
    for (const Tuple& t : remapped) {
      for (ElemId e : t) Push32(out, e);
    }
  }
  return out;
}

uint64_t NeighborhoodFingerprint(const Structure& s, const Tuple& distinguished) {
  return HashString(CanonCacheKey(s, distinguished));
}

CanonCache& CanonCache::Global() {
  static CanonCache* cache = new CanonCache();  // shared with pool workers; leaked
  return *cache;
}

std::string CanonCache::Canonical(const Structure& s, const Tuple& distinguished) {
  std::string key = CanonCacheKey(s, distinguished);
  Shard& shard = shards_[HashString(key) % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Canonicalize outside the lock: concurrent misses on the same key both
  // compute (identical) results; emplace keeps the first.
  std::string canon = CanonicalForm(s, distinguished);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(std::move(key), canon);
  }
  return canon;
}

CanonCache::Stats CanonCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  return out;
}

void CanonCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

size_t CanonCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace qpwm
