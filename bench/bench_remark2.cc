// E6 — Remark 2's numeric capacity table: hidden bits l = |W|^(1 - q eps)
// for the scheme parameters, e.g. q = 30 and 1/eps = 40 give |W| = 5000 ->
// 8 bits -> 2^8 distributable copies. We tabulate the formula (the paper's
// analytical capacity) next to the realized capacity of our planner on
// instances of matching |W|.
#include <cmath>
#include <iostream>

#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

int main() {
  std::cout << "=== bench_remark2: the paper's capacity formula ===\n";

  TextTable formula("Analytical capacity l = |W|^(1 - q eps) (Remark 2)");
  formula.SetHeader({"|W|", "q", "1/eps", "bits l", "copies 2^l"});
  for (double w : {5000.0, 10000.0, 100000.0}) {
    for (double q : {4.0, 10.0, 30.0}) {
      for (double inv_eps : {10.0, 40.0}) {
        double exponent = 1.0 - q / inv_eps;
        if (exponent <= 0) {
          formula.AddRow({StrCat(static_cast<uint64_t>(w)), StrCat(q),
                          StrCat(inv_eps), "0", "1"});
          continue;
        }
        double bits = std::pow(w, exponent);
        formula.AddRow({StrCat(static_cast<uint64_t>(w)), StrCat(q),
                        StrCat(inv_eps), FmtDouble(bits, 1),
                        bits < 60 ? StrCat(uint64_t{1} << static_cast<int>(bits))
                                  : "2^" + FmtDouble(bits, 0)});
      }
    }
  }
  formula.Print(std::cout);
  std::cout << "paper's example row: q=30, 1/eps=40, |W|=5000 -> 5000^(1/4) ~ 8 "
               "bits -> ~2^8 copies.\n";

  // Realized capacity of the planner (the analytical l is a worst-case
  // guarantee; adjacency queries on degree-bounded graphs do far better).
  TextTable realized("Realized planner capacity (query E(u,v), k=3)");
  realized.SetHeader({"|W|~", "1/eps", "bits l", "bound", "l / |W|"});
  for (size_t n : {1000, 5000, 10000}) {
    for (double inv_eps : {2.0, 10.0, 40.0}) {
      Rng rng(n + static_cast<uint64_t>(inv_eps));
      Structure g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
      auto query = AtomQuery::Adjacency("E");
      QueryIndex index(g, *query, AllParams(g, 1));
      LocalSchemeOptions opts;
      opts.epsilon = 1.0 / inv_eps;
      opts.key = {n, 7};
      auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
      realized.AddRow({StrCat(index.num_active()), StrCat(inv_eps),
                       StrCat(scheme.CapacityBits()), StrCat(scheme.DistortionBound()),
                       FmtDouble(static_cast<double>(scheme.CapacityBits()) /
                                     static_cast<double>(index.num_active()),
                                 3)});
    }
  }
  realized.Print(std::cout);
  std::cout << "capacity grows with |W| and with the allowed distortion 1/eps, as "
               "Definition 4 requires.\n";
  return 0;
}
