#include "qpwm/stream/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "qpwm/coding/verdict.h"

namespace qpwm {
namespace {

/// Fixed-precision float rendering so report bytes never depend on locale or
/// shortest-round-trip formatting quirks.
std::string FmtFixed(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

void AppendKindCounts(std::ostringstream& out, const char* key,
                      const std::vector<uint64_t>& counts) {
  out << "\"" << key << "\":{";
  bool first = true;
  for (size_t k = 0; k < counts.size() && k < kNumUpdateKinds; ++k) {
    if (counts[k] == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << UpdateKindName(static_cast<UpdateKind>(k))
        << "\":" << counts[k];
  }
  out << "}";
}

void AppendOutcome(std::ostringstream& out, const DetectOutcome& o) {
  out << "{\"pass\":" << o.pass << ",\"epoch\":" << o.epoch
      << ",\"gave_up\":" << (o.gave_up ? "true" : "false")
      << ",\"attempts\":" << o.attempts << ",\"ticks\":" << o.ticks;
  if (!o.gave_up) {
    out << ",\"verdict\":\"" << VerdictKindName(o.verdict) << "\""
        << ",\"payload_correct\":" << (o.payload_correct ? "true" : "false")
        << ",\"log10_fp_bound\":" << FmtFixed(o.log10_fp_bound)
        << ",\"bits_erased\":" << o.bits_erased
        << ",\"pairs_erased\":" << o.pairs_erased
        << ",\"votes_cast\":" << o.votes_cast;
  }
  out << "}";
}

}  // namespace

TickPercentiles PercentilesOf(std::vector<uint64_t> values) {
  TickPercentiles p;
  if (values.empty()) return p;
  std::sort(values.begin(), values.end());
  auto rank = [&](double q) {
    // Nearest-rank: ceil(q * n), 1-based, clamped.
    size_t r = static_cast<size_t>(q * static_cast<double>(values.size()) + 0.9999);
    if (r < 1) r = 1;
    if (r > values.size()) r = values.size();
    return values[r - 1];
  };
  p.p50 = rank(0.50);
  p.p90 = rank(0.90);
  p.p99 = rank(0.99);
  return p;
}

StreamReport BuildStreamReport(const UpdateGenerator& generator,
                               const StreamServer& server,
                               const EpochDetector& detector,
                               const DetectOutcome& final_audit) {
  StreamReport r;
  r.generated = generator.generated();
  r.hostile_generated = generator.hostile_generated();
  r.generated_by_kind.assign(generator.generated_by_kind().begin(),
                             generator.generated_by_kind().end());
  r.counters = server.counters();
  r.passes = detector.outcomes();
  r.retried = detector.retried();
  r.gave_up = detector.gave_up();
  std::vector<uint64_t> completed_ticks;
  for (const DetectOutcome& o : r.passes) {
    if (!o.gave_up) {
      ++r.passes_completed;
      completed_ticks.push_back(o.ticks);
    }
  }
  r.latency = PercentilesOf(std::move(completed_ticks));
  r.final_audit = final_audit;
  return r;
}

std::string StreamReportToJson(const StreamReport& r) {
  std::ostringstream out;
  out << "{\"traffic\":{\"generated\":" << r.generated
      << ",\"hostile_generated\":" << r.hostile_generated << ",";
  AppendKindCounts(out, "generated_by_kind", r.generated_by_kind);
  out << "},";

  const StreamCounters& c = r.counters;
  out << "\"admission\":{\"submitted\":" << c.submitted
      << ",\"applied\":" << c.applied << ",\"rejected\":" << c.rejected
      << ",\"rejected_by_code\":{";
  bool first = true;
  for (size_t i = 0; i < kNumStatusCodes; ++i) {
    if (c.rejected_by_code[i] == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << StatusCodeName(static_cast<StatusCode>(i))
        << "\":" << c.rejected_by_code[i];
  }
  out << "},";
  AppendKindCounts(out, "applied_by_kind",
                   std::vector<uint64_t>(c.applied_by_kind.begin(),
                                         c.applied_by_kind.end()));
  out << ",";
  AppendKindCounts(out, "rejected_by_kind",
                   std::vector<uint64_t>(c.rejected_by_kind.begin(),
                                         c.rejected_by_kind.end()));
  out << ",\"fallback_epochs\":" << c.fallback_epochs
      << ",\"epochs_sealed\":" << c.epochs_sealed
      << ",\"accounted\":" << (r.Accounted() ? "true" : "false") << "},";

  out << "\"detection\":{\"passes_completed\":" << r.passes_completed
      << ",\"retried\":" << r.retried << ",\"gave_up\":" << r.gave_up
      << ",\"latency_ticks\":{\"p50\":" << r.latency.p50
      << ",\"p90\":" << r.latency.p90 << ",\"p99\":" << r.latency.p99
      << "},\"passes\":[";
  for (size_t i = 0; i < r.passes.size(); ++i) {
    if (i > 0) out << ",";
    AppendOutcome(out, r.passes[i]);
  }
  out << "],\"final_audit\":";
  AppendOutcome(out, r.final_audit);
  out << "}}";
  return out.str();
}

}  // namespace qpwm
