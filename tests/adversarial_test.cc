#include <gtest/gtest.h>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/parser.h"
#include "qpwm/tree/mso.h"
#include "qpwm/core/distortion.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

struct Fixture {
  Structure g;
  std::unique_ptr<AtomQuery> query;
  std::unique_ptr<QueryIndex> index;
  WeightMap weights;
  std::unique_ptr<LocalScheme> scheme;

  Fixture(size_t n, uint64_t seed, double epsilon = 0.25) : weights(1, 0) {
    Rng rng(seed);
    g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
    query = AtomQuery::Adjacency("E");
    index = std::make_unique<QueryIndex>(g, *query, AllParams(g, 1));
    weights = RandomWeights(g, 1000, 9999, rng);
    LocalSchemeOptions opts;
    opts.epsilon = epsilon;
    opts.key = {seed, seed + 1};
    opts.encoding = PairEncoding::kAntipodal;
    scheme = std::make_unique<LocalScheme>(
        LocalScheme::Plan(*index, opts).ValueOrDie());
  }
};

TEST(AdversarialTest, CapacityIsBasePairsOverRedundancy) {
  Fixture s(300, 1);
  AdversarialScheme adv(*s.scheme, 5);
  EXPECT_EQ(adv.CapacityBits(), s.scheme->CapacityBits() / 5);
  EXPECT_EQ(adv.Redundancy(), 5u);
}

TEST(AdversarialTest, CleanDetectionFullMargin) {
  Fixture s(300, 2);
  AdversarialScheme adv(*s.scheme, 5);
  if (adv.CapacityBits() == 0) GTEST_SKIP();
  Rng rng(2);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(s.weights, msg);
  EXPECT_TRUE(SatisfiesLocalDistortion(s.weights, marked, 1));
  HonestServer server(*s.index, marked);
  auto detection = adv.Detect(s.weights, server).ValueOrDie();
  EXPECT_EQ(detection.mark, msg);
  EXPECT_EQ(detection.min_margin, 1.0);
}

TEST(AdversarialTest, SurvivesJitterAttack) {
  Fixture s(500, 3);
  AdversarialScheme adv(*s.scheme, 9);
  if (adv.CapacityBits() < 2) GTEST_SKIP();
  Rng rng(3);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(s.weights, msg);

  int survived = 0;
  const int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    WeightMap attacked = JitterAttack(marked, 0.2, rng);
    HonestServer server(*s.index, attacked);
    auto detection = adv.Detect(s.weights, server);
    if (detection.ok() && detection.value().mark == msg) ++survived;
  }
  // With +-1 jitter at rate 0.2 against +-2 antipodal deltas, a 9-way
  // majority is overwhelmingly safe.
  EXPECT_GE(survived, kTrials - 1);
}

TEST(AdversarialTest, MarginDegradesUnderNoise) {
  Fixture s(500, 4);
  AdversarialScheme adv(*s.scheme, 9);
  if (adv.CapacityBits() < 1) GTEST_SKIP();
  Rng rng(4);
  BitVec msg(adv.CapacityBits());
  WeightMap marked = adv.Embed(s.weights, msg);

  HonestServer clean(*s.index, marked);
  double clean_margin = adv.Detect(s.weights, clean).ValueOrDie().min_margin;

  WeightMap attacked = UniformNoiseAttack(marked, 2, rng);
  HonestServer noisy(*s.index, attacked);
  double noisy_margin = adv.Detect(s.weights, noisy).ValueOrDie().min_margin;
  EXPECT_LE(noisy_margin, clean_margin);
}

TEST(AdversarialTest, FalsePositiveMarginNearZero) {
  // Detecting against an *unrelated* weight function: votes are coin flips,
  // the margin collapses (limited-knowledge / false-positive bound).
  Fixture s(600, 5);
  AdversarialScheme adv(*s.scheme, 15);
  if (adv.CapacityBits() < 1) GTEST_SKIP();
  Rng rng(5);
  WeightMap unrelated = RandomWeights(s.g, 1000, 9999, rng);
  HonestServer server(*s.index, unrelated);
  auto detection = adv.Detect(s.weights, server).ValueOrDie();
  EXPECT_LE(detection.min_margin, 0.6);
}

TEST(AdversarialTest, GuessingAttackRarelyHitsPairs) {
  Fixture s(500, 6);
  AdversarialScheme adv(*s.scheme, 9);
  if (adv.CapacityBits() < 1) GTEST_SKIP();
  Rng rng(6);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(s.weights, msg);
  WeightMap attacked = GuessingPairAttack(marked, *s.index, 20, rng);
  HonestServer server(*s.index, attacked);
  auto detection = adv.Detect(s.weights, server).ValueOrDie();
  EXPECT_EQ(detection.mark, msg);
}

TEST(AdversarialTest, CollusionAveragingDegradesDeltas) {
  // Two copies with complementary messages: averaging kills every pair delta
  // (the Section 5 auto-collusion hazard). A single copy plus itself is a
  // no-op.
  Fixture s(300, 8);
  AdversarialScheme adv(*s.scheme, 3);
  if (adv.CapacityBits() < 2) GTEST_SKIP();
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); i += 2) msg.Set(i, true);
  BitVec inverse = msg;
  for (size_t i = 0; i < inverse.size(); ++i) inverse.Flip(i);

  WeightMap copy1 = adv.Embed(s.weights, msg);
  WeightMap copy2 = adv.Embed(s.weights, inverse);

  WeightMap self_avg = AveragingCollusionAttack({&copy1, &copy1}).ValueOrDie();
  EXPECT_TRUE(self_avg == copy1);

  WeightMap averaged = AveragingCollusionAttack({&copy1, &copy2}).ValueOrDie();
  // Antipodal +1/-1 on message-carrying pairs cancel exactly; only the
  // constant padding pairs beyond the last group may keep a +-1 residue.
  EXPECT_LE(averaged.LocalDistortion(s.weights), 1);
  HonestServer server(*s.index, averaged);
  auto detection = adv.Detect(s.weights, server).ValueOrDie();
  EXPECT_EQ(detection.min_margin, 0.0);  // every message vote neutralized
}

TEST(AdversarialTest, RedundancyOneEqualsPlainDetection) {
  Fixture s(200, 7);
  AdversarialScheme adv(*s.scheme, 1);
  EXPECT_EQ(adv.CapacityBits(), s.scheme->CapacityBits());
  Rng rng(7);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(s.weights, msg);
  HonestServer server(*s.index, marked);
  EXPECT_EQ(adv.Detect(s.weights, server).ValueOrDie().mark, msg);
  // The base scheme (antipodal) decodes the expanded mark identically.
  EXPECT_EQ(s.scheme->Detect(s.weights, server).ValueOrDie(), msg);
}

TEST(AdversarialTest, RoundingAttackRoundsToNearestMultiple) {
  WeightMap w(1, 6);
  w.SetElem(0, 7);    // -> 5 (7-5 <= 10-7)
  w.SetElem(1, 8);    // -> 10
  w.SetElem(2, 10);   // -> 10
  w.SetElem(3, 0);    // -> 0
  w.SetElem(4, -7);   // -> -5 (ties and sign mirror the positive case)
  w.SetElem(5, 13);   // -> 15
  WeightMap rounded = RoundingAttack(w, 5);
  EXPECT_EQ(rounded.GetElem(0), 5);
  EXPECT_EQ(rounded.GetElem(1), 10);
  EXPECT_EQ(rounded.GetElem(2), 10);
  EXPECT_EQ(rounded.GetElem(3), 0);
  EXPECT_EQ(rounded.GetElem(4), -5);
  EXPECT_EQ(rounded.GetElem(5), 15);
  // Granularity 1 is the identity.
  EXPECT_TRUE(RoundingAttack(w, 1) == w);
}

TEST(AdversarialTest, SurvivesRoundingAttack) {
  // Rounding to granularity 2 moves each weight by at most 1 — inside the
  // attacker's bounded-distortion budget, so majorities survive.
  Fixture s(500, 9);
  AdversarialScheme adv(*s.scheme, 9);
  if (adv.CapacityBits() < 1) GTEST_SKIP();
  Rng rng(9);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(s.weights, msg);
  WeightMap attacked = RoundingAttack(marked, 2);
  HonestServer server(*s.index, attacked);
  auto detection = adv.Detect(s.weights, server).ValueOrDie();
  EXPECT_EQ(detection.mark, msg);
  // Coarse rounding (granularity 50) may destroy the mark, but it also
  // destroys the data; detection still returns a full partial report.
  WeightMap coarse = RoundingAttack(marked, 50);
  HonestServer coarse_server(*s.index, coarse);
  auto coarse_detection = adv.Detect(s.weights, coarse_server).ValueOrDie();
  EXPECT_EQ(coarse_detection.bits_recovered + coarse_detection.bits_erased,
            coarse_detection.mark.size());
}

TEST(AdversarialTest, WeightOnlyAttacksNeverReportErasures) {
  // Value tampering (jitter, noise, rounding, pair guessing, collusion)
  // keeps every element answerable: the erasure accounting must stay silent
  // and every bit group must stay at full size.
  Fixture s(400, 10);
  AdversarialScheme adv(*s.scheme, 5);
  if (adv.CapacityBits() < 1) GTEST_SKIP();
  Rng rng(10);
  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(s.weights, msg);

  const WeightMap attacked[] = {
      JitterAttack(marked, 0.3, rng),
      UniformNoiseAttack(marked, 2, rng),
      RoundingAttack(marked, 3),
      GuessingPairAttack(marked, *s.index, 10, rng),
      AveragingCollusionAttack({&marked, &marked}).ValueOrDie(),
  };
  for (const WeightMap& w : attacked) {
    HonestServer server(*s.index, w);
    auto detection = adv.Detect(s.weights, server).ValueOrDie();
    EXPECT_EQ(detection.pairs_erased, 0u);
    EXPECT_EQ(detection.bits_erased, 0u);
    EXPECT_TRUE(detection.complete());
    ASSERT_EQ(detection.group_sizes.size(), detection.mark.size());
    for (uint32_t g : detection.group_sizes) {
      EXPECT_EQ(g, adv.Redundancy());
    }
    for (bool erased : detection.bit_erased) {
      EXPECT_FALSE(erased);
    }
  }
}

TEST(AdversarialTest, TreeSchemeWrapperSurvivesJitter) {
  // The wrapper is scheme-agnostic: robust XML/tree watermarking.
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  Dta query = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma, {"u", "v"})
                  .ValueOrDie()
                  .dta;
  Rng rng(71);
  BinaryTree t = RandomBinaryTree(1000, 3, rng);
  WeightMap w(1, t.size());
  for (NodeId v = 0; v < t.size(); ++v) w.SetElem(v, rng.Uniform(100, 999));

  TreeSchemeOptions opts;
  opts.key = {71, 72};
  opts.encoding = PairEncoding::kAntipodal;
  auto base = TreeScheme::Plan(t, t.labels(), 3, query, 1, opts).ValueOrDie();
  AdversarialScheme adv(base, 7);
  if (adv.CapacityBits() < 2) GTEST_SKIP();

  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(w, msg);
  EXPECT_LE(w.LocalDistortion(marked), 1);

  int survived = 0;
  for (int trial = 0; trial < 10; ++trial) {
    WeightMap attacked = JitterAttack(marked, 0.2, rng);
    HonestTreeServer server(t, t.labels(), 3, query, 1, attacked);
    auto detection = adv.Detect(w, server);
    survived += detection.ok() && detection.value().mark == msg;
  }
  EXPECT_GE(survived, 9);
}

}  // namespace
}  // namespace qpwm
