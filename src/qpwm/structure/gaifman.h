// Gaifman graph of a structure: elements are adjacent iff they co-occur in
// some relation tuple. Degree bounds, distances and rho-spheres — the
// combinatorics behind locality (Section 3 of the paper).
//
// Adjacency is CSR-packed (offsets + one flat neighbor array). Sphere
// extraction has an allocation-free variant (SphereInto) driven by a
// reusable SphereScratch whose visited bitmap persists across calls and is
// reset via the touched list — the allocating Sphere() overloads zero an
// O(n) bitmap per call, which is quadratic over a full typing pass at 10^6
// elements.
#ifndef QPWM_STRUCTURE_GAIFMAN_H_
#define QPWM_STRUCTURE_GAIFMAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "qpwm/structure/structure.h"

namespace qpwm {

/// Reusable BFS state for SphereInto. Bind to one graph at a time; the
/// visited bitmap is sized on first use and reset member-by-member after
/// each call, so steady-state sphere extraction allocates nothing.
struct SphereScratch {
  std::vector<uint8_t> seen;
  std::vector<ElemId> queue;  // BFS order; doubles as the touched list
};

/// Undirected adjacency view of a structure's Gaifman graph.
class GaifmanGraph {
 public:
  explicit GaifmanGraph(const Structure& s);

  size_t size() const { return offsets_.size() - 1; }
  std::span<const ElemId> Neighbors(ElemId e) const {
    return {neighbors_.data() + offsets_[e], offsets_[e + 1] - offsets_[e]};
  }
  size_t Degree(ElemId e) const { return offsets_[e + 1] - offsets_[e]; }

  /// Maximum degree over all elements — the k of STRUCT_k[tau].
  size_t MaxDegree() const;

  /// Elements at distance <= rho from `a` (the rho-sphere S_rho(a)),
  /// sorted ascending.
  std::vector<ElemId> Sphere(ElemId a, uint32_t rho) const;

  /// S_rho(c) for a tuple: union of the element spheres, sorted ascending.
  std::vector<ElemId> Sphere(const Tuple& c, uint32_t rho) const;

  /// Sphere(c, rho) into `out` using `scratch` — identical output, zero
  /// steady-state allocation. `scratch` must only ever be used with one
  /// graph (the bitmap is sized to this graph on first use).
  void SphereInto(const Tuple& c, uint32_t rho, SphereScratch& scratch,
                  std::vector<ElemId>& out) const;

  /// BFS distance between two elements, or UINT32_MAX if disconnected.
  uint32_t Distance(ElemId a, ElemId b) const;

  /// Heap bytes of the CSR arrays.
  size_t BytesResident() const {
    return offsets_.capacity() * sizeof(uint32_t) +
           neighbors_.capacity() * sizeof(ElemId);
  }

 private:
  std::vector<uint32_t> offsets_;  // universe_size + 1
  std::vector<ElemId> neighbors_;
};

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_GAIFMAN_H_
