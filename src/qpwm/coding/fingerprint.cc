#include "qpwm/coding/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qpwm/util/check.h"
#include "qpwm/util/parallel.h"

namespace qpwm {

namespace {

constexpr uint64_t kBiasPurpose = 0x7461726430626961ULL;  // "tard0bia"
constexpr uint64_t kWordPurpose = 0x7461726430776f64ULL;  // "tard0wod"

constexpr double kInf = std::numeric_limits<double>::infinity();

double ResolveCutoff(const TardosOptions& opts) {
  if (opts.bias_cutoff > 0) return opts.bias_cutoff;
  const double c = static_cast<double>(std::max<size_t>(opts.design_c, 1));
  return 1.0 / (50.0 * c);
}

/// Bernstein tail of the innocent null at score s: an innocent score is a sum
/// of independent zero-mean terms with total variance V and per-term bound M,
/// so P(S >= s) <= exp(-s^2 / (2 (V + M s / 3))).
double NullTailLog10(double score, double variance, double max_term) {
  if (score <= 0) return 0;
  const double denom = 2.0 * (variance + max_term * score / 3.0);
  if (denom <= 0) return -kInf;
  return -(score * score / denom) / std::log(10.0);
}

struct ScanBlock {
  std::vector<Accusation> accused;
  std::vector<Accusation> top;
  uint64_t pruned = 0;
};

bool AccusationBefore(const Accusation& a, const Accusation& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.recipient < b.recipient;
}

/// Keeps `top` as the best `k` entries seen, sorted by AccusationBefore.
void InsertTopK(std::vector<Accusation>& top, const Accusation& a, size_t k) {
  if (k == 0) return;
  if (top.size() == k && !AccusationBefore(a, top.back())) return;
  top.insert(std::upper_bound(top.begin(), top.end(), a, AccusationBefore), a);
  if (top.size() > k) top.pop_back();
}

}  // namespace

TardosCode::TardosCode(size_t length, const TardosOptions& options)
    : opts_(options), cutoff_(ResolveCutoff(options)) {
  QPWM_CHECK(cutoff_ > 0 && cutoff_ < 0.5);
  const PrfKey root{opts_.seed, opts_.seed ^ 0x9E3779B97F4A7C15ULL};
  word_key_ = root.Derive(kWordPurpose);
  // Tardos bias density: p = sin^2(r) with r uniform over [t', pi/2 - t'],
  // t' = arcsin(sqrt(t)) — the arcsine density restricted to [t, 1 - t].
  Rng rng(Prf(root.Derive(kBiasPurpose), std::vector<uint64_t>{length}));
  const double t_prime = std::asin(std::sqrt(cutoff_));
  const double span = std::asin(1.0) - 2.0 * t_prime;  // pi/2 - 2 t'
  QPWM_CHECK(span > 0);
  biases_.reserve(length);
  g_one_.reserve(length);
  g_zero_.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    const double r = t_prime + rng.NextDouble() * span;
    const double s = std::sin(r);
    const double p = std::min(1.0 - cutoff_, std::max(cutoff_, s * s));
    biases_.push_back(p);
    g_one_.push_back(std::sqrt((1.0 - p) / p));
    g_zero_.push_back(std::sqrt(p / (1.0 - p)));
  }
}

TardosCode::Stream TardosCode::StreamOf(uint64_t recipient) const {
  return Stream(Rng(Prf(word_key_, std::vector<uint64_t>{recipient})), this);
}

BitVec TardosCode::CodewordOf(uint64_t recipient) const {
  BitVec word(length());
  Stream stream = StreamOf(recipient);
  for (size_t i = 0; i < length(); ++i) word.Set(i, stream.NextBit());
  return word;
}

const char* TraceVerdictKindName(TraceVerdictKind kind) {
  switch (kind) {
    case TraceVerdictKind::kTraced:
      return "TRACED";
    case TraceVerdictKind::kNoMark:
      return "NO MARK";
    case TraceVerdictKind::kUntraceable:
      return "UNTRACEABLE";
  }
  return "UNKNOWN";
}

FingerprintedWatermark::FingerprintedWatermark(const CodedWatermark& watermark,
                                               const TardosOptions& options)
    : wm_(&watermark), code_(watermark.PayloadBits(), options) {
  QPWM_CHECK_GT(code_.length(), 0u);
}

WeightMap FingerprintedWatermark::EmbedFor(const WeightMap& original,
                                           uint64_t recipient) const {
  return wm_->Embed(original, code_.CodewordOf(recipient));
}

Result<FingerprintObservation> FingerprintedWatermark::Observe(
    const WeightMap& original, const AnswerServer& suspect,
    const DetectOptions& options) const {
  Result<CodedDetection> detected = wm_->Detect(original, suspect, options);
  QPWM_RETURN_NOT_OK(detected.status());
  FingerprintObservation obs;
  obs.channel = std::move(detected).value();
  const size_t n = code_.length();
  QPWM_CHECK_EQ(obs.channel.message.payload.size(), n);
  obs.score_if_one.assign(n, 0.0);
  obs.score_if_zero.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (obs.channel.message.bit_erased[i]) continue;
    const double w = obs.channel.message.confidences[i];
    if (w <= 0) continue;  // the decoder abstained: no evidence either way
    // Symmetric Tardos score (Škorić): seeing payload bit y at bias p
    // credits a candidate that agrees and debits one that disagrees, scaled
    // so an innocent (bias-distributed, independent) candidate contributes
    // mean 0 and variance 1 per unit of weight.
    const double s1 = code_.g_one(i);
    const double s0 = code_.g_zero(i);
    if (obs.channel.message.payload.Get(i)) {
      obs.score_if_one[i] = w * s1;
      obs.score_if_zero[i] = -w * s0;
    } else {
      obs.score_if_one[i] = -w * s1;
      obs.score_if_zero[i] = w * s0;
    }
    obs.null_variance += w * w;
    obs.max_term = std::max(obs.max_term, w * std::max(s1, s0));
    ++obs.positions_scored;
  }
  return obs;
}

double FingerprintedWatermark::Score(const FingerprintObservation& obs,
                                     uint64_t recipient) const {
  QPWM_CHECK_EQ(obs.score_if_one.size(), code_.length());
  TardosCode::Stream stream = code_.StreamOf(recipient);
  double score = 0;
  for (size_t i = 0; i < code_.length(); ++i) {
    score += stream.NextBit() ? obs.score_if_one[i] : obs.score_if_zero[i];
  }
  return score;
}

double FingerprintedWatermark::AccusationThreshold(
    const FingerprintObservation& obs, uint64_t candidates) const {
  QPWM_CHECK_GT(candidates, 0u);
  if (obs.null_variance <= 0) return kInf;
  // Bonferroni over the candidate pool: each innocent may contribute at most
  // fp_threshold / candidates, i.e. its Bernstein tail must stay below
  // exp(-lambda). Inverting the tail gives the score threshold.
  const double lambda = std::log(static_cast<double>(candidates) /
                                 code_.options().fp_threshold);
  const double a = lambda * obs.max_term / 3.0;
  return a + std::sqrt(a * a + 2.0 * obs.null_variance * lambda);
}

TraceResult FingerprintedWatermark::TraceMany(const FingerprintObservation& obs,
                                              uint64_t candidates,
                                              const TraceOptions& options) const {
  QPWM_CHECK_GT(candidates, 0u);
  const size_t n = code_.length();
  QPWM_CHECK_EQ(obs.score_if_one.size(), n);

  TraceResult result;
  result.candidates = candidates;
  result.fp_threshold = code_.options().fp_threshold;
  result.null_variance = obs.null_variance;
  result.max_term = obs.max_term;
  result.threshold = AccusationThreshold(obs, candidates);

  // Best achievable score and its per-position suffix sums: the pruning
  // oracle. suffix[i] bounds what positions i.. can still add (>= 0, since a
  // codeword could in principle dodge every negative term).
  std::vector<double> suffix(n + 1, 0.0);
  for (size_t i = n; i-- > 0;) {
    suffix[i] = suffix[i + 1] +
                std::max(0.0, std::max(obs.score_if_one[i], obs.score_if_zero[i]));
  }
  result.max_achievable = suffix[0];

  const bool hopeless =
      obs.null_variance <= 0 || result.max_achievable < result.threshold;
  if (hopeless) {
    // No codeword can clear the bound: answer in O(L) without scanning.
    result.pruned = candidates;
  } else {
    const double log10_n = std::log10(static_cast<double>(candidates));
    const double prune_below =
        options.prune ? options.prune_frac * result.threshold : -kInf;
    // Each block scans its own candidate range; per-candidate arithmetic is
    // a serial left-to-right sum, so results are independent of the block
    // partition and thread schedule. Blocks arrive in candidate order.
    std::vector<ScanBlock> blocks = ParallelBlocks<ScanBlock>(
        static_cast<size_t>(candidates), [&](size_t begin, size_t end) {
          ScanBlock block;
          for (size_t j = begin; j < end; ++j) {
            TardosCode::Stream stream = code_.StreamOf(j);
            double score = 0;
            bool abandoned = false;
            for (size_t i = 0; i < n; ++i) {
              score += stream.NextBit() ? obs.score_if_one[i]
                                        : obs.score_if_zero[i];
              if (score + suffix[i + 1] < prune_below) {
                abandoned = true;
                break;
              }
            }
            if (abandoned) {
              ++block.pruned;
              continue;
            }
            Accusation a;
            a.recipient = j;
            a.score = score;
            a.log10_fp = std::min(
                0.0, log10_n + NullTailLog10(score, obs.null_variance,
                                             obs.max_term));
            if (score >= result.threshold) block.accused.push_back(a);
            InsertTopK(block.top, a, options.top_k);
          }
          return block;
        });
    for (const ScanBlock& block : blocks) {
      result.pruned += block.pruned;
      result.accused.insert(result.accused.end(), block.accused.begin(),
                            block.accused.end());
      for (const Accusation& a : block.top) {
        InsertTopK(result.top, a, options.top_k);
      }
    }
    std::sort(result.accused.begin(), result.accused.end(), AccusationBefore);
  }

  if (!result.accused.empty()) {
    result.kind = TraceVerdictKind::kTraced;
  } else if (obs.channel.verdict.kind == VerdictKind::kNoMark) {
    result.kind = TraceVerdictKind::kNoMark;
  } else {
    result.kind = TraceVerdictKind::kUntraceable;
  }
  return result;
}

}  // namespace qpwm
