// Detection verdicts with a stated false-positive bound.
//
// The exit codes the CLI hands to scripts (0 match / 1 no mark / 3 partial)
// were previously backed by ad-hoc margin thresholds. The verdict makes the
// confidence explicit: it bounds the probability that an *unrelated* suspect
// (whose pair deltas are independent fair coins under the limited-knowledge
// assumption — the same model Fact 1's false-positive argument uses) would
// produce channel evidence at least as strong as what was observed, for any
// of the 2^k payloads the decoder could have emitted.
//
// Test statistic: U = sum over surviving, non-abstaining pair votes of the
// vote's sign times the re-encoded codeword's bit sign — the total vote mass
// the channel put behind the decoded payload. Under the null hypothesis the
// votes are independent Rademacher variables, so Hoeffding gives
// P(U >= u) <= exp(-u^2 / 2N), and a union bound over the 2^k payloads the
// decoder adaptively chooses from yields
//
//     fp_bound = min(1, 2^k * exp(-u^2 / 2N)).
//
// Abstaining (delta-0) pairs and erased pairs contribute to neither u nor N:
// they carry no coin flip. The bound is distribution-free and needs no tuning
// knobs beyond the match threshold.
#ifndef QPWM_CODING_VERDICT_H_
#define QPWM_CODING_VERDICT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace qpwm {

/// How a detection run should be reported to the caller. Values mirror the
/// CLI exit codes.
enum class VerdictKind {
  kMatch = 0,    // payload complete and the false-positive bound is below
                 // the threshold: claim the mark with stated confidence
  kNoMark = 1,   // the data is intact enough to answer, and the evidence is
                 // statistically indistinguishable from an unmarked source
  kPartial = 3,  // erasures or weak evidence: too damaged to decide
};

const char* VerdictKindName(VerdictKind kind);

struct VerdictOptions {
  /// A match is only claimed when fp_bound <= fp_threshold.
  double fp_threshold = 1e-6;
};

/// Confidence-carrying summary of one coded detection.
struct DetectionVerdict {
  VerdictKind kind = VerdictKind::kPartial;
  /// Hoeffding + union bound described above; 1 when there is no evidence.
  double fp_bound = 1.0;
  /// log10(fp_bound) computed in log space, so extreme confidences are not
  /// flushed to 0 by double underflow (fp_bound saturates at ~1e-308).
  double log10_fp_bound = 0.0;
  /// u: net vote mass behind the decoded payload's codeword.
  int64_t vote_weight = 0;
  /// N: pair votes actually cast on used groups (erasures/abstains excluded).
  uint64_t votes_cast = 0;
  /// Channel-bit agreement with the re-encoded codeword, over used groups.
  size_t channel_agreements = 0;
  size_t channel_disagreements = 0;
  size_t channel_erasures = 0;
  /// Payload accounting echoed from the decoder.
  size_t payload_bits = 0;
  size_t payload_erased = 0;
  /// The threshold the kind was judged against.
  double fp_threshold = 0;

  int ExitCode() const { return static_cast<int>(kind); }
};

/// Computes the bound and classifies. `vote_weight` / `votes_cast` are the
/// u / N of the statistic; the channel_* counters are carried through for
/// reporting only.
DetectionVerdict JudgeDetection(int64_t vote_weight, uint64_t votes_cast,
                                size_t payload_bits, size_t payload_erased,
                                size_t channel_agreements,
                                size_t channel_disagreements,
                                size_t channel_erasures,
                                const VerdictOptions& options = {});

/// One-line human rendering ("MATCH (fp <= 1e-12.3, ...)").
std::string VerdictToString(const DetectionVerdict& v);

}  // namespace qpwm

#endif  // QPWM_CODING_VERDICT_H_
