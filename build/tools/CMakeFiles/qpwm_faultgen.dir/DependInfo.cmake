
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/qpwm_faultgen.cpp" "tools/CMakeFiles/qpwm_faultgen.dir/qpwm_faultgen.cpp.o" "gcc" "tools/CMakeFiles/qpwm_faultgen.dir/qpwm_faultgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qpwm/core/CMakeFiles/qpwm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/logic/CMakeFiles/qpwm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/structure/CMakeFiles/qpwm_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/util/CMakeFiles/qpwm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/tree/CMakeFiles/qpwm_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
