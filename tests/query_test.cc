#include <gtest/gtest.h>

#include <algorithm>

#include "qpwm/logic/parser.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

std::vector<Tuple> Sorted(std::vector<Tuple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(AllParamsTest, Arity1) {
  Structure s = PathGraph(3, false);
  auto params = AllParams(s, 1);
  EXPECT_EQ(params.size(), 3u);
}

TEST(AllParamsTest, Arity2Lexicographic) {
  Structure s = PathGraph(3, false);
  auto params = AllParams(s, 2);
  ASSERT_EQ(params.size(), 9u);
  EXPECT_EQ(params[0], (Tuple{0, 0}));
  EXPECT_EQ(params[1], (Tuple{0, 1}));
  EXPECT_EQ(params.back(), (Tuple{2, 2}));
}

TEST(AllParamsTest, Arity0SingleEmpty) {
  Structure s = PathGraph(3, false);
  auto params = AllParams(s, 0);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_TRUE(params[0].empty());
}

TEST(FormulaQueryTest, AdjacencySemantics) {
  Structure s = CycleGraph(5, false);
  FormulaQuery q(MustParseFormula("E(u, v)"), {"u"}, {"v"});
  EXPECT_EQ(q.Evaluate(s, Tuple{0}), (std::vector<Tuple>{{1}}));
  EXPECT_EQ(q.Evaluate(s, Tuple{4}), (std::vector<Tuple>{{0}}));
}

TEST(FormulaQueryTest, TwoHopQuery) {
  Structure s = CycleGraph(5, false);
  FormulaQuery q(MustParseFormula("exists w (E(u, w) & E(w, v))"), {"u"}, {"v"});
  EXPECT_EQ(q.Evaluate(s, Tuple{0}), (std::vector<Tuple>{{2}}));
}

TEST(FormulaQueryTest, LocalityRankFromQuantifierRank) {
  FormulaQuery q(MustParseFormula("exists w (E(u, w) & E(w, v))"), {"u"}, {"v"});
  EXPECT_EQ(q.LocalityRank().value(), 3u);  // (7^1 - 1)/2
}

TEST(AtomQueryTest, MatchesFormulaQuery) {
  Rng rng(5);
  Structure s = RandomBoundedDegreeGraph(30, 3, 80, false, rng);
  auto atom = AtomQuery::Adjacency("E");
  FormulaQuery formula(MustParseFormula("E(u, v)"), {"u"}, {"v"});
  for (ElemId a = 0; a < 30; ++a) {
    EXPECT_EQ(Sorted(atom->Evaluate(s, Tuple{a})), Sorted(formula.Evaluate(s, Tuple{a})))
        << "param " << a;
  }
}

TEST(AtomQueryTest, ReverseAdjacency) {
  Structure s = PathGraph(3, false);
  // psi(u, v) = E(v, u): predecessors of u.
  AtomQuery q("E", {{false, 0}, {true, 0}}, 1, 1);
  EXPECT_TRUE(q.Evaluate(s, Tuple{0}).empty());
  EXPECT_EQ(q.Evaluate(s, Tuple{1}), (std::vector<Tuple>{{0}}));
}

TEST(AtomQueryTest, CachesPerStructure) {
  Structure s1 = PathGraph(4, false);
  Structure s2 = CycleGraph(4, false);
  auto q = AtomQuery::Adjacency("E");
  EXPECT_TRUE(q->Evaluate(s1, Tuple{3}).empty());       // path end
  EXPECT_EQ(q->Evaluate(s2, Tuple{3}).size(), 1u);      // cycle wraps
  EXPECT_TRUE(q->Evaluate(s1, Tuple{3}).empty());       // cache not confused
}

TEST(DistanceQueryTest, SphereSemantics) {
  Structure s = PathGraph(7, false);
  DistanceQuery q(2);
  auto w = Sorted(q.Evaluate(s, Tuple{3}));
  EXPECT_EQ(w, Sorted({{1}, {2}, {3}, {4}, {5}}));
}

TEST(DistanceQueryTest, MatchesFormulaAtRadiusOne) {
  Rng rng(7);
  Structure s = RandomBoundedDegreeGraph(20, 3, 40, true, rng);
  DistanceQuery dist(1);
  FormulaQuery formula(MustParseFormula("u = v | E(u, v) | E(v, u)"), {"u"}, {"v"});
  for (ElemId a = 0; a < 20; ++a) {
    EXPECT_EQ(Sorted(dist.Evaluate(s, Tuple{a})), Sorted(formula.Evaluate(s, Tuple{a})));
  }
}

TEST(CallbackQueryTest, ForwardsAndDeclares) {
  CallbackQuery q("const", 1, 1,
                  [](const Structure&, const Tuple&) {
                    return std::vector<Tuple>{{0}};
                  },
                  5);
  Structure s = PathGraph(3, false);
  EXPECT_EQ(q.Evaluate(s, Tuple{2}), (std::vector<Tuple>{{0}}));
  EXPECT_EQ(q.LocalityRank().value(), 5u);
  EXPECT_EQ(q.Name(), "const");
}

}  // namespace
}  // namespace qpwm
