file(REMOVE_RECURSE
  "CMakeFiles/bench_xml_mso.dir/bench_xml_mso.cc.o"
  "CMakeFiles/bench_xml_mso.dir/bench_xml_mso.cc.o.d"
  "bench_xml_mso"
  "bench_xml_mso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xml_mso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
