// Preserving several registered queries at once (Section 1: "extension to
// several queries psi_1 ... psi_k is straightforward by simple projection
// techniques"). A UnionQuery presents k queries as one parametric query
// whose parameter tuple is prefixed by the query selector, so one QueryIndex
// / scheme plan bounds the distortion of *every* query simultaneously.
//
// Also here: aggregate views over a query (the paper's note that f = sum can
// be replaced by mean / min / max, and its pointer to relational AGGR
// languages — grouping plus aggregation stays local).
#ifndef QPWM_LOGIC_MULTIQUERY_H_
#define QPWM_LOGIC_MULTIQUERY_H_

#include <memory>
#include <vector>

#include "qpwm/logic/query.h"

namespace qpwm {

/// k queries as one: parameter tuples are (selector, padded params...) where
/// selector < k names the sub-query and the padding reuses element 0 for
/// unused positions. Use Domain() to enumerate exactly the meaningful
/// parameters (selector crossed with each query's own domain).
class UnionQuery : public ParametricQuery {
 public:
  /// Queries must share the result arity. Not owned; keep alive.
  explicit UnionQuery(std::vector<const ParametricQuery*> queries);

  uint32_t ParamArity() const override { return 1 + max_r_; }
  uint32_t ResultArity() const override { return s_; }
  std::vector<Tuple> Evaluate(const Structure& g, const Tuple& params) const override;

  /// The smallest common locality rank bound, if every member has one.
  std::optional<uint32_t> LocalityRank() const override;

  std::string Name() const override;

  /// The combined parameter domain: for each selector i, each tuple of
  /// `domains[i]` padded to max_r with element 0.
  std::vector<Tuple> Domain(const std::vector<std::vector<Tuple>>& domains) const;

  /// Convenience: full domains U^{r_i} for every member.
  std::vector<Tuple> FullDomain(const Structure& g) const;

  size_t num_queries() const { return queries_.size(); }

 private:
  std::vector<const ParametricQuery*> queries_;
  uint32_t max_r_ = 0;
  uint32_t s_ = 0;
};

/// Wraps a query so its answers are grouped: the result elements of the
/// inner query are mapped through a grouping function and the weights of a
/// group travel together. Modeling the paper's AGGR observation: aggregates
/// over groups are preserved whenever the underlying answer sets are.
/// Concretely this query returns, for parameter a, the union of the inner
/// results of every parameter in a's group.
class GroupedQuery : public ParametricQuery {
 public:
  using GroupFn = std::function<uint64_t(const Structure&, const Tuple&)>;

  /// `group_of` maps a parameter tuple to its group id; Evaluate(a) returns
  /// the union of inner results over the group of a (requires a registered
  /// domain to enumerate the group members).
  // qpwm-lint: allow(legacy-tuple-vector) — sink parameter; the query owns its group domain
  GroupedQuery(const ParametricQuery& inner, std::vector<Tuple> domain,
               GroupFn group_of);

  uint32_t ParamArity() const override { return inner_->ParamArity(); }
  uint32_t ResultArity() const override { return inner_->ResultArity(); }
  std::vector<Tuple> Evaluate(const Structure& g, const Tuple& params) const override;
  std::optional<uint32_t> LocalityRank() const override;
  std::string Name() const override { return "group(" + inner_->Name() + ")"; }

 private:
  const ParametricQuery* inner_;
  // qpwm-lint: allow(legacy-tuple-vector) — owned group-enumeration domain, not relation rows
  std::vector<Tuple> domain_;
  GroupFn group_of_;
};

}  // namespace qpwm

#endif  // QPWM_LOGIC_MULTIQUERY_H_
