// StreamReport: the deterministic outcome record of one soak run.
//
// Aggregates the server's quarantine/admission counters, the generator's
// traffic mix, the detector's per-pass survival curve, and virtual-tick
// latency percentiles for detect-under-write passes. Serializes to JSON with
// no wall-clock, hash-order, or thread-count dependence — the soak gate
// diffs the JSON byte-for-byte between --threads 1 and --threads 4.
#ifndef QPWM_STREAM_REPORT_H_
#define QPWM_STREAM_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qpwm/stream/detect_loop.h"
#include "qpwm/stream/stream_server.h"
#include "qpwm/stream/update.h"

namespace qpwm {

struct TickPercentiles {
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

/// Nearest-rank percentiles (deterministic; no interpolation) over the
/// completed passes' tick latencies. All-zero when `values` is empty.
TickPercentiles PercentilesOf(std::vector<uint64_t> values);

struct StreamReport {
  // Traffic.
  uint64_t generated = 0;
  uint64_t hostile_generated = 0;
  std::vector<uint64_t> generated_by_kind;  // indexed by UpdateKind

  // Admission / quarantine (from StreamCounters).
  StreamCounters counters;

  // Detection.
  uint64_t passes_completed = 0;
  uint64_t retried = 0;
  uint64_t gave_up = 0;
  std::vector<DetectOutcome> passes;
  TickPercentiles latency;
  DetectOutcome final_audit;

  /// Every submitted update resolved to applied or rejected, and everything
  /// generated was submitted.
  bool Accounted() const {
    return counters.submitted == counters.applied + counters.rejected &&
           generated == counters.submitted;
  }
};

/// Assembles the report. Call after the final SealEpoch so no structural
/// updates are still staged (Accounted() assumes a sealed stream).
StreamReport BuildStreamReport(const UpdateGenerator& generator,
                               const StreamServer& server,
                               const EpochDetector& detector,
                               const DetectOutcome& final_audit);

/// Deterministic JSON rendering (stable key order, fixed float formatting).
std::string StreamReportToJson(const StreamReport& report);

}  // namespace qpwm

#endif  // QPWM_STREAM_REPORT_H_
