// Pass 1 of qpwm_lint: the project symbol index.
//
// CollectFileSymbols walks one file's token stream with an explicit scope
// stack (namespace / class / function / block) and extracts:
//   - Status/Result-returning API names and unordered-container variable
//     names (shared with the classic per-file rules),
//   - classes with their data members and QPWM_GUARDED_BY / QPWM_VIEW_OF /
//     QPWM_VIEW_TYPE annotations,
//   - functions and methods with parameter/body token spans, coarse callee
//     sets, `x.Bump(` targets and QPWM_REQUIRES sets.
//
// MergeSymbols folds per-file symbols into the shared LintContext;
// FinalizeContext closes the index (builtin view types + transitive
// stamp-bump closure over the same-class call graph). The bottom half is the
// incremental cache: a versioned tab-separated line format keyed by file
// mtime + FNV-1a content hash.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "internal.h"
#include "lint.h"

namespace qpwm::lint {
namespace {

using namespace qpwm::lint::internal;

bool StartsWithQpwmMacro(const std::string& s) {
  return s.rfind("QPWM_", 0) == 0;
}

// Matches `Status Name(` / `Result<...> Name(` and returns the index of the
// function-name token, or kNpos. `i` is the index of the type token.
size_t MatchStatusApi(const std::vector<Token>& t, size_t i) {
  size_t j;
  if (t[i].text == "Status") {
    j = i + 1;
  } else if (t[i].text == "Result" && Is(t, i + 1, "<")) {
    j = SkipAngles(t, i + 1);
    if (j == kNpos) return kNpos;
  } else {
    return kNpos;
  }
  if (!IsIdent(t, j) || IsKeyword(t[j].text)) return kNpos;
  if (!Is(t, j + 1, "(")) return kNpos;
  return j;
}

bool IsUnorderedType(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

// Status-API names and unordered-container variable names (the facts the
// classic discarded-status / unordered-iter rules consume).
void CollectNameFacts(const FileScan& scan, FileSymbols& out) {
  const std::vector<Token>& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i)) continue;
    if (t[i].text == "Status" || t[i].text == "Result") {
      // A return type is never preceded by `.` or `->` (those are calls).
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) continue;
      const size_t name = MatchStatusApi(t, i);
      if (name != kNpos) out.status_apis.insert(t[name].text);
      continue;
    }
    // Unordered-typed variable/member names: after the template argument
    // list, an identifier (possibly behind &/*/const) declares it. The close
    // must be exact — in `vector<unordered_set<...>>` the `>>` also closes
    // the vector, so the following identifier names an ordered container.
    if (IsUnorderedType(t[i].text) && Is(t, i + 1, "<")) {
      int depth = 0;
      size_t j = i + 1;
      bool exact = false;
      for (; j < t.size(); ++j) {
        const std::string& x = t[j].text;
        if (x == ";" || x == "{" || x == "}") break;
        if (x == "<") ++depth;
        else if (x == "<<") depth += 2;
        else if (x == ">" || x == ">>") {
          const int closes = x == ">" ? 1 : 2;
          exact = depth == closes;
          depth -= closes;
          if (depth <= 0) {
            ++j;
            break;
          }
        }
      }
      if (!exact) continue;
      while (j < t.size() &&
             (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
        ++j;
      }
      if (IsIdent(t, j) && !IsKeyword(t[j].text)) {
        out.unordered_names.insert(t[j].text);
      }
    }
  }
}

// --- Structural scan ---------------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock, kOpaque };
  Kind kind;
  size_t sym = kNpos;  // classes/functions index for kClass/kFunction
};

// Tokens that may legally precede the start of a declarator at class or
// namespace scope. Rejecting everything else keeps call expressions,
// initializers and operator chains from being misread as functions.
bool DeclaratorBoundary(const std::vector<Token>& t, size_t k) {
  if (k == 0) return true;
  const Token& p = t[k - 1];
  if (p.kind == Token::Kind::kAttr) return true;
  const std::string& x = p.text;
  if (x == ";" || x == "{" || x == "}" || x == "&" || x == "*" || x == ">" ||
      x == ">>") {
    return true;
  }
  if (x == ":") {  // only the access-specifier colon
    return k >= 2 && (t[k - 2].text == "public" || t[k - 2].text == "private" ||
                      t[k - 2].text == "protected");
  }
  if (p.kind == Token::Kind::kIdent) {
    static const std::set<std::string> kNeverType = {
        "return",    "new",      "delete", "else", "do",       "case",
        "goto",      "throw",    "break",  "continue", "co_return",
        "co_yield",  "operator", "using",  "namespace", "typedef"};
    return kNeverType.count(x) == 0;
  }
  return false;
}

// Leading return-type tokens, walking back from the declarator start.
std::vector<std::string> ReturnTokens(const std::vector<Token>& t, size_t ds) {
  std::vector<std::string> rev;
  size_t k = ds;
  while (k > 0 && rev.size() < 16) {
    const Token& p = t[k - 1];
    const std::string& x = p.text;
    const bool type_like =
        (p.kind == Token::Kind::kIdent && !IsDeclSpecifier(x) &&
         x != "return" && x != "new" && x != "typedef" && x != "using") ||
        x == "::" || x == "<" || x == ">" || x == ">>" || x == "&" ||
        x == "*" || x == ",";
    if (!type_like) break;
    rev.push_back(x);
    --k;
  }
  return std::vector<std::string>(rev.rbegin(), rev.rend());
}

void CollectIdentsInParens(const std::vector<Token>& t, size_t open,
                           size_t close, std::set<std::string>& out) {
  for (size_t j = open + 1; j + 1 < close; ++j) {
    if (IsIdent(t, j) && !IsKeyword(t[j].text)) out.insert(t[j].text);
  }
}

std::string LastIdentInParens(const std::vector<Token>& t, size_t open,
                              size_t close) {
  std::string last;
  for (size_t j = open + 1; j + 1 < close; ++j) {
    if (IsIdent(t, j)) last = t[j].text;
  }
  return last;
}

// After the parameter list of a detected function: walk const/noexcept/
// override/QPWM_* suffixes, a ctor init list, `= default|delete|0`, down to
// the body `{` or the terminating `;`. Fills requires/body and returns the
// index the main walk should resume at (the `{` or `;`, or kNpos on a
// mis-parse).
size_t WalkFunctionSuffix(const std::vector<Token>& t, size_t j,
                          FunctionSym& fn) {
  bool in_init = false;
  while (j < t.size()) {
    const std::string& x = t[j].text;
    if (t[j].kind == Token::Kind::kAttr) {
      ++j;
      continue;
    }
    if (x == "QPWM_REQUIRES" && Is(t, j + 1, "(")) {
      const size_t close = SkipBalanced(t, j + 1);
      if (close == kNpos) return kNpos;
      CollectIdentsInParens(t, j + 1, close, fn.requires_mutexes);
      j = close;
      continue;
    }
    if (StartsWithQpwmMacro(x) && Is(t, j + 1, "(")) {
      j = SkipBalanced(t, j + 1);
      if (j == kNpos) return kNpos;
      continue;
    }
    if (x == "(") {  // noexcept(...), attribute args, init-list entries
      j = SkipBalanced(t, j);
      if (j == kNpos) return kNpos;
      continue;
    }
    if (x == ";") return j;  // declaration only
    if (x == "=") {          // = default / = delete / = 0
      while (j < t.size() && t[j].text != ";") ++j;
      return j < t.size() ? j : kNpos;
    }
    if (x == ":" && !in_init) {
      in_init = true;
      ++j;
      continue;
    }
    if (x == "{") {
      const std::string& prev = t[j - 1].text;
      if (in_init && prev != ")" && prev != "}") {
        // member brace-init inside the ctor init list: `: data_{n}`
        j = SkipBalanced(t, j);
        if (j == kNpos) return kNpos;
        continue;
      }
      fn.body_begin = j;
      return j;
    }
    if (x == "}" || x == ")") return kNpos;  // escaped the declaration
    ++j;
  }
  return kNpos;
}

// Parses the data members of one class body span (members of nested classes
// are parsed when the nested class itself is visited).
void ParseClassMembers(const FileScan& scan, size_t body_begin, size_t body_end,
                       ClassSym& cls) {
  const std::vector<Token>& t = scan.tokens;
  size_t i = body_begin + 1;
  while (i < body_end) {
    const std::string& x = t[i].text;
    if (x == ";") {
      ++i;
      continue;
    }
    if ((x == "public" || x == "private" || x == "protected") &&
        Is(t, i + 1, ":")) {
      i += 2;
      continue;
    }
    if (x == "template" && Is(t, i + 1, "<")) {
      const size_t j = SkipAngles(t, i + 1);
      i = j == kNpos ? i + 1 : j;
      continue;
    }
    if (x == "class" || x == "struct" || x == "enum" || x == "union") {
      // Nested type: skip its body; a trailing declarator names a member.
      size_t j = i + 1;
      while (j < body_end && t[j].text != "{" && t[j].text != ";") {
        if (t[j].text == "(") {
          const size_t c = SkipBalanced(t, j);
          if (c == kNpos) break;
          j = c;
          continue;
        }
        ++j;
      }
      if (j < body_end && t[j].text == "{") {
        const size_t after = SkipBalanced(t, j);
        if (after == kNpos) break;
        j = after;
        if (IsIdent(t, j) && !IsKeyword(t[j].text)) {
          MemberSym m;
          m.name = t[j].text;
          m.type = "struct";
          m.line = t[j].line;
          cls.members.push_back(std::move(m));
        }
        while (j < body_end && t[j].text != ";") ++j;
      }
      i = j + 1;
      continue;
    }
    // General statement scan. `sig` records the top-level token indices
    // (annotation-macro arguments and skipped regions excluded) so the
    // declarator name can be found even with a trailing annotation.
    std::vector<size_t> sig;
    bool has_fn_paren = false, saw_eq = false, fn_like = false;
    bool view_of = false;
    std::string guarded;
    size_t j = i;
    while (j < body_end) {
      const std::string& xx = t[j].text;
      if (StartsWithQpwmMacro(xx) && Is(t, j + 1, "(")) {
        const size_t close = SkipBalanced(t, j + 1);
        if (close == kNpos) {
          j = body_end;
          break;
        }
        if (xx == "QPWM_GUARDED_BY" || xx == "QPWM_PT_GUARDED_BY") {
          guarded = LastIdentInParens(t, j + 1, close);
        } else if (xx == "QPWM_VIEW_OF") {
          view_of = true;
        }
        j = close;
        continue;
      }
      if (xx == "(") {
        if (!saw_eq && j > i && IsIdent(t, j - 1) && !IsKeyword(t[j - 1].text)) {
          has_fn_paren = true;
        }
        sig.push_back(j);
        const size_t c = SkipBalanced(t, j);
        if (c == kNpos) {
          j = body_end;
          break;
        }
        j = c;
        continue;
      }
      if (xx == "<") {
        const size_t c = SkipAngles(t, j);
        if (c != kNpos && c <= body_end) {
          j = c;
          continue;
        }
        sig.push_back(j);
        ++j;
        continue;
      }
      if (xx == "=") {
        saw_eq = true;
        sig.push_back(j);
        ++j;
        continue;
      }
      if (xx == "{") {
        const std::string& prev = t[j - 1].text;
        const bool body_like = prev == ")" || prev == "}" || prev == "const" ||
                               prev == "noexcept" || prev == "override" ||
                               prev == "final" || prev == "try";
        if (body_like) {
          fn_like = true;
          const size_t c = SkipBalanced(t, j);
          j = c == kNpos ? body_end : c;
          break;  // function/nested body ends the statement
        }
        sig.push_back(j);
        const size_t c = SkipBalanced(t, j);  // brace initializer
        if (c == kNpos) {
          j = body_end;
          break;
        }
        j = c;
        continue;
      }
      if (xx == ";") {
        ++j;
        break;
      }
      sig.push_back(j);
      ++j;
    }
    const size_t stmt_end = j;
    if (!has_fn_paren && !fn_like && !sig.empty()) {
      bool skip = false;
      for (size_t s : sig) {
        const std::string& xx = t[s].text;
        if (xx == "using" || xx == "typedef" || xx == "friend" ||
            xx == "operator" || xx == "static_assert") {
          skip = true;
          break;
        }
      }
      if (!skip) {
        // Declarator name: last identifier whose significant successor is a
        // terminator (`;` / `=` / `{` / `[`).
        size_t name_pos = kNpos;
        for (size_t p = sig.size(); p-- > 0;) {
          const size_t idx = sig[p];
          if (!IsIdent(t, idx) || IsKeyword(t[idx].text)) continue;
          const std::string next =
              p + 1 < sig.size() ? t[sig[p + 1]].text : ";";
          if (next == ";" || next == "=" || next == "{" || next == "[") {
            name_pos = p;
            break;
          }
        }
        if (name_pos != kNpos) {
          MemberSym m;
          m.name = t[sig[name_pos]].text;
          m.line = t[sig[name_pos]].line;
          m.has_view_of = view_of;
          m.guarded_by = guarded;
          std::string type;
          for (size_t p = 0; p < name_pos; ++p) {
            const std::string& tok = t[sig[p]].text;
            if (!type.empty()) type += ' ';
            type += tok;
            if (tok == "mutable") m.is_mutable = true;
            if (tok == "static") m.is_static = true;
            if (tok == "mutex" || tok == "Mutex") m.is_mutex = true;
            if (tok == "atomic") m.is_atomic = true;
            if (tok == "GenerationStamp") m.is_stamp = true;
          }
          m.type = std::move(type);
          if (!m.type.empty()) cls.members.push_back(std::move(m));
        }
      }
    }
    i = stmt_end > i ? stmt_end : i + 1;
  }
}

// Class body token spans (open-brace / close-brace indices), aligned with
// out.classes, so the member parse needs no re-location.
void ScanStructure(const FileScan& scan, FileSymbols& out,
                   std::vector<std::pair<size_t, size_t>>& class_spans) {
  const std::vector<Token>& t = scan.tokens;
  std::vector<Scope> stack;
  auto enclosing_class = [&]() -> std::string {
    std::string name;
    for (const Scope& s : stack) {
      if (s.kind != Scope::kClass) continue;
      name = out.classes[s.sym].name;  // already fully nested-qualified
    }
    return name;
  };
  auto active_function = [&]() -> FunctionSym* {
    for (size_t k = stack.size(); k-- > 0;) {
      if (stack[k].kind == Scope::kFunction) {
        return &out.functions[stack[k].sym];
      }
      if (stack[k].kind == Scope::kClass) break;
    }
    return nullptr;
  };

  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& x = t[i].text;

    if (x == "template" && Is(t, i + 1, "<")) {
      // Never walk template parameter lists (`template <class T>` would
      // otherwise read as a class named T).
      const size_t j = SkipAngles(t, i + 1);
      if (j != kNpos) i = j - 1;
      continue;
    }

    if (x == "namespace") {
      size_t j = i + 1;
      while (IsIdent(t, j) || Is(t, j, "::")) ++j;
      if (Is(t, j, "{")) {
        stack.push_back({Scope::kNamespace, kNpos});
        i = j;
      }
      continue;
    }

    if ((x == "class" || x == "struct" || x == "union") &&
        !(i > 0 && t[i - 1].text == "enum")) {
      size_t j = i + 1;
      bool is_view = false;
      while (j < t.size()) {  // attributes / QPWM_* markers before the name
        if (t[j].kind == Token::Kind::kAttr) {
          ++j;
        } else if (StartsWithQpwmMacro(t[j].text)) {
          if (t[j].text == "QPWM_VIEW_TYPE") is_view = true;
          if (Is(t, j + 1, "(")) {
            const size_t c = SkipBalanced(t, j + 1);
            if (c == kNpos) break;
            j = c;
          } else {
            ++j;
          }
        } else if (Is(t, j, "alignas") && Is(t, j + 1, "(")) {
          const size_t c = SkipBalanced(t, j + 1);
          if (c == kNpos) break;
          j = c;
        } else {
          break;
        }
      }
      if (!IsIdent(t, j) || IsKeyword(t[j].text)) {
        if (Is(t, j, "{")) {  // anonymous struct/union
          stack.push_back({Scope::kBlock, kNpos});
          i = j;
        }
        continue;
      }
      const size_t name_pos = j;
      ++j;
      // Base clause / `final` up to the body or a `;` (forward declaration).
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") {
        if (t[j].text == "<") {
          const size_t c = SkipAngles(t, j);
          if (c == kNpos) break;
          j = c;
          continue;
        }
        if (t[j].text == "(") {
          const size_t c = SkipBalanced(t, j);
          if (c == kNpos) break;
          j = c;
          continue;
        }
        ++j;
      }
      if (Is(t, j, "{")) {
        ClassSym cls;
        const std::string outer = enclosing_class();
        cls.name = outer.empty() ? t[name_pos].text
                                 : outer + "::" + t[name_pos].text;
        cls.line = t[name_pos].line;
        cls.is_view_type = is_view;
        out.classes.push_back(std::move(cls));
        class_spans.emplace_back(j, kNpos);
        stack.push_back({Scope::kClass, out.classes.size() - 1});
        i = j;
      } else if (j < t.size()) {
        i = j;  // forward declaration or variable of elaborated type
      }
      continue;
    }

    if (x == "enum") {
      size_t j = i + 1;
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
      if (Is(t, j, "{")) {
        stack.push_back({Scope::kOpaque, kNpos});
      }
      if (j < t.size()) i = j;
      continue;
    }

    if (x == "{") {
      stack.push_back({Scope::kBlock, kNpos});
      continue;
    }
    if (x == "}") {
      if (!stack.empty()) {
        const Scope s = stack.back();
        stack.pop_back();
        if (s.kind == Scope::kClass) class_spans[s.sym].second = i;
        if (s.kind == Scope::kFunction) out.functions[s.sym].body_end = i;
      }
      continue;
    }

    // Function facts inside an active body.
    if (FunctionSym* fn = active_function()) {
      if (IsIdent(t, i) && Is(t, i + 1, "(") && !IsKeyword(x) &&
          !StartsWithQpwmMacro(x)) {
        fn->calls.insert(x);
      }
      if ((x == "." || x == "->") && Is(t, i + 1, "Bump") &&
          Is(t, i + 2, "(") && i > 0 && IsIdent(t, i - 1)) {
        fn->bump_targets.insert(t[i - 1].text);
      }
      continue;
    }

    // Function/method detection at namespace or class scope.
    const bool scope_ok =
        stack.empty() || stack.back().kind == Scope::kNamespace ||
        stack.back().kind == Scope::kClass;
    if (!scope_ok) continue;

    size_t nm = kNpos;
    bool is_dtor = false;
    if (IsIdent(t, i) && !IsKeyword(x) && !StartsWithQpwmMacro(x) &&
        Is(t, i + 1, "(")) {
      nm = i;
      is_dtor = i > 0 && t[i - 1].text == "~";
    }
    if (nm == kNpos) continue;

    // Declarator start: back over `~` and `Class::` qualification.
    size_t ds = nm;
    if (is_dtor) --ds;
    std::string qual;
    while (ds >= 2 && t[ds - 1].text == "::" && IsIdent(t, ds - 2)) {
      qual = qual.empty() ? t[ds - 2].text : t[ds - 2].text + "::" + qual;
      ds -= 2;
    }
    if (!DeclaratorBoundary(t, ds)) continue;

    FunctionSym fn;
    fn.name = (is_dtor ? "~" : "") + t[nm].text;
    fn.line = t[nm].line;
    const std::string encl = enclosing_class();
    fn.class_name = !qual.empty()
                        ? (encl.empty() ? qual : encl + "::" + qual)
                        : encl;
    fn.params_begin = i + 1;
    const size_t params_close = SkipBalanced(t, i + 1);
    if (params_close == kNpos) continue;
    fn.params_end = params_close - 1;
    fn.return_tokens = ReturnTokens(t, ds);
    std::string last_cls = fn.class_name;
    const size_t sep = last_cls.rfind("::");
    if (sep != std::string::npos) last_cls = last_cls.substr(sep + 2);
    fn.is_ctor_or_dtor =
        is_dtor || (!fn.class_name.empty() && fn.name == last_cls);

    const size_t resume = WalkFunctionSuffix(t, params_close, fn);
    if (resume == kNpos) continue;  // not a function after all
    fn.is_definition = fn.body_begin != kNoBody;
    out.functions.push_back(std::move(fn));
    if (out.functions.back().is_definition) {
      stack.push_back({Scope::kFunction, out.functions.size() - 1});
    }
    i = resume;  // the body `{` was consumed by the scope push
  }
}

}  // namespace

FileSymbols CollectFileSymbols(const FileScan& scan) {
  FileSymbols out;
  out.path = NormalizePath(scan.path);
  CollectNameFacts(scan, out);
  std::vector<std::pair<size_t, size_t>> class_spans;
  ScanStructure(scan, out, class_spans);
  for (size_t c = 0; c < out.classes.size(); ++c) {
    const auto [open, close] = class_spans[c];
    if (close == kNpos) continue;  // unterminated scan
    ParseClassMembers(scan, open, close, out.classes[c]);
  }
  return out;
}

void MergeSymbols(const FileSymbols& syms, LintContext& ctx) {
  ctx.status_apis.insert(syms.status_apis.begin(), syms.status_apis.end());
  if (!syms.unordered_names.empty()) {
    std::set<std::string>& u = ctx.unordered_by_file[syms.path];
    u.insert(syms.unordered_names.begin(), syms.unordered_names.end());
  }
  for (const ClassSym& cls : syms.classes) {
    ClassSym& dst = ctx.classes[cls.name];
    if (dst.name.empty()) {
      dst = cls;
      continue;
    }
    dst.is_view_type = dst.is_view_type || cls.is_view_type;
    for (const MemberSym& m : cls.members) {
      bool found = false;
      for (MemberSym& existing : dst.members) {
        if (existing.name != m.name) continue;
        found = true;
        if (existing.guarded_by.empty()) existing.guarded_by = m.guarded_by;
        existing.has_view_of = existing.has_view_of || m.has_view_of;
        break;
      }
      if (!found) dst.members.push_back(m);
    }
  }
  for (const FunctionSym& fn : syms.functions) {
    const std::string key =
        fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
    FunctionSym& dst = ctx.functions[key];
    if (dst.name.empty()) {
      dst = fn;
      // Spans point into a per-file scan; they are meaningless in the
      // merged context.
      dst.body_begin = dst.body_end = kNoBody;
      dst.params_begin = dst.params_end = kNoBody;
    } else {
      dst.is_definition = dst.is_definition || fn.is_definition;
      dst.is_ctor_or_dtor = dst.is_ctor_or_dtor || fn.is_ctor_or_dtor;
      dst.bump_targets.insert(fn.bump_targets.begin(), fn.bump_targets.end());
      dst.calls.insert(fn.calls.begin(), fn.calls.end());
      dst.requires_mutexes.insert(fn.requires_mutexes.begin(),
                                  fn.requires_mutexes.end());
      if (fn.is_definition) dst.line = fn.line;
    }
    std::set<std::string>& edges = ctx.call_graph[key];
    edges.insert(fn.calls.begin(), fn.calls.end());
  }
}

void CollectContext(const FileScan& scan, LintContext& ctx) {
  MergeSymbols(CollectFileSymbols(scan), ctx);
}

void FinalizeContext(LintContext& ctx) {
  static const char* kBuiltinViews[] = {"TupleRef",        "TupleList",
                                        "span",            "string_view",
                                        "DenseWeightView", "WitnessPlan"};
  for (const char* v : kBuiltinViews) ctx.view_types.insert(v);
  for (const auto& [name, cls] : ctx.classes) {
    if (!cls.is_view_type) continue;
    const size_t sep = name.rfind("::");
    ctx.view_types.insert(sep == std::string::npos ? name
                                                   : name.substr(sep + 2));
  }
  // Transitive stamp-bump closure: a method that calls (same-class) a bumper
  // is itself a bumper. Fixpoint over the coarse call graph.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [key, fn] : ctx.functions) {
      if (fn.class_name.empty()) continue;
      for (const std::string& callee : fn.calls) {
        const auto it = ctx.functions.find(fn.class_name + "::" + callee);
        if (it == ctx.functions.end()) continue;
        for (const std::string& target : it->second.bump_targets) {
          if (fn.bump_targets.insert(target).second) changed = true;
        }
      }
    }
  }
  ctx.finalized = true;
}

uint64_t HashContent(std::string_view text) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

uint64_t ContextDigest(const LintContext& ctx) {
  std::ostringstream os;
  for (const std::string& s : ctx.status_apis) os << "a:" << s << '\n';
  for (const auto& [path, names] : ctx.unordered_by_file) {
    os << "u:" << path;
    for (const std::string& n : names) os << ' ' << n;
    os << '\n';
  }
  for (const auto& [name, cls] : ctx.classes) {
    os << "c:" << name << ':' << cls.is_view_type << '\n';
    for (const MemberSym& m : cls.members) {
      os << "m:" << m.name << ':' << m.type << ':' << m.is_mutable
         << m.is_static << m.is_mutex << m.is_atomic << m.is_stamp
         << m.has_view_of << ':' << m.guarded_by << '\n';
    }
  }
  for (const auto& [key, fn] : ctx.functions) {
    os << "f:" << key << ':' << fn.is_definition << fn.is_ctor_or_dtor;
    for (const std::string& b : fn.bump_targets) os << " b" << b;
    for (const std::string& c : fn.calls) os << " c" << c;
    for (const std::string& r : fn.requires_mutexes) os << " r" << r;
    os << '\n';
  }
  for (const std::string& v : ctx.view_types) os << "v:" << v << '\n';
  return HashContent(os.str());
}

// --- Incremental cache -------------------------------------------------------

namespace {

constexpr char kCacheMagic[] = "qpwm-lint-index v2";

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\t') out += "\\t";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    if (s[i] == 't') out += '\t';
    else if (s[i] == 'n') out += '\n';
    else out += s[i];
  }
  return out;
}

std::vector<std::string> SplitTabs(const std::string& line, size_t max_parts) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (parts.size() + 1 < max_parts) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) break;
    parts.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  parts.push_back(line.substr(start));
  return parts;
}

}  // namespace

IndexCache LoadIndexCache(const std::string& path) {
  IndexCache cache;
  std::ifstream in(path);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line) || line != kCacheMagic) return cache;
  CachedFile* cur = nullptr;
  ClassSym* cur_cls = nullptr;
  FunctionSym* cur_fn = nullptr;
  try {
    while (std::getline(in, line)) {
      if (line.size() < 2 || line[1] != '\t') return IndexCache{};
      const char kind = line[0];
      const std::string rest = line.substr(2);
      if (kind == 'F') {
        const auto p = SplitTabs(rest, 4);
        if (p.size() != 4) return IndexCache{};
        CachedFile& cf = cache[p[0]];
        cf.symbols.path = p[0];
        cf.mtime = std::stoll(p[1]);
        cf.hash = std::stoull(p[2]);
        cf.ctx_digest = std::stoull(p[3]);
        cur = &cf;
        cur_cls = nullptr;
        cur_fn = nullptr;
        continue;
      }
      if (cur == nullptr) return IndexCache{};
      switch (kind) {
        case 'A':
          cur->symbols.status_apis.insert(rest);
          break;
        case 'U':
          cur->symbols.unordered_names.insert(rest);
          break;
        case 'C': {
          const auto p = SplitTabs(rest, 3);
          if (p.size() != 3) return IndexCache{};
          ClassSym cls;
          cls.line = std::stoi(p[0]);
          cls.is_view_type = p[1] == "1";
          cls.name = p[2];
          cur->symbols.classes.push_back(std::move(cls));
          cur_cls = &cur->symbols.classes.back();
          break;
        }
        case 'M': {
          if (cur_cls == nullptr) return IndexCache{};
          const auto p = SplitTabs(rest, 5);
          if (p.size() != 5) return IndexCache{};
          MemberSym m;
          m.line = std::stoi(p[0]);
          const unsigned flags = static_cast<unsigned>(std::stoul(p[1]));
          m.is_mutable = flags & 1u;
          m.is_static = flags & 2u;
          m.is_mutex = flags & 4u;
          m.is_atomic = flags & 8u;
          m.is_stamp = flags & 16u;
          m.has_view_of = flags & 32u;
          m.guarded_by = p[2] == "-" ? "" : p[2];
          m.name = p[3];
          m.type = p[4];
          cur_cls->members.push_back(std::move(m));
          break;
        }
        case 'G': {
          const auto p = SplitTabs(rest, 4);
          if (p.size() != 4) return IndexCache{};
          FunctionSym fn;
          fn.line = std::stoi(p[0]);
          const unsigned flags = static_cast<unsigned>(std::stoul(p[1]));
          fn.is_definition = flags & 1u;
          fn.is_ctor_or_dtor = flags & 2u;
          fn.class_name = p[2] == "-" ? "" : p[2];
          fn.name = p[3];
          cur->symbols.functions.push_back(std::move(fn));
          cur_fn = &cur->symbols.functions.back();
          break;
        }
        case 'B':
          if (cur_fn == nullptr) return IndexCache{};
          cur_fn->bump_targets.insert(rest);
          break;
        case 'L':
          if (cur_fn == nullptr) return IndexCache{};
          cur_fn->calls.insert(rest);
          break;
        case 'R':
          if (cur_fn == nullptr) return IndexCache{};
          cur_fn->requires_mutexes.insert(rest);
          break;
        case 'X': {
          const auto p = SplitTabs(rest, 3);
          if (p.size() != 3) return IndexCache{};
          Finding f;
          f.file = cur->symbols.path;
          f.line = std::stoi(p[0]);
          f.rule = p[1];
          f.message = Unescape(p[2]);
          cur->findings.push_back(std::move(f));
          break;
        }
        default:
          return IndexCache{};
      }
    }
  } catch (...) {  // qpwm-lint: allow(bare-throw) -- std::stoi failure on a corrupt cache degrades to a cold cache, never a crash
    return IndexCache{};
  }
  return cache;
}

bool SaveIndexCache(const std::string& path, const IndexCache& cache) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << kCacheMagic << '\n';
  for (const auto& [file, cf] : cache) {
    out << "F\t" << file << '\t' << cf.mtime << '\t' << cf.hash << '\t'
        << cf.ctx_digest << '\n';
    for (const std::string& s : cf.symbols.status_apis) out << "A\t" << s << '\n';
    for (const std::string& s : cf.symbols.unordered_names) {
      out << "U\t" << s << '\n';
    }
    for (const ClassSym& cls : cf.symbols.classes) {
      out << "C\t" << cls.line << '\t' << (cls.is_view_type ? 1 : 0) << '\t'
          << cls.name << '\n';
      for (const MemberSym& m : cls.members) {
        const unsigned flags = (m.is_mutable ? 1u : 0u) |
                               (m.is_static ? 2u : 0u) | (m.is_mutex ? 4u : 0u) |
                               (m.is_atomic ? 8u : 0u) | (m.is_stamp ? 16u : 0u) |
                               (m.has_view_of ? 32u : 0u);
        out << "M\t" << m.line << '\t' << flags << '\t'
            << (m.guarded_by.empty() ? "-" : m.guarded_by) << '\t' << m.name
            << '\t' << m.type << '\n';
      }
    }
    for (const FunctionSym& fn : cf.symbols.functions) {
      const unsigned flags =
          (fn.is_definition ? 1u : 0u) | (fn.is_ctor_or_dtor ? 2u : 0u);
      out << "G\t" << fn.line << '\t' << flags << '\t'
          << (fn.class_name.empty() ? "-" : fn.class_name) << '\t' << fn.name
          << '\n';
      for (const std::string& b : fn.bump_targets) out << "B\t" << b << '\n';
      for (const std::string& c : fn.calls) out << "L\t" << c << '\n';
      for (const std::string& r : fn.requires_mutexes) {
        out << "R\t" << r << '\n';
      }
    }
    for (const Finding& f : cf.findings) {
      out << "X\t" << f.line << '\t' << f.rule << '\t' << Escape(f.message)
          << '\n';
    }
  }
  return out.good();
}

}  // namespace qpwm::lint
