// E4 — reproduces the paper's worked figures and examples as printed tables:
//   Figure 1/2: the 6-element instance, neighborhood types, W_u sets;
//   Figure 3:   the naive (d:+1, e:-1) marking and its +1/-1 leak on c, f;
//   Figure 4:   canonical parameters, cl(w) classes, and a verified
//               epsilon-good pair marking with its distortion column;
//   Examples 1-3: the travel database and its distortions.
#include <iostream>

#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/relational/table.h"
#include "qpwm/structure/generators.h"
#include "qpwm/structure/typemap.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

namespace {

void Figure1And2() {
  Structure g = Figure1Instance();
  auto query = AtomQuery::Adjacency("R");
  QueryIndex index(g, *query, AllParams(g, 1));
  NeighborhoodTyper typer(g, 1);

  TextTable table("Figure 1/2 - instance, types and active weighted elements");
  table.SetHeader({"u", "type(u)", "W_u"});
  for (ElemId u = 0; u < g.universe_size(); ++u) {
    std::string w_set;
    for (uint32_t w : index.ResultFor(index.FindParam(Tuple{u}).ValueOrDie())) {
      if (!w_set.empty()) w_set += ", ";
      w_set += g.ElementName(index.active_element(w)[0]);
    }
    table.AddRow({g.ElementName(u), StrCat(typer.TypeOf(Tuple{u}) + 1),
                  "{" + w_set + "}"});
  }
  table.Print(std::cout);
  std::cout << "ntp(1, G) = " << typer.NumTypes() << " (paper: 3 types)\n";
  std::cout << "active weighted elements |W| = " << index.num_active() << "\n";
}

void Figure3() {
  Structure g = Figure1Instance();
  auto query = AtomQuery::Adjacency("R");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap w(1, 6);
  for (ElemId e = 0; e < 6; ++e) w.SetElem(e, 10);

  // The naive marking: +1 on d, -1 on e.
  size_t d = index.FindActive(Tuple{3}).ValueOrDie();
  size_t e = index.FindActive(Tuple{4}).ValueOrDie();
  PairMarking naive(index, {{static_cast<uint32_t>(d), static_cast<uint32_t>(e)}});
  WeightMap marked = w;
  BitVec one(1);
  one.Set(0, true);
  naive.Apply(one, marked);

  TextTable table("Figure 3 - naive (d:+1, e:-1) marking: distortion per query");
  table.SetHeader({"u", "distortion on f(u)"});
  auto drift = PerParamDistortion(index, w, marked);
  const char* signs[] = {"0", "0", "+1", "0", "0", "-1"};  // as in the paper
  for (ElemId u = 0; u < 6; ++u) {
    table.AddRow({g.ElementName(u),
                  StrCat(drift[u] == 0 ? "0" : signs[u])});
  }
  table.Print(std::cout);
  std::cout << "paper: zero on a, b but +1 on c and -1 on f -> not an "
               "S-partition pair\n";
}

void Figure4() {
  Structure g = Figure1Instance();
  auto query = AtomQuery::Adjacency("R");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap w(1, 6);
  for (ElemId e = 0; e < 6; ++e) w.SetElem(e, 10);

  LocalSchemeOptions options;
  options.key = {1, 2};
  options.epsilon = 1.0;
  auto scheme = LocalScheme::Plan(index, options).ValueOrDie();

  TextTable pairs("Figure 4 - scheme-selected pairs (epsilon-good marking)");
  pairs.SetHeader({"pair", "+1 element", "-1 element"});
  for (size_t i = 0; i < scheme.marking().size(); ++i) {
    const WeightPair& p = scheme.marking().pairs()[i];
    pairs.AddRow({StrCat("W", i + 1),
                  g.ElementName(index.active_element(p.plus)[0]),
                  g.ElementName(index.active_element(p.minus)[0])});
  }
  pairs.Print(std::cout);

  // Worst-case distortion over all 2^l marks.
  Weight worst = 0;
  for (uint64_t m = 0; m < (uint64_t{1} << scheme.CapacityBits()); ++m) {
    WeightMap marked = scheme.Embed(w, BitVec::FromUint64(m, scheme.CapacityBits()));
    worst = std::max(worst, GlobalDistortion(index, w, marked));
  }
  std::cout << "capacity " << scheme.CapacityBits() << " bit(s); max distortion over "
            << (1u << scheme.CapacityBits()) << " marks = " << worst
            << " <= budget " << scheme.Budget() << "\n";
}

void Examples123() {
  Database db = TravelAgencyDatabase();
  auto instance = ToWeightedStructure(db).ValueOrDie();
  AtomQuery query("Route", {{true, 0}, {false, 0}}, 1, 1);
  QueryIndex index(instance.structure, query, AllParams(instance.structure, 1));

  TextTable f_table("Example 2 - f values of the travel database (minutes)");
  f_table.SetHeader({"travel", "f"});
  for (const char* travel : {"India discovery", "Nepal Trek", "TourNepal"}) {
    ElemId e = instance.structure.FindElement(travel).ValueOrDie();
    size_t p = index.FindParam(Tuple{e}).ValueOrDie();
    f_table.AddRow({travel, StrCat(index.SumWeights(p, instance.weights))});
  }
  f_table.Print(std::cout);

  std::cout << "active weighted elements (paper: {F21, G12, R5, F2, T33}, G13 "
               "inactive): ";
  for (size_t i = 0; i < index.num_active(); ++i) {
    std::cout << instance.structure.ElementName(index.active_element(i)[0]) << " ";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== bench_figures: paper Figures 1-4 and Examples 1-3 ===\n";
  Figure1And2();
  Figure3();
  Figure4();
  Examples123();
  return 0;
}
