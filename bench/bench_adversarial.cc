// E11 — Fact 1 (Khanna-Zane): the adversarial transform. Detection rate as
// a function of the attacker's distortion budget and the redundancy factor,
// plus the false-positive rate on unrelated databases (the limited-knowledge
// bound beta).
#include <iostream>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/distortion.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

int main() {
  std::cout << "=== bench_adversarial: Fact 1 (Khanna-Zane transform) ===\n";

  Rng rng(91);
  Structure g = RandomBoundedDegreeGraph(1200, 3, 3600, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap original = RandomWeights(g, 1000, 99999, rng);

  LocalSchemeOptions opts;
  opts.epsilon = 0.25;
  opts.key = {91, 92};
  opts.encoding = PairEncoding::kAntipodal;
  auto base = LocalScheme::Plan(index, opts).ValueOrDie();
  std::cout << "base pairs: " << base.CapacityBits() << "\n";

  const int kTrials = 50;

  // Detection rate vs attack strength vs redundancy.
  {
    TextTable table("Detection rate under jitter attacks (50 trials each)");
    table.SetHeader({"redundancy", "message bits", "jitter 10%", "jitter 30%",
                     "jitter 50%", "noise +-1", "noise +-3"});
    for (size_t redundancy : {1, 3, 7, 15}) {
      AdversarialScheme scheme(base, redundancy);
      if (scheme.CapacityBits() == 0) continue;

      auto run = [&](auto&& attack_fn) {
        int ok = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
          BitVec msg(scheme.CapacityBits());
          for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
          WeightMap marked = scheme.Embed(original, msg);
          WeightMap attacked = attack_fn(marked);
          HonestServer server(index, attacked);
          auto detection = scheme.Detect(original, server);
          ok += detection.ok() && detection.value().mark == msg;
        }
        return StrCat(ok * 100 / kTrials, "%");
      };

      table.AddRow({StrCat(redundancy), StrCat(scheme.CapacityBits()),
                    run([&](const WeightMap& m) { return JitterAttack(m, 0.1, rng); }),
                    run([&](const WeightMap& m) { return JitterAttack(m, 0.3, rng); }),
                    run([&](const WeightMap& m) { return JitterAttack(m, 0.5, rng); }),
                    run([&](const WeightMap& m) {
                      return UniformNoiseAttack(m, 1, rng);
                    }),
                    run([&](const WeightMap& m) {
                      return UniformNoiseAttack(m, 3, rng);
                    })});
    }
    table.Print(std::cout);
    std::cout << "redundancy buys robustness: higher redundancy survives "
                 "stronger (bounded) attacks, trading capacity (Fact 1).\n";
  }

  // False positives: unrelated databases with matching schema.
  {
    TextTable table("False-positive margins on unrelated weight functions");
    table.SetHeader({"redundancy", "mean min-margin", "max min-margin",
                     "margin >= 0.8"});
    for (size_t redundancy : {7, 15}) {
      AdversarialScheme scheme(base, redundancy);
      if (scheme.CapacityBits() == 0) continue;
      double sum = 0, worst = 0;
      int high = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        WeightMap unrelated = RandomWeights(g, 1000, 99999, rng);
        HonestServer server(index, unrelated);
        auto detection = scheme.Detect(original, server).ValueOrDie();
        sum += detection.min_margin;
        worst = std::max(worst, detection.min_margin);
        high += detection.min_margin >= 0.8;
      }
      table.AddRow({StrCat(redundancy), FmtDouble(sum / kTrials, 3),
                    FmtDouble(worst, 3), StrCat(high, "/", kTrials)});
    }
    table.Print(std::cout);
    std::cout << "margins on innocent servers stay far below the clean-detection "
                 "margin of 1.0 — the beta of the limited-knowledge assumption.\n";
  }

  // Attack budget vs realized global distortion (the attacker's constraint).
  {
    TextTable table("Attacker's dilemma: noise level vs damage to data quality");
    table.SetHeader({"noise c", "realized d' (max |df|)", "relative damage"});
    AdversarialScheme scheme(base, 7);
    BitVec msg(scheme.CapacityBits());
    WeightMap marked = scheme.Embed(original, msg);
    for (Weight c : {1, 2, 4, 8, 16}) {
      WeightMap attacked = UniformNoiseAttack(marked, c, rng);
      Weight dprime = GlobalDistortion(index, marked, attacked);
      table.AddRow({StrCat(c), StrCat(dprime),
                    FmtDouble(static_cast<double>(dprime) /
                                  static_cast<double>(scheme.CapacityBits() + 1),
                              2)});
    }
    table.Print(std::cout);
    std::cout << "erasing the mark requires distortions far beyond the bounded "
                 "budget a useful copy tolerates (Assumption 1).\n";
  }
  return 0;
}
