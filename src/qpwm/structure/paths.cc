#include "qpwm/structure/paths.h"

#include <algorithm>
#include <queue>

#include "qpwm/util/check.h"

namespace qpwm {

std::vector<Weight> ShortestPathLengths(const GaifmanGraph& g,
                                        const WeightMap& weights, ElemId source) {
  QPWM_CHECK_EQ(weights.s(), 1u);
  const size_t n = g.size();
  std::vector<Weight> dist(n, kUnreachable);
  using Entry = std::pair<Weight, ElemId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    for (ElemId nb : g.Neighbors(v)) {
      Weight step = weights.GetElem(nb);
      QPWM_CHECK_GE(step, 0);
      Weight nd = d + step;
      if (nd < dist[nb]) {
        dist[nb] = nd;
        heap.emplace(nd, nb);
      }
    }
  }
  return dist;
}

Weight MaxShortestPathDrift(const GaifmanGraph& g, const WeightMap& w0,
                            const WeightMap& w1) {
  Weight worst = 0;
  for (ElemId s = 0; s < g.size(); ++s) {
    std::vector<Weight> d0 = ShortestPathLengths(g, w0, s);
    std::vector<Weight> d1 = ShortestPathLengths(g, w1, s);
    for (ElemId t = 0; t < g.size(); ++t) {
      if (d0[t] == kUnreachable || d1[t] == kUnreachable) continue;
      worst = std::max(worst, std::abs(d1[t] - d0[t]));
    }
  }
  return worst;
}

}  // namespace qpwm
