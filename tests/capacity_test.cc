#include <gtest/gtest.h>

#include "qpwm/capacity/capacity.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// Brute-force counter over all move assignments, for cross-validation.
uint64_t BruteForce(const MarkCountProblem& p, int64_t d, bool exact) {
  uint64_t total = 0;
  std::vector<size_t> choice(p.num_elements, 0);
  for (;;) {
    bool ok = true;
    for (const auto& set : p.sets) {
      int64_t drift = 0;
      for (uint32_t e : set) drift += p.moves[choice[e]];
      if (exact ? (drift != d) : (drift > d || drift < -d)) {
        ok = false;
        break;
      }
    }
    if (ok) ++total;
    size_t pos = 0;
    while (pos < p.num_elements && ++choice[pos] == p.moves.size()) {
      choice[pos++] = 0;
    }
    if (pos == p.num_elements) break;
  }
  return total;
}

TEST(PermanentTest, IdentityMatrix) {
  std::vector<std::vector<uint8_t>> id{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  EXPECT_EQ(Permanent01(id), 1u);
}

TEST(PermanentTest, AllOnes) {
  // perm(J_n) = n!
  std::vector<std::vector<uint8_t>> j3(3, {1, 1, 1});
  EXPECT_EQ(Permanent01(j3), 6u);
  std::vector<std::vector<uint8_t>> j4(4, {1, 1, 1, 1});
  EXPECT_EQ(Permanent01(j4), 24u);
}

TEST(PermanentTest, NoMatching) {
  std::vector<std::vector<uint8_t>> m{{1, 0}, {1, 0}};
  EXPECT_EQ(Permanent01(m), 0u);
}

TEST(PermanentTest, EmptyMatrixIsOne) {
  EXPECT_EQ(Permanent01({}), 1u);
}

TEST(CountTest, UnconstrainedCountsAllVectors) {
  MarkCountProblem p;
  p.num_elements = 4;  // no sets: every {-1,0,1}^4 vector valid
  EXPECT_EQ(CountMarkingsAtMost(p, 0), 81u);
}

TEST(CountTest, SingleSetExact) {
  MarkCountProblem p;
  p.num_elements = 3;
  p.sets = {{0, 1, 2}};
  // Vectors in {-1,0,1}^3 summing to exactly 1: 6 (one +1 rest 0: 3;
  // two +1 one -1: 3).
  EXPECT_EQ(CountMarkingsExact(p, 1), 6u);
}

TEST(CountTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    MarkCountProblem p;
    p.num_elements = 6;
    size_t num_sets = 1 + rng.Below(4);
    for (size_t s = 0; s < num_sets; ++s) {
      std::vector<uint32_t> set;
      for (uint32_t e = 0; e < 6; ++e) {
        if (rng.Coin()) set.push_back(e);
      }
      if (!set.empty()) p.sets.push_back(std::move(set));
    }
    for (int64_t d : {0, 1, 2}) {
      EXPECT_EQ(CountMarkingsExact(p, d), BruteForce(p, d, true)) << "d=" << d;
      EXPECT_EQ(CountMarkingsAtMost(p, d), BruteForce(p, d, false)) << "d=" << d;
    }
  }
}

TEST(CountTest, AtMostDominatesExact) {
  MarkCountProblem p;
  p.num_elements = 5;
  p.sets = {{0, 1}, {2, 3, 4}, {0, 4}};
  EXPECT_GE(CountMarkingsAtMost(p, 1), CountMarkingsExact(p, 1));
}

TEST(CountTest, ZeroDistortionIncludesNeutralPairs) {
  // Two elements always queried together: the (+1,-1) trick gives 3 valid
  // vectors at |drift| <= 0: (0,0), (+1,-1), (-1,+1).
  MarkCountProblem p;
  p.num_elements = 2;
  p.sets = {{0, 1}};
  EXPECT_EQ(CountMarkingsAtMost(p, 0), 3u);
}

TEST(ReductionTest, MarkCountEqualsPermanent) {
  Rng rng(12);
  for (int trial = 0; trial < 8; ++trial) {
    size_t n = 2 + rng.Below(4);
    std::vector<std::vector<uint8_t>> matrix(n, std::vector<uint8_t>(n, 0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) matrix[i][j] = rng.Bernoulli(0.6) ? 1 : 0;
    }
    MarkCountProblem p = PermanentReduction(matrix);
    EXPECT_EQ(CountMarkingsExact(p, 1), Permanent01(matrix)) << "n=" << n;
  }
}

TEST(ReductionTest, CompleteBipartiteGivesFactorial) {
  std::vector<std::vector<uint8_t>> j4(4, {1, 1, 1, 1});
  MarkCountProblem p = PermanentReduction(j4);
  EXPECT_EQ(p.num_elements, 16u);
  EXPECT_EQ(p.sets.size(), 8u);
  EXPECT_EQ(CountMarkingsExact(p, 1), 24u);
}

TEST(ProblemFromQueryTest, UsesActiveElements) {
  Structure g = Figure1Instance();
  auto query = AtomQuery::Adjacency("R");
  QueryIndex index(g, *query, AllParams(g, 1));
  MarkCountProblem p = ProblemFromQuery(index);
  EXPECT_EQ(p.num_elements, 4u);  // {d, e, a, b} active
  EXPECT_EQ(p.sets.size(), 6u);   // every vertex has a nonempty result set
  // At d = 0, the neutral markings of the instance are counted; the pair
  // structure guarantees at least the all-zero and (d:+1, e:-1)-with-
  // compensation variants... verified against brute force:
  EXPECT_EQ(CountMarkingsAtMost(p, 0), BruteForce(p, 0, false));
}

}  // namespace
}  // namespace qpwm
