file(REMOVE_RECURSE
  "CMakeFiles/qpwm_structure.dir/gaifman.cc.o"
  "CMakeFiles/qpwm_structure.dir/gaifman.cc.o.d"
  "CMakeFiles/qpwm_structure.dir/generators.cc.o"
  "CMakeFiles/qpwm_structure.dir/generators.cc.o.d"
  "CMakeFiles/qpwm_structure.dir/isomorphism.cc.o"
  "CMakeFiles/qpwm_structure.dir/isomorphism.cc.o.d"
  "CMakeFiles/qpwm_structure.dir/neighborhood.cc.o"
  "CMakeFiles/qpwm_structure.dir/neighborhood.cc.o.d"
  "CMakeFiles/qpwm_structure.dir/paths.cc.o"
  "CMakeFiles/qpwm_structure.dir/paths.cc.o.d"
  "CMakeFiles/qpwm_structure.dir/structure.cc.o"
  "CMakeFiles/qpwm_structure.dir/structure.cc.o.d"
  "CMakeFiles/qpwm_structure.dir/typemap.cc.o"
  "CMakeFiles/qpwm_structure.dir/typemap.cc.o.d"
  "CMakeFiles/qpwm_structure.dir/weighted.cc.o"
  "CMakeFiles/qpwm_structure.dir/weighted.cc.o.d"
  "libqpwm_structure.a"
  "libqpwm_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
