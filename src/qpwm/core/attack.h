// Attacker models for the adversarial setting (Fact 1's assumptions):
// bounded-distortion weight tampering by a malicious server that does not
// know the secret pair positions (limited knowledge). Attacks transform a
// weight map; they never touch the structure (parameter values are keys and
// cannot be modified without destroying the data's value).
#ifndef QPWM_CORE_ATTACK_H_
#define QPWM_CORE_ATTACK_H_

#include "qpwm/core/answers.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/random.h"

namespace qpwm {

/// Adds an independent uniform integer in [-c, c] to every weight.
/// Realizes a c'-local distortion; the induced global distortion is measured
/// by the caller.
WeightMap UniformNoiseAttack(const WeightMap& marked, Weight c, Rng& rng);

/// Flips each weight by +-1 with probability `flip_prob` (random bit-jitter,
/// the closest analogue of LSB-resetting attacks on [1]).
WeightMap JitterAttack(const WeightMap& marked, double flip_prob, Rng& rng);

/// Rounds every weight to the nearest multiple of `granularity` (>= 1) —
/// a deterministic "cleaning" attack.
WeightMap RoundingAttack(const WeightMap& marked, Weight granularity);

/// Guessing attack: the attacker picks `guesses` random element pairs and
/// applies the inverse (+1, -1) trick hoping to hit the owner's pairs. With
/// limited knowledge the hit probability per guess is ~ 1 / |W|^2.
WeightMap GuessingPairAttack(const WeightMap& marked, const QueryIndex& index,
                             size_t guesses, Rng& rng);

/// Collusion: servers holding several differently-marked copies average them
/// per weight (rounding toward the first copy on ties). With enough copies
/// the pair deltas wash out — the auto-collusion risk Section 5 raises
/// against naive re-marking after updates.
WeightMap AveragingCollusionAttack(const std::vector<const WeightMap*>& copies);

}  // namespace qpwm

#endif  // QPWM_CORE_ATTACK_H_
