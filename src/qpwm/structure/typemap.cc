#include "qpwm/structure/typemap.h"

#include "qpwm/structure/isomorphism.h"
#include "qpwm/structure/neighborhood.h"
#include "qpwm/util/parallel.h"

namespace qpwm {

NeighborhoodTyper::NeighborhoodTyper(const Structure& g, uint32_t rho,
                                     CanonCache* cache)
    : g_(g), rho_(rho), gaifman_(g), incidence_(g), cache_(cache) {}

std::string NeighborhoodTyper::Canon(const Tuple& c) const {
  Neighborhood nb = ExtractNeighborhood(g_, gaifman_, incidence_, c, rho_);
  if (cache_ != nullptr) return cache_->Canonical(nb.local, nb.distinguished);
  return CanonicalForm(nb.local, nb.distinguished);
}

uint32_t NeighborhoodTyper::Intern(std::string canon, const Tuple& c) {
  auto [it, inserted] =
      canon_to_type_.emplace(std::move(canon), static_cast<uint32_t>(representatives_.size()));
  if (inserted) representatives_.push_back(c);
  return it->second;
}

uint32_t NeighborhoodTyper::TypeOf(const Tuple& c) { return Intern(Canon(c), c); }

std::vector<uint32_t> NeighborhoodTyper::TypeAll(const std::vector<Tuple>& tuples) {
  std::vector<std::string> canons = ParallelMap<std::string>(
      tuples.size(), [&](size_t i) { return Canon(tuples[i]); });
  std::vector<uint32_t> types(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    types[i] = Intern(std::move(canons[i]), tuples[i]);
  }
  return types;
}

}  // namespace qpwm
