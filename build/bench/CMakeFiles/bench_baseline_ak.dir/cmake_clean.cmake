file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_ak.dir/bench_baseline_ak.cc.o"
  "CMakeFiles/bench_baseline_ak.dir/bench_baseline_ak.cc.o.d"
  "bench_baseline_ak"
  "bench_baseline_ak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_ak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
