// Parametric queries psi(u_bar, v_bar): the server-registered queries whose
// answers the watermark must preserve. A query maps a parameter tuple a_bar
// (chosen by a final user) to the set W_a = psi(a_bar, G) of s-tuples whose
// weights the user receives.
//
// Implementations:
//   * FormulaQuery    — an FO/MSO formula evaluated naively (reference).
//   * AtomQuery       — R(u_bar, v_bar) pattern answered from an index
//                       (scales to the benchmark sizes; locality rank 1).
//   * DistanceQuery   — "v within Gaifman distance rho of u" (FO-definable
//                       on bounded-degree classes; locality rank rho).
//   * CallbackQuery   — arbitrary user logic with a declared locality rank.
#ifndef QPWM_LOGIC_QUERY_H_
#define QPWM_LOGIC_QUERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/logic/formula.h"
#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/structure.h"
#include "qpwm/util/thread_annotations.h"

namespace qpwm {

/// Abstract parametric query.
class ParametricQuery {
 public:
  virtual ~ParametricQuery() = default;

  /// Parameter arity r (size of u_bar).
  virtual uint32_t ParamArity() const = 0;
  /// Result arity s (size of v_bar) — must equal the weight arity.
  virtual uint32_t ResultArity() const = 0;

  /// W_a = psi(a_bar, G): the result s-tuples for this parameter. Order is
  /// unspecified; tuples are distinct.
  ///
  /// Thread-safety contract: QueryIndex evaluates the whole parameter domain
  /// concurrently (util/parallel.h), so Evaluate must be safe to call from
  /// several threads at once. The built-in implementations are (lazy
  /// per-structure indexes are mutex-guarded); CallbackQuery users must
  /// provide a thread-safe callback or run with QPWM_THREADS=1.
  virtual std::vector<Tuple> Evaluate(const Structure& g, const Tuple& params) const = 0;

  /// A locality rank rho if one is known (Definition 5). Gaifman's theorem
  /// guarantees one for every FO query.
  virtual std::optional<uint32_t> LocalityRank() const { return std::nullopt; }

  virtual std::string Name() const { return "query"; }
};

/// All parameter tuples U^r of a structure, in lexicographic order.
std::vector<Tuple> AllParams(const Structure& g, uint32_t r);

/// Reference implementation: enumerate candidate result tuples, test with the
/// naive evaluator. Exponential-ish; small structures only.
class FormulaQuery : public ParametricQuery {
 public:
  /// `param_vars` then `result_vars` must cover the free variables of `f`.
  FormulaQuery(FormulaPtr f, std::vector<std::string> param_vars,
               std::vector<std::string> result_vars);

  uint32_t ParamArity() const override { return static_cast<uint32_t>(param_vars_.size()); }
  uint32_t ResultArity() const override {
    return static_cast<uint32_t>(result_vars_.size());
  }
  std::vector<Tuple> Evaluate(const Structure& g, const Tuple& params) const override;
  std::optional<uint32_t> LocalityRank() const override;
  std::string Name() const override { return formula_->ToString(); }

  const Formula& formula() const { return *formula_; }

 private:
  FormulaPtr formula_;
  std::vector<std::string> param_vars_;
  std::vector<std::string> result_vars_;
};

/// psi(u_bar, v_bar) = R(w_1, ..., w_k) where each w_i is either the j-th
/// parameter or the j-th result position. Indexed per structure.
class AtomQuery : public ParametricQuery {
 public:
  /// Position spec: for each argument of R, (is_param, index).
  struct Arg {
    bool is_param;
    uint32_t index;
  };

  AtomQuery(std::string relation, std::vector<Arg> args, uint32_t r, uint32_t s);

  /// Convenience: psi(u, v) = R(u, v).
  static std::unique_ptr<AtomQuery> Adjacency(std::string relation);

  uint32_t ParamArity() const override { return r_; }
  uint32_t ResultArity() const override { return s_; }
  std::vector<Tuple> Evaluate(const Structure& g, const Tuple& params) const override;
  std::optional<uint32_t> LocalityRank() const override { return 1; }
  std::string Name() const override;

 private:
  struct Index {
    std::unordered_map<Tuple, std::vector<Tuple>, TupleHash> by_param;
  };
  /// Cache entries are validated against Structure::generation() on every
  /// hit: the allocator can hand a new structure the address of a dead one
  /// (and structures mutate in place), so the pointer key alone is not an
  /// identity. A generation mismatch rebuilds the entry in place.
  struct CacheEntry {
    uint64_t generation = 0;
    Index index;
  };
  const Index& GetIndex(const Structure& g) const;

  std::string relation_;
  std::vector<Arg> args_;
  uint32_t r_;
  uint32_t s_;
  mutable qpwm::Mutex cache_mu_;  // mapped entry refs are stable
  mutable std::unordered_map<const Structure*, CacheEntry> cache_
      QPWM_GUARDED_BY(cache_mu_);
};

/// psi(u, v) = "d(u, v) <= rho" in the Gaifman graph. FO-definable whenever
/// the signature is fixed; locality rank rho.
class DistanceQuery : public ParametricQuery {
 public:
  explicit DistanceQuery(uint32_t rho) : rho_(rho) {}

  uint32_t ParamArity() const override { return 1; }
  uint32_t ResultArity() const override { return 1; }
  std::vector<Tuple> Evaluate(const Structure& g, const Tuple& params) const override;
  std::optional<uint32_t> LocalityRank() const override { return rho_; }
  std::string Name() const override;

 private:
  /// Generation-validated like AtomQuery's cache; see that comment.
  struct CacheEntry {
    uint64_t generation = 0;
    std::unique_ptr<GaifmanGraph> graph;
  };
  const GaifmanGraph& GetGaifman(const Structure& g) const;

  uint32_t rho_;
  mutable qpwm::Mutex cache_mu_;
  mutable std::unordered_map<const Structure*, CacheEntry> cache_
      QPWM_GUARDED_BY(cache_mu_);
};

/// Wraps a callback; the caller declares arities and (optionally) a locality
/// rank it promises the callback respects.
class CallbackQuery : public ParametricQuery {
 public:
  using Fn = std::function<std::vector<Tuple>(const Structure&, const Tuple&)>;

  CallbackQuery(std::string name, uint32_t r, uint32_t s, Fn fn,
                std::optional<uint32_t> locality_rank = std::nullopt)
      : name_(std::move(name)), r_(r), s_(s), fn_(std::move(fn)), rho_(locality_rank) {}

  uint32_t ParamArity() const override { return r_; }
  uint32_t ResultArity() const override { return s_; }
  std::vector<Tuple> Evaluate(const Structure& g, const Tuple& params) const override {
    return fn_(g, params);
  }
  std::optional<uint32_t> LocalityRank() const override { return rho_; }
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  uint32_t r_;
  uint32_t s_;
  Fn fn_;
  std::optional<uint32_t> rho_;
};

}  // namespace qpwm

#endif  // QPWM_LOGIC_QUERY_H_
