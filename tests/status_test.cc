// Focused coverage for the Status/Result error model and the QPWM_CHECK
// macros — the [[nodiscard]] sweep and qpwm_lint's error-discipline rules
// lean on these semantics, so they are pinned here. The compile-time side
// (discarding a Status must not build) is covered by the
// nodiscard_negcompile ctest entry, which builds tests/nodiscard_negcompile.cc
// and expects failure.
#include "qpwm/util/status.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qpwm/util/check.h"

namespace qpwm {
namespace {

// --- StatusCodeName: names are stable, exhaustive, and distinct --------------

TEST(StatusCodeNameTest, EveryCodeHasItsDocumentedName) {
  // These strings appear in JSON reports and error logs; renaming one is a
  // reporting-format break and must be deliberate.
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCapacityExhausted),
               "CapacityExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDetectionFailed), "DetectionFailed");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusCodeNameTest, NamesAreDistinct) {
  std::vector<std::string> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    names.emplace_back(StatusCodeName(static_cast<StatusCode>(c)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// --- Status: factories, copies, formatting -----------------------------------

TEST(StatusFactoryTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::OK().code(), StatusCode::kOk);
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::CapacityExhausted("m").code(),
            StatusCode::kCapacityExhausted);
  EXPECT_EQ(Status::ParseError("m").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::DetectionFailed("m").code(), StatusCode::kDetectionFailed);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, OkCopyCarriesNoMessageAllocation) {
  // The OK path is copied on every QPWM_RETURN_NOT_OK; it must stay an empty
  // message (capacity of a default std::string), not an allocated one.
  Status ok = Status::OK();
  Status copy = ok;
  EXPECT_TRUE(copy.ok());
  EXPECT_TRUE(copy.message().empty());
  EXPECT_EQ(copy.ToString(), "OK");
}

TEST(StatusTest, ToStringCombinesNameAndMessage) {
  EXPECT_EQ(Status::ParseError("line 3").ToString(), "ParseError: line 3");
  std::ostringstream os;
  os << Status::NotFound("key");
  EXPECT_EQ(os.str(), "NotFound: key");
}

// --- Result<T>: value/error duality, move-only payloads ----------------------

TEST(ResultTest, MoveOnlyPayloadRoundTrips) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
}

TEST(ResultTest, MoveOnlyPayloadThroughValueOrDie) {
  Result<std::unique_ptr<std::string>> r =
      std::make_unique<std::string>("payload");
  std::unique_ptr<std::string> p = std::move(r).ValueOrDie();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, "payload");
}

TEST(ResultTest, ErrorResultKeepsStatus) {
  Result<std::unique_ptr<int>> r = Status::CapacityExhausted("full");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityExhausted);
  EXPECT_EQ(r.status().message(), "full");
}

TEST(ResultTest, MutableValueReference) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r.value().push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ResultDeathTest, ValueOrDieAbortsOnError) {
  Result<int> r = Status::Internal("broken invariant");
  EXPECT_DEATH((void)r.ValueOrDie(), "broken invariant");
}

// --- QPWM_RETURN_NOT_OK ------------------------------------------------------

Status FailIf(bool fail) {
  if (fail) return Status::FailedPrecondition("stop");
  return Status::OK();
}

Status Chain(bool fail_first, bool fail_second, int& reached) {
  QPWM_RETURN_NOT_OK(FailIf(fail_first));
  reached = 1;
  QPWM_RETURN_NOT_OK(FailIf(fail_second));
  reached = 2;
  return Status::OK();
}

TEST(ReturnNotOkTest, PropagatesFirstError) {
  int reached = 0;
  Status s = Chain(true, false, reached);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(reached, 0);
}

TEST(ReturnNotOkTest, ContinuesPastOk) {
  int reached = 0;
  EXPECT_TRUE(Chain(false, false, reached).ok());
  EXPECT_EQ(reached, 2);
  Status s = Chain(false, true, reached);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(reached, 1);
}

// --- QPWM_CHECK --------------------------------------------------------------

TEST(CheckDeathTest, FailedCheckAbortsWithExpression) {
  EXPECT_DEATH(QPWM_CHECK(1 == 2), "1 == 2");
  EXPECT_DEATH(QPWM_CHECK_LT(5, 3), "QPWM_CHECK failed");
}

TEST(CheckTest, PassingChecksAreSilent) {
  QPWM_CHECK(true);
  QPWM_CHECK_EQ(2 + 2, 4);
  QPWM_CHECK_GE(3, 3);
}

}  // namespace
}  // namespace qpwm
